#!/usr/bin/env bash
# Documentation checks, wired into scripts/ci.sh:
#   1. every relative link in every tracked markdown file resolves, and
#   2. every exported symbol in the operator-facing packages carries a
#      doc comment (scripts/doccheck, a go/ast walker).
# Run from anywhere inside the repo; exits non-zero on any finding.
set -euo pipefail
cd "$(cd "$(dirname "$0")/.." && pwd)"

fail=0

echo "doccheck: markdown links"
while IFS= read -r md; do
  dir=$(dirname "$md")
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "doccheck: $md: broken link -> $target" >&2
      fail=1
    fi
  done < <(awk '/^[[:space:]]*```/ { inblock = !inblock; next } !inblock' "$md" |
    grep -o '\[[^]]*\]([^)]*)' | sed 's/.*](\([^)]*\))/\1/')
done < <(git ls-files '*.md')

echo "doccheck: required pages"
for required in DESIGN.md docs/DIRECTIVES.md docs/OBSERVABILITY.md docs/WIRE_PROTOCOL.md docs/CLUSTER.md; do
  if [ ! -f "$required" ]; then
    echo "doccheck: required page missing: $required" >&2
    fail=1
  fi
done

echo "doccheck: exported symbols"
if ! go run ./scripts/doccheck \
  ./internal/dsps ./internal/telemetry ./internal/chaos ./internal/obs ./internal/serve ./internal/cluster; then
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "doccheck: FAIL" >&2
  exit 1
fi
echo "doccheck: OK"
