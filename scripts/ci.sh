#!/usr/bin/env sh
# CI gate: vet, gofmt, the dspslint invariant linter, doccheck, build, full test
# suite, the race detector over the packages with real concurrency
# (training engine, stream engine, SPSC ring plane, chaos harness,
# prediction server), a one-iteration benchmark smoke, a short chaos
# soak against the live engine, and a fuzz smoke over each native fuzz
# target. Run via `make ci` or directly.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== dspslint (invariant linter) =="
# The JSON artifact step is a gate too: a lint regression must fail CI
# here, not ride along as a quietly-red artifact. The human-readable
# `make lint` run below re-checks with the suppression baseline and
# prints per-stage timings.
mkdir -p artifacts
go run ./cmd/dspslint -json ./... > artifacts/dspslint.json
lint_start=$(date +%s)
make lint
lint_elapsed=$(( $(date +%s) - lint_start ))
echo "dspslint wall: ${lint_elapsed}s"
if [ "$lint_elapsed" -ge 30 ]; then
	echo "dspslint took ${lint_elapsed}s; the lint gate must stay under 30s" >&2
	exit 1
fi

echo "== doccheck (markdown links + godoc audit) =="
make doccheck

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (nn, dsps, ring, chaos, serve, cluster, analysis) =="
go test -race ./internal/nn/... ./internal/dsps/... ./internal/ring/... ./internal/chaos/... ./internal/serve/... ./internal/cluster/... ./internal/analysis/...

echo "== bench smoke (1 iteration per benchmark) =="
make bench-smoke

echo "== chaos soak (short) =="
make soak-short

echo "== cluster demo (coordinator + 2 worker processes) =="
make cluster-demo

echo "== fuzz smoke (10s per target) =="
go test -fuzz='^FuzzChaosSchedule$' -run '^$' -fuzztime 10s ./internal/chaos/
go test -fuzz='^FuzzGroupingRatios$' -run '^$' -fuzztime 10s ./internal/dsps/
go test -fuzz='^FuzzHistogramQuantile$' -run '^$' -fuzztime 10s ./internal/dsps/
go test -fuzz='^FuzzAckerTrees$' -run '^$' -fuzztime 10s ./internal/dsps/
go test -fuzz='^FuzzRingBatchOps$' -run '^$' -fuzztime 10s ./internal/ring/
go test -fuzz='^FuzzServeWireFrame$' -run '^$' -fuzztime 10s ./internal/serve/
go test -fuzz='^FuzzClusterWireFrame$' -run '^$' -fuzztime 10s ./internal/cluster/

echo "CI OK"
