#!/usr/bin/env sh
# CI gate: vet, gofmt, the dspslint invariant linter, doccheck, build, full test
# suite, the race detector over the packages with real concurrency
# (training engine, stream engine, SPSC ring plane, chaos harness,
# prediction server), a one-iteration benchmark smoke, a short chaos
# soak against the live engine, and a fuzz smoke over each native fuzz
# target. Run via `make ci` or directly.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== dspslint (invariant linter) =="
# JSON report is kept as a CI artifact regardless of outcome; the
# human-readable `make lint` run below is the actual gate.
mkdir -p artifacts
go run ./cmd/dspslint -json ./... > artifacts/dspslint.json || true
make lint

echo "== doccheck (markdown links + godoc audit) =="
make doccheck

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (nn, dsps, ring, chaos, serve) =="
go test -race ./internal/nn/... ./internal/dsps/... ./internal/ring/... ./internal/chaos/... ./internal/serve/...

echo "== bench smoke (1 iteration per benchmark) =="
make bench-smoke

echo "== chaos soak (short) =="
make soak-short

echo "== fuzz smoke (10s per target) =="
go test -fuzz='^FuzzChaosSchedule$' -run '^$' -fuzztime 10s ./internal/chaos/
go test -fuzz='^FuzzGroupingRatios$' -run '^$' -fuzztime 10s ./internal/dsps/
go test -fuzz='^FuzzHistogramQuantile$' -run '^$' -fuzztime 10s ./internal/dsps/
go test -fuzz='^FuzzAckerTrees$' -run '^$' -fuzztime 10s ./internal/dsps/
go test -fuzz='^FuzzRingBatchOps$' -run '^$' -fuzztime 10s ./internal/ring/
go test -fuzz='^FuzzServeWireFrame$' -run '^$' -fuzztime 10s ./internal/serve/

echo "CI OK"
