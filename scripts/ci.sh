#!/usr/bin/env sh
# CI gate: vet, build, full test suite, then the race detector over the
# packages with real concurrency (the training engine in internal/nn and
# the stream engine in internal/dsps). Run via `make ci` or directly.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (nn, dsps) =="
go test -race ./internal/nn/... ./internal/dsps/...

echo "CI OK"
