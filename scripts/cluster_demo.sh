#!/usr/bin/env bash
# Multi-process smoke test of the distributed runtime: build dspsim and
# predworker, start a coordinator plus two real worker processes over the
# TCP wire protocol (one urlcount, one contquery), run remote control
# loops for a few seconds, verify both workers joined and shipped metrics
# and tuples were acked, then shut the workers down over the wire and
# check they exited cleanly. Run via `make cluster-demo`.
set -eu

cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
LOG=$(mktemp -d)
PORT=${CLUSTER_DEMO_PORT:-7077}
DURATION=${CLUSTER_DEMO_DURATION:-5s}

cleanup() {
	# Belt and braces: the coordinator shuts workers down over the wire;
	# kill anything that survived so CI never leaks processes.
	kill "$W1_PID" "$W2_PID" "$COORD_PID" 2>/dev/null || true
	rm -rf "$BIN" "$LOG"
}
trap cleanup EXIT

go build -o "$BIN/dspsim" ./cmd/dspsim
go build -o "$BIN/predworker" ./cmd/predworker

"$BIN/dspsim" -coordinator -listen "127.0.0.1:$PORT" -expect 2 \
	-duration "$DURATION" -stats 1s -control -shutdown-workers \
	>"$LOG/coordinator.log" 2>&1 &
COORD_PID=$!

sleep 0.3
"$BIN/predworker" -coordinator "127.0.0.1:$PORT" -name demo-w1 -app urlcount -dynamic \
	>"$LOG/w1.log" 2>&1 &
W1_PID=$!
"$BIN/predworker" -coordinator "127.0.0.1:$PORT" -name demo-w2 -app contquery -dynamic \
	>"$LOG/w2.log" 2>&1 &
W2_PID=$!

fail() {
	echo "cluster-demo: $1" >&2
	echo "--- coordinator.log ---" >&2
	cat "$LOG/coordinator.log" >&2
	echo "--- w1.log ---" >&2
	cat "$LOG/w1.log" >&2
	echo "--- w2.log ---" >&2
	cat "$LOG/w2.log" >&2
	exit 1
}

wait "$COORD_PID" || fail "coordinator exited non-zero"
wait "$W1_PID" || fail "worker 1 exited non-zero"
wait "$W2_PID" || fail "worker 2 exited non-zero"

grep -q "fleet complete: 2 workers joined" "$LOG/coordinator.log" || fail "fleet never completed"
grep -q "control: steering demo-w1" "$LOG/coordinator.log" || fail "no control loop for w1"
grep -q "sent shutdown to all workers" "$LOG/coordinator.log" || fail "coordinator did not send shutdown"
grep -q 'shut down by coordinator' "$LOG/w1.log" || fail "worker 1 did not see the shutdown"
grep -q 'shut down by coordinator' "$LOG/w2.log" || fail "worker 2 did not see the shutdown"

# The final fleet snapshot must show real progress: acked tuples > 0.
acked=$(sed -n 's/^final: workers=[0-9]* acked=\([0-9]*\).*/\1/p' "$LOG/coordinator.log")
if [ -z "$acked" ] || [ "$acked" -eq 0 ]; then
	fail "no tuples acked across the fleet (acked='$acked')"
fi

echo "cluster-demo OK: 2 workers joined, $acked tuples acked, clean wire shutdown"
