// Command doccheck enforces the repo's documentation bar: every exported
// top-level declaration (and every exported method on an exported type)
// in the packages named on the command line must carry a doc comment.
// scripts/doccheck.sh runs it over the operator-facing packages and adds
// markdown link validation; scripts/ci.sh runs both.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package dir> ...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		n, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported symbol(s)\n", bad)
		os.Exit(1)
	}
}

func checkDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		fmt.Fprintf(os.Stderr, "%s:%d: undocumented exported %s %s\n", p.Filename, p.Line, kind, name)
		bad++
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc.Text() != "" {
						continue
					}
					if d.Recv != nil && !receiverExported(d.Recv) {
						continue // method on an unexported type is not API
					}
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					report(d.Pos(), kind, d.Name.Name)
				case *ast.GenDecl:
					blockDoc := d.Doc.Text() != ""
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && !blockDoc && s.Doc.Text() == "" && s.Comment.Text() == "" {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							documented := blockDoc || s.Doc.Text() != "" || s.Comment.Text() != ""
							for _, n := range s.Names {
								if n.IsExported() && !documented {
									report(n.Pos(), kindOf(d.Tok), n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return bad, nil
}

// receiverExported reports whether a method's receiver names an exported
// type (unwrapping pointer and generic receivers).
func receiverExported(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return false
		}
	}
}

func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
