// Package main's root benchmarks regenerate each reconstructed experiment
// (E1..E10, see DESIGN.md) under `go test -bench`. Reported custom metrics
// carry each figure's headline quantity so a bench run doubles as a
// regression check on the reproduction's shape:
//
//	go test -bench=. -benchmem
//
// Heavier cells keep their iteration work fixed per b.N loop so -benchtime
// scales them naturally.
package main

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"predstream/internal/experiments"
	"predstream/internal/nn"
)

func benchAccuracy(b *testing.B, app experiments.AppProfile) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAccuracy(experiments.AccuracyConfig{
			App: app, Steps: 300, Epochs: 25,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Results {
			switch r.Model {
			case "DRNN":
				b.ReportMetric(r.Report.MAPE, "drnn-mape-%")
			case "ARIMA":
				b.ReportMetric(r.Report.MAPE, "arima-mape-%")
			case "SVR":
				b.ReportMetric(r.Report.MAPE, "svr-mape-%")
			}
		}
		if res.Best() != "DRNN" {
			b.Logf("note: best model this run was %s", res.Best())
		}
	}
}

// BenchmarkE1PredictionURLCount regenerates E1: DRNN vs ARIMA vs SVR
// accuracy on the Windowed URL Count profile.
func BenchmarkE1PredictionURLCount(b *testing.B) {
	benchAccuracy(b, experiments.AppURLCount)
}

// BenchmarkE2PredictionContQuery regenerates E2 on the Continuous Queries
// profile.
func BenchmarkE2PredictionContQuery(b *testing.B) {
	benchAccuracy(b, experiments.AppContQuery)
}

// BenchmarkE3Overlay regenerates E3, the predicted-vs-actual trace of the
// best model.
func BenchmarkE3Overlay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunOverlay(experiments.AccuracyConfig{Steps: 300, Epochs: 20})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Actual)), "held-out-windows")
	}
}

// BenchmarkE4Ablation regenerates E4, the interference-feature and depth
// ablation.
func BenchmarkE4Ablation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblation(300, 40, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		var with, without float64
		for _, row := range res.Rows {
			switch row.Name {
			case "interference, 2 layers":
				with = row.Report.RMSE
			case "no interference, 2 layers":
				without = row.Report.RMSE
			}
		}
		if with > 0 {
			b.ReportMetric(without/with, "interference-gain-x")
		}
	}
}

// BenchmarkE5DynamicGrouping regenerates E5, the split-ratio tracking
// validation on the live engine.
func BenchmarkE5DynamicGrouping(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunGrouping(experiments.GroupingConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxDeviation, "max-split-deviation")
	}
}

// BenchmarkE6E7Reliability regenerates E6 (throughput) and E7 (latency)
// under misbehaving workers, reporting each system's retained throughput
// fraction with one fault.
func BenchmarkE6E7Reliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunReliability(experiments.ReliabilityConfig{
			Misbehaving: []int{0, 1},
			Warmup:      2 * time.Second,
			Measure:     2 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Degradation("framework", 1), "framework-retained-x")
		b.ReportMetric(res.Degradation("static", 1), "static-retained-x")
		if fw, ok := res.Cell("framework", 1); ok {
			b.ReportMetric(fw.AvgLatencyMs, "framework-latency-ms")
		}
		if st, ok := res.Cell("static", 1); ok {
			b.ReportMetric(st.AvgLatencyMs, "static-latency-ms")
		}
	}
}

// BenchmarkE8Training regenerates E8, DRNN training convergence, reporting
// the final-epoch loss.
func BenchmarkE8Training(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunConvergence(experiments.AccuracyConfig{Steps: 300, Epochs: 20})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Losses[len(res.Losses)-1], "final-loss")
		b.ReportMetric(float64(res.NumParams), "params")
	}
}

// BenchmarkE9Sensitivity regenerates E9, the window/horizon sensitivity
// grid, reporting the best cell's MAPE.
func BenchmarkE9Sensitivity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSensitivity(
			experiments.AccuracyConfig{Steps: 250, Epochs: 12},
			[]int{5, 10}, []int{1, 3})
		if err != nil {
			b.Fatal(err)
		}
		best := res.MAPE[0][0]
		for _, row := range res.MAPE {
			for _, v := range row {
				if v < best {
					best = v
				}
			}
		}
		b.ReportMetric(best, "best-mape-%")
	}
}

// BenchmarkE10Reaction regenerates E10, the control-loop reaction trace,
// reporting the bypass reaction time in control periods.
func BenchmarkE10Reaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunReaction(experiments.ReactionConfig{
			Steps: 14, FaultAtStep: 6, ControlPeriod: 200 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.ReactionSteps), "reaction-periods")
	}
}

// BenchmarkE10Recovery regenerates the E10 recovery variant, reporting the
// probe-based re-admission time after the fault clears.
func BenchmarkE10Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunReaction(experiments.ReactionConfig{
			Steps: 20, FaultAtStep: 5, ClearAtStep: 11, ProbeRatio: 0.05,
			ControlPeriod: 200 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.ReactionSteps), "reaction-periods")
		b.ReportMetric(float64(res.ReadmitSteps), "readmit-periods")
	}
}

// BenchmarkE12CrossTopologyInterference regenerates E12, reporting how
// much a noisy-neighbour topology inflates the foreground's processing
// time.
func BenchmarkE12CrossTopologyInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunInterference(experiments.InterferenceConfig{
			Windows: 12, Period: 200 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.BeforeMs > 0 {
			b.ReportMetric(res.AfterMs/res.BeforeMs, "interference-x")
		}
	}
}

// benchTrain measures one training epoch of the paper-regime DRNN network
// (window 10-sized sequences, LSTM 32+32, dense 16) over a 128-example set
// with mini-batches of 32, at the given worker count. The network is built
// once so steady-state workspace reuse is what gets measured; examples/s is
// reported so worker counts compare directly.
//
// NOTE: parallel speedup only materializes with GOMAXPROCS > 1; on a
// single-CPU host the worker variants measure scheduling overhead (see
// BENCH_train.json for recorded numbers and context).
func benchTrain(b *testing.B, workers int) {
	const (
		examples = 128
		seqLen   = 20
		features = 12
	)
	rng := rand.New(rand.NewSource(1))
	ds := nn.Dataset{}
	for i := 0; i < examples; i++ {
		seq := make([][]float64, seqLen)
		var sum float64
		for t := range seq {
			x := make([]float64, features)
			for j := range x {
				x[j] = rng.NormFloat64() * 0.5
				sum += x[j]
			}
			seq[t] = x
		}
		ds.X = append(ds.X, seq)
		ds.Y = append(ds.Y, []float64{math.Tanh(sum / (seqLen * features))})
	}
	net := nn.NewNetwork(nn.Arch{
		In: features, LSTMHidden: []int{32, 32}, DenseHidden: []int{16}, Out: 1,
	}, rng)
	cfg := nn.TrainConfig{
		Epochs:    1,
		Optimizer: nn.NewAdam(1e-3),
		Loss:      nn.MSE{},
		BatchSize: 32,
		Workers:   workers,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nn.Train(net, ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(examples)*float64(b.N)/b.Elapsed().Seconds(), "examples/s")
}

// BenchmarkTrainSerial is the one-worker baseline for the data-parallel
// training engine.
func BenchmarkTrainSerial(b *testing.B) { benchTrain(b, 1) }

// BenchmarkTrainParallel2/4/8 fan each mini-batch out over N replicas; the
// loss curve is bitwise-identical to serial (see DESIGN.md, "Training
// engine"), so these differ from BenchmarkTrainSerial only in wall-clock.
func BenchmarkTrainParallel2(b *testing.B) { benchTrain(b, 2) }

func BenchmarkTrainParallel4(b *testing.B) { benchTrain(b, 4) }

func BenchmarkTrainParallel8(b *testing.B) { benchTrain(b, 8) }

// BenchmarkE11PolicyAblation regenerates E11, the planner-policy ablation,
// reporting retained throughput per policy with one misbehaving worker.
func BenchmarkE11PolicyAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPolicyAblation(experiments.ReliabilityConfig{
			Warmup:  2 * time.Second,
			Measure: 2 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Cells {
			b.ReportMetric(c.Retained, c.Policy+"-retained-x")
		}
	}
}
