// Quickstart: the smallest useful topology — a sentence spout, a splitter
// bolt, and a word-count bolt with fields grouping — run on the simulated
// cluster for a moment, then the counts are printed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"predstream/internal/dsps"
)

// sentenceSpout cycles through a fixed set of sentences.
type sentenceSpout struct {
	dsps.BaseSpout
	collector dsps.SpoutCollector
	sentences []string
	next      int
	limit     int
}

func (s *sentenceSpout) Open(_ dsps.TopologyContext, c dsps.SpoutCollector) { s.collector = c }

func (s *sentenceSpout) NextTuple() bool {
	if s.next >= s.limit {
		return false
	}
	s.collector.Emit(dsps.Values{s.sentences[s.next%len(s.sentences)]}, s.next)
	s.next++
	return true
}

// splitBolt emits one tuple per word.
type splitBolt struct {
	dsps.BaseBolt
	collector dsps.OutputCollector
}

func (b *splitBolt) Prepare(_ dsps.TopologyContext, c dsps.OutputCollector) { b.collector = c }

func (b *splitBolt) Execute(t *dsps.Tuple) {
	sentence, err := t.String("sentence")
	if err != nil {
		b.collector.Fail()
		return
	}
	word := ""
	for i := 0; i <= len(sentence); i++ {
		if i == len(sentence) || sentence[i] == ' ' {
			if word != "" {
				b.collector.Emit(dsps.Values{word})
			}
			word = ""
			continue
		}
		word += string(sentence[i])
	}
}

// countBolt tallies words; fields grouping guarantees each word has one
// owner task.
type countBolt struct {
	dsps.BaseBolt
	mu     sync.Mutex
	counts map[string]int
}

func (b *countBolt) Prepare(dsps.TopologyContext, dsps.OutputCollector) {
	b.counts = map[string]int{}
}

func (b *countBolt) Execute(t *dsps.Tuple) {
	w, err := t.String("word")
	if err != nil {
		return
	}
	b.mu.Lock()
	b.counts[w]++
	b.mu.Unlock()
}

func main() {
	var counters []*countBolt
	var mu sync.Mutex

	builder := dsps.NewTopologyBuilder("quickstart")
	builder.SetSpout("sentences", func() dsps.Spout {
		return &sentenceSpout{
			sentences: []string{
				"the quick brown fox",
				"the lazy dog",
				"the quick dog runs",
			},
			limit: 300,
		}
	}, 1, "sentence")
	builder.SetBolt("split", func() dsps.Bolt { return &splitBolt{} }, 2, "word").
		ShuffleGrouping("sentences")
	builder.SetBolt("count", func() dsps.Bolt {
		c := &countBolt{}
		mu.Lock()
		counters = append(counters, c)
		mu.Unlock()
		return c
	}, 2).FieldsGrouping("split", "word")

	topo, err := builder.Build()
	if err != nil {
		log.Fatal(err)
	}
	cluster := dsps.NewCluster(dsps.ClusterConfig{Nodes: 2, Delayer: dsps.NopDelayer{}})
	if err := cluster.Submit(topo, dsps.SubmitConfig{}); err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()
	if !cluster.Drain(10 * time.Second) {
		log.Fatal("topology did not drain")
	}

	merged := map[string]int{}
	mu.Lock()
	for _, c := range counters {
		c.mu.Lock()
		for w, n := range c.counts {
			merged[w] += n
		}
		c.mu.Unlock()
	}
	mu.Unlock()
	words := make([]string, 0, len(merged))
	for w := range merged {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		if merged[words[i]] != merged[words[j]] {
			return merged[words[i]] > merged[words[j]]
		}
		return words[i] < words[j]
	})
	snap := cluster.Snapshot()
	fmt.Printf("processed %d sentences (%d spout roots acked, %d failed)\n",
		300, snap.TotalAcked(), snap.TotalFailed())
	fmt.Println("word counts:")
	for _, w := range words {
		fmt.Printf("  %-8s %d\n", w, merged[w])
	}
}
