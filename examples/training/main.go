// Training demo: the paper's full pipeline end-to-end with the DRNN in
// the loop. The controller first runs reactively while collecting
// multilevel runtime statistics; once enough windows exist it trains one
// DRNN per worker on them; from then on split ratios are driven by model
// *predictions*. A fault injected afterwards is detected from the
// predicted processing times and bypassed.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"
	"time"

	"predstream/internal/apps/urlcount"
	"predstream/internal/core"
	"predstream/internal/drnn"
	"predstream/internal/dsps"
	"predstream/internal/timeseries"
)

func main() {
	topo, _, dg, err := urlcount.Build(urlcount.Config{
		Dynamic:   true,
		ParseCost: 5 * time.Millisecond,
		CountCost: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster := dsps.NewCluster(dsps.ClusterConfig{
		Nodes: 2, QueueSize: 64, MaxSpoutPending: 256, AckTimeout: 10 * time.Second,
	})
	if err := cluster.Submit(topo, dsps.SubmitConfig{Workers: 4}); err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	const (
		controlPeriod = 200 * time.Millisecond
		history       = 25 // windows to collect before training
	)
	ctrl, err := core.NewController(cluster,
		[]core.ControlTarget{{Component: "parse", Grouping: dg}},
		core.Config{
			Policy:     core.PolicyBypass,
			MinHistory: history,
			NewPredictor: func() timeseries.Predictor {
				return drnn.New(drnn.Config{
					Window: 5, Hidden: []int{12}, DenseHidden: []int{8},
					Epochs: 15, LR: 5e-3,
				})
			},
		})
	if err != nil {
		log.Fatal(err)
	}

	step := func() core.StepReport {
		time.Sleep(controlPeriod)
		r, err := ctrl.Step()
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	fmt.Printf("phase 1: collecting %d statistics windows (reactive control)\n", history)
	for i := 0; i <= history; i++ {
		step()
	}

	fmt.Println("phase 2: training one DRNN per worker on the collected windows…")
	start := time.Now()
	if err := ctrl.FitPredictors(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  trained in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Println("phase 3: predictive control (ratios now driven by DRNN forecasts)")
	var victim string
	for _, ts := range cluster.Snapshot().ComponentTasks("parse") {
		if ts.WorkerID != "worker-0" {
			victim = ts.WorkerID
			break
		}
	}
	for i := 0; i < 12; i++ {
		if i == 4 {
			if err := cluster.InjectFault(victim, dsps.Fault{Slowdown: 8}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  -- injected 8x slowdown on %s --\n", victim)
		}
		r := step()
		fmt.Printf("  step %2d model=%v %s: predicted=%6.2fms observed=%6.2fms flagged=%v ratios=%v\n",
			i, r.UsedModel, victim, r.Predicted[victim], r.Observed[victim],
			r.Misbehaving[victim], compact(r.Applied["parse"]))
	}
}

func compact(rs []float64) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = fmt.Sprintf("%.2f", r)
	}
	return out
}
