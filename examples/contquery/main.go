// Continuous Queries end-to-end: the paper's second evaluation application
// runs a registry of standing queries (per-category click counts, the
// average of high-value events, and the max value in the sports category)
// over a bursty ad-event stream, printing fresh results each second.
//
//	go run ./examples/contquery
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"predstream/internal/apps/contquery"
	"predstream/internal/dsps"
	"predstream/internal/workload"
)

func main() {
	// Standing queries live in a shared, mutable registry: new queries
	// can be registered while the stream runs.
	registry, err := contquery.NewRegistry(
		contquery.Query{ID: "clicks", Op: contquery.Count, Window: 4 * time.Second, Slide: time.Second},
		contquery.Query{ID: "high-value-avg", MinValue: 60, Op: contquery.Avg, Window: 4 * time.Second, Slide: time.Second},
		contquery.Query{ID: "sports-max", Category: "sports", Op: contquery.Max, Window: 4 * time.Second, Slide: time.Second},
	)
	if err != nil {
		log.Fatal(err)
	}
	topo, sink, _, err := contquery.Build(contquery.Config{
		Categories: []string{"sports", "news", "tech", "travel", "music"},
		Users:      5000,
		Registry:   registry,
		Shape:      workload.BurstRate{Base: 800, BurstX: 4, Period: 5 * time.Second, Duration: time.Second},
		QueryCost:  -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster := dsps.NewCluster(dsps.ClusterConfig{Nodes: 2})
	if err := cluster.Submit(topo, dsps.SubmitConfig{Workers: 4}); err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	for tick := 1; tick <= 8; tick++ {
		if tick == 4 {
			// Register a new standing query while the stream runs.
			err := registry.Add(contquery.Query{
				ID: "tech-sum", Category: "tech", Op: contquery.Sum,
				Window: 4 * time.Second, Slide: time.Second,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("-- registered query tech-sum at runtime --")
		}
		time.Sleep(time.Second)
		latest := sink.Latest()
		fmt.Printf("t=%ds (%d result rows so far)\n", tick, len(sink.Rows()))
		queries := make([]string, 0, len(latest))
		for q := range latest {
			queries = append(queries, q)
		}
		sort.Strings(queries)
		for _, q := range queries {
			keys := make([]string, 0, len(latest[q]))
			for k := range latest[q] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("  %-16s %-8s %10.2f\n", q, k, latest[q][k])
			}
		}
	}
	snap := cluster.Snapshot()
	fmt.Printf("\nfinal: %d records fully processed, %d failed\n",
		snap.TotalAcked(), snap.TotalFailed())
}
