// Windowed URL Count end-to-end: the paper's first evaluation application
// runs on the simulated cluster under a sinusoidal load, and the top hosts
// of the sliding window are printed every second along with live stage
// statistics.
//
//	go run ./examples/urlcount
package main

import (
	"fmt"
	"log"
	"time"

	"predstream/internal/apps/urlcount"
	"predstream/internal/dsps"
	"predstream/internal/telemetry"
	"predstream/internal/workload"
)

func main() {
	topo, report, _, err := urlcount.Build(urlcount.Config{
		URLs:   500,
		ZipfS:  1.2,
		Shape:  workload.SinusoidRate{Base: 1500, Amplitude: 800, Period: 20 * time.Second},
		Window: 4 * time.Second,
		Slide:  time.Second,
		// Keep per-tuple costs off so the example runs fast anywhere.
		ParseCost: -1,
		CountCost: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster := dsps.NewCluster(dsps.ClusterConfig{Nodes: 2})
	if err := cluster.Submit(topo, dsps.SubmitConfig{Workers: 4}); err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	sampler := telemetry.NewSamplerFiltered(0, "parse", "count")
	sampler.Sample(cluster.Snapshot())
	for tick := 1; tick <= 8; tick++ {
		time.Sleep(time.Second)
		snap := cluster.Snapshot()
		sampler.Sample(snap)
		fmt.Printf("t=%ds acked=%d failed=%d\n", tick, snap.TotalAcked(), snap.TotalFailed())
		for _, row := range report.Top(5) {
			fmt.Printf("  %-28s %6d hits in window\n", row.Host, row.Count)
		}
	}
	fmt.Println("\nper-worker processing stats (parse+count stages):")
	for _, id := range sampler.Workers() {
		wins := sampler.Series(id)
		last := wins[len(wins)-1]
		fmt.Printf("  %-10s exec=%6.0f/s avg=%6.3fms queue=%4.0f\n",
			id, last.ExecRate, last.AvgExecMs, last.QueueLen)
	}
}
