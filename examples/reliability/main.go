// Reliability demo: the full predictive control loop from the paper.
// Windowed URL Count runs with dynamic grouping; mid-run one worker is
// slowed 8×; the controller detects it from the runtime statistics, steers
// its share of the stream to zero, and throughput recovers — against a
// static baseline the same fault collapses throughput.
//
//	go run ./examples/reliability
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"predstream/internal/apps/urlcount"
	"predstream/internal/core"
	"predstream/internal/dsps"
)

func main() {
	for _, dynamic := range []bool{true, false} {
		label := "framework (dynamic grouping + controller)"
		if !dynamic {
			label = "static baseline (shuffle grouping)"
		}
		fmt.Printf("== %s ==\n", label)
		run(dynamic)
		fmt.Println()
	}
}

func run(dynamic bool) {
	topo, _, dg, err := urlcount.Build(urlcount.Config{
		Dynamic:   dynamic,
		ParseCost: 5 * time.Millisecond,
		CountCost: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster := dsps.NewCluster(dsps.ClusterConfig{
		Nodes: 2, QueueSize: 64, MaxSpoutPending: 256, AckTimeout: 10 * time.Second,
	})
	if err := cluster.Submit(topo, dsps.SubmitConfig{Workers: 4}); err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if dynamic {
		ctrl, err := core.NewController(cluster,
			[]core.ControlTarget{{Component: "parse", Grouping: dg}},
			core.Config{Policy: core.PolicyBypass})
		if err != nil {
			log.Fatal(err)
		}
		go func() { _ = ctrl.Run(ctx, 250*time.Millisecond) }()
	}

	victim := ""
	for _, ts := range cluster.Snapshot().ComponentTasks("parse") {
		if ts.WorkerID != "worker-0" { // keep the spout's worker healthy
			victim = ts.WorkerID
			break
		}
	}
	prev := cluster.Snapshot()
	for sec := 1; sec <= 10; sec++ {
		if sec == 4 {
			if err := cluster.InjectFault(victim, dsps.Fault{Slowdown: 8}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  -- t=%ds: injected 8x slowdown on %s --\n", sec, victim)
		}
		time.Sleep(time.Second)
		snap := cluster.Snapshot()
		dt := snap.At.Sub(prev.At).Seconds()
		tps := float64(snap.TotalAcked()-prev.TotalAcked()) / dt
		prev = snap
		fmt.Printf("  t=%2ds throughput %6.0f tuples/s\n", sec, tps)
	}
}
