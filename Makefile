GO ?= go

.PHONY: build test race ci bench bench-train

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages: the data-parallel
# training engine (internal/nn) and the stream engine (internal/dsps).
race:
	$(GO) test -race ./internal/nn/... ./internal/dsps/...

ci:
	sh scripts/ci.sh

bench:
	$(GO) test -bench=. -benchmem .

# Training-engine throughput: serial vs 2/4/8 workers. Numbers are recorded
# in BENCH_train.json.
bench-train:
	$(GO) test -run xxx -bench 'BenchmarkTrain(Serial|Parallel)' -benchmem .
