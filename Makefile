GO ?= go

.PHONY: build test race ci lint lint-baseline doccheck bench bench-train bench-engine bench-elastic bench-serve bench-smoke soak soak-short fuzz-smoke cluster-demo

build:
	$(GO) build ./...

# Invariant linter: stdlib-only interprocedural static analysis
# (cmd/dspslint) enforcing the determinism, hot-path 0-alloc, lock-order,
# and goroutine-lifecycle rules. Exit 1 on findings or on suppression
# drift against the committed baseline; -timings prints per-stage wall
# time (load, callgraph, each analyzer).
lint:
	$(GO) run ./cmd/dspslint -timings -baseline LINT_BASELINE.json ./...

# Regenerate the committed machine-readable lint baseline (schema v2:
# per-analyzer counts, call-graph size, suppressions, alloc exemptions,
# per-stage timings).
lint-baseline:
	$(GO) run ./cmd/dspslint -summary LINT_BASELINE.json ./...

# Documentation gate: markdown link validation plus the exported-symbol
# doc-comment audit over the operator-facing packages.
doccheck:
	bash scripts/doccheck.sh

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages: the data-parallel
# training engine (internal/nn), the stream engine (internal/dsps), the
# SPSC ring plane under it (internal/ring), the chaos harness that
# hammers it (internal/chaos), the prediction server's coalescer and
# load-test harness (internal/serve), the distributed runtime's
# coordinator/worker protocol stack (internal/cluster), and the linter's
# parallel package loader (internal/analysis).
race:
	$(GO) test -race ./internal/nn/... ./internal/dsps/... ./internal/ring/... ./internal/chaos/... ./internal/serve/... ./internal/cluster/... ./internal/analysis/...

ci:
	sh scripts/ci.sh

# Short deterministic chaos soak (~15s): a generated fault schedule replays
# against the live engine — without the control loop, with it, and with the
# elastic planner live while scale events race a flash crowd — under
# invariant checking. Any violation prints the reproducing seed.
soak-short:
	$(GO) run ./cmd/dspsim -chaos -chaos-seed 1 -duration 4s -rate 300
	$(GO) run ./cmd/dspsim -chaos -chaos-seed 2 -duration 4s -rate 300 -dynamic -control
	$(GO) run ./cmd/dspsim -chaos -chaos-seed 7 -duration 4s -rate 800 -dynamic -control -elastic -shape burst
	$(GO) run ./cmd/dspsim -chaos -chaos-seed 5 -duration 4s -rate 800 -dynamic -control -elastic -shape burst -ring-size 64 -wait-strategy hybrid

# Full soak (~2min): a longer dspsim chaos replay plus the stretched
# engine and controlled-bypass soak tests. CHAOS_SOAK_SECONDS widens the
# fault-schedule horizon inside TestChaosSoakEngine.
soak:
	$(GO) run ./cmd/dspsim -chaos -chaos-seed 1 -duration 20s -rate 300 -dynamic -control
	CHAOS_SOAK_SECONDS=10 $(GO) test -run 'TestChaosSoak' -v ./internal/dsps/ ./internal/experiments/

# 10s of native fuzzing per target; corpus finds land in testdata/fuzz/.
fuzz-smoke:
	$(GO) test -fuzz='^FuzzChaosSchedule$$' -run '^$$' -fuzztime 10s ./internal/chaos/
	$(GO) test -fuzz='^FuzzGroupingRatios$$' -run '^$$' -fuzztime 10s ./internal/dsps/
	$(GO) test -fuzz='^FuzzHistogramQuantile$$' -run '^$$' -fuzztime 10s ./internal/dsps/
	$(GO) test -fuzz='^FuzzAckerTrees$$' -run '^$$' -fuzztime 10s ./internal/dsps/
	$(GO) test -fuzz='^FuzzRingBatchOps$$' -run '^$$' -fuzztime 10s ./internal/ring/
	$(GO) test -fuzz='^FuzzServeWireFrame$$' -run '^$$' -fuzztime 10s ./internal/serve/
	$(GO) test -fuzz='^FuzzClusterWireFrame$$' -run '^$$' -fuzztime 10s ./internal/cluster/

# Multi-process smoke (~8s): a dspsim coordinator plus two real predworker
# processes over the TCP wire protocol, with remote control loops and
# merged /metrics, shut down over the wire. See docs/CLUSTER.md.
cluster-demo:
	bash scripts/cluster_demo.sh

bench:
	$(GO) test -bench=. -benchmem .

# Training-engine throughput: serial vs 2/4/8 workers. Numbers are recorded
# in BENCH_train.json.
bench-train:
	$(GO) test -run xxx -bench 'BenchmarkTrain(Serial|Parallel)' -benchmem .

# Stream-engine data-plane throughput: acked/unanchored linear chains,
# fan-out, dynamic grouping, and steady-state emit, each reporting tuples/s
# and allocs/op. Numbers are recorded in BENCH_engine.json.
bench-engine:
	$(GO) test -run xxx -bench 'BenchmarkEngine' -benchmem ./internal/dsps/

# Elastic-runtime actuation latency: ScaleUp splice cost and the full
# up+down drain cycle under live load. Numbers are recorded in the
# `elastic` section of BENCH_engine.json.
bench-elastic:
	$(GO) test -run xxx -bench 'BenchmarkScale' -benchtime 2s -count 3 ./internal/dsps/

# Serving-path benchmarks: blocked GEMM vs the per-row loop, batched vs
# serial vs int8 forward, and end-to-end coalesced serve latency (p50/p99
# reported as extra benchmark metrics). Numbers are recorded in the
# `serve` section of BENCH_engine.json.
bench-serve:
	$(GO) test -run xxx -bench 'BenchmarkMulMatTo|BenchmarkMulVecToLoop' -benchmem ./internal/mat/
	$(GO) test -run xxx -bench 'Benchmark(Batch|Serial|Quant)Forward' -benchmem ./internal/nn/
	$(GO) test -run xxx -bench 'BenchmarkServe' -benchmem ./internal/serve/

# One-iteration pass over the engine benchmarks: catches benchmark bit-rot
# in CI without paying for statistically stable numbers. (The root-package
# experiment benchmarks are full experiment replicas — minutes even at 1x —
# so they stay out of the CI gate.)
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkEngine|BenchmarkScale' -benchtime 1x -benchmem ./internal/dsps/
	$(GO) test -run xxx -bench 'BenchmarkPushPop|BenchmarkBatch64' -benchtime 1x -benchmem ./internal/ring/
	$(GO) test -run xxx -bench 'BenchmarkMulMatTo|BenchmarkMulVecToLoop' -benchtime 1x -benchmem ./internal/mat/
	$(GO) test -run xxx -bench 'Benchmark(Batch|Serial|Quant)Forward' -benchtime 1x -benchmem ./internal/nn/
	$(GO) test -run xxx -bench 'BenchmarkServe' -benchtime 1x -benchmem ./internal/serve/
