module predstream

go 1.22
