package cluster

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// Proc is one managed worker OS process.
type Proc struct {
	// Name is the worker name the process joins the coordinator under.
	Name string
	// Cmd rebuilds the process's command line on every (re)start.
	Cmd func() *exec.Cmd

	mu     sync.Mutex
	cmd    *exec.Cmd
	frozen bool
}

// ProcSet launches and manages real worker OS processes so chaos
// schedules can kill (SIGKILL), freeze (SIGSTOP), thaw (SIGCONT), and
// restart them — the process-level analogue of the in-engine fault
// injectors. It implements chaos.ProcController.
type ProcSet struct {
	mu    sync.Mutex
	procs []*Proc
}

// NewProcSet returns an empty set; Add processes, then Start them.
func NewProcSet() *ProcSet { return &ProcSet{} }

// Add registers a worker process under name; cmd is invoked on every
// (re)start to build a fresh command line.
func (ps *ProcSet) Add(name string, cmd func() *exec.Cmd) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.procs = append(ps.procs, &Proc{Name: name, Cmd: cmd})
}

// Procs returns the managed worker names, in Add order.
func (ps *ProcSet) Procs() []string {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	names := make([]string, len(ps.procs))
	for i, p := range ps.procs {
		names[i] = p.Name
	}
	return names
}

func (ps *ProcSet) proc(i int) (*Proc, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if i < 0 || i >= len(ps.procs) {
		return nil, fmt.Errorf("cluster: no process %d (have %d)", i, len(ps.procs))
	}
	return ps.procs[i], nil
}

// Start launches every process that is not already running.
func (ps *ProcSet) Start() error {
	ps.mu.Lock()
	procs := append([]*Proc(nil), ps.procs...)
	ps.mu.Unlock()
	for i := range procs {
		if err := ps.Restart(i); err != nil {
			return err
		}
	}
	return nil
}

// Restart launches process i, first killing any still-running instance.
// It is both the initial-start and crash-recovery path.
func (ps *ProcSet) Restart(i int) error {
	p, err := ps.proc(i)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.killLocked()
	cmd := p.Cmd()
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("cluster: start %s: %w", p.Name, err)
	}
	p.cmd = cmd
	p.frozen = false
	return nil
}

// Kill delivers SIGKILL to process i and reaps it. The worker's TCP
// connection drops immediately, so the coordinator sees the leave without
// waiting for the heartbeat deadline.
func (ps *ProcSet) Kill(i int) error {
	p, err := ps.proc(i)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd == nil {
		return fmt.Errorf("cluster: %s not running", p.Name)
	}
	p.killLocked()
	return nil
}

// killLocked kills and reaps the current instance, if any. Caller holds
// p.mu. A frozen process is thawed first — SIGKILL terminates a stopped
// process, but reaping needs it scheduled.
func (p *Proc) killLocked() {
	if p.cmd == nil {
		return
	}
	if p.frozen {
		p.cmd.Process.Signal(syscall.SIGCONT)
	}
	p.cmd.Process.Kill()
	p.cmd.Wait() // reap; error (signal: killed) is the expected outcome
	p.cmd = nil
	p.frozen = false
}

// Freeze delivers SIGSTOP to process i. The process stays connected but
// stops heartbeating, so the coordinator's deadline declares it dead —
// the wire-level signature of a hung (not crashed) worker.
func (ps *ProcSet) Freeze(i int) error {
	p, err := ps.proc(i)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd == nil {
		return fmt.Errorf("cluster: %s not running", p.Name)
	}
	if p.frozen {
		return nil
	}
	if err := p.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		return fmt.Errorf("cluster: freeze %s: %w", p.Name, err)
	}
	p.frozen = true
	return nil
}

// Thaw delivers SIGCONT to a frozen process i; its next read error (the
// coordinator closed the expired connection) triggers its reconnect loop.
func (ps *ProcSet) Thaw(i int) error {
	p, err := ps.proc(i)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd == nil {
		return fmt.Errorf("cluster: %s not running", p.Name)
	}
	if !p.frozen {
		return nil
	}
	if err := p.cmd.Process.Signal(syscall.SIGCONT); err != nil {
		return fmt.Errorf("cluster: thaw %s: %w", p.Name, err)
	}
	p.frozen = false
	return nil
}

// Running reports whether process i currently has a live (possibly
// frozen) instance.
func (ps *ProcSet) Running(i int) bool {
	p, err := ps.proc(i)
	if err != nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cmd != nil
}

// Close kills and reaps every managed process. Safe to call multiple
// times and after individual Kills.
func (ps *ProcSet) Close() {
	ps.mu.Lock()
	procs := append([]*Proc(nil), ps.procs...)
	ps.mu.Unlock()
	for _, p := range procs {
		p.mu.Lock()
		p.killLocked()
		p.mu.Unlock()
	}
}

// WaitExit blocks until process i's current instance exits on its own
// (e.g. after an OpShutdown), up to timeout. Returns an error if it is
// still running at the deadline.
func (ps *ProcSet) WaitExit(i int, timeout time.Duration) error {
	p, err := ps.proc(i)
	if err != nil {
		return err
	}
	p.mu.Lock()
	cmd := p.cmd
	p.mu.Unlock()
	if cmd == nil {
		return nil
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		p.mu.Lock()
		if p.cmd == cmd {
			p.cmd = nil
			p.frozen = false
		}
		p.mu.Unlock()
		return nil
	case <-timer.C:
		return fmt.Errorf("cluster: %s still running after %v", p.Name, timeout)
	}
}
