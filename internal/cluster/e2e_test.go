package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"

	"predstream/internal/chaos"
	"predstream/internal/dsps"
)

// The process-level tests re-exec this test binary as real worker
// processes: TestMain detects the env var and runs a worker instead of
// the test suite, so kill/SIGSTOP chaos hits genuine OS processes without
// building cmd/predworker first.
const (
	workerEnvName  = "PREDSTREAM_CLUSTER_WORKER"
	workerEnvCoord = "PREDSTREAM_CLUSTER_COORD"
)

func TestMain(m *testing.M) {
	if name := os.Getenv(workerEnvName); name != "" {
		workerProcessMain(name, os.Getenv(workerEnvCoord))
		return
	}
	os.Exit(m.Run())
}

// workerProcessMain is the child-process entry: build an engine, join the
// coordinator, and serve until shutdown.
func workerProcessMain(name, coordAddr string) {
	b := dsps.NewTopologyBuilder("tpc")
	var col dsps.SpoutCollector
	n := 0
	b.SetSpout("src", func() dsps.Spout {
		return &dsps.SpoutFunc{
			OpenFn: func(_ dsps.TopologyContext, c dsps.SpoutCollector) { col = c },
			NextFn: func() bool {
				col.Emit(dsps.Values{n}, n)
				n++
				time.Sleep(time.Millisecond)
				return true
			},
		}
	}, 1, "n")
	dg := b.SetBolt("work", func() dsps.Bolt { return &dsps.BoltFunc{} }, 3).DynamicGrouping("src")
	topo, err := b.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	eng := dsps.NewCluster(dsps.ClusterConfig{Seed: 5, AckTimeout: 5 * time.Second})
	if err := eng.Submit(topo, dsps.SubmitConfig{Workers: 3}); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	w, err := NewWorker(WorkerConfig{
		Name:        name,
		Coordinator: coordAddr,
		Engine:      eng,
		Topology:    "tpc",
		Groupings:   map[string]*dsps.DynamicGrouping{"work": dg},
		Spouts:      []string{"src"},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	err = w.Run(context.Background())
	eng.Shutdown()
	if err != nil && !errors.Is(err, ErrShutdown) {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// workerProcs builds a ProcSet of n re-exec'd worker processes named
// proc-0..proc-(n-1), joined to coordAddr.
func workerProcs(n int, coordAddr string) *ProcSet {
	ps := NewProcSet()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("proc-%d", i)
		ps.Add(name, func() *exec.Cmd {
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(),
				workerEnvName+"="+name,
				workerEnvCoord+"="+coordAddr)
			return cmd
		})
	}
	return ps
}

// TestProcessCrashAndRejoin is the acceptance scenario: a seeded chaos
// schedule kills, freezes, and restarts real worker OS processes, and
// afterwards the whole fleet is live again, membership accounting
// balances, rejoined workers carry bumped generations, and every worker's
// engine passes its invariants (tuple conservation, acker quiescence)
// in-process.
func TestProcessCrashAndRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		HeartbeatEvery: 50 * time.Millisecond,
		DeadAfter:      300 * time.Millisecond,
		MetricsEvery:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	const procs = 2
	ps := workerProcs(procs, coord.Addr().String())
	defer ps.Close()
	if err := ps.Start(); err != nil {
		t.Fatal(err)
	}
	if err := coord.WaitForWorkers(procs, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Seed 8 yields a schedule exercising every disruption: a kill and
	// mid-run restart of proc-0, a freeze of proc-0, a kill of proc-1, and
	// the guaranteed horizon restores (thaw + restart).
	const seed = 8
	script := chaos.GenerateProc(seed, chaos.ProcGenConfig{
		Events:  4,
		Horizon: 1500 * time.Millisecond,
		Procs:   procs,
		Freeze:  true,
	})
	t.Logf("proc script (seed %d): %v", seed, script.Events)
	kinds := map[chaos.ProcKind]int{}
	for _, ev := range script.Events {
		kinds[ev.Kind]++
	}
	if kinds[chaos.ProcKill] == 0 || kinds[chaos.ProcFreeze] == 0 || kinds[chaos.ProcRestart] == 0 {
		t.Fatalf("schedule does not cover kill+restart+freeze: %v", script.Events)
	}
	rep := chaos.RunProc(ps, script, chaos.ProcRunOptions{})
	if rep.Fired == 0 {
		t.Fatalf("no events fired: %+v", rep)
	}
	for _, e := range rep.Errors {
		t.Errorf("controller error: %s", e)
	}

	// The generated schedule ends with the fleet whole; give restarted and
	// thawed processes time to rejoin.
	if err := coord.WaitForWorkers(procs, 10*time.Second); err != nil {
		t.Fatalf("fleet not whole after chaos: %v (stats %+v)", err, coord.Stats())
	}

	// Membership accounting must balance exactly.
	st := coord.Stats()
	if st.Joins != st.Leaves+st.Live {
		t.Fatalf("membership imbalance: %+v", st)
	}
	disrupted := map[int]bool{}
	for _, ev := range script.Events {
		if ev.Kind == chaos.ProcKill || ev.Kind == chaos.ProcFreeze {
			disrupted[ev.Proc] = true
		}
	}
	for i := 0; i < procs; i++ {
		name := fmt.Sprintf("proc-%d", i)
		gen := coord.Generation(name)
		if disrupted[i] && gen < 2 {
			t.Errorf("%s was disrupted but generation = %d", name, gen)
		}
		if gen < 1 {
			t.Errorf("%s never joined", name)
		}
	}

	// Every worker's engine must still satisfy the invariants, checked
	// inside its own process.
	for i := 0; i < procs; i++ {
		name := fmt.Sprintf("proc-%d", i)
		drained, violations, err := coord.CheckInvariants(name, 8*time.Second, false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !drained {
			t.Errorf("%s did not drain", name)
		}
		for _, v := range violations {
			t.Errorf("%s: invariant violation: %s", name, v)
		}
	}

	// Graceful teardown: shutdown over the wire, processes exit 0.
	coord.ShutdownWorkers()
	for i := 0; i < procs; i++ {
		if err := ps.WaitExit(i, 10*time.Second); err != nil {
			t.Error(err)
		}
	}
}

// TestProcScriptDeterminism pins that (seed, cfg) fully determines a
// process-chaos schedule — the reproducibility contract shared with
// chaos.Generate.
func TestProcScriptDeterminism(t *testing.T) {
	cfg := chaos.ProcGenConfig{Events: 6, Horizon: time.Second, Procs: 3, Freeze: true}
	a := chaos.GenerateProc(99, cfg)
	b := chaos.GenerateProc(99, cfg)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
	// The schedule must leave every process up: equal kills/restarts and
	// freezes/thaws per process.
	state := map[int]int{}
	for _, ev := range a.Events {
		switch ev.Kind {
		case chaos.ProcKill:
			state[ev.Proc] = 1
		case chaos.ProcFreeze:
			state[ev.Proc] = 2
		case chaos.ProcRestart, chaos.ProcThaw:
			state[ev.Proc] = 0
		}
	}
	for p, s := range state {
		if s != 0 {
			t.Fatalf("schedule leaves proc %d in state %d: %v", p, s, a.Events)
		}
	}
}
