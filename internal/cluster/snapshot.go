package cluster

import (
	"time"

	"predstream/internal/dsps"
)

// Snapshot-encoding bounds; decoders reject counts beyond them before
// allocating (the 1 MiB frame bound caps totals regardless).
const (
	maxWireTasks   = 1 << 14
	maxWireWorkers = 1 << 12
	maxWireNodes   = 1 << 12
	maxWireHist    = 1 << 10
	maxWireShards  = 1 << 12
)

// taskStats flag bits.
const (
	taskFlagSpout   = 1 << 0
	taskFlagRetired = 1 << 1
)

// AppendSnapshot appends s's wire encoding to dst: the capture time,
// per-task stats (with latency histograms), per-worker and per-node
// aggregates, acker and scale summaries. Component aggregates are NOT
// shipped — DecodeSnapshot rebuilds them from the tasks with
// dsps.BuildComponentStats, exactly as Cluster.Snapshot does, and
// WorkerStats.Tasks membership is likewise rebuilt by worker id. See
// docs/WIRE_PROTOCOL.md § Snapshot encoding for the field-by-field
// grammar.
func AppendSnapshot(dst []byte, s *dsps.Snapshot) []byte {
	dst = appendI64(dst, s.At.UnixNano())
	dst = appendU32(dst, uint32(len(s.Tasks)))
	for i := range s.Tasks {
		dst = appendTaskStats(dst, &s.Tasks[i])
	}
	dst = appendU32(dst, uint32(len(s.Workers)))
	for i := range s.Workers {
		dst = appendWorkerStats(dst, &s.Workers[i])
	}
	dst = appendU32(dst, uint32(len(s.Nodes)))
	for i := range s.Nodes {
		dst = appendNodeStats(dst, &s.Nodes[i])
	}
	dst = appendU32(dst, uint32(len(s.Acker)))
	for i := range s.Acker {
		a := &s.Acker[i]
		dst = appendString(dst, a.Topology)
		dst = appendI64(dst, int64(a.InFlight))
		dst = appendU32(dst, uint32(len(a.ShardPending)))
		for _, p := range a.ShardPending {
			dst = appendI64(dst, int64(p))
		}
	}
	dst = appendU32(dst, uint32(len(s.Scale)))
	for i := range s.Scale {
		sc := &s.Scale[i]
		dst = appendString(dst, sc.Topology)
		dst = appendI64(dst, sc.Ups)
		dst = appendI64(dst, sc.Downs)
		dst = appendU64(dst, sc.RouteEpoch)
		dst = appendI64(dst, int64(sc.Retired))
	}
	return dst
}

func appendTaskStats(dst []byte, t *dsps.TaskStats) []byte {
	dst = appendI64(dst, int64(t.TaskID))
	dst = appendString(dst, t.Topology)
	dst = appendString(dst, t.Component)
	dst = appendI64(dst, int64(t.TaskIndex))
	dst = appendString(dst, t.WorkerID)
	dst = appendString(dst, t.NodeID)
	var flags uint8
	if t.IsSpout {
		flags |= taskFlagSpout
	}
	if t.Retired {
		flags |= taskFlagRetired
	}
	dst = appendU8(dst, flags)
	dst = appendI64(dst, t.Executed)
	dst = appendI64(dst, t.Emitted)
	dst = appendI64(dst, t.Acked)
	dst = appendI64(dst, t.Failed)
	dst = appendI64(dst, t.Dropped)
	dst = appendI64(dst, int64(t.ExecLatency))
	dst = appendI64(dst, int64(t.QueueLatency))
	dst = appendI64(dst, int64(t.CompleteLatency))
	dst = appendI64(dst, int64(t.QueueLen))
	dst = appendI64(dst, t.Batches)
	dst = appendI64(dst, t.BackpressureWaits)
	dst = appendI64(dst, int64(t.RingDepth))
	dst = appendI64(dst, t.RingParks)
	dst = appendI64s(dst, t.ExecHist)
	dst = appendI64s(dst, t.CompleteHist)
	return dst
}

func appendWorkerStats(dst []byte, w *dsps.WorkerStats) []byte {
	dst = appendString(dst, w.WorkerID)
	dst = appendString(dst, w.NodeID)
	dst = appendI64(dst, w.Executed)
	dst = appendI64(dst, w.Emitted)
	dst = appendI64(dst, int64(w.ExecLatency))
	dst = appendI64(dst, int64(w.QueueLen))
	dst = appendF64(dst, w.Slowdown)
	dst = appendBool(dst, w.Misbehaving)
	return dst
}

func appendNodeStats(dst []byte, n *dsps.NodeStats) []byte {
	dst = appendString(dst, n.NodeID)
	dst = appendI64(dst, int64(n.Cores))
	dst = appendStrings(dst, n.Workers)
	dst = appendI64(dst, int64(n.Executed))
	dst = appendI64(dst, int64(n.Busy))
	return dst
}

func appendI64s(dst []byte, vs []int64) []byte {
	dst = appendU32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = appendI64(dst, v)
	}
	return dst
}

// DecodeSnapshot parses a snapshot payload (the body of a MsgMetrics
// frame, or the snapshot section of an OpSnapshot result).
func DecodeSnapshot(payload []byte) (*dsps.Snapshot, error) {
	d := &dec{b: payload}
	s := decodeSnapshot(d)
	if err := d.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// decodeSnapshot consumes one snapshot encoding from d; on malformed
// input it latches d.err and returns an incomplete value the caller must
// discard.
func decodeSnapshot(d *dec) *dsps.Snapshot {
	s := &dsps.Snapshot{At: time.Unix(0, d.i64())}
	nTasks := int(d.u32())
	if nTasks > maxWireTasks {
		d.fail("snapshot with %d tasks exceeds limit %d", nTasks, maxWireTasks)
		return s
	}
	for i := 0; i < nTasks && d.err == nil; i++ {
		s.Tasks = append(s.Tasks, decodeTaskStats(d))
	}
	nWorkers := int(d.u32())
	if nWorkers > maxWireWorkers {
		d.fail("snapshot with %d workers exceeds limit %d", nWorkers, maxWireWorkers)
		return s
	}
	for i := 0; i < nWorkers && d.err == nil; i++ {
		var w dsps.WorkerStats
		w.WorkerID = d.str()
		w.NodeID = d.str()
		w.Executed = d.i64()
		w.Emitted = d.i64()
		w.ExecLatency = time.Duration(d.i64())
		w.QueueLen = int(d.i64())
		w.Slowdown = d.f64()
		w.Misbehaving = d.boolean()
		s.Workers = append(s.Workers, w)
	}
	nNodes := int(d.u32())
	if nNodes > maxWireNodes {
		d.fail("snapshot with %d nodes exceeds limit %d", nNodes, maxWireNodes)
		return s
	}
	for i := 0; i < nNodes && d.err == nil; i++ {
		var n dsps.NodeStats
		n.NodeID = d.str()
		n.Cores = int(d.i64())
		n.Workers = d.strings()
		n.Executed = d.i64()
		n.Busy = int(d.i64())
		s.Nodes = append(s.Nodes, n)
	}
	nAcker := int(d.u32())
	if nAcker > maxWireNodes {
		d.fail("snapshot with %d acker entries exceeds limit %d", nAcker, maxWireNodes)
		return s
	}
	for i := 0; i < nAcker && d.err == nil; i++ {
		var a dsps.AckerStats
		a.Topology = d.str()
		a.InFlight = int(d.i64())
		for _, p := range d.i64s(maxWireShards) {
			a.ShardPending = append(a.ShardPending, int(p))
		}
		s.Acker = append(s.Acker, a)
	}
	nScale := int(d.u32())
	if nScale > maxWireNodes {
		d.fail("snapshot with %d scale entries exceeds limit %d", nScale, maxWireNodes)
		return s
	}
	for i := 0; i < nScale && d.err == nil; i++ {
		var sc dsps.ScaleStats
		sc.Topology = d.str()
		sc.Ups = d.i64()
		sc.Downs = d.i64()
		sc.RouteEpoch = d.u64()
		sc.Retired = int(d.i64())
		s.Scale = append(s.Scale, sc)
	}
	if d.err != nil {
		return s
	}
	// Rebuild the derived views the encoder deliberately did not ship:
	// component aggregates from the tasks, and each worker's task list by
	// worker-id membership (in snapshot task order, the order the local
	// Snapshot builds them in).
	s.Components = dsps.BuildComponentStats(s.Tasks)
	if len(s.Workers) > 0 {
		byWorker := make(map[string]int, len(s.Workers))
		for i := range s.Workers {
			byWorker[s.Workers[i].WorkerID] = i
		}
		for _, ts := range s.Tasks {
			if i, ok := byWorker[ts.WorkerID]; ok {
				s.Workers[i].Tasks = append(s.Workers[i].Tasks, ts)
			}
		}
	}
	return s
}

func decodeTaskStats(d *dec) dsps.TaskStats {
	var t dsps.TaskStats
	t.TaskID = int(d.i64())
	t.Topology = d.str()
	t.Component = d.str()
	t.TaskIndex = int(d.i64())
	t.WorkerID = d.str()
	t.NodeID = d.str()
	flags := d.u8()
	t.IsSpout = flags&taskFlagSpout != 0
	t.Retired = flags&taskFlagRetired != 0
	t.Executed = d.i64()
	t.Emitted = d.i64()
	t.Acked = d.i64()
	t.Failed = d.i64()
	t.Dropped = d.i64()
	t.ExecLatency = time.Duration(d.i64())
	t.QueueLatency = time.Duration(d.i64())
	t.CompleteLatency = time.Duration(d.i64())
	t.QueueLen = int(d.i64())
	t.Batches = d.i64()
	t.BackpressureWaits = d.i64()
	t.RingDepth = int(d.i64())
	t.RingParks = d.i64()
	t.ExecHist = d.i64s(maxWireHist)
	t.CompleteHist = d.i64s(maxWireHist)
	return t
}
