package cluster

import (
	"bytes"

	"testing"
	"time"

	"predstream/internal/dsps"
)

// FuzzClusterWireFrame feeds arbitrary bytes through the frame reader and
// every per-type payload decoder. The property under test is memory
// safety and total parsing: no panic, no unbounded allocation, and every
// successfully decoded message re-encodes to bytes its decoder accepts
// again (decode∘encode is the identity on the valid subset).
func FuzzClusterWireFrame(f *testing.F) {
	// Seed the corpus with one well-formed frame per message type, plus
	// classic malformed shapes; committed seeds live in
	// testdata/fuzz/FuzzClusterWireFrame.
	frame := func(msgType uint8, payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, msgType, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(frame(MsgHello, AppendHello(nil, Hello{
		MinVersion: 1, MaxVersion: 1, Name: "w0", Topology: "urlcount",
		QueueSize: 128, Spouts: []string{"urls"}, Controlled: []string{"count"},
	})))
	f.Add(frame(MsgWelcome, AppendWelcome(nil, Welcome{
		Version: 1, WorkerID: "w1", Generation: 2,
		HeartbeatEvery: 500 * time.Millisecond, DeadAfter: 2 * time.Second, MetricsEvery: time.Second,
	})))
	f.Add(frame(MsgReject, AppendReject(nil, Reject{Code: RejectVersion, Detail: "no common version"})))
	f.Add(frame(MsgHeartbeat, AppendHeartbeat(nil, Heartbeat{Seq: 7, InFlight: 2})))
	f.Add(frame(MsgMetrics, AppendSnapshot(nil, &dsps.Snapshot{
		At:    time.Unix(1, 0),
		Tasks: []dsps.TaskStats{{TaskID: 1, Topology: "t", Component: "c", WorkerID: "w", NodeID: "n"}},
	})))
	f.Add(frame(MsgCommand, AppendCommand(nil, Command{
		ReqID: 9, Op: OpSetRatios, Component: "count", Ratios: []float64{0.5, 0.5},
	})))
	f.Add(frame(MsgResult, AppendResult(nil, Result{
		ReqID: 9, Status: StatusError, Detail: "boom", Violations: []string{"v1"},
	})))
	f.Add(frame(MsgGoodbye, AppendGoodbye(nil, Goodbye{Reason: "done"})))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01})             // oversize claim
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})                   // zero body
	f.Add([]byte{0x00, 0x00, 0x00, 0x03, 0x05, 0x00, 0x00}) // truncated metrics

	f.Fuzz(func(t *testing.T, data []byte) {
		// A connection is a frame sequence: keep parsing until the stream
		// errors, so multi-frame inputs exercise resynchronization too.
		r := bytes.NewReader(data)
		for {
			msgType, payload, err := ReadFrame(r)
			if err != nil {
				return
			}
			fuzzDecode(t, msgType, payload)
		}
	})
}

// fuzzDecode routes one frame body to its decoder and asserts the
// round-trip property on success.
func fuzzDecode(t *testing.T, msgType uint8, payload []byte) {
	switch msgType {
	case MsgHello:
		if h, err := DecodeHello(payload); err == nil {
			if _, err := DecodeHello(AppendHello(nil, h)); err != nil {
				t.Fatalf("re-decode hello: %v", err)
			}
		}
	case MsgWelcome:
		if w, err := DecodeWelcome(payload); err == nil {
			if _, err := DecodeWelcome(AppendWelcome(nil, w)); err != nil {
				t.Fatalf("re-decode welcome: %v", err)
			}
		}
	case MsgReject:
		if r, err := DecodeReject(payload); err == nil {
			if _, err := DecodeReject(AppendReject(nil, r)); err != nil {
				t.Fatalf("re-decode reject: %v", err)
			}
		}
	case MsgHeartbeat:
		if h, err := DecodeHeartbeat(payload); err == nil {
			if _, err := DecodeHeartbeat(AppendHeartbeat(nil, h)); err != nil {
				t.Fatalf("re-decode heartbeat: %v", err)
			}
		}
	case MsgMetrics:
		if s, err := DecodeSnapshot(payload); err == nil {
			if _, err := DecodeSnapshot(AppendSnapshot(nil, s)); err != nil {
				t.Fatalf("re-decode snapshot: %v", err)
			}
		}
	case MsgCommand:
		if c, err := DecodeCommand(payload); err == nil {
			if _, err := DecodeCommand(AppendCommand(nil, c)); err != nil {
				t.Fatalf("re-decode command: %v", err)
			}
		}
	case MsgResult:
		if r, err := DecodeResult(payload); err == nil {
			if _, err := DecodeResult(AppendResult(nil, r)); err != nil {
				t.Fatalf("re-decode result: %v", err)
			}
		}
	case MsgGoodbye:
		if g, err := DecodeGoodbye(payload); err == nil {
			if _, err := DecodeGoodbye(AppendGoodbye(nil, g)); err != nil {
				t.Fatalf("re-decode goodbye: %v", err)
			}
		}
	}
}
