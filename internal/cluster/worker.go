package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"predstream/internal/chaos"
	"predstream/internal/dsps"
)

// ErrShutdown is returned by Worker.Run when the coordinator commanded
// the worker process to exit (OpShutdown).
var ErrShutdown = errors.New("cluster: worker shut down by coordinator")

// WorkerConfig wires one engine instance to a coordinator.
type WorkerConfig struct {
	// Name is the worker's stable identity; rejoining after a crash with
	// the same name bumps the coordinator-side generation. Required.
	Name string
	// Coordinator is the coordinator's "host:port". Required.
	Coordinator string
	// Engine is the in-process engine this worker hosts. Required.
	Engine *dsps.Cluster
	// Topology is the name of the (single) topology the engine runs; it
	// is the default target of scale and ratio commands.
	Topology string
	// Groupings maps component name → the dynamic-grouping handle an
	// OpSetRatios for that component actuates.
	Groupings map[string]*dsps.DynamicGrouping
	// Spouts lists spout component names, passed to the invariant check
	// (OpCheckInvariants) for conservation accounting.
	Spouts []string
	// DialTimeout bounds one connection attempt; default 2s.
	DialTimeout time.Duration
	// BackoffMin and BackoffMax shape the reconnect backoff (doubling,
	// capped); defaults 50ms and 2s.
	BackoffMin, BackoffMax time.Duration
	// MinVersion and MaxVersion override the advertised protocol range
	// (tests use this to force negotiation failures); defaults are the
	// package constants.
	MinVersion, MaxVersion uint8
	// Events receives structured connection events; nil disables.
	Events dsps.EventSink
}

// Worker is the worker-side runtime: it dials the coordinator, performs
// the versioned handshake, ships heartbeats and metric snapshots on the
// cadences the Welcome contracted, executes commands against its local
// engine, and reconnects with exponential backoff when the connection
// drops (including after a coordinator-declared heartbeat expiry, e.g. a
// SIGSTOP longer than the dead-after window).
type Worker struct {
	cfg WorkerConfig

	mu         sync.Mutex
	generation uint32
	workerID   string
	joins      int
}

// NewWorker validates cfg and returns an unstarted worker; call Run.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Name == "" {
		return nil, errors.New("cluster: worker name required")
	}
	if cfg.Coordinator == "" {
		return nil, errors.New("cluster: coordinator address required")
	}
	if cfg.Engine == nil {
		return nil, errors.New("cluster: worker engine required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.MinVersion == 0 {
		cfg.MinVersion = MinVersion
	}
	if cfg.MaxVersion == 0 {
		cfg.MaxVersion = MaxVersion
	}
	if cfg.MaxVersion < cfg.MinVersion {
		return nil, fmt.Errorf("cluster: invalid version range %d-%d", cfg.MinVersion, cfg.MaxVersion)
	}
	return &Worker{cfg: cfg}, nil
}

// Generation returns the generation assigned by the most recent Welcome
// (0 before the first join).
func (w *Worker) Generation() uint32 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.generation
}

// WorkerID returns the session id assigned by the most recent Welcome.
func (w *Worker) WorkerID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.workerID
}

// Joins returns how many times this worker has completed a handshake.
func (w *Worker) Joins() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.joins
}

func (w *Worker) emit(level int, msg string, kv ...string) {
	if w.cfg.Events != nil {
		w.cfg.Events.Event(level, msg, kv...)
	}
}

// Run joins the coordinator and serves until ctx is cancelled (returns
// nil), the coordinator commands shutdown (returns ErrShutdown), or a
// permanent handshake failure occurs (version mismatch or bad hello —
// retrying cannot help, so Run returns the Reject as an error).
// Transient failures — connection refused, duplicate-name while a stale
// session drains, coordinator restart — are retried with backoff.
func (w *Worker) Run(ctx context.Context) error {
	backoff := w.cfg.BackoffMin
	for {
		if ctx.Err() != nil {
			return nil
		}
		err := w.runOnce(ctx)
		switch {
		case err == nil:
			// Session ended because ctx was cancelled.
			return nil
		case errors.Is(err, ErrShutdown):
			return err
		case isPermanentReject(err):
			return err
		}
		w.emit(dsps.EventWarn, "worker reconnecting",
			"worker", w.cfg.Name, "backoff", backoff.String(), "cause", err.Error())
		timer := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil
		case <-timer.C:
		}
		backoff *= 2
		if backoff > w.cfg.BackoffMax {
			backoff = w.cfg.BackoffMax
		}
	}
}

// rejectError wraps a coordinator Reject so Run can distinguish permanent
// refusals from transient ones.
type rejectError struct{ r Reject }

func (e rejectError) Error() string {
	return fmt.Sprintf("cluster: join rejected (code %d): %s", e.r.Code, e.r.Detail)
}

func isPermanentReject(err error) bool {
	var re rejectError
	if !errors.As(err, &re) {
		return false
	}
	return re.r.Code == RejectVersion || re.r.Code == RejectBadHello
}

// runOnce performs one connect → handshake → serve cycle. It returns nil
// only when ctx ended the session; any other exit is a reconnect cause.
func (w *Worker) runOnce(ctx context.Context) error {
	conn, err := net.DialTimeout("tcp", w.cfg.Coordinator, w.cfg.DialTimeout)
	if err != nil {
		return err
	}
	welcome, err := w.handshake(conn)
	if err != nil {
		conn.Close()
		return err
	}
	w.mu.Lock()
	w.generation = welcome.Generation
	w.workerID = welcome.WorkerID
	w.joins++
	w.mu.Unlock()
	w.emit(dsps.EventInfo, "worker joined coordinator",
		"worker", w.cfg.Name, "id", welcome.WorkerID,
		"generation", strconv.Itoa(int(welcome.Generation)),
		"version", strconv.Itoa(int(welcome.Version)))

	s := &workerSession{w: w, conn: conn, welcome: welcome}
	return s.serve(ctx)
}

// handshake sends Hello and reads the Welcome (or Reject) under the dial
// timeout.
func (w *Worker) handshake(conn net.Conn) (Welcome, error) {
	controlled := make([]string, 0, len(w.cfg.Groupings))
	for name := range w.cfg.Groupings {
		controlled = append(controlled, name)
	}
	hello := Hello{
		MinVersion: w.cfg.MinVersion,
		MaxVersion: w.cfg.MaxVersion,
		Name:       w.cfg.Name,
		Topology:   w.cfg.Topology,
		QueueSize:  uint32(w.cfg.Engine.QueueSize()),
		Spouts:     w.cfg.Spouts,
		Controlled: controlled,
	}
	conn.SetDeadline(time.Now().Add(w.cfg.DialTimeout))
	defer conn.SetDeadline(time.Time{})
	if err := WriteFrame(conn, MsgHello, AppendHello(nil, hello)); err != nil {
		return Welcome{}, fmt.Errorf("send hello: %w", err)
	}
	msgType, payload, err := ReadFrame(conn)
	if err != nil {
		return Welcome{}, fmt.Errorf("read welcome: %w", err)
	}
	switch msgType {
	case MsgWelcome:
		return DecodeWelcome(payload)
	case MsgReject:
		r, err := DecodeReject(payload)
		if err != nil {
			return Welcome{}, fmt.Errorf("malformed reject: %w", err)
		}
		return Welcome{}, rejectError{r}
	default:
		return Welcome{}, fmt.Errorf("unexpected handshake reply type %#x", msgType)
	}
}

// workerSession is one live connection, worker side.
type workerSession struct {
	w       *Worker
	conn    net.Conn
	welcome Welcome

	writeMu sync.Mutex // heartbeat/metrics ticker races command results
}

func (s *workerSession) write(msgType uint8, payload []byte) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.conn.SetWriteDeadline(time.Now().Add(s.w.cfg.DialTimeout))
	return WriteFrame(s.conn, msgType, payload)
}

// serve runs the session: a ticker goroutine ships heartbeats and
// metrics while this goroutine reads and executes commands. Exits: ctx
// cancelled → Goodbye, nil; OpShutdown → ErrShutdown; connection error →
// the error (Run reconnects).
func (s *workerSession) serve(ctx context.Context) error {
	tickerDone := make(chan struct{})
	var tickerWG sync.WaitGroup
	tickerWG.Add(1)
	go func() {
		defer tickerWG.Done()
		s.beatLoop(tickerDone)
	}()
	defer func() {
		close(tickerDone)
		tickerWG.Wait()
		s.conn.Close()
	}()

	// Watch ctx on the side: cancelling must unblock the blocking read.
	readCtxDone := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		select {
		case <-ctx.Done():
			s.write(MsgGoodbye, AppendGoodbye(nil, Goodbye{Reason: "context cancelled"}))
			s.conn.Close()
		case <-readCtxDone:
		}
	}()
	defer func() {
		close(readCtxDone)
		watchWG.Wait()
	}()

	for {
		msgType, payload, err := ReadFrame(s.conn)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("connection lost: %w", err)
		}
		if msgType != MsgCommand {
			continue // tolerate unknown coordinator→worker types
		}
		cmd, err := DecodeCommand(payload)
		if err != nil {
			continue
		}
		res, shutdown := s.execute(cmd)
		if err := s.write(MsgResult, AppendResult(nil, res)); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("send result: %w", err)
		}
		if shutdown {
			return ErrShutdown
		}
	}
}

// beatLoop ships heartbeats every HeartbeatEvery and a metrics snapshot
// every MetricsEvery, both on the cadence the Welcome contracted. The
// first beat and snapshot go out immediately so the coordinator sees a
// live, observable worker right after the handshake.
func (s *workerSession) beatLoop(done chan struct{}) {
	var seq uint64
	beat := func() {
		seq++
		hb := Heartbeat{Seq: seq, InFlight: uint32(s.w.cfg.Engine.InFlight())}
		s.write(MsgHeartbeat, AppendHeartbeat(nil, hb))
	}
	ship := func() {
		s.write(MsgMetrics, AppendSnapshot(nil, s.w.cfg.Engine.Snapshot()))
	}
	beat()
	ship()
	ticker := time.NewTicker(s.welcome.HeartbeatEvery)
	defer ticker.Stop()
	lastShip := time.Now()
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
			beat()
			if time.Since(lastShip) >= s.welcome.MetricsEvery {
				ship()
				lastShip = time.Now()
			}
		}
	}
}

// execute runs one command against the local engine and builds its
// Result. The second return is true when the command was OpShutdown.
func (s *workerSession) execute(cmd Command) (Result, bool) {
	cfg := s.w.cfg
	res := Result{ReqID: cmd.ReqID, Status: StatusOK}
	topology := cmd.Topology
	if topology == "" {
		topology = cfg.Topology
	}
	fail := func(err error) Result {
		res.Status = StatusError
		res.Detail = err.Error()
		return res
	}
	switch cmd.Op {
	case OpPing:
		return res, false
	case OpSnapshot:
		res.Snap = cfg.Engine.Snapshot()
		return res, false
	case OpSetRatios:
		g := cfg.Groupings[cmd.Component]
		if g == nil {
			return fail(fmt.Errorf("no dynamic grouping for component %q", cmd.Component)), false
		}
		if err := g.SetRatios(cmd.Ratios); err != nil {
			return fail(err), false
		}
		return res, false
	case OpScaleUp:
		if err := cfg.Engine.ScaleUp(topology, cmd.Component, int(cmd.N)); err != nil {
			return fail(err), false
		}
		return res, false
	case OpScaleDown:
		if err := cfg.Engine.ScaleDown(topology, cmd.Component, int(cmd.N), cmd.Timeout); err != nil {
			return fail(err), false
		}
		return res, false
	case OpInjectFault:
		if err := cfg.Engine.InjectFault(cmd.Worker, cmd.Fault); err != nil {
			return fail(err), false
		}
		return res, false
	case OpClearFault:
		cfg.Engine.ClearFault(cmd.Worker)
		return res, false
	case OpPauseSpouts:
		cfg.Engine.PauseSpouts()
		return res, false
	case OpResumeSpouts:
		cfg.Engine.ResumeSpouts()
		return res, false
	case OpDrain:
		res.Drained = cfg.Engine.Drain(cmd.Timeout)
		return res, false
	case OpCheckInvariants:
		drained, violations := chaos.Quiesce(cfg.Engine, cfg.Spouts, cmd.Timeout, cmd.Resume)
		res.Drained = drained
		for _, v := range violations {
			res.Violations = append(res.Violations, v.String())
		}
		return res, false
	case OpShutdown:
		return res, true
	default:
		res.Status = StatusUnsupported
		res.Detail = fmt.Sprintf("unknown op %#x", cmd.Op)
		return res, false
	}
}
