package cluster

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"predstream/internal/dsps"
)

// testEngine builds a small continuously-emitting topology: src →
// work(3, dynamic grouping). Returns the engine and the grouping handle.
func testEngine(t *testing.T) (*dsps.Cluster, *dsps.DynamicGrouping) {
	t.Helper()
	b := dsps.NewTopologyBuilder("tpc")
	var col dsps.SpoutCollector
	n := 0
	b.SetSpout("src", func() dsps.Spout {
		return &dsps.SpoutFunc{
			OpenFn: func(_ dsps.TopologyContext, c dsps.SpoutCollector) { col = c },
			NextFn: func() bool {
				col.Emit(dsps.Values{n}, n)
				n++
				time.Sleep(time.Millisecond)
				return true
			},
		}
	}, 1, "n")
	dg := b.SetBolt("work", func() dsps.Bolt { return &dsps.BoltFunc{} }, 3).DynamicGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := dsps.NewCluster(dsps.ClusterConfig{Seed: 3, AckTimeout: 5 * time.Second})
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	return c, dg
}

// startWorker runs a Worker against the coordinator in a goroutine and
// returns it plus a stop function that cancels and waits.
func startWorker(t *testing.T, coord *Coordinator, name string) (*Worker, *dsps.Cluster, func() error) {
	t.Helper()
	eng, dg := testEngine(t)
	w, err := NewWorker(WorkerConfig{
		Name:        name,
		Coordinator: coord.Addr().String(),
		Engine:      eng,
		Topology:    "tpc",
		Groupings:   map[string]*dsps.DynamicGrouping{"work": dg},
		Spouts:      []string{"src"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	stop := func() error {
		cancel()
		err := <-done
		eng.Shutdown()
		return err
	}
	return w, eng, stop
}

// rawHello dials the coordinator, sends one Hello, and returns the reply.
func rawHello(t *testing.T, addr string, h Hello) (uint8, []byte, net.Conn) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := WriteFrame(conn, MsgHello, AppendHello(nil, h)); err != nil {
		t.Fatal(err)
	}
	msgType, payload, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		t.Fatal(err)
	}
	return msgType, payload, conn
}

func TestHandshakeVersionMismatch(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	msgType, payload, conn := rawHello(t, coord.Addr().String(),
		Hello{MinVersion: 7, MaxVersion: 9, Name: "future"})
	defer conn.Close()
	if msgType != MsgReject {
		t.Fatalf("reply type %#x, want MsgReject", msgType)
	}
	r, err := DecodeReject(payload)
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != RejectVersion {
		t.Fatalf("reject code %d, want RejectVersion", r.Code)
	}
	if coord.Stats().Rejects != 1 {
		t.Fatalf("stats = %+v", coord.Stats())
	}

	// A Worker configured with an incompatible range must give up rather
	// than retry forever.
	eng, _ := testEngine(t)
	defer eng.Shutdown()
	w, err := NewWorker(WorkerConfig{
		Name: "future", Coordinator: coord.Addr().String(), Engine: eng,
		MinVersion: 7, MaxVersion: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = w.Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("Run = %v, want permanent reject", err)
	}
}

func TestDuplicateJoinRejected(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	_, _, stop := startWorker(t, coord, "alpha")
	defer stop()
	if err := coord.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	msgType, payload, conn := rawHello(t, coord.Addr().String(),
		Hello{MinVersion: 1, MaxVersion: 1, Name: "alpha"})
	defer conn.Close()
	if msgType != MsgReject {
		t.Fatalf("reply type %#x, want MsgReject", msgType)
	}
	r, err := DecodeReject(payload)
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != RejectDuplicate {
		t.Fatalf("reject code %d, want RejectDuplicate", r.Code)
	}
	// The live session must be unaffected.
	if err := coord.Ping("alpha"); err != nil {
		t.Fatal(err)
	}
}

func TestHeartbeatExpiryAndRejoinBumpsGeneration(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		HeartbeatEvery: 20 * time.Millisecond,
		DeadAfter:      120 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Join raw and then go silent: no heartbeats ever.
	msgType, payload, conn := rawHello(t, coord.Addr().String(),
		Hello{MinVersion: 1, MaxVersion: 1, Name: "mute"})
	defer conn.Close()
	if msgType != MsgWelcome {
		t.Fatalf("reply type %#x, want MsgWelcome", msgType)
	}
	w, err := DecodeWelcome(payload)
	if err != nil {
		t.Fatal(err)
	}
	if w.Generation != 1 || w.HeartbeatEvery != 20*time.Millisecond {
		t.Fatalf("welcome = %+v", w)
	}

	deadline := time.Now().Add(5 * time.Second)
	for coord.Stats().Live != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("silent worker never expired: %+v", coord.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := coord.Stats()
	if st.Expiries != 1 || st.Leaves != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Rejoining under the same name must succeed with a bumped generation.
	msgType, payload, conn2 := rawHello(t, coord.Addr().String(),
		Hello{MinVersion: 1, MaxVersion: 1, Name: "mute"})
	defer conn2.Close()
	if msgType != MsgWelcome {
		t.Fatalf("rejoin reply type %#x", msgType)
	}
	w2, err := DecodeWelcome(payload)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Generation != 2 {
		t.Fatalf("rejoin generation = %d, want 2", w2.Generation)
	}
}

func TestFleetControlAndMetrics(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		HeartbeatEvery: 20 * time.Millisecond,
		MetricsEvery:   30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	_, _, stopA := startWorker(t, coord, "alpha")
	defer stopA()
	_, _, stopB := startWorker(t, coord, "beta")
	defer stopB()
	if err := coord.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	workers := coord.Workers()
	if len(workers) != 2 || workers[0].Name != "alpha" || workers[1].Name != "beta" {
		t.Fatalf("workers = %+v", workers)
	}
	if workers[0].Topology != "tpc" || workers[0].QueueSize == 0 {
		t.Fatalf("hello inventory lost: %+v", workers[0])
	}

	// Remote engine: live snapshot over the wire.
	eng, err := coord.Engine("alpha")
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if len(snap.Tasks) == 0 {
		t.Fatal("remote snapshot empty")
	}
	for _, ts := range snap.Tasks {
		if ts.Topology != "tpc" {
			t.Fatalf("unexpected topology %q", ts.Topology)
		}
	}
	if eng.QueueSize() <= 0 {
		t.Fatalf("queue size = %d", eng.QueueSize())
	}

	// Remote grouping: ratios actuate on the worker's engine.
	if err := coord.Grouping("alpha", "work").SetRatios([]float64{1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := coord.Grouping("alpha", "nosuch").SetRatios([]float64{1}); err == nil {
		t.Fatal("ratios for unknown component accepted")
	}

	// Remote fault injection against an engine-level worker id.
	if err := eng.InjectFault("worker-1", dsps.Fault{Slowdown: 3}); err != nil {
		t.Fatal(err)
	}
	if err := eng.ClearFault("worker-1"); err != nil {
		t.Fatal(err)
	}

	// Merged fleet snapshot: shipped metrics arrive prefixed per worker.
	deadline := time.Now().Add(5 * time.Second)
	for {
		merged := coord.Snapshot()
		prefixes := map[string]bool{}
		for _, ts := range merged.Tasks {
			prefixes[strings.SplitN(ts.Topology, "/", 2)[0]] = true
		}
		if prefixes["alpha"] && prefixes["beta"] {
			if len(merged.Components) == 0 || len(merged.Workers) == 0 {
				t.Fatalf("merged snapshot missing aggregates: %+v", merged)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never shipped from both workers: %v", prefixes)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Remote invariant check: pauses, drains, checks, resumes.
	drained, violations, err := coord.CheckInvariants("beta", 5*time.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	if !drained {
		t.Fatal("beta did not drain")
	}
	if len(violations) != 0 {
		t.Fatalf("violations: %v", violations)
	}
}

func TestShutdownWorkersEndsRun(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	eng, _ := testEngine(t)
	defer eng.Shutdown()
	w, err := NewWorker(WorkerConfig{Name: "solo", Coordinator: coord.Addr().String(), Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var runErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		runErr = w.Run(context.Background())
	}()
	if err := coord.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	coord.ShutdownWorkers()
	wg.Wait()
	if !errors.Is(runErr, ErrShutdown) {
		t.Fatalf("Run = %v, want ErrShutdown", runErr)
	}
}

func TestWorkerCleanLeaveOnCancel(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	_, _, stop := startWorker(t, coord, "brief")
	if err := coord.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("cancelled Run = %v, want nil", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for coord.Stats().Live != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("leave not recorded: %+v", coord.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := coord.Stats(); st.CleanLeaves != 1 {
		t.Fatalf("stats = %+v, want one clean leave", st)
	}
}
