package cluster

import (
	"bytes"
	"encoding/binary"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"predstream/internal/dsps"
)

func TestNegotiateVersion(t *testing.T) {
	cases := []struct {
		lmin, lmax, rmin, rmax uint8
		want                   uint8
		wantErr                bool
	}{
		{1, 1, 1, 1, 1, false},
		{1, 3, 2, 5, 3, false}, // highest in both ranges
		{2, 5, 1, 3, 3, false},
		{1, 1, 2, 3, 0, true}, // disjoint: remote too new
		{4, 6, 1, 3, 0, true}, // disjoint: remote too old
	}
	for _, c := range cases {
		got, err := NegotiateVersion(c.lmin, c.lmax, c.rmin, c.rmax)
		if c.wantErr {
			if err == nil {
				t.Errorf("NegotiateVersion(%d-%d, %d-%d) = %d, want error", c.lmin, c.lmax, c.rmin, c.rmax, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("NegotiateVersion(%d-%d, %d-%d) = %d, %v; want %d", c.lmin, c.lmax, c.rmin, c.rmax, got, err, c.want)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	if err := WriteFrame(&buf, MsgHeartbeat, payload); err != nil {
		t.Fatal(err)
	}
	// Frame layout: u32 bodyLen | u8 msgType | payload.
	raw := buf.Bytes()
	if got := binary.BigEndian.Uint32(raw[:4]); got != uint32(1+len(payload)) {
		t.Fatalf("bodyLen = %d, want %d", got, 1+len(payload))
	}
	msgType, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgHeartbeat || !bytes.Equal(got, payload) {
		t.Fatalf("ReadFrame = (%#x, %x)", msgType, got)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	if err := WriteFrame(&bytes.Buffer{}, MsgMetrics, make([]byte, MaxFrameBody)); err != ErrFrameTooLarge {
		t.Fatalf("write oversize: %v", err)
	}
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameBody+1)
	buf.Write(hdr[:])
	if _, _, err := ReadFrame(&buf); err != ErrFrameTooLarge {
		t.Fatalf("read oversize: %v", err)
	}
	// Zero-length body: not even a type byte.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("empty body accepted")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, MsgCommand, []byte("abcdef"))
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, _, err := ReadFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{
		MinVersion: 1, MaxVersion: 1,
		Name:       "worker-a",
		Topology:   "urlcount",
		QueueSize:  256,
		Spouts:     []string{"urls"},
		Controlled: []string{"count", "sink"},
	}
	got, err := DecodeHello(AppendHello(nil, h))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("got %+v want %+v", got, h)
	}
}

func TestHelloRejectsBadMagic(t *testing.T) {
	raw := AppendHello(nil, Hello{MinVersion: 1, MaxVersion: 1, Name: "w"})
	raw[0] ^= 0xFF
	if _, err := DecodeHello(raw); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestHelloRejectsInvertedRange(t *testing.T) {
	if _, err := DecodeHello(AppendHello(nil, Hello{MinVersion: 3, MaxVersion: 1, Name: "w"})); err == nil {
		t.Fatal("inverted version range accepted")
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	w := Welcome{
		Version: 1, WorkerID: "w7", Generation: 3,
		HeartbeatEvery: 500 * time.Millisecond,
		DeadAfter:      2 * time.Second,
		MetricsEvery:   time.Second,
	}
	got, err := DecodeWelcome(AppendWelcome(nil, w))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, w) {
		t.Fatalf("got %+v want %+v", got, w)
	}
}

func TestRejectRoundTrip(t *testing.T) {
	r := Reject{Code: RejectDuplicate, Detail: `worker "a" already joined`}
	got, err := DecodeReject(AppendReject(nil, r))
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("got %+v want %+v", got, r)
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	h := Heartbeat{Seq: 1 << 40, InFlight: 12345}
	got, err := DecodeHeartbeat(AppendHeartbeat(nil, h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v want %+v", got, h)
	}
}

func TestCommandRoundTrip(t *testing.T) {
	cases := []Command{
		{ReqID: 1, Op: OpPing},
		{ReqID: 2, Op: OpSetRatios, Component: "count", Ratios: []float64{0.25, 0.5, 0.25}},
		{ReqID: 3, Op: OpScaleUp, Topology: "urlcount", Component: "count", N: 2},
		{ReqID: 4, Op: OpScaleDown, Topology: "urlcount", Component: "count", N: 1, Timeout: 250 * time.Millisecond},
		{ReqID: 5, Op: OpInjectFault, Worker: "worker-2",
			Fault: dsps.Fault{Slowdown: 4.5, DropProb: 0.1, FailProb: 0.2, Stall: true}},
		{ReqID: 6, Op: OpCheckInvariants, Timeout: 3 * time.Second, Resume: true},
		{ReqID: 7, Op: OpShutdown},
	}
	for _, c := range cases {
		got, err := DecodeCommand(AppendCommand(nil, c))
		if err != nil {
			t.Fatalf("op %#x: %v", c.Op, err)
		}
		if !reflect.DeepEqual(got, c) {
			t.Fatalf("op %#x: got %+v want %+v", c.Op, got, c)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	cases := []Result{
		{ReqID: 1, Status: StatusOK},
		{ReqID: 2, Status: StatusError, Detail: "no such component"},
		{ReqID: 3, Status: StatusOK, Drained: true,
			Violations: []string{"conservation: emitted 10 acked 9", "acker: 1 in flight"}},
	}
	for _, r := range cases {
		got, err := DecodeResult(AppendResult(nil, r))
		if err != nil {
			t.Fatalf("reqID %d: %v", r.ReqID, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("got %+v want %+v", got, r)
		}
	}
}

func TestResultCarriesSnapshot(t *testing.T) {
	snap := &dsps.Snapshot{
		At: time.Unix(0, 1700000000),
		Tasks: []dsps.TaskStats{{
			TaskID: 1, Topology: "t", Component: "c", WorkerID: "w", NodeID: "n",
			Executed: 10, Emitted: 10, Acked: 9,
		}},
	}
	r := Result{ReqID: 9, Status: StatusOK, Snap: snap}
	got, err := DecodeResult(AppendResult(nil, r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Snap == nil || len(got.Snap.Tasks) != 1 || got.Snap.Tasks[0].Executed != 10 {
		t.Fatalf("snapshot lost: %+v", got.Snap)
	}
	if !got.Snap.At.Equal(snap.At) {
		t.Fatalf("At = %v want %v", got.Snap.At, snap.At)
	}
}

func TestGoodbyeRoundTrip(t *testing.T) {
	g := Goodbye{Reason: "context cancelled"}
	got, err := DecodeGoodbye(AppendGoodbye(nil, g))
	if err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Fatalf("got %+v want %+v", got, g)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	raw := AppendHeartbeat(nil, Heartbeat{Seq: 1})
	if _, err := DecodeHeartbeat(append(raw, 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeRejectsHugeStringLength(t *testing.T) {
	// A Reject whose detail claims 0xFFFF bytes but carries none must fail
	// cleanly, not allocate or panic.
	raw := []byte{RejectBadHello, 0xFF, 0xFF}
	if _, err := DecodeReject(raw); err == nil {
		t.Fatal("huge string length accepted")
	}
}

// TestWireDocExample pins the worked hexdump in docs/WIRE_PROTOCOL.md: a
// Heartbeat{Seq: 7, InFlight: 2} frame must encode to exactly these
// bytes. If this test fails, the encoder changed and the spec's example
// (and the protocol version) must be revisited.
func TestWireDocExample(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgHeartbeat, AppendHeartbeat(nil, Heartbeat{Seq: 7, InFlight: 2})); err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0x00, 0x00, 0x00, 0x0D, // bodyLen = 13
		0x04,                                           // MsgHeartbeat
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x07, // seq = 7
		0x00, 0x00, 0x00, 0x02, // inFlight = 2
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("frame = % X, want % X", buf.Bytes(), want)
	}

	// Second worked example in the spec: the opening Hello.
	hello := Hello{
		MinVersion: 1, MaxVersion: 1,
		Name: "w1", Topology: "tpc", QueueSize: 64,
		Spouts: []string{"src"}, Controlled: []string{"work"},
	}
	buf.Reset()
	if err := WriteFrame(&buf, MsgHello, AppendHello(nil, hello)); err != nil {
		t.Fatal(err)
	}
	wantHello := []byte{
		0x00, 0x00, 0x00, 0x29, // bodyLen = 41
		0x01,                   // MsgHello
		0x50, 0x44, 0x53, 0x50, // magic "PDSP"
		0x01, 0x01, // minVersion = 1, maxVersion = 1
		0x00, 0x00, // flags (reserved)
		0x00, 0x02, 0x77, 0x31, // name = "w1"
		0x00, 0x03, 0x74, 0x70, 0x63, // topology = "tpc"
		0x00, 0x00, 0x00, 0x40, // queueSize = 64
		0x00, 0x00, 0x00, 0x01, 0x00, 0x03, 0x73, 0x72, 0x63, // spouts = ["src"]
		0x00, 0x00, 0x00, 0x01, 0x00, 0x04, 0x77, 0x6F, 0x72, 0x6B, // controlled = ["work"]
	}
	if !bytes.Equal(buf.Bytes(), wantHello) {
		t.Fatalf("hello frame = % X, want % X", buf.Bytes(), wantHello)
	}
}

// TestWireSpecCovers asserts that every message type, opcode, reject
// code, and result status defined in wire.go is named in
// docs/WIRE_PROTOCOL.md, so a new wire construct cannot land without a
// matching spec entry.
func TestWireSpecCovers(t *testing.T) {
	spec, err := os.ReadFile(filepath.Join("..", "..", "docs", "WIRE_PROTOCOL.md"))
	if err != nil {
		t.Fatalf("read spec: %v", err)
	}
	text := string(spec)

	names := []string{
		"MsgHello", "MsgWelcome", "MsgReject", "MsgHeartbeat",
		"MsgMetrics", "MsgCommand", "MsgResult", "MsgGoodbye",
		"OpPing", "OpSnapshot", "OpSetRatios", "OpScaleUp", "OpScaleDown",
		"OpInjectFault", "OpClearFault", "OpPauseSpouts", "OpResumeSpouts",
		"OpDrain", "OpCheckInvariants", "OpShutdown",
		"RejectVersion", "RejectDuplicate", "RejectShuttingDown", "RejectBadHello",
		"StatusOK", "StatusError", "StatusUnsupported",
	}
	for _, name := range names {
		if !strings.Contains(text, name) {
			t.Errorf("docs/WIRE_PROTOCOL.md does not mention %s", name)
		}
	}

	// The static list above must itself stay complete: parse wire.go and
	// compare against every exported Msg*/Op*/Reject*/Status* constant.
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "wire.go", nil, 0)
	if err != nil {
		t.Fatalf("parse wire.go: %v", err)
	}
	listed := make(map[string]bool, len(names))
	for _, name := range names {
		listed[name] = true
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, s := range gd.Specs {
			vs, ok := s.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, ident := range vs.Names {
				n := ident.Name
				for _, prefix := range []string{"Msg", "Op", "Reject", "Status"} {
					if strings.HasPrefix(n, prefix) && len(n) > len(prefix) {
						if !listed[n] {
							t.Errorf("wire.go defines %s but TestWireSpecCovers (and likely the spec) does not list it", n)
						}
					}
				}
			}
		}
	}
}
