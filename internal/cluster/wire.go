// Package cluster turns the in-process stream engine into a real
// multi-process deployment: a coordinator process and N worker processes
// speaking a versioned, length-prefixed binary wire protocol over TCP
// (stdlib net + encoding/binary only — the same framing discipline as
// internal/serve's raw-TCP prediction protocol).
//
// Each worker process hosts a full engine instance (a *dsps.Cluster
// running one topology); the coordinator is the fleet control plane:
// worker join/leave with handshake version negotiation, heartbeats with
// deadline-based liveness, remote metric shipping into the existing
// Snapshot/internal/obs pipeline, and the predictive control loop
// actuating dynamic-grouping ratios and scale actions across the wire.
// The in-process engine remains the "local transport": *dsps.Cluster and
// this package's RemoteEngine satisfy the same core.Engine interface, so
// every existing test, chaos schedule, and benchmark still runs
// single-binary and byte-identical.
//
// The full frame grammar, version-negotiation rules, and a worked
// hexdump example live in docs/WIRE_PROTOCOL.md; every message type and
// command opcode defined here appears there (pinned by TestWireSpecCovers
// in this package). Operations guidance — starting a coordinator and
// workers, heartbeat knobs, failure modes — lives in docs/CLUSTER.md.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"predstream/internal/dsps"
)

// Magic is the protocol identifier a Hello frame leads with: "PDSP",
// big-endian. A connection whose first frame does not carry it is not a
// predstream worker and is rejected before any state is allocated.
const Magic uint32 = 0x50445350

// Version bounds of the wire protocol this build speaks. The handshake
// negotiates the highest version inside both sides' [min, max] ranges
// (see NegotiateVersion); there is exactly one version today, but every
// frame-level decision is already keyed by the negotiated value so a v2
// can coexist with v1 workers.
const (
	// MinVersion is the oldest protocol version this build accepts.
	MinVersion uint8 = 1
	// MaxVersion is the newest protocol version this build speaks.
	MaxVersion uint8 = 1
)

// MaxFrameBody bounds one frame body (type byte + payload). Frames beyond
// it are rejected before any allocation proportional to the claimed size.
// 1 MiB comfortably fits the metrics snapshot of a large topology.
const MaxFrameBody = 1 << 20

// Message types. Direction is fixed per type: workers speak Hello,
// Heartbeat, Metrics, Result, and Goodbye; coordinators speak Welcome,
// Reject, and Command.
const (
	// MsgHello opens a connection: magic, version range, worker name, and
	// the engine inventory (topology, queue size, spout and controlled
	// components).
	MsgHello uint8 = 0x01
	// MsgWelcome accepts a Hello: negotiated version, assigned worker id,
	// join generation, and the heartbeat/metrics cadence contract.
	MsgWelcome uint8 = 0x02
	// MsgReject refuses a Hello with a code and detail; the coordinator
	// closes the connection after sending it.
	MsgReject uint8 = 0x03
	// MsgHeartbeat is the worker's liveness beacon: a sequence number and
	// its current in-flight root count.
	MsgHeartbeat uint8 = 0x04
	// MsgMetrics ships one full engine snapshot (see docs/WIRE_PROTOCOL.md
	// § Snapshot encoding).
	MsgMetrics uint8 = 0x05
	// MsgCommand carries one coordinator→worker operation (see the Op
	// constants); every command is answered by exactly one MsgResult with
	// the same request id.
	MsgCommand uint8 = 0x06
	// MsgResult answers a MsgCommand: status, detail, and an op-specific
	// payload (drained flag, invariant violations, snapshot).
	MsgResult uint8 = 0x07
	// MsgGoodbye announces a graceful worker departure; the coordinator
	// records the leave as clean rather than as a liveness failure.
	MsgGoodbye uint8 = 0x08
)

// Reject codes.
const (
	// RejectVersion reports disjoint version ranges (no common protocol
	// version).
	RejectVersion uint8 = 1
	// RejectDuplicate reports that a live worker already holds the name.
	RejectDuplicate uint8 = 2
	// RejectShuttingDown reports the coordinator is closing.
	RejectShuttingDown uint8 = 3
	// RejectBadHello reports a malformed Hello (wrong magic, empty name).
	RejectBadHello uint8 = 4
)

// Command opcodes. Every command frame carries the same field layout
// (see Command); ops ignore the fields they do not use.
const (
	// OpPing does nothing and answers OK — the liveness RPC.
	OpPing uint8 = 0x01
	// OpSnapshot answers with the worker's current engine snapshot.
	OpSnapshot uint8 = 0x02
	// OpSetRatios installs a dynamic-grouping ratio vector on a
	// controlled component.
	OpSetRatios uint8 = 0x03
	// OpScaleUp adds N executors to a component.
	OpScaleUp uint8 = 0x04
	// OpScaleDown drains and removes N executors of a component, bounded
	// by Timeout.
	OpScaleDown uint8 = 0x05
	// OpInjectFault applies a simulated fault to an engine-level worker.
	OpInjectFault uint8 = 0x06
	// OpClearFault removes any fault from an engine-level worker.
	OpClearFault uint8 = 0x07
	// OpPauseSpouts stops the worker's spouts from emitting.
	OpPauseSpouts uint8 = 0x08
	// OpResumeSpouts re-enables spout emission.
	OpResumeSpouts uint8 = 0x09
	// OpDrain waits for engine quiescence, bounded by Timeout; the result
	// carries the drained flag.
	OpDrain uint8 = 0x0A
	// OpCheckInvariants clears faults, pauses spouts, drains, and runs
	// the engine invariants (tuple conservation, acker quiescence, empty
	// queues); the result carries the drained flag and any violations.
	// Resume re-enables emission afterwards.
	OpCheckInvariants uint8 = 0x0B
	// OpShutdown asks the worker process to exit gracefully.
	OpShutdown uint8 = 0x0C
)

// Result statuses.
const (
	// StatusOK reports the command succeeded.
	StatusOK uint8 = 0
	// StatusError reports the command failed; Detail explains.
	StatusError uint8 = 1
	// StatusUnsupported reports an opcode the worker does not implement.
	StatusUnsupported uint8 = 2
)

// ErrFrameTooLarge reports a frame body beyond MaxFrameBody.
var ErrFrameTooLarge = errors.New("cluster: wire frame too large")

// NegotiateVersion picks the protocol version for a connection: the
// highest version both ranges contain, or an error when the ranges are
// disjoint. The coordinator calls it with its own compiled-in range and
// the range the Hello advertised.
func NegotiateVersion(localMin, localMax, remoteMin, remoteMax uint8) (uint8, error) {
	v := localMax
	if remoteMax < v {
		v = remoteMax
	}
	if v < localMin || v < remoteMin {
		return 0, fmt.Errorf("cluster: no common protocol version (local %d-%d, remote %d-%d)",
			localMin, localMax, remoteMin, remoteMax)
	}
	return v, nil
}

// WriteFrame writes one frame — length prefix, type byte, payload — to w.
func WriteFrame(w io.Writer, msgType uint8, payload []byte) error {
	if len(payload)+1 > MaxFrameBody {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = msgType
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame from r, returning its type and payload. It
// returns io.EOF on a clean end-of-stream before any prefix byte.
func ReadFrame(r io.Reader) (msgType uint8, payload []byte, err error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("cluster: truncated frame prefix: %w", err)
		}
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("cluster: empty frame body")
	}
	if n > MaxFrameBody {
		return 0, nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("cluster: truncated frame body: %w", err)
	}
	return body[0], body[1:], nil
}

// Hello is the first frame of every connection, worker → coordinator.
type Hello struct {
	// MinVersion and MaxVersion advertise the worker's protocol range.
	MinVersion, MaxVersion uint8
	// Name is the worker's stable identity across reconnects; the
	// coordinator tracks generations per name and rejects a join while
	// another live session holds it.
	Name string
	// Topology names the topology the worker's engine runs.
	Topology string
	// QueueSize is the engine's per-executor input-queue bound (shipped
	// so remote scale planners can compute occupancy).
	QueueSize uint32
	// Spouts lists the components whose emissions are anchored roots —
	// the inputs of the remote invariant self-check.
	Spouts []string
	// Controlled lists the components with dynamic-grouping handles the
	// coordinator may steer via OpSetRatios.
	Controlled []string
}

// Welcome accepts a Hello, coordinator → worker.
type Welcome struct {
	// Version is the negotiated protocol version for this connection.
	Version uint8
	// WorkerID is the coordinator-assigned session id (informational;
	// the worker's identity remains its name).
	WorkerID string
	// Generation counts this name's joins, starting at 1; a crash-and-
	// rejoin is visible as a generation bump.
	Generation uint32
	// HeartbeatEvery is how often the worker must beat; DeadAfter is the
	// silence after which the coordinator declares it dead and closes the
	// connection; MetricsEvery is the snapshot-shipping cadence.
	HeartbeatEvery, DeadAfter, MetricsEvery time.Duration
}

// Reject refuses a Hello, coordinator → worker.
type Reject struct {
	// Code is one of the Reject* constants.
	Code uint8
	// Detail is a human-readable explanation.
	Detail string
}

// Heartbeat is the worker's periodic liveness beacon.
type Heartbeat struct {
	// Seq increments per beat within a connection.
	Seq uint64
	// InFlight is the engine's tracked, incomplete root count.
	InFlight uint32
}

// Command is one coordinator → worker operation. Every op shares this
// field layout on the wire; fields an op does not use are zero and
// ignored (the uniform layout keeps the frame grammar small and the
// fuzz surface simple).
type Command struct {
	// ReqID matches the command to its Result; unique per connection.
	ReqID uint64
	// Op is one of the Op* constants.
	Op uint8
	// Topology and Component target scale and ratio ops.
	Topology, Component string
	// Worker targets fault ops (an engine-level simulated worker id).
	Worker string
	// N is the executor delta of scale ops.
	N int
	// Timeout bounds drains (scale-down, drain, check-invariants).
	Timeout time.Duration
	// Resume re-enables spout emission after OpCheckInvariants.
	Resume bool
	// Fault carries OpInjectFault's misbehaviour.
	Fault dsps.Fault
	// Ratios carries OpSetRatios' split vector.
	Ratios []float64
}

// Result answers one Command, worker → coordinator.
type Result struct {
	// ReqID echoes the command's request id.
	ReqID uint64
	// Status is one of the Status* constants.
	Status uint8
	// Detail explains a non-OK status.
	Detail string
	// Drained reports drain completion (OpDrain, OpCheckInvariants).
	Drained bool
	// Violations holds rendered invariant breaches (OpCheckInvariants).
	Violations []string
	// Snap is the engine snapshot (OpSnapshot), nil otherwise.
	Snap *dsps.Snapshot
}

// Goodbye announces a graceful departure, worker → coordinator.
type Goodbye struct {
	// Reason is a human-readable departure cause.
	Reason string
}

// Wire-format bounds for variable-length payload fields; decoders reject
// counts beyond them before allocating.
const (
	maxWireString   = 1 << 12 // bytes per string
	maxWireStrings  = 1 << 10 // elements per string slice
	maxWireRatios   = 1 << 12 // elements per ratio vector
	msDurationLimit = math.MaxUint32
)

// ---- encode helpers (append-style, big-endian, mirroring serve/wire.go)

func appendU8(dst []byte, v uint8) []byte   { return append(dst, v) }
func appendU16(dst []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }
func appendI64(dst []byte, v int64) []byte  { return appendU64(dst, uint64(v)) }
func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}
func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}
func appendString(dst []byte, s string) []byte {
	if len(s) > maxWireString {
		s = s[:maxWireString]
	}
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...)
}
func appendStrings(dst []byte, ss []string) []byte {
	dst = appendU32(dst, uint32(len(ss)))
	for _, s := range ss {
		dst = appendString(dst, s)
	}
	return dst
}
func appendMillis(dst []byte, d time.Duration) []byte {
	ms := d.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > msDurationLimit {
		ms = msDurationLimit
	}
	return appendU32(dst, uint32(ms))
}

// dec is a consuming big-endian decoder over one frame payload. The first
// malformed read latches err; subsequent reads return zero values, so
// message decoders can read field-by-field and check the error once.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("cluster: "+format, args...)
	}
}
func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.fail("truncated payload: want %d bytes, have %d", n, len(d.b))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}
func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (d *dec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}
func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}
func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}
func (d *dec) i64() int64    { return int64(d.u64()) }
func (d *dec) f64() float64  { return math.Float64frombits(d.u64()) }
func (d *dec) boolean() bool { return d.u8() != 0 }
func (d *dec) millis() time.Duration {
	return time.Duration(d.u32()) * time.Millisecond
}
func (d *dec) str() string {
	n := int(d.u16())
	if n > maxWireString {
		d.fail("string of %d bytes exceeds limit %d", n, maxWireString)
		return ""
	}
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
func (d *dec) strings() []string {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n > maxWireStrings {
		d.fail("string slice of %d elements exceeds limit %d", n, maxWireStrings)
		return nil
	}
	// Each element costs at least its 2-byte length prefix.
	if n*2 > len(d.b) {
		d.fail("string slice of %d elements cannot fit in %d bytes", n, len(d.b))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}
func (d *dec) f64s(limit int) []float64 {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n > limit {
		d.fail("float slice of %d elements exceeds limit %d", n, limit)
		return nil
	}
	if n*8 > len(d.b) {
		d.fail("float slice of %d elements cannot fit in %d bytes", n, len(d.b))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}
func (d *dec) i64s(limit int) []int64 {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n > limit {
		d.fail("int slice of %d elements exceeds limit %d", n, limit)
		return nil
	}
	if n*8 > len(d.b) {
		d.fail("int slice of %d elements cannot fit in %d bytes", n, len(d.b))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.i64()
	}
	return out
}

// done asserts the payload was fully consumed — trailing bytes mean a
// framing bug or a newer-version field this build cannot interpret.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("cluster: %d trailing bytes after payload", len(d.b))
	}
	return nil
}

// ---- message codecs

// AppendHello appends h's wire payload to dst.
func AppendHello(dst []byte, h Hello) []byte {
	dst = appendU32(dst, Magic)
	dst = appendU8(dst, h.MinVersion)
	dst = appendU8(dst, h.MaxVersion)
	dst = appendU16(dst, 0) // flags, reserved
	dst = appendString(dst, h.Name)
	dst = appendString(dst, h.Topology)
	dst = appendU32(dst, h.QueueSize)
	dst = appendStrings(dst, h.Spouts)
	dst = appendStrings(dst, h.Controlled)
	return dst
}

// DecodeHello parses a MsgHello payload.
func DecodeHello(payload []byte) (Hello, error) {
	d := &dec{b: payload}
	if m := d.u32(); d.err == nil && m != Magic {
		return Hello{}, fmt.Errorf("cluster: bad magic %#x, want %#x", m, Magic)
	}
	var h Hello
	h.MinVersion = d.u8()
	h.MaxVersion = d.u8()
	if f := d.u16(); d.err == nil && f != 0 {
		return Hello{}, fmt.Errorf("cluster: nonzero hello flags %#x", f)
	}
	h.Name = d.str()
	h.Topology = d.str()
	h.QueueSize = d.u32()
	h.Spouts = d.strings()
	h.Controlled = d.strings()
	if err := d.done(); err != nil {
		return Hello{}, err
	}
	if h.MinVersion == 0 || h.MaxVersion < h.MinVersion {
		return Hello{}, fmt.Errorf("cluster: invalid version range %d-%d", h.MinVersion, h.MaxVersion)
	}
	return h, nil
}

// AppendWelcome appends w's wire payload to dst.
func AppendWelcome(dst []byte, w Welcome) []byte {
	dst = appendU8(dst, w.Version)
	dst = appendString(dst, w.WorkerID)
	dst = appendU32(dst, w.Generation)
	dst = appendMillis(dst, w.HeartbeatEvery)
	dst = appendMillis(dst, w.DeadAfter)
	dst = appendMillis(dst, w.MetricsEvery)
	return dst
}

// DecodeWelcome parses a MsgWelcome payload.
func DecodeWelcome(payload []byte) (Welcome, error) {
	d := &dec{b: payload}
	var w Welcome
	w.Version = d.u8()
	w.WorkerID = d.str()
	w.Generation = d.u32()
	w.HeartbeatEvery = d.millis()
	w.DeadAfter = d.millis()
	w.MetricsEvery = d.millis()
	if err := d.done(); err != nil {
		return Welcome{}, err
	}
	return w, nil
}

// AppendReject appends r's wire payload to dst.
func AppendReject(dst []byte, r Reject) []byte {
	dst = appendU8(dst, r.Code)
	dst = appendString(dst, r.Detail)
	return dst
}

// DecodeReject parses a MsgReject payload.
func DecodeReject(payload []byte) (Reject, error) {
	d := &dec{b: payload}
	var r Reject
	r.Code = d.u8()
	r.Detail = d.str()
	if err := d.done(); err != nil {
		return Reject{}, err
	}
	return r, nil
}

// AppendHeartbeat appends h's wire payload to dst.
func AppendHeartbeat(dst []byte, h Heartbeat) []byte {
	dst = appendU64(dst, h.Seq)
	dst = appendU32(dst, h.InFlight)
	return dst
}

// DecodeHeartbeat parses a MsgHeartbeat payload.
func DecodeHeartbeat(payload []byte) (Heartbeat, error) {
	d := &dec{b: payload}
	var h Heartbeat
	h.Seq = d.u64()
	h.InFlight = d.u32()
	if err := d.done(); err != nil {
		return Heartbeat{}, err
	}
	return h, nil
}

// AppendCommand appends c's wire payload to dst (the uniform layout every
// op shares; see docs/WIRE_PROTOCOL.md).
func AppendCommand(dst []byte, c Command) []byte {
	dst = appendU64(dst, c.ReqID)
	dst = appendU8(dst, c.Op)
	dst = appendString(dst, c.Topology)
	dst = appendString(dst, c.Component)
	dst = appendString(dst, c.Worker)
	n := c.N
	if n < 0 {
		n = 0
	}
	if n > math.MaxUint16 {
		n = math.MaxUint16
	}
	dst = appendU16(dst, uint16(n))
	dst = appendMillis(dst, c.Timeout)
	dst = appendBool(dst, c.Resume)
	dst = appendF64(dst, c.Fault.Slowdown)
	dst = appendF64(dst, c.Fault.DropProb)
	dst = appendF64(dst, c.Fault.FailProb)
	dst = appendBool(dst, c.Fault.Stall)
	dst = appendU32(dst, uint32(len(c.Ratios)))
	for _, r := range c.Ratios {
		dst = appendF64(dst, r)
	}
	return dst
}

// DecodeCommand parses a MsgCommand payload.
func DecodeCommand(payload []byte) (Command, error) {
	d := &dec{b: payload}
	var c Command
	c.ReqID = d.u64()
	c.Op = d.u8()
	c.Topology = d.str()
	c.Component = d.str()
	c.Worker = d.str()
	c.N = int(d.u16())
	c.Timeout = d.millis()
	c.Resume = d.boolean()
	c.Fault.Slowdown = d.f64()
	c.Fault.DropProb = d.f64()
	c.Fault.FailProb = d.f64()
	c.Fault.Stall = d.boolean()
	c.Ratios = d.f64s(maxWireRatios)
	if err := d.done(); err != nil {
		return Command{}, err
	}
	return c, nil
}

// AppendResult appends r's wire payload to dst.
func AppendResult(dst []byte, r Result) []byte {
	dst = appendU64(dst, r.ReqID)
	dst = appendU8(dst, r.Status)
	dst = appendString(dst, r.Detail)
	dst = appendBool(dst, r.Drained)
	dst = appendStrings(dst, r.Violations)
	if r.Snap == nil {
		return appendBool(dst, false)
	}
	dst = appendBool(dst, true)
	return AppendSnapshot(dst, r.Snap)
}

// DecodeResult parses a MsgResult payload.
func DecodeResult(payload []byte) (Result, error) {
	d := &dec{b: payload}
	var r Result
	r.ReqID = d.u64()
	r.Status = d.u8()
	r.Detail = d.str()
	r.Drained = d.boolean()
	r.Violations = d.strings()
	if d.boolean() {
		r.Snap = decodeSnapshot(d)
	}
	if err := d.done(); err != nil {
		return Result{}, err
	}
	return r, nil
}

// AppendGoodbye appends g's wire payload to dst.
func AppendGoodbye(dst []byte, g Goodbye) []byte {
	return appendString(dst, g.Reason)
}

// DecodeGoodbye parses a MsgGoodbye payload.
func DecodeGoodbye(payload []byte) (Goodbye, error) {
	d := &dec{b: payload}
	var g Goodbye
	g.Reason = d.str()
	if err := d.done(); err != nil {
		return Goodbye{}, err
	}
	return g, nil
}
