package cluster

import (
	"fmt"
	"time"

	"predstream/internal/dsps"
)

// RemoteEngine presents one worker's engine through the same interface
// the in-process engine exposes (core.Engine), so the existing control
// loop drives a remote worker without knowing a wire is involved. It
// binds to the worker *name*, not a connection: calls made while the
// worker is dead fail, and resume against the rejoined session once the
// worker reconnects — the control loop just sees transient step errors
// across a crash.
type RemoteEngine struct {
	coord *Coordinator
	name  string

	queueSize int
}

// Engine returns a RemoteEngine for a currently live worker. QueueSize is
// captured from the worker's Hello (it is engine configuration, not
// runtime state, so it stays valid across rejoins of the same command
// line).
func (c *Coordinator) Engine(name string) (*RemoteEngine, error) {
	s, err := c.session(name)
	if err != nil {
		return nil, err
	}
	return &RemoteEngine{coord: c, name: name, queueSize: int(s.hello.QueueSize)}, nil
}

// call resolves the worker's current live session and round-trips cmd.
func (e *RemoteEngine) call(cmd Command, extra time.Duration) (Result, error) {
	s, err := e.coord.session(e.name)
	if err != nil {
		return Result{}, err
	}
	res, err := s.call(cmd, e.coord.cfg.CommandTimeout+extra)
	if err != nil {
		return Result{}, err
	}
	if res.Status != StatusOK {
		return res, fmt.Errorf("cluster: worker %s: op %#x: status %d: %s", e.name, cmd.Op, res.Status, res.Detail)
	}
	return res, nil
}

// Name returns the worker name this engine is bound to.
func (e *RemoteEngine) Name() string { return e.name }

// Snapshot fetches a fresh engine snapshot over the wire. If the worker
// is unreachable it falls back to the last snapshot the worker shipped,
// and failing that returns an empty snapshot — never nil, because the
// control loop dereferences the result unconditionally.
func (e *RemoteEngine) Snapshot() *dsps.Snapshot {
	res, err := e.call(Command{Op: OpSnapshot}, 0)
	if err == nil && res.Snap != nil {
		return res.Snap
	}
	if s, serr := e.coord.session(e.name); serr == nil {
		s.mu.Lock()
		snap := s.snap
		s.mu.Unlock()
		if snap != nil {
			return snap
		}
	}
	return &dsps.Snapshot{At: time.Now()}
}

// QueueSize reports the worker engine's per-executor queue bound.
func (e *RemoteEngine) QueueSize() int { return e.queueSize }

// ScaleUp adds n executors to a component on the remote engine.
func (e *RemoteEngine) ScaleUp(topology, component string, n int) error {
	_, err := e.call(Command{Op: OpScaleUp, Topology: topology, Component: component, N: n}, 0)
	return err
}

// ScaleDown retires n executors from a component on the remote engine,
// waiting up to drainTimeout worker-side for their queues to empty.
func (e *RemoteEngine) ScaleDown(topology, component string, n int, drainTimeout time.Duration) error {
	_, err := e.call(Command{
		Op: OpScaleDown, Topology: topology, Component: component,
		N: n, Timeout: drainTimeout,
	}, drainTimeout)
	return err
}

// InjectFault injects a fault into one of the remote engine's simulated
// workers (chaos over the wire).
func (e *RemoteEngine) InjectFault(worker string, f dsps.Fault) error {
	_, err := e.call(Command{Op: OpInjectFault, Worker: worker, Fault: f}, 0)
	return err
}

// ClearFault clears any fault on one of the remote engine's simulated
// workers.
func (e *RemoteEngine) ClearFault(worker string) error {
	_, err := e.call(Command{Op: OpClearFault, Worker: worker}, 0)
	return err
}

// PauseSpouts stops emission on the remote engine.
func (e *RemoteEngine) PauseSpouts() error {
	_, err := e.call(Command{Op: OpPauseSpouts}, 0)
	return err
}

// ResumeSpouts restarts emission on the remote engine.
func (e *RemoteEngine) ResumeSpouts() error {
	_, err := e.call(Command{Op: OpResumeSpouts}, 0)
	return err
}

// Drain waits worker-side (up to timeout) for in-flight tuples to clear
// and reports whether the engine fully drained.
func (e *RemoteEngine) Drain(timeout time.Duration) (bool, error) {
	res, err := e.call(Command{Op: OpDrain, Timeout: timeout}, timeout)
	if err != nil {
		return false, err
	}
	return res.Drained, nil
}

// RemoteGrouping actuates one component's dynamic-grouping ratios on a
// remote worker. It satisfies core.RatioActuator, so a control target can
// point at a component living in another process.
type RemoteGrouping struct {
	coord     *Coordinator
	name      string
	component string
}

// Grouping returns a ratio actuator for component on worker name. No
// liveness check happens here — SetRatios reports the error if the worker
// is down or has no such dynamic grouping.
func (c *Coordinator) Grouping(name, component string) *RemoteGrouping {
	return &RemoteGrouping{coord: c, name: name, component: component}
}

// SetRatios ships the ratio vector to the worker's dynamic grouping.
func (g *RemoteGrouping) SetRatios(ratios []float64) error {
	s, err := g.coord.session(g.name)
	if err != nil {
		return err
	}
	res, err := s.call(Command{Op: OpSetRatios, Component: g.component, Ratios: ratios},
		g.coord.cfg.CommandTimeout)
	if err != nil {
		return err
	}
	if res.Status != StatusOK {
		return fmt.Errorf("cluster: worker %s: set ratios %s: %s", g.name, g.component, res.Detail)
	}
	return nil
}
