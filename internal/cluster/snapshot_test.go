package cluster

import (
	"reflect"
	"testing"
	"time"

	"predstream/internal/dsps"
)

// buildEngine runs a tiny real topology so the snapshot under test has
// populated histograms, worker aggregates, and acker state.
func buildEngine(t *testing.T) *dsps.Cluster {
	t.Helper()
	b := dsps.NewTopologyBuilder("codec")
	emitted := 0
	var col dsps.SpoutCollector
	b.SetSpout("src", func() dsps.Spout {
		return &dsps.SpoutFunc{
			OpenFn: func(_ dsps.TopologyContext, c dsps.SpoutCollector) { col = c },
			NextFn: func() bool {
				if emitted >= 200 {
					return false
				}
				col.Emit(dsps.Values{emitted}, emitted)
				emitted++
				return true
			},
		}
	}, 1, "n")
	b.SetBolt("work", func() dsps.Bolt { return &dsps.BoltFunc{} }, 2).ShuffleGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := dsps.NewCluster(dsps.ClusterConfig{Seed: 7, AckTimeout: 5 * time.Second})
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if !c.Drain(5 * time.Second) {
		t.Fatal("engine did not drain")
	}
	return c
}

func TestSnapshotRoundTrip(t *testing.T) {
	c := buildEngine(t)
	defer c.Shutdown()
	want := c.Snapshot()

	got, err := DecodeSnapshot(AppendSnapshot(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if !got.At.Equal(want.At) {
		t.Fatalf("At = %v want %v", got.At, want.At)
	}
	// Normalize the timestamps (UnixNano round trip loses the monotonic
	// clock and wall-clock identity), then compare everything else.
	got.At = time.Time{}
	want.At = time.Time{}
	if !reflect.DeepEqual(got.Tasks, want.Tasks) {
		t.Fatalf("tasks:\n got %+v\nwant %+v", got.Tasks, want.Tasks)
	}
	if !reflect.DeepEqual(got.Workers, want.Workers) {
		t.Fatalf("workers:\n got %+v\nwant %+v", got.Workers, want.Workers)
	}
	if !reflect.DeepEqual(got.Nodes, want.Nodes) {
		t.Fatalf("nodes:\n got %+v\nwant %+v", got.Nodes, want.Nodes)
	}
	if !reflect.DeepEqual(got.Components, want.Components) {
		t.Fatalf("components:\n got %+v\nwant %+v", got.Components, want.Components)
	}
	if !reflect.DeepEqual(got.Acker, want.Acker) {
		t.Fatalf("acker:\n got %+v\nwant %+v", got.Acker, want.Acker)
	}
	if !reflect.DeepEqual(got.Scale, want.Scale) {
		t.Fatalf("scale:\n got %+v\nwant %+v", got.Scale, want.Scale)
	}
}

func TestSnapshotEmptyRoundTrip(t *testing.T) {
	want := &dsps.Snapshot{At: time.Unix(42, 99)}
	got, err := DecodeSnapshot(AppendSnapshot(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if !got.At.Equal(want.At) || len(got.Tasks) != 0 || len(got.Workers) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestSnapshotDecodeRejectsHugeCounts(t *testing.T) {
	// atNs, then a task count far beyond the limit.
	raw := appendI64(nil, 0)
	raw = appendU32(raw, 1<<30)
	if _, err := DecodeSnapshot(raw); err == nil {
		t.Fatal("huge task count accepted")
	}
}

func TestSnapshotDecodeRejectsTruncation(t *testing.T) {
	c := buildEngine(t)
	defer c.Shutdown()
	raw := AppendSnapshot(nil, c.Snapshot())
	// Every strict prefix must fail; none may panic.
	for cut := 0; cut < len(raw); cut += 7 {
		if _, err := DecodeSnapshot(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
