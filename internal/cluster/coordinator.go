package cluster

import (
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"predstream/internal/dsps"
)

// CoordinatorConfig parameterizes the fleet control plane. Zero fields
// take the noted defaults.
type CoordinatorConfig struct {
	// HeartbeatEvery is the beat cadence the Welcome contracts workers
	// to; default 500ms.
	HeartbeatEvery time.Duration
	// DeadAfter is the heartbeat silence after which a worker is declared
	// dead and its connection closed; default 4 × HeartbeatEvery.
	DeadAfter time.Duration
	// MetricsEvery is the snapshot-shipping cadence contracted to
	// workers; default 1s.
	MetricsEvery time.Duration
	// CommandTimeout bounds one command round trip (commands carrying
	// their own drain timeout get that plus slack on top); default 5s.
	CommandTimeout time.Duration
	// MinVersion and MaxVersion override the advertised protocol range
	// (tests use this to force negotiation failures); defaults are the
	// package constants.
	MinVersion, MaxVersion uint8
	// Events receives structured membership events (joins, leaves,
	// rejects, heartbeat expiries); nil disables emission.
	Events dsps.EventSink
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 4 * c.HeartbeatEvery
	}
	if c.MetricsEvery <= 0 {
		c.MetricsEvery = time.Second
	}
	if c.CommandTimeout <= 0 {
		c.CommandTimeout = 5 * time.Second
	}
	if c.MinVersion == 0 {
		c.MinVersion = MinVersion
	}
	if c.MaxVersion == 0 {
		c.MaxVersion = MaxVersion
	}
	return c
}

// WorkerInfo is a point-in-time view of one live worker session.
type WorkerInfo struct {
	// Name is the worker's stable identity; ID the session id assigned at
	// join ("w<N>").
	Name, ID string
	// Generation counts this name's joins (1 = first join; a bump means
	// the worker died or disconnected and rejoined).
	Generation uint32
	// Addr is the remote address of the session's connection.
	Addr string
	// Version is the negotiated protocol version.
	Version uint8
	// Topology, QueueSize, Spouts, and Controlled echo the worker's Hello
	// inventory.
	Topology   string
	QueueSize  int
	Spouts     []string
	Controlled []string
	// JoinedAt and LastHeartbeat time the session's liveness;
	// HeartbeatSeq and InFlight echo its latest beat.
	JoinedAt      time.Time
	LastHeartbeat time.Time
	HeartbeatSeq  uint64
	InFlight      int
	// MetricsAt is when the worker last shipped a snapshot (zero before
	// the first ship).
	MetricsAt time.Time
}

// FleetStats is the coordinator's membership accounting. Its counters
// are the fleet-level invariants the process-chaos harness asserts:
// Joins == Leaves + Live, and generations per name increase by exactly
// one per rejoin.
type FleetStats struct {
	// Live is the number of currently connected workers.
	Live int
	// Joins, Leaves, and Rejects count accepted sessions, departed
	// sessions (any reason), and refused Hellos since start.
	Joins, Leaves, Rejects int
	// CleanLeaves counts departures announced by a Goodbye; Expiries
	// counts heartbeat-deadline declarations of death.
	CleanLeaves, Expiries int
}

// session is one live worker connection, coordinator side.
type session struct {
	coord *Coordinator
	conn  net.Conn
	hello Hello

	name       string
	id         string
	generation uint32
	version    uint8
	joinedAt   time.Time

	writeMu sync.Mutex // serializes frame writes (commands race the monitor)

	mu        sync.Mutex
	lastBeat  time.Time
	beatSeq   uint64
	inFlight  uint32
	snap      *dsps.Snapshot
	snapAt    time.Time
	pending   map[uint64]chan Result
	nextReq   uint64
	closed    bool
	leftClean bool
}

// Coordinator is the fleet control plane: it accepts worker joins over
// TCP, negotiates protocol versions, tracks liveness by heartbeat
// deadline, collects shipped metric snapshots into a merged fleet view,
// and issues commands (ratios, scale, faults, drains, invariant checks)
// to workers. Create with NewCoordinator, stop with Close.
type Coordinator struct {
	cfg    CoordinatorConfig
	ln     net.Listener
	events dsps.EventSink
	wg     sync.WaitGroup
	done   chan struct{}

	mu       sync.Mutex
	sessions map[string]*session // live, by name
	gens     map[string]uint32   // join count by name
	nextID   int
	stats    FleetStats
	closed   bool
}

// NewCoordinator starts a coordinator listening on addr (e.g. ":7070" or
// "127.0.0.1:0").
func NewCoordinator(addr string, cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxVersion < cfg.MinVersion {
		return nil, fmt.Errorf("cluster: invalid version range %d-%d", cfg.MinVersion, cfg.MaxVersion)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	c := &Coordinator{
		cfg:      cfg,
		ln:       ln,
		events:   cfg.Events,
		done:     make(chan struct{}),
		sessions: map[string]*session{},
		gens:     map[string]uint32{},
	}
	c.wg.Add(2)
	go c.acceptLoop()
	go c.monitor()
	return c, nil
}

// Addr returns the coordinator's listen address.
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// Close stops the listener, closes every worker session, and waits for
// all coordinator goroutines to exit.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	sessions := make([]*session, 0, len(c.sessions))
	for _, s := range c.sessions {
		sessions = append(sessions, s)
	}
	c.mu.Unlock()
	close(c.done)
	err := c.ln.Close()
	for _, s := range sessions {
		s.conn.Close()
	}
	c.wg.Wait()
	return err
}

// emit forwards one structured event to the configured sink, if any.
func (c *Coordinator) emit(level int, msg string, kv ...string) {
	if c.events != nil {
		c.events.Event(level, msg, kv...)
	}
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.done:
			default:
			}
			return
		}
		c.wg.Add(1)
		go c.handshake(conn)
	}
}

// handshake reads one Hello, negotiates, and either promotes the
// connection to a session (continuing as its reader) or rejects it.
func (c *Coordinator) handshake(conn net.Conn) {
	defer c.wg.Done()
	conn.SetReadDeadline(time.Now().Add(c.cfg.CommandTimeout))
	msgType, payload, err := ReadFrame(conn)
	if err != nil || msgType != MsgHello {
		conn.Close()
		return
	}
	hello, err := DecodeHello(payload)
	reject := func(code uint8, detail string) {
		c.mu.Lock()
		c.stats.Rejects++
		c.mu.Unlock()
		c.writeRaw(conn, MsgReject, AppendReject(nil, Reject{Code: code, Detail: detail}))
		conn.Close()
		c.emit(dsps.EventWarn, "worker join rejected",
			"code", strconv.Itoa(int(code)), "detail", detail, "addr", conn.RemoteAddr().String())
	}
	if err != nil {
		reject(RejectBadHello, err.Error())
		return
	}
	if hello.Name == "" {
		reject(RejectBadHello, "empty worker name")
		return
	}
	version, err := NegotiateVersion(c.cfg.MinVersion, c.cfg.MaxVersion, hello.MinVersion, hello.MaxVersion)
	if err != nil {
		reject(RejectVersion, err.Error())
		return
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		reject(RejectShuttingDown, "coordinator closing")
		return
	}
	if _, live := c.sessions[hello.Name]; live {
		c.mu.Unlock()
		reject(RejectDuplicate, fmt.Sprintf("worker %q already joined", hello.Name))
		return
	}
	c.gens[hello.Name]++
	c.nextID++
	s := &session{
		coord:      c,
		conn:       conn,
		hello:      hello,
		name:       hello.Name,
		id:         fmt.Sprintf("w%d", c.nextID),
		generation: c.gens[hello.Name],
		version:    version,
		joinedAt:   time.Now(),
		lastBeat:   time.Now(),
		pending:    map[uint64]chan Result{},
	}
	c.sessions[hello.Name] = s
	c.stats.Joins++
	c.mu.Unlock()

	welcome := Welcome{
		Version:        version,
		WorkerID:       s.id,
		Generation:     s.generation,
		HeartbeatEvery: c.cfg.HeartbeatEvery,
		DeadAfter:      c.cfg.DeadAfter,
		MetricsEvery:   c.cfg.MetricsEvery,
	}
	if err := s.write(MsgWelcome, AppendWelcome(nil, welcome)); err != nil {
		c.removeSession(s, "welcome write failed")
		return
	}
	c.emit(dsps.EventInfo, "worker joined",
		"worker", s.name, "id", s.id,
		"generation", strconv.Itoa(int(s.generation)),
		"version", strconv.Itoa(int(version)),
		"topology", hello.Topology,
		"addr", conn.RemoteAddr().String())
	s.serve()
}

// writeRaw writes a frame outside any session (handshake rejects).
func (c *Coordinator) writeRaw(conn net.Conn, msgType uint8, payload []byte) {
	conn.SetWriteDeadline(time.Now().Add(c.cfg.CommandTimeout))
	WriteFrame(conn, msgType, payload)
}

// serve is the session's reader loop; it runs on the handshake goroutine
// until the connection dies or the worker says Goodbye.
func (s *session) serve() {
	conn := s.conn
	conn.SetReadDeadline(time.Time{})
	reason := "connection lost"
	for {
		msgType, payload, err := ReadFrame(conn)
		if err != nil {
			break
		}
		switch msgType {
		case MsgHeartbeat:
			if hb, err := DecodeHeartbeat(payload); err == nil {
				s.mu.Lock()
				s.lastBeat = time.Now()
				s.beatSeq = hb.Seq
				s.inFlight = hb.InFlight
				s.mu.Unlock()
			}
		case MsgMetrics:
			if snap, err := DecodeSnapshot(payload); err == nil {
				s.mu.Lock()
				s.snap = snap
				s.snapAt = time.Now()
				s.mu.Unlock()
			}
		case MsgResult:
			if res, err := DecodeResult(payload); err == nil {
				s.mu.Lock()
				ch := s.pending[res.ReqID]
				delete(s.pending, res.ReqID)
				s.mu.Unlock()
				if ch != nil {
					ch <- res
				}
			}
		case MsgGoodbye:
			g, _ := DecodeGoodbye(payload)
			reason = "goodbye"
			if g.Reason != "" {
				reason = "goodbye: " + g.Reason
			}
			s.mu.Lock()
			s.leftClean = true
			s.mu.Unlock()
			s.coord.removeSession(s, reason)
			return
		default:
			// Unknown worker→coordinator type: tolerate (a newer worker may
			// ship informational frames this build does not know).
		}
	}
	s.coord.removeSession(s, reason)
}

// write sends one frame on the session, serialized against concurrent
// command senders.
func (s *session) write(msgType uint8, payload []byte) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.conn.SetWriteDeadline(time.Now().Add(s.coord.cfg.CommandTimeout))
	return WriteFrame(s.conn, msgType, payload)
}

// call performs one command round trip on the session.
func (s *session) call(cmd Command, timeout time.Duration) (Result, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Result{}, fmt.Errorf("cluster: worker %s: session closed", s.name)
	}
	s.nextReq++
	cmd.ReqID = s.nextReq
	ch := make(chan Result, 1)
	s.pending[cmd.ReqID] = ch
	s.mu.Unlock()

	if err := s.write(MsgCommand, AppendCommand(nil, cmd)); err != nil {
		s.mu.Lock()
		delete(s.pending, cmd.ReqID)
		s.mu.Unlock()
		return Result{}, fmt.Errorf("cluster: worker %s: send command: %w", s.name, err)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res, nil
	case <-timer.C:
		s.mu.Lock()
		delete(s.pending, cmd.ReqID)
		s.mu.Unlock()
		return Result{}, fmt.Errorf("cluster: worker %s: command %#x timed out after %v", s.name, cmd.Op, timeout)
	}
}

// removeSession drops a session from the live set (idempotent), fails its
// pending commands, and emits the leave.
func (c *Coordinator) removeSession(s *session, reason string) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	pending := s.pending
	s.pending = map[uint64]chan Result{}
	clean := s.leftClean
	s.mu.Unlock()
	s.conn.Close()
	for _, ch := range pending {
		ch <- Result{Status: StatusError, Detail: "session closed: " + reason}
	}

	c.mu.Lock()
	if c.sessions[s.name] == s {
		delete(c.sessions, s.name)
	}
	c.stats.Leaves++
	if clean {
		c.stats.CleanLeaves++
	}
	if reason == "heartbeat timeout" {
		c.stats.Expiries++
	}
	c.mu.Unlock()
	c.emit(dsps.EventWarn, "worker left",
		"worker", s.name, "id", s.id,
		"generation", strconv.Itoa(int(s.generation)),
		"reason", reason)
}

// monitor enforces the heartbeat deadline: a session silent longer than
// DeadAfter is declared dead and its connection closed, which unblocks
// its reader and triggers the leave path. A SIGSTOPped worker process is
// exactly this case — the TCP connection stays open but no beats arrive.
func (c *Coordinator) monitor() {
	defer c.wg.Done()
	period := c.cfg.HeartbeatEvery / 2
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		now := time.Now()
		c.mu.Lock()
		var expired []*session
		for _, s := range c.sessions {
			s.mu.Lock()
			silent := now.Sub(s.lastBeat)
			s.mu.Unlock()
			if silent > c.cfg.DeadAfter {
				expired = append(expired, s)
			}
		}
		c.mu.Unlock()
		for _, s := range expired {
			c.emit(dsps.EventWarn, "worker heartbeat expired",
				"worker", s.name, "dead_after", c.cfg.DeadAfter.String())
			c.removeSession(s, "heartbeat timeout")
		}
	}
}

// liveSessions returns the live sessions sorted by worker name.
func (c *Coordinator) liveSessions() []*session {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*session, 0, len(c.sessions))
	for _, s := range c.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// session returns the live session of a worker name.
func (c *Coordinator) session(name string) (*session, error) {
	c.mu.Lock()
	s := c.sessions[name]
	c.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("cluster: no live worker %q", name)
	}
	return s, nil
}

// Workers returns a point-in-time view of every live worker, sorted by
// name.
func (c *Coordinator) Workers() []WorkerInfo {
	sessions := c.liveSessions()
	out := make([]WorkerInfo, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, s.info())
	}
	return out
}

// Worker returns one live worker's view, or false.
func (c *Coordinator) Worker(name string) (WorkerInfo, bool) {
	s, err := c.session(name)
	if err != nil {
		return WorkerInfo{}, false
	}
	return s.info(), true
}

func (s *session) info() WorkerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return WorkerInfo{
		Name:          s.name,
		ID:            s.id,
		Generation:    s.generation,
		Addr:          s.conn.RemoteAddr().String(),
		Version:       s.version,
		Topology:      s.hello.Topology,
		QueueSize:     int(s.hello.QueueSize),
		Spouts:        append([]string(nil), s.hello.Spouts...),
		Controlled:    append([]string(nil), s.hello.Controlled...),
		JoinedAt:      s.joinedAt,
		LastHeartbeat: s.lastBeat,
		HeartbeatSeq:  s.beatSeq,
		InFlight:      int(s.inFlight),
		MetricsAt:     s.snapAt,
	}
}

// Stats returns the coordinator's membership accounting.
func (c *Coordinator) Stats() FleetStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Live = len(c.sessions)
	return st
}

// Generation returns how many times a worker name has joined (0 = never).
func (c *Coordinator) Generation(name string) uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gens[name]
}

// WaitForWorkers blocks until at least n workers are live or the timeout
// elapses.
func (c *Coordinator) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		live := len(c.sessions)
		c.mu.Unlock()
		if live >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: %d/%d workers joined within %v", live, n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Snapshot returns the merged fleet snapshot: every live worker's last
// shipped engine snapshot, with topology, worker, and node ids prefixed
// by "<worker name>/" so same-named topologies on different workers stay
// distinct series. It satisfies obs.Snapshotter, so remote metrics flow
// through the existing /metrics families unchanged. Workers that have not
// shipped metrics yet contribute nothing; task ids are only unique per
// worker in the merged view.
func (c *Coordinator) Snapshot() *dsps.Snapshot {
	merged := &dsps.Snapshot{At: time.Now()}
	for _, s := range c.liveSessions() {
		s.mu.Lock()
		snap := s.snap
		name := s.name
		s.mu.Unlock()
		if snap == nil {
			continue
		}
		prefix := name + "/"
		for _, ts := range snap.Tasks {
			ts.Topology = prefix + ts.Topology
			ts.WorkerID = prefix + ts.WorkerID
			ts.NodeID = prefix + ts.NodeID
			merged.Tasks = append(merged.Tasks, ts)
		}
		for _, ws := range snap.Workers {
			ws.WorkerID = prefix + ws.WorkerID
			ws.NodeID = prefix + ws.NodeID
			ws.Tasks = nil // rebuilt below from the prefixed tasks
			merged.Workers = append(merged.Workers, ws)
		}
		for _, ns := range snap.Nodes {
			ns.NodeID = prefix + ns.NodeID
			for i, w := range ns.Workers {
				ns.Workers[i] = prefix + w
			}
			merged.Nodes = append(merged.Nodes, ns)
		}
		for _, as := range snap.Acker {
			as.Topology = prefix + as.Topology
			merged.Acker = append(merged.Acker, as)
		}
		for _, sc := range snap.Scale {
			sc.Topology = prefix + sc.Topology
			merged.Scale = append(merged.Scale, sc)
		}
	}
	merged.Components = dsps.BuildComponentStats(merged.Tasks)
	byWorker := make(map[string]int, len(merged.Workers))
	for i := range merged.Workers {
		byWorker[merged.Workers[i].WorkerID] = i
	}
	for _, ts := range merged.Tasks {
		if i, ok := byWorker[ts.WorkerID]; ok {
			merged.Workers[i].Tasks = append(merged.Workers[i].Tasks, ts)
		}
	}
	return merged
}

// Ping round-trips an OpPing with a worker.
func (c *Coordinator) Ping(name string) error {
	s, err := c.session(name)
	if err != nil {
		return err
	}
	res, err := s.call(Command{Op: OpPing}, c.cfg.CommandTimeout)
	if err != nil {
		return err
	}
	if res.Status != StatusOK {
		return fmt.Errorf("cluster: ping %s: status %d: %s", name, res.Status, res.Detail)
	}
	return nil
}

// CheckInvariants asks one worker to clear faults, pause spouts, drain
// (bounded by drainTimeout), and run the engine invariants — tuple
// conservation and acker quiescence — inside its own process, resuming
// emission afterwards when resume is set. It returns the drained flag and
// any violations the worker reported.
func (c *Coordinator) CheckInvariants(name string, drainTimeout time.Duration, resume bool) (drained bool, violations []string, err error) {
	s, err := c.session(name)
	if err != nil {
		return false, nil, err
	}
	res, err := s.call(Command{Op: OpCheckInvariants, Timeout: drainTimeout, Resume: resume},
		c.cfg.CommandTimeout+drainTimeout)
	if err != nil {
		return false, nil, err
	}
	if res.Status != StatusOK {
		return false, nil, fmt.Errorf("cluster: check %s: status %d: %s", name, res.Status, res.Detail)
	}
	return res.Drained, res.Violations, nil
}

// DrainAll pauses nothing but asks every live worker to drain, bounded by
// timeout each, and reports whether all drained.
func (c *Coordinator) DrainAll(timeout time.Duration) bool {
	all := true
	for _, s := range c.liveSessions() {
		res, err := s.call(Command{Op: OpDrain, Timeout: timeout}, c.cfg.CommandTimeout+timeout)
		if err != nil || res.Status != StatusOK || !res.Drained {
			all = false
		}
	}
	return all
}

// PauseAll / ResumeAll toggle spout emission on every live worker.
func (c *Coordinator) PauseAll() {
	for _, s := range c.liveSessions() {
		s.call(Command{Op: OpPauseSpouts}, c.cfg.CommandTimeout)
	}
}

// ResumeAll re-enables spout emission on every live worker.
func (c *Coordinator) ResumeAll() {
	for _, s := range c.liveSessions() {
		s.call(Command{Op: OpResumeSpouts}, c.cfg.CommandTimeout)
	}
}

// ShutdownWorkers asks every live worker process to exit gracefully.
func (c *Coordinator) ShutdownWorkers() {
	for _, s := range c.liveSessions() {
		s.call(Command{Op: OpShutdown}, c.cfg.CommandTimeout)
	}
}
