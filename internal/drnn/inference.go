package drnn

import (
	"fmt"

	"predstream/internal/nn"
	"predstream/internal/stats"
	"predstream/internal/timeseries"
)

// Inference is a concurrent-safe batched serving handle over a fitted
// Predictor. It owns a pooled batched forward path (float64 GEMM or int8
// quantized), applies the model's feature standardization during the input
// gather, and de-standardizes predictions back to metric units. Many
// goroutines may call PredictBatch concurrently; the handle never mutates
// the underlying Predictor.
type Inference struct {
	window      int
	features    int
	quantized   bool
	weightBytes int
	tgt         stats.StandardScaler
	forward     func(seqs [][][]float64, dst [][]float64) error
}

// Inference builds a serving handle from the fitted model. With quantized
// set, weights are converted to int8 (symmetric per-tensor scales) and the
// forward path runs fixed-point; otherwise it runs the exact float64 path,
// bitwise identical to Predict.
func (p *Predictor) Inference(quantized bool) (*Inference, error) {
	if !p.fitted {
		return nil, timeseries.ErrNotFitted
	}
	scalers := p.featScalers
	opts := nn.BatchOptions{PreScale: func(dst, src []float64) {
		for d, v := range src {
			dst[d] = scalers[d].Transform(v)
		}
	}}
	inf := &Inference{
		window:    p.cfg.Window,
		features:  len(scalers),
		quantized: quantized,
		tgt:       p.tgtScaler,
	}
	if quantized {
		qnet := nn.Quantize(p.net)
		inf.weightBytes = qnet.WeightBytes()
		inf.forward = qnet.NewRunner(opts).Forward
	} else {
		inf.weightBytes = 8 * p.net.NumParams()
		inf.forward = nn.NewBatchRunner(p.net, opts).Forward
	}
	return inf, nil
}

// Window returns the input window length each request must supply.
func (inf *Inference) Window() int { return inf.window }

// Features returns the per-timestep feature count each request must supply.
func (inf *Inference) Features() int { return inf.features }

// Quantized reports whether the forward path runs int8 fixed-point.
func (inf *Inference) Quantized() bool { return inf.quantized }

// WeightBytes returns the in-memory footprint of the forward path's
// parameters: 8 bytes per float64 parameter, or the packed size (1 byte
// per weight, biases kept in float) when quantized.
func (inf *Inference) WeightBytes() int { return inf.weightBytes }

// PredictBatch evaluates a micro-batch of raw (unscaled) feature windows in
// one batched forward pass and writes the prediction for windows[i], in
// metric units, into out[i]. Every window must be Window()×Features().
func (inf *Inference) PredictBatch(windows [][][]float64, out []float64) error {
	if len(out) != len(windows) {
		return fmt.Errorf("drnn: inference got %d outputs for %d windows", len(out), len(windows))
	}
	for i, win := range windows {
		if len(win) != inf.window {
			return fmt.Errorf("drnn: inference window %d has %d steps, want %d", i, len(win), inf.window)
		}
	}
	backing := make([]float64, len(windows))
	rows := make([][]float64, len(windows))
	for i := range rows {
		rows[i] = backing[i : i+1]
	}
	if err := inf.forward(windows, rows); err != nil {
		return err
	}
	for i, v := range backing {
		out[i] = inf.tgt.Inverse(v)
	}
	return nil
}

// PredictOne is PredictBatch for a single window.
func (inf *Inference) PredictOne(window [][]float64) (float64, error) {
	var out [1]float64
	err := inf.PredictBatch([][][]float64{window}, out[:])
	return out[0], err
}
