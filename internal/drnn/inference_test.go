package drnn

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"predstream/internal/telemetry"
	"predstream/internal/timeseries"
	"predstream/internal/trace"
	"predstream/internal/workload"
)

// quantGoldenMaxDelta pins the end-to-end accuracy cost of int8 inference
// on the seed corpus: the max |float − int8| prediction gap, in target
// metric units (ms of processing time), observed over every held-out
// window. Regenerate deliberately if the quantization scheme changes; a
// creep upward means the fixed-point path lost precision.
const quantGoldenMaxDelta = 0.01

// fitSeedCorpus trains a small predictor on the synthetic seed corpus and
// returns it with the held-out raw windows and a target-scale reference.
func fitSeedCorpus(t testing.TB) (*Predictor, [][][]float64) {
	t.Helper()
	traces := trace.Synthetic(trace.SyntheticConfig{
		Workers: 2, Nodes: 1, Cores: 4,
		BaseMs: 1.0,
		Shape:  workload.SinusoidRate{Base: 900, Amplitude: 500, Period: 50 * time.Second},
		Steps:  160, Seed: 1,
	})
	series := telemetry.ToSeries(traces["worker-0"], telemetry.TargetProcTime,
		telemetry.FeatureConfig{Interference: true})
	split := 120
	train := &timeseries.Series{Points: series.Points[:split]}
	test := &timeseries.Series{Points: series.Points[split:]}
	p := New(Config{Window: 10, Hidden: []int{12}, DenseHidden: []int{6}, Epochs: 8, Seed: 1})
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	windows, _, err := timeseries.Window(test, p.Config().Window, p.Config().Horizon)
	if err != nil {
		t.Fatal(err)
	}
	return p, windows
}

// TestInferenceMatchesPredict pins that the float serving path is bitwise
// identical to the per-call Predict path on the same contexts.
func TestInferenceMatchesPredict(t *testing.T) {
	p, windows := fitSeedCorpus(t)
	inf, err := p.Inference(false)
	if err != nil {
		t.Fatal(err)
	}
	if inf.Window() != 10 || inf.Features() != 9 || inf.Quantized() {
		t.Fatalf("unexpected handle shape: window %d features %d quantized %v",
			inf.Window(), inf.Features(), inf.Quantized())
	}
	out := make([]float64, len(windows))
	if err := inf.PredictBatch(windows, out); err != nil {
		t.Fatal(err)
	}
	for i, win := range windows {
		ctx := &timeseries.Series{Points: make([]timeseries.Point, len(win))}
		for s, row := range win {
			ctx.Points[s] = timeseries.Point{Features: row}
		}
		want, err := p.Predict(ctx, 1)
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != want {
			t.Fatalf("window %d: batched %v != Predict %v", i, out[i], want)
		}
	}
}

// TestInferenceQuantizedGolden is the golden-pinned end-to-end quantization
// test from the issue: on seed-corpus windows, max |float − int8| must stay
// within quantGoldenMaxDelta of the float predictions, and both paths must
// produce finite, same-scale outputs.
func TestInferenceQuantizedGolden(t *testing.T) {
	p, windows := fitSeedCorpus(t)
	float, err := p.Inference(false)
	if err != nil {
		t.Fatal(err)
	}
	quant, err := p.Inference(true)
	if err != nil {
		t.Fatal(err)
	}
	if !quant.Quantized() {
		t.Fatal("quantized handle reports Quantized() == false")
	}
	fOut := make([]float64, len(windows))
	qOut := make([]float64, len(windows))
	if err := float.PredictBatch(windows, fOut); err != nil {
		t.Fatal(err)
	}
	if err := quant.PredictBatch(windows, qOut); err != nil {
		t.Fatal(err)
	}
	maxDelta := 0.0
	for i := range fOut {
		if math.IsNaN(qOut[i]) || math.IsInf(qOut[i], 0) {
			t.Fatalf("window %d: non-finite quantized prediction %v", i, qOut[i])
		}
		if d := math.Abs(fOut[i] - qOut[i]); d > maxDelta {
			maxDelta = d
		}
	}
	t.Logf("seed corpus max |float-int8| = %.6f over %d windows", maxDelta, len(windows))
	if maxDelta > quantGoldenMaxDelta {
		t.Fatalf("max |float-int8| = %v exceeds golden bound %v", maxDelta, quantGoldenMaxDelta)
	}
}

// TestInferenceConcurrent hammers one float and one quantized handle from
// many goroutines (run under -race): results must match the serial answers
// exactly, pinning the pooled-workspace isolation at the serving boundary.
func TestInferenceConcurrent(t *testing.T) {
	p, windows := fitSeedCorpus(t)
	if len(windows) > 8 {
		windows = windows[:8]
	}
	for _, quantized := range []bool{false, true} {
		inf, err := p.Inference(quantized)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, len(windows))
		if err := inf.PredictBatch(windows, want); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 15; i++ {
					got, err := inf.PredictOne(windows[w%len(windows)])
					if err != nil {
						errs <- err
						return
					}
					if got != want[w%len(windows)] {
						errs <- fmt.Errorf("worker %d: got %v want %v", w, got, want[w%len(windows)])
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("quantized=%v: %v", quantized, err)
		}
	}
}

// TestInferenceValidation covers unfitted models and shape errors.
func TestInferenceValidation(t *testing.T) {
	if _, err := New(Config{}).Inference(false); err != timeseries.ErrNotFitted {
		t.Fatalf("unfitted Inference error = %v, want ErrNotFitted", err)
	}
	p, windows := fitSeedCorpus(t)
	inf, err := p.Inference(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := inf.PredictBatch(windows[:2], make([]float64, 3)); err == nil {
		t.Fatal("expected output-length mismatch error")
	}
	if err := inf.PredictBatch([][][]float64{windows[0][:4]}, make([]float64, 1)); err == nil {
		t.Fatal("expected short-window error")
	}
	bad := [][]float64{{1, 2}}
	for len(bad) < inf.Window() {
		bad = append(bad, []float64{1, 2})
	}
	if _, err := inf.PredictOne(bad); err == nil {
		t.Fatal("expected feature-width error")
	}
}
