// Package drnn implements the paper's Deep Recurrent Neural Network
// performance predictor: a stack of LSTM layers followed by fully connected
// layers, consuming a sliding window of multilevel runtime statistics
// (tuple-, task-, worker- and machine-level features, including those of
// co-located workers) and predicting the next measurement of a worker's
// performance metric (average tuple processing time or throughput).
//
// The interference-awareness the paper emphasizes is a property of the
// feature vectors (see internal/telemetry.Features): this package
// accepts any multivariate series, so experiment E4 ablates interference by
// toggling co-located-worker features in the series it feeds in.
package drnn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"predstream/internal/nn"
	"predstream/internal/stats"
	"predstream/internal/timeseries"
)

// Config describes a DRNN predictor. Zero values take the paper-regime
// defaults noted per field.
type Config struct {
	Window  int // input window length in measurement periods; default 10
	Horizon int // forecast horizon in periods; default 1

	Hidden      []int  // recurrent stack sizes; default {32, 32} (two layers)
	DenseHidden []int  // dense head sizes before the output; default {16}
	Cell        string // recurrent cell: "lstm" (default) or "gru"

	Epochs    int     // training epochs; default 60
	LR        float64 // Adam learning rate; default 1e-3
	ClipNorm  float64 // gradient clipping by global norm; default 5
	BatchSize int     // mini-batch size; default 1 (pure SGD)
	Dropout   float64 // dropout on the recurrent output in [0,0.9]; default 0
	// ValFraction holds out this trailing fraction of training windows as
	// a validation set: early stopping tracks validation loss and the
	// best-epoch weights are restored. 0 (default) disables.
	ValFraction float64
	Patience    int   // early-stopping patience in epochs; default 8; <0 disables
	Seed        int64 // rng seed for init and shuffling; default 1
	// Workers is the number of concurrent workers evaluating each training
	// mini-batch; 0 (default) uses all CPUs, 1 forces serial. The fitted
	// model is bitwise-identical for any value (see DESIGN.md, "Training
	// engine"), so this is purely a throughput knob.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 10
	}
	if c.Horizon <= 0 {
		c.Horizon = 1
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{32, 32}
	}
	if len(c.DenseHidden) == 0 {
		c.DenseHidden = []int{16}
	}
	if c.Epochs <= 0 {
		c.Epochs = 60
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	if c.Patience == 0 {
		c.Patience = 8
	} else if c.Patience < 0 {
		c.Patience = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Predictor is a fitted or fittable DRNN model implementing
// timeseries.Predictor.
type Predictor struct {
	cfg Config

	net         *nn.Network
	featScalers []stats.StandardScaler
	tgtScaler   stats.StandardScaler
	lossHistory []float64
	fitted      bool
}

// New returns an unfitted DRNN predictor.
func New(cfg Config) *Predictor {
	return &Predictor{cfg: cfg.withDefaults()}
}

// Name implements timeseries.Predictor.
func (p *Predictor) Name() string { return "DRNN" }

// MinContext implements timeseries.Predictor.
func (p *Predictor) MinContext() int { return p.cfg.Window }

// Config returns the effective (defaulted) configuration.
func (p *Predictor) Config() Config { return p.cfg }

// LossHistory returns the per-epoch mean training loss of the last Fit,
// the series experiment E8 plots.
func (p *Predictor) LossHistory() []float64 {
	out := make([]float64, len(p.lossHistory))
	copy(out, p.lossHistory)
	return out
}

// Fit implements timeseries.Predictor: it standardizes features and target
// on the training span, builds sliding windows, and trains the network with
// Adam + gradient clipping.
func (p *Predictor) Fit(train *timeseries.Series) error {
	if err := train.Validate(); err != nil {
		return err
	}
	dim := train.FeatureDim()
	if dim == 0 {
		return fmt.Errorf("drnn: empty training series")
	}
	if c := p.cfg.Cell; c != "" && c != "lstm" && c != "gru" {
		return fmt.Errorf("drnn: unknown recurrent cell %q", c)
	}
	if p.cfg.Dropout < 0 || p.cfg.Dropout > 0.9 {
		return fmt.Errorf("drnn: dropout %v out of [0, 0.9]", p.cfg.Dropout)
	}
	if p.cfg.ValFraction < 0 || p.cfg.ValFraction >= 0.9 {
		return fmt.Errorf("drnn: validation fraction %v out of [0, 0.9)", p.cfg.ValFraction)
	}
	inputs, targets, err := timeseries.Window(train, p.cfg.Window, p.cfg.Horizon)
	if err != nil {
		return err
	}
	if len(inputs) < 2 {
		return fmt.Errorf("drnn: training series of %d yields %d windows; need at least 2",
			train.Len(), len(inputs))
	}

	p.featScalers = make([]stats.StandardScaler, dim)
	for d := 0; d < dim; d++ {
		col := make([]float64, train.Len())
		for i, pt := range train.Points {
			col[i] = pt.Features[d]
		}
		p.featScalers[d] = stats.FitStandard(col)
	}
	p.tgtScaler = stats.FitStandard(train.Targets())

	data := nn.Dataset{
		X: make([][][]float64, len(inputs)),
		Y: make([][]float64, len(targets)),
	}
	for i, win := range inputs {
		data.X[i] = p.scaleWindow(win)
		data.Y[i] = []float64{p.tgtScaler.Transform(targets[i])}
	}

	rng := rand.New(rand.NewSource(p.cfg.Seed))
	p.net = nn.NewNetwork(nn.Arch{
		In:          dim,
		LSTMHidden:  p.cfg.Hidden,
		DenseHidden: p.cfg.DenseHidden,
		Out:         1,
		Cell:        p.cfg.Cell,
		Dropout:     p.cfg.Dropout,
	}, rng)
	trainCfg := nn.TrainConfig{
		Epochs:    p.cfg.Epochs,
		Optimizer: nn.NewAdam(p.cfg.LR),
		Loss:      nn.MSE{},
		ClipNorm:  p.cfg.ClipNorm,
		BatchSize: p.cfg.BatchSize,
		Shuffle:   true,
		Rng:       rng,
		Patience:  p.cfg.Patience,
		Workers:   p.cfg.Workers,
	}
	if p.cfg.ValFraction > 0 {
		// Hold out the trailing windows (the most recent — time-series
		// order) for early stopping and best-weight restoration.
		trainPart, valPart := data.Split(1 - p.cfg.ValFraction)
		if valPart.Len() > 0 && trainPart.Len() > 1 {
			data = trainPart
			trainCfg.ValData = &valPart
		}
	}
	losses, err := nn.Train(p.net, data, trainCfg)
	if err != nil {
		return fmt.Errorf("drnn: train: %w", err)
	}
	p.lossHistory = losses
	p.fitted = true
	return nil
}

func (p *Predictor) scaleWindow(win [][]float64) [][]float64 {
	out := make([][]float64, len(win))
	for t, step := range win {
		row := make([]float64, len(step))
		for d, v := range step {
			row[d] = p.featScalers[d].Transform(v)
		}
		out[t] = row
	}
	return out
}

// Predict implements timeseries.Predictor.
func (p *Predictor) Predict(recent *timeseries.Series, horizon int) (float64, error) {
	if !p.fitted {
		return 0, timeseries.ErrNotFitted
	}
	if horizon != p.cfg.Horizon {
		return 0, fmt.Errorf("drnn: fitted for horizon %d, asked for %d", p.cfg.Horizon, horizon)
	}
	n := recent.Len()
	if n < p.cfg.Window {
		return 0, timeseries.ErrShortContext
	}
	if recent.FeatureDim() != len(p.featScalers) {
		return 0, fmt.Errorf("drnn: context has %d features, model trained on %d",
			recent.FeatureDim(), len(p.featScalers))
	}
	win := make([][]float64, p.cfg.Window)
	for t := 0; t < p.cfg.Window; t++ {
		win[t] = recent.Points[n-p.cfg.Window+t].Features
	}
	out := p.net.Forward(p.scaleWindow(win))
	return p.tgtScaler.Inverse(out[0]), nil
}

// NumParams returns the scalar parameter count of the fitted network, or 0
// before Fit.
func (p *Predictor) NumParams() int {
	if p.net == nil {
		return 0
	}
	return p.net.NumParams()
}

// checkpoint is the gob wire format for a fitted predictor. The network is
// nested as its own gob payload via nn.Save.
type checkpoint struct {
	Cfg         Config
	FeatScalers []stats.StandardScaler
	TgtScaler   stats.StandardScaler
	LossHistory []float64
	NetBytes    []byte
}

// Save serializes the fitted predictor to w.
func (p *Predictor) Save(w io.Writer) error {
	if !p.fitted {
		return timeseries.ErrNotFitted
	}
	var netBuf sliceWriter
	if err := nn.Save(p.net, &netBuf); err != nil {
		return err
	}
	cp := checkpoint{
		Cfg:         p.cfg,
		FeatScalers: p.featScalers,
		TgtScaler:   p.tgtScaler,
		LossHistory: p.lossHistory,
		NetBytes:    netBuf.b,
	}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("drnn: save: %w", err)
	}
	return nil
}

// Load reconstructs a fitted predictor from a checkpoint written by Save.
func Load(r io.Reader) (*Predictor, error) {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("drnn: load: %w", err)
	}
	net, err := nn.Load(&sliceReader{b: cp.NetBytes})
	if err != nil {
		return nil, err
	}
	return &Predictor{
		cfg:         cp.Cfg.withDefaults(),
		net:         net,
		featScalers: cp.FeatScalers,
		tgtScaler:   cp.TgtScaler,
		lossHistory: cp.LossHistory,
		fitted:      true,
	}, nil
}

// sliceWriter and sliceReader avoid importing bytes just for buffers.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

type sliceReader struct {
	b   []byte
	off int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}
