package drnn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"predstream/internal/timeseries"
)

// sineSeries builds a univariate sine series with optional noise.
func sineSeries(n int, noise float64, seed int64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(0.2*float64(i)) + noise*rng.NormFloat64()
	}
	return timeseries.FromTargets(xs)
}

// multivariateSeries builds a series whose target is driven by a white
// leading indicator three steps ahead of it: the second feature at step i
// determines the target at step i+3. Target history alone cannot predict
// the next value, so only models that use the driver feature can do well —
// the same mechanism that makes the paper's co-located-worker features
// informative.
func multivariateSeries(n int, seed int64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	drivers := make([]float64, n)
	for i := range drivers {
		drivers[i] = rng.NormFloat64()
	}
	s := &timeseries.Series{}
	for i := 0; i < n; i++ {
		target := 0.05 * rng.NormFloat64()
		if i >= 3 {
			target += 2 * drivers[i-3]
		}
		s.Points = append(s.Points, timeseries.Point{
			Features: []float64{target, drivers[i]},
			Target:   target,
		})
	}
	return s
}

func TestConfigDefaults(t *testing.T) {
	p := New(Config{})
	cfg := p.Config()
	if cfg.Window != 10 || cfg.Horizon != 1 {
		t.Fatalf("window/horizon defaults = %d/%d", cfg.Window, cfg.Horizon)
	}
	if len(cfg.Hidden) != 2 || cfg.Hidden[0] != 32 {
		t.Fatalf("hidden defaults = %v", cfg.Hidden)
	}
	if cfg.Epochs != 60 || cfg.LR != 1e-3 || cfg.ClipNorm != 5 || cfg.Patience != 8 {
		t.Fatalf("training defaults = %+v", cfg)
	}
	// Negative patience disables early stopping.
	if got := New(Config{Patience: -1}).Config().Patience; got != 0 {
		t.Fatalf("Patience -1 mapped to %d", got)
	}
}

func TestPredictBeforeFit(t *testing.T) {
	p := New(Config{})
	if _, err := p.Predict(sineSeries(20, 0, 1), 1); err != timeseries.ErrNotFitted {
		t.Fatalf("expected ErrNotFitted, got %v", err)
	}
	if p.NumParams() != 0 {
		t.Fatal("unfitted NumParams should be 0")
	}
}

func TestFitValidation(t *testing.T) {
	p := New(Config{Window: 5})
	if err := p.Fit(timeseries.FromTargets([]float64{1, 2, 3})); err == nil {
		t.Fatal("too-short series should fail")
	}
	ragged := &timeseries.Series{Points: []timeseries.Point{
		{Features: []float64{1, 2}, Target: 1},
		{Features: []float64{1}, Target: 2},
	}}
	if err := p.Fit(ragged); err == nil {
		t.Fatal("ragged series should fail")
	}
}

func TestLearnsSineAndBeatsNaive(t *testing.T) {
	series := sineSeries(400, 0.02, 2)
	p := New(Config{Window: 8, Hidden: []int{12}, DenseHidden: []int{8}, Epochs: 40, LR: 5e-3, Seed: 3})
	res, err := timeseries.WalkForward(p, series, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := timeseries.WalkForward(&timeseries.NaivePredictor{}, series, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.RMSE >= naive.Report.RMSE {
		t.Fatalf("DRNN RMSE %v did not beat naive %v on sine", res.Report.RMSE, naive.Report.RMSE)
	}
	if len(p.LossHistory()) == 0 {
		t.Fatal("no loss history recorded")
	}
	first, last := p.LossHistory()[0], p.LossHistory()[len(p.LossHistory())-1]
	if last >= first {
		t.Fatalf("training loss did not decrease: %v -> %v", first, last)
	}
}

func TestMultivariateFeaturesHelp(t *testing.T) {
	// The same model with the driver feature removed must do worse — this
	// is the mechanism behind the paper's interference-feature claim (E4).
	full := multivariateSeries(500, 4)
	blind := &timeseries.Series{}
	for _, pt := range full.Points {
		blind.Points = append(blind.Points, timeseries.Point{
			Features: []float64{pt.Features[0]},
			Target:   pt.Target,
		})
	}
	cfg := Config{Window: 6, Hidden: []int{10}, DenseHidden: []int{6}, Epochs: 30, LR: 5e-3, Seed: 5}
	resFull, err := timeseries.WalkForward(New(cfg), full, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	resBlind, err := timeseries.WalkForward(New(cfg), blind, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resFull.Report.RMSE >= resBlind.Report.RMSE {
		t.Fatalf("driver feature did not help: full %v vs blind %v",
			resFull.Report.RMSE, resBlind.Report.RMSE)
	}
}

func TestPredictContextValidation(t *testing.T) {
	series := sineSeries(120, 0, 6)
	p := New(Config{Window: 5, Hidden: []int{4}, Epochs: 2, Seed: 7})
	if err := p.Fit(series); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(sineSeries(3, 0, 1), 1); err != timeseries.ErrShortContext {
		t.Fatalf("expected ErrShortContext, got %v", err)
	}
	if _, err := p.Predict(series, 4); err == nil {
		t.Fatal("horizon mismatch should error")
	}
	if _, err := p.Predict(multivariateSeries(20, 1), 1); err == nil {
		t.Fatal("feature-width mismatch should error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	series := sineSeries(150, 0, 8)
	p := New(Config{Window: 5, Hidden: []int{6}, Epochs: 5, Seed: 9})
	if err := p.Fit(series); err != nil {
		t.Fatal(err)
	}
	want, err := p.Predict(series, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Predict(series, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("round-trip prediction %v want %v", got, want)
	}
	if len(loaded.LossHistory()) != len(p.LossHistory()) {
		t.Fatal("loss history lost in round-trip")
	}
}

func TestSaveUnfitted(t *testing.T) {
	var buf bytes.Buffer
	if err := New(Config{}).Save(&buf); err != timeseries.ErrNotFitted {
		t.Fatalf("expected ErrNotFitted, got %v", err)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage should error")
	}
}

func TestGRUCellVariant(t *testing.T) {
	series := sineSeries(300, 0.02, 15)
	p := New(Config{Window: 8, Hidden: []int{12}, Epochs: 25, LR: 5e-3, Cell: "gru", Seed: 16})
	res, err := timeseries.WalkForward(p, series, 220, 1)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := timeseries.WalkForward(&timeseries.NaivePredictor{}, series, 220, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.RMSE >= naive.Report.RMSE {
		t.Fatalf("GRU DRNN RMSE %v did not beat naive %v", res.Report.RMSE, naive.Report.RMSE)
	}
	// GRU survives the checkpoint round-trip.
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Predict(series, 1)
	b, _ := loaded.Predict(series, 1)
	if a != b {
		t.Fatalf("round-trip prediction changed: %v vs %v", a, b)
	}
}

func TestUnknownCellRejected(t *testing.T) {
	p := New(Config{Window: 5, Cell: "elman"})
	if err := p.Fit(sineSeries(100, 0, 17)); err == nil {
		t.Fatal("unknown cell accepted")
	}
}

func TestDropoutAndValidationVariant(t *testing.T) {
	series := sineSeries(400, 0.03, 20)
	p := New(Config{
		Window: 8, Hidden: []int{12}, Epochs: 40, LR: 5e-3,
		Dropout: 0.2, ValFraction: 0.15, Patience: 8, Seed: 21,
	})
	res, err := timeseries.WalkForward(p, series, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := timeseries.WalkForward(&timeseries.NaivePredictor{}, series, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.RMSE >= naive.Report.RMSE {
		t.Fatalf("regularized DRNN RMSE %v did not beat naive %v", res.Report.RMSE, naive.Report.RMSE)
	}
	// Invalid configs are rejected at Fit.
	if err := New(Config{Dropout: 0.95}).Fit(series); err == nil {
		t.Fatal("dropout 0.95 accepted")
	}
	if err := New(Config{ValFraction: 0.95}).Fit(series); err == nil {
		t.Fatal("val fraction 0.95 accepted")
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	series := sineSeries(150, 0.01, 10)
	mk := func() float64 {
		p := New(Config{Window: 5, Hidden: []int{6}, Epochs: 5, Seed: 11})
		if err := p.Fit(series); err != nil {
			t.Fatal(err)
		}
		v, err := p.Predict(series, 1)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("same seed produced %v and %v", a, b)
	}
}

func BenchmarkFitSmall(b *testing.B) {
	series := sineSeries(200, 0.02, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := New(Config{Window: 8, Hidden: []int{16}, Epochs: 5, Seed: 13})
		if err := p.Fit(series); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	series := sineSeries(300, 0.02, 14)
	p := New(Config{Window: 10, Hidden: []int{32, 32}, Epochs: 2, Seed: 15})
	if err := p.Fit(series); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Predict(series, 1); err != nil {
			b.Fatal(err)
		}
	}
}
