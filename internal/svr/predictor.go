package svr

import (
	"fmt"

	"predstream/internal/stats"
	"predstream/internal/timeseries"
)

// WindowPredictor adapts SVR to the timeseries.Predictor contract: the
// feature vector is a flattened window of the last W multivariate
// observations (the same encoding the DRNN consumes, so E1/E2 compare the
// models on identical information), standardized per dimension; the target
// is standardized too and predictions are mapped back.
type WindowPredictor struct {
	Window  int
	Horizon int
	Model   *SVR

	featScalers []stats.StandardScaler
	tgtScaler   stats.StandardScaler
	fitted      bool
}

// NewWindowPredictor returns an SVR predictor over windows of w points for
// the given forecast horizon. model may be nil for defaults.
func NewWindowPredictor(w, horizon int, model *SVR) *WindowPredictor {
	if w <= 0 || horizon <= 0 {
		panic(fmt.Sprintf("svr: invalid window %d or horizon %d", w, horizon))
	}
	if model == nil {
		model = &SVR{}
	}
	return &WindowPredictor{Window: w, Horizon: horizon, Model: model}
}

// Name implements timeseries.Predictor.
func (p *WindowPredictor) Name() string { return "SVR" }

// MinContext implements timeseries.Predictor.
func (p *WindowPredictor) MinContext() int { return p.Window }

// Fit implements timeseries.Predictor.
func (p *WindowPredictor) Fit(train *timeseries.Series) error {
	if err := train.Validate(); err != nil {
		return err
	}
	inputs, targets, err := timeseries.Window(train, p.Window, p.Horizon)
	if err != nil {
		return err
	}
	if len(inputs) == 0 {
		return fmt.Errorf("svr: training series of %d too short for window %d + horizon %d",
			train.Len(), p.Window, p.Horizon)
	}
	dim := train.FeatureDim()
	// Fit one scaler per feature dimension over the training series.
	p.featScalers = make([]stats.StandardScaler, dim)
	for d := 0; d < dim; d++ {
		col := make([]float64, train.Len())
		for i, pt := range train.Points {
			col[i] = pt.Features[d]
		}
		p.featScalers[d] = stats.FitStandard(col)
	}
	p.tgtScaler = stats.FitStandard(train.Targets())

	x := make([][]float64, len(inputs))
	y := make([]float64, len(targets))
	for i, win := range inputs {
		x[i] = p.flatten(win)
		y[i] = p.tgtScaler.Transform(targets[i])
	}
	if err := p.Model.FitXY(x, y); err != nil {
		return err
	}
	p.fitted = true
	return nil
}

// flatten scales and concatenates a window of feature vectors.
func (p *WindowPredictor) flatten(win [][]float64) []float64 {
	out := make([]float64, 0, len(win)*len(p.featScalers))
	for _, step := range win {
		for d, v := range step {
			out = append(out, p.featScalers[d].Transform(v))
		}
	}
	return out
}

// Predict implements timeseries.Predictor.
func (p *WindowPredictor) Predict(recent *timeseries.Series, horizon int) (float64, error) {
	if !p.fitted {
		return 0, timeseries.ErrNotFitted
	}
	if horizon != p.Horizon {
		return 0, fmt.Errorf("svr: fitted for horizon %d, asked for %d", p.Horizon, horizon)
	}
	n := recent.Len()
	if n < p.Window {
		return 0, timeseries.ErrShortContext
	}
	win := make([][]float64, p.Window)
	for t := 0; t < p.Window; t++ {
		win[t] = recent.Points[n-p.Window+t].Features
	}
	z := p.Model.PredictXY(p.flatten(win))
	return p.tgtScaler.Inverse(z), nil
}
