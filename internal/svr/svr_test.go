package svr

import (
	"math"
	"math/rand"
	"testing"

	"predstream/internal/timeseries"
)

func TestKernels(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4}
	if got := (Linear{}).Eval(a, b); got != 11 {
		t.Fatalf("linear = %v", got)
	}
	k := RBF{Gamma: 0.5}
	want := math.Exp(-0.5 * 8) // ‖a-b‖²=8
	if got := k.Eval(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("rbf = %v want %v", got, want)
	}
	if k.Eval(a, a) != 1 {
		t.Fatal("rbf self-similarity != 1")
	}
}

func TestFitValidation(t *testing.T) {
	s := &SVR{}
	if err := s.FitXY(nil, nil); err == nil {
		t.Fatal("empty set should error")
	}
	if err := s.FitXY([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if err := s.FitXY([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged rows should error")
	}
}

func TestLinearSVRRecoversLine(t *testing.T) {
	// y = 2x fitted with a linear kernel must interpolate within ε.
	var x [][]float64
	var y []float64
	for i := -5; i <= 5; i++ {
		x = append(x, []float64{float64(i)})
		y = append(y, 2*float64(i))
	}
	s := &SVR{C: 100, Eps: 0.05, Kernel: Linear{}, MaxIter: 2000, Tol: 1e-8}
	if err := s.FitXY(x, y); err != nil {
		t.Fatal(err)
	}
	for i, xi := range x {
		if got := s.PredictXY(xi); math.Abs(got-y[i]) > 0.2 {
			t.Fatalf("pred(%v) = %v want %v", xi, got, y[i])
		}
	}
}

func TestRBFSVRFitsNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 80; i++ {
		v := rng.Float64()*6 - 3
		x = append(x, []float64{v})
		y = append(y, math.Sin(v))
	}
	s := &SVR{C: 10, Eps: 0.02, Kernel: RBF{Gamma: 1}, MaxIter: 2000, Tol: 1e-8}
	if err := s.FitXY(x, y); err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i, xi := range x {
		if e := math.Abs(s.PredictXY(xi) - y[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.15 {
		t.Fatalf("max training error %v too high for sine fit", maxErr)
	}
	if s.NumSupportVectors() == 0 {
		t.Fatal("no support vectors")
	}
	if s.NumSupportVectors() > len(x) {
		t.Fatal("more SVs than points")
	}
}

func TestEpsilonTubeSparsifies(t *testing.T) {
	// A wide ε-tube around constant data needs no support vectors at all:
	// all targets within ±ε of 0 are already fit by the zero function.
	var x [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		x = append(x, []float64{rng.Float64()})
		y = append(y, 0.01*rng.NormFloat64())
	}
	s := &SVR{C: 1, Eps: 0.5, Kernel: RBF{Gamma: 1}}
	if err := s.FitXY(x, y); err != nil {
		t.Fatal(err)
	}
	if got := s.NumSupportVectors(); got != 0 {
		t.Fatalf("wide tube kept %d support vectors", got)
	}
}

func TestCBoundsCoefficients(t *testing.T) {
	// An outlier's coefficient saturates at C rather than chasing it.
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 0, 0, 1000}
	s := &SVR{C: 0.5, Eps: 0.01, Kernel: RBF{Gamma: 1}, MaxIter: 500}
	if err := s.FitXY(x, y); err != nil {
		t.Fatal(err)
	}
	for _, b := range s.beta {
		if math.Abs(b) > 0.5+1e-9 {
			t.Fatalf("coefficient %v exceeds C", b)
		}
	}
	// Bounded coefficients mean the outlier cannot be fit.
	if got := s.PredictXY([]float64{3}); got > 10 {
		t.Fatalf("outlier prediction %v should stay small under tight C", got)
	}
}

func TestConvergenceStopsEarly(t *testing.T) {
	x := [][]float64{{0}, {1}}
	y := []float64{0, 1}
	s := &SVR{C: 10, Eps: 0.01, Kernel: Linear{}, MaxIter: 10000, Tol: 1e-10}
	if err := s.FitXY(x, y); err != nil {
		t.Fatal(err)
	}
	if s.Sweeps() >= 10000 {
		t.Fatalf("solver used all %d sweeps without converging", s.Sweeps())
	}
}

func TestWindowPredictorOnAR(t *testing.T) {
	// Oscillating AR(1) (φ=-0.6): persistence is badly wrong here, so a
	// working SVR must beat it by a wide margin.
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 600)
	for i := 1; i < len(xs); i++ {
		xs[i] = -0.6*xs[i-1] + rng.NormFloat64()
	}
	series := timeseries.FromTargets(xs)
	p := NewWindowPredictor(5, 1, &SVR{C: 10, Eps: 0.05, MaxIter: 200})
	res, err := timeseries.WalkForward(p, series, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := timeseries.WalkForward(&timeseries.NaivePredictor{}, series, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.RMSE >= naive.Report.RMSE {
		t.Fatalf("SVR RMSE %v should beat naive %v", res.Report.RMSE, naive.Report.RMSE)
	}
}

func TestWindowPredictorErrors(t *testing.T) {
	p := NewWindowPredictor(3, 1, nil)
	if _, err := p.Predict(timeseries.FromTargets([]float64{1, 2, 3}), 1); err != timeseries.ErrNotFitted {
		t.Fatalf("expected ErrNotFitted, got %v", err)
	}
	if err := p.Fit(timeseries.FromTargets([]float64{1, 2})); err == nil {
		t.Fatal("too-short training series should error")
	}
	long := make([]float64, 50)
	for i := range long {
		long[i] = float64(i % 5)
	}
	if err := p.Fit(timeseries.FromTargets(long)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(timeseries.FromTargets([]float64{1, 2}), 1); err != timeseries.ErrShortContext {
		t.Fatalf("expected ErrShortContext, got %v", err)
	}
	if _, err := p.Predict(timeseries.FromTargets(long), 2); err == nil {
		t.Fatal("horizon mismatch should error")
	}
}

func TestNewWindowPredictorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid window should panic")
		}
	}()
	NewWindowPredictor(0, 1, nil)
}

func BenchmarkFit200Windows(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = x[i][0] + math.Sin(x[i][1])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &SVR{C: 1, Eps: 0.05, MaxIter: 100}
		if err := s.FitXY(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
