// Package svr implements ε-support-vector regression, the paper's second
// prediction baseline. The dual problem is solved by exact coordinate
// descent on the bias-free formulation (the bias is absorbed by augmenting
// the kernel with a constant term, the standard no-bias trick), which gives
// the closed-form soft-threshold update
//
//	βᵢ ← clip( soft(rᵢ, ε) / Kᵢᵢ, −C, C )
//
// per coordinate and converges monotonically — the same family of working-
// set solvers as SMO, specialized to one coordinate.
package svr

import (
	"fmt"
	"math"

	"predstream/internal/mat"
)

// Kernel computes a positive-definite similarity between feature vectors.
type Kernel interface {
	Eval(a, b []float64) float64
	Name() string
}

// RBF is the Gaussian kernel exp(-γ‖a-b‖²), the kernel the paper's SVR
// baseline uses.
type RBF struct{ Gamma float64 }

// Name implements Kernel.
func (k RBF) Name() string { return "rbf" }

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return math.Exp(-k.Gamma * d)
}

// Linear is the inner-product kernel.
type Linear struct{}

// Name implements Kernel.
func (Linear) Name() string { return "linear" }

// Eval implements Kernel.
func (Linear) Eval(a, b []float64) float64 { return mat.Dot(a, b) }

// SVR is an ε-SVR model. Configure before FitXY; zero-value fields get
// standard defaults (C=1, Eps=0.1, RBF γ=1/dim, 300 epochs, tol 1e-4).
type SVR struct {
	C       float64
	Eps     float64
	Kernel  Kernel
	MaxIter int     // full coordinate sweeps
	Tol     float64 // stop when the largest coefficient change in a sweep is below this

	x     [][]float64
	beta  []float64
	iters int
}

func (s *SVR) defaults(dim int) {
	if s.C <= 0 {
		s.C = 1
	}
	if s.Eps <= 0 {
		s.Eps = 0.1
	}
	if s.Kernel == nil {
		s.Kernel = RBF{Gamma: 1 / float64(dim)}
	}
	if s.MaxIter <= 0 {
		s.MaxIter = 300
	}
	if s.Tol <= 0 {
		s.Tol = 1e-4
	}
}

// FitXY trains the model on rows of x with targets y.
func (s *SVR) FitXY(x [][]float64, y []float64) error {
	if len(x) == 0 {
		return fmt.Errorf("svr: empty training set")
	}
	if len(x) != len(y) {
		return fmt.Errorf("svr: %d inputs for %d targets", len(x), len(y))
	}
	dim := len(x[0])
	for i, row := range x {
		if len(row) != dim {
			return fmt.Errorf("svr: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	s.defaults(dim)

	n := len(x)
	// Precompute the augmented kernel matrix K + 1 (the +1 absorbs the
	// bias).
	k := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := s.Kernel.Eval(x[i], x[j]) + 1
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}

	beta := make([]float64, n)
	f := make([]float64, n) // f[i] = Σ_k beta[k]·K[i][k]
	s.iters = 0
	for sweep := 0; sweep < s.MaxIter; sweep++ {
		s.iters = sweep + 1
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			kii := k.At(i, i)
			if kii <= 0 {
				continue
			}
			// Residual excluding i's own contribution.
			r := y[i] - (f[i] - beta[i]*kii)
			var target float64
			switch {
			case r > s.Eps:
				target = (r - s.Eps) / kii
			case r < -s.Eps:
				target = (r + s.Eps) / kii
			}
			if target > s.C {
				target = s.C
			} else if target < -s.C {
				target = -s.C
			}
			delta := target - beta[i]
			if delta == 0 {
				continue
			}
			beta[i] = target
			row := k.Data()[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				f[j] += delta * row[j]
			}
			if d := math.Abs(delta); d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta < s.Tol {
			break
		}
	}

	// Keep only support vectors for prediction.
	s.x = s.x[:0]
	s.beta = s.beta[:0]
	for i, b := range beta {
		if b != 0 {
			s.x = append(s.x, mat.CloneVec(x[i]))
			s.beta = append(s.beta, b)
		}
	}
	return nil
}

// PredictXY returns the model output for one feature vector.
func (s *SVR) PredictXY(x []float64) float64 {
	var out float64
	for i, sv := range s.x {
		out += s.beta[i] * (s.Kernel.Eval(sv, x) + 1)
	}
	return out
}

// NumSupportVectors returns the number of support vectors kept after
// training.
func (s *SVR) NumSupportVectors() int { return len(s.x) }

// Sweeps returns the number of coordinate sweeps the last fit used.
func (s *SVR) Sweeps() int { return s.iters }
