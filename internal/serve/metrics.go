package serve

import (
	"fmt"

	"predstream/internal/obs"
)

// Metrics holds the serving instruments, exported as the
// predstream_serve_* families (see docs/OBSERVABILITY.md). All instruments
// are lock-free; observing them adds no contention to the request path.
type Metrics struct {
	// Admitted counts requests accepted into the queue
	// (predstream_serve_requests_total).
	Admitted *obs.Counter
	// Shed counts requests rejected because the queue was full
	// (predstream_serve_shed_total).
	Shed *obs.Counter
	// Errors counts requests that failed in the backend
	// (predstream_serve_errors_total).
	Errors *obs.Counter
	// Batches counts backend forward passes
	// (predstream_serve_batches_total).
	Batches *obs.Counter
	// BatchSize distributes flushed micro-batch sizes
	// (predstream_serve_batch_size).
	BatchSize *obs.Histogram
	// Latency distributes end-to-end request latency in seconds,
	// admission to reply (predstream_serve_latency_seconds).
	Latency *obs.Histogram
}

// NewMetrics builds the serving instruments and, when reg is non-nil,
// registers them together with a derived collector exporting
// predstream_serve_latency_quantile_seconds{quantile="0.5"|"0.99"} gauges
// computed from the latency histogram at scrape time.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		Admitted: obs.NewCounter("predstream_serve_requests_total",
			"Prediction requests admitted into the serving queue."),
		Shed: obs.NewCounter("predstream_serve_shed_total",
			"Prediction requests shed because the admission queue was full."),
		Errors: obs.NewCounter("predstream_serve_errors_total",
			"Admitted prediction requests that failed in the model backend."),
		Batches: obs.NewCounter("predstream_serve_batches_total",
			"Batched forward passes executed by the serving backend."),
		BatchSize: obs.NewHistogram("predstream_serve_batch_size",
			"Size of each flushed micro-batch.",
			obs.ExponentialBounds(1, 2, 8)), // 1..128
		Latency: obs.NewHistogram("predstream_serve_latency_seconds",
			"End-to-end prediction latency from admission to reply.",
			obs.ExponentialBounds(100e-6, 2, 16)), // 100µs .. ~3.3s
	}
	if reg != nil {
		reg.Register(m.Admitted)
		reg.Register(m.Shed)
		reg.Register(m.Errors)
		reg.Register(m.Batches)
		reg.Register(m.BatchSize)
		reg.Register(m.Latency)
		reg.Register(obs.CollectorFunc(m.collectQuantiles))
	}
	return m
}

// collectQuantiles derives the SLO gauges from one latency snapshot so p50
// and p99 are mutually consistent.
func (m *Metrics) collectQuantiles() []obs.Family {
	snap := m.Latency.Snapshot()
	samples := make([]obs.Sample, 0, 2)
	for _, q := range []float64{0.5, 0.99} {
		samples = append(samples, obs.Sample{
			Labels: []obs.Label{{Name: "quantile", Value: fmt.Sprintf("%g", q)}},
			Value:  obs.QuantileOf(&snap, q),
		})
	}
	return []obs.Family{{
		Name:    "predstream_serve_latency_quantile_seconds",
		Help:    "Request latency quantiles estimated from predstream_serve_latency_seconds.",
		Type:    obs.TypeGauge,
		Samples: samples,
	}}
}
