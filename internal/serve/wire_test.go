package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net"
	"reflect"
	"testing"
	"time"
)

func TestWireFrameRoundTrip(t *testing.T) {
	windows := [][][]float64{
		{{1}},
		{{1.5, -2.25}, {math.Inf(1), 0}, {1e-300, math.MaxFloat64}},
		testWindow(10, 9, 3.75),
	}
	for i, win := range windows {
		frame, err := EncodeWireFrame(nil, win)
		if err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		body, err := ReadWireFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("window %d: read: %v", i, err)
		}
		got, err := DecodeWireFrame(body)
		if err != nil {
			t.Fatalf("window %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, win) {
			t.Fatalf("window %d: round-trip mismatch:\n got %v\nwant %v", i, got, win)
		}
	}
}

func TestWireFrameEncodeRejects(t *testing.T) {
	if _, err := EncodeWireFrame(nil, nil); err == nil {
		t.Fatal("expected empty-window error")
	}
	if _, err := EncodeWireFrame(nil, [][]float64{{}}); err == nil {
		t.Fatal("expected empty-row error")
	}
	if _, err := EncodeWireFrame(nil, [][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("expected ragged-window error")
	}
}

func TestWireFrameDecodeRejects(t *testing.T) {
	valid, err := EncodeWireFrame(nil, [][]float64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	body := valid[4:]
	cases := map[string][]byte{
		"empty":            {},
		"short header":     body[:4],
		"bad version":      append([]byte{99}, body[1:]...),
		"reserved nonzero": append([]byte{WireVersion, 7}, body[2:]...),
		"truncated data":   body[:len(body)-1],
		"trailing data":    append(append([]byte{}, body...), 0),
		"zero steps":       {WireVersion, 0, 0, 0, 0, 1},
		"zero features":    {WireVersion, 0, 0, 1, 0, 0},
	}
	for name, b := range cases {
		if _, err := DecodeWireFrame(b); err == nil {
			t.Fatalf("%s: expected decode error", name)
		}
	}
}

func TestReadWireFrameLimits(t *testing.T) {
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], uint32(maxWireBody+1))
	if _, err := ReadWireFrame(bytes.NewReader(huge[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("expected ErrFrameTooLarge, got %v", err)
	}
	if _, err := ReadWireFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("expected clean io.EOF, got %v", err)
	}
	if _, err := ReadWireFrame(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Fatal("expected truncated-prefix error")
	}
}

func TestWireResponseRoundTrip(t *testing.T) {
	frame := AppendWireResponse(nil, StatusOK, -12.5)
	status, pred, err := ReadWireResponse(bytes.NewReader(frame))
	if err != nil || status != StatusOK || pred != -12.5 {
		t.Fatalf("round trip = (%d, %v, %v)", status, pred, err)
	}
}

// TestTCPServerEndToEnd runs real connections through the full
// listener → frame → coalescer → response path, including pipelined
// frames on one connection and a shed under a gated backend.
func TestTCPServerEndToEnd(t *testing.T) {
	b := newStubBackend(3, 2)
	c := NewCoalescer(b, Options{MaxBatch: 4, FlushInterval: 500 * time.Microsecond, QueueDepth: 64}, nil)
	defer c.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(ln, c)
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Pipeline several frames, then read the answers in order.
	const N = 5
	var buf []byte
	for i := 0; i < N; i++ {
		buf, err = EncodeWireFrame(buf, testWindow(3, 2, float64(10+i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		status, pred, err := ReadWireResponse(conn)
		if err != nil {
			t.Fatal(err)
		}
		if status != StatusOK || pred != float64(10+i) {
			t.Fatalf("frame %d: (%d, %v), want (OK, %d)", i, status, pred, 10+i)
		}
	}

	// A wrong-shape window answers StatusBadRequest and keeps the
	// connection usable.
	frame, err := EncodeWireFrame(nil, testWindow(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if status, _, err := ReadWireResponse(conn); err != nil || status != StatusBadRequest {
		t.Fatalf("bad shape: (%d, %v), want StatusBadRequest", status, err)
	}
	frame, _ = EncodeWireFrame(nil, testWindow(3, 2, 77))
	conn.Write(frame)
	if status, pred, err := ReadWireResponse(conn); err != nil || status != StatusOK || pred != 77 {
		t.Fatalf("after bad shape: (%d, %v, %v), want (OK, 77)", status, pred, err)
	}
}

// FuzzServeWireFrame hardens DecodeWireFrame against arbitrary bytes: it
// must never panic, and an accepted body must re-encode to the identical
// frame (canonical round-trip).
func FuzzServeWireFrame(f *testing.F) {
	seed1, _ := EncodeWireFrame(nil, [][]float64{{1, 2}, {3, 4}})
	seed2, _ := EncodeWireFrame(nil, testWindow(10, 9, 1.5))
	f.Add(seed1[4:])
	f.Add(seed2[4:])
	f.Add([]byte{})
	f.Add([]byte{WireVersion, 0, 0, 1, 0, 1})
	f.Add([]byte{WireVersion, 0, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, body []byte) {
		window, err := DecodeWireFrame(body)
		if err != nil {
			return
		}
		frame, err := EncodeWireFrame(nil, window)
		if err != nil {
			t.Fatalf("decoded window failed to re-encode: %v", err)
		}
		if !bytes.Equal(frame[4:], body) {
			t.Fatalf("round trip not canonical:\n got %x\nwant %x", frame[4:], body)
		}
	})
}
