package serve

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"predstream/internal/nn"
	"predstream/internal/obs"
)

// nnBackend adapts an nn batch runner to the Backend interface at the
// DRNN serving shape, skipping the (irrelevant here) scaler plumbing.
type nnBackend struct {
	runner  *nn.BatchRunner
	window  int
	feature int
	out     [][]float64
}

func newNNBackend(window, feature int) *nnBackend {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewNetwork(nn.Arch{
		In: feature, LSTMHidden: []int{32, 32}, DenseHidden: []int{16}, Out: 1,
	}, rng)
	return &nnBackend{runner: nn.NewBatchRunner(net, nn.BatchOptions{}), window: window, feature: feature}
}

func (n *nnBackend) Window() int   { return n.window }
func (n *nnBackend) Features() int { return n.feature }

func (n *nnBackend) PredictBatch(windows [][][]float64, out []float64) error {
	rows := make([][]float64, len(windows))
	backing := make([]float64, len(windows))
	for i := range rows {
		rows[i] = backing[i : i+1]
	}
	if err := n.runner.Forward(windows, rows); err != nil {
		return err
	}
	copy(out, backing)
	return nil
}

// BenchmarkServePredict measures end-to-end request latency through the
// coalescer over a real DRNN-shaped forward path, with the benchmark's
// parallel clients standing in for concurrent connections. ns/op is the
// per-request wall latency; the p50/p99 metrics derived from the run are
// reported alongside.
func BenchmarkServePredict(b *testing.B) {
	backend := newNNBackend(10, 9)
	m := NewMetrics(obs.NewRegistry())
	c := NewCoalescer(backend, Options{MaxBatch: 16, FlushInterval: 500 * time.Microsecond, QueueDepth: 1024}, m)
	defer c.Close()
	window := testWindow(10, 9, 1)
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Predict(context.Background(), window); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(c.m.Latency.Quantile(0.5)*1e9, "p50-ns")
	b.ReportMetric(c.m.Latency.Quantile(0.99)*1e9, "p99-ns")
	snap := m.BatchSize.Snapshot()
	if snap.Total() > 0 {
		b.ReportMetric(snap.Sum/float64(snap.Total()), "avg-batch")
	}
}

// BenchmarkServeWireCodec measures the TCP frame encode+decode round trip
// at the serving shape.
func BenchmarkServeWireCodec(b *testing.B) {
	window := testWindow(10, 9, 1.5)
	var frame []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		frame, err = EncodeWireFrame(frame[:0], window)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeWireFrame(frame[4:]); err != nil {
			b.Fatal(err)
		}
	}
}
