package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postPredict(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHTTPPredict(t *testing.T) {
	b := newStubBackend(2, 2)
	c := NewCoalescer(b, Options{MaxBatch: 4, FlushInterval: 200 * time.Microsecond, QueueDepth: 16}, nil)
	defer c.Close()
	h := Handler(c)

	payload, _ := json.Marshal(PredictRequest{Window: [][]float64{{5.5, 0}, {0, 0}}})
	rec := postPredict(t, h, string(payload))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var resp PredictResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Prediction != 5.5 {
		t.Fatalf("prediction %v, want 5.5", resp.Prediction)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	b := newStubBackend(2, 2)
	c := NewCoalescer(b, Options{}, nil)
	defer c.Close()
	h := Handler(c)

	if rec := postPredict(t, h, "{not json"); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", rec.Code)
	}
	if rec := postPredict(t, h, `{"window": [[1, 2]]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("wrong shape: status %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/predict", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict: status %d", rec.Code)
	}
	var e errorResponse
	if err := json.NewDecoder(rec.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("error body not JSON: %v %q", err, e.Error)
	}
}

func TestHTTPOverloadMapsTo429(t *testing.T) {
	b := newStubBackend(2, 1)
	b.gate = make(chan struct{})
	c := NewCoalescer(b, Options{MaxBatch: 1, FlushInterval: time.Millisecond, QueueDepth: 1}, nil)
	defer c.Close()
	h := Handler(c)

	payload, _ := json.Marshal(PredictRequest{Window: [][]float64{{1}, {2}}})
	// Occupy dispatcher + fill the queue.
	for i := 0; i < 2; i++ {
		go func() {
			req := httptest.NewRequest(http.MethodPost, "/predict", bytes.NewReader(payload))
			h.ServeHTTP(httptest.NewRecorder(), req)
		}()
	}
	waitFor(t, func() bool { return b.calls.Load() >= 1 && len(c.queue) == 1 })

	rec := postPredict(t, h, string(payload))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	close(b.gate)
}

func TestHTTPHealthz(t *testing.T) {
	b := newStubBackend(2, 1)
	c := NewCoalescer(b, Options{}, nil)
	defer c.Close()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	Handler(c).ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}
