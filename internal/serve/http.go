package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// PredictRequest is the JSON body of POST /predict: one raw feature
// window, Window()×Features().
type PredictRequest struct {
	Window [][]float64 `json:"window"`
}

// PredictResponse is the JSON body of a successful POST /predict.
type PredictResponse struct {
	Prediction float64 `json:"prediction"`
}

// errorResponse is the JSON body of every non-200 answer.
type errorResponse struct {
	Error string `json:"error"`
}

// maxHTTPBody bounds a /predict request body; matches the wire protocol's
// largest frame.
const maxHTTPBody = maxWireBody * 2

// Handler returns the serving HTTP mux:
//
//	POST /predict   {"window": [[...], ...]} → {"prediction": x}
//	GET  /healthz   liveness probe ("ok")
//
// Overload maps to 429 with a Retry-After hint; malformed bodies and
// wrong-shape windows map to 400; shutdown maps to 503. Metrics live on
// the obs server's /metrics, not here.
func Handler(c *Coalescer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req PredictRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxHTTPBody))
		if err := dec.Decode(&req); err != nil {
			writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		pred, err := c.Predict(r.Context(), req.Window)
		switch {
		case err == nil:
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(PredictResponse{Prediction: pred})
		case errors.Is(err, ErrOverloaded):
			w.Header().Set("Retry-After", "1")
			writeJSONError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrClosed):
			writeJSONError(w, http.StatusServiceUnavailable, err.Error())
		case r.Context().Err() != nil:
			// Client went away; code is moot but 499-style close is tidy.
			writeJSONError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeJSONError(w, http.StatusBadRequest, err.Error())
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}
