package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"predstream/internal/workload"
)

// arrivalSchedule derives a deterministic open-loop arrival schedule from
// a workload.RateShape by thinning a seeded Poisson process: candidate
// events are drawn at rate lambdaMax and kept with probability
// shape.Rate(t)/lambdaMax. Same seed, same schedule.
func arrivalSchedule(shape workload.RateShape, lambdaMax float64, duration time.Duration, seed int64) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	var out []time.Duration
	t := 0.0
	limit := duration.Seconds()
	for {
		t += rng.ExpFloat64() / lambdaMax
		if t >= limit {
			return out
		}
		at := time.Duration(t * float64(time.Second))
		if rng.Float64()*lambdaMax <= shape.Rate(at) {
			out = append(out, at)
		}
	}
}

func TestArrivalScheduleDeterministic(t *testing.T) {
	shape := workload.BurstRate{Base: 500, BurstX: 3, Period: 100 * time.Millisecond, Duration: 30 * time.Millisecond}
	a := arrivalSchedule(shape, 1500, 300*time.Millisecond, 7)
	b := arrivalSchedule(shape, 1500, 300*time.Millisecond, 7)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if c := arrivalSchedule(shape, 1500, 300*time.Millisecond, 8); len(c) == len(a) && c[0] == a[0] {
		t.Fatal("different seed produced the same schedule start")
	}
}

// slowBackend echoes ids like stubBackend but burns a fixed compute delay
// per batch, so an open-loop overload actually builds queue pressure and
// sheds — without it the stub drains any offered rate instantly.
type slowBackend struct {
	*stubBackend
	delay time.Duration
}

func (s *slowBackend) PredictBatch(windows [][][]float64, out []float64) error {
	time.Sleep(s.delay)
	return s.stubBackend.PredictBatch(windows, out)
}

// runLoad offers the schedule open-loop (no waiting for replies) and
// returns per-request outcomes. Request i carries id float64(i).
func runLoad(t *testing.T, c *Coalescer, window, features int, schedule []time.Duration) (ok, shed []bool, got []float64) {
	t.Helper()
	n := len(schedule)
	ok = make([]bool, n)
	shed = make([]bool, n)
	got = make([]float64, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	start := time.Now()
	for i, at := range schedule {
		wg.Add(1)
		go func(i int, at time.Duration) {
			defer wg.Done()
			if d := at - time.Since(start); d > 0 {
				time.Sleep(d)
			}
			v, err := c.Predict(context.Background(), testWindow(window, features, float64(i)))
			switch {
			case err == nil:
				ok[i] = true
				got[i] = v
			case errors.Is(err, ErrOverloaded):
				shed[i] = true
			default:
				errs <- fmt.Errorf("request %d: unexpected error %v", i, err)
			}
		}(i, at)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return ok, shed, got
}

// TestLoadOpenLoopAccounting is the load-test harness of the issue: a
// seeded open-loop arrival process (Poisson-thinned constant and burst
// shapes from internal/workload) against a slow backend with a small
// queue. It asserts exact conservation — admitted + shed == offered, no
// lost or duplicated response, every response carrying its caller's own
// id — and batch-size histogram sanity.
func TestLoadOpenLoopAccounting(t *testing.T) {
	shapes := []struct {
		name      string
		shape     workload.RateShape
		lambdaMax float64
	}{
		{"poisson", workload.ConstantRate{TPS: 1200}, 1200},
		{"burst", workload.BurstRate{Base: 600, BurstX: 4,
			Period: 80 * time.Millisecond, Duration: 25 * time.Millisecond}, 2400},
	}
	for _, sc := range shapes {
		t.Run(sc.name, func(t *testing.T) {
			schedule := arrivalSchedule(sc.shape, sc.lambdaMax, 250*time.Millisecond, 42)
			offered := len(schedule)
			if offered < 50 {
				t.Fatalf("schedule too thin: %d arrivals", offered)
			}
			// Service capacity ~MaxBatch/delay = 800/s sits below the
			// offered ~1200/s average, so the queue genuinely saturates
			// and the shed path is exercised, not just declared.
			base := newStubBackend(4, 3)
			b := &slowBackend{stubBackend: base, delay: 5 * time.Millisecond}
			m := NewMetrics(nil)
			c := NewCoalescer(b, Options{MaxBatch: 4, FlushInterval: time.Millisecond, QueueDepth: 8}, m)
			ok, shed, got := runLoad(t, c, 4, 3, schedule)
			c.Close()

			okCount, shedCount := 0, 0
			for i := range ok {
				switch {
				case ok[i] && shed[i]:
					t.Fatalf("request %d counted both ok and shed", i)
				case ok[i]:
					okCount++
					if got[i] != float64(i) {
						t.Fatalf("request %d received %v — lost or duplicated response", i, got[i])
					}
				case shed[i]:
					shedCount++
				default:
					t.Fatalf("request %d lost: neither response nor shed", i)
				}
			}
			if okCount+shedCount != offered {
				t.Fatalf("admitted %d + shed %d != offered %d", okCount, shedCount, offered)
			}
			if int(m.Admitted.Value()) != okCount {
				t.Fatalf("admitted counter %d, want %d", m.Admitted.Value(), okCount)
			}
			if int(m.Shed.Value()) != shedCount {
				t.Fatalf("shed counter %d, want %d", m.Shed.Value(), shedCount)
			}

			// Batch-size histogram sanity: every admitted request appears in
			// exactly one flushed batch, sizes within [1, MaxBatch], and the
			// flush count matches the batches counter.
			snap := m.BatchSize.Snapshot()
			if snap.Total() != m.Batches.Value() {
				t.Fatalf("batch size observations %d != batches %d", snap.Total(), m.Batches.Value())
			}
			rows := 0
			for _, s := range b.batchSizes() {
				if s < 1 || s > 4 {
					t.Fatalf("batch size %d outside [1, MaxBatch]", s)
				}
				rows += s
			}
			if rows != okCount {
				t.Fatalf("backend served %d rows, want %d admitted", rows, okCount)
			}
			if math.Abs(snap.Sum-float64(okCount)) > 1e-9 {
				t.Fatalf("batch size histogram sum %v, want %d", snap.Sum, okCount)
			}
			// Latency histogram saw every successful request.
			if lat := m.Latency.Snapshot(); lat.Total() != uint64(okCount) {
				t.Fatalf("latency observations %d, want %d", lat.Total(), okCount)
			}
			t.Logf("%s: offered %d admitted %d shed %d batches %d",
				sc.name, offered, okCount, shedCount, m.Batches.Value())
		})
	}
}

// TestLoadBatchedForwardBound is the acceptance bound of the issue: N
// requests coalesced while the backend is busy must be served in at most
// ceil(N/MaxBatch) forward passes.
func TestLoadBatchedForwardBound(t *testing.T) {
	const (
		B = 8
		N = 40
	)
	b := newStubBackend(2, 1)
	b.gate = make(chan struct{})
	m := NewMetrics(nil)
	c := NewCoalescer(b, Options{MaxBatch: B, FlushInterval: time.Millisecond, QueueDepth: N}, m)
	defer c.Close()

	// Plug: one request occupies the dispatcher inside the gated backend.
	plug := make(chan error, 1)
	go func() {
		_, err := c.Predict(context.Background(), testWindow(2, 1, -1))
		plug <- err
	}()
	waitFor(t, func() bool { return b.calls.Load() == 1 })

	// Coalesce N requests behind it.
	var wg sync.WaitGroup
	errs := make(chan error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := c.Predict(context.Background(), testWindow(2, 1, float64(i)))
			if err == nil && got != float64(i) {
				err = fmt.Errorf("request %d got %v", i, got)
			}
			errs <- err
		}(i)
	}
	waitFor(t, func() bool { return m.Admitted.Value() == N+1 })
	close(b.gate)
	if err := <-plug; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	forwardPasses := int(b.calls.Load()) - 1 // minus the plug's own pass
	bound := (N + B - 1) / B
	if forwardPasses > bound {
		t.Fatalf("%d coalesced requests took %d forward passes, bound ceil(N/B) = %d",
			N, forwardPasses, bound)
	}
	t.Logf("N=%d B=%d: %d forward passes (bound %d)", N, B, forwardPasses, bound)
}
