package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubBackend echoes window[0][0] as the prediction, so tests can verify
// each caller gets its own answer back. It records every batch size and
// can be gated to hold the dispatcher inside a forward pass.
type stubBackend struct {
	window   int
	features int

	mu      sync.Mutex
	batches []int

	calls atomic.Int64
	gate  chan struct{} // when non-nil, PredictBatch waits for one token per call
	fail  atomic.Bool
}

func newStubBackend(window, features int) *stubBackend {
	return &stubBackend{window: window, features: features}
}

func (s *stubBackend) Window() int   { return s.window }
func (s *stubBackend) Features() int { return s.features }

func (s *stubBackend) PredictBatch(windows [][][]float64, out []float64) error {
	s.calls.Add(1)
	if s.gate != nil {
		<-s.gate
	}
	if s.fail.Load() {
		return errors.New("stub backend failure")
	}
	s.mu.Lock()
	s.batches = append(s.batches, len(windows))
	s.mu.Unlock()
	for i, w := range windows {
		out[i] = w[0][0]
	}
	return nil
}

func (s *stubBackend) batchSizes() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.batches))
	copy(out, s.batches)
	return out
}

// testWindow builds a valid window carrying id in position [0][0].
func testWindow(window, features int, id float64) [][]float64 {
	w := make([][]float64, window)
	for t := range w {
		w[t] = make([]float64, features)
	}
	w[0][0] = id
	return w
}

// TestCoalescerSingleRequestFlushesAtInterval pins the no-starvation
// guarantee: a lone request is answered after FlushInterval without
// waiting for a full batch.
func TestCoalescerSingleRequestFlushesAtInterval(t *testing.T) {
	b := newStubBackend(3, 2)
	c := NewCoalescer(b, Options{MaxBatch: 64, FlushInterval: 5 * time.Millisecond, QueueDepth: 8}, nil)
	defer c.Close()
	start := time.Now()
	got, err := c.Predict(context.Background(), testWindow(3, 2, 42))
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("prediction %v, want 42", got)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("lone request took %v; starvation?", elapsed)
	}
	if sizes := b.batchSizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("batch sizes %v, want [1]", sizes)
	}
}

// TestCoalescerFullBatchFlushesImmediately pins the opposite bound: with a
// long flush interval, MaxBatch concurrent requests complete in one batch
// long before the timer.
func TestCoalescerFullBatchFlushesImmediately(t *testing.T) {
	const B = 8
	b := newStubBackend(2, 1)
	// Gate the backend so the first request cannot be flushed alone
	// before the rest arrive: the opener blocks inside PredictBatch only
	// after its batch is sealed, so instead hold the gate closed until
	// all B are enqueued.
	b.gate = make(chan struct{})
	c := NewCoalescer(b, Options{MaxBatch: B, FlushInterval: time.Hour, QueueDepth: 2 * B}, nil)
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, B)
	for i := 0; i < B; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := c.Predict(context.Background(), testWindow(2, 1, float64(i)))
			if err != nil {
				errs <- err
				return
			}
			if got != float64(i) {
				errs <- fmt.Errorf("request %d got %v", i, got)
			}
		}(i)
	}
	// With FlushInterval=1h the only way the dispatcher calls the backend
	// before the gate opens is a full batch. Wait for that call, then
	// release it.
	deadline := time.Now().Add(5 * time.Second)
	for b.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dispatcher never flushed a full batch")
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(b.gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if sizes := b.batchSizes(); len(sizes) != 1 || sizes[0] != B {
		t.Fatalf("batch sizes %v, want [%d]", sizes, B)
	}
}

// TestCoalescerConcurrentCallersGetOwnRows pins result wiring under -race:
// many goroutines submit distinct ids and every reply must carry the
// caller's own id.
func TestCoalescerConcurrentCallersGetOwnRows(t *testing.T) {
	b := newStubBackend(4, 3)
	c := NewCoalescer(b, Options{MaxBatch: 7, FlushInterval: 200 * time.Microsecond, QueueDepth: 1024}, nil)
	defer c.Close()
	const N = 300
	var wg sync.WaitGroup
	errs := make(chan error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := c.Predict(context.Background(), testWindow(4, 3, float64(i)))
			if err != nil {
				errs <- err
				return
			}
			if got != float64(i) {
				errs <- fmt.Errorf("request %d got %v — cross-wired reply", i, got)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	total := 0
	for _, s := range b.batchSizes() {
		if s < 1 || s > 7 {
			t.Fatalf("batch size %d outside [1, MaxBatch]", s)
		}
		total += s
	}
	if total != N {
		t.Fatalf("backend saw %d rows, want %d", total, N)
	}
}

// TestCoalescerShedsWhenQueueFull pins admission control: with the
// backend gated shut and the queue sized Q, at most Q+1 requests are in
// flight (Q queued + the batch opener) and the rest shed immediately.
func TestCoalescerShedsWhenQueueFull(t *testing.T) {
	b := newStubBackend(2, 1)
	b.gate = make(chan struct{})
	const Q = 4
	m := NewMetrics(nil)
	c := NewCoalescer(b, Options{MaxBatch: 1, FlushInterval: time.Millisecond, QueueDepth: Q}, m)
	defer c.Close()

	// Occupy the dispatcher: one request opens a batch of 1 (MaxBatch=1)
	// and blocks inside the gated backend.
	opener := make(chan error, 1)
	go func() {
		_, err := c.Predict(context.Background(), testWindow(2, 1, 0))
		opener <- err
	}()
	waitFor(t, func() bool { return b.calls.Load() == 1 })

	// Fill the queue exactly.
	var wg sync.WaitGroup
	results := make(chan error, Q)
	for i := 0; i < Q; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.Predict(context.Background(), testWindow(2, 1, float64(i+1)))
			results <- err
		}(i)
	}
	waitFor(t, func() bool { return m.Admitted.Value() == Q+1 })

	// Every further request must shed synchronously.
	for i := 0; i < 3; i++ {
		if _, err := c.Predict(context.Background(), testWindow(2, 1, 99)); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("expected ErrOverloaded, got %v", err)
		}
	}
	if m.Shed.Value() != 3 {
		t.Fatalf("shed counter %d, want 3", m.Shed.Value())
	}

	close(b.gate)
	if err := <-opener; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatal(err)
		}
	}
	if m.Admitted.Value() != Q+1 {
		t.Fatalf("admitted %d, want %d", m.Admitted.Value(), Q+1)
	}
}

// TestCoalescerContextCancel pins that an abandoned caller neither blocks
// nor corrupts later requests (the buffered reply goes unread).
func TestCoalescerContextCancel(t *testing.T) {
	b := newStubBackend(2, 1)
	b.gate = make(chan struct{})
	c := NewCoalescer(b, Options{MaxBatch: 1, FlushInterval: time.Millisecond, QueueDepth: 4}, nil)
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for b.calls.Load() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	if _, err := c.Predict(ctx, testWindow(2, 1, 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	close(b.gate)
	// A fresh request must still work.
	got, err := c.Predict(context.Background(), testWindow(2, 1, 7))
	if err != nil || got != 7 {
		t.Fatalf("post-cancel predict = %v, %v; want 7, nil", got, err)
	}
}

// TestCoalescerBackendErrorPropagates pins that a failing forward pass
// reaches every caller in the batch and bumps the error counter.
func TestCoalescerBackendErrorPropagates(t *testing.T) {
	b := newStubBackend(2, 1)
	b.fail.Store(true)
	m := NewMetrics(nil)
	c := NewCoalescer(b, Options{MaxBatch: 4, FlushInterval: time.Millisecond, QueueDepth: 8}, m)
	defer c.Close()
	if _, err := c.Predict(context.Background(), testWindow(2, 1, 1)); err == nil {
		t.Fatal("expected backend error")
	}
	if m.Errors.Value() == 0 {
		t.Fatal("error counter not bumped")
	}
}

// TestCoalescerShapeValidation pins synchronous rejection of wrong-shape
// windows without touching the queue.
func TestCoalescerShapeValidation(t *testing.T) {
	b := newStubBackend(3, 2)
	m := NewMetrics(nil)
	c := NewCoalescer(b, Options{}, m)
	defer c.Close()
	if _, err := c.Predict(context.Background(), testWindow(2, 2, 1)); err == nil {
		t.Fatal("expected step-count error")
	}
	if _, err := c.Predict(context.Background(), testWindow(3, 1, 1)); err == nil {
		t.Fatal("expected feature-count error")
	}
	if m.Admitted.Value() != 0 || m.Shed.Value() != 0 {
		t.Fatal("invalid requests must not count as admitted or shed")
	}
}

// TestCoalescerCloseFlushesQueued pins graceful shutdown: requests queued
// behind a gated backend still get answers when Close drains.
func TestCoalescerCloseFlushesQueued(t *testing.T) {
	b := newStubBackend(2, 1)
	b.gate = make(chan struct{})
	c := NewCoalescer(b, Options{MaxBatch: 2, FlushInterval: time.Millisecond, QueueDepth: 16}, nil)

	const N = 5
	var wg sync.WaitGroup
	errs := make(chan error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := c.Predict(context.Background(), testWindow(2, 1, float64(i)))
			if err == nil && got != float64(i) {
				err = fmt.Errorf("request %d got %v", i, got)
			}
			errs <- err
		}(i)
	}
	waitFor(t, func() bool { return b.calls.Load() >= 1 })
	close(b.gate) // every later flush proceeds immediately
	c.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// After Close, new requests fail fast.
	if _, err := c.Predict(context.Background(), testWindow(2, 1, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
}

// waitFor polls cond with a generous deadline; timing-dependent setup
// only, never used to assert ordering.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
