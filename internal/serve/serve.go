// Package serve turns a fitted DRNN predictor into a prediction service:
// concurrent requests are coalesced into micro-batches (bounded by a max
// batch size and a flush interval) so the model runs one batched GEMM
// forward pass per flush instead of one GEMV per request, admission is
// controlled by a bounded queue with explicit load shedding, and p50/p99
// latency SLO metrics are exported through the internal/obs registry as
// the predstream_serve_* families.
//
// The package is transport-agnostic at its core — Coalescer accepts any
// Backend — with two thin frontends: an HTTP/JSON handler (Handler) and a
// raw-TCP length-prefixed binary protocol (ServeTCP, wire format in
// wire.go). cmd/predictd wires both to a drnn.Inference backend.
package serve

import (
	"errors"
	"time"
)

// Backend evaluates micro-batches of raw feature windows. It must be safe
// for concurrent use. drnn.Inference satisfies it.
type Backend interface {
	// Window returns the required steps per request window.
	Window() int
	// Features returns the required features per window step.
	Features() int
	// PredictBatch evaluates windows[i] into out[i]; len(out) ==
	// len(windows).
	PredictBatch(windows [][][]float64, out []float64) error
}

// ErrOverloaded is returned when the admission queue is full and the
// request is shed; HTTP maps it to 429, the TCP protocol to
// StatusOverloaded.
var ErrOverloaded = errors.New("serve: overloaded, request shed")

// ErrClosed is returned for requests arriving after Close.
var ErrClosed = errors.New("serve: server closed")

// Options tunes the coalescer. Zero values take the defaults noted per
// field.
type Options struct {
	// MaxBatch is the largest micro-batch handed to the backend; a full
	// batch flushes immediately. Default 16.
	MaxBatch int
	// FlushInterval bounds how long the first request of a batch waits
	// for company before a partial flush. Default 2ms.
	FlushInterval time.Duration
	// QueueDepth bounds admitted-but-unbatched requests; beyond it
	// requests are shed with ErrOverloaded. Default 256.
	QueueDepth int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 2 * time.Millisecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	return o
}
