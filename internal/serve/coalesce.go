package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"predstream/internal/obs"
)

// request is one admitted prediction waiting for its batch. The reply
// channel is buffered so the dispatcher's send never blocks on a caller
// that gave up (context cancellation).
type request struct {
	window [][]float64
	start  time.Time
	reply  chan result
}

type result struct {
	value float64
	err   error
}

// Coalescer admits prediction requests into a bounded queue and batches
// them for the backend: a batch flushes as soon as it reaches
// Options.MaxBatch or when its oldest request has waited
// Options.FlushInterval, whichever comes first. A full queue sheds new
// requests with ErrOverloaded instead of building unbounded latency. All
// methods are safe for concurrent use.
type Coalescer struct {
	backend Backend
	opts    Options
	m       *Metrics

	queue chan *request
	stop  chan struct{}
	done  chan struct{}

	mu     sync.RWMutex // guards closed against enqueue-after-drain
	closed bool
}

// NewCoalescer starts the dispatcher goroutine over backend. A nil metrics
// installs unregistered instruments (counted but not exported). Call Close
// to stop.
func NewCoalescer(backend Backend, opts Options, m *Metrics) *Coalescer {
	opts = opts.withDefaults()
	if m == nil {
		m = NewMetrics(nil)
	}
	c := &Coalescer{
		backend: backend,
		opts:    opts,
		m:       m,
		queue:   make(chan *request, opts.QueueDepth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go c.dispatch()
	return c
}

// Options returns the effective (defaulted) options.
func (c *Coalescer) Options() Options { return c.opts }

// Predict submits one raw feature window and blocks until its batch is
// evaluated, the context is done, or the request is shed. The window must
// be backend.Window() steps of backend.Features() values.
func (c *Coalescer) Predict(ctx context.Context, window [][]float64) (float64, error) {
	if len(window) != c.backend.Window() {
		return 0, fmt.Errorf("serve: window has %d steps, want %d", len(window), c.backend.Window())
	}
	for t, row := range window {
		if len(row) != c.backend.Features() {
			return 0, fmt.Errorf("serve: window step %d has %d features, want %d",
				t, len(row), c.backend.Features())
		}
	}
	req := &request{window: window, start: time.Now(), reply: make(chan result, 1)}

	// The read lock pairs with Close's write lock: once Close observes the
	// lock free, no admit can race past the drained queue.
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return 0, ErrClosed
	}
	admitted := false
	select {
	case c.queue <- req:
		admitted = true
	default:
	}
	c.mu.RUnlock()
	if !admitted {
		c.m.Shed.Inc()
		return 0, ErrOverloaded
	}
	c.m.Admitted.Inc()

	select {
	case res := <-req.reply:
		if res.err != nil {
			return 0, res.err
		}
		c.m.Latency.Observe(time.Since(req.start).Seconds())
		return res.value, nil
	case <-ctx.Done():
		// The dispatcher still evaluates the request; the buffered reply
		// just goes unread.
		return 0, ctx.Err()
	}
}

// Close stops admitting, flushes every queued request, waits for the
// dispatcher to exit, and is idempotent.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	<-c.done
}

// dispatch is the single consumer of the queue: it gathers batches and
// hands them to the backend.
func (c *Coalescer) dispatch() {
	defer close(c.done)
	batch := make([]*request, 0, c.opts.MaxBatch)
	windows := make([][][]float64, 0, c.opts.MaxBatch)
	out := make([]float64, c.opts.MaxBatch)
	timer := time.NewTimer(c.opts.FlushInterval)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		// Wait for the batch opener.
		select {
		case req := <-c.queue:
			batch = append(batch[:0], req)
		case <-c.stop:
			c.drain(batch[:0], windows, out)
			return
		}
		// Fill until full or the opener has waited FlushInterval.
		timer.Reset(c.opts.FlushInterval)
		filling := true
		for filling && len(batch) < c.opts.MaxBatch {
			select {
			case req := <-c.queue:
				batch = append(batch, req)
			case <-timer.C:
				filling = false
			case <-c.stop:
				filling = false
			}
		}
		if filling && !timer.Stop() {
			<-timer.C
		}
		c.flush(batch, windows, out)
	}
}

// drain flushes everything left in the queue at shutdown in MaxBatch
// chunks.
func (c *Coalescer) drain(batch []*request, windows [][][]float64, out []float64) {
	for {
		select {
		case req := <-c.queue:
			batch = append(batch, req)
			if len(batch) == c.opts.MaxBatch {
				c.flush(batch, windows, out)
				batch = batch[:0]
			}
		default:
			if len(batch) > 0 {
				c.flush(batch, windows, out)
			}
			return
		}
	}
}

// flush evaluates one micro-batch and delivers per-request results.
func (c *Coalescer) flush(batch []*request, windows [][][]float64, out []float64) {
	windows = windows[:0]
	for _, req := range batch {
		windows = append(windows, req.window)
	}
	err := c.backend.PredictBatch(windows, out[:len(batch)])
	c.m.Batches.Inc()
	c.m.BatchSize.Observe(float64(len(batch)))
	if err != nil {
		c.m.Errors.Add(uint64(len(batch)))
	}
	for i, req := range batch {
		if err != nil {
			req.reply <- result{err: fmt.Errorf("serve: backend: %w", err)}
		} else {
			req.reply <- result{value: out[i]}
		}
	}
}

// Collect implements obs.Collector with point-in-time queue pressure
// gauges; register the Coalescer itself to export them.
func (c *Coalescer) Collect() []obs.Family {
	return []obs.Family{
		{
			Name:    "predstream_serve_queue_depth",
			Help:    "Admitted requests waiting to be batched.",
			Type:    obs.TypeGauge,
			Samples: []obs.Sample{{Value: float64(len(c.queue))}},
		},
		{
			Name:    "predstream_serve_queue_capacity",
			Help:    "Admission queue capacity; requests beyond it are shed.",
			Type:    obs.TypeGauge,
			Samples: []obs.Sample{{Value: float64(cap(c.queue))}},
		},
	}
}
