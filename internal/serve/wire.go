package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
)

// The raw-TCP protocol is a length-prefixed binary framing built on
// encoding/binary, big-endian throughout:
//
//	request  frame: uint32 body length | body
//	request  body:  uint8 version (=1) | uint8 reserved (=0)
//	                | uint16 steps T | uint16 features F
//	                | T·F float64 bits, row-major
//	response frame: uint32 body length | uint8 status | float64 prediction
//
// The prediction is meaningful only for StatusOK; other statuses carry 0.

// WireVersion is the request frame version this package speaks.
const WireVersion = 1

// Response status codes of the TCP protocol.
const (
	// StatusOK carries a prediction.
	StatusOK = 0
	// StatusOverloaded reports the request was shed (retry later).
	StatusOverloaded = 1
	// StatusBadRequest reports a malformed or wrong-shape frame.
	StatusBadRequest = 2
	// StatusError reports a backend failure or server shutdown.
	StatusError = 3
)

// Wire-format limits: frames beyond them are rejected before any
// allocation proportional to attacker-controlled sizes.
const (
	// MaxWireSteps bounds the window length a frame may carry.
	MaxWireSteps = 4096
	// MaxWireFeatures bounds the per-step feature count a frame may carry.
	MaxWireFeatures = 1024
	// maxWireBody is the largest request body ReadWireFrame accepts.
	maxWireBody   = wireHeaderLen + 8*MaxWireSteps*MaxWireFeatures
	wireHeaderLen = 6
)

// ErrFrameTooLarge reports a request frame beyond maxWireBody.
var ErrFrameTooLarge = errors.New("serve: wire frame too large")

// EncodeWireFrame appends the request frame for window to dst and returns
// the extended slice. The window must be non-empty, rectangular, and
// within the wire limits.
func EncodeWireFrame(dst []byte, window [][]float64) ([]byte, error) {
	T := len(window)
	if T == 0 || T > MaxWireSteps {
		return nil, fmt.Errorf("serve: window of %d steps outside [1, %d]", T, MaxWireSteps)
	}
	F := len(window[0])
	if F == 0 || F > MaxWireFeatures {
		return nil, fmt.Errorf("serve: window of %d features outside [1, %d]", F, MaxWireFeatures)
	}
	body := wireHeaderLen + 8*T*F
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, WireVersion, 0)
	dst = binary.BigEndian.AppendUint16(dst, uint16(T))
	dst = binary.BigEndian.AppendUint16(dst, uint16(F))
	for t, row := range window {
		if len(row) != F {
			return nil, fmt.Errorf("serve: ragged window: step %d has %d features, want %d", t, len(row), F)
		}
		for _, v := range row {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst, nil
}

// DecodeWireFrame parses a request body (the bytes after the length
// prefix) into a feature window. It is a pure function — the fuzz target
// FuzzServeWireFrame drives it with arbitrary bytes — and never allocates
// more than the decoded window itself.
func DecodeWireFrame(body []byte) ([][]float64, error) {
	if len(body) < wireHeaderLen {
		return nil, fmt.Errorf("serve: frame body of %d bytes shorter than header", len(body))
	}
	if body[0] != WireVersion {
		return nil, fmt.Errorf("serve: unsupported wire version %d", body[0])
	}
	if body[1] != 0 {
		return nil, fmt.Errorf("serve: nonzero reserved byte %d", body[1])
	}
	T := int(binary.BigEndian.Uint16(body[2:4]))
	F := int(binary.BigEndian.Uint16(body[4:6]))
	if T == 0 || T > MaxWireSteps {
		return nil, fmt.Errorf("serve: frame of %d steps outside [1, %d]", T, MaxWireSteps)
	}
	if F == 0 || F > MaxWireFeatures {
		return nil, fmt.Errorf("serve: frame of %d features outside [1, %d]", F, MaxWireFeatures)
	}
	if want := wireHeaderLen + 8*T*F; len(body) != want {
		return nil, fmt.Errorf("serve: frame body of %d bytes, want %d for %d×%d", len(body), want, T, F)
	}
	window := make([][]float64, T)
	flat := make([]float64, T*F)
	off := wireHeaderLen
	for i := range flat {
		flat[i] = math.Float64frombits(binary.BigEndian.Uint64(body[off : off+8]))
		off += 8
	}
	for t := range window {
		window[t] = flat[t*F : (t+1)*F]
	}
	return window, nil
}

// ReadWireFrame reads one length-prefixed request body from r. It returns
// io.EOF on a clean end-of-stream before any prefix byte.
func ReadWireFrame(r io.Reader) ([]byte, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("serve: truncated frame prefix: %w", err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > maxWireBody {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("serve: truncated frame body: %w", err)
	}
	return body, nil
}

// AppendWireResponse appends a response frame to dst.
func AppendWireResponse(dst []byte, status uint8, prediction float64) []byte {
	dst = binary.BigEndian.AppendUint32(dst, 9)
	dst = append(dst, status)
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(prediction))
}

// ReadWireResponse reads one response frame from r (the client half of
// the protocol).
func ReadWireResponse(r io.Reader) (status uint8, prediction float64, err error) {
	var frame [13]byte
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		return 0, 0, err
	}
	if n := binary.BigEndian.Uint32(frame[:4]); n != 9 {
		return 0, 0, fmt.Errorf("serve: response body of %d bytes, want 9", n)
	}
	return frame[4], math.Float64frombits(binary.BigEndian.Uint64(frame[5:13])), nil
}

// TCPServer serves the binary protocol over a listener; create with
// ServeTCP, stop with Close.
type TCPServer struct {
	ln     net.Listener
	coal   *Coalescer
	wg     sync.WaitGroup
	closed chan struct{}
}

// ServeTCP starts accepting binary-protocol connections on ln, answering
// each frame through the coalescer. One goroutine per connection; frames
// on a connection are answered in order.
func ServeTCP(ln net.Listener, coal *Coalescer) *TCPServer {
	s := &TCPServer{ln: ln, coal: coal, closed: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *TCPServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener and waits for connection handlers to finish
// their in-flight frame.
func (s *TCPServer) Close() error {
	close(s.closed)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			return
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *TCPServer) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	var out []byte
	for {
		body, err := ReadWireFrame(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				// Oversized or garbled framing: answer once, then drop the
				// connection — resynchronization is not possible.
				out = AppendWireResponse(out[:0], StatusBadRequest, 0)
				conn.Write(out)
			}
			return
		}
		window, err := DecodeWireFrame(body)
		var status uint8
		var pred float64
		switch {
		case err != nil:
			status = StatusBadRequest
		default:
			pred, err = s.coal.Predict(context.Background(), window)
			switch {
			case err == nil:
				status = StatusOK
			case errors.Is(err, ErrOverloaded):
				status = StatusOverloaded
			case errors.Is(err, ErrClosed):
				status = StatusError
			default:
				status = StatusBadRequest
				pred = 0
			}
		}
		if status != StatusOK {
			pred = 0
		}
		out = AppendWireResponse(out[:0], status, pred)
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}
