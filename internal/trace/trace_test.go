package trace

import (
	"math"
	"testing"
	"time"

	"predstream/internal/dsps"
	"predstream/internal/stats"
	"predstream/internal/telemetry"
)

func TestSyntheticShapes(t *testing.T) {
	traces := Synthetic(SyntheticConfig{Workers: 4, Nodes: 2, Steps: 100, Seed: 1})
	if len(traces) != 4 {
		t.Fatalf("got %d workers", len(traces))
	}
	for id, wins := range traces {
		if len(wins) != 100 {
			t.Fatalf("%s has %d windows", id, len(wins))
		}
		for i, w := range wins {
			if w.AvgExecMs <= 0 {
				t.Fatalf("%s window %d has non-positive proc time", id, i)
			}
			if w.ExecRate < 0 || w.QueueLen < 0 {
				t.Fatalf("%s window %d has negative stats: %+v", id, i, w)
			}
			if w.CoWorkers != 1 {
				t.Fatalf("4 workers over 2 nodes should give 1 co-worker, got %v", w.CoWorkers)
			}
		}
	}
}

func TestSyntheticDeterministicBySeed(t *testing.T) {
	a := Synthetic(SyntheticConfig{Steps: 50, Seed: 7})
	b := Synthetic(SyntheticConfig{Steps: 50, Seed: 7})
	for id := range a {
		for i := range a[id] {
			if a[id][i].AvgExecMs != b[id][i].AvgExecMs {
				t.Fatal("same seed diverged")
			}
		}
	}
	c := Synthetic(SyntheticConfig{Steps: 50, Seed: 8})
	same := true
	for i := range a["worker-0"] {
		if a["worker-0"][i].AvgExecMs != c["worker-0"][i].AvgExecMs {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSyntheticSlowdownRaisesProcTime(t *testing.T) {
	base := Synthetic(SyntheticConfig{Steps: 200, Seed: 3})
	slow := Synthetic(SyntheticConfig{Steps: 200, Seed: 3, Slowdowns: map[int]float64{0: 8}, FaultAt: 100})
	var beforeBase, afterBase, beforeSlow, afterSlow []float64
	for i, w := range base["worker-0"] {
		if i < 100 {
			beforeBase = append(beforeBase, w.AvgExecMs)
		} else {
			afterBase = append(afterBase, w.AvgExecMs)
		}
	}
	for i, w := range slow["worker-0"] {
		if i < 100 {
			beforeSlow = append(beforeSlow, w.AvgExecMs)
			if w.Misbehaving {
				t.Fatal("misbehaving before FaultAt")
			}
		} else {
			afterSlow = append(afterSlow, w.AvgExecMs)
			if !w.Misbehaving {
				t.Fatal("not flagged misbehaving after FaultAt")
			}
		}
	}
	if stats.Mean(beforeSlow) != stats.Mean(beforeBase) {
		t.Fatal("pre-fault trace should match the fault-free trace")
	}
	ratio := stats.Mean(afterSlow) / stats.Mean(afterBase)
	if ratio < 6 || ratio > 10 {
		t.Fatalf("slowdown ratio %v, want ≈8", ratio)
	}
}

func TestSyntheticInterferenceCouplesWorkers(t *testing.T) {
	// With strong interference, a worker's processing time must correlate
	// positively with its node utilization proxy (its own + co-worker
	// load).
	traces := Synthetic(SyntheticConfig{Workers: 4, Nodes: 1, Cores: 2, Alpha: 3, Steps: 400, Seed: 4})
	wins := traces["worker-0"]
	var load, proc []float64
	for _, w := range wins {
		load = append(load, w.ExecRate+w.CoExecRate)
		proc = append(proc, w.AvgExecMs)
	}
	// Pearson correlation.
	ml, mp := stats.Mean(load), stats.Mean(proc)
	var cov, vl, vp float64
	for i := range load {
		cov += (load[i] - ml) * (proc[i] - mp)
		vl += (load[i] - ml) * (load[i] - ml)
		vp += (proc[i] - mp) * (proc[i] - mp)
	}
	corr := cov / (math.Sqrt(vl) * math.Sqrt(vp))
	if corr < 0.3 {
		t.Fatalf("load-latency correlation %v too weak for interference model", corr)
	}
}

func TestSyntheticToSeriesIsValid(t *testing.T) {
	traces := Synthetic(SyntheticConfig{Steps: 50, Seed: 5})
	s := telemetry.ToSeries(traces["worker-1"], telemetry.TargetProcTime, telemetry.FeatureConfig{Interference: true})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 50 || s.FeatureDim() != 9 {
		t.Fatalf("series %d×%d", s.Len(), s.FeatureDim())
	}
}

func TestCollectValidation(t *testing.T) {
	c := dsps.NewCluster(dsps.ClusterConfig{Delayer: dsps.NopDelayer{}})
	if _, err := Collect(c, CollectConfig{Period: 0, Windows: 5}); err == nil {
		t.Fatal("zero period should error")
	}
	if _, err := Collect(c, CollectConfig{Period: time.Millisecond, Windows: 0}); err == nil {
		t.Fatal("zero windows should error")
	}
}

func TestCollectFromLiveCluster(t *testing.T) {
	emitted := 0
	var col dsps.SpoutCollector
	b := dsps.NewTopologyBuilder("collect")
	b.SetSpout("src", func() dsps.Spout {
		return &dsps.SpoutFunc{
			OpenFn: func(_ dsps.TopologyContext, c dsps.SpoutCollector) { col = c },
			NextFn: func() bool {
				if emitted >= 100000 {
					return false
				}
				col.Emit(dsps.Values{emitted}, nil)
				emitted++
				return true
			},
		}
	}, 1, "n")
	b.SetBolt("work", func() dsps.Bolt { return &dsps.BoltFunc{} }, 2).
		ShuffleGrouping("src").WithExecCost(20 * time.Microsecond)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := dsps.NewCluster(dsps.ClusterConfig{Nodes: 1, Delayer: dsps.NopDelayer{}, Seed: 9})
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	s, err := Collect(c, CollectConfig{Period: 10 * time.Millisecond, Windows: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range s.Workers() {
		if got := s.Len(id); got != 5 {
			t.Fatalf("worker %s has %d windows, want 5", id, got)
		}
	}
}
