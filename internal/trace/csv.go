package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"predstream/internal/telemetry"
)

// csvHeader is the stable column order of the trace CSV format.
var csvHeader = []string{
	"worker", "node", "start_unix_ns", "end_unix_ns",
	"exec_rate", "emit_rate", "avg_exec_ms", "avg_queue_ms", "queue_len",
	"misbehaving", "co_workers", "co_exec_rate", "co_avg_exec_ms", "node_busy",
}

// WriteCSV serializes per-worker window traces to CSV (one row per
// window, workers sorted, windows in order), so traces collected from
// long live runs can be archived and re-used for predictor training.
func WriteCSV(w io.Writer, traces map[string][]telemetry.WindowStats) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	workers := make([]string, 0, len(traces))
	for id := range traces {
		workers = append(workers, id)
	}
	sort.Strings(workers)
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, id := range workers {
		for _, win := range traces[id] {
			row := []string{
				win.WorkerID, win.NodeID,
				strconv.FormatInt(win.Start.UnixNano(), 10),
				strconv.FormatInt(win.End.UnixNano(), 10),
				f(win.ExecRate), f(win.EmitRate), f(win.AvgExecMs), f(win.AvgQueueMs), f(win.QueueLen),
				strconv.FormatBool(win.Misbehaving),
				f(win.CoWorkers), f(win.CoExecRate), f(win.CoAvgExecMs), f(win.NodeBusy),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trace: write row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (map[string][]telemetry.WindowStats, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("trace: header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, col := range csvHeader {
		if header[i] != col {
			return nil, fmt.Errorf("trace: column %d is %q, want %q", i, header[i], col)
		}
	}
	out := map[string][]telemetry.WindowStats{}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		win, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out[win.WorkerID] = append(out[win.WorkerID], win)
	}
	return out, nil
}

func parseRow(row []string) (telemetry.WindowStats, error) {
	var win telemetry.WindowStats
	win.WorkerID = row[0]
	win.NodeID = row[1]
	startNs, err := strconv.ParseInt(row[2], 10, 64)
	if err != nil {
		return win, fmt.Errorf("start: %w", err)
	}
	endNs, err := strconv.ParseInt(row[3], 10, 64)
	if err != nil {
		return win, fmt.Errorf("end: %w", err)
	}
	win.Start = time.Unix(0, startNs)
	win.End = time.Unix(0, endNs)
	floats := []*float64{
		&win.ExecRate, &win.EmitRate, &win.AvgExecMs, &win.AvgQueueMs, &win.QueueLen,
	}
	for i, dst := range floats {
		v, err := strconv.ParseFloat(row[4+i], 64)
		if err != nil {
			return win, fmt.Errorf("%s: %w", csvHeader[4+i], err)
		}
		*dst = v
	}
	win.Misbehaving, err = strconv.ParseBool(row[9])
	if err != nil {
		return win, fmt.Errorf("misbehaving: %w", err)
	}
	tail := []*float64{&win.CoWorkers, &win.CoExecRate, &win.CoAvgExecMs, &win.NodeBusy}
	for i, dst := range tail {
		v, err := strconv.ParseFloat(row[10+i], 64)
		if err != nil {
			return win, fmt.Errorf("%s: %w", csvHeader[10+i], err)
		}
		*dst = v
	}
	return win, nil
}
