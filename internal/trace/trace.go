// Package trace produces the multilevel-statistics training data for the
// prediction experiments in two ways:
//
//  1. Collect samples a live dsps cluster at a fixed period into a
//     telemetry.Sampler — the direct analogue of the paper's runtime
//     statistics collection on its Storm cluster.
//  2. Synthetic generates traces from a queueing-theoretic model of the
//     same causal structure (load ↑ or co-location ↑ ⇒ processing time ↑,
//     with temporal correlation and noise). This substitutes for the
//     paper's multi-hour production cluster traces: it is deterministic,
//     laptop-scale, and long enough to train the DRNN, while exercising
//     exactly the feature→target relationships the live path produces.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"predstream/internal/dsps"
	"predstream/internal/telemetry"
	"predstream/internal/workload"
)

// CollectConfig controls live trace capture.
type CollectConfig struct {
	// Period is the sampling interval (the paper's measurement window).
	Period time.Duration
	// Windows is how many windows to record.
	Windows int
}

// Collect samples the cluster's snapshots every Period until Windows
// windows exist, returning the sampler. It blocks for roughly
// Period×(Windows+1).
func Collect(c *dsps.Cluster, cfg CollectConfig) (*telemetry.Sampler, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("trace: non-positive period %v", cfg.Period)
	}
	if cfg.Windows <= 0 {
		return nil, fmt.Errorf("trace: non-positive window count %d", cfg.Windows)
	}
	s := telemetry.NewSampler(0)
	ticker := time.NewTicker(cfg.Period)
	defer ticker.Stop()
	for i := 0; i <= cfg.Windows; i++ {
		s.Sample(c.Snapshot())
		if i < cfg.Windows {
			<-ticker.C
		}
	}
	return s, nil
}

// SyntheticConfig parameterizes the queueing-model generator.
type SyntheticConfig struct {
	// Workers is the number of simulated workers; default 4.
	Workers int
	// Nodes is the number of machines workers are spread over
	// round-robin; default 2.
	Nodes int
	// Cores per node; default 4.
	Cores int
	// BaseMs is the uncontended mean per-tuple processing time in
	// milliseconds; default 1.
	BaseMs float64
	// Shape drives the offered load per worker in tuples/s; default
	// sinusoid 800±400 with a 60-window period.
	Shape workload.RateShape
	// Shapes optionally gives each worker its own load shape (index =
	// worker), making co-located load genuinely independent information —
	// the regime where the paper's interference features matter. When
	// shorter than Workers, remaining workers use Shape.
	Shapes []workload.RateShape
	// PeriodSec is the measurement window length in seconds; default 1.
	PeriodSec float64
	// Steps is the number of windows to generate; default 600.
	Steps int
	// Alpha scales interference: processing time multiplies by
	// (1 + Alpha·max(0, ρ−1)) where ρ is node utilization; default 1.
	Alpha float64
	// InterferenceLag delays the impact of co-located workers' load on a
	// worker's processing time by this many windows (own load always acts
	// immediately). This models backlog-driven CPU pressure: a co-worker's
	// arrival burst steals cycles while its queue drains over the next
	// windows. With a positive lag, co-worker features become genuinely
	// predictive information that the target's own history cannot supply —
	// the regime of the paper's interference-aware model. Default 0.
	InterferenceLag int
	// NoiseStd is the std-dev of the multiplicative AR(1) noise on
	// processing time; default 0.05.
	NoiseStd float64
	// ARCoef is the noise persistence in [0,1); default 0.7.
	ARCoef float64
	// SpikeProb is the per-window probability of a transient processing
	// spike; default 0.02.
	SpikeProb float64
	// SpikeX multiplies processing time during a spike; default 3.
	SpikeX float64
	// Slowdowns optionally marks workers misbehaving: worker index →
	// multiplier ≥ 1 applied from StepFaultAt onward.
	Slowdowns map[int]float64
	// FaultAt is the window index faults begin (0 = from the start).
	FaultAt int
	// Seed drives all randomness; default 1.
	Seed int64
}

func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Nodes <= 0 {
		c.Nodes = 2
	}
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if c.BaseMs <= 0 {
		c.BaseMs = 1
	}
	if c.Shape == nil {
		c.Shape = workload.SinusoidRate{Base: 800, Amplitude: 400, Period: 60 * time.Second}
	}
	if c.PeriodSec <= 0 {
		c.PeriodSec = 1
	}
	if c.Steps <= 0 {
		c.Steps = 600
	}
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.NoiseStd == 0 {
		c.NoiseStd = 0.05
	}
	if c.ARCoef == 0 {
		c.ARCoef = 0.7
	}
	if c.SpikeProb == 0 {
		c.SpikeProb = 0.02
	}
	if c.SpikeX == 0 {
		c.SpikeX = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Synthetic generates per-worker WindowStats series under the queueing
// model. Worker w on a node shares that node's capacity with its
// co-located workers; processing time responds to node utilization,
// injected slowdowns, and autocorrelated noise.
func Synthetic(cfg SyntheticConfig) map[string][]telemetry.WindowStats {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nodeOf := make([]int, cfg.Workers)
	for w := range nodeOf {
		nodeOf[w] = w % cfg.Nodes
	}
	// Per-worker load phase offsets decorrelate workers slightly.
	phase := make([]float64, cfg.Workers)
	arNoise := make([]float64, cfg.Workers)
	for w := range phase {
		phase[w] = rng.Float64() * 10
	}
	out := make(map[string][]telemetry.WindowStats, cfg.Workers)
	start := time.Unix(0, 0)
	period := time.Duration(cfg.PeriodSec * float64(time.Second))

	rates := make([]float64, cfg.Workers)
	procMs := make([]float64, cfg.Workers)
	// rateHistory[k] holds the rates of window step-1-k (most recent
	// first), sized for the interference lag.
	var rateHistory [][]float64
	for step := 0; step < cfg.Steps; step++ {
		elapsed := time.Duration(float64(step) * cfg.PeriodSec * float64(time.Second))
		// Offered load per worker.
		for w := 0; w < cfg.Workers; w++ {
			shape := cfg.Shape
			if w < len(cfg.Shapes) && cfg.Shapes[w] != nil {
				shape = cfg.Shapes[w]
			}
			shaped := shape.Rate(elapsed + time.Duration(phase[w]*float64(time.Second)))
			rates[w] = math.Max(0, shaped*(1+0.05*rng.NormFloat64()))
		}
		// Node utilization from uncontended service demand. Co-worker
		// demand optionally acts with a lag (see InterferenceLag); own
		// demand always acts immediately.
		lagRates := rates
		if cfg.InterferenceLag > 0 {
			if len(rateHistory) >= cfg.InterferenceLag {
				lagRates = rateHistory[cfg.InterferenceLag-1]
			} else if len(rateHistory) > 0 {
				lagRates = rateHistory[len(rateHistory)-1]
			}
		}
		nodeRho := make([]float64, cfg.Nodes)
		nodeLagRho := make([]float64, cfg.Nodes)
		for w := 0; w < cfg.Workers; w++ {
			nodeRho[nodeOf[w]] += rates[w] * cfg.BaseMs / 1000 / float64(cfg.Cores)
			nodeLagRho[nodeOf[w]] += lagRates[w] * cfg.BaseMs / 1000 / float64(cfg.Cores)
		}
		// Processing time per worker.
		rhoEff := make([]float64, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			node := nodeOf[w]
			ownDemand := rates[w] * cfg.BaseMs / 1000 / float64(cfg.Cores)
			rho := nodeRho[node]
			if cfg.InterferenceLag > 0 {
				// Own demand current + co-worker demand lagged.
				rho = ownDemand + (nodeLagRho[node] - lagRates[w]*cfg.BaseMs/1000/float64(cfg.Cores))
			}
			rhoEff[w] = rho
			m := cfg.BaseMs * (1 + cfg.Alpha*math.Max(0, rho*float64(cfg.Workers/cfg.Nodes)-1))
			// Queueing growth as the node saturates.
			if rho < 0.95 {
				m *= 1 / (1 - 0.5*rho)
			} else {
				m *= 2
			}
			if s, ok := cfg.Slowdowns[w]; ok && s > 1 && step >= cfg.FaultAt {
				m *= s
			}
			arNoise[w] = cfg.ARCoef*arNoise[w] + cfg.NoiseStd*rng.NormFloat64()
			m *= math.Exp(arNoise[w])
			if rng.Float64() < cfg.SpikeProb {
				m *= cfg.SpikeX
			}
			procMs[w] = m
		}
		for w := 0; w < cfg.Workers; w++ {
			node := nodeOf[w]
			var coWorkers, coExec, coProcSum float64
			coCount := 0
			for o := 0; o < cfg.Workers; o++ {
				if o == w || nodeOf[o] != node {
					continue
				}
				coWorkers++
				coExec += rates[o]
				coProcSum += procMs[o]
				coCount++
			}
			ws := telemetry.WindowStats{
				WorkerID:  fmt.Sprintf("worker-%d", w),
				NodeID:    fmt.Sprintf("node-%d", node),
				Start:     start.Add(time.Duration(step) * period),
				End:       start.Add(time.Duration(step+1) * period),
				ExecRate:  rates[w],
				EmitRate:  rates[w],
				AvgExecMs: procMs[w],
				// The worker's own queue responds to its *effective*
				// utilization (own load + the interference actually felt),
				// not the instantaneous node state — otherwise these
				// worker-level stats would leak co-located load into the
				// no-interference feature set and void the E4 ablation.
				AvgQueueMs:  math.Max(0, procMs[w]*rhoEff[w]*2),
				QueueLen:    math.Max(0, rhoEff[w]/(1.01-math.Min(rhoEff[w], 1))*10),
				CoWorkers:   coWorkers,
				CoExecRate:  coExec,
				NodeBusy:    nodeRho[node] * float64(cfg.Cores),
				Misbehaving: func() bool { s, ok := cfg.Slowdowns[w]; return ok && s > 1 && step >= cfg.FaultAt }(),
			}
			if coCount > 0 {
				ws.CoAvgExecMs = coProcSum / float64(coCount)
			}
			out[ws.WorkerID] = append(out[ws.WorkerID], ws)
		}
		if cfg.InterferenceLag > 0 {
			snapshot := make([]float64, len(rates))
			copy(snapshot, rates)
			rateHistory = append([][]float64{snapshot}, rateHistory...)
			if len(rateHistory) > cfg.InterferenceLag {
				rateHistory = rateHistory[:cfg.InterferenceLag]
			}
		}
	}
	return out
}
