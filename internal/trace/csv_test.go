package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := Synthetic(SyntheticConfig{Workers: 3, Steps: 20, Seed: 9,
		Slowdowns: map[int]float64{1: 4}, FaultAt: 10})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("workers %d vs %d", len(back), len(orig))
	}
	for id, wins := range orig {
		got := back[id]
		if len(got) != len(wins) {
			t.Fatalf("%s windows %d vs %d", id, len(got), len(wins))
		}
		for i := range wins {
			a, b := wins[i], got[i]
			if a.WorkerID != b.WorkerID || a.NodeID != b.NodeID ||
				!a.Start.Equal(b.Start) || !a.End.Equal(b.End) ||
				a.ExecRate != b.ExecRate || a.AvgExecMs != b.AvgExecMs ||
				a.AvgQueueMs != b.AvgQueueMs || a.QueueLen != b.QueueLen ||
				a.Misbehaving != b.Misbehaving ||
				a.CoWorkers != b.CoWorkers || a.CoExecRate != b.CoExecRate ||
				a.CoAvgExecMs != b.CoAvgExecMs || a.NodeBusy != b.NodeBusy {
				t.Fatalf("%s window %d mismatch:\n%+v\n%+v", id, i, a, b)
			}
		}
	}
}

func TestCSVReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"short header":   "worker,node\n",
		"wrong column":   strings.Replace(strings.Join(csvHeader, ","), "exec_rate", "rate", 1) + "\n",
		"bad start":      strings.Join(csvHeader, ",") + "\nw,n,abc,1,1,1,1,1,1,false,0,0,0,0\n",
		"bad float":      strings.Join(csvHeader, ",") + "\nw,n,1,2,xx,1,1,1,1,false,0,0,0,0\n",
		"bad bool":       strings.Join(csvHeader, ",") + "\nw,n,1,2,1,1,1,1,1,maybe,0,0,0,0\n",
		"bad tail float": strings.Join(csvHeader, ",") + "\nw,n,1,2,1,1,1,1,1,false,zz,0,0,0\n",
	}
	for name, input := range cases {
		if _, err := ReadCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCSVEmptyTraceWritesHeaderOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("empty trace round-trip has %d workers", len(back))
	}
}
