package stats

import (
	"fmt"
	"math"
)

// Forecast-error metrics. All take (actual, predicted) slices of equal
// length and panic on length mismatch, because mismatched series are always
// a harness bug rather than a data condition.

func checkPair(actual, pred []float64, op string) {
	if len(actual) != len(pred) {
		panic(fmt.Sprintf("stats: %s length mismatch %d vs %d", op, len(actual), len(pred)))
	}
}

// MAE returns the mean absolute error, or 0 for empty input.
func MAE(actual, pred []float64) float64 {
	checkPair(actual, pred, "MAE")
	if len(actual) == 0 {
		return 0
	}
	var s float64
	for i, a := range actual {
		s += math.Abs(a - pred[i])
	}
	return s / float64(len(actual))
}

// RMSE returns the root mean squared error, or 0 for empty input.
func RMSE(actual, pred []float64) float64 {
	checkPair(actual, pred, "RMSE")
	if len(actual) == 0 {
		return 0
	}
	var s float64
	for i, a := range actual {
		d := a - pred[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(actual)))
}

// MAPE returns the mean absolute percentage error in percent. Points where
// the actual value is zero are skipped (the standard convention); if every
// point is zero MAPE returns 0.
func MAPE(actual, pred []float64) float64 {
	checkPair(actual, pred, "MAPE")
	var s float64
	n := 0
	for i, a := range actual {
		if a == 0 {
			continue
		}
		s += math.Abs((a - pred[i]) / a)
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * s / float64(n)
}

// SMAPE returns the symmetric mean absolute percentage error in percent,
// using the |a|+|p| denominator convention; points where both are zero are
// skipped.
func SMAPE(actual, pred []float64) float64 {
	checkPair(actual, pred, "SMAPE")
	var s float64
	n := 0
	for i, a := range actual {
		den := math.Abs(a) + math.Abs(pred[i])
		if den == 0 {
			continue
		}
		s += math.Abs(a-pred[i]) / den
		n++
	}
	if n == 0 {
		return 0
	}
	return 200 * s / float64(n)
}

// R2 returns the coefficient of determination. A constant actual series
// yields R2 = 0 by convention (no variance to explain).
func R2(actual, pred []float64) float64 {
	checkPair(actual, pred, "R2")
	if len(actual) == 0 {
		return 0
	}
	mean := Mean(actual)
	var ssTot, ssRes float64
	for i, a := range actual {
		ssTot += (a - mean) * (a - mean)
		d := a - pred[i]
		ssRes += d * d
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Report bundles the standard forecast-error metrics for one model on one
// series, as the accuracy experiments print them.
type Report struct {
	Model string
	MAE   float64
	RMSE  float64
	MAPE  float64
	SMAPE float64
	R2    float64
}

// Evaluate computes a full Report for a (actual, predicted) pair.
func Evaluate(model string, actual, pred []float64) Report {
	return Report{
		Model: model,
		MAE:   MAE(actual, pred),
		RMSE:  RMSE(actual, pred),
		MAPE:  MAPE(actual, pred),
		SMAPE: SMAPE(actual, pred),
		R2:    R2(actual, pred),
	}
}

// String renders the report as one table row.
func (r Report) String() string {
	return fmt.Sprintf("%-10s MAE=%8.4f RMSE=%8.4f MAPE=%6.2f%% sMAPE=%6.2f%% R2=%6.3f",
		r.Model, r.MAE, r.RMSE, r.MAPE, r.SMAPE, r.R2)
}
