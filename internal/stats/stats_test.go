package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
}

func TestMinMaxMedianPercentile(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Fatalf("Min/Max wrong: %v %v", Min(xs), Max(xs))
	}
	if got := Median(xs); got != 5 {
		t.Fatalf("Median = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 9 {
		t.Fatalf("P100 = %v", got)
	}
	// 25th percentile of sorted {1,3,5,7,9}: rank 1.0 → 3.
	if got := Percentile(xs, 25); got != 3 {
		t.Fatalf("P25 = %v", got)
	}
	if got := Percentile([]float64{42}, 73); got != 42 {
		t.Fatalf("single-element percentile = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"empty", func() { Percentile(nil, 50) }},
		{"low", func() { Percentile([]float64{1}, -1) }},
		{"high", func() { Percentile([]float64{1}, 101) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestMAEAndRMSE(t *testing.T) {
	actual := []float64{1, 2, 3}
	pred := []float64{2, 2, 5}
	if got := MAE(actual, pred); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("MAE = %v want 1", got)
	}
	want := math.Sqrt((1.0 + 0 + 4) / 3)
	if got := RMSE(actual, pred); !almostEqual(got, want, 1e-12) {
		t.Fatalf("RMSE = %v want %v", got, want)
	}
	if MAE(nil, nil) != 0 || RMSE(nil, nil) != 0 {
		t.Fatal("empty metrics should be 0")
	}
}

func TestMAPE(t *testing.T) {
	actual := []float64{100, 200}
	pred := []float64{110, 180}
	// |10/100| + |20/200| = 0.2 → mean 0.1 → 10%
	if got := MAPE(actual, pred); !almostEqual(got, 10, 1e-12) {
		t.Fatalf("MAPE = %v want 10", got)
	}
	// Zero actuals are skipped.
	if got := MAPE([]float64{0, 100}, []float64{5, 110}); !almostEqual(got, 10, 1e-12) {
		t.Fatalf("MAPE with zero actual = %v want 10", got)
	}
	if got := MAPE([]float64{0, 0}, []float64{1, 2}); got != 0 {
		t.Fatalf("MAPE all-zero actual = %v want 0", got)
	}
}

func TestSMAPE(t *testing.T) {
	// a=100 p=100 → 0; a=100 p=50 → 50/150.
	got := SMAPE([]float64{100, 100}, []float64{100, 50})
	want := 200 * (50.0 / 150.0) / 2
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("SMAPE = %v want %v", got, want)
	}
	if got := SMAPE([]float64{0}, []float64{0}); got != 0 {
		t.Fatalf("SMAPE(0,0) = %v", got)
	}
}

func TestR2(t *testing.T) {
	actual := []float64{1, 2, 3, 4}
	if got := R2(actual, actual); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("perfect R2 = %v", got)
	}
	mean := Mean(actual)
	meanPred := []float64{mean, mean, mean, mean}
	if got := R2(actual, meanPred); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("mean-predictor R2 = %v", got)
	}
	if got := R2([]float64{5, 5}, []float64{4, 6}); got != 0 {
		t.Fatalf("constant-actual R2 = %v", got)
	}
}

func TestMetricsPanicOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	MAE([]float64{1}, []float64{1, 2})
}

func TestPropertyMetricInequalities(t *testing.T) {
	// MAE ≤ RMSE (Jensen) and both are non-negative, for any pair of
	// series; MAPE and sMAPE are non-negative.
	f := func(seed int64, n uint8) bool {
		ln := int(n%30) + 1
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, ln)
		p := make([]float64, ln)
		for i := range a {
			a[i] = rng.NormFloat64() * 10
			p[i] = rng.NormFloat64() * 10
		}
		mae, rmse := MAE(a, p), RMSE(a, p)
		if mae < 0 || rmse < 0 || mae > rmse+1e-9 {
			return false
		}
		return MAPE(a, p) >= 0 && SMAPE(a, p) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateReport(t *testing.T) {
	r := Evaluate("drnn", []float64{1, 2}, []float64{1, 2})
	if r.Model != "drnn" || r.MAE != 0 || r.RMSE != 0 || r.MAPE != 0 {
		t.Fatalf("Report = %+v", r)
	}
	if r.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestDiffAndUndiff(t *testing.T) {
	xs := []float64{1, 3, 6, 10}
	d1, err := Diff(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4}
	for i := range want {
		if d1[i] != want[i] {
			t.Fatalf("Diff = %v", d1)
		}
	}
	levels := Undiff(xs[len(xs)-1], []float64{5, 6})
	if levels[0] != 15 || levels[1] != 21 {
		t.Fatalf("Undiff = %v", levels)
	}
	d0, err := Diff(xs, 0)
	if err != nil || len(d0) != len(xs) {
		t.Fatalf("Diff d=0 = %v, %v", d0, err)
	}
	if _, err := Diff([]float64{1}, 1); err == nil {
		t.Fatal("Diff of length-1 series should error")
	}
	if _, err := Diff(xs, -1); err == nil {
		t.Fatal("negative d should error")
	}
}

func TestPropertyDiffUndiffRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		ln := int(n%20) + 2
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, ln)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		d, err := Diff(xs, 1)
		if err != nil {
			return false
		}
		back := Undiff(xs[0], d)
		for i := 1; i < ln; i++ {
			if !almostEqual(back[i-1], xs[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestACF(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	acf := ACF(xs, 5)
	if !almostEqual(acf[0], 1, 1e-12) {
		t.Fatalf("ACF lag0 = %v", acf[0])
	}
	for lag := 1; lag <= 5; lag++ {
		if math.Abs(acf[lag]) > 0.15 {
			t.Fatalf("white-noise ACF lag%d = %v too large", lag, acf[lag])
		}
	}
	// Strongly autocorrelated series: alternating ±1 has ACF(1) ≈ -1.
	alt := make([]float64, 100)
	for i := range alt {
		if i%2 == 0 {
			alt[i] = 1
		} else {
			alt[i] = -1
		}
	}
	a := ACF(alt, 1)
	if a[1] > -0.9 {
		t.Fatalf("alternating ACF lag1 = %v want near -1", a[1])
	}
	if got := ACF([]float64{3, 3, 3}, 2); got[0] != 0 || got[1] != 0 {
		t.Fatalf("constant ACF = %v want zeros", got)
	}
	if got := ACF(nil, 3); got != nil {
		t.Fatalf("ACF(nil) = %v", got)
	}
}

func TestStandardScaler(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := FitStandard(xs)
	zs := s.TransformAll(xs)
	if !almostEqual(Mean(zs), 0, 1e-12) || !almostEqual(StdDev(zs), 1, 1e-12) {
		t.Fatalf("scaled mean/std = %v/%v", Mean(zs), StdDev(zs))
	}
	back := s.InverseAll(zs)
	for i := range xs {
		if !almostEqual(back[i], xs[i], 1e-12) {
			t.Fatalf("inverse round-trip = %v", back)
		}
	}
	c := FitStandard([]float64{7, 7, 7})
	if got := c.Transform(7); got != 0 {
		t.Fatalf("constant scaler transform = %v", got)
	}
}

func TestMinMaxScaler(t *testing.T) {
	s := FitMinMax([]float64{10, 20, 30})
	if got := s.Transform(10); got != 0 {
		t.Fatalf("min maps to %v", got)
	}
	if got := s.Transform(30); got != 1 {
		t.Fatalf("max maps to %v", got)
	}
	if got := s.Inverse(0.5); got != 20 {
		t.Fatalf("Inverse(0.5) = %v", got)
	}
	c := FitMinMax([]float64{5, 5})
	if got := c.Transform(5); got != 0 {
		t.Fatalf("constant minmax = %v", got)
	}
	e := FitMinMax(nil)
	if e.Min != 0 || e.Max != 1 {
		t.Fatalf("empty minmax = %+v", e)
	}
}

func TestPropertyScalerRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		ln := int(n%30) + 2
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, ln)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s := FitStandard(xs)
		for _, x := range xs {
			if !almostEqual(s.Inverse(s.Transform(x)), x, 1e-8) {
				return false
			}
		}
		m := FitMinMax(xs)
		for _, x := range xs {
			if m.Max != m.Min && !almostEqual(m.Inverse(m.Transform(x)), x, 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEWMA(t *testing.T) {
	out := EWMA([]float64{1, 2, 3}, 0.5)
	if out[0] != 1 || out[1] != 1.5 || out[2] != 2.25 {
		t.Fatalf("EWMA = %v", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EWMA alpha=0 should panic")
		}
	}()
	EWMA([]float64{1}, 0)
}

func TestRollingMean(t *testing.T) {
	out := RollingMean([]float64{2, 4, 6, 8}, 2)
	want := []float64{2, 3, 5, 7}
	for i := range want {
		if !almostEqual(out[i], want[i], 1e-12) {
			t.Fatalf("RollingMean = %v", out)
		}
	}
}

func TestIsFiniteSeries(t *testing.T) {
	if !IsFiniteSeries([]float64{1, 2, 3}) {
		t.Fatal("finite series reported non-finite")
	}
	if IsFiniteSeries([]float64{1, math.NaN()}) {
		t.Fatal("NaN not detected")
	}
	if IsFiniteSeries([]float64{math.Inf(1)}) {
		t.Fatal("Inf not detected")
	}
}
