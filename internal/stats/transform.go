package stats

import (
	"fmt"
	"math"
)

// Diff returns the d-th order difference of xs: each pass replaces the
// series with consecutive deltas, shortening it by one. It returns an error
// if the series is too short to difference d times.
func Diff(xs []float64, d int) ([]float64, error) {
	if d < 0 {
		return nil, fmt.Errorf("stats: negative differencing order %d", d)
	}
	out := make([]float64, len(xs))
	copy(out, xs)
	for k := 0; k < d; k++ {
		if len(out) < 2 {
			return nil, fmt.Errorf("stats: series of %d too short for d=%d", len(xs), d)
		}
		next := make([]float64, len(out)-1)
		for i := 1; i < len(out); i++ {
			next[i-1] = out[i] - out[i-1]
		}
		out = next
	}
	return out, nil
}

// Undiff inverts a single differencing pass: given the last observed level
// and a forecast of differences, it returns the forecast of levels.
func Undiff(lastLevel float64, diffs []float64) []float64 {
	out := make([]float64, len(diffs))
	level := lastLevel
	for i, d := range diffs {
		level += d
		out[i] = level
	}
	return out
}

// ACF returns autocorrelations of xs at lags 0..maxLag. Lag 0 is always 1
// for a non-constant series; for a constant (zero-variance) series all lags
// return 0.
func ACF(xs []float64, maxLag int) []float64 {
	if maxLag >= len(xs) {
		maxLag = len(xs) - 1
	}
	if maxLag < 0 {
		return nil
	}
	out := make([]float64, maxLag+1)
	m := Mean(xs)
	var c0 float64
	for _, x := range xs {
		c0 += (x - m) * (x - m)
	}
	if c0 == 0 {
		return out
	}
	for lag := 0; lag <= maxLag; lag++ {
		var c float64
		for i := lag; i < len(xs); i++ {
			c += (xs[i] - m) * (xs[i-lag] - m)
		}
		out[lag] = c / c0
	}
	return out
}

// StandardScaler is a z-score scaler fit on a training series and applied
// to further data, as the DRNN preprocessing requires.
type StandardScaler struct {
	Mean, Std float64
}

// FitStandard fits a StandardScaler on xs. A zero-variance series gets
// Std=1 so Transform is the identity shift.
func FitStandard(xs []float64) StandardScaler {
	s := StandardScaler{Mean: Mean(xs), Std: StdDev(xs)}
	if s.Std == 0 {
		s.Std = 1
	}
	return s
}

// Transform maps x into z-score space.
func (s StandardScaler) Transform(x float64) float64 { return (x - s.Mean) / s.Std }

// Inverse maps a z-score back to the original space.
func (s StandardScaler) Inverse(z float64) float64 { return z*s.Std + s.Mean }

// TransformAll returns the z-scores of xs.
func (s StandardScaler) TransformAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = s.Transform(x)
	}
	return out
}

// InverseAll maps z-scores back to the original space.
func (s StandardScaler) InverseAll(zs []float64) []float64 {
	out := make([]float64, len(zs))
	for i, z := range zs {
		out[i] = s.Inverse(z)
	}
	return out
}

// MinMaxScaler maps a training range onto [0,1].
type MinMaxScaler struct {
	Min, Max float64
}

// FitMinMax fits a MinMaxScaler on xs. A constant series maps to 0.
func FitMinMax(xs []float64) MinMaxScaler {
	if len(xs) == 0 {
		return MinMaxScaler{Min: 0, Max: 1}
	}
	return MinMaxScaler{Min: Min(xs), Max: Max(xs)}
}

// Transform maps x into [0,1] relative to the fitted range. Values outside
// the training range extrapolate linearly.
func (s MinMaxScaler) Transform(x float64) float64 {
	span := s.Max - s.Min
	if span == 0 {
		return 0
	}
	return (x - s.Min) / span
}

// Inverse maps a scaled value back to the original range.
func (s MinMaxScaler) Inverse(y float64) float64 {
	return s.Min + y*(s.Max-s.Min)
}

// EWMA returns the exponentially weighted moving average of xs with
// smoothing factor alpha in (0,1].
func EWMA(xs []float64, alpha float64) []float64 {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v out of (0,1]", alpha))
	}
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = alpha*xs[i] + (1-alpha)*out[i-1]
	}
	return out
}

// RollingMean returns the trailing moving average of xs with the given
// window; the first window-1 points average over what is available.
func RollingMean(xs []float64, window int) []float64 {
	if window <= 0 {
		panic("stats: RollingMean window must be positive")
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
			out[i] = sum / float64(window)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out
}

// IsFiniteSeries reports whether every element of xs is finite.
func IsFiniteSeries(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
