// Package stats provides the descriptive statistics, forecast-error metrics
// and preprocessing transforms (scaling, differencing, autocorrelation)
// shared by the prediction models and the evaluation harness.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than one
// sample.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs. It panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It panics on empty input or p outside
// [0,100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: Percentile p out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }
