package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// ProcController abstracts a set of real worker OS processes a proc
// script can disrupt. internal/cluster's ProcSet implements it; tests may
// substitute fakes to exercise the runner without spawning processes.
type ProcController interface {
	// Procs returns the managed worker names; ProcEvent.Proc indexes it.
	Procs() []string
	// Kill terminates process i abruptly (SIGKILL).
	Kill(i int) error
	// Restart (re)launches process i, killing any running instance first.
	Restart(i int) error
	// Freeze suspends process i (SIGSTOP): alive but silent, the
	// signature of a hung worker.
	Freeze(i int) error
	// Thaw resumes a frozen process i (SIGCONT).
	Thaw(i int) error
}

// ProcKind discriminates process-chaos events.
type ProcKind int

const (
	// ProcKill terminates the targeted worker process (SIGKILL).
	ProcKill ProcKind = iota
	// ProcRestart relaunches the targeted worker process; it rejoins the
	// coordinator under the same name with a bumped generation.
	ProcRestart
	// ProcFreeze suspends the targeted process (SIGSTOP) so it misses
	// heartbeats without dropping its connection.
	ProcFreeze
	// ProcThaw resumes a frozen process (SIGCONT); its next read fails
	// (the coordinator closed the expired connection) and it reconnects.
	ProcThaw
)

// String implements fmt.Stringer.
func (k ProcKind) String() string {
	switch k {
	case ProcKill:
		return "proc-kill"
	case ProcRestart:
		return "proc-restart"
	case ProcFreeze:
		return "proc-freeze"
	case ProcThaw:
		return "proc-thaw"
	default:
		return fmt.Sprintf("ProcKind(%d)", int(k))
	}
}

// ProcEvent is one timed action against a worker process.
type ProcEvent struct {
	// At is the firing time as an offset from the start of the run.
	At   time.Duration
	Kind ProcKind
	// Proc indexes ProcController.Procs.
	Proc int
}

// String implements fmt.Stringer.
func (e ProcEvent) String() string {
	return fmt.Sprintf("%s %s #%d", e.At.Round(time.Millisecond), e.Kind, e.Proc)
}

// ProcScript is a deterministic process-disruption timeline. Like Script,
// identical (seed, cfg) inputs reproduce it exactly.
type ProcScript struct {
	Seed   int64
	Events []ProcEvent
}

// Horizon returns the time of the last event.
func (s ProcScript) Horizon() time.Duration {
	var max time.Duration
	for _, e := range s.Events {
		if e.At > max {
			max = e.At
		}
	}
	return max
}

// sorted returns the events in stable firing order.
func (s ProcScript) sorted() []ProcEvent {
	evs := make([]ProcEvent, len(s.Events))
	copy(evs, s.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// ProcGenConfig parameterizes GenerateProc. Zero fields take the noted
// defaults.
type ProcGenConfig struct {
	// Events is the number of random disruption events; default 4.
	Events int
	// Horizon spreads the events over [0, Horizon); default 2s. The
	// guaranteed restore events land at Horizon itself.
	Horizon time.Duration
	// Procs is the process-index space events target; default 2.
	Procs int
	// Freeze permits SIGSTOP/SIGCONT events alongside kill/restart.
	Freeze bool
	// MinGap is the minimum spacing enforced between consecutive events,
	// so a kill has time to be observed before the restart; default
	// Horizon / (4 × Events).
	MinGap time.Duration
}

func (c ProcGenConfig) withDefaults() ProcGenConfig {
	if c.Events <= 0 {
		c.Events = 4
	}
	if c.Horizon <= 0 {
		c.Horizon = 2 * time.Second
	}
	if c.Procs <= 0 {
		c.Procs = 2
	}
	if c.MinGap <= 0 {
		c.MinGap = c.Horizon / time.Duration(4*c.Events)
	}
	return c
}

// GenerateProc builds a random process-disruption timeline from a seed.
// The generator tracks each process's simulated state (up, down, frozen)
// and only emits events valid in that state, then appends restore events
// at the horizon — a restart for every process left down, a thaw for
// every process left frozen — so the schedule always ends with the whole
// fleet up. That final wholeness is what lets the harness assert fleet
// invariants (membership accounting, per-worker engine invariants) after
// the run without racing the disruption itself.
func GenerateProc(seed int64, cfg ProcGenConfig) ProcScript {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))

	const (
		stUp = iota
		stDown
		stFrozen
	)
	state := make([]int, cfg.Procs)

	var evs []ProcEvent
	at := cfg.MinGap
	for len(evs) < cfg.Events && at < cfg.Horizon {
		p := rng.Intn(cfg.Procs)
		var kind ProcKind
		switch state[p] {
		case stUp:
			if cfg.Freeze && rng.Intn(2) == 1 {
				kind, state[p] = ProcFreeze, stFrozen
			} else {
				kind, state[p] = ProcKill, stDown
			}
		case stDown:
			kind, state[p] = ProcRestart, stUp
		case stFrozen:
			kind, state[p] = ProcThaw, stUp
		}
		evs = append(evs, ProcEvent{At: at, Kind: kind, Proc: p})
		at += cfg.MinGap + time.Duration(rng.Int63n(int64(cfg.Horizon/time.Duration(cfg.Events))))
	}
	// Restore the fleet: every process must end the schedule up.
	for p := 0; p < cfg.Procs; p++ {
		switch state[p] {
		case stDown:
			evs = append(evs, ProcEvent{At: cfg.Horizon, Kind: ProcRestart, Proc: p})
		case stFrozen:
			evs = append(evs, ProcEvent{At: cfg.Horizon, Kind: ProcThaw, Proc: p})
		}
	}
	s := ProcScript{Seed: seed, Events: evs}
	s.Events = s.sorted()
	return s
}

// ProcRunOptions configures RunProc. Zero fields take the noted defaults.
type ProcRunOptions struct {
	// Log, when set, receives one line per fired or skipped event.
	Log io.Writer
	// Settle is how long the runner waits after the last event before
	// returning, giving restarted/thawed processes time to rejoin;
	// default 0 (callers usually wait on coordinator membership instead).
	Settle time.Duration
}

// ProcReport is the outcome of a process-chaos run.
type ProcReport struct {
	// Seed is the script's seed — the reproducer token.
	Seed int64
	// Events is the script length; Fired and Skipped partition how many
	// were applied vs rejected (event invalid for the process's actual
	// state, or the controller returned an error).
	Events, Fired, Skipped int
	// Errors collects controller errors, one line each.
	Errors []string
}

// RunProc replays a process-disruption script against real worker
// processes. It tracks each process's actual state so events that became
// invalid (e.g. a thaw for a process that was killed and restarted by an
// earlier event) are skipped rather than mis-fired, mirroring how the
// in-engine runner treats events invalidated by churn. The caller asserts
// fleet invariants afterwards — typically coordinator membership
// accounting plus a per-worker OpCheckInvariants sweep.
func RunProc(ctrl ProcController, script ProcScript, opts ProcRunOptions) ProcReport {
	rep := ProcReport{Seed: script.Seed, Events: len(script.Events)}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}

	const (
		stUp = iota
		stDown
		stFrozen
	)
	n := len(ctrl.Procs())
	state := make([]int, n)

	start := time.Now()
	for _, ev := range script.sorted() {
		if wait := ev.At - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		if ev.Proc < 0 || ev.Proc >= n {
			rep.Skipped++
			logf("chaos: skip %s (no such process)", ev)
			continue
		}
		valid, next := procTransition(state[ev.Proc], ev.Kind)
		if !valid {
			rep.Skipped++
			logf("chaos: skip %s (state %d)", ev, state[ev.Proc])
			continue
		}
		var err error
		switch ev.Kind {
		case ProcKill:
			err = ctrl.Kill(ev.Proc)
		case ProcRestart:
			err = ctrl.Restart(ev.Proc)
		case ProcFreeze:
			err = ctrl.Freeze(ev.Proc)
		case ProcThaw:
			err = ctrl.Thaw(ev.Proc)
		}
		if err != nil {
			rep.Skipped++
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", ev, err))
			logf("chaos: error %s: %v", ev, err)
			continue
		}
		state[ev.Proc] = next
		rep.Fired++
		logf("chaos: %s", ev)
	}
	if opts.Settle > 0 {
		time.Sleep(opts.Settle)
	}
	return rep
}

// procTransition validates kind against a process state and returns the
// next state. Kill is valid for frozen processes too (SIGKILL terminates
// a stopped process); restart is valid from any state (it replaces).
func procTransition(state int, kind ProcKind) (valid bool, next int) {
	const (
		stUp = iota
		stDown
		stFrozen
	)
	switch kind {
	case ProcKill:
		return state != stDown, stDown
	case ProcRestart:
		return true, stUp
	case ProcFreeze:
		return state == stUp, stFrozen
	case ProcThaw:
		return state == stFrozen, stUp
	default:
		return false, state
	}
}
