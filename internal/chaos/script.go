// Package chaos replays deterministic fault timelines against a running
// dsps.Cluster while an invariant checker continuously asserts engine
// correctness: tuple conservation, acker quiescence after drain, monotone
// metrics counters, bounded queue growth once faults clear, and
// controller-plan sanity (ratios sum to 1, no routing to stalled workers
// after the detection latency).
//
// A timeline is a Script: a list of timed events (fault inject/clear,
// rebalance, topology kill, spout pause/resume, quiescence checkpoints).
// Scripts are either written by hand or produced by Generate from a seed,
// and the runner fires events in deterministic order, so every reported
// violation reproduces from the single printed seed plus the generator
// configuration. The engine itself still schedules goroutines, so tuple
// interleavings vary run to run — the invariants are exactly the
// properties that must hold under every interleaving, which is what makes
// the harness a soak test rather than a golden-output test.
//
// All randomness is drawn from explicitly seeded sources; dspslint
// enforces that (and map-iteration determinism) for this package.
//
//dsps:deterministic
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"predstream/internal/dsps"
)

// Kind discriminates chaos events.
type Kind int

const (
	// KindInject applies Event.Fault to the targeted worker.
	KindInject Kind = iota
	// KindClear removes any fault from the targeted worker.
	KindClear
	// KindRebalance stops and resubmits the targeted topology with the
	// event's Workers/Strategy (in-flight tuples get Event.DrainTimeout).
	KindRebalance
	// KindKill shuts the targeted topology down.
	KindKill
	// KindPause stops every spout from emitting.
	KindPause
	// KindResume re-enables spout emission.
	KindResume
	// KindCheckpoint clears all faults, pauses spouts, drains, runs the
	// quiescent-state invariants (conservation, acker quiescence, empty
	// queues), and resumes emission.
	KindCheckpoint
	// KindScaleUp spawns Event.Tasks new executors for Event.Component.
	KindScaleUp
	// KindScaleDown drains Event.Tasks executors of Event.Component (the
	// drain bounded by Event.DrainTimeout). Scaling to the floor is rejected
	// by the engine and counts as skipped — legitimate under churn.
	KindScaleDown
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInject:
		return "inject"
	case KindClear:
		return "clear"
	case KindRebalance:
		return "rebalance"
	case KindKill:
		return "kill"
	case KindPause:
		return "pause"
	case KindResume:
		return "resume"
	case KindCheckpoint:
		return "checkpoint"
	case KindScaleUp:
		return "scale-up"
	case KindScaleDown:
		return "scale-down"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one timed action of a chaos script.
type Event struct {
	// At is the firing time as an offset from the start of the run.
	At   time.Duration
	Kind Kind

	// Worker targets inject/clear by explicit id. When empty, WorkerIndex
	// is resolved against the cluster's live worker list at fire time
	// (modulo its length), so generated scripts keep targeting real
	// workers across rebalances, which renumber worker ids.
	Worker      string
	WorkerIndex int
	// Fault is the misbehaviour applied by KindInject.
	Fault dsps.Fault

	// Topology names the rebalance/kill target; empty targets the first
	// running topology at fire time.
	Topology string
	// Workers is the worker-process count for KindRebalance (0 keeps the
	// cluster default).
	Workers int
	// Strategy is the placement for KindRebalance.
	Strategy dsps.PlacementStrategy
	// DrainTimeout bounds the rebalance or scale-down drain.
	DrainTimeout time.Duration

	// Component is the bolt targeted by KindScaleUp/KindScaleDown.
	Component string
	// Tasks is the executor delta magnitude for scale events; 0 means 1.
	Tasks int
}

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e.Kind {
	case KindInject:
		target := e.Worker
		if target == "" {
			target = fmt.Sprintf("#%d", e.WorkerIndex)
		}
		return fmt.Sprintf("%s inject %s %+v", e.At.Round(time.Millisecond), target, e.Fault)
	case KindClear:
		target := e.Worker
		if target == "" {
			target = fmt.Sprintf("#%d", e.WorkerIndex)
		}
		return fmt.Sprintf("%s clear %s", e.At.Round(time.Millisecond), target)
	case KindRebalance:
		return fmt.Sprintf("%s rebalance workers=%d strategy=%s", e.At.Round(time.Millisecond), e.Workers, e.Strategy)
	case KindScaleUp, KindScaleDown:
		return fmt.Sprintf("%s %s %s n=%d", e.At.Round(time.Millisecond), e.Kind, e.Component, e.taskDelta())
	default:
		return fmt.Sprintf("%s %s", e.At.Round(time.Millisecond), e.Kind)
	}
}

// taskDelta returns the effective executor count of a scale event.
func (e Event) taskDelta() int {
	if e.Tasks <= 0 {
		return 1
	}
	return e.Tasks
}

// Script is a deterministic fault timeline. Seed records where the events
// came from so a failing run can print a one-token reproducer.
type Script struct {
	Seed   int64
	Events []Event
}

// Horizon returns the time of the last event (the scripted portion of the
// run; the runner appends a final drain-and-check phase after it).
func (s Script) Horizon() time.Duration {
	var max time.Duration
	for _, e := range s.Events {
		if e.At > max {
			max = e.At
		}
	}
	return max
}

// sorted returns the events in stable firing order.
func (s Script) sorted() []Event {
	evs := make([]Event, len(s.Events))
	copy(evs, s.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// GenConfig parameterizes Generate. Zero fields take the noted defaults;
// the boolean event classes are opt-in so the zero value produces a plain
// inject/clear schedule that any topology survives.
type GenConfig struct {
	// Events is the number of inject/clear/rebalance/kill events; default
	// 12.
	Events int
	// Horizon spreads the events over [0, Horizon); default 2s.
	Horizon time.Duration
	// Workers is the worker-index space events target; default 4.
	Workers int
	// MaxSlowdown bounds generated slowdown faults (drawn from
	// [1, MaxSlowdown]); default 8.
	MaxSlowdown float64
	// MaxDropProb / MaxFailProb bound generated probabilistic faults;
	// default 0.5 each.
	MaxDropProb float64
	MaxFailProb float64
	// Stall permits full-hang faults.
	Stall bool
	// Rebalance permits stop-and-resubmit events.
	Rebalance bool
	// MaxWorkersOnRebalance bounds the new worker count; default
	// Workers+2.
	MaxWorkersOnRebalance int
	// Kill permits topology shutdown events (the stream ends early).
	Kill bool
	// Checkpoint inserts one mid-run quiescence checkpoint at Horizon/2.
	Checkpoint bool
	// Pause inserts one pause/resume pair.
	Pause bool
	// Scale permits live executor scale-up/scale-down events against the
	// components named in ScaleComponents. Besides joining the random event
	// pool, an enabled schedule always carries one guaranteed scale-up at
	// Horizon/3 and one scale-down at 2·Horizon/3, so every scaled run
	// exercises both directions mid-fault.
	Scale bool
	// ScaleComponents names the bolts scale events may target; required
	// when Scale is set (Scale is ignored while it is empty).
	ScaleComponents []string
	// MaxScaleStep bounds the executor delta of one scale event; default 2.
	MaxScaleStep int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Events <= 0 {
		c.Events = 12
	}
	if c.Horizon <= 0 {
		c.Horizon = 2 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxSlowdown < 1 {
		c.MaxSlowdown = 8
	}
	if c.MaxDropProb <= 0 || c.MaxDropProb > 1 {
		c.MaxDropProb = 0.5
	}
	if c.MaxFailProb <= 0 || c.MaxFailProb > 1 {
		c.MaxFailProb = 0.5
	}
	if c.MaxWorkersOnRebalance <= 0 {
		c.MaxWorkersOnRebalance = c.Workers + 2
	}
	if c.MaxScaleStep <= 0 {
		c.MaxScaleStep = 2
	}
	if len(c.ScaleComponents) == 0 {
		c.Scale = false
	}
	return c
}

// Generate builds a random fault timeline from a seed. Identical
// (seed, cfg) inputs yield identical scripts, which is what makes a chaos
// failure reproducible from its printed seed.
func Generate(seed int64, cfg GenConfig) Script {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	at := func() time.Duration { return time.Duration(rng.Int63n(int64(cfg.Horizon))) }

	// Inject twice as often as clear so faults overlap; the runner clears
	// every fault before the final drain regardless.
	kinds := []Kind{KindInject, KindInject, KindInject, KindInject, KindClear, KindClear}
	if cfg.Rebalance {
		kinds = append(kinds, KindRebalance)
	}
	if cfg.Kill {
		kinds = append(kinds, KindKill)
	}
	if cfg.Scale {
		kinds = append(kinds, KindScaleUp, KindScaleDown)
	}
	scaleEvent := func(kind Kind, at time.Duration) Event {
		return Event{
			At:           at,
			Kind:         kind,
			Component:    cfg.ScaleComponents[rng.Intn(len(cfg.ScaleComponents))],
			Tasks:        1 + rng.Intn(cfg.MaxScaleStep),
			DrainTimeout: 100 * time.Millisecond,
		}
	}

	var evs []Event
	for len(evs) < cfg.Events {
		ev := Event{At: at(), Kind: kinds[rng.Intn(len(kinds))], WorkerIndex: rng.Intn(cfg.Workers)}
		switch ev.Kind {
		case KindInject:
			ev.Fault = randFault(rng, cfg)
		case KindRebalance:
			ev.Workers = 1 + rng.Intn(cfg.MaxWorkersOnRebalance)
			ev.Strategy = dsps.PlaceRoundRobin
			if rng.Intn(2) == 1 {
				ev.Strategy = dsps.PlaceBlocked
			}
			ev.DrainTimeout = 50 * time.Millisecond
		case KindScaleUp, KindScaleDown:
			ev = scaleEvent(ev.Kind, ev.At)
		}
		evs = append(evs, ev)
	}
	if cfg.Scale {
		// Guarantee both directions fire mid-run: an up while the schedule's
		// early faults are live, a down while the late ones are.
		evs = append(evs,
			scaleEvent(KindScaleUp, cfg.Horizon/3),
			scaleEvent(KindScaleDown, 2*cfg.Horizon/3))
	}
	if cfg.Pause {
		p := time.Duration(rng.Int63n(int64(cfg.Horizon / 2)))
		evs = append(evs,
			Event{At: p, Kind: KindPause},
			Event{At: p + cfg.Horizon/10, Kind: KindResume})
	}
	if cfg.Checkpoint {
		evs = append(evs, Event{At: cfg.Horizon / 2, Kind: KindCheckpoint})
	}
	s := Script{Seed: seed, Events: evs}
	s.Events = s.sorted()
	return s
}

func randFault(rng *rand.Rand, cfg GenConfig) dsps.Fault {
	n := 3
	if cfg.Stall {
		n = 4
	}
	switch rng.Intn(n) {
	case 0:
		return dsps.Fault{Slowdown: 1 + rng.Float64()*(cfg.MaxSlowdown-1)}
	case 1:
		return dsps.Fault{DropProb: rng.Float64() * cfg.MaxDropProb}
	case 2:
		return dsps.Fault{FailProb: rng.Float64() * cfg.MaxFailProb}
	default:
		return dsps.Fault{Stall: true}
	}
}
