package chaos

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"

	"predstream/internal/dsps"
)

// Metrics exposes live chaos-run counters as atomics, safe to read
// concurrently while Run executes — the hook internal/obs scrapes for
// /metrics. Share one Metrics across sequential runs to accumulate.
type Metrics struct {
	// Runs counts Run invocations.
	Runs atomic.Int64
	// EventsFired counts script events successfully applied.
	EventsFired atomic.Int64
	// EventsSkipped counts script events rejected (unknown worker, dead
	// topology, invalid fault — all legitimate under churn).
	EventsSkipped atomic.Int64
	// Checks counts invariant sweeps.
	Checks atomic.Int64
	// Violations holds the violation count of the current/last run
	// (stored, not accumulated, after every sweep).
	Violations atomic.Int64
}

// ControlledEdge declares one dynamic-grouping edge whose plan the checker
// audits (see checker.plan).
type ControlledEdge struct {
	// Component is the downstream component whose input split is
	// controlled.
	Component string
	// Grouping is the handle the controller steers.
	Grouping *dsps.DynamicGrouping
	// DetectionLatency is how long a stalled worker may keep receiving
	// traffic before the bypass invariant fires; default 2s.
	DetectionLatency time.Duration
	// MaxStalledShare is the tolerated post-detection share of a stalled
	// worker (the controller's probe ratio plus slack); default 0.01.
	MaxStalledShare float64
}

// Options configures a chaos run. Zero fields take the noted defaults.
type Options struct {
	// CheckEvery is the cadence of continuous invariant checks between
	// events; default 20ms.
	CheckEvery time.Duration
	// DrainTimeout bounds each quiescence drain (checkpoints and the
	// final phase). Dropped tuples only fail via the ack-timeout sweep,
	// so the default is 2×AckTimeout + 1s.
	DrainTimeout time.Duration
	// SpoutComponents names the components whose emissions are anchored
	// roots (see Topology.Spouts); required for the conservation check,
	// which is skipped when empty.
	SpoutComponents []string
	// Controlled lists dynamic-grouping edges whose plans are audited.
	Controlled []ControlledEdge
	// MaxViolations caps the report size; default 32.
	MaxViolations int
	// Log, when set, receives one line per fired event.
	Log io.Writer
	// Metrics, when set, is updated live as the run progresses (fired/
	// skipped events, checks, violations) for metrics scraping.
	Metrics *Metrics
	// Events, when set, receives one structured event per fired or
	// skipped script event (obs.Logger satisfies the interface).
	Events dsps.EventSink
}

// Report is the outcome of a chaos run.
type Report struct {
	// Seed is the script's seed — the reproducer token.
	Seed int64
	// Events is the script length; Fired and Skipped partition how many
	// were applied vs rejected (unknown worker, dead topology, invalid
	// fault — all legitimate under churn).
	Events, Fired, Skipped int
	// Checks counts invariant sweeps.
	Checks int
	// Drained reports whether the final quiescence drain completed.
	Drained bool
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
	// Violations are the invariant breaches (empty = clean run).
	Violations []Violation
	// ViolationsTruncated reports that more violations occurred than
	// MaxViolations.
	ViolationsTruncated bool
}

// OK reports whether the run held every invariant.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil for a clean run, or an error naming the first violation
// and the reproducing seed.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("chaos: %d invariant violation(s), first: %s (reproduce with seed %d)",
		len(r.Violations), r.Violations[0], r.Seed)
}

// String renders the report; a failing report always includes the
// reproducing seed.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: seed=%d events=%d fired=%d skipped=%d checks=%d drained=%v elapsed=%v violations=%d\n",
		r.Seed, r.Events, r.Fired, r.Skipped, r.Checks, r.Drained, r.Elapsed.Round(time.Millisecond), len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	if r.ViolationsTruncated {
		b.WriteString("  ... more violations truncated\n")
	}
	if !r.OK() {
		fmt.Fprintf(&b, "  reproduce: replay the same script/generator config with seed=%d\n", r.Seed)
	}
	return b.String()
}

// Run replays the script against the cluster, interleaving invariant
// checks, then clears all faults, pauses spouts, drains, and runs the
// quiescent-state checks. The returned error covers harness misuse only;
// invariant outcomes live in the Report.
func Run(c *dsps.Cluster, s Script, opts Options) (*Report, error) {
	if c == nil {
		return nil, fmt.Errorf("chaos: nil cluster")
	}
	if opts.CheckEvery <= 0 {
		opts.CheckEvery = 20 * time.Millisecond
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 2*c.Config().AckTimeout + time.Second
	}
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = 32
	}
	for i := range opts.Controlled {
		e := &opts.Controlled[i]
		if e.Component == "" || e.Grouping == nil {
			return nil, fmt.Errorf("chaos: controlled edge %d incomplete", i)
		}
		if e.DetectionLatency <= 0 {
			e.DetectionLatency = 2 * time.Second
		}
		if e.MaxStalledShare <= 0 {
			e.MaxStalledShare = 0.01
		}
	}
	evs := s.sorted()
	for _, ev := range evs {
		if ev.At < 0 {
			return nil, fmt.Errorf("chaos: event %q has negative time", ev)
		}
	}

	rep := &Report{Seed: s.Seed, Events: len(evs)}
	if opts.Metrics != nil {
		opts.Metrics.Runs.Add(1)
	}
	// Queue occupancy is producer-reserved before each batch hand-off, so
	// the configured bound holds exactly regardless of batch sizes.
	ck := newChecker(c.Config().QueueSize, opts.MaxViolations)
	spouts := make(map[string]bool, len(opts.SpoutComponents))
	for _, sc := range opts.SpoutComponents {
		spouts[sc] = true
	}
	// stallSince tracks when each worker entered a *continuous* stall, the
	// clock the plan-bypass invariant measures detection latency against.
	stallSince := map[string]time.Time{}
	stalledFor := func(w string) time.Duration {
		if t0, ok := stallSince[w]; ok {
			return time.Since(t0)
		}
		return 0
	}
	pruneStalls := func() {
		live := map[string]bool{}
		for _, id := range c.WorkerIDs() {
			live[id] = true
		}
		for w := range stallSince {
			if !live[w] {
				delete(stallSince, w)
			}
		}
	}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}

	check := func() {
		snap := c.Snapshot()
		ck.continuous(snap)
		for _, e := range opts.Controlled {
			ck.plan(e, snap, stalledFor)
		}
		rep.Checks++
		if opts.Metrics != nil {
			opts.Metrics.Checks.Add(1)
			opts.Metrics.Violations.Store(int64(len(ck.violations)))
		}
	}
	// quiesce clears every fault, pauses spouts, and drains: once faults
	// are cleared, queue growth must be bounded — the cluster has to reach
	// full quiescence within the drain timeout, at which point the exact
	// conservation invariants hold.
	quiesce := func(resume bool) bool {
		for _, w := range c.WorkerIDs() {
			c.ClearFault(w)
		}
		for w := range stallSince {
			delete(stallSince, w)
		}
		c.PauseSpouts()
		drained := c.Drain(opts.DrainTimeout)
		if !drained {
			ck.violate("drain", "cluster failed to quiesce within %v of clearing all faults (in flight: %d)",
				opts.DrainTimeout, c.InFlight())
		}
		snap := c.Snapshot()
		ck.continuous(snap)
		if drained {
			ck.quiescent(c.InFlight(), snap, spouts)
		}
		rep.Checks++
		if opts.Metrics != nil {
			opts.Metrics.Checks.Add(1)
			opts.Metrics.Violations.Store(int64(len(ck.violations)))
		}
		if resume {
			c.ResumeSpouts()
		}
		return drained
	}

	targetTopology := func(ev Event) string {
		if ev.Topology != "" {
			return ev.Topology
		}
		if tops := c.Topologies(); len(tops) > 0 {
			return tops[0]
		}
		return ""
	}
	fire := func(ev Event) {
		applied := false
		switch ev.Kind {
		case KindInject:
			if id := resolveWorker(c, ev); id != "" {
				if err := c.InjectFault(id, ev.Fault); err == nil {
					applied = true
					if ev.Fault.Stall {
						if _, ok := stallSince[id]; !ok {
							stallSince[id] = time.Now()
						}
					} else {
						delete(stallSince, id)
					}
				}
			}
		case KindClear:
			if id := resolveWorker(c, ev); id != "" {
				c.ClearFault(id)
				delete(stallSince, id)
				applied = true
			}
		case KindRebalance:
			if name := targetTopology(ev); name != "" {
				if err := c.Rebalance(name, dsps.SubmitConfig{Workers: ev.Workers, Strategy: ev.Strategy}, ev.DrainTimeout); err == nil {
					applied = true
					pruneStalls()
				}
			}
		case KindKill:
			if name := targetTopology(ev); name != "" {
				if err := c.ShutdownTopology(name); err == nil {
					applied = true
					pruneStalls()
				}
			}
		case KindPause:
			c.PauseSpouts()
			applied = true
		case KindResume:
			c.ResumeSpouts()
			applied = true
		case KindCheckpoint:
			quiesce(true)
			applied = true
		case KindScaleUp:
			if name := targetTopology(ev); name != "" && ev.Component != "" {
				if err := c.ScaleUp(name, ev.Component, ev.taskDelta()); err == nil {
					applied = true
				}
			}
		case KindScaleDown:
			// Floor rejections (parallelism would drop below 1) are
			// legitimate under churn and count as skipped, like inject
			// events targeting dead workers.
			if name := targetTopology(ev); name != "" && ev.Component != "" {
				if err := c.ScaleDown(name, ev.Component, ev.taskDelta(), ev.DrainTimeout); err == nil {
					applied = true
				}
			}
		}
		if applied {
			rep.Fired++
			logf("chaos: fired %s", ev)
			if opts.Metrics != nil {
				opts.Metrics.EventsFired.Add(1)
			}
			if opts.Events != nil {
				opts.Events.Event(dsps.EventWarn, "chaos event fired", "event", fmt.Sprint(ev))
			}
		} else {
			rep.Skipped++
			logf("chaos: skipped %s", ev)
			if opts.Metrics != nil {
				opts.Metrics.EventsSkipped.Add(1)
			}
			if opts.Events != nil {
				opts.Events.Event(dsps.EventDebug, "chaos event skipped", "event", fmt.Sprint(ev))
			}
		}
	}

	i := 0
	for i < len(evs) {
		now := time.Since(ck.start)
		if evs[i].At <= now {
			fire(evs[i])
			i++
			continue
		}
		check()
		wait := evs[i].At - time.Since(ck.start)
		if wait > opts.CheckEvery {
			wait = opts.CheckEvery
		}
		if wait > 0 {
			time.Sleep(wait)
		}
	}
	rep.Drained = quiesce(false)
	rep.Elapsed = time.Since(ck.start)
	rep.Violations = ck.violations
	rep.ViolationsTruncated = ck.truncated
	if opts.Metrics != nil {
		opts.Metrics.Violations.Store(int64(len(ck.violations)))
	}
	return rep, nil
}

// resolveWorker maps an event's target to a live worker id: the explicit
// id when given (which may legitimately be dead — the caller skips it),
// otherwise the worker index modulo the live worker list.
func resolveWorker(c *dsps.Cluster, ev Event) string {
	if ev.Worker != "" {
		return ev.Worker
	}
	ids := c.WorkerIDs()
	if len(ids) == 0 {
		return ""
	}
	idx := ev.WorkerIndex
	if idx < 0 {
		idx = -idx
	}
	return ids[idx%len(ids)]
}
