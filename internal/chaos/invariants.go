package chaos

import (
	"fmt"
	"math"
	"sort"
	"time"

	"predstream/internal/dsps"
)

// Violation is one invariant breach observed during a chaos run.
type Violation struct {
	// At is the offset from the start of the run.
	At time.Duration
	// Invariant is the short name of the breached invariant.
	Invariant string
	// Detail describes the observed values.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("[%v] %s: %s", v.At.Round(time.Millisecond), v.Invariant, v.Detail)
}

// checker accumulates invariant violations over a run. It is driven from
// the runner's single goroutine.
type checker struct {
	start    time.Time
	queueCap int
	max      int

	prev       map[int]dsps.TaskStats // last snapshot, keyed by TaskID
	violations []Violation
	truncated  bool
}

func newChecker(queueCap, max int) *checker {
	return &checker{start: time.Now(), queueCap: queueCap, max: max}
}

func (ck *checker) violate(invariant, format string, args ...any) {
	if len(ck.violations) >= ck.max {
		ck.truncated = true
		return
	}
	ck.violations = append(ck.violations, Violation{
		At:        time.Since(ck.start),
		Invariant: invariant,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// continuous asserts the invariants that must hold at every instant, even
// mid-fault: counters are non-negative and monotone per task, and no input
// queue exceeds the configured bound. Task ids are cluster-global and
// never reused, so tasks that vanish (kill, rebalance) simply drop out of
// the tracked set and fresh incarnations start new monotone sequences.
func (ck *checker) continuous(snap *dsps.Snapshot) {
	cur := make(map[int]dsps.TaskStats, len(snap.Tasks))
	for _, ts := range snap.Tasks {
		cur[ts.TaskID] = ts
		if ts.Executed < 0 || ts.Emitted < 0 || ts.Acked < 0 || ts.Failed < 0 || ts.Dropped < 0 {
			ck.violate("counter-sign", "task %d (%s): negative counter in %+v", ts.TaskID, ts.Component, ts)
		}
		if ts.QueueLen > ck.queueCap {
			ck.violate("queue-bound", "task %d (%s): queue length %d exceeds capacity %d",
				ts.TaskID, ts.Component, ts.QueueLen, ck.queueCap)
		}
		p, ok := ck.prev[ts.TaskID]
		if !ok {
			continue
		}
		type mono struct {
			name       string
			prev, curr int64
		}
		for _, m := range []mono{
			{"executed", p.Executed, ts.Executed},
			{"emitted", p.Emitted, ts.Emitted},
			{"acked", p.Acked, ts.Acked},
			{"failed", p.Failed, ts.Failed},
			{"dropped", p.Dropped, ts.Dropped},
			{"execLatency", int64(p.ExecLatency), int64(ts.ExecLatency)},
			{"queueLatency", int64(p.QueueLatency), int64(ts.QueueLatency)},
			{"completeLatency", int64(p.CompleteLatency), int64(ts.CompleteLatency)},
		} {
			if m.curr < m.prev {
				ck.violate("monotone", "task %d (%s): %s went backwards %d -> %d",
					ts.TaskID, ts.Component, m.name, m.prev, m.curr)
			}
		}
	}
	ck.prev = cur
}

// quiescent asserts the invariants of a drained cluster: the acker map is
// empty, every queue is empty, and spout counters conserve tuples exactly
// (every anchored emission was acked or failed — nothing leaked, nothing
// double-counted). spouts names the components whose emissions are
// anchored roots; bolt tasks must never show spout-side counters.
func (ck *checker) quiescent(inFlight int, snap *dsps.Snapshot, spouts map[string]bool) {
	if inFlight != 0 {
		ck.violate("acker-quiescent", "%d roots still tracked after drain", inFlight)
	}
	for _, ts := range snap.Tasks {
		if ts.QueueLen != 0 {
			ck.violate("queue-drained", "task %d (%s): %d tuples still queued after drain",
				ts.TaskID, ts.Component, ts.QueueLen)
		}
		switch {
		case spouts[ts.Component]:
			if ts.Emitted != ts.Acked+ts.Failed {
				ck.violate("conservation", "spout task %d (%s): emitted %d != acked %d + failed %d",
					ts.TaskID, ts.Component, ts.Emitted, ts.Acked, ts.Failed)
			}
		case len(spouts) > 0:
			if ts.Acked != 0 || ts.Failed != 0 {
				ck.violate("conservation", "bolt task %d (%s): unexpected spout counters acked=%d failed=%d",
					ts.TaskID, ts.Component, ts.Acked, ts.Failed)
			}
		}
	}
}

// Quiesce clears every fault on the cluster, pauses its spouts, drains
// it, and runs the quiescent-state invariants: acker quiescence (no root
// still tracked), every queue empty, and exact tuple conservation (every
// anchored spout emission acked or failed, no spout-side counters on
// bolts). spoutComponents names the components whose emissions are
// anchored roots. When resume is true, spout emission is re-enabled after
// the check, so a live run can continue.
//
// This is the self-check a worker process runs when the coordinator sends
// a check-invariants command across the wire: the same invariants the
// in-process chaos runner asserts, evaluated inside the engine that owns
// the tuples. A failed drain is itself reported as a violation.
func Quiesce(c *dsps.Cluster, spoutComponents []string, drainTimeout time.Duration, resume bool) (drained bool, violations []Violation) {
	if drainTimeout <= 0 {
		drainTimeout = 2*c.Config().AckTimeout + time.Second
	}
	ck := newChecker(c.Config().QueueSize, 32)
	spouts := make(map[string]bool, len(spoutComponents))
	for _, sc := range spoutComponents {
		spouts[sc] = true
	}
	for _, w := range c.WorkerIDs() {
		c.ClearFault(w)
	}
	c.PauseSpouts()
	drained = c.Drain(drainTimeout)
	if !drained {
		ck.violate("drain", "cluster failed to quiesce within %v of clearing all faults (in flight: %d)",
			drainTimeout, c.InFlight())
	}
	snap := c.Snapshot()
	ck.continuous(snap)
	if drained {
		ck.quiescent(c.InFlight(), snap, spouts)
	}
	if resume {
		c.ResumeSpouts()
	}
	return drained, ck.violations
}

// plan asserts controller-plan sanity for one controlled edge: the split
// ratios are a distribution (each finite and non-negative, summing to 1),
// and any worker that has been continuously stalled for longer than the
// edge's detection latency receives at most MaxStalledShare of the stream
// — the paper's bypass guarantee.
func (ck *checker) plan(edge ControlledEdge, snap *dsps.Snapshot, stalledFor func(string) time.Duration) {
	ratios := edge.Grouping.Ratios()
	if ratios == nil {
		return
	}
	var sum float64
	for i, r := range ratios {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			ck.violate("plan-ratio", "edge %s: ratio[%d]=%v invalid", edge.Component, i, r)
			return
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		ck.violate("plan-sum", "edge %s: ratios %v sum to %v, want 1", edge.Component, ratios, sum)
	}
	tasks := snap.ComponentTasks(edge.Component)
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].TaskIndex < tasks[j].TaskIndex })
	if len(tasks) != len(ratios) {
		// Mid-rebalance mismatch: the grouping will re-uniform on the next
		// Select; nothing meaningful to assert against stale tasks.
		return
	}
	for i, ts := range tasks {
		d := stalledFor(ts.WorkerID)
		if d > edge.DetectionLatency && ratios[i] > edge.MaxStalledShare {
			ck.violate("plan-bypass", "edge %s: worker %s stalled for %v but task index %d still receives share %.3f (max %.3f)",
				edge.Component, ts.WorkerID, d.Round(time.Millisecond), ts.TaskIndex, ratios[i], edge.MaxStalledShare)
		}
	}
}
