package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"predstream/internal/dsps"
)

// soakTopology builds src(2) -> mid(2) -> sink(2): an anchored unbounded
// spout, a forwarding stage, and a sink behind a dynamic grouping.
// Factories build fresh instances so the topology survives rebalances.
func soakTopology(t *testing.T, name string) (*dsps.Topology, *dsps.DynamicGrouping) {
	t.Helper()
	b := dsps.NewTopologyBuilder(name)
	b.SetSpout("src", func() dsps.Spout {
		var col dsps.SpoutCollector
		n := 0
		return &dsps.SpoutFunc{
			OpenFn: func(_ dsps.TopologyContext, c dsps.SpoutCollector) { col = c },
			NextFn: func() bool {
				col.Emit(dsps.Values{n}, n)
				n++
				return true
			},
		}
	}, 2, "n")
	b.SetBolt("mid", func() dsps.Bolt {
		return &dsps.BoltFunc{ExecuteFn: func(tp *dsps.Tuple, c dsps.OutputCollector) {
			c.Emit(dsps.Values{tp.Values[0]})
		}}
	}, 2, "n").ShuffleGrouping("src")
	dg := b.SetBolt("sink", func() dsps.Bolt { return &dsps.BoltFunc{} }, 2).
		DynamicGrouping("mid")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo, dg
}

func soakCluster() *dsps.Cluster {
	return dsps.NewCluster(dsps.ClusterConfig{
		Nodes:           2,
		QueueSize:       64,
		MaxSpoutPending: 128,
		AckTimeout:      300 * time.Millisecond,
		Delayer:         dsps.NopDelayer{},
		Seed:            1,
	})
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Events: 20, Horizon: time.Second, Workers: 4, Stall: true, Rebalance: true, Kill: true, Checkpoint: true, Pause: true}
	a := Generate(99, cfg)
	b := Generate(99, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different scripts")
	}
	c := Generate(100, cfg)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical scripts")
	}
	if a.Seed != 99 {
		t.Fatalf("seed not recorded: %d", a.Seed)
	}
	last := time.Duration(-1)
	for _, ev := range a.Events {
		if ev.At < last {
			t.Fatalf("events not sorted: %v after %v", ev.At, last)
		}
		last = ev.At
		if ev.At >= 2*cfg.Horizon {
			t.Fatalf("event at %v beyond horizon %v", ev.At, cfg.Horizon)
		}
		if ev.Kind == KindInject {
			if f := ev.Fault; f.Slowdown < 0 || (f.Slowdown > 0 && f.Slowdown < 1) ||
				f.DropProb < 0 || f.DropProb > 1 || f.FailProb < 0 || f.FailProb > 1 {
				t.Fatalf("generated invalid fault %+v", f)
			}
		}
	}
	if a.Horizon() <= 0 {
		t.Fatal("horizon not positive")
	}
}

func TestScriptedRunHoldsInvariants(t *testing.T) {
	topo, _ := soakTopology(t, "scripted")
	c := soakCluster()
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	script := Script{Seed: 11, Events: []Event{
		{At: ms(10), Kind: KindInject, WorkerIndex: 0, Fault: dsps.Fault{Slowdown: 4}},
		{At: ms(30), Kind: KindInject, WorkerIndex: 1, Fault: dsps.Fault{DropProb: 0.3}},
		{At: ms(60), Kind: KindInject, WorkerIndex: 2, Fault: dsps.Fault{FailProb: 0.3}},
		{At: ms(120), Kind: KindClear, WorkerIndex: 1},
		{At: ms(150), Kind: KindCheckpoint},
		{At: ms(180), Kind: KindInject, WorkerIndex: 0, Fault: dsps.Fault{Stall: true}},
		{At: ms(300), Kind: KindClear, WorkerIndex: 0},
	}}
	rep, err := Run(c, script, Options{SpoutComponents: topo.Spouts()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("invariants violated:\n%s", rep)
	}
	if rep.Fired != len(script.Events) || rep.Skipped != 0 {
		t.Fatalf("fired=%d skipped=%d, want all %d fired", rep.Fired, rep.Skipped, len(script.Events))
	}
	if !rep.Drained {
		t.Fatal("final drain failed")
	}
	if rep.Checks == 0 {
		t.Fatal("no invariant checks ran")
	}
	if rep.Err() != nil {
		t.Fatalf("Err on clean run: %v", rep.Err())
	}
}

func TestGeneratedRunHoldsInvariants(t *testing.T) {
	topo, _ := soakTopology(t, "generated")
	c := soakCluster()
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	script := Generate(3, GenConfig{
		Events: 10, Horizon: 500 * time.Millisecond, Workers: 4,
		Stall: true, Rebalance: true, Checkpoint: true, Pause: true,
	})
	rep, err := Run(c, script, Options{SpoutComponents: topo.Spouts()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("invariants violated:\n%s", rep)
	}
}

func TestUnknownWorkerEventSkipped(t *testing.T) {
	topo, _ := soakTopology(t, "skipped")
	c := soakCluster()
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	script := Script{Seed: 1, Events: []Event{
		{At: 5 * time.Millisecond, Kind: KindInject, Worker: "no-such-worker", Fault: dsps.Fault{Slowdown: 2}},
		{At: 10 * time.Millisecond, Kind: KindKill, Topology: "not-running"},
	}}
	rep, err := Run(c, script, Options{SpoutComponents: topo.Spouts()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 2 || rep.Fired != 0 {
		t.Fatalf("fired=%d skipped=%d, want 0/2", rep.Fired, rep.Skipped)
	}
	if !rep.OK() {
		t.Fatalf("skipped events must not violate invariants:\n%s", rep)
	}
}

// TestPlanBypassViolationReportsSeed drives the plan-bypass invariant to a
// deliberate failure: a dynamic edge with no controller attached keeps
// routing to a stalled worker, and the report must carry the reproducing
// seed.
func TestPlanBypassViolationReportsSeed(t *testing.T) {
	topo, dg := soakTopology(t, "bypassfail")
	c := soakCluster()
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := dg.SetRatios([]float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	script := Script{Seed: 99, Events: []Event{
		{At: 10 * time.Millisecond, Kind: KindInject, WorkerIndex: 0, Fault: dsps.Fault{Stall: true}},
		{At: 300 * time.Millisecond, Kind: KindClear, WorkerIndex: 1},
	}}
	rep, err := Run(c, script, Options{
		SpoutComponents: topo.Spouts(),
		Controlled: []ControlledEdge{{
			Component: "sink", Grouping: dg,
			DetectionLatency: 100 * time.Millisecond, MaxStalledShare: 0.01,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("expected a plan-bypass violation with no controller steering the edge")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Invariant == "plan-bypass" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no plan-bypass violation in:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "seed=99") {
		t.Fatalf("report does not name the reproducing seed:\n%s", rep)
	}
	if rep.Err() == nil || !strings.Contains(rep.Err().Error(), "seed 99") {
		t.Fatalf("Err does not name the reproducing seed: %v", rep.Err())
	}
}

func TestCheckerMonotoneAndBounds(t *testing.T) {
	ck := newChecker(64, 32)
	ck.continuous(&dsps.Snapshot{Tasks: []dsps.TaskStats{
		{TaskID: 1, Component: "a", Executed: 10, Emitted: 10},
	}})
	ck.continuous(&dsps.Snapshot{Tasks: []dsps.TaskStats{
		{TaskID: 1, Component: "a", Executed: 5, Emitted: 10, QueueLen: 100},
	}})
	var mono, queue bool
	for _, v := range ck.violations {
		switch v.Invariant {
		case "monotone":
			mono = true
		case "queue-bound":
			queue = true
		}
	}
	if !mono || !queue {
		t.Fatalf("missing violations, got %v", ck.violations)
	}
}

func TestCheckerQuiescent(t *testing.T) {
	ck := newChecker(64, 32)
	snap := &dsps.Snapshot{Tasks: []dsps.TaskStats{
		{TaskID: 0, Component: "src", Emitted: 10, Acked: 7, Failed: 2},
		{TaskID: 1, Component: "sink", QueueLen: 3},
		{TaskID: 2, Component: "sink", Acked: 1},
	}}
	ck.quiescent(4, snap, map[string]bool{"src": true})
	want := map[string]bool{"acker-quiescent": false, "conservation": false, "queue-drained": false}
	conservations := 0
	for _, v := range ck.violations {
		if v.Invariant == "conservation" {
			conservations++
		}
		want[v.Invariant] = true
	}
	for inv, seen := range want {
		if !seen {
			t.Fatalf("missing %s violation in %v", inv, ck.violations)
		}
	}
	// Both the leaking spout and the bolt with spout counters must report.
	if conservations != 2 {
		t.Fatalf("conservation violations = %d, want 2", conservations)
	}
}

func TestCheckerViolationCap(t *testing.T) {
	ck := newChecker(0, 2)
	snap := &dsps.Snapshot{Tasks: []dsps.TaskStats{
		{TaskID: 1, QueueLen: 5}, {TaskID: 2, QueueLen: 5}, {TaskID: 3, QueueLen: 5},
	}}
	ck.continuous(snap)
	if len(ck.violations) != 2 || !ck.truncated {
		t.Fatalf("cap not enforced: %d violations, truncated=%v", len(ck.violations), ck.truncated)
	}
}

// TestScaleEventsHoldInvariants runs a generated timeline with scale
// events enabled against the soak topology: worker faults and live
// scale-up/scale-down interleave, and the conservation, monotonicity, and
// quiescence invariants must all survive the executor churn.
func TestScaleEventsHoldInvariants(t *testing.T) {
	topo, _ := soakTopology(t, "scaled")
	c := soakCluster()
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	script := Generate(7, GenConfig{
		Events: 12, Horizon: 600 * time.Millisecond, Workers: 4,
		Stall: true, Checkpoint: true,
		Scale: true, ScaleComponents: []string{"mid"},
	})
	var ups, downs int
	for _, ev := range script.Events {
		switch ev.Kind {
		case KindScaleUp:
			ups++
		case KindScaleDown:
			downs++
		}
	}
	if ups == 0 || downs == 0 {
		t.Fatalf("scale-enabled schedule carries ups=%d downs=%d, want both > 0", ups, downs)
	}
	rep, err := Run(c, script, Options{SpoutComponents: topo.Spouts()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("invariants violated under scale churn:\n%s", rep)
	}
	if !rep.Drained {
		t.Fatal("final drain failed after scale churn")
	}
	snap := c.Snapshot()
	if len(snap.Scale) != 1 || snap.Scale[0].Ups == 0 {
		t.Fatalf("no scale-ups recorded: %+v", snap.Scale)
	}
}

// TestScaleFloorSkipped verifies a scale-down below parallelism 1 is
// rejected by the engine and counted as skipped, not a run failure.
func TestScaleFloorSkipped(t *testing.T) {
	topo, _ := soakTopology(t, "floor")
	c := soakCluster()
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	script := Script{Seed: 5, Events: []Event{
		{At: 10 * time.Millisecond, Kind: KindScaleDown, Component: "mid", Tasks: 2, DrainTimeout: 100 * time.Millisecond},
	}}
	rep, err := Run(c, script, Options{SpoutComponents: topo.Spouts()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 1 || rep.Fired != 0 {
		t.Fatalf("fired=%d skipped=%d, want 0/1", rep.Fired, rep.Skipped)
	}
	if !rep.OK() {
		t.Fatalf("floor rejection must not violate invariants:\n%s", rep)
	}
}
