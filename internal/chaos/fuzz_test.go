package chaos

import (
	"testing"
	"time"

	"predstream/internal/dsps"
)

// fuzzHorizon bounds decoded schedules so each fuzz iteration stays fast.
const fuzzHorizon = 240 * time.Millisecond

// decodeSchedule turns arbitrary bytes into a valid chaos script: four
// bytes per event (kind, worker, time, parameter), at most eight events.
// Every decodable input is a schedule the engine must survive — the fuzzer
// explores orderings and overlaps, not crashes in the decoder.
func decodeSchedule(data []byte) Script {
	var evs []Event
	for len(data) >= 4 && len(evs) < 8 {
		kind, worker, at, param := data[0], data[1], data[2], data[3]
		data = data[4:]
		ev := Event{
			At:          fuzzHorizon * time.Duration(at) / 256,
			WorkerIndex: int(worker % 4),
		}
		switch kind % 8 {
		case 0:
			ev.Kind = KindInject
			ev.Fault = dsps.Fault{Slowdown: 1 + float64(param%7)}
		case 1:
			ev.Kind = KindInject
			ev.Fault = dsps.Fault{DropProb: float64(param) / 255 * 0.9}
		case 2:
			ev.Kind = KindInject
			ev.Fault = dsps.Fault{FailProb: float64(param) / 255 * 0.9}
		case 3:
			ev.Kind = KindInject
			ev.Fault = dsps.Fault{Stall: true}
		case 4, 5:
			ev.Kind = KindClear
		case 6:
			ev.Kind = KindPause
		default:
			ev.Kind = KindResume
		}
		evs = append(evs, ev)
	}
	s := Script{Seed: int64(len(evs)), Events: evs}
	s.Events = s.sorted()
	return s
}

// FuzzChaosSchedule decodes arbitrary bytes into a fault schedule, replays
// it against a live topology, and fails if any engine invariant breaks.
// This is the tentpole property: the engine conserves tuples and quiesces
// under every fault interleaving, not just the scripted ones.
func FuzzChaosSchedule(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x10, 0x04, 0x04, 0x00, 0x80, 0x00}) // slowdown then clear
	f.Add([]byte{0x01, 0x01, 0x08, 0xff, 0x02, 0x02, 0x20, 0x80}) // drop + fail overlap
	f.Add([]byte{0x03, 0x00, 0x04, 0x00, 0x06, 0x00, 0x40, 0x00}) // stall then pause
	f.Add([]byte{0x07, 0x00, 0x01, 0x00})                         // lone resume
	f.Fuzz(func(t *testing.T, data []byte) {
		script := decodeSchedule(data)
		if len(script.Events) == 0 {
			return
		}
		topo, _ := soakTopology(t, "fuzz")
		c := dsps.NewCluster(dsps.ClusterConfig{
			Nodes:           1,
			QueueSize:       32,
			MaxSpoutPending: 64,
			AckTimeout:      120 * time.Millisecond,
			Delayer:         dsps.NopDelayer{},
			Seed:            1,
		})
		if err := c.Submit(topo, dsps.SubmitConfig{Workers: 2}); err != nil {
			t.Fatal(err)
		}
		defer c.Shutdown()
		rep, err := Run(c, script, Options{
			CheckEvery:      10 * time.Millisecond,
			SpoutComponents: topo.Spouts(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("invariants violated under fuzzed schedule %v:\n%s", script.Events, rep)
		}
	})
}
