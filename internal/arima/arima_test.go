package arima

import (
	"math"
	"math/rand"
	"testing"

	"predstream/internal/timeseries"
)

// genAR1 simulates x_t = c + phi·x_{t-1} + e_t.
func genAR1(n int, c, phi, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	xs[0] = c / (1 - phi)
	for i := 1; i < n; i++ {
		xs[i] = c + phi*xs[i-1] + noise*rng.NormFloat64()
	}
	return xs
}

// genMA1 simulates x_t = mu + e_t + theta·e_{t-1}.
func genMA1(n int, mu, theta, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	prev := 0.0
	for i := 0; i < n; i++ {
		e := noise * rng.NormFloat64()
		xs[i] = mu + e + theta*prev
		prev = e
	}
	return xs
}

func TestNewPanics(t *testing.T) {
	for _, order := range [][3]int{{-1, 0, 1}, {0, -1, 1}, {1, 0, -1}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", order)
				}
			}()
			New(order[0], order[1], order[2])
		}()
	}
}

func TestFitRecoversAR1Coefficient(t *testing.T) {
	xs := genAR1(2000, 1.0, 0.7, 0.5, 1)
	m := New(1, 0, 0)
	if err := m.Fit(timeseries.FromTargets(xs)); err != nil {
		t.Fatal(err)
	}
	_, phi, _ := m.Coefficients()
	if math.Abs(phi[0]-0.7) > 0.08 {
		t.Fatalf("phi = %v want ≈0.7", phi[0])
	}
}

func TestFitRecoversMA1Coefficient(t *testing.T) {
	xs := genMA1(4000, 0, 0.6, 1.0, 2)
	m := New(0, 0, 1)
	if err := m.Fit(timeseries.FromTargets(xs)); err != nil {
		t.Fatal(err)
	}
	_, _, theta := m.Coefficients()
	if math.Abs(theta[0]-0.6) > 0.12 {
		t.Fatalf("theta = %v want ≈0.6", theta[0])
	}
}

func TestForecastAR1BeatsNaiveOnMeanReversion(t *testing.T) {
	xs := genAR1(1200, 0, 0.9, 1.0, 3)
	series := timeseries.FromTargets(xs)
	res, err := timeseries.WalkForward(New(1, 0, 0), series, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := timeseries.WalkForward(&timeseries.NaivePredictor{}, series, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.RMSE >= naive.Report.RMSE {
		t.Fatalf("ARIMA RMSE %v should beat naive %v on AR(1)", res.Report.RMSE, naive.Report.RMSE)
	}
}

func TestDifferencingHandlesLinearTrend(t *testing.T) {
	// x_t = 2t + AR(1) noise: d=1 should forecast the trend accurately.
	base := genAR1(600, 0, 0.5, 0.3, 4)
	xs := make([]float64, len(base))
	for i := range xs {
		xs[i] = 2*float64(i) + base[i]
	}
	m := New(1, 1, 0)
	if err := m.Fit(timeseries.FromTargets(xs[:500])); err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(xs[:500], 3)
	if err != nil {
		t.Fatal(err)
	}
	for h, f := range fc {
		want := 2 * float64(500+h)
		if math.Abs(f-want) > 5 {
			t.Fatalf("h=%d forecast %v want ≈%v", h+1, f, want)
		}
	}
}

func TestClampInvertible(t *testing.T) {
	got := clampInvertible([]float64{0.5, 1.7, -2.3})
	if got[0] != 0.5 || got[1] != 0.98 || got[2] != -0.98 {
		t.Fatalf("clamp = %v", got)
	}
}

func TestMAForecastsStayFiniteOverLongContexts(t *testing.T) {
	// Regression test: a Hannan–Rissanen fit can land on |θ| ≥ 1, and the
	// residual-reconstruction filter then diverges exponentially over a
	// long walk-forward context. The invertibility clamp must keep every
	// one-step forecast finite and sane regardless of which series it is
	// asked to fit.
	for seed := int64(0); seed < 6; seed++ {
		xs := genMA1(400, 5, 0.95, 1.0, seed)
		m := New(1, 0, 2)
		if err := m.Fit(timeseries.FromTargets(xs[:250])); err != nil {
			t.Fatal(err)
		}
		_, _, theta := m.Coefficients()
		for _, v := range theta {
			if v >= 1 || v <= -1 {
				t.Fatalf("seed %d: non-invertible theta %v survived", seed, theta)
			}
		}
		for i := 250; i < len(xs); i++ {
			fc, err := m.Forecast(xs[:i], 1)
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(fc[0]) || math.Abs(fc[0]) > 1e6 {
				t.Fatalf("seed %d: forecast exploded at %d: %v", seed, i, fc[0])
			}
		}
	}
}

func TestForecastErrors(t *testing.T) {
	m := New(1, 0, 1)
	if _, err := m.Forecast([]float64{1, 2, 3}, 1); err != timeseries.ErrNotFitted {
		t.Fatalf("expected ErrNotFitted, got %v", err)
	}
	xs := genAR1(300, 0, 0.5, 1, 5)
	if err := m.Fit(timeseries.FromTargets(xs)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(xs, 0); err == nil {
		t.Fatal("steps=0 should error")
	}
	if _, err := m.Forecast(xs[:1], 1); err != timeseries.ErrShortContext {
		t.Fatalf("expected ErrShortContext, got %v", err)
	}
}

func TestFitRejectsShortSeries(t *testing.T) {
	m := New(2, 0, 2)
	if err := m.Fit(timeseries.FromTargets([]float64{1, 2, 3, 4, 5})); err == nil {
		t.Fatal("short series should fail to fit")
	}
}

func TestPredictMatchesForecast(t *testing.T) {
	xs := genAR1(400, 1, 0.6, 0.5, 6)
	m := New(1, 0, 0)
	series := timeseries.FromTargets(xs)
	if err := m.Fit(series); err != nil {
		t.Fatal(err)
	}
	p1, err := m.Predict(series, 2)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != fc[1] {
		t.Fatalf("Predict %v != Forecast[1] %v", p1, fc[1])
	}
}

func TestMinContext(t *testing.T) {
	if got := New(2, 1, 3).MinContext(); got != 5 {
		t.Fatalf("MinContext = %d want 5", got)
	}
}

func TestSelectOrderPrefersCorrectModelClass(t *testing.T) {
	xs := genAR1(800, 0, 0.8, 1.0, 7)
	m, err := SelectOrder(timeseries.FromTargets(xs), 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// AIC should not pick a differenced model for a stationary AR(1).
	if m.D != 0 {
		t.Fatalf("selected d=%d for stationary series", m.D)
	}
	if m.P == 0 {
		t.Fatalf("selected p=0 for AR series (got q=%d)", m.Q)
	}
}

func TestSelectOrderErrors(t *testing.T) {
	if _, err := SelectOrder(timeseries.FromTargets([]float64{1, 2}), 1, 0, 1); err == nil {
		t.Fatal("unfittable series should error")
	}
	if _, err := SelectOrder(timeseries.FromTargets(nil), -1, 0, 0); err == nil {
		t.Fatal("negative max order should error")
	}
}

func BenchmarkFitAR2MA1(b *testing.B) {
	xs := genAR1(1000, 0, 0.7, 1, 8)
	series := timeseries.FromTargets(xs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(2, 0, 1)
		if err := m.Fit(series); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForecast(b *testing.B) {
	xs := genAR1(1000, 0, 0.7, 1, 9)
	m := New(2, 0, 1)
	if err := m.Fit(timeseries.FromTargets(xs)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Forecast(xs, 5); err != nil {
			b.Fatal(err)
		}
	}
}
