// Package arima implements ARIMA(p,d,q) forecasting, one of the paper's
// two prediction baselines. Estimation uses the Hannan–Rissanen two-stage
// procedure: a long autoregression supplies innovation estimates, then the
// ARMA coefficients come from a single least-squares regression on lagged
// values and lagged innovations. That keeps the fit fast, deterministic and
// dependency-free while matching statsmodels closely on the well-behaved
// series the engine produces.
package arima

import (
	"fmt"

	"predstream/internal/mat"
	"predstream/internal/stats"
	"predstream/internal/timeseries"
)

// Model is an ARIMA(p,d,q) model with an intercept. The zero value is not
// usable; construct with New.
type Model struct {
	P, D, Q int

	// Fitted parameters on the d-times differenced series.
	phi       []float64 // AR coefficients, lag 1..P
	theta     []float64 // MA coefficients, lag 1..Q
	intercept float64
	fitted    bool
}

// New returns an unfitted ARIMA(p,d,q) model. It panics on negative orders
// because those are construction bugs, not data conditions.
func New(p, d, q int) *Model {
	if p < 0 || d < 0 || q < 0 {
		panic(fmt.Sprintf("arima: negative order (%d,%d,%d)", p, d, q))
	}
	if p == 0 && q == 0 {
		panic("arima: p and q cannot both be zero")
	}
	return &Model{P: p, D: d, Q: q}
}

// Name implements timeseries.Predictor.
func (m *Model) Name() string { return "ARIMA" }

// MinContext implements timeseries.Predictor: enough points to difference
// and fill every lag.
func (m *Model) MinContext() int {
	lag := m.P
	if m.Q > lag {
		lag = m.Q
	}
	return m.D + lag + 1
}

// longARLag returns the order of the stage-1 long autoregression.
func (m *Model) longARLag(n int) int {
	lag := 2 * (m.P + m.Q)
	if lag < 4 {
		lag = 4
	}
	if lag > n/4 {
		lag = n / 4
	}
	if lag < 1 {
		lag = 1
	}
	return lag
}

// Fit estimates the model on the target series.
func (m *Model) Fit(train *timeseries.Series) error {
	y, err := stats.Diff(train.Targets(), m.D)
	if err != nil {
		return fmt.Errorf("arima: %w", err)
	}
	need := 4 * (m.P + m.Q + 1)
	if len(y) < need {
		return fmt.Errorf("arima: %d differenced points, need at least %d for (%d,%d,%d)", len(y), need, m.P, m.D, m.Q)
	}

	// Stage 1: long AR to estimate innovations.
	resid, err := longARResiduals(y, m.longARLag(len(y)))
	if err != nil {
		return fmt.Errorf("arima: stage-1 AR: %w", err)
	}

	// Stage 2: regress y_t on [1, y_{t-1..t-P}, e_{t-1..t-Q}].
	maxLag := m.P
	if m.Q > maxLag {
		maxLag = m.Q
	}
	start := maxLag
	if start < 1 {
		start = 1
	}
	rows := len(y) - start
	cols := 1 + m.P + m.Q
	x := mat.New(rows, cols)
	target := make([]float64, rows)
	for i := 0; i < rows; i++ {
		t := start + i
		x.Set(i, 0, 1)
		for lag := 1; lag <= m.P; lag++ {
			x.Set(i, lag, y[t-lag])
		}
		for lag := 1; lag <= m.Q; lag++ {
			x.Set(i, m.P+lag, resid[t-lag])
		}
		target[i] = y[t]
	}
	beta, err := mat.LeastSquares(x, target, 1e-8)
	if err != nil {
		return fmt.Errorf("arima: stage-2 regression: %w", err)
	}
	m.intercept = beta[0]
	m.phi = beta[1 : 1+m.P]
	m.theta = clampInvertible(beta[1+m.P:])
	m.fitted = true
	return nil
}

// clampInvertible bounds MA coefficients to magnitude < 1. Hannan–Rissanen
// can estimate non-invertible MA terms; the residual-reconstruction filter
// then diverges exponentially over long contexts (resid_t depends on
// -θ·resid_{t-1}). Component-wise clamping is exact for q=1 and a safe
// approximation for the small q used here.
func clampInvertible(theta []float64) []float64 {
	const limit = 0.98
	for i, v := range theta {
		if v > limit {
			theta[i] = limit
		} else if v < -limit {
			theta[i] = -limit
		}
	}
	return theta
}

// longARResiduals fits AR(lag) by OLS and returns the residual series
// aligned with y (the first lag entries are zero, the standard HR
// convention).
func longARResiduals(y []float64, lag int) ([]float64, error) {
	rows := len(y) - lag
	if rows <= lag+1 {
		return nil, fmt.Errorf("series too short for long-AR lag %d", lag)
	}
	x := mat.New(rows, lag+1)
	target := make([]float64, rows)
	for i := 0; i < rows; i++ {
		t := lag + i
		x.Set(i, 0, 1)
		for k := 1; k <= lag; k++ {
			x.Set(i, k, y[t-k])
		}
		target[i] = y[t]
	}
	beta, err := mat.LeastSquares(x, target, 1e-8)
	if err != nil {
		return nil, err
	}
	resid := make([]float64, len(y))
	for t := lag; t < len(y); t++ {
		pred := beta[0]
		for k := 1; k <= lag; k++ {
			pred += beta[k] * y[t-k]
		}
		resid[t] = y[t] - pred
	}
	return resid, nil
}

// filterResiduals reconstructs innovation estimates on a context window by
// running the fitted model forward over it.
func (m *Model) filterResiduals(y []float64) []float64 {
	resid := make([]float64, len(y))
	maxLag := m.P
	if m.Q > maxLag {
		maxLag = m.Q
	}
	for t := maxLag; t < len(y); t++ {
		pred := m.intercept
		for lag := 1; lag <= m.P; lag++ {
			pred += m.phi[lag-1] * y[t-lag]
		}
		for lag := 1; lag <= m.Q; lag++ {
			pred += m.theta[lag-1] * resid[t-lag]
		}
		resid[t] = y[t] - pred
	}
	return resid
}

// Forecast returns forecasts for 1..steps ahead of the end of the context
// target series.
func (m *Model) Forecast(context []float64, steps int) ([]float64, error) {
	if !m.fitted {
		return nil, timeseries.ErrNotFitted
	}
	if steps <= 0 {
		return nil, fmt.Errorf("arima: non-positive steps %d", steps)
	}
	if len(context) < m.MinContext() {
		return nil, timeseries.ErrShortContext
	}
	y, err := stats.Diff(context, m.D)
	if err != nil {
		return nil, fmt.Errorf("arima: %w", err)
	}
	resid := m.filterResiduals(y)

	// Extend y and resid with forecasts; future innovations are zero.
	ext := mat.CloneVec(y)
	extResid := mat.CloneVec(resid)
	diffFc := make([]float64, steps)
	for s := 0; s < steps; s++ {
		t := len(ext)
		pred := m.intercept
		for lag := 1; lag <= m.P; lag++ {
			pred += m.phi[lag-1] * ext[t-lag]
		}
		for lag := 1; lag <= m.Q; lag++ {
			idx := t - lag
			if idx < len(extResid) {
				pred += m.theta[lag-1] * extResid[idx]
			}
		}
		ext = append(ext, pred)
		extResid = append(extResid, 0)
		diffFc[s] = pred
	}

	// Undo differencing d times, each using the appropriate last level.
	fc := diffFc
	for k := m.D; k >= 1; k-- {
		// Level series after k-1 differences; its last value anchors the
		// integration of the k-times-differenced forecasts.
		lvl, err := stats.Diff(context, k-1)
		if err != nil {
			return nil, err
		}
		fc = stats.Undiff(lvl[len(lvl)-1], fc)
	}
	return fc, nil
}

// Predict implements timeseries.Predictor.
func (m *Model) Predict(recent *timeseries.Series, horizon int) (float64, error) {
	fc, err := m.Forecast(recent.Targets(), horizon)
	if err != nil {
		return 0, err
	}
	return fc[horizon-1], nil
}

// Coefficients returns the fitted intercept, AR and MA coefficients.
func (m *Model) Coefficients() (intercept float64, phi, theta []float64) {
	return m.intercept, mat.CloneVec(m.phi), mat.CloneVec(m.theta)
}
