package arima

import (
	"fmt"

	"predstream/internal/mat"
	"predstream/internal/stats"
	"predstream/internal/timeseries"
)

// SeasonalModel is a SARIMA(p,d,q)(P,D,0)_s model: the non-seasonal ARIMA
// core plus seasonal differencing of order D at period s and seasonal AR
// terms at lags s, 2s, …, P·s. Seasonal MA terms are omitted (they add
// little on the periodic load traces this repo produces and keep the
// Hannan–Rissanen regression well-conditioned).
//
// It is an extension beyond the paper's plain-ARIMA baseline, fitted with
// the same two-stage procedure.
type SeasonalModel struct {
	P, D, Q int // non-seasonal orders
	PS, DS  int // seasonal AR order and seasonal differencing order
	S       int // seasonal period in observations

	phi       []float64 // non-seasonal AR, lags 1..P
	sphi      []float64 // seasonal AR, lags S..PS·S
	theta     []float64 // MA, lags 1..Q
	intercept float64
	fitted    bool
}

// NewSeasonal returns an unfitted SARIMA(p,d,q)(ps,ds,0)_s model. It
// panics on invalid orders (construction bugs).
func NewSeasonal(p, d, q, ps, ds, s int) *SeasonalModel {
	if p < 0 || d < 0 || q < 0 || ps < 0 || ds < 0 {
		panic(fmt.Sprintf("arima: negative seasonal order (%d,%d,%d)(%d,%d)_%d", p, d, q, ps, ds, s))
	}
	if (ps > 0 || ds > 0) && s < 2 {
		panic(fmt.Sprintf("arima: seasonal terms require period >= 2, got %d", s))
	}
	if p == 0 && q == 0 && ps == 0 {
		panic("arima: model has no AR, MA or seasonal AR terms")
	}
	return &SeasonalModel{P: p, D: d, Q: q, PS: ps, DS: ds, S: s}
}

// Name implements timeseries.Predictor.
func (m *SeasonalModel) Name() string { return "SARIMA" }

// maxLag returns the deepest lag the stage-2 regression touches.
func (m *SeasonalModel) maxLag() int {
	lag := m.P
	if m.Q > lag {
		lag = m.Q
	}
	if s := m.PS * m.S; s > lag {
		lag = s
	}
	return lag
}

// MinContext implements timeseries.Predictor.
func (m *SeasonalModel) MinContext() int {
	return m.D + m.DS*m.S + m.maxLag() + 1
}

// seasonalDiff applies D_s passes of lag-s differencing.
func seasonalDiff(xs []float64, s, d int) ([]float64, error) {
	out := append([]float64(nil), xs...)
	for k := 0; k < d; k++ {
		if len(out) <= s {
			return nil, fmt.Errorf("arima: series of %d too short for seasonal differencing at period %d", len(xs), s)
		}
		next := make([]float64, len(out)-s)
		for i := s; i < len(out); i++ {
			next[i-s] = out[i] - out[i-s]
		}
		out = next
	}
	return out, nil
}

// transform applies the model's full differencing (regular d, then
// seasonal DS at period S).
func (m *SeasonalModel) transform(targets []float64) ([]float64, error) {
	y, err := stats.Diff(targets, m.D)
	if err != nil {
		return nil, err
	}
	return seasonalDiff(y, m.S, m.DS)
}

// Fit estimates the model on the target series.
func (m *SeasonalModel) Fit(train *timeseries.Series) error {
	y, err := m.transform(train.Targets())
	if err != nil {
		return fmt.Errorf("arima: %w", err)
	}
	need := 4 * (m.P + m.Q + m.PS + 1)
	if m.PS > 0 {
		need += m.PS * m.S
	}
	if len(y) < need {
		return fmt.Errorf("arima: %d transformed points, need at least %d", len(y), need)
	}

	// Stage 1: long AR residuals (shared with the non-seasonal model).
	longLag := 2 * (m.P + m.Q)
	if s := m.PS * m.S; s > longLag {
		longLag = s + 2
	}
	if longLag < 4 {
		longLag = 4
	}
	if longLag > len(y)/3 {
		longLag = len(y) / 3
	}
	resid, err := longARResiduals(y, longLag)
	if err != nil {
		return fmt.Errorf("arima: stage-1 AR: %w", err)
	}

	start := m.maxLag()
	rows := len(y) - start
	cols := 1 + m.P + m.PS + m.Q
	if rows < cols+2 {
		return fmt.Errorf("arima: only %d usable rows for %d coefficients", rows, cols)
	}
	x := mat.New(rows, cols)
	target := make([]float64, rows)
	for i := 0; i < rows; i++ {
		t := start + i
		col := 0
		x.Set(i, col, 1)
		col++
		for lag := 1; lag <= m.P; lag++ {
			x.Set(i, col, y[t-lag])
			col++
		}
		for k := 1; k <= m.PS; k++ {
			x.Set(i, col, y[t-k*m.S])
			col++
		}
		for lag := 1; lag <= m.Q; lag++ {
			x.Set(i, col, resid[t-lag])
			col++
		}
		target[i] = y[t]
	}
	beta, err := mat.LeastSquares(x, target, 1e-8)
	if err != nil {
		return fmt.Errorf("arima: stage-2 regression: %w", err)
	}
	m.intercept = beta[0]
	m.phi = beta[1 : 1+m.P]
	m.sphi = beta[1+m.P : 1+m.P+m.PS]
	m.theta = clampInvertible(beta[1+m.P+m.PS:])
	m.fitted = true
	return nil
}

// predictOne computes the one-step linear prediction at index t over
// series y with residuals resid (entries beyond len(resid) read as 0).
func (m *SeasonalModel) predictOne(y, resid []float64, t int) float64 {
	pred := m.intercept
	for lag := 1; lag <= m.P; lag++ {
		pred += m.phi[lag-1] * y[t-lag]
	}
	for k := 1; k <= m.PS; k++ {
		pred += m.sphi[k-1] * y[t-k*m.S]
	}
	for lag := 1; lag <= m.Q; lag++ {
		if idx := t - lag; idx < len(resid) {
			pred += m.theta[lag-1] * resid[idx]
		}
	}
	return pred
}

// Forecast returns forecasts for 1..steps ahead of the context series.
func (m *SeasonalModel) Forecast(context []float64, steps int) ([]float64, error) {
	if !m.fitted {
		return nil, timeseries.ErrNotFitted
	}
	if steps <= 0 {
		return nil, fmt.Errorf("arima: non-positive steps %d", steps)
	}
	if len(context) < m.MinContext() {
		return nil, timeseries.ErrShortContext
	}
	y, err := m.transform(context)
	if err != nil {
		return nil, fmt.Errorf("arima: %w", err)
	}
	// Reconstruct in-sample residuals with the fitted coefficients.
	resid := make([]float64, len(y))
	for t := m.maxLag(); t < len(y); t++ {
		resid[t] = y[t] - m.predictOne(y, resid, t)
	}
	ext := append([]float64(nil), y...)
	fc := make([]float64, steps)
	for s := 0; s < steps; s++ {
		pred := m.predictOne(ext, resid, len(ext))
		ext = append(ext, pred)
		fc[s] = pred
	}

	// Invert seasonal differencing (DS passes), then regular (D passes).
	for k := m.DS; k >= 1; k-- {
		base, err := stats.Diff(context, m.D)
		if err != nil {
			return nil, err
		}
		base, err = seasonalDiff(base, m.S, k-1)
		if err != nil {
			return nil, err
		}
		// fc[i] forecasts the k-times seasonally differenced series; the
		// level at horizon i is fc[i] + level at (i - S) where negative
		// offsets read from the tail of base.
		levels := make([]float64, len(fc))
		for i := range fc {
			var prior float64
			if off := i - m.S; off >= 0 {
				prior = levels[off]
			} else {
				prior = base[len(base)+off]
			}
			levels[i] = fc[i] + prior
		}
		fc = levels
	}
	for k := m.D; k >= 1; k-- {
		lvl, err := stats.Diff(context, k-1)
		if err != nil {
			return nil, err
		}
		fc = stats.Undiff(lvl[len(lvl)-1], fc)
	}
	return fc, nil
}

// Predict implements timeseries.Predictor.
func (m *SeasonalModel) Predict(recent *timeseries.Series, horizon int) (float64, error) {
	fc, err := m.Forecast(recent.Targets(), horizon)
	if err != nil {
		return 0, err
	}
	return fc[horizon-1], nil
}

// Coefficients returns the fitted intercept and coefficient groups.
func (m *SeasonalModel) Coefficients() (intercept float64, phi, seasonalPhi, theta []float64) {
	return m.intercept, mat.CloneVec(m.phi), mat.CloneVec(m.sphi), mat.CloneVec(m.theta)
}
