package arima

import (
	"math"
	"math/rand"
	"testing"

	"predstream/internal/timeseries"
)

// genSeasonalAR simulates x_t = phi·x_{t-s} + e_t.
func genSeasonalAR(n, s int, phi, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		e := noise * rng.NormFloat64()
		if i >= s {
			xs[i] = phi*xs[i-s] + e
		} else {
			xs[i] = e
		}
	}
	return xs
}

// genSeasonalPattern simulates a deterministic seasonal pattern plus
// AR(1) noise.
func genSeasonalPattern(n, s int, amp, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ar := 0.0
	for i := 0; i < n; i++ {
		ar = 0.5*ar + noise*rng.NormFloat64()
		xs[i] = amp*math.Sin(2*math.Pi*float64(i)/float64(s)) + ar
	}
	return xs
}

func TestNewSeasonalPanics(t *testing.T) {
	cases := []func(){
		func() { NewSeasonal(-1, 0, 0, 1, 0, 4) },
		func() { NewSeasonal(0, 0, 0, 1, 0, 1) }, // seasonal with period 1
		func() { NewSeasonal(0, 0, 0, 0, 0, 4) }, // no terms at all
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSeasonalDiffRoundTripLengths(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	d1, err := seasonalDiff(xs, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != 4 {
		t.Fatalf("len = %d", len(d1))
	}
	// x_{t} - x_{t-4}: 5-1=4, 6-2=4, ...
	for _, v := range d1 {
		if v != 4 {
			t.Fatalf("diff = %v", d1)
		}
	}
	if _, err := seasonalDiff([]float64{1, 2}, 4, 1); err == nil {
		t.Fatal("short series accepted")
	}
}

func TestSeasonalFitRecoversSeasonalCoefficient(t *testing.T) {
	const s = 6
	xs := genSeasonalAR(3000, s, 0.8, 1.0, 1)
	m := NewSeasonal(0, 0, 0, 1, 0, s)
	if err := m.Fit(timeseries.FromTargets(xs)); err != nil {
		t.Fatal(err)
	}
	_, _, sphi, _ := m.Coefficients()
	if math.Abs(sphi[0]-0.8) > 0.08 {
		t.Fatalf("seasonal phi = %v want ≈0.8", sphi[0])
	}
}

func TestSeasonalBeatsPlainARIMAOnPeriodicSeries(t *testing.T) {
	const s = 12
	xs := genSeasonalPattern(600, s, 10, 0.5, 2)
	series := timeseries.FromTargets(xs)
	sarima := NewSeasonal(1, 0, 0, 2, 0, s)
	plain := New(2, 0, 1)
	resS, err := timeseries.WalkForward(sarima, series, 480, 1)
	if err != nil {
		t.Fatal(err)
	}
	resP, err := timeseries.WalkForward(plain, series, 480, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resS.Report.RMSE >= resP.Report.RMSE {
		t.Fatalf("SARIMA RMSE %v did not beat plain ARIMA %v on seasonal series",
			resS.Report.RMSE, resP.Report.RMSE)
	}
}

func TestSeasonalDifferencingHandlesSeasonalTrend(t *testing.T) {
	// Pure seasonal random walk: x_t = x_{t-s} + e. DS=1 makes it
	// stationary; forecasts should track the seasonal level.
	const s = 5
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 400)
	for i := range xs {
		if i >= s {
			xs[i] = xs[i-s] + 0.1*rng.NormFloat64()
		} else {
			xs[i] = float64(i * 10)
		}
	}
	m := NewSeasonal(1, 0, 0, 0, 1, s)
	if err := m.Fit(timeseries.FromTargets(xs[:350])); err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(xs[:350], s)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < s; h++ {
		want := xs[350+h-s] // seasonal persistence
		if math.Abs(fc[h]-want) > 2 {
			t.Fatalf("h=%d forecast %v want ≈%v", h+1, fc[h], want)
		}
	}
}

func TestSeasonalForecastErrors(t *testing.T) {
	m := NewSeasonal(1, 0, 0, 1, 0, 4)
	if _, err := m.Forecast(make([]float64, 50), 1); err != timeseries.ErrNotFitted {
		t.Fatalf("want ErrNotFitted, got %v", err)
	}
	xs := genSeasonalAR(300, 4, 0.5, 1, 4)
	if err := m.Fit(timeseries.FromTargets(xs)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(xs, 0); err == nil {
		t.Fatal("steps=0 accepted")
	}
	if _, err := m.Forecast(xs[:3], 1); err != timeseries.ErrShortContext {
		t.Fatalf("want ErrShortContext, got %v", err)
	}
}

func TestSeasonalMinContext(t *testing.T) {
	m := NewSeasonal(2, 1, 1, 2, 1, 6)
	// d + DS·s + max(p, PS·s, q) + 1 = 1 + 6 + 12 + 1 = 20.
	if got := m.MinContext(); got != 20 {
		t.Fatalf("MinContext = %d want 20", got)
	}
	if m.Name() != "SARIMA" {
		t.Fatal("name wrong")
	}
}

func TestSeasonalFitRejectsShortSeries(t *testing.T) {
	m := NewSeasonal(1, 0, 1, 1, 0, 10)
	if err := m.Fit(timeseries.FromTargets(make([]float64, 20))); err == nil {
		t.Fatal("short series accepted")
	}
}
