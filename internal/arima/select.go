package arima

import (
	"fmt"
	"math"

	"predstream/internal/timeseries"
)

// SelectOrder fits every (p,d,q) combination with p ≤ maxP, d ≤ maxD,
// q ≤ maxQ (skipping p=q=0) and returns the model minimizing AIC computed
// from in-sample one-step residuals. It is the small grid search the
// baselines use instead of auto-arima.
func SelectOrder(train *timeseries.Series, maxP, maxD, maxQ int) (*Model, error) {
	if maxP < 0 || maxD < 0 || maxQ < 0 {
		return nil, fmt.Errorf("arima: negative max order")
	}
	var best *Model
	bestAIC := math.Inf(1)
	for d := 0; d <= maxD; d++ {
		for p := 0; p <= maxP; p++ {
			for q := 0; q <= maxQ; q++ {
				if p == 0 && q == 0 {
					continue
				}
				m := New(p, d, q)
				if err := m.Fit(train); err != nil {
					continue
				}
				aic, err := m.aic(train)
				if err != nil {
					continue
				}
				if aic < bestAIC {
					bestAIC = aic
					best = m
				}
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("arima: no order fit the series")
	}
	return best, nil
}

// aic computes Akaike's information criterion from in-sample one-step
// forecasts over the training series.
func (m *Model) aic(train *timeseries.Series) (float64, error) {
	targets := train.Targets()
	start := m.MinContext()
	n := 0
	var sse float64
	for i := start; i < len(targets); i++ {
		fc, err := m.Forecast(targets[:i], 1)
		if err != nil {
			return 0, err
		}
		resid := targets[i] - fc[0]
		sse += resid * resid
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("arima: series too short for AIC")
	}
	k := float64(1 + m.P + m.Q)
	sigma2 := sse / float64(n)
	if sigma2 <= 0 {
		sigma2 = 1e-12
	}
	return float64(n)*math.Log(sigma2) + 2*k, nil
}
