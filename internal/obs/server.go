package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"predstream/internal/dsps"
)

// ServerConfig selects what the observability HTTP server exposes. Only
// Registry is required; nil optional fields disable their endpoints with
// a 404.
type ServerConfig struct {
	// Registry backs /metrics.
	Registry *Registry
	// Trace, when set, backs /trace.json and /trace/chrome.
	Trace *dsps.Trace
	// Events, when set, backs /events with the buffered records.
	Events *MemorySink
}

// HTTPHandler builds the observability mux:
//
//	/metrics        Prometheus text exposition of the registry
//	/healthz        liveness probe ("ok")
//	/trace.json     sampled tuple trace, full-fidelity JSON
//	/trace/chrome   the same trace as Chrome trace_event (about://tracing)
//	/events         buffered structured events as JSON
//	/debug/pprof/   Go runtime profiles (CPU, heap, goroutine, ...)
func HTTPHandler(cfg ServerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Registry == nil {
			http.Error(w, "no metrics registry configured", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := cfg.Registry.WritePrometheus(w); err != nil {
			// Headers are already gone; the truncated page plus the error
			// line is the best available signal.
			fmt.Fprintf(w, "# encoding error: %v\n", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Trace == nil {
			http.Error(w, "tracing disabled (set TraceSampleRate)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		WriteTraceJSON(w, cfg.Trace.Spans())
	})
	mux.HandleFunc("/trace/chrome", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Trace == nil {
			http.Error(w, "tracing disabled (set TraceSampleRate)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="predstream_trace.json"`)
		WriteChromeTrace(w, cfg.Trace.Spans())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Events == nil {
			http.Error(w, "no event sink configured", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		records := cfg.Events.Records()
		type rec struct {
			TimeNs int64  `json:"time_ns"`
			Level  string `json:"level"`
			Msg    string `json:"msg"`
			Attrs  []Attr `json:"attrs,omitempty"`
		}
		out := make([]rec, 0, len(records))
		for _, r := range records {
			out = append(out, rec{TimeNs: r.TimeNs, Level: r.Level.String(), Msg: r.Msg, Attrs: r.Attrs})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability HTTP server; create with NewServer,
// stop with Close.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewServer listens on addr (e.g. ":9090"; ":0" picks a free port) and
// serves the HTTPHandler mux in a background goroutine.
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: HTTPHandler(cfg), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //dspslint:ignore goroleak stdlib body is invisible to the call graph; Serve returns when Close shuts the listener down
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
