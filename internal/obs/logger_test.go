package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"predstream/internal/dsps"
)

func TestLoggerLevelsAndClock(t *testing.T) {
	sink := NewMemorySink(0)
	var tick int64
	l := NewLogger(sink, LevelInfo).WithClock(func() int64 { tick++; return tick })
	l.Debug("dropped")
	l.Info("kept", String("k", "v"))
	l.Warn("also kept", Int("n", 7))
	l.Error("errors too")
	recs := sink.Records()
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3 (debug filtered)", len(recs))
	}
	if recs[0].Msg != "kept" || recs[0].Level != LevelInfo || recs[0].TimeNs != 1 {
		t.Fatalf("first record = %+v", recs[0])
	}
	if recs[1].Attrs[0] != (Attr{Key: "n", Value: "7"}) {
		t.Fatalf("Int attr = %+v", recs[1].Attrs[0])
	}
	if recs[2].TimeNs != 3 {
		t.Fatalf("clock not monotone per record: %+v", recs[2])
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Info("no-op")
	l.Event(int(LevelError), "no-op", "k", "v")
	if l.WithClock(nil) != nil {
		t.Fatal("nil logger WithClock must stay nil")
	}
}

func TestLoggerEventSatisfiesEventSink(t *testing.T) {
	sink := NewMemorySink(0)
	l := NewLogger(sink, LevelDebug).WithClock(nil) // zero clock
	var es dsps.EventSink = l
	es.Event(dsps.EventWarn, "paired", "a", "1", "b", "2")
	es.Event(dsps.EventInfo, "odd", "only-key")
	recs := sink.Records()
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Level != LevelWarn || recs[0].TimeNs != 0 {
		t.Fatalf("record = %+v", recs[0])
	}
	wantAttrs := []Attr{{Key: "a", Value: "1"}, {Key: "b", Value: "2"}}
	for i, a := range recs[0].Attrs {
		if a != wantAttrs[i] {
			t.Fatalf("attrs = %+v", recs[0].Attrs)
		}
	}
	if len(recs[1].Attrs) != 1 || recs[1].Attrs[0] != (Attr{Key: "only-key"}) {
		t.Fatalf("odd kv attrs = %+v", recs[1].Attrs)
	}
}

func TestLevelString(t *testing.T) {
	for lv, want := range map[Level]string{
		LevelDebug: "DEBUG", LevelInfo: "INFO", LevelWarn: "WARN", LevelError: "ERROR", Level(9): "LEVEL(9)",
	} {
		if got := lv.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(lv), got, want)
		}
	}
}

func TestTextHandlerGolden(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(NewTextHandler(&buf), LevelDebug).WithClock(func() int64 { return 42 })
	l.Info("plain", String("k", "v"))
	l.Warn("needs quoting", String("msg", `a "b" c`), String("empty", ""))
	want := "t=42 level=INFO msg=plain k=v\n" +
		"t=42 level=WARN msg=\"needs quoting\" msg=\"a \\\"b\\\" c\" empty=\"\"\n"
	if got := buf.String(); got != want {
		t.Fatalf("text output:\n--- got ---\n%q\n--- want ---\n%q", got, want)
	}
}

func TestMemorySinkLimit(t *testing.T) {
	s := NewMemorySink(3)
	l := NewLogger(s, LevelDebug).WithClock(nil)
	for i := 0; i < 10; i++ {
		l.Info("m", Int("i", i))
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	recs := s.Records()
	if recs[0].Attrs[0].Value != "7" || recs[2].Attrs[0].Value != "9" {
		t.Fatalf("kept wrong records: %+v", recs)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestLoggerConcurrentUse(t *testing.T) {
	s := NewMemorySink(0)
	l := NewLogger(s, LevelDebug)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Info("concurrent")
			}
		}()
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("len = %d, want 800", s.Len())
	}
	for _, r := range s.Records() {
		if !strings.HasPrefix(r.Msg, "concurrent") {
			t.Fatalf("corrupt record %+v", r)
		}
	}
}
