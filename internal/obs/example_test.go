package obs_test

import (
	"fmt"
	"os"
	"time"

	"predstream/internal/dsps"
	"predstream/internal/obs"
)

// ExampleRegistry shows the metrics pipeline end to end: instruments and
// a custom collector registered on a registry, rendered as the Prometheus
// text format served at /metrics.
func ExampleRegistry() {
	reg := obs.NewRegistry()

	requests := obs.NewCounter("myapp_requests_total", "Requests handled.")
	requests.Add(17)
	reg.Register(requests)

	reg.Register(obs.CollectorFunc(func() []obs.Family {
		return []obs.Family{{
			Name: "myapp_queue_length", Help: "Jobs waiting.", Type: obs.TypeGauge,
			Samples: []obs.Sample{
				{Labels: []obs.Label{{Name: "queue", Value: "ingest"}}, Value: 4},
			},
		}}
	}))

	reg.WritePrometheus(os.Stdout)
	// Output:
	// # HELP myapp_queue_length Jobs waiting.
	// # TYPE myapp_queue_length gauge
	// myapp_queue_length{queue="ingest"} 4
	// # HELP myapp_requests_total Requests handled.
	// # TYPE myapp_requests_total counter
	// myapp_requests_total 17
}

// ExampleLogger pins the structured event log's deterministic mode: with
// an injected clock, identical inputs render identical text.
func ExampleLogger() {
	logger := obs.NewLogger(obs.NewTextHandler(os.Stdout), obs.LevelInfo).
		WithClock(func() int64 { return 1700000000000000000 })

	logger.Debug("filtered out")
	logger.Info("rebalance", obs.String("topology", "wordcount"), obs.Int("workers", 4))
	// The same logger doubles as the engine's dsps.EventSink.
	logger.Event(dsps.EventWarn, "fault injected", "worker", "worker-1")
	// Output:
	// t=1700000000000000000 level=INFO msg=rebalance topology=wordcount workers=4
	// t=1700000000000000000 level=WARN msg="fault injected" worker=worker-1
}

// Example_tupleTracing runs a topology with the deterministic trace
// sampler at full rate and tallies the sampled spans: one emit per root
// plus one exec per bolt execution of its descendants.
func Example_tupleTracing() {
	next := 0
	var collector dsps.SpoutCollector
	builder := dsps.NewTopologyBuilder("traced")
	builder.SetSpout("src", func() dsps.Spout {
		return &dsps.SpoutFunc{
			OpenFn: func(_ dsps.TopologyContext, c dsps.SpoutCollector) { collector = c },
			NextFn: func() bool {
				if next >= 5 {
					return false
				}
				collector.Emit(dsps.Values{next}, next)
				next++
				return true
			},
		}
	}, 1, "n")
	builder.SetBolt("sink", func() dsps.Bolt {
		return &dsps.BoltFunc{ExecuteFn: func(*dsps.Tuple, dsps.OutputCollector) {}}
	}, 1).ShuffleGrouping("src")
	topo, _ := builder.Build()

	cluster := dsps.NewCluster(dsps.ClusterConfig{
		Nodes: 1, Delayer: dsps.NopDelayer{},
		TraceSampleRate: 1, // sample every root; 0.01 is a typical production rate
	})
	cluster.Submit(topo, dsps.SubmitConfig{})
	defer cluster.Shutdown()
	cluster.Drain(5 * time.Second)

	emits, execs := 0, 0
	for _, span := range cluster.Trace().Spans() {
		switch span.Kind {
		case dsps.SpanEmit:
			emits++
		case dsps.SpanExec:
			execs++
		}
	}
	fmt.Printf("emits=%d execs=%d\n", emits, execs)
	// Export with obs.WriteTraceJSON / obs.WriteChromeTrace, or serve
	// /trace.json via obs.NewServer.
	// Output: emits=5 execs=5
}
