package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact text exposition: escaping,
// label rendering, value spellings, and cumulative histogram encoding.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Register(CollectorFunc(func() []Family {
		return []Family{
			{
				Name: "test_requests_total", Help: "Total requests.", Type: TypeCounter,
				Samples: []Sample{
					{Value: 42},
					{Labels: []Label{{Name: "code", Value: "200"}}, Value: 7},
				},
			},
			{
				Name: "test_temp", Help: "Line one\nwith \\ backslash.", Type: TypeGauge,
				Samples: []Sample{
					{Labels: []Label{{Name: "sensor", Value: `a"b\c` + "\n"}}, Value: 21.5},
					{Labels: []Label{{Name: "sensor", Value: "inf"}}, Value: math.Inf(1)},
					{Labels: []Label{{Name: "sensor", Value: "nan"}}, Value: math.NaN()},
				},
			},
			{
				Name: "test_latency_seconds", Help: "Observed latency.", Type: TypeHistogram,
				Samples: []Sample{{
					Labels: []Label{{Name: "stage", Value: "parse"}},
					Hist:   &HistogramData{Bounds: []float64{0.1, 1}, Counts: []uint64{1, 2, 3}, Sum: 4.5},
				}},
			},
		}
	}))
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP test_latency_seconds Observed latency.`,
		`# TYPE test_latency_seconds histogram`,
		`test_latency_seconds_bucket{stage="parse",le="0.1"} 1`,
		`test_latency_seconds_bucket{stage="parse",le="1"} 3`,
		`test_latency_seconds_bucket{stage="parse",le="+Inf"} 6`,
		`test_latency_seconds_sum{stage="parse"} 4.5`,
		`test_latency_seconds_count{stage="parse"} 6`,
		`# HELP test_requests_total Total requests.`,
		`# TYPE test_requests_total counter`,
		`test_requests_total 42`,
		`test_requests_total{code="200"} 7`,
		`# HELP test_temp Line one\nwith \\ backslash.`,
		`# TYPE test_temp gauge`,
		`test_temp{sensor="a\"b\\c\n"} 21.5`,
		`test_temp{sensor="inf"} +Inf`,
		`test_temp{sensor="nan"} NaN`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusRejectsInvalidNames(t *testing.T) {
	cases := []Family{
		{Name: "1starts_with_digit", Samples: []Sample{{Value: 1}}},
		{Name: "has space", Samples: []Sample{{Value: 1}}},
		{Name: "", Samples: []Sample{{Value: 1}}},
		{Name: "ok_name", Samples: []Sample{{Labels: []Label{{Name: "__reserved", Value: "x"}}, Value: 1}}},
		{Name: "ok_name", Samples: []Sample{{Labels: []Label{{Name: "bad-dash", Value: "x"}}, Value: 1}}},
		{Name: "ok_hist", Type: TypeHistogram, Samples: []Sample{{
			Hist: &HistogramData{Bounds: []float64{1}, Counts: []uint64{1}}, // counts != bounds+1
		}}},
		{Name: "ok_hist2", Type: TypeHistogram, Samples: []Sample{{Value: 1}}}, // no Hist
	}
	for _, f := range cases {
		fam := f
		r := NewRegistry()
		r.Register(CollectorFunc(func() []Family { return []Family{fam} }))
		if err := r.WritePrometheus(&bytes.Buffer{}); err == nil {
			t.Errorf("family %+v encoded without error", fam)
		}
	}
}

func TestWritePrometheusDefaultsTypeToGauge(t *testing.T) {
	r := NewRegistry()
	r.Register(CollectorFunc(func() []Family {
		return []Family{{Name: "untyped", Samples: []Sample{{Value: 1}}}}
	}))
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# TYPE untyped gauge") {
		t.Fatalf("missing gauge default:\n%s", buf.String())
	}
	// No HELP line when Help is empty.
	if strings.Contains(buf.String(), "# HELP") {
		t.Fatalf("unexpected HELP line:\n%s", buf.String())
	}
}
