package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"predstream/internal/chaos"
	"predstream/internal/core"
	"predstream/internal/dsps"
	"predstream/internal/telemetry"
)

// famMap indexes gathered families by name.
func famMap(fams []Family) map[string]Family {
	out := make(map[string]Family, len(fams))
	for _, f := range fams {
		out[f.Name] = f
	}
	return out
}

func sumValues(f Family) float64 {
	var s float64
	for _, sm := range f.Samples {
		s += sm.Value
	}
	return s
}

// buildObsCluster runs a small traced topology with a dynamic edge to
// completion and returns the cluster plus its grouping handle.
func buildObsCluster(t *testing.T) (*dsps.Cluster, *dsps.DynamicGrouping) {
	t.Helper()
	var collector dsps.SpoutCollector
	next := 0
	spout := &dsps.SpoutFunc{
		OpenFn: func(_ dsps.TopologyContext, c dsps.SpoutCollector) { collector = c },
		NextFn: func() bool {
			if next >= 100 {
				return false
			}
			collector.Emit(dsps.Values{next}, next)
			next++
			return true
		},
	}
	b := dsps.NewTopologyBuilder("obs-coll")
	b.SetSpout("src", func() dsps.Spout { return spout }, 1, "n")
	dg := b.SetBolt("work", func() dsps.Bolt {
		return &dsps.BoltFunc{ExecuteFn: func(*dsps.Tuple, dsps.OutputCollector) {}}
	}, 2).DynamicGrouping("src")
	if err := dg.SetRatios([]float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := dsps.NewCluster(dsps.ClusterConfig{
		Nodes: 2, QueueSize: 256, AckTimeout: 5 * time.Second,
		Delayer: dsps.NopDelayer{}, Seed: 7,
		TraceSampleRate: 1, TraceBufferSize: 1024,
	})
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if !c.Drain(5 * time.Second) {
		c.Shutdown()
		t.Fatal("did not drain")
	}
	return c, dg
}

func TestClusterCollector(t *testing.T) {
	c, _ := buildObsCluster(t)
	defer c.Shutdown()
	fams := famMap(NewClusterCollector(c).Collect())

	if got := sumValues(fams["predstream_task_acked_total"]); got != 100 {
		t.Fatalf("acked sum = %v, want 100", got)
	}
	// src executed 100 + work tasks executed 100 between them.
	if got := sumValues(fams["predstream_task_executed_total"]); got != 200 {
		t.Fatalf("executed sum = %v, want 200", got)
	}
	if got := sumValues(fams["predstream_task_batches_total"]); got <= 0 {
		t.Fatalf("batches sum = %v, want > 0", got)
	}
	if got := sumValues(fams["predstream_acker_in_flight"]); got != 0 {
		t.Fatalf("drained in-flight = %v", got)
	}
	if len(fams["predstream_acker_shard_pending"].Samples) == 0 {
		t.Fatal("no shard pending samples")
	}
	// Trace gauges are present because the cluster traces, and the ring
	// holds 100 emits + 100 execs.
	if got := sumValues(fams["predstream_trace_buffered_spans"]); got != 200 {
		t.Fatalf("buffered spans = %v, want 200", got)
	}

	// Exec histogram: every bolt execution observed, counts match.
	hist := fams["predstream_task_exec_latency_seconds"]
	if hist.Type != TypeHistogram {
		t.Fatalf("exec hist type = %v", hist.Type)
	}
	var total uint64
	for _, s := range hist.Samples {
		if s.Hist == nil {
			t.Fatal("histogram sample without data")
		}
		total += s.Hist.Total()
	}
	if total != 100 {
		t.Fatalf("exec hist total = %d, want 100", total)
	}

	// The whole page must encode cleanly.
	reg := NewRegistry()
	reg.Register(NewClusterCollector(c))
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `predstream_task_executed_total{topology="obs-coll",component="src",task="0",worker="worker-0"} 100`) {
		t.Fatalf("rendered page missing spout row:\n%s", buf.String())
	}
}

func TestControllerCollector(t *testing.T) {
	c, dg := buildObsCluster(t)
	defer c.Shutdown()
	sink := NewMemorySink(16)
	ctrl, err := core.NewController(c,
		[]core.ControlTarget{{Component: "work", Grouping: dg}},
		core.Config{Policy: core.PolicyBypass, Events: NewLogger(sink, LevelDebug)})
	if err != nil {
		t.Fatal(err)
	}
	coll := NewControllerCollector(ctrl)
	fams := famMap(coll.Collect())
	if got := sumValues(fams["predstream_controller_steps_total"]); got != 0 {
		t.Fatalf("steps before stepping = %v", got)
	}
	if _, err := ctrl.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Step(); err != nil {
		t.Fatal(err)
	}
	fams = famMap(coll.Collect())
	if got := sumValues(fams["predstream_controller_steps_total"]); got != 2 {
		t.Fatalf("steps = %v, want 2", got)
	}
	if len(fams["predstream_controller_observed"].Samples) == 0 {
		t.Fatal("no observed samples after a step")
	}
	ratios := fams["predstream_controller_ratio"]
	if len(ratios.Samples) != 2 {
		t.Fatalf("ratio samples = %+v", ratios.Samples)
	}
	if got := sumValues(ratios); got < 0.99 || got > 1.01 {
		t.Fatalf("ratios sum to %v, want ~1", got)
	}
	// The step emitted a "control plan applied" event through the sink.
	found := false
	for _, r := range sink.Records() {
		if r.Msg == "control plan applied" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no plan event; records = %+v", sink.Records())
	}
}

func TestChaosCollector(t *testing.T) {
	m := &chaos.Metrics{}
	m.Runs.Add(1)
	m.EventsFired.Add(5)
	m.EventsSkipped.Add(2)
	m.Checks.Add(9)
	m.Violations.Store(3)
	fams := famMap(NewChaosCollector(m).Collect())
	for name, want := range map[string]float64{
		"predstream_chaos_runs_total":           1,
		"predstream_chaos_events_fired_total":   5,
		"predstream_chaos_events_skipped_total": 2,
		"predstream_chaos_checks_total":         9,
		"predstream_chaos_violations":           3,
	} {
		if got := sumValues(fams[name]); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestSamplerCollector(t *testing.T) {
	c, _ := buildObsCluster(t)
	defer c.Shutdown()
	s := telemetry.NewSamplerFiltered(0, "work")
	s.Sample(c.Snapshot())
	coll := NewSamplerCollector(s)
	// One snapshot = no complete window yet.
	fams := famMap(coll.Collect())
	if len(fams["predstream_window_exec_rate"].Samples) != 0 {
		t.Fatal("window samples before a second snapshot")
	}
	time.Sleep(5 * time.Millisecond)
	s.Sample(c.Snapshot())
	fams = famMap(coll.Collect())
	if len(fams["predstream_window_exec_rate"].Samples) == 0 {
		t.Fatal("no window samples after two snapshots")
	}
}

func TestRuntimeCollector(t *testing.T) {
	fams := famMap(NewRuntimeCollector().Collect())
	if sumValues(fams["go_goroutines"]) < 1 {
		t.Fatal("goroutines < 1")
	}
	if sumValues(fams["go_memstats_heap_alloc_bytes"]) <= 0 {
		t.Fatal("heap alloc <= 0")
	}
}

// TestClusterCollectorScaleSeries drives a live scale-up and scale-down and
// verifies the component aggregates absorb the churn: retired executors
// vanish from per-task series but their work stays counted per component,
// and the scale counters surface the event history.
func TestClusterCollectorScaleSeries(t *testing.T) {
	c, _ := buildObsCluster(t)
	defer c.Shutdown()
	if err := c.ScaleUp("obs-coll", "work", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.ScaleDown("obs-coll", "work", 3, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	fams := famMap(NewClusterCollector(c).Collect())

	// One live work executor remains; the per-task series must only cover
	// live tasks (src + work survivor).
	if got := len(fams["predstream_task_executed_total"].Samples); got != 2 {
		t.Fatalf("per-task executed series = %d, want 2 (retired tasks must drop out)", got)
	}
	// The component aggregate still counts every executed tuple, including
	// the retired executors' share.
	var workExecuted float64
	for _, s := range fams["predstream_component_executed_total"].Samples {
		for _, l := range s.Labels {
			if l.Name == "component" && l.Value == "work" {
				workExecuted = s.Value
			}
		}
	}
	if workExecuted != 100 {
		t.Fatalf("component executed = %v, want 100 across live+retired executors", workExecuted)
	}
	if got := sumValues(fams["predstream_component_parallelism"]); got != 2 { // src 1 + work 1
		t.Fatalf("parallelism sum = %v, want 2", got)
	}
	if got := sumValues(fams["predstream_component_retired_executors_total"]); got != 3 {
		t.Fatalf("retired executors = %v, want 3", got)
	}
	if got := sumValues(fams["predstream_scale_ups_total"]); got != 2 {
		t.Fatalf("scale ups = %v, want 2", got)
	}
	if got := sumValues(fams["predstream_scale_downs_total"]); got != 3 {
		t.Fatalf("scale downs = %v, want 3", got)
	}
	if got := sumValues(fams["predstream_scale_route_epoch"]); got <= 0 {
		t.Fatalf("route epoch = %v, want > 0", got)
	}
	if got := sumValues(fams["predstream_scale_retired_tasks"]); got != 3 {
		t.Fatalf("retired tasks gauge = %v, want 3", got)
	}

	// The page still renders cleanly with the new families.
	reg := NewRegistry()
	reg.Register(NewClusterCollector(c))
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `predstream_component_parallelism{topology="obs-coll",component="work"} 1`) {
		t.Fatalf("rendered page missing component parallelism row:\n%s", buf.String())
	}
}
