package obs

import (
	"reflect"
	"testing"
)

func TestRegistryGatherMergesAndSorts(t *testing.T) {
	r := NewRegistry()
	r.Register(CollectorFunc(func() []Family {
		return []Family{
			{Name: "zeta", Type: TypeGauge, Samples: []Sample{{Value: 1}}},
			{Name: "alpha", Help: "first", Type: TypeCounter, Samples: []Sample{{Value: 2}}},
		}
	}))
	r.Register(CollectorFunc(func() []Family {
		return []Family{
			// Same family from a second collector: samples merge, the
			// first collector's help/type win.
			{Name: "alpha", Help: "ignored", Type: TypeGauge, Samples: []Sample{{Value: 3}}},
		}
	}))
	r.Register(nil) // must be a no-op

	fams := r.Gather()
	if len(fams) != 2 {
		t.Fatalf("gathered %d families, want 2", len(fams))
	}
	if fams[0].Name != "alpha" || fams[1].Name != "zeta" {
		t.Fatalf("family order = %s, %s", fams[0].Name, fams[1].Name)
	}
	a := fams[0]
	if a.Help != "first" || a.Type != TypeCounter {
		t.Fatalf("merge did not keep first collector's metadata: %+v", a)
	}
	if len(a.Samples) != 2 || a.Samples[0].Value != 2 || a.Samples[1].Value != 3 {
		t.Fatalf("merged samples = %+v", a.Samples)
	}
}

func TestCounterAndGaugeInstruments(t *testing.T) {
	c := NewCounter("reqs_total", "Requests.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	fams := c.Collect()
	if len(fams) != 1 || fams[0].Type != TypeCounter || fams[0].Samples[0].Value != 5 {
		t.Fatalf("counter families = %+v", fams)
	}

	g := NewGauge("temp", "Temperature.")
	g.Set(21.5)
	if g.Value() != 21.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.Set(-3)
	fams = g.Collect()
	if len(fams) != 1 || fams[0].Type != TypeGauge || fams[0].Samples[0].Value != -3 {
		t.Fatalf("gauge families = %+v", fams)
	}

	r := NewRegistry()
	r.Register(c)
	r.Register(g)
	names := []string{}
	for _, f := range r.Gather() {
		names = append(names, f.Name)
	}
	if !reflect.DeepEqual(names, []string{"reqs_total", "temp"}) {
		t.Fatalf("names = %v", names)
	}
}

func TestHistogramDataTotal(t *testing.T) {
	h := &HistogramData{Bounds: []float64{1, 2}, Counts: []uint64{3, 4, 5}, Sum: 9}
	if h.Total() != 12 {
		t.Fatalf("total = %d, want 12", h.Total())
	}
}
