package obs

import (
	"runtime"
	"sort"
	"strconv"

	"predstream/internal/chaos"
	"predstream/internal/core"
	"predstream/internal/dsps"
	"predstream/internal/telemetry"
)

// Collectors bridging the repo's subsystems into the registry. All of
// them work from point-in-time snapshots taken at scrape time — no
// collector adds locking or allocation to any engine hot path, and every
// collector emits its samples in a deterministic order (snapshot order,
// or sorted keys where the source is a map).

// taskLabels renders the identity labels shared by per-task series.
func taskLabels(t dsps.TaskStats) []Label {
	return []Label{
		{Name: "topology", Value: t.Topology},
		{Name: "component", Value: t.Component},
		{Name: "task", Value: strconv.Itoa(t.TaskID)},
		{Name: "worker", Value: t.WorkerID},
	}
}

// histBoundsSeconds caches the engine's latency-histogram bucket bounds
// converted to seconds, the unit Prometheus latency histograms use.
var histBoundsSeconds = func() []float64 {
	bounds := dsps.HistogramBucketBounds()
	out := make([]float64, len(bounds))
	for i, b := range bounds {
		out[i] = b.Seconds()
	}
	return out
}()

// latencyHistData converts an engine histogram snapshot plus its
// cumulative-duration sum into a HistogramData.
func latencyHistData(counts []int64, sumSeconds float64) *HistogramData {
	h := &HistogramData{
		Bounds: histBoundsSeconds,
		Counts: make([]uint64, len(histBoundsSeconds)+1),
		Sum:    sumSeconds,
	}
	for i, c := range counts {
		if i < len(h.Counts) && c > 0 {
			h.Counts[i] = uint64(c)
		}
	}
	return h
}

// Snapshotter is any source of engine metric snapshots: *dsps.Cluster
// (the local engine), or internal/cluster's Coordinator, whose merged
// fleet snapshot carries every remote worker's shipped metrics. The
// collector below is transport-agnostic — remote metrics appear on
// /metrics through exactly the same families as local ones.
type Snapshotter interface {
	// Snapshot captures the current engine (or fleet) metrics.
	Snapshot() *dsps.Snapshot
}

// NewClusterCollector returns a Collector exposing the engine's task,
// worker, node, acker, and trace statistics from the source's Snapshot
// (a local cluster or a coordinator's merged fleet view). See
// docs/OBSERVABILITY.md for the full metric catalog.
func NewClusterCollector(c Snapshotter) Collector {
	return CollectorFunc(func() []Family {
		snap := c.Snapshot()

		counter := func(name, help string) Family {
			return Family{Name: name, Help: help, Type: TypeCounter}
		}
		gauge := func(name, help string) Family {
			return Family{Name: name, Help: help, Type: TypeGauge}
		}
		executed := counter("predstream_task_executed_total", "Tuples fully executed by the task.")
		emitted := counter("predstream_task_emitted_total", "Tuples emitted downstream by the task.")
		acked := counter("predstream_task_acked_total", "Spout roots completed successfully (spout tasks).")
		failed := counter("predstream_task_failed_total", "Spout roots failed or timed out (spout tasks).")
		dropped := counter("predstream_task_dropped_total", "Tuples dropped by fault injection at the task.")
		batches := counter("predstream_task_batches_total", "Data-plane envelope batches the task sent downstream.")
		bpWaits := counter("predstream_task_backpressure_waits_total", "Batches that blocked at least once on a full downstream queue.")
		queueLen := gauge("predstream_task_queue_length", "Instantaneous input queue length (reservation-accurate tuples).")
		ringDepth := gauge("predstream_ring_depth", "Batches buffered across the task's input SPSC rings (ring plane only).")
		ringParks := counter("predstream_ring_parks_total", "Times the ring-plane executor exhausted its spin budget and parked.")
		execHist := Family{Name: "predstream_task_exec_latency_seconds", Help: "Per-tuple execute latency distribution.", Type: TypeHistogram}
		completeHist := Family{Name: "predstream_spout_complete_latency_seconds", Help: "Complete latency distribution of acked roots (spout tasks).", Type: TypeHistogram}

		for _, t := range snap.Tasks {
			if t.Retired {
				// Retired executors would pin stale per-task series forever;
				// their final counters live on in the component aggregates.
				continue
			}
			ls := taskLabels(t)
			executed.Samples = append(executed.Samples, Sample{Labels: ls, Value: float64(t.Executed)})
			emitted.Samples = append(emitted.Samples, Sample{Labels: ls, Value: float64(t.Emitted)})
			dropped.Samples = append(dropped.Samples, Sample{Labels: ls, Value: float64(t.Dropped)})
			batches.Samples = append(batches.Samples, Sample{Labels: ls, Value: float64(t.Batches)})
			bpWaits.Samples = append(bpWaits.Samples, Sample{Labels: ls, Value: float64(t.BackpressureWaits)})
			if t.IsSpout {
				acked.Samples = append(acked.Samples, Sample{Labels: ls, Value: float64(t.Acked)})
				failed.Samples = append(failed.Samples, Sample{Labels: ls, Value: float64(t.Failed)})
				completeHist.Samples = append(completeHist.Samples, Sample{
					Labels: ls,
					Hist:   latencyHistData(t.CompleteHist, t.CompleteLatency.Seconds()),
				})
			} else {
				queueLen.Samples = append(queueLen.Samples, Sample{Labels: ls, Value: float64(t.QueueLen)})
				ringDepth.Samples = append(ringDepth.Samples, Sample{Labels: ls, Value: float64(t.RingDepth)})
				ringParks.Samples = append(ringParks.Samples, Sample{Labels: ls, Value: float64(t.RingParks)})
				execHist.Samples = append(execHist.Samples, Sample{
					Labels: ls,
					Hist:   latencyHistData(t.ExecHist, t.ExecLatency.Seconds()),
				})
			}
		}

		// Component aggregates are the series that stay comparable across
		// scale events: task-level series come and go with executor churn,
		// component-level counters fold live and retired executors together
		// and remain monotone.
		compExecuted := counter("predstream_component_executed_total", "Tuples executed by the component (live + retired executors).")
		compEmitted := counter("predstream_component_emitted_total", "Tuples emitted downstream by the component.")
		compAcked := counter("predstream_component_acked_total", "Spout roots completed (spout components).")
		compFailed := counter("predstream_component_failed_total", "Spout roots failed or timed out (spout components).")
		compDropped := counter("predstream_component_dropped_total", "Tuples dropped at the component (faults and forced drains).")
		compParallelism := gauge("predstream_component_parallelism", "Live executor count of the component.")
		compRetired := counter("predstream_component_retired_executors_total", "Executors drained away from the component by scale-downs.")
		compQueueLen := gauge("predstream_component_queue_length", "Summed input queue length across the component's live executors.")
		compExecHist := Family{Name: "predstream_component_exec_latency_seconds", Help: "Per-tuple execute latency distribution across the component's executors.", Type: TypeHistogram}
		for _, cs := range snap.Components {
			ls := []Label{
				{Name: "topology", Value: cs.Topology},
				{Name: "component", Value: cs.Component},
			}
			compExecuted.Samples = append(compExecuted.Samples, Sample{Labels: ls, Value: float64(cs.Executed)})
			compEmitted.Samples = append(compEmitted.Samples, Sample{Labels: ls, Value: float64(cs.Emitted)})
			compDropped.Samples = append(compDropped.Samples, Sample{Labels: ls, Value: float64(cs.Dropped)})
			compParallelism.Samples = append(compParallelism.Samples, Sample{Labels: ls, Value: float64(cs.Parallelism)})
			compRetired.Samples = append(compRetired.Samples, Sample{Labels: ls, Value: float64(cs.Retired)})
			if cs.IsSpout {
				compAcked.Samples = append(compAcked.Samples, Sample{Labels: ls, Value: float64(cs.Acked)})
				compFailed.Samples = append(compFailed.Samples, Sample{Labels: ls, Value: float64(cs.Failed)})
			} else {
				compQueueLen.Samples = append(compQueueLen.Samples, Sample{Labels: ls, Value: float64(cs.QueueLen)})
				compExecHist.Samples = append(compExecHist.Samples, Sample{
					Labels: ls,
					Hist:   latencyHistData(cs.ExecHist, cs.ExecLatency.Seconds()),
				})
			}
		}

		scaleUps := counter("predstream_scale_ups_total", "Executors added by live scale-up events.")
		scaleDowns := counter("predstream_scale_downs_total", "Executors retired by live scale-down events.")
		routeEpoch := counter("predstream_scale_route_epoch", "Fan-out splice generation of the topology's routing tables.")
		scaleRetired := gauge("predstream_scale_retired_tasks", "Retired executors still carried in snapshots.")
		for _, sc := range snap.Scale {
			ls := []Label{{Name: "topology", Value: sc.Topology}}
			scaleUps.Samples = append(scaleUps.Samples, Sample{Labels: ls, Value: float64(sc.Ups)})
			scaleDowns.Samples = append(scaleDowns.Samples, Sample{Labels: ls, Value: float64(sc.Downs)})
			routeEpoch.Samples = append(routeEpoch.Samples, Sample{Labels: ls, Value: float64(sc.RouteEpoch)})
			scaleRetired.Samples = append(scaleRetired.Samples, Sample{Labels: ls, Value: float64(sc.Retired)})
		}

		slowdown := gauge("predstream_worker_slowdown", "Currently injected fault slowdown factor (1 = healthy).")
		misbehaving := gauge("predstream_worker_misbehaving", "1 while any fault is injected on the worker.")
		for _, w := range snap.Workers {
			ls := []Label{{Name: "worker", Value: w.WorkerID}, {Name: "node", Value: w.NodeID}}
			slowdown.Samples = append(slowdown.Samples, Sample{Labels: ls, Value: w.Slowdown})
			mis := 0.0
			if w.Misbehaving {
				mis = 1
			}
			misbehaving.Samples = append(misbehaving.Samples, Sample{Labels: ls, Value: mis})
		}

		nodeBusy := gauge("predstream_node_busy", "Executors currently mid-execute on the node.")
		nodeCores := gauge("predstream_node_cores", "Simulated core capacity of the node.")
		nodeExecuted := counter("predstream_node_executed_total", "Tuples executed on the node.")
		for _, n := range snap.Nodes {
			ls := []Label{{Name: "node", Value: n.NodeID}}
			nodeBusy.Samples = append(nodeBusy.Samples, Sample{Labels: ls, Value: float64(n.Busy)})
			nodeCores.Samples = append(nodeCores.Samples, Sample{Labels: ls, Value: float64(n.Cores)})
			nodeExecuted.Samples = append(nodeExecuted.Samples, Sample{Labels: ls, Value: float64(n.Executed)})
		}

		ackerInFlight := gauge("predstream_acker_in_flight", "Tracked, incomplete spout roots per topology.")
		shardPending := gauge("predstream_acker_shard_pending", "Pending roots per acker lock shard.")
		for _, a := range snap.Acker {
			ackerInFlight.Samples = append(ackerInFlight.Samples, Sample{
				Labels: []Label{{Name: "topology", Value: a.Topology}},
				Value:  float64(a.InFlight),
			})
			for i, p := range a.ShardPending {
				shardPending.Samples = append(shardPending.Samples, Sample{
					Labels: []Label{
						{Name: "topology", Value: a.Topology},
						{Name: "shard", Value: strconv.Itoa(i)},
					},
					Value: float64(p),
				})
			}
		}

		fams := []Family{
			executed, emitted, acked, failed, dropped, batches, bpWaits,
			queueLen, ringDepth, ringParks, execHist, completeHist,
			compExecuted, compEmitted, compAcked, compFailed, compDropped,
			compParallelism, compRetired, compQueueLen, compExecHist,
			scaleUps, scaleDowns, routeEpoch, scaleRetired,
			slowdown, misbehaving,
			nodeBusy, nodeCores, nodeExecuted,
			ackerInFlight, shardPending,
		}
		// Trace-ring families only exist for sources that own a trace ring
		// (the local cluster); fleet snapshots assembled from shipped
		// metrics have none.
		var tr *dsps.Trace
		if ts, ok := c.(interface{ Trace() *dsps.Trace }); ok {
			tr = ts.Trace()
		}
		if tr != nil {
			fams = append(fams,
				Family{Name: "predstream_trace_spans_recorded_total", Help: "Trace spans appended to the ring since the last reset.",
					Type: TypeCounter, Samples: []Sample{{Value: float64(tr.Recorded())}}},
				Family{Name: "predstream_trace_spans_dropped_total", Help: "Trace spans overwritten by ring wraparound.",
					Type: TypeCounter, Samples: []Sample{{Value: float64(tr.Dropped())}}},
				Family{Name: "predstream_trace_buffered_spans", Help: "Trace spans currently buffered in the ring.",
					Type: TypeGauge, Samples: []Sample{{Value: float64(tr.Len())}}},
			)
		}
		return fams
	})
}

// NewControllerCollector returns a Collector exposing the predictive
// control loop's latest step: per-worker predicted/observed/basis values,
// detector verdicts, and the ratios applied to each controlled component.
func NewControllerCollector(ctrl *core.Controller) Collector {
	return CollectorFunc(func() []Family {
		history := ctrl.History()
		steps := Family{Name: "predstream_controller_steps_total", Help: "Control steps executed.",
			Type: TypeCounter, Samples: []Sample{{Value: float64(len(history))}}}
		if len(history) == 0 {
			return []Family{steps}
		}
		last := history[len(history)-1]

		usedModel := 0.0
		if last.UsedModel {
			usedModel = 1
		}
		model := Family{Name: "predstream_controller_used_model", Help: "1 when the last step used fitted predictors (vs. reactive fallback).",
			Type: TypeGauge, Samples: []Sample{{Value: usedModel}}}

		predicted := Family{Name: "predstream_controller_predicted", Help: "Per-worker forecast of the control metric at the last step.", Type: TypeGauge}
		observed := Family{Name: "predstream_controller_observed", Help: "Per-worker last-window observation of the control metric.", Type: TypeGauge}
		basis := Family{Name: "predstream_controller_basis", Help: "Per-worker value detection and planning used at the last step.", Type: TypeGauge}
		verdict := Family{Name: "predstream_controller_misbehaving", Help: "Detector verdict per worker at the last step (1 = misbehaving).", Type: TypeGauge}
		workers := make([]string, 0, len(last.Observed))
		for id := range last.Observed {
			workers = append(workers, id)
		}
		sort.Strings(workers)
		for _, id := range workers {
			ls := []Label{{Name: "worker", Value: id}}
			predicted.Samples = append(predicted.Samples, Sample{Labels: ls, Value: last.Predicted[id]})
			observed.Samples = append(observed.Samples, Sample{Labels: ls, Value: last.Observed[id]})
			basis.Samples = append(basis.Samples, Sample{Labels: ls, Value: last.Basis[id]})
			v := 0.0
			if last.Misbehaving[id] {
				v = 1
			}
			verdict.Samples = append(verdict.Samples, Sample{Labels: ls, Value: v})
		}

		ratio := Family{Name: "predstream_controller_ratio", Help: "Split ratio applied per controlled component and task index.", Type: TypeGauge}
		components := make([]string, 0, len(last.Applied))
		for comp := range last.Applied {
			components = append(components, comp)
		}
		sort.Strings(components)
		for _, comp := range components {
			for i, r := range last.Applied[comp] {
				ratio.Samples = append(ratio.Samples, Sample{
					Labels: []Label{
						{Name: "component", Value: comp},
						{Name: "task_index", Value: strconv.Itoa(i)},
					},
					Value: r,
				})
			}
		}
		return []Family{steps, model, predicted, observed, basis, verdict, ratio}
	})
}

// NewChaosCollector returns a Collector exposing a chaos run's live
// counters (pass the same *chaos.Metrics to chaos.Options.Metrics).
func NewChaosCollector(m *chaos.Metrics) Collector {
	return CollectorFunc(func() []Family {
		c := func(name, help string, v int64) Family {
			return Family{Name: name, Help: help, Type: TypeCounter, Samples: []Sample{{Value: float64(v)}}}
		}
		return []Family{
			c("predstream_chaos_runs_total", "Chaos runs started.", m.Runs.Load()),
			c("predstream_chaos_events_fired_total", "Chaos script events applied.", m.EventsFired.Load()),
			c("predstream_chaos_events_skipped_total", "Chaos script events rejected (legitimate under churn).", m.EventsSkipped.Load()),
			c("predstream_chaos_checks_total", "Invariant sweeps executed.", m.Checks.Load()),
			{Name: "predstream_chaos_violations", Help: "Invariant violations in the current/last run.",
				Type: TypeGauge, Samples: []Sample{{Value: float64(m.Violations.Load())}}},
		}
	})
}

// NewSamplerCollector returns a Collector exposing the latest multilevel
// telemetry window per worker — the same features the DRNN consumes,
// readable by an operator.
func NewSamplerCollector(s *telemetry.Sampler) Collector {
	return CollectorFunc(func() []Family {
		execRate := Family{Name: "predstream_window_exec_rate", Help: "Tuples executed per second in the worker's last telemetry window.", Type: TypeGauge}
		avgExec := Family{Name: "predstream_window_avg_exec_ms", Help: "Mean per-tuple processing time (ms) in the last window.", Type: TypeGauge}
		avgQueue := Family{Name: "predstream_window_avg_queue_ms", Help: "Mean queueing delay (ms) in the last window.", Type: TypeGauge}
		queueLen := Family{Name: "predstream_window_queue_length", Help: "Input queue backlog at the last window end.", Type: TypeGauge}
		for _, id := range s.Workers() {
			wins := s.Series(id)
			if len(wins) == 0 {
				continue
			}
			last := wins[len(wins)-1]
			ls := []Label{{Name: "worker", Value: id}}
			execRate.Samples = append(execRate.Samples, Sample{Labels: ls, Value: last.ExecRate})
			avgExec.Samples = append(avgExec.Samples, Sample{Labels: ls, Value: last.AvgExecMs})
			avgQueue.Samples = append(avgQueue.Samples, Sample{Labels: ls, Value: last.AvgQueueMs})
			queueLen.Samples = append(queueLen.Samples, Sample{Labels: ls, Value: last.QueueLen})
		}
		return []Family{execRate, avgExec, avgQueue, queueLen}
	})
}

// NewRuntimeCollector returns a Collector exposing Go runtime health:
// goroutine count, heap in use, and completed GC cycles.
func NewRuntimeCollector() Collector {
	return CollectorFunc(func() []Family {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return []Family{
			{Name: "go_goroutines", Help: "Currently live goroutines.",
				Type: TypeGauge, Samples: []Sample{{Value: float64(runtime.NumGoroutine())}}},
			{Name: "go_memstats_heap_alloc_bytes", Help: "Heap bytes allocated and in use.",
				Type: TypeGauge, Samples: []Sample{{Value: float64(ms.HeapAlloc)}}},
			{Name: "go_memstats_total_alloc_bytes_total", Help: "Cumulative heap bytes allocated.",
				Type: TypeCounter, Samples: []Sample{{Value: float64(ms.TotalAlloc)}}},
			{Name: "go_gc_cycles_total", Help: "Completed GC cycles.",
				Type: TypeCounter, Samples: []Sample{{Value: float64(ms.NumGC)}}},
		}
	})
}
