package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("t_hist", "help", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	d := h.Snapshot()
	// le semantics: 0.5,1 -> bucket 0; 1.5,2 -> bucket 1; 3,4 -> bucket 2;
	// 5,100 -> overflow.
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if d.Counts[i] != w {
			t.Fatalf("bucket %d: count %d, want %d (all: %v)", i, d.Counts[i], w, d.Counts)
		}
	}
	if d.Total() != 8 {
		t.Fatalf("total %d, want 8", d.Total())
	}
	if math.Abs(d.Sum-117) > 1e-9 {
		t.Fatalf("sum %v, want 117", d.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("t_hist", "help", []float64{1, 2, 4, 8})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	// 100 observations uniform in (0, 4]: 25 per bucket of the first 3.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	if q := h.Quantile(0.5); math.Abs(q-2) > 0.1 {
		t.Fatalf("p50 = %v, want ~2", q)
	}
	if q := h.Quantile(0.99); math.Abs(q-3.96) > 0.2 {
		t.Fatalf("p99 = %v, want ~3.96", q)
	}
	// Overflow values are reported as the last finite bound.
	h2 := NewHistogram("t2", "help", []float64{1})
	h2.Observe(50)
	if q := h2.Quantile(0.9); q != 1 {
		t.Fatalf("overflow quantile = %v, want last bound 1", q)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram("t_hist", "help", ExponentialBounds(1, 2, 8))
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w + 1))
			}
		}(w)
	}
	wg.Wait()
	d := h.Snapshot()
	if d.Total() != workers*per {
		t.Fatalf("total %d, want %d", d.Total(), workers*per)
	}
	wantSum := float64(per) * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8)
	if math.Abs(d.Sum-wantSum) > 1e-6 {
		t.Fatalf("sum %v, want %v", d.Sum, wantSum)
	}
}

func TestHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	h := NewHistogram("t_latency_seconds", "request latency", []float64{0.1, 1})
	reg.Register(h)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`# TYPE t_latency_seconds histogram`,
		`t_latency_seconds_bucket{le="0.1"} 1`,
		`t_latency_seconds_bucket{le="1"} 2`,
		`t_latency_seconds_bucket{le="+Inf"} 3`,
		`t_latency_seconds_count 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestBoundsHelpers(t *testing.T) {
	if got := ExponentialBounds(1, 2, 4); got[0] != 1 || got[3] != 8 {
		t.Fatalf("ExponentialBounds = %v", got)
	}
	if got := LinearBounds(1, 1, 4); got[0] != 1 || got[3] != 4 {
		t.Fatalf("LinearBounds = %v", got)
	}
	for _, f := range []func(){
		func() { NewHistogram("x", "", nil) },
		func() { NewHistogram("x", "", []float64{2, 1}) },
		func() { NewHistogram("x", "", []float64{math.NaN()}) },
		func() { ExponentialBounds(0, 2, 3) },
		func() { LinearBounds(0, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
