// Package obs is the operator-facing observability layer: a pull-based
// metrics registry with a Prometheus text exporter, exporters for the
// engine's sampled tuple traces (JSON and Chrome trace_event), a
// slog-style structured event logger with a deterministic test sink, and
// an HTTP server tying them together with net/http/pprof.
//
// The package is strictly an observer: it imports the engine
// (internal/dsps), the controller (internal/core), the chaos harness
// (internal/chaos), and the feature pipeline (internal/telemetry), never
// the reverse. Engine events reach obs through the dsps.EventSink
// interface, which *Logger satisfies structurally; metrics are gathered
// from point-in-time snapshots at scrape time, so registering collectors
// adds no locking to any hot path.
//
//dsps:deterministic
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// MetricType is the Prometheus exposition type of a metric family.
type MetricType string

const (
	// TypeCounter marks monotonically non-decreasing cumulative values.
	TypeCounter MetricType = "counter"
	// TypeGauge marks values that can go up and down.
	TypeGauge MetricType = "gauge"
	// TypeHistogram marks bucketed distributions with a sum and count.
	TypeHistogram MetricType = "histogram"
)

// Label is one name/value pair attached to a Sample. Collectors must
// emit labels in a fixed order (samples are compared and rendered
// positionally, not by name).
type Label struct {
	Name  string
	Value string
}

// HistogramData is one histogram sample: per-bucket counts (not
// cumulative) with finite upper bounds in Bounds, plus an implicit
// overflow bucket — len(Counts) == len(Bounds)+1 — and the sum of all
// observations. The Prometheus encoder derives the cumulative _bucket,
// _sum, and _count series from it.
type HistogramData struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
}

// Total returns the total observation count across every bucket.
func (h *HistogramData) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Sample is one time series point of a Family: a label set plus either a
// scalar Value (counter/gauge) or a Hist (histogram).
type Sample struct {
	Labels []Label
	Value  float64
	Hist   *HistogramData
}

// Family is one named metric with its help text, type, and samples.
// Names must match Prometheus conventions: [a-zA-Z_:][a-zA-Z0-9_:]*.
type Family struct {
	Name    string
	Help    string
	Type    MetricType
	Samples []Sample
}

// Collector produces metric families at scrape time. Collect must be
// safe for concurrent use and should return families and samples in a
// deterministic order (the registry sorts families by name but preserves
// sample order within a family).
type Collector interface {
	Collect() []Family
}

// CollectorFunc adapts a plain function to the Collector interface.
type CollectorFunc func() []Family

// Collect implements Collector.
func (f CollectorFunc) Collect() []Family { return f() }

// Registry aggregates collectors and renders their output. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a collector; its families appear in subsequent Gather
// calls. Registration order is irrelevant (Gather sorts by family name).
func (r *Registry) Register(c Collector) {
	if c == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// Gather invokes every collector and returns the merged families sorted
// by name. Families with the same name are merged into one (the first
// collector's help and type win), so two collectors may safely
// contribute samples to a shared family.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	collectors := make([]Collector, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	var out []Family
	index := map[string]int{}
	for _, c := range collectors {
		for _, f := range c.Collect() {
			if i, ok := index[f.Name]; ok {
				out[i].Samples = append(out[i].Samples, f.Samples...)
				continue
			}
			index[f.Name] = len(out)
			out = append(out, f)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counter is a monotonically increasing instrument that doubles as its
// own single-sample Collector. Safe for concurrent use.
type Counter struct {
	name string
	help string
	v    atomic.Uint64
}

// NewCounter returns a counter; register it with Registry.Register.
func NewCounter(name, help string) *Counter {
	return &Counter{name: name, help: help}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Collect implements Collector.
func (c *Counter) Collect() []Family {
	return []Family{{
		Name:    c.name,
		Help:    c.help,
		Type:    TypeCounter,
		Samples: []Sample{{Value: float64(c.v.Load())}},
	}}
}

// Gauge is a settable instrument that doubles as its own single-sample
// Collector. Safe for concurrent use.
type Gauge struct {
	name string
	help string
	bits atomic.Uint64
}

// NewGauge returns a gauge; register it with Registry.Register.
func NewGauge(name, help string) *Gauge {
	return &Gauge{name: name, help: help}
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Collect implements Collector.
func (g *Gauge) Collect() []Family {
	return []Family{{
		Name:    g.name,
		Help:    g.help,
		Type:    TypeGauge,
		Samples: []Sample{{Value: g.Value()}},
	}}
}
