package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) encoding of a Registry's
// families: the format `curl :9090/metrics` returns and any Prometheus
// scraper ingests.

// WritePrometheus gathers the registry and writes every family in
// Prometheus text format. Families are sorted by name; within a family,
// samples keep collector order. Invalid metric or label names abort with
// an error rather than emitting an unscrapable page.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.Gather() {
		if err := writeFamily(w, f); err != nil {
			return err
		}
	}
	return nil
}

func writeFamily(w io.Writer, f Family) error {
	if !validMetricName(f.Name) {
		return fmt.Errorf("obs: invalid metric name %q", f.Name)
	}
	if f.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
			return err
		}
	}
	typ := f.Type
	if typ == "" {
		typ = TypeGauge
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, typ); err != nil {
		return err
	}
	for _, s := range f.Samples {
		if err := writeSample(w, f.Name, typ, s); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(w io.Writer, name string, typ MetricType, s Sample) error {
	for _, l := range s.Labels {
		if !validLabelName(l.Name) {
			return fmt.Errorf("obs: invalid label name %q on %s", l.Name, name)
		}
	}
	if typ == TypeHistogram {
		if s.Hist == nil {
			return fmt.Errorf("obs: histogram sample of %s has no histogram data", name)
		}
		return writeHistogram(w, name, s)
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(s.Labels, "", 0), formatValue(s.Value))
	return err
}

// writeHistogram renders the cumulative _bucket series (one per finite
// bound plus le="+Inf"), then _sum and _count.
func writeHistogram(w io.Writer, name string, s Sample) error {
	h := s.Hist
	if len(h.Counts) != len(h.Bounds)+1 {
		return fmt.Errorf("obs: histogram %s has %d counts for %d bounds (want bounds+1)",
			name, len(h.Counts), len(h.Bounds))
	}
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, renderLabels(s.Labels, "le", bound), cum); err != nil {
			return err
		}
	}
	cum += h.Counts[len(h.Counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		name, renderLabels(s.Labels, "le", math.Inf(1)), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		name, renderLabels(s.Labels, "", 0), formatValue(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(s.Labels, "", 0), cum)
	return err
}

// renderLabels renders `{k="v",...}` (empty string for no labels),
// appending an le label when leName is non-empty.
func renderLabels(labels []Label, leName string, le float64) string {
	if len(labels) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if leName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		b.WriteString(formatValue(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus expects, including the
// +Inf/-Inf/NaN spellings.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslashes, quotes, and newlines in a label
// value.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]* and is
// not reserved (double-underscore prefix).
func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
