package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Structured event logging, log/slog-style but stdlib-free of slog so
// the record clock is injectable: tests pin it to a fixed function and
// get byte-identical output for identically seeded runs.

// Level is the severity of a Record. The numeric values match the
// dsps.EventSink level constants (0=debug … 3=error).
type Level int

const (
	// LevelDebug marks high-volume diagnostic records.
	LevelDebug Level = 0
	// LevelInfo marks routine control actions.
	LevelInfo Level = 1
	// LevelWarn marks degraded-but-handled conditions.
	LevelWarn Level = 2
	// LevelError marks failures.
	LevelError Level = 3
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int(l))
	}
}

// Attr is one ordered key/value attribute of a Record.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds an Attr (a convenience mirroring slog.String).
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer-valued Attr.
func Int(key string, value int) Attr {
	return Attr{Key: key, Value: strconv.Itoa(value)}
}

// Record is one structured log event.
type Record struct {
	// TimeNs is the record timestamp in Unix nanoseconds, taken from the
	// logger's clock (zero when the logger's clock returns zero).
	TimeNs int64
	// Level is the severity.
	Level Level
	// Msg is the event message.
	Msg string
	// Attrs are the ordered attributes.
	Attrs []Attr
}

// Handler consumes records. Implementations must be safe for concurrent
// use; the Logger calls Handle from whatever goroutine logged.
type Handler interface {
	Handle(r Record)
}

// Logger filters by level, stamps records with its clock, and forwards
// them to a Handler. A nil *Logger is valid and drops everything, so
// optional observability wiring needs no nil checks at call sites.
type Logger struct {
	handler Handler
	min     Level
	nowNs   func() int64
}

// NewLogger returns a logger forwarding records at or above min to h,
// stamped with the wall clock.
func NewLogger(h Handler, min Level) *Logger {
	return &Logger{handler: h, min: min, nowNs: func() int64 { return time.Now().UnixNano() }}
}

// WithClock returns a copy of the logger stamping records with nowNs
// instead of the wall clock — the determinism hook for tests and seeded
// replays. A nil nowNs stamps every record with zero.
func (l *Logger) WithClock(nowNs func() int64) *Logger {
	if l == nil {
		return nil
	}
	if nowNs == nil {
		nowNs = func() int64 { return 0 }
	}
	return &Logger{handler: l.handler, min: l.min, nowNs: nowNs}
}

// Log emits one record if level clears the logger's threshold.
func (l *Logger) Log(level Level, msg string, attrs ...Attr) {
	if l == nil || l.handler == nil || level < l.min {
		return
	}
	l.handler.Handle(Record{TimeNs: l.nowNs(), Level: level, Msg: msg, Attrs: attrs})
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, attrs ...Attr) { l.Log(LevelDebug, msg, attrs...) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, attrs ...Attr) { l.Log(LevelInfo, msg, attrs...) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, attrs ...Attr) { l.Log(LevelWarn, msg, attrs...) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, attrs ...Attr) { l.Log(LevelError, msg, attrs...) }

// Event adapts the flat key/value form of dsps.EventSink, so a *Logger
// can be passed directly as dsps.ClusterConfig.Events (and to the chaos
// harness and controller) without dsps importing this package. kv pairs
// are consumed in order; a trailing odd key gets an empty value.
func (l *Logger) Event(level int, msg string, kv ...string) {
	if l == nil || l.handler == nil || Level(level) < l.min {
		return
	}
	attrs := make([]Attr, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		a := Attr{Key: kv[i]}
		if i+1 < len(kv) {
			a.Value = kv[i+1]
		}
		attrs = append(attrs, a)
	}
	l.Log(Level(level), msg, attrs...)
}

// TextHandler renders records as single `t=… level=… msg=… k=v` lines to
// an io.Writer, quoting values that contain spaces or quotes. Safe for
// concurrent use.
type TextHandler struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextHandler returns a handler writing to w.
func NewTextHandler(w io.Writer) *TextHandler { return &TextHandler{w: w} }

// Handle implements Handler.
func (h *TextHandler) Handle(r Record) {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%d level=%s msg=%s", r.TimeNs, r.Level, quoteIfNeeded(r.Msg))
	for _, a := range r.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(quoteIfNeeded(a.Value))
	}
	b.WriteByte('\n')
	h.mu.Lock()
	io.WriteString(h.w, b.String())
	h.mu.Unlock()
}

func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}

// MemorySink is a Handler buffering records in memory: the deterministic
// test sink, and the ring behind the HTTP server's /events endpoint.
// With a positive limit it keeps only the most recent records. Safe for
// concurrent use.
type MemorySink struct {
	mu      sync.Mutex
	limit   int
	records []Record
}

// NewMemorySink returns a sink retaining at most limit records (0 =
// unbounded).
func NewMemorySink(limit int) *MemorySink { return &MemorySink{limit: limit} }

// Handle implements Handler.
func (s *MemorySink) Handle(r Record) {
	s.mu.Lock()
	s.records = append(s.records, r)
	if s.limit > 0 && len(s.records) > s.limit {
		// Shift rather than re-slice so the backing array cannot grow
		// without bound under churn.
		n := copy(s.records, s.records[len(s.records)-s.limit:])
		s.records = s.records[:n]
	}
	s.mu.Unlock()
}

// Records returns a copy of the buffered records, oldest first.
func (s *MemorySink) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.records))
	copy(out, s.records)
	return out
}

// Len returns the number of buffered records.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Reset drops all buffered records.
func (s *MemorySink) Reset() {
	s.mu.Lock()
	s.records = nil
	s.mu.Unlock()
}
