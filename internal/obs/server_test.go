package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"predstream/internal/dsps"
)

func TestHTTPHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	ctr := NewCounter("demo_total", "Demo.")
	ctr.Add(3)
	reg.Register(ctr)
	sink := NewMemorySink(8)
	NewLogger(sink, LevelDebug).WithClock(nil).Info("hello", String("k", "v"))
	h := HTTPHandler(ServerConfig{Registry: reg, Events: sink})

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "demo_total 3") {
		t.Fatalf("/metrics body:\n%s", rec.Body.String())
	}

	rec = get("/healthz")
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "ok" {
		t.Fatalf("/healthz = %d %q", rec.Code, rec.Body.String())
	}

	// Tracing not configured: both trace endpoints 404.
	if got := get("/trace.json").Code; got != http.StatusNotFound {
		t.Fatalf("/trace.json without trace = %d", got)
	}
	if got := get("/trace/chrome").Code; got != http.StatusNotFound {
		t.Fatalf("/trace/chrome without trace = %d", got)
	}

	rec = get("/events")
	if rec.Code != http.StatusOK {
		t.Fatalf("/events status %d", rec.Code)
	}
	var events []struct {
		Level string `json:"level"`
		Msg   string `json:"msg"`
		Attrs []Attr `json:"attrs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("/events not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(events) != 1 || events[0].Level != "INFO" || events[0].Msg != "hello" ||
		events[0].Attrs[0] != (Attr{Key: "k", Value: "v"}) {
		t.Fatalf("/events = %+v", events)
	}

	if got := get("/debug/pprof/").Code; got != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", got)
	}
}

func TestHTTPHandlerNilConfig404s(t *testing.T) {
	h := HTTPHandler(ServerConfig{})
	for _, path := range []string{"/metrics", "/events", "/trace.json"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s with empty config = %d, want 404", path, rec.Code)
		}
	}
}

func TestServerServesOverTCP(t *testing.T) {
	c, _ := buildObsCluster(t)
	defer c.Shutdown()
	reg := NewRegistry()
	reg.Register(NewClusterCollector(c))
	srv, err := NewServer("127.0.0.1:0", ServerConfig{Registry: reg, Trace: c.Trace()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "predstream_task_executed_total") {
		t.Fatalf("metrics over TCP: %d\n%s", resp.StatusCode, body)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var spans []json.RawMessage
	if err := json.Unmarshal(body, &spans); err != nil || len(spans) == 0 {
		t.Fatalf("trace over TCP: %v, %d spans", err, len(spans))
	}

	resp, err = http.Get("http://" + srv.Addr() + "/trace/chrome")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"traceEvents"`) {
		t.Fatalf("chrome trace over TCP:\n%s", body)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

// Compile-time check: *Logger satisfies the engine's EventSink contract.
var _ dsps.EventSink = (*Logger)(nil)
