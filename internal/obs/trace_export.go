package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"predstream/internal/dsps"
)

// Exporters for the engine's sampled tuple traces (dsps.Trace): a full-
// fidelity JSON array, a canonical timing-stripped form for determinism
// comparisons, and the Chrome trace_event format for about://tracing.

// WriteTraceJSON writes the spans as a JSON array, one span object per
// line, in the given (ring) order with all timestamps intact.
func WriteTraceJSON(w io.Writer, spans []dsps.TraceSpan) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, s := range spans {
		b, err := json.Marshal(traceSpanJSON(s))
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(spans)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "  %s%s", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// spanJSON mirrors dsps.TraceSpan with Kind rendered as its string name
// (the dsps struct tags would serialize the raw uint8).
type spanJSON struct {
	Seq             uint64 `json:"seq"`
	RootID          uint64 `json:"root_id"`
	Kind            string `json:"kind"`
	Topology        string `json:"topology"`
	Component       string `json:"component"`
	TaskID          int    `json:"task_id"`
	TaskIndex       int    `json:"task_index"`
	WorkerID        string `json:"worker_id"`
	SourceComponent string `json:"source_component,omitempty"`
	StartNs         int64  `json:"start_ns"`
	EndNs           int64  `json:"end_ns"`
	QueueNs         int64  `json:"queue_ns,omitempty"`
	Fanout          int    `json:"fanout,omitempty"`
}

func traceSpanJSON(s dsps.TraceSpan) spanJSON {
	return spanJSON{
		Seq:             s.Seq,
		RootID:          s.RootID,
		Kind:            s.Kind.String(),
		Topology:        s.Topology,
		Component:       s.Component,
		TaskID:          s.TaskID,
		TaskIndex:       s.TaskIndex,
		WorkerID:        s.WorkerID,
		SourceComponent: s.SourceComponent,
		StartNs:         s.StartNs,
		EndNs:           s.EndNs,
		QueueNs:         s.QueueNs,
		Fanout:          s.Fanout,
	}
}

// canonicalSpan is a span with everything wall-clock- or arrival-order-
// dependent removed: no Seq, no timestamps. What remains — who executed
// which sampled root where — is a pure function of the seed for
// topologies with deterministic routing.
type canonicalSpan struct {
	RootID          uint64 `json:"root_id"`
	Kind            string `json:"kind"`
	Topology        string `json:"topology"`
	Component       string `json:"component"`
	TaskID          int    `json:"task_id"`
	TaskIndex       int    `json:"task_index"`
	WorkerID        string `json:"worker_id"`
	SourceComponent string `json:"source_component,omitempty"`
	Fanout          int    `json:"fanout,omitempty"`
}

// CanonicalTraceJSON returns the spans in canonical form: timings and
// ring sequence stripped, sorted by (RootID, Kind with emit first,
// Component, TaskID, SourceComponent). Two identically seeded runs of a
// topology with deterministic routing (fields/global/dynamic grouping, or
// a single producer per shuffle edge) produce byte-identical output, as
// long as the ring did not wrap (wraparound drops spans by arrival
// order, which is scheduling-dependent).
func CanonicalTraceJSON(spans []dsps.TraceSpan) ([]byte, error) {
	canon := make([]canonicalSpan, 0, len(spans))
	for _, s := range spans {
		canon = append(canon, canonicalSpan{
			RootID:          s.RootID,
			Kind:            s.Kind.String(),
			Topology:        s.Topology,
			Component:       s.Component,
			TaskID:          s.TaskID,
			TaskIndex:       s.TaskIndex,
			WorkerID:        s.WorkerID,
			SourceComponent: s.SourceComponent,
			Fanout:          s.Fanout,
		})
	}
	sort.Slice(canon, func(i, j int) bool {
		a, b := canon[i], canon[j]
		if a.RootID != b.RootID {
			return a.RootID < b.RootID
		}
		if a.Kind != b.Kind {
			return a.Kind == dsps.SpanEmit.String()
		}
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		if a.TaskID != b.TaskID {
			return a.TaskID < b.TaskID
		}
		return a.SourceComponent < b.SourceComponent
	})
	return json.MarshalIndent(canon, "", "  ")
}

// chromeEvent is one Chrome trace_event "complete" event (ph:"X");
// timestamps and durations are in microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// WriteChromeTrace writes the spans in Chrome trace_event JSON: load the
// output in about://tracing (or https://ui.perfetto.dev) to see each
// task as a track with its sampled executions. Timestamps are shifted so
// the earliest span starts at zero; pid 1 is the engine, tid is the
// dsps task id.
func WriteChromeTrace(w io.Writer, spans []dsps.TraceSpan) error {
	var t0 int64
	for i, s := range spans {
		if i == 0 || s.StartNs < t0 {
			t0 = s.StartNs
		}
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		dur := float64(s.EndNs-s.StartNs) / 1e3
		if dur <= 0 {
			// Chrome drops zero-duration complete events; keep emits
			// visible as 1µs slivers.
			dur = 1
		}
		args := map[string]string{
			"root_id":   fmt.Sprintf("%016x", s.RootID),
			"worker":    s.WorkerID,
			"component": s.Component,
		}
		if s.Kind == dsps.SpanExec {
			args["queue_us"] = fmt.Sprintf("%.1f", float64(s.QueueNs)/1e3)
			args["source"] = s.SourceComponent
		} else {
			args["fanout"] = fmt.Sprintf("%d", s.Fanout)
		}
		events = append(events, chromeEvent{
			Name: s.Component,
			Cat:  s.Kind.String(),
			Ph:   "X",
			Ts:   float64(s.StartNs-t0) / 1e3,
			Dur:  dur,
			Pid:  1,
			Tid:  s.TaskID,
			Args: args,
		})
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		DisplayUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
