package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution instrument that doubles as its
// own single-sample Collector. Observations are lock-free (one atomic add
// per bucket plus a CAS loop for the sum), so it is safe to call Observe
// from latency-critical paths. Bucket bounds are fixed at construction;
// the final implicit bucket catches everything above the last bound.
type Histogram struct {
	name   string
	help   string
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is overflow
	sum    atomic.Uint64   // float64 bits
}

// NewHistogram returns a histogram with the given finite upper bucket
// bounds, which must be strictly increasing and non-empty; register it
// with Registry.Register. Panics on invalid bounds so misconfiguration
// fails at startup, not at scrape time.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i, b := range own {
		if math.IsNaN(b) || math.IsInf(b, 0) || (i > 0 && b <= own[i-1]) {
			panic("obs: histogram bounds must be finite and strictly increasing")
		}
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: own,
		counts: make([]atomic.Uint64, len(own)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy of the distribution. Buckets are
// read one by one without a global lock, so under concurrent Observe the
// snapshot is approximate (each bucket individually consistent).
func (h *Histogram) Snapshot() HistogramData {
	d := HistogramData{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		d.Counts[i] = h.counts[i].Load()
	}
	return d
}

// Quantile estimates the q-quantile (q in [0,1]) from the current bucket
// counts by linear interpolation inside the bucket where the cumulative
// count crosses q. Values in the overflow bucket are reported as the last
// finite bound (the histogram cannot see beyond it). Returns NaN when the
// histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	d := h.Snapshot()
	return QuantileOf(&d, q)
}

// QuantileOf is Histogram.Quantile over an already-taken snapshot, so one
// snapshot can serve several quantiles consistently.
func QuantileOf(d *HistogramData, q float64) float64 {
	total := d.Total()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range d.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(d.Bounds) {
			// Overflow bucket: unbounded above, report the last bound.
			return d.Bounds[len(d.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = d.Bounds[i-1]
		}
		hi := d.Bounds[i]
		if c == 0 || rank <= prev {
			return lo
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return d.Bounds[len(d.Bounds)-1]
}

// Collect implements Collector.
func (h *Histogram) Collect() []Family {
	d := h.Snapshot()
	return []Family{{
		Name:    h.name,
		Help:    h.help,
		Type:    TypeHistogram,
		Samples: []Sample{{Hist: &d}},
	}}
}

// ExponentialBounds returns n strictly increasing bucket bounds starting
// at start and multiplying by factor, the usual shape for latency
// histograms. Panics unless start > 0, factor > 1, and n >= 1.
func ExponentialBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBounds needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBounds returns n strictly increasing bucket bounds starting at
// start with the given step, the usual shape for small-count histograms
// such as batch sizes. Panics unless step > 0 and n >= 1.
func LinearBounds(start, step float64, n int) []float64 {
	if step <= 0 || n < 1 {
		panic("obs: LinearBounds needs step > 0, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v += step
	}
	return out
}
