package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"predstream/internal/dsps"
)

func sampleSpans() []dsps.TraceSpan {
	return []dsps.TraceSpan{
		{Seq: 0, RootID: 9, Kind: dsps.SpanEmit, Topology: "t", Component: "src",
			TaskID: 0, WorkerID: "worker-0", StartNs: 1000, EndNs: 1000, Fanout: 2},
		{Seq: 1, RootID: 9, Kind: dsps.SpanExec, Topology: "t", Component: "sink",
			TaskID: 1, WorkerID: "worker-1", SourceComponent: "src",
			StartNs: 2000, EndNs: 2500, QueueNs: 900},
		{Seq: 2, RootID: 3, Kind: dsps.SpanEmit, Topology: "t", Component: "src",
			TaskID: 0, WorkerID: "worker-0", StartNs: 3000, EndNs: 3000, Fanout: 1},
	}
}

func TestWriteTraceJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 3 {
		t.Fatalf("%d spans decoded", len(decoded))
	}
	if decoded[0]["kind"] != "emit" || decoded[1]["kind"] != "exec" {
		t.Fatalf("kinds = %v, %v", decoded[0]["kind"], decoded[1]["kind"])
	}
	if decoded[1]["source_component"] != "src" || decoded[1]["queue_ns"] != float64(900) {
		t.Fatalf("exec span = %v", decoded[1])
	}
	// Empty input is still a valid (empty) array.
	buf.Reset()
	if err := WriteTraceJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var empty []any
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil || len(empty) != 0 {
		t.Fatalf("empty trace: %v %v", err, empty)
	}
}

func TestCanonicalTraceJSONSortsAndStrips(t *testing.T) {
	canon, err := CanonicalTraceJSON(sampleSpans())
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(canon, &decoded); err != nil {
		t.Fatal(err)
	}
	// Sorted by RootID: 3 first, then 9's emit before 9's exec.
	if decoded[0]["root_id"] != float64(3) {
		t.Fatalf("order = %v", decoded)
	}
	if decoded[1]["root_id"] != float64(9) || decoded[1]["kind"] != "emit" {
		t.Fatalf("emit-first ordering broken: %v", decoded[1])
	}
	if decoded[2]["kind"] != "exec" {
		t.Fatalf("order = %v", decoded)
	}
	for _, d := range decoded {
		for _, stripped := range []string{"seq", "start_ns", "end_ns", "queue_ns"} {
			if _, ok := d[stripped]; ok {
				t.Fatalf("canonical span still carries %q: %v", stripped, d)
			}
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayUnit != "ms" || len(doc.TraceEvents) != 3 {
		t.Fatalf("doc = %+v", doc)
	}
	// Timestamps shift so the earliest span (StartNs 1000) is at 0 µs.
	if doc.TraceEvents[0].Ts != 0 || doc.TraceEvents[1].Ts != 1 {
		t.Fatalf("ts = %v, %v", doc.TraceEvents[0].Ts, doc.TraceEvents[1].Ts)
	}
	// Zero-duration emits become 1µs slivers; the exec keeps its 0.5µs.
	if doc.TraceEvents[0].Dur != 1 || doc.TraceEvents[1].Dur != 0.5 {
		t.Fatalf("dur = %v, %v", doc.TraceEvents[0].Dur, doc.TraceEvents[1].Dur)
	}
	ev := doc.TraceEvents[1]
	if ev.Ph != "X" || ev.Pid != 1 || ev.Tid != 1 || ev.Cat != "exec" || ev.Args["source"] != "src" {
		t.Fatalf("exec event = %+v", ev)
	}
	if doc.TraceEvents[0].Args["fanout"] != "2" {
		t.Fatalf("emit args = %v", doc.TraceEvents[0].Args)
	}
}

// tracedRun drives a deterministically routed topology (single spout,
// shuffle fan-out, fields-grouped counter) with full sampling and returns
// its canonical trace.
func tracedRun(t *testing.T, seed int64) []byte {
	t.Helper()
	words := []string{"a", "b", "c", "d", "e"}
	var collector dsps.SpoutCollector
	next := 0
	spout := &dsps.SpoutFunc{
		OpenFn: func(_ dsps.TopologyContext, c dsps.SpoutCollector) { collector = c },
		NextFn: func() bool {
			if next >= 300 {
				return false
			}
			collector.Emit(dsps.Values{words[next%len(words)]}, next)
			next++
			return true
		},
	}
	b := dsps.NewTopologyBuilder("trace-det")
	b.SetSpout("src", func() dsps.Spout { return spout }, 1, "word")
	b.SetBolt("pass", func() dsps.Bolt {
		return &dsps.BoltFunc{
			ExecuteFn: func(tp *dsps.Tuple, c dsps.OutputCollector) {
				c.Emit(dsps.Values{tp.Values[0]})
			},
		}
	}, 2, "word").ShuffleGrouping("src")
	b.SetBolt("count", func() dsps.Bolt {
		return &dsps.BoltFunc{ExecuteFn: func(*dsps.Tuple, dsps.OutputCollector) {}}
	}, 3).FieldsGrouping("pass", "word")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := dsps.NewCluster(dsps.ClusterConfig{
		Nodes: 2, QueueSize: 256, AckTimeout: 5 * time.Second,
		Delayer: dsps.NopDelayer{}, Seed: seed,
		TraceSampleRate: 1, TraceBufferSize: 2048,
	})
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(10 * time.Second) {
		t.Fatal("did not drain")
	}
	canon, err := CanonicalTraceJSON(c.Trace().Spans())
	if err != nil {
		t.Fatal(err)
	}
	return canon
}

// TestCanonicalTraceDeterministicAcrossRuns pins the observability
// determinism contract: two identically seeded runs produce byte-
// identical canonical trace JSON.
func TestCanonicalTraceDeterministicAcrossRuns(t *testing.T) {
	first := tracedRun(t, 42)
	second := tracedRun(t, 42)
	if !bytes.Equal(first, second) {
		t.Fatalf("identically seeded canonical traces differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	// Sanity: the trace covered the whole run (300 emits + 600 execs).
	var spans []json.RawMessage
	if err := json.Unmarshal(first, &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 900 {
		t.Fatalf("canonical trace has %d spans, want 900", len(spans))
	}
}
