package timeseries

import (
	"math"
	"testing"
)

func lineSeries(n int) *Series {
	targets := make([]float64, n)
	for i := range targets {
		targets[i] = float64(i)
	}
	return FromTargets(targets)
}

func TestFromTargetsAndAccessors(t *testing.T) {
	s := FromTargets([]float64{1, 2, 3})
	if s.Len() != 3 || s.FeatureDim() != 1 {
		t.Fatalf("Len=%d dim=%d", s.Len(), s.FeatureDim())
	}
	targets := s.Targets()
	if targets[2] != 3 {
		t.Fatalf("Targets = %v", targets)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	sub := s.Slice(1, 3)
	if sub.Len() != 2 || sub.Points[0].Target != 2 {
		t.Fatalf("Slice = %+v", sub.Points)
	}
}

func TestValidateCatchesBadSeries(t *testing.T) {
	s := &Series{Points: []Point{
		{Features: []float64{1, 2}, Target: 1},
		{Features: []float64{1}, Target: 2},
	}}
	if err := s.Validate(); err == nil {
		t.Fatal("ragged features should fail validation")
	}
	nan := &Series{Points: []Point{{Features: []float64{math.NaN()}, Target: 1}}}
	if err := nan.Validate(); err == nil {
		t.Fatal("NaN feature should fail validation")
	}
}

func TestWindow(t *testing.T) {
	s := lineSeries(6) // targets 0..5
	inputs, targets, err := Window(s, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// windows: [0,1]→2, [1,2]→3, [2,3]→4, [3,4]→5.
	if len(inputs) != 4 || len(targets) != 4 {
		t.Fatalf("got %d windows", len(inputs))
	}
	if targets[0] != 2 || targets[3] != 5 {
		t.Fatalf("targets = %v", targets)
	}
	if inputs[1][0][0] != 1 || inputs[1][1][0] != 2 {
		t.Fatalf("window 1 = %v", inputs[1])
	}
	// horizon 2 shifts targets one further.
	_, t2, err := Window(s, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if t2[0] != 3 {
		t.Fatalf("horizon-2 first target = %v", t2[0])
	}
	if _, _, err := Window(s, 0, 1); err == nil {
		t.Fatal("zero window should error")
	}
}

func TestNaivePredictor(t *testing.T) {
	p := &NaivePredictor{}
	if _, err := p.Predict(lineSeries(3), 1); err != ErrNotFitted {
		t.Fatalf("expected ErrNotFitted, got %v", err)
	}
	if err := p.Fit(lineSeries(3)); err != nil {
		t.Fatal(err)
	}
	got, err := p.Predict(lineSeries(5), 1)
	if err != nil || got != 4 {
		t.Fatalf("naive = %v, %v", got, err)
	}
	if _, err := p.Predict(&Series{}, 1); err != ErrShortContext {
		t.Fatalf("expected ErrShortContext, got %v", err)
	}
}

func TestMeanPredictor(t *testing.T) {
	p := &MeanPredictor{}
	if _, err := p.Predict(nil, 1); err != ErrNotFitted {
		t.Fatal("expected ErrNotFitted")
	}
	if err := p.Fit(FromTargets([]float64{2, 4, 6})); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Predict(nil, 1)
	if got != 4 {
		t.Fatalf("mean = %v", got)
	}
	if err := p.Fit(&Series{}); err == nil {
		t.Fatal("empty fit should error")
	}
}

func TestWalkForwardNaiveOnLine(t *testing.T) {
	// Persistence on a unit-slope line is always off by exactly horizon.
	s := lineSeries(20)
	res, err := WalkForward(&NaivePredictor{}, s, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Actual) != 10 {
		t.Fatalf("evaluated %d points", len(res.Actual))
	}
	if math.Abs(res.Report.MAE-1) > 1e-12 {
		t.Fatalf("MAE = %v want 1", res.Report.MAE)
	}
	res3, err := WalkForward(&NaivePredictor{}, s, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res3.Report.MAE-3) > 1e-12 {
		t.Fatalf("horizon-3 MAE = %v want 3", res3.Report.MAE)
	}
}

func TestWalkForwardValidation(t *testing.T) {
	s := lineSeries(10)
	if _, err := WalkForward(&NaivePredictor{}, s, 0, 1); err == nil {
		t.Fatal("trainLen 0 should error")
	}
	if _, err := WalkForward(&NaivePredictor{}, s, 10, 1); err == nil {
		t.Fatal("trainLen == len should error")
	}
	if _, err := WalkForward(&NaivePredictor{}, s, 5, 0); err == nil {
		t.Fatal("horizon 0 should error")
	}
}

func TestCompareOrdersResults(t *testing.T) {
	s := lineSeries(20)
	res, err := Compare([]Predictor{&MeanPredictor{}, &NaivePredictor{}}, s, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Model != "Mean" || res[1].Model != "Naive" {
		t.Fatalf("Compare order wrong: %v %v", res[0].Model, res[1].Model)
	}
	// Naive beats mean on a trending line.
	if res[1].Report.MAE >= res[0].Report.MAE {
		t.Fatalf("naive MAE %v should beat mean MAE %v", res[1].Report.MAE, res[0].Report.MAE)
	}
}
