// Package timeseries defines the common predictor contract the DRNN, ARIMA
// and SVR models implement, plus the windowing and walk-forward evaluation
// harness the accuracy experiments (E1/E2/E9) run on.
package timeseries

import (
	"errors"
	"fmt"

	"predstream/internal/stats"
)

// Point is one multivariate observation: the feature vector visible to the
// predictor at that step and the scalar target to forecast. For univariate
// models the target series alone is used.
type Point struct {
	Features []float64
	Target   float64
}

// Series is an ordered sequence of observations at a fixed sampling period.
type Series struct {
	Points []Point
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.Points) }

// Targets returns the target values as a slice.
func (s *Series) Targets() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Target
	}
	return out
}

// FeatureDim returns the feature vector width, or 0 for an empty series.
func (s *Series) FeatureDim() int {
	if len(s.Points) == 0 {
		return 0
	}
	return len(s.Points[0].Features)
}

// Validate checks that every point has the same feature width and all
// values are finite.
func (s *Series) Validate() error {
	dim := s.FeatureDim()
	for i, p := range s.Points {
		if len(p.Features) != dim {
			return fmt.Errorf("timeseries: point %d has %d features, want %d", i, len(p.Features), dim)
		}
		if !stats.IsFiniteSeries(p.Features) || !stats.IsFiniteSeries([]float64{p.Target}) {
			return fmt.Errorf("timeseries: point %d contains non-finite values", i)
		}
	}
	return nil
}

// FromTargets builds a univariate series whose features equal the target
// (the form ARIMA-style models consume).
func FromTargets(targets []float64) *Series {
	s := &Series{Points: make([]Point, len(targets))}
	for i, t := range targets {
		s.Points[i] = Point{Features: []float64{t}, Target: t}
	}
	return s
}

// Slice returns the sub-series [lo, hi).
func (s *Series) Slice(lo, hi int) *Series {
	return &Series{Points: s.Points[lo:hi]}
}

// Predictor is a performance-prediction model. Fit trains on a historical
// series; Predict returns the forecast `horizon` steps past the end of the
// given context window (horizon=1 is the next step).
type Predictor interface {
	// Name identifies the model in reports ("DRNN", "ARIMA", "SVR").
	Name() string
	// Fit trains the model on the series.
	Fit(train *Series) error
	// Predict forecasts the target `horizon` steps after the last point of
	// recent, which supplies the context window (its tail is used; it must
	// contain at least MinContext points).
	Predict(recent *Series, horizon int) (float64, error)
	// MinContext returns the minimum number of trailing points Predict
	// needs.
	MinContext() int
}

// ErrShortContext is returned by Predict implementations given fewer than
// MinContext points.
var ErrShortContext = errors.New("timeseries: context shorter than MinContext")

// ErrNotFitted is returned by Predict before a successful Fit.
var ErrNotFitted = errors.New("timeseries: model not fitted")
