package timeseries

import (
	"fmt"

	"predstream/internal/stats"
)

// EvalResult holds a model's walk-forward forecasts on the test span along
// with the aligned actuals and the standard error metrics.
type EvalResult struct {
	Model     string
	Actual    []float64
	Predicted []float64
	Report    stats.Report
}

// WalkForward performs the standard rolling-origin evaluation: the model is
// fitted once on series[:trainLen], then for every index i in
// [trainLen, len-horizon] it predicts the target at i+horizon-1 from the
// context ending at i-1. This mirrors how the paper's controller consumes
// predictions (always forecasting the next measurement window from live
// history).
func WalkForward(p Predictor, series *Series, trainLen, horizon int) (*EvalResult, error) {
	if err := series.Validate(); err != nil {
		return nil, err
	}
	n := series.Len()
	if trainLen <= 0 || trainLen >= n {
		return nil, fmt.Errorf("timeseries: trainLen %d out of range for series of %d", trainLen, n)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("timeseries: non-positive horizon %d", horizon)
	}
	if trainLen < p.MinContext() {
		return nil, fmt.Errorf("timeseries: trainLen %d below model MinContext %d", trainLen, p.MinContext())
	}
	if err := p.Fit(series.Slice(0, trainLen)); err != nil {
		return nil, fmt.Errorf("timeseries: fit %s: %w", p.Name(), err)
	}
	res := &EvalResult{Model: p.Name()}
	for i := trainLen; i+horizon-1 < n; i++ {
		ctx := series.Slice(0, i)
		pred, err := p.Predict(ctx, horizon)
		if err != nil {
			return nil, fmt.Errorf("timeseries: predict %s at %d: %w", p.Name(), i, err)
		}
		res.Predicted = append(res.Predicted, pred)
		res.Actual = append(res.Actual, series.Points[i+horizon-1].Target)
	}
	res.Report = stats.Evaluate(p.Name(), res.Actual, res.Predicted)
	return res, nil
}

// Compare runs WalkForward for several predictors on the same series and
// split, returning results in input order. This is the E1/E2 harness.
func Compare(models []Predictor, series *Series, trainLen, horizon int) ([]*EvalResult, error) {
	out := make([]*EvalResult, 0, len(models))
	for _, m := range models {
		r, err := WalkForward(m, series, trainLen, horizon)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Window extracts sliding windows for supervised training: for each valid
// position it yields (features of w consecutive points, target at
// position+w+horizon-1). Models with internal windowing (DRNN, SVR) build
// their datasets through this helper so train and eval windows agree.
func Window(series *Series, w, horizon int) (inputs [][][]float64, targets []float64, err error) {
	if w <= 0 || horizon <= 0 {
		return nil, nil, fmt.Errorf("timeseries: invalid window %d or horizon %d", w, horizon)
	}
	n := series.Len()
	for start := 0; start+w+horizon-1 < n; start++ {
		win := make([][]float64, w)
		for t := 0; t < w; t++ {
			win[t] = series.Points[start+t].Features
		}
		inputs = append(inputs, win)
		targets = append(targets, series.Points[start+w+horizon-1].Target)
	}
	return inputs, targets, nil
}

// NaivePredictor forecasts the last observed target (persistence model), a
// common sanity baseline.
type NaivePredictor struct{ fitted bool }

// Name implements Predictor.
func (n *NaivePredictor) Name() string { return "Naive" }

// Fit implements Predictor.
func (n *NaivePredictor) Fit(*Series) error { n.fitted = true; return nil }

// MinContext implements Predictor.
func (n *NaivePredictor) MinContext() int { return 1 }

// Predict implements Predictor.
func (n *NaivePredictor) Predict(recent *Series, horizon int) (float64, error) {
	if !n.fitted {
		return 0, ErrNotFitted
	}
	if recent.Len() < 1 {
		return 0, ErrShortContext
	}
	return recent.Points[recent.Len()-1].Target, nil
}

// MeanPredictor forecasts the training-set mean, the weakest reasonable
// baseline (equivalent to R²=0).
type MeanPredictor struct {
	mean   float64
	fitted bool
}

// Name implements Predictor.
func (m *MeanPredictor) Name() string { return "Mean" }

// Fit implements Predictor.
func (m *MeanPredictor) Fit(train *Series) error {
	if train.Len() == 0 {
		return fmt.Errorf("timeseries: empty training series")
	}
	m.mean = stats.Mean(train.Targets())
	m.fitted = true
	return nil
}

// MinContext implements Predictor.
func (m *MeanPredictor) MinContext() int { return 1 }

// Predict implements Predictor.
func (m *MeanPredictor) Predict(*Series, int) (float64, error) {
	if !m.fitted {
		return 0, ErrNotFitted
	}
	return m.mean, nil
}
