// Package console exposes a running cluster's state over HTTP as JSON — a
// minimal stand-in for Storm's UI: cluster metrics snapshots, per-worker
// multilevel statistics windows, and controller decisions, consumable by
// dashboards or curl.
//
//	GET /healthz          → {"status":"ok"}
//	GET /snapshot         → the current dsps.Snapshot
//	GET /workers          → per-worker latest telemetry window
//	GET /workers?id=X     → one worker's full window series
//	GET /control          → the controller's step history (if attached)
package console

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"predstream/internal/core"
	"predstream/internal/dsps"
	"predstream/internal/telemetry"
)

// Server wires cluster, sampler and (optionally) controller into an
// http.Handler.
type Server struct {
	cluster    *dsps.Cluster
	sampler    *telemetry.Sampler
	controller *core.Controller
	mux        *http.ServeMux
}

// New builds a console for the cluster. sampler and controller may be nil;
// the corresponding endpoints then report 404.
func New(cluster *dsps.Cluster, sampler *telemetry.Sampler, controller *core.Controller) (*Server, error) {
	if cluster == nil {
		return nil, fmt.Errorf("console: nil cluster")
	}
	s := &Server{cluster: cluster, sampler: sampler, controller: controller, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/workers", s.handleWorkers)
	s.mux.HandleFunc("/control", s.handleControl)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]string{"status": "ok", "at": time.Now().UTC().Format(time.RFC3339)})
}

// snapshotJSON is the wire form of a cluster snapshot: durations become
// explicit nanosecond fields with millisecond conveniences.
type taskJSON struct {
	TaskID           int     `json:"task_id"`
	Component        string  `json:"component"`
	TaskIndex        int     `json:"task_index"`
	WorkerID         string  `json:"worker_id"`
	NodeID           string  `json:"node_id"`
	Executed         int64   `json:"executed"`
	Emitted          int64   `json:"emitted"`
	Acked            int64   `json:"acked"`
	Failed           int64   `json:"failed"`
	Dropped          int64   `json:"dropped"`
	QueueLen         int     `json:"queue_len"`
	AvgExecLatencyMs float64 `json:"avg_exec_latency_ms"`
	AvgCompleteLatMs float64 `json:"avg_complete_latency_ms"`
}

type workerJSON struct {
	WorkerID    string  `json:"worker_id"`
	NodeID      string  `json:"node_id"`
	Executed    int64   `json:"executed"`
	Emitted     int64   `json:"emitted"`
	QueueLen    int     `json:"queue_len"`
	Slowdown    float64 `json:"slowdown"`
	Misbehaving bool    `json:"misbehaving"`
	AvgExecMs   float64 `json:"avg_exec_latency_ms"`
}

type nodeJSON struct {
	NodeID   string   `json:"node_id"`
	Cores    int      `json:"cores"`
	Workers  []string `json:"workers"`
	Executed int64    `json:"executed"`
	Busy     int      `json:"busy"`
}

type snapshotJSON struct {
	At      time.Time    `json:"at"`
	Tasks   []taskJSON   `json:"tasks"`
	Workers []workerJSON `json:"workers"`
	Nodes   []nodeJSON   `json:"nodes"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	snap := s.cluster.Snapshot()
	out := snapshotJSON{At: snap.At}
	for _, t := range snap.Tasks {
		out.Tasks = append(out.Tasks, taskJSON{
			TaskID: t.TaskID, Component: t.Component, TaskIndex: t.TaskIndex,
			WorkerID: t.WorkerID, NodeID: t.NodeID,
			Executed: t.Executed, Emitted: t.Emitted, Acked: t.Acked,
			Failed: t.Failed, Dropped: t.Dropped, QueueLen: t.QueueLen,
			AvgExecLatencyMs: t.AvgExecLatency().Seconds() * 1000,
			AvgCompleteLatMs: t.AvgCompleteLatency().Seconds() * 1000,
		})
	}
	for _, ws := range snap.Workers {
		out.Workers = append(out.Workers, workerJSON{
			WorkerID: ws.WorkerID, NodeID: ws.NodeID,
			Executed: ws.Executed, Emitted: ws.Emitted, QueueLen: ws.QueueLen,
			Slowdown: ws.Slowdown, Misbehaving: ws.Misbehaving,
			AvgExecMs: ws.AvgExecLatency().Seconds() * 1000,
		})
	}
	for _, n := range snap.Nodes {
		out.Nodes = append(out.Nodes, nodeJSON{
			NodeID: n.NodeID, Cores: n.Cores, Workers: n.Workers,
			Executed: n.Executed, Busy: n.Busy,
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if s.sampler == nil {
		http.Error(w, "no sampler attached", http.StatusNotFound)
		return
	}
	if id := r.URL.Query().Get("id"); id != "" {
		series := s.sampler.Series(id)
		if len(series) == 0 {
			http.Error(w, fmt.Sprintf("no windows for worker %q", id), http.StatusNotFound)
			return
		}
		writeJSON(w, series)
		return
	}
	latest := map[string]telemetry.WindowStats{}
	for _, id := range s.sampler.Workers() {
		series := s.sampler.Series(id)
		if len(series) > 0 {
			latest[id] = series[len(series)-1]
		}
	}
	writeJSON(w, latest)
}

func (s *Server) handleControl(w http.ResponseWriter, _ *http.Request) {
	if s.controller == nil {
		http.Error(w, "no controller attached", http.StatusNotFound)
		return
	}
	writeJSON(w, s.controller.History())
}
