package console

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"predstream/internal/core"
	"predstream/internal/dsps"
	"predstream/internal/telemetry"
)

// startTopology spins up a small live topology for console tests.
func startTopology(t *testing.T) (*dsps.Cluster, *dsps.DynamicGrouping, func()) {
	t.Helper()
	emitted := 0
	var col dsps.SpoutCollector
	b := dsps.NewTopologyBuilder("console")
	b.SetSpout("src", func() dsps.Spout {
		return &dsps.SpoutFunc{
			OpenFn: func(_ dsps.TopologyContext, c dsps.SpoutCollector) { col = c },
			NextFn: func() bool {
				if emitted >= 500 {
					return false
				}
				col.Emit(dsps.Values{emitted}, emitted)
				emitted++
				return true
			},
		}
	}, 1, "n")
	dg := b.SetBolt("work", func() dsps.Bolt { return &dsps.BoltFunc{} }, 2).DynamicGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := dsps.NewCluster(dsps.ClusterConfig{Nodes: 1, Delayer: dsps.NopDelayer{}, Seed: 4})
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	return c, dg, c.Shutdown
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil); err == nil {
		t.Fatal("nil cluster accepted")
	}
}

func TestHealthz(t *testing.T) {
	cluster, _, shutdown := startTopology(t)
	defer shutdown()
	srv, err := New(cluster, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("body = %v", body)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	cluster, _, shutdown := startTopology(t)
	defer shutdown()
	cluster.Drain(5 * time.Second)
	srv, _ := New(cluster, nil, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Tasks []struct {
			Component string `json:"component"`
			Executed  int64  `json:"executed"`
		} `json:"tasks"`
		Workers []struct {
			WorkerID string `json:"worker_id"`
		} `json:"workers"`
		Nodes []struct {
			NodeID string `json:"node_id"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Tasks) != 3 || len(snap.Workers) != 2 || len(snap.Nodes) != 1 {
		t.Fatalf("shape: %d tasks, %d workers, %d nodes", len(snap.Tasks), len(snap.Workers), len(snap.Nodes))
	}
	var workExec int64
	for _, task := range snap.Tasks {
		if task.Component == "work" {
			workExec += task.Executed
		}
	}
	if workExec != 500 {
		t.Fatalf("work executed %d, want 500", workExec)
	}
}

func TestWorkersEndpoint(t *testing.T) {
	cluster, _, shutdown := startTopology(t)
	defer shutdown()
	sampler := telemetry.NewSampler(0)
	sampler.Sample(cluster.Snapshot())
	time.Sleep(20 * time.Millisecond)
	cluster.Drain(5 * time.Second)
	sampler.Sample(cluster.Snapshot())

	srv, _ := New(cluster, sampler, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/workers")
	if err != nil {
		t.Fatal(err)
	}
	var latest map[string]telemetry.WindowStats
	if err := json.NewDecoder(resp.Body).Decode(&latest); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(latest) == 0 {
		t.Fatal("no workers reported")
	}
	for id := range latest {
		one, err := http.Get(ts.URL + "/workers?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		var series []telemetry.WindowStats
		if err := json.NewDecoder(one.Body).Decode(&series); err != nil {
			t.Fatal(err)
		}
		one.Body.Close()
		if len(series) == 0 {
			t.Fatalf("worker %s has empty series", id)
		}
	}
	missing, err := http.Get(ts.URL + "/workers?id=ghost")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost worker status %d", missing.StatusCode)
	}
}

func TestWorkersWithoutSampler(t *testing.T) {
	cluster, _, shutdown := startTopology(t)
	defer shutdown()
	srv, _ := New(cluster, nil, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/workers")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestControlEndpoint(t *testing.T) {
	cluster, dg, shutdown := startTopology(t)
	defer shutdown()
	ctrl, err := core.NewController(cluster,
		[]core.ControlTarget{{Component: "work", Grouping: dg}}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Step(); err != nil {
		t.Fatal(err)
	}
	srv, _ := New(cluster, nil, ctrl)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/control")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var history []core.StepReport
	if err := json.NewDecoder(resp.Body).Decode(&history); err != nil {
		t.Fatal(err)
	}
	if len(history) != 1 {
		t.Fatalf("history = %d entries", len(history))
	}
	// No controller attached → 404.
	srv2, _ := New(cluster, nil, nil)
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	r2, err := http.Get(ts2.URL + "/control")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", r2.StatusCode)
	}
}
