package experiments

import (
	"context"
	"sort"
	"testing"
	"time"

	"predstream/internal/apps/urlcount"
	"predstream/internal/chaos"
	"predstream/internal/core"
	"predstream/internal/dsps"
)

// TestChaosSoakControlledBypass replays the E6/E7/E10 regime under the
// chaos harness: a worker hosting a parse task stalls mid-run while the
// reactive controller steers the urls→parse dynamic edge. The invariant
// checker requires the stalled worker's share to drop to ~0 within the
// detection latency (the paper's bypass guarantee) while the engine keeps
// conserving tuples.
func TestChaosSoakControlledBypass(t *testing.T) {
	topo, _, dg, err := urlcount.Build(urlcount.Config{
		Dynamic:   true,
		Seed:      5,
		Window:    time.Second,
		Slide:     200 * time.Millisecond,
		ParseCost: 50 * time.Microsecond,
		CountCost: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// QueueSize must dwarf MaxSpoutPending here: the count stage's hash
	// grouping still routes through the stalled worker, and if its queue
	// fills, backpressure wedges every parse executor — all four workers
	// then read as stalled and there is no healthy median to detect
	// against. With headroom for the in-flight cap plus the timed-out
	// zombies that accumulate during the stall, the stream keeps flowing
	// around the victim.
	c := dsps.NewCluster(dsps.ClusterConfig{
		Nodes:           2,
		QueueSize:       2048,
		MaxSpoutPending: 256,
		AckTimeout:      500 * time.Millisecond,
		Delayer:         dsps.NopDelayer{},
		Seed:            5,
	})
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	ctrl, err := core.NewController(c, []core.ControlTarget{{Component: "parse", Grouping: dg}}, core.Config{
		Policy:        core.PolicyBypass,
		Basis:         core.BasisObserved,
		StallQueueMin: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ctrl.Run(ctx, 25*time.Millisecond)

	// Stall a worker that hosts a parse task but not the spout, so the
	// stream keeps flowing and the stall channel has traffic to flag.
	snap := c.Snapshot()
	spoutWorker := snap.ComponentTasks("urls")[0].WorkerID
	parseTasks := snap.ComponentTasks("parse")
	sort.Slice(parseTasks, func(i, j int) bool { return parseTasks[i].TaskIndex < parseTasks[j].TaskIndex })
	victim := ""
	for _, ts := range parseTasks {
		if ts.WorkerID != spoutWorker {
			victim = ts.WorkerID
			break
		}
	}
	if victim == "" {
		t.Fatal("no parse task placed off the spout worker")
	}

	script := chaos.Script{Seed: 5, Events: []chaos.Event{
		{At: 150 * time.Millisecond, Kind: chaos.KindInject, Worker: victim, Fault: dsps.Fault{Stall: true}},
		{At: 1900 * time.Millisecond, Kind: chaos.KindClear, Worker: victim},
	}}
	rep, err := chaos.Run(c, script, chaos.Options{
		SpoutComponents: topo.Spouts(),
		Controlled: []chaos.ControlledEdge{{
			Component:        "parse",
			Grouping:         dg,
			DetectionLatency: 1200 * time.Millisecond,
			MaxStalledShare:  0.02,
		}},
	})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("controlled chaos run violated invariants:\n%s", rep)
	}
	if rep.Fired != len(script.Events) {
		t.Fatalf("fired %d of %d events:\n%s", rep.Fired, len(script.Events), rep)
	}
	// Guard against a vacuous pass: the controller must actually have
	// steered the edge for the bypass invariant to have had teeth.
	if dg.Updates() == 0 {
		t.Fatal("controller never updated the dynamic grouping")
	}
	t.Logf("clean: %s", rep)
}
