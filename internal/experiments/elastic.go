package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"predstream/internal/apps/urlcount"
	"predstream/internal/core"
	"predstream/internal/dsps"
	"predstream/internal/workload"
)

// ElasticConfig parameterizes E13: static vs elastic parallelism under
// time-varying load. Both systems run the URL-count topology with the
// dynamic grouping and a uniform-policy controller; the elastic system
// additionally lets the planner emit scale actions, so the measured gap
// isolates live parallelism changes from the split-vector machinery.
type ElasticConfig struct {
	// Shapes lists the load shapes to test; default {"diurnal",
	// "flash-crowd"}.
	Shapes []string
	// BaseTPS is the off-peak arrival rate; default 250.
	BaseTPS float64
	// ParseTasks is the static stage parallelism and the elastic starting
	// point; default 2 (each 5ms-cost task serves ~200 tuples/s, so peaks
	// above 2×200 overload the static configuration).
	ParseTasks int
	// MaxParallelism caps elastic scale-ups; default 6.
	MaxParallelism int
	// Warmup runs before measurement; default 1s.
	Warmup time.Duration
	// Measure is the measurement interval; default 8s (long enough for at
	// least one full diurnal period / two flash crowds).
	Measure time.Duration
	// ControlPeriod is the controller step period; default 250ms.
	ControlPeriod time.Duration
	// Workers is the worker-process count; default 4.
	Workers int
	// Seed drives the workload.
	Seed int64
	// Engine tunes the stream engine's data plane (zero = engine defaults).
	Engine EngineKnobs
}

func (c ElasticConfig) withDefaults() ElasticConfig {
	if len(c.Shapes) == 0 {
		c.Shapes = []string{"diurnal", "flash-crowd"}
	}
	if c.BaseTPS <= 0 {
		c.BaseTPS = 250
	}
	if c.ParseTasks <= 0 {
		c.ParseTasks = 2
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = 6
	}
	if c.Warmup <= 0 {
		c.Warmup = time.Second
	}
	if c.Measure <= 0 {
		c.Measure = 8 * time.Second
	}
	if c.ControlPeriod <= 0 {
		c.ControlPeriod = 250 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// shapeFor builds the arrival-rate shape for one E13 scenario, scaled so
// the peak exceeds the static stage capacity while the trough idles it.
func (c ElasticConfig) shapeFor(name string) (workload.RateShape, error) {
	switch name {
	case "diurnal":
		return workload.SinusoidRate{
			Base:      c.BaseTPS,
			Amplitude: 0.8 * c.BaseTPS,
			Period:    c.Measure / 2,
		}, nil
	case "flash-crowd":
		return workload.BurstRate{
			Base:     0.6 * c.BaseTPS,
			BurstX:   4,
			Period:   c.Measure / 2,
			Duration: c.Measure / 8,
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown load shape %q", name)
	}
}

// ElasticCell is one (system, shape) measurement of E13.
type ElasticCell struct {
	System string // "static" or "elastic"
	Shape  string
	// ThroughputTPS is acked roots per second over the interval.
	ThroughputTPS float64
	// AvgLatencyMs / P99LatencyMs summarize complete latency during the
	// interval (from histogram deltas).
	AvgLatencyMs float64
	P99LatencyMs float64
	// FailedTPS is failed roots per second (loss).
	FailedTPS float64
	// ScaleUps and ScaleDowns count executors added/retired during the run.
	ScaleUps   int64
	ScaleDowns int64
	// FinalParallelism is the parse-stage executor count at measurement end.
	FinalParallelism int
}

// ElasticResult is the E13 matrix.
type ElasticResult struct {
	Cells []ElasticCell
}

// Cell returns the measurement for one (system, shape) pair.
func (r *ElasticResult) Cell(system, shape string) (ElasticCell, bool) {
	for _, c := range r.Cells {
		if c.System == system && c.Shape == shape {
			return c, true
		}
	}
	return ElasticCell{}, false
}

// Render prints the E13 table.
func (r *ElasticResult) Render() string {
	var b strings.Builder
	b.WriteString("Elastic vs static parallelism under time-varying load — Windowed URL Count\n")
	fmt.Fprintf(&b, "  %-9s %-12s %12s %12s %10s %9s %5s %5s %5s\n",
		"system", "shape", "acked/s", "latency(ms)", "p99(ms)", "failed/s", "ups", "downs", "par")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-9s %-12s %12.0f %12.2f %10.1f %9.1f %5d %5d %5d\n",
			c.System, c.Shape, c.ThroughputTPS, c.AvgLatencyMs, c.P99LatencyMs, c.FailedTPS,
			c.ScaleUps, c.ScaleDowns, c.FinalParallelism)
	}
	for _, shape := range shapesOf(r.Cells) {
		st, ok1 := r.Cell("static", shape)
		el, ok2 := r.Cell("elastic", shape)
		if ok1 && ok2 && st.P99LatencyMs > 0 {
			fmt.Fprintf(&b, "  %s: elastic p99 is %.1f%% of static\n",
				shape, 100*el.P99LatencyMs/st.P99LatencyMs)
		}
	}
	return b.String()
}

func shapesOf(cells []ElasticCell) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range cells {
		if !seen[c.Shape] {
			seen[c.Shape] = true
			out = append(out, c.Shape)
		}
	}
	return out
}

// CSV renders the E13 series.
func (r *ElasticResult) CSV() [][]string {
	rows := [][]string{{"system", "shape", "throughput_tps", "avg_latency_ms", "p99_latency_ms", "failed_tps", "scale_ups", "scale_downs", "final_parallelism"}}
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.System, c.Shape,
			fmt.Sprintf("%.1f", c.ThroughputTPS),
			fmt.Sprintf("%.3f", c.AvgLatencyMs),
			fmt.Sprintf("%.2f", c.P99LatencyMs),
			fmt.Sprintf("%.2f", c.FailedTPS),
			strconv.FormatInt(c.ScaleUps, 10),
			strconv.FormatInt(c.ScaleDowns, 10),
			strconv.Itoa(c.FinalParallelism),
		})
	}
	return rows
}

// RunElastic executes E13: for each load shape it measures the static
// configuration (parallelism pinned at ParseTasks) and the elastic one
// (the planner scales the parse stage between 1 and MaxParallelism from
// occupancy + forecast signals), comparing throughput, complete-latency
// p99, and loss.
func RunElastic(cfg ElasticConfig) (*ElasticResult, error) {
	cfg = cfg.withDefaults()
	result := &ElasticResult{}
	for _, shape := range cfg.Shapes {
		for _, system := range []string{"static", "elastic"} {
			cell, err := runElasticCell(cfg, system, shape)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s under %s: %w", system, shape, err)
			}
			result.Cells = append(result.Cells, cell)
		}
	}
	return result, nil
}

func runElasticCell(cfg ElasticConfig, system, shapeName string) (ElasticCell, error) {
	cell := ElasticCell{System: system, Shape: shapeName}
	shape, err := cfg.shapeFor(shapeName)
	if err != nil {
		return cell, err
	}
	topo, _, dg, err := urlcount.Build(urlcount.Config{
		Dynamic: true,
		Shape:   shape,
		// Parse dominates (5ms clears the sleep-granularity floor); count
		// is free so the scalable stage is the bottleneck.
		ParseCost:  5 * time.Millisecond,
		CountCost:  -1,
		ParseTasks: cfg.ParseTasks,
		Window:     2 * time.Second,
		Slide:      500 * time.Millisecond,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return cell, err
	}
	ccfg := dsps.ClusterConfig{
		Nodes:        2,
		CoresPerNode: 4,
		Seed:         cfg.Seed,
		AckTimeout:   10 * time.Second,
		// Shallow queues surface overload as complete latency quickly; the
		// spout-pending cap bounds in-flight so the backlog stays honest.
		QueueSize:       64,
		MaxSpoutPending: 512,
	}
	cfg.Engine.apply(&ccfg)
	cluster := dsps.NewCluster(ccfg)
	if err := cluster.Submit(topo, dsps.SubmitConfig{Workers: cfg.Workers}); err != nil {
		return cell, err
	}
	defer cluster.Shutdown()

	ctrlCfg := core.Config{Policy: core.PolicyUniform}
	if system == "elastic" {
		ctrlCfg.Scale = &core.ScaleConfig{
			MinParallelism: 1,
			MaxParallelism: cfg.MaxParallelism,
			UpOccupancy:    0.25,
			UpWindows:      2,
			DownWindows:    8,
			Cooldown:       3 * cfg.ControlPeriod,
			DrainTimeout:   time.Second,
		}
	}
	ctrl, err := core.NewController(cluster,
		[]core.ControlTarget{{Component: "parse", Grouping: dg}},
		ctrlCfg)
	if err != nil {
		return cell, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = ctrl.Run(ctx, cfg.ControlPeriod) }()

	time.Sleep(cfg.Warmup)
	before := cluster.Snapshot()
	time.Sleep(cfg.Measure)
	after := cluster.Snapshot()
	cancel()

	dt := after.At.Sub(before.At).Seconds()
	acked := after.TotalAcked() - before.TotalAcked()
	failed := after.TotalFailed() - before.TotalFailed()
	cell.ThroughputTPS = float64(acked) / dt
	cell.FailedTPS = float64(failed) / dt
	if acked > 0 {
		var latDelta time.Duration
		var histDelta []int64
		for _, ts := range after.Tasks {
			if !ts.IsSpout {
				continue
			}
			prev, _ := before.TaskByID(ts.TaskID)
			latDelta += ts.CompleteLatency - prev.CompleteLatency
			if len(ts.CompleteHist) > 0 {
				diff := make([]int64, len(ts.CompleteHist))
				for i := range diff {
					diff[i] = ts.CompleteHist[i]
					if i < len(prev.CompleteHist) {
						diff[i] -= prev.CompleteHist[i]
					}
				}
				histDelta = dsps.MergeHistograms(histDelta, diff)
			}
		}
		cell.AvgLatencyMs = latDelta.Seconds() * 1000 / float64(acked)
		cell.P99LatencyMs = dsps.HistogramQuantile(histDelta, 0.99).Seconds() * 1000
	}
	for _, sc := range after.Scale {
		cell.ScaleUps += sc.Ups
		cell.ScaleDowns += sc.Downs
	}
	cell.FinalParallelism = cluster.ComponentParallelism(topo.Name, "parse")
	return cell, nil
}
