// Package experiments implements the reconstructed evaluation suite
// E1..E10 (see DESIGN.md): each experiment is a pure function returning a
// structured result plus a text rendering, shared by cmd/experiments and
// the root benchmark harness. Traces default to the deterministic
// queueing-model generator (internal/trace); the accuracy experiments can
// also run against live engine traces.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"predstream/internal/arima"
	"predstream/internal/drnn"
	"predstream/internal/stats"
	"predstream/internal/svr"
	"predstream/internal/telemetry"
	"predstream/internal/timeseries"
	"predstream/internal/trace"
	"predstream/internal/workload"
)

// AppProfile selects the workload profile a synthetic trace mimics.
type AppProfile string

const (
	// AppURLCount mimics the Windowed URL Count runtime profile: light
	// per-tuple work under a diurnal (sinusoidal) load.
	AppURLCount AppProfile = "urlcount"
	// AppContQuery mimics Continuous Queries: heavier per-record work
	// under bursty load.
	AppContQuery AppProfile = "contquery"
)

// traceFor generates the deterministic multilevel-statistics trace for an
// application profile.
func traceFor(app AppProfile, steps int, seed int64) (map[string][]telemetry.WindowStats, error) {
	switch app {
	case AppURLCount:
		return trace.Synthetic(trace.SyntheticConfig{
			Workers: 4, Nodes: 2, Cores: 4,
			BaseMs: 1.0,
			Shape:  workload.SinusoidRate{Base: 900, Amplitude: 500, Period: 50 * time.Second},
			Steps:  steps, Seed: seed,
		}), nil
	case AppContQuery:
		return trace.Synthetic(trace.SyntheticConfig{
			Workers: 4, Nodes: 2, Cores: 4,
			BaseMs: 2.0,
			Shape:  workload.BurstRate{Base: 400, BurstX: 3, Period: 20 * time.Second, Duration: 5 * time.Second},
			Steps:  steps, Seed: seed,
		}), nil
	default:
		return nil, fmt.Errorf("experiments: unknown app profile %q", app)
	}
}

// AccuracyConfig parameterizes E1/E2 (and feeds E3).
type AccuracyConfig struct {
	App     AppProfile
	Steps   int   // trace length in windows; default 500
	Window  int   // model input window; default 10
	Horizon int   // forecast horizon; default 1
	Seed    int64 // default 1
	// Worker selects whose series is predicted; default "worker-0".
	Worker string
	// Epochs overrides DRNN training epochs; default 40.
	Epochs int
	// Workers is the DRNN training worker count; 0 uses all CPUs. Results
	// are worker-count invariant (it changes only wall-clock time), so
	// experiment outputs stay reproducible for any value. Parallelism is
	// per mini-batch, so it only pays off with Config.BatchSize > 1.
	Workers int
}

func (c AccuracyConfig) withDefaults() AccuracyConfig {
	if c.App == "" {
		c.App = AppURLCount
	}
	if c.Steps <= 0 {
		c.Steps = 500
	}
	if c.Window <= 0 {
		c.Window = 10
	}
	if c.Horizon <= 0 {
		c.Horizon = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Worker == "" {
		c.Worker = "worker-0"
	}
	if c.Epochs <= 0 {
		c.Epochs = 40
	}
	return c
}

// AccuracyResult holds one accuracy comparison (one figure of the E1/E2
// family).
type AccuracyResult struct {
	App     AppProfile
	Horizon int
	// Results per model in run order (DRNN, ARIMA, SVR, Naive).
	Results []*timeseries.EvalResult
}

// Best returns the model name with the lowest RMSE.
func (r *AccuracyResult) Best() string {
	best := ""
	bestRMSE := 0.0
	for _, res := range r.Results {
		if best == "" || res.Report.RMSE < bestRMSE {
			best = res.Model
			bestRMSE = res.Report.RMSE
		}
	}
	return best
}

// Render prints the accuracy table the E1/E2 figures report.
func (r *AccuracyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Prediction accuracy — %s, horizon %d (per-worker avg tuple processing time)\n", r.App, r.Horizon)
	for _, res := range r.Results {
		fmt.Fprintf(&b, "  %s\n", res.Report)
	}
	fmt.Fprintf(&b, "  best by RMSE: %s\n", r.Best())
	return b.String()
}

// RunAccuracy executes E1 (urlcount) or E2 (contquery): the DRNN vs ARIMA
// vs SVR walk-forward comparison on one worker's processing-time series,
// plus the persistence baseline.
func RunAccuracy(cfg AccuracyConfig) (*AccuracyResult, error) {
	cfg = cfg.withDefaults()
	traces, err := traceFor(cfg.App, cfg.Steps, cfg.Seed)
	if err != nil {
		return nil, err
	}
	wins, ok := traces[cfg.Worker]
	if !ok {
		return nil, fmt.Errorf("experiments: no trace for worker %q", cfg.Worker)
	}
	featCfg := telemetry.FeatureConfig{Interference: true}
	series := telemetry.ToSeries(wins, telemetry.TargetProcTime, featCfg)
	trainLen := series.Len() * 7 / 10

	models := []timeseries.Predictor{
		drnn.New(drnn.Config{
			Window: cfg.Window, Horizon: cfg.Horizon,
			Hidden: []int{32, 32}, DenseHidden: []int{16},
			Epochs: cfg.Epochs, Seed: cfg.Seed, Workers: cfg.Workers,
		}),
		arima.New(3, 0, 1),
		svr.NewWindowPredictor(cfg.Window, cfg.Horizon, &svr.SVR{C: 10, Eps: 0.05, MaxIter: 200}),
		&timeseries.NaivePredictor{},
	}
	results, err := timeseries.Compare(models, series, trainLen, cfg.Horizon)
	if err != nil {
		return nil, err
	}
	return &AccuracyResult{App: cfg.App, Horizon: cfg.Horizon, Results: results}, nil
}

// OverlayResult is E3: the predicted-vs-actual time series of the best
// model on the held-out span.
type OverlayResult struct {
	Model     string
	Actual    []float64
	Predicted []float64
}

// Render prints the overlay as two aligned series (the data behind the E3
// line chart).
func (r *OverlayResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Predicted vs actual (model %s), %d held-out windows\n", r.Model, len(r.Actual))
	fmt.Fprintf(&b, "  %-6s %12s %12s\n", "t", "actual", "predicted")
	for i := range r.Actual {
		fmt.Fprintf(&b, "  %-6d %12.4f %12.4f\n", i, r.Actual[i], r.Predicted[i])
	}
	return b.String()
}

// RunOverlay executes E3 by running E1 and extracting the best model's
// forecast trace.
func RunOverlay(cfg AccuracyConfig) (*OverlayResult, error) {
	acc, err := RunAccuracy(cfg)
	if err != nil {
		return nil, err
	}
	best := acc.Best()
	for _, res := range acc.Results {
		if res.Model == best {
			return &OverlayResult{Model: best, Actual: res.Actual, Predicted: res.Predicted}, nil
		}
	}
	return nil, fmt.Errorf("experiments: best model %q missing from results", best)
}

// AblationResult is E4: the interference-feature and depth ablation.
type AblationResult struct {
	Rows []AblationRow
}

// AblationRow is one ablation cell.
type AblationRow struct {
	Name   string
	Report stats.Report
}

// Render prints the E4 table.
func (r *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("DRNN ablation — interference features and depth (synthetic co-located trace)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-28s %s\n", row.Name, row.Report)
	}
	return b.String()
}

// RunAblation executes E4 on a trace with strong co-location interference:
// DRNN with vs without co-located-worker features, and 1 vs 2 recurrent
// layers. epochs <= 0 defaults to 60; workers is the training worker count
// (0 uses all CPUs; it does not affect the results).
func RunAblation(steps, epochs int, seed int64, workers int) (*AblationResult, error) {
	if steps <= 0 {
		steps = 500
	}
	if epochs <= 0 {
		epochs = 60
	}
	if seed == 0 {
		seed = 1
	}
	traces := trace.Synthetic(trace.SyntheticConfig{
		Workers: 4, Nodes: 1, Cores: 2, // everyone co-located, tight cores
		BaseMs: 1.0,
		Alpha:  3,
		// Independent, *short*-burst per-worker load shapes plus a lagged
		// interference impact: a co-worker's 2-window burst hits this
		// worker's processing time three windows later, after the burst
		// itself has already ended. The target's own history therefore
		// carries no warning at all — only the co-located-worker features
		// see the burst coming. This is the regime the paper's
		// interference-aware model is built for.
		Shapes: []workload.RateShape{
			workload.BurstRate{Base: 350, BurstX: 5, Period: 13 * time.Second, Duration: 2 * time.Second},
			workload.BurstRate{Base: 400, BurstX: 5, Period: 17 * time.Second, Duration: 2 * time.Second},
			workload.BurstRate{Base: 300, BurstX: 6, Period: 19 * time.Second, Duration: 2 * time.Second},
			workload.BurstRate{Base: 450, BurstX: 5, Period: 23 * time.Second, Duration: 2 * time.Second},
		},
		InterferenceLag: 3,
		NoiseStd:        0.03,
		SpikeProb:       0.005,
		Steps:           steps, Seed: seed,
	})
	workerIDs := make([]string, 0, len(traces))
	for id := range traces {
		workerIDs = append(workerIDs, id)
	}
	sort.Strings(workerIDs)
	type variant struct {
		name         string
		interference bool
		hidden       []int
	}
	variants := []variant{
		{"interference, 2 layers", true, []int{32, 32}},
		{"interference, 1 layer", true, []int{32}},
		{"no interference, 2 layers", false, []int{32, 32}},
		{"no interference, 1 layer", false, []int{32}},
	}
	out := &AblationResult{}
	for _, v := range variants {
		// Pool every worker's walk-forward residuals so the comparison is
		// over 4× the evaluation points — a single worker's series is too
		// noisy to separate the variants reliably.
		var actual, pred []float64
		for _, id := range workerIDs {
			series := telemetry.ToSeries(traces[id], telemetry.TargetProcTime, telemetry.FeatureConfig{Interference: v.interference})
			model := drnn.New(drnn.Config{
				Window: 10, Hidden: v.hidden, DenseHidden: []int{16},
				Epochs: epochs, Patience: -1, Seed: seed, Workers: workers,
			})
			res, err := timeseries.WalkForward(model, series, series.Len()*7/10, 1)
			if err != nil {
				return nil, err
			}
			actual = append(actual, res.Actual...)
			pred = append(pred, res.Predicted...)
		}
		out.Rows = append(out.Rows, AblationRow{Name: v.name, Report: stats.Evaluate("DRNN", actual, pred)})
	}
	return out, nil
}

// ConvergenceResult is E8: DRNN training-loss-vs-epoch.
type ConvergenceResult struct {
	Losses    []float64
	NumParams int
}

// Render prints the E8 series.
func (r *ConvergenceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DRNN training convergence (%d parameters)\n", r.NumParams)
	fmt.Fprintf(&b, "  %-6s %12s\n", "epoch", "mean loss")
	for i, l := range r.Losses {
		fmt.Fprintf(&b, "  %-6d %12.6f\n", i, l)
	}
	return b.String()
}

// RunConvergence executes E8 on the E1 trace.
func RunConvergence(cfg AccuracyConfig) (*ConvergenceResult, error) {
	cfg = cfg.withDefaults()
	traces, err := traceFor(cfg.App, cfg.Steps, cfg.Seed)
	if err != nil {
		return nil, err
	}
	series := telemetry.ToSeries(traces[cfg.Worker], telemetry.TargetProcTime, telemetry.FeatureConfig{Interference: true})
	model := drnn.New(drnn.Config{
		Window: cfg.Window, Hidden: []int{32, 32}, DenseHidden: []int{16},
		Epochs: cfg.Epochs, Seed: cfg.Seed, Patience: -1, Workers: cfg.Workers,
	})
	trainLen := series.Len() * 7 / 10
	if err := model.Fit(series.Slice(0, trainLen)); err != nil {
		return nil, err
	}
	return &ConvergenceResult{Losses: model.LossHistory(), NumParams: model.NumParams()}, nil
}

// SensitivityResult is E9: DRNN accuracy across window sizes and horizons.
type SensitivityResult struct {
	Windows  []int
	Horizons []int
	// MAPE[i][j] is the MAPE for Windows[i] × Horizons[j].
	MAPE [][]float64
}

// Render prints the E9 grid.
func (r *SensitivityResult) Render() string {
	var b strings.Builder
	b.WriteString("DRNN sensitivity — MAPE(%) by input window and horizon\n")
	fmt.Fprintf(&b, "  %-10s", "window\\h")
	for _, h := range r.Horizons {
		fmt.Fprintf(&b, " %8d", h)
	}
	b.WriteString("\n")
	for i, w := range r.Windows {
		fmt.Fprintf(&b, "  %-10d", w)
		for j := range r.Horizons {
			fmt.Fprintf(&b, " %8.2f", r.MAPE[i][j])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RunSensitivity executes E9 on the E1 trace.
func RunSensitivity(cfg AccuracyConfig, windows, horizons []int) (*SensitivityResult, error) {
	cfg = cfg.withDefaults()
	if len(windows) == 0 {
		windows = []int{5, 10, 20}
	}
	if len(horizons) == 0 {
		horizons = []int{1, 3, 5}
	}
	traces, err := traceFor(cfg.App, cfg.Steps, cfg.Seed)
	if err != nil {
		return nil, err
	}
	series := telemetry.ToSeries(traces[cfg.Worker], telemetry.TargetProcTime, telemetry.FeatureConfig{Interference: true})
	trainLen := series.Len() * 7 / 10
	out := &SensitivityResult{Windows: windows, Horizons: horizons}
	for _, w := range windows {
		row := make([]float64, 0, len(horizons))
		for _, h := range horizons {
			model := drnn.New(drnn.Config{
				Window: w, Horizon: h,
				Hidden: []int{24}, DenseHidden: []int{12},
				Epochs: 25, Seed: cfg.Seed, Workers: cfg.Workers,
			})
			res, err := timeseries.WalkForward(model, series, trainLen, h)
			if err != nil {
				return nil, err
			}
			row = append(row, res.Report.MAPE)
		}
		out.MAPE = append(out.MAPE, row)
	}
	return out, nil
}
