package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Each result type exposes CSV() — a header row plus data rows — so the
// series behind every figure can be written to disk and plotted directly
// (cmd/experiments -out).

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CSV returns the accuracy table (E1/E2).
func (r *AccuracyResult) CSV() [][]string {
	rows := [][]string{{"model", "mae", "rmse", "mape_pct", "smape_pct", "r2"}}
	for _, res := range r.Results {
		rep := res.Report
		rows = append(rows, []string{res.Model, f(rep.MAE), f(rep.RMSE), f(rep.MAPE), f(rep.SMAPE), f(rep.R2)})
	}
	return rows
}

// CSV returns the overlay series (E3).
func (r *OverlayResult) CSV() [][]string {
	rows := [][]string{{"t", "actual", "predicted"}}
	for i := range r.Actual {
		rows = append(rows, []string{strconv.Itoa(i), f(r.Actual[i]), f(r.Predicted[i])})
	}
	return rows
}

// CSV returns the ablation table (E4).
func (r *AblationResult) CSV() [][]string {
	rows := [][]string{{"variant", "mae", "rmse", "mape_pct", "r2"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Name, f(row.Report.MAE), f(row.Report.RMSE), f(row.Report.MAPE), f(row.Report.R2)})
	}
	return rows
}

// CSV returns the split-tracking series (E5).
func (r *GroupingResult) CSV() [][]string {
	if len(r.Bins) == 0 {
		return [][]string{{"phase", "bin"}}
	}
	n := len(r.Bins[0].Requested)
	header := []string{"phase", "bin"}
	for i := 0; i < n; i++ {
		header = append(header, fmt.Sprintf("requested_%d", i))
	}
	for i := 0; i < n; i++ {
		header = append(header, fmt.Sprintf("observed_%d", i))
	}
	rows := [][]string{header}
	for _, b := range r.Bins {
		row := []string{strconv.Itoa(b.Phase), strconv.Itoa(b.Bin)}
		for _, v := range b.Requested {
			row = append(row, f(v))
		}
		for _, v := range b.Observed {
			row = append(row, f(v))
		}
		rows = append(rows, row)
	}
	return rows
}

// CSV returns the reliability matrix (E6/E7).
func (r *ReliabilityResult) CSV() [][]string {
	rows := [][]string{{"system", "misbehaving", "throughput_tps", "avg_latency_ms", "p99_latency_ms", "failed_tps", "retained"}}
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.System, strconv.Itoa(c.Misbehaving),
			f(c.ThroughputTPS), f(c.AvgLatencyMs), f(c.P99LatencyMs), f(c.FailedTPS),
			f(r.Degradation(c.System, c.Misbehaving)),
		})
	}
	return rows
}

// CSV returns the convergence series (E8).
func (r *ConvergenceResult) CSV() [][]string {
	rows := [][]string{{"epoch", "mean_loss"}}
	for i, l := range r.Losses {
		rows = append(rows, []string{strconv.Itoa(i), f(l)})
	}
	return rows
}

// CSV returns the sensitivity grid (E9) in long form.
func (r *SensitivityResult) CSV() [][]string {
	rows := [][]string{{"window", "horizon", "mape_pct"}}
	for i, w := range r.Windows {
		for j, h := range r.Horizons {
			rows = append(rows, []string{strconv.Itoa(w), strconv.Itoa(h), f(r.MAPE[i][j])})
		}
	}
	return rows
}

// CSV returns the reaction trace (E10/E10r).
func (r *ReactionResult) CSV() [][]string {
	rows := [][]string{{"step", "fault_active", "victim_flagged", "victim_ratio", "throughput_tps"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			strconv.Itoa(p.Step), strconv.FormatBool(p.FaultActive),
			strconv.FormatBool(p.VictimFlagged), f(p.VictimRatio), f(p.ThroughputTPS),
		})
	}
	return rows
}

// CSV returns the policy ablation table (E11).
func (r *PolicyAblationResult) CSV() [][]string {
	rows := [][]string{{"policy", "throughput_tps", "retained"}}
	for _, c := range r.Cells {
		rows = append(rows, []string{c.Policy, f(c.ThroughputTPS), f(c.Retained)})
	}
	return rows
}

// CSV returns the quantized-serving table (E14) in long form; the
// accuracy columns repeat per row so each path's cells are self-contained.
func (r *ServingResult) CSV() [][]string {
	rows := [][]string{{"path", "batch", "ns_per_window", "weight_bytes", "rmse", "mape_pct", "max_abs_delta", "mean_abs_delta"}}
	for _, c := range r.Cells {
		rep, bytes := r.FloatReport, r.FloatBytes
		if c.Path == "int8" {
			rep, bytes = r.QuantReport, r.QuantBytes
		}
		rows = append(rows, []string{
			c.Path, strconv.Itoa(c.Batch), f(c.NsPerWindow), strconv.Itoa(bytes),
			f(rep.RMSE), f(rep.MAPE), f(r.MaxAbsDelta), f(r.MeanAbsDelta),
		})
	}
	return rows
}

// WriteCSV writes rows produced by any result's CSV method.
func WriteCSV(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(rows); err != nil {
		return fmt.Errorf("experiments: write csv: %w", err)
	}
	return nil
}
