package experiments

import (
	"context"
	"testing"
	"time"

	"predstream/internal/apps/urlcount"
	"predstream/internal/chaos"
	"predstream/internal/core"
	"predstream/internal/dsps"
)

// TestRunElasticShape runs a shortened E13 flash-crowd column and checks
// that the elastic system actually scaled while the static one stayed
// pinned. The headline comparison (elastic p99 beating static) is left to
// the full-size cmd/experiments run — at test durations the gap is real
// but too noisy to assert on.
func TestRunElasticShape(t *testing.T) {
	res, err := RunElastic(ElasticConfig{
		Shapes:  []string{"flash-crowd"},
		Warmup:  500 * time.Millisecond,
		Measure: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(res.Cells))
	}
	st, ok := res.Cell("static", "flash-crowd")
	if !ok {
		t.Fatal("missing static cell")
	}
	if st.ScaleUps != 0 || st.ScaleDowns != 0 || st.FinalParallelism != 2 {
		t.Fatalf("static cell scaled: %+v", st)
	}
	el, ok := res.Cell("elastic", "flash-crowd")
	if !ok {
		t.Fatal("missing elastic cell")
	}
	if el.ScaleUps == 0 {
		t.Fatalf("elastic cell never scaled up: %+v", el)
	}
	if el.ThroughputTPS <= 0 {
		t.Fatalf("elastic cell processed nothing: %+v", el)
	}
	rows := res.CSV()
	if len(rows) != 3 || len(rows[0]) != 9 {
		t.Fatalf("csv shape = %dx%d", len(rows), len(rows[0]))
	}
}

// TestChaosSoakElasticScale interleaves generated scale events with worker
// faults on the URL-count topology while an elastic controller is live —
// the full stack the -elastic dspsim flag exercises. Invariants must hold
// and the run must drain.
func TestChaosSoakElasticScale(t *testing.T) {
	topo, _, dg, err := urlcount.Build(urlcount.Config{
		Dynamic:   true,
		Seed:      11,
		Window:    time.Second,
		Slide:     200 * time.Millisecond,
		ParseCost: 50 * time.Microsecond,
		CountCost: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := dsps.NewCluster(dsps.ClusterConfig{
		Nodes:           2,
		QueueSize:       2048,
		MaxSpoutPending: 256,
		AckTimeout:      500 * time.Millisecond,
		Delayer:         dsps.NopDelayer{},
		Seed:            11,
	})
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	ctrl, err := core.NewController(c, []core.ControlTarget{{Component: "parse", Grouping: dg}}, core.Config{
		Policy: core.PolicyUniform,
		Scale: &core.ScaleConfig{
			MaxParallelism: 6,
			UpOccupancy:    0.3,
			UpWindows:      2,
			Cooldown:       100 * time.Millisecond,
			DrainTimeout:   500 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ctrl.Run(ctx, 25*time.Millisecond)

	script := chaos.Generate(11, chaos.GenConfig{
		Events:          10,
		Horizon:         1500 * time.Millisecond,
		Workers:         4,
		Stall:           true,
		Scale:           true,
		ScaleComponents: []string{"parse"},
	})
	rep, err := chaos.Run(c, script, chaos.Options{SpoutComponents: topo.Spouts()})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("elastic chaos soak violated invariants:\n%s", rep)
	}
	if !rep.Drained {
		t.Fatalf("soak did not drain:\n%s", rep)
	}
	snap := c.Snapshot()
	if len(snap.Scale) == 0 || snap.Scale[0].Ups == 0 {
		t.Fatalf("no scale-ups recorded: %+v", snap.Scale)
	}
	t.Logf("clean: %s scale=%+v", rep, snap.Scale[0])
}
