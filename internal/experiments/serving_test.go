package experiments

import (
	"strings"
	"testing"
)

// TestRunServingShape runs a shortened E14 and checks the invariants the
// full experiment documents: the int8 path stays within the documented
// tolerance of float64, the packed footprint is a multiple smaller, and
// every (path, batch) cell is timed.
func TestRunServingShape(t *testing.T) {
	res, err := RunServing(ServingConfig{Steps: 160, Epochs: 4, Reps: 1, Batches: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows <= 0 {
		t.Fatal("no held-out windows evaluated")
	}
	if !res.WithinTolerance() {
		t.Fatalf("max |float64-int8| = %v exceeds documented tolerance %v", res.MaxAbsDelta, res.Tolerance)
	}
	if res.MeanAbsDelta > res.MaxAbsDelta {
		t.Fatalf("mean delta %v > max delta %v", res.MeanAbsDelta, res.MaxAbsDelta)
	}
	if res.QuantBytes <= 0 || res.QuantBytes*4 >= res.FloatBytes {
		t.Fatalf("int8 footprint %d B is not a multiple smaller than float64 %d B", res.QuantBytes, res.FloatBytes)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("got %d timing cells, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.NsPerWindow <= 0 {
			t.Fatalf("cell %s/B=%d has non-positive timing %v", c.Path, c.Batch, c.NsPerWindow)
		}
	}
	if rows := res.CSV(); len(rows) != 1+len(res.Cells) {
		t.Fatalf("CSV has %d rows, want %d", len(rows), 1+len(res.Cells))
	}
	if out := res.Render(); !strings.Contains(out, "int8") || !strings.Contains(out, "tolerance") {
		t.Fatalf("render missing expected content:\n%s", out)
	}
}
