package experiments

import (
	"time"

	"predstream/internal/dsps"
)

// EngineKnobs carries the stream engine's data-plane tuning through an
// experiment config. Zero values keep the engine defaults (AckerShards 8,
// BatchSize 32, FlushInterval 1ms — see DESIGN.md "Data plane").
type EngineKnobs struct {
	// AckerShards is the acker's lock-stripe count, rounded up to a power
	// of two.
	AckerShards int
	// BatchSize is the data-plane micro-batch size in tuples, clamped to
	// the queue size.
	BatchSize int
	// FlushInterval is the spout partial-batch flush deadline.
	FlushInterval time.Duration
	// RingSize > 0 switches the engine to the SPSC ring data plane (data
	// plane v2) with rings of at least this many batch slots; 0 keeps the
	// channel plane.
	RingSize int
	// WaitStrategy picks how ring-plane consumers wait for input: "hybrid"
	// (default), "spin" or "park".
	WaitStrategy string
}

// apply copies the knobs onto a cluster config; zero fields are left for
// the engine's withDefaults.
func (k EngineKnobs) apply(cfg *dsps.ClusterConfig) {
	cfg.AckerShards = k.AckerShards
	cfg.BatchSize = k.BatchSize
	cfg.FlushInterval = k.FlushInterval
	cfg.RingSize = k.RingSize
	cfg.WaitStrategy = k.WaitStrategy
}
