package experiments

import (
	"strings"
	"testing"
	"time"
)

// The accuracy tests use short traces and few epochs to stay fast; the
// full-size runs live in cmd/experiments and the root benchmarks.

func TestRunAccuracyURLCountShape(t *testing.T) {
	res, err := RunAccuracy(AccuracyConfig{App: AppURLCount, Steps: 220, Epochs: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 4 {
		t.Fatalf("models = %d", len(res.Results))
	}
	names := map[string]bool{}
	for _, r := range res.Results {
		names[r.Model] = true
		if len(r.Actual) == 0 {
			t.Fatalf("%s evaluated zero points", r.Model)
		}
	}
	for _, want := range []string{"DRNN", "ARIMA", "SVR", "Naive"} {
		if !names[want] {
			t.Fatalf("missing model %s", want)
		}
	}
	if !strings.Contains(res.Render(), "DRNN") {
		t.Fatal("render missing models")
	}
}

func TestAccuracyHeadlineShapeDRNNWins(t *testing.T) {
	// The paper's headline: DRNN beats ARIMA and SVR on both apps. Run at
	// moderate size so the comparison is meaningful but quick.
	for _, app := range []AppProfile{AppURLCount, AppContQuery} {
		res, err := RunAccuracy(AccuracyConfig{App: app, Steps: 300, Epochs: 25})
		if err != nil {
			t.Fatal(err)
		}
		byModel := map[string]float64{}
		for _, r := range res.Results {
			byModel[r.Model] = r.Report.RMSE
		}
		if byModel["DRNN"] >= byModel["ARIMA"] {
			t.Errorf("%s: DRNN RMSE %v did not beat ARIMA %v", app, byModel["DRNN"], byModel["ARIMA"])
		}
		if byModel["DRNN"] >= byModel["SVR"] {
			t.Errorf("%s: DRNN RMSE %v did not beat SVR %v", app, byModel["DRNN"], byModel["SVR"])
		}
	}
}

func TestRunAccuracyUnknownApp(t *testing.T) {
	if _, err := RunAccuracy(AccuracyConfig{App: "bogus"}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := RunAccuracy(AccuracyConfig{Worker: "worker-99", Steps: 200}); err == nil {
		t.Fatal("unknown worker accepted")
	}
}

func TestRunOverlay(t *testing.T) {
	res, err := RunOverlay(AccuracyConfig{Steps: 200, Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Actual) != len(res.Predicted) || len(res.Actual) == 0 {
		t.Fatalf("overlay lengths %d/%d", len(res.Actual), len(res.Predicted))
	}
	if res.Model == "" {
		t.Fatal("no model name")
	}
	if !strings.Contains(res.Render(), "actual") {
		t.Fatal("render broken")
	}
}

func TestRunAblationShape(t *testing.T) {
	res, err := RunAblation(260, 30, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]float64{}
	for _, row := range res.Rows {
		byName[row.Name] = row.Report.RMSE
	}
	// The paper's claim: interference features improve accuracy on
	// co-located traces.
	if byName["interference, 2 layers"] >= byName["no interference, 2 layers"] {
		t.Errorf("interference features did not help: %v vs %v",
			byName["interference, 2 layers"], byName["no interference, 2 layers"])
	}
	if !strings.Contains(res.Render(), "ablation") {
		t.Fatal("render broken")
	}
}

func TestRunConvergenceDecreases(t *testing.T) {
	res, err := RunConvergence(AccuracyConfig{Steps: 200, Epochs: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != 12 {
		t.Fatalf("epochs = %d", len(res.Losses))
	}
	if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
		t.Fatalf("loss did not decrease: %v -> %v", res.Losses[0], res.Losses[len(res.Losses)-1])
	}
	if res.NumParams == 0 {
		t.Fatal("no parameter count")
	}
}

func TestRunSensitivityGrid(t *testing.T) {
	res, err := RunSensitivity(AccuracyConfig{Steps: 200, Epochs: 8}, []int{5, 10}, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MAPE) != 2 || len(res.MAPE[0]) != 2 {
		t.Fatalf("grid = %v", res.MAPE)
	}
	for i := range res.MAPE {
		for j := range res.MAPE[i] {
			if res.MAPE[i][j] <= 0 {
				t.Fatalf("MAPE[%d][%d] = %v", i, j, res.MAPE[i][j])
			}
		}
	}
	if !strings.Contains(res.Render(), "window") {
		t.Fatal("render broken")
	}
}

func TestRunGroupingTracksPhases(t *testing.T) {
	res, err := RunGrouping(GroupingConfig{TuplesPerPhase: 1200, Bins: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bins) != 9 { // 3 phases × 3 bins
		t.Fatalf("bins = %d", len(res.Bins))
	}
	// Smooth WRR should track requested ratios to well under 1%.
	if res.MaxDeviation > 0.01 {
		t.Fatalf("max deviation %v too large", res.MaxDeviation)
	}
	if !strings.Contains(res.Render(), "requested") {
		t.Fatal("render broken")
	}
}

func TestRunGroupingValidation(t *testing.T) {
	if _, err := RunGrouping(GroupingConfig{Tasks: 3, Phases: [][]float64{{0.5, 0.5}}}); err == nil {
		t.Fatal("mismatched phase width accepted")
	}
}

func TestRunReactionTrace(t *testing.T) {
	res, err := RunReaction(ReactionConfig{
		Steps:         10,
		FaultAtStep:   4,
		ControlPeriod: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 10 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Before the fault the victim holds a healthy share; after detection
	// it must be bypassed within a few periods.
	if res.ReactionSteps < 0 {
		t.Fatalf("controller never bypassed the victim: %s", res.Render())
	}
	if res.ReactionSteps > 5 {
		t.Fatalf("reaction took %d periods", res.ReactionSteps)
	}
	last := res.Points[len(res.Points)-1]
	if !last.VictimFlagged || last.VictimRatio != 0 {
		t.Fatalf("final state not bypassed: %+v", last)
	}
}

func TestRunReactionWithRecovery(t *testing.T) {
	res, err := RunReaction(ReactionConfig{
		Steps:         18,
		FaultAtStep:   4,
		ClearAtStep:   9,
		ProbeRatio:    0.05,
		ControlPeriod: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReactionSteps < 0 {
		t.Fatalf("never bypassed:\n%s", res.Render())
	}
	if res.ReadmitSteps < 0 {
		t.Fatalf("never re-admitted after recovery:\n%s", res.Render())
	}
	last := res.Points[len(res.Points)-1]
	if last.VictimFlagged {
		t.Fatalf("victim still flagged at end:\n%s", res.Render())
	}
	if last.VictimRatio < 0.15 {
		t.Fatalf("victim share %v not restored:\n%s", last.VictimRatio, res.Render())
	}
}

func TestRunInterference(t *testing.T) {
	res, err := RunInterference(InterferenceConfig{Windows: 10, Period: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 10 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.BeforeMs <= 0 || res.AfterMs <= 0 {
		t.Fatalf("means = %v/%v", res.BeforeMs, res.AfterMs)
	}
	// The neighbour must inflate the foreground's processing time and be
	// visible in the co-location features.
	if res.AfterMs <= res.BeforeMs {
		t.Fatalf("no interference: %.3f → %.3f\n%s", res.BeforeMs, res.AfterMs, res.Render())
	}
	// The machine-level NodeBusy feature must rise when the neighbour's
	// executors join the node. (CoExecRate is confounded here: the
	// foreground loses throughput as the neighbour adds its own, so the
	// sum can stay flat.)
	var busyBefore, busyAfter float64
	var nBefore, nAfter int
	for _, p := range res.Points {
		if p.NeighborOn {
			busyAfter += p.FgNodeBusy
			nAfter++
		} else {
			busyBefore += p.FgNodeBusy
			nBefore++
		}
	}
	if busyAfter/float64(nAfter) <= busyBefore/float64(nBefore) {
		t.Fatalf("node-busy feature did not rise: %v vs %v\n%s",
			busyBefore/float64(nBefore), busyAfter/float64(nAfter), res.Render())
	}
	if !strings.Contains(res.Render(), "neighbour") {
		t.Fatal("render broken")
	}
	checkCSVRows(t, res.CSV(), 11, 5)
}

func checkCSVRows(t *testing.T, rows [][]string, wantRows, wantCols int) {
	t.Helper()
	if len(rows) != wantRows {
		t.Fatalf("csv rows = %d want %d", len(rows), wantRows)
	}
	for _, r := range rows {
		if len(r) != wantCols {
			t.Fatalf("csv row width = %d want %d", len(r), wantCols)
		}
	}
}

func TestRunReliabilityStallVariant(t *testing.T) {
	if testing.Short() {
		t.Skip("stall reliability takes several seconds")
	}
	// With a fully hung worker the framework must still hold most of its
	// throughput (stall-channel detection + bypass), while the static
	// baseline collapses. One task per worker (10 workers) isolates the
	// hang to a parse task: a hung worker hosting a fields-grouped count
	// task or the report sink wedges the whole pipeline for *both*
	// systems, because only dynamic-grouping edges can route around a
	// dead executor.
	res, err := RunReliability(ReliabilityConfig{
		Misbehaving: []int{0, 1},
		Stall:       true,
		Workers:     10,
		Warmup:      2 * time.Second,
		Measure:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	fwDeg := res.Degradation("framework", 1)
	stDeg := res.Degradation("static", 1)
	// Shape assertions only: absolute retention varies with background
	// load on a 1-vCPU host, but the framework must keep a meaningful
	// flow while the static baseline wedges at (near) zero.
	if fwDeg < 0.15 {
		t.Fatalf("framework retained only %.0f%% under stall\n%s", 100*fwDeg, res.Render())
	}
	if stDeg > 0.05 {
		t.Fatalf("static baseline did not wedge under stall: %.2f\n%s", stDeg, res.Render())
	}
	if fwDeg <= stDeg {
		t.Fatalf("framework %.2f not better than static %.2f under stall\n%s", fwDeg, stDeg, res.Render())
	}
}

func TestRunPolicyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("policy ablation takes several seconds")
	}
	res, err := RunPolicyAblation(ReliabilityConfig{
		Warmup:  2 * time.Second,
		Measure: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 || res.Healthy <= 0 {
		t.Fatalf("result shape: %+v", res)
	}
	byPolicy := map[string]float64{}
	for _, c := range res.Cells {
		byPolicy[c.Policy] = c.ThroughputTPS
	}
	// Prediction-driven policies must beat the uniform (no-steering)
	// policy under a fault.
	if byPolicy["bypass"] <= byPolicy["uniform"] {
		t.Fatalf("bypass %v not better than uniform %v\n%s",
			byPolicy["bypass"], byPolicy["uniform"], res.Render())
	}
	if byPolicy["weighted"] <= byPolicy["uniform"] {
		t.Fatalf("weighted %v not better than uniform %v\n%s",
			byPolicy["weighted"], byPolicy["uniform"], res.Render())
	}
	if !strings.Contains(res.Render(), "policy") {
		t.Fatal("render broken")
	}
}

func TestRunReliabilityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("reliability matrix takes several seconds")
	}
	res, err := RunReliability(ReliabilityConfig{
		Misbehaving: []int{0, 1},
		Warmup:      2 * time.Second,
		Measure:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	fw, _ := res.Cell("framework", 0)
	st, _ := res.Cell("static", 0)
	if fw.ThroughputTPS <= 0 || st.ThroughputTPS <= 0 {
		t.Fatalf("healthy throughput missing: fw=%v st=%v", fw.ThroughputTPS, st.ThroughputTPS)
	}
	// The paper's reliability shape: with one misbehaving worker the
	// framework retains a much larger fraction of its healthy throughput
	// than the static baseline.
	fwDeg := res.Degradation("framework", 1)
	stDeg := res.Degradation("static", 1)
	if fwDeg <= stDeg {
		t.Fatalf("framework degradation %.2f not better than static %.2f\n%s", fwDeg, stDeg, res.Render())
	}
	if !strings.Contains(res.Render(), "framework") {
		t.Fatal("render broken")
	}
}
