package experiments

import (
	"fmt"
	"strings"
	"time"

	"predstream/internal/apps/urlcount"
	"predstream/internal/dsps"
	"predstream/internal/telemetry"
)

// InterferenceConfig parameterizes E12: cross-topology co-location
// interference, the scenario behind the paper's "interference of
// co-located worker processes".
type InterferenceConfig struct {
	// Windows is the number of measurement windows recorded; the noisy
	// neighbour starts at Windows/2. Default 16.
	Windows int
	// Period is the measurement window length; default 250ms.
	Period time.Duration
	// NeighborCost is the neighbour topology's per-tuple cost; default
	// 5ms.
	NeighborCost time.Duration
	// Seed drives the workloads.
	Seed int64
}

func (c InterferenceConfig) withDefaults() InterferenceConfig {
	if c.Windows <= 0 {
		c.Windows = 16
	}
	if c.Period <= 0 {
		c.Period = 250 * time.Millisecond
	}
	if c.NeighborCost <= 0 {
		c.NeighborCost = 5 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// InterferencePoint is one window of E12.
type InterferencePoint struct {
	Window       int
	NeighborOn   bool
	FgAvgExecMs  float64 // foreground workers' mean processing time
	FgCoExecRate float64 // co-located execute rate the fg telemetry sees
	FgNodeBusy   float64
}

// InterferenceResult is the E12 trace.
type InterferenceResult struct {
	Points []InterferencePoint
	// BeforeMs and AfterMs are the mean fg processing times without/with
	// the neighbour.
	BeforeMs, AfterMs float64
}

// Render prints the E12 series.
func (r *InterferenceResult) Render() string {
	var b strings.Builder
	b.WriteString("Cross-topology interference — foreground processing time vs co-located load\n")
	fmt.Fprintf(&b, "  %-7s %-9s %12s %14s %10s\n", "window", "neighbor", "fg exec(ms)", "co exec rate", "node busy")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-7d %-9v %12.3f %14.0f %10.1f\n",
			p.Window, p.NeighborOn, p.FgAvgExecMs, p.FgCoExecRate, p.FgNodeBusy)
	}
	fmt.Fprintf(&b, "  mean fg processing time: %.3fms alone → %.3fms with neighbour (%.2fx)\n",
		r.BeforeMs, r.AfterMs, r.AfterMs/r.BeforeMs)
	return b.String()
}

// CSV returns the E12 series.
func (r *InterferenceResult) CSV() [][]string {
	rows := [][]string{{"window", "neighbor_on", "fg_avg_exec_ms", "fg_co_exec_rate", "fg_node_busy"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprint(p.Window), fmt.Sprint(p.NeighborOn),
			f(p.FgAvgExecMs), f(p.FgCoExecRate), f(p.FgNodeBusy),
		})
	}
	return rows
}

// RunInterference executes E12: Windowed URL Count runs alone on a small
// cluster; mid-run a second topology (a synthetic noisy neighbour) is
// submitted onto the same nodes. The foreground's multilevel statistics
// show processing time rising together with the machine-level co-location
// features — the exact signal the paper's interference-aware DRNN
// consumes.
func RunInterference(cfg InterferenceConfig) (*InterferenceResult, error) {
	cfg = cfg.withDefaults()
	cluster := dsps.NewCluster(dsps.ClusterConfig{
		Nodes:           1,
		CoresPerNode:    2,
		Seed:            cfg.Seed,
		AckTimeout:      30 * time.Second,
		QueueSize:       32,
		MaxSpoutPending: 64,
	})
	fg, _, _, err := urlcount.Build(urlcount.Config{
		ParseCost: 3 * time.Millisecond,
		CountCost: -1,
		Window:    2 * time.Second,
		Slide:     500 * time.Millisecond,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if err := cluster.Submit(fg, dsps.SubmitConfig{Workers: 2}); err != nil {
		return nil, err
	}
	defer cluster.Shutdown()

	sampler := telemetry.NewSamplerFiltered(0, "parse")
	sampler.Sample(cluster.Snapshot())

	neighborAt := cfg.Windows / 2
	result := &InterferenceResult{}
	var beforeSum, afterSum float64
	var beforeN, afterN int
	neighborOn := false
	for w := 0; w < cfg.Windows; w++ {
		if w == neighborAt {
			noisy, err := buildNeighbor(cfg)
			if err != nil {
				return nil, err
			}
			if err := cluster.Submit(noisy, dsps.SubmitConfig{Workers: 2}); err != nil {
				return nil, err
			}
			neighborOn = true
		}
		time.Sleep(cfg.Period)
		sampler.Sample(cluster.Snapshot())
		point := InterferencePoint{Window: w, NeighborOn: neighborOn}
		var execSum, coSum, busySum float64
		n := 0
		for _, id := range sampler.Workers() {
			wins := sampler.Series(id)
			if len(wins) == 0 {
				continue
			}
			last := wins[len(wins)-1]
			execSum += last.AvgExecMs
			coSum += last.CoExecRate
			busySum += last.NodeBusy
			n++
		}
		if n > 0 {
			point.FgAvgExecMs = execSum / float64(n)
			point.FgCoExecRate = coSum / float64(n)
			point.FgNodeBusy = busySum / float64(n)
		}
		if neighborOn {
			afterSum += point.FgAvgExecMs
			afterN++
		} else {
			beforeSum += point.FgAvgExecMs
			beforeN++
		}
		result.Points = append(result.Points, point)
	}
	if beforeN > 0 {
		result.BeforeMs = beforeSum / float64(beforeN)
	}
	if afterN > 0 {
		result.AfterMs = afterSum / float64(afterN)
	}
	return result, nil
}

// buildNeighbor assembles the noisy-neighbour topology: an unpaced spout
// driving a costly bolt.
func buildNeighbor(cfg InterferenceConfig) (*dsps.Topology, error) {
	emitted := 0
	var col dsps.SpoutCollector
	b := dsps.NewTopologyBuilder("noisy-neighbor")
	b.SetSpout("noise-src", func() dsps.Spout {
		return &dsps.SpoutFunc{
			OpenFn: func(_ dsps.TopologyContext, c dsps.SpoutCollector) { col = c },
			NextFn: func() bool {
				// Typed lane emit: no Values slice, no msgID boxing (msgID 0
				// would be unanchored, hence the +1).
				col.EmitInt64(int64(emitted), uint64(emitted)+1)
				emitted++
				return true
			},
		}
	}, 1, "n")
	b.SetBolt("noise-work", func() dsps.Bolt { return &dsps.BoltFunc{} }, 2).
		ShuffleGrouping("noise-src").
		WithExecCost(cfg.NeighborCost)
	return b.Build()
}
