package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"predstream/internal/stats"
	"predstream/internal/timeseries"
)

func TestCSVShapes(t *testing.T) {
	acc := &AccuracyResult{
		App:     AppURLCount,
		Horizon: 1,
		Results: []*timeseries.EvalResult{
			{Model: "DRNN", Report: stats.Report{Model: "DRNN", MAE: 1, RMSE: 2, MAPE: 3, SMAPE: 4, R2: 0.5}},
		},
	}
	checkCSV(t, acc.CSV(), 2, 6)

	ov := &OverlayResult{Model: "DRNN", Actual: []float64{1, 2}, Predicted: []float64{1.1, 2.1}}
	checkCSV(t, ov.CSV(), 3, 3)

	ab := &AblationResult{Rows: []AblationRow{{Name: "v", Report: stats.Report{}}}}
	checkCSV(t, ab.CSV(), 2, 5)

	gr := &GroupingResult{Bins: []GroupingBin{
		{Phase: 0, Bin: 0, Requested: []float64{0.5, 0.5}, Observed: []float64{0.5, 0.5}},
	}}
	checkCSV(t, gr.CSV(), 2, 6)
	if got := (&GroupingResult{}).CSV(); len(got) != 1 {
		t.Fatalf("empty grouping CSV = %v", got)
	}

	rel := &ReliabilityResult{Cells: []ReliabilityCell{{System: "framework", ThroughputTPS: 10}}}
	checkCSV(t, rel.CSV(), 2, 7)

	conv := &ConvergenceResult{Losses: []float64{0.5, 0.4}}
	checkCSV(t, conv.CSV(), 3, 2)

	sens := &SensitivityResult{Windows: []int{5}, Horizons: []int{1, 3}, MAPE: [][]float64{{7, 8}}}
	checkCSV(t, sens.CSV(), 3, 3)

	react := &ReactionResult{Points: []ReactionPoint{{Step: 0, VictimRatio: 0.25}}}
	checkCSV(t, react.CSV(), 2, 5)

	pol := &PolicyAblationResult{Cells: []PolicyCell{{Policy: "bypass", ThroughputTPS: 10, Retained: 0.8}}}
	checkCSV(t, pol.CSV(), 2, 3)
}

// checkCSV verifies row count, uniform width, and that the rows survive a
// WriteCSV round-trip as valid CSV.
func checkCSV(t *testing.T, rows [][]string, wantRows, wantCols int) {
	t.Helper()
	if len(rows) != wantRows {
		t.Fatalf("rows = %d want %d (%v)", len(rows), wantRows, rows)
	}
	for i, r := range rows {
		if len(r) != wantCols {
			t.Fatalf("row %d has %d cols want %d (%v)", i, len(r), wantCols, r)
		}
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	parsed, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != wantRows {
		t.Fatalf("round-trip rows = %d", len(parsed))
	}
}
