package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"predstream/internal/dsps"
)

// GroupingConfig parameterizes E5, the dynamic-grouping validation.
type GroupingConfig struct {
	// Tasks is the downstream parallelism; default 2.
	Tasks int
	// Phases are the requested ratio vectors, applied in sequence.
	// Default: 50/50 → 70/30 → 30/70.
	Phases [][]float64
	// TuplesPerPhase is how many tuples flow during each phase; default
	// 2000.
	TuplesPerPhase int
	// Bins is how many observation bins each phase is split into (the
	// time axis of the E5 figure); default 4.
	Bins int
	// Engine tunes the stream engine's data plane (zero = engine
	// defaults).
	Engine EngineKnobs
}

func (c GroupingConfig) withDefaults() GroupingConfig {
	if c.Tasks <= 0 {
		c.Tasks = 2
	}
	if len(c.Phases) == 0 {
		c.Phases = [][]float64{{0.5, 0.5}, {0.7, 0.3}, {0.3, 0.7}}
	}
	if c.TuplesPerPhase <= 0 {
		c.TuplesPerPhase = 2000
	}
	if c.Bins <= 0 {
		c.Bins = 4
	}
	return c
}

// GroupingBin is one observation bin of E5.
type GroupingBin struct {
	Phase     int
	Bin       int
	Requested []float64
	Observed  []float64 // fraction of the bin's tuples per task
}

// GroupingResult is the E5 series.
type GroupingResult struct {
	Bins []GroupingBin
	// MaxDeviation is the largest |observed−requested| over all bins and
	// tasks.
	MaxDeviation float64
}

// Render prints the E5 series.
func (r *GroupingResult) Render() string {
	var b strings.Builder
	b.WriteString("Dynamic grouping validation — requested vs observed split per bin\n")
	fmt.Fprintf(&b, "  %-6s %-4s %-24s %-24s\n", "phase", "bin", "requested", "observed")
	for _, bin := range r.Bins {
		fmt.Fprintf(&b, "  %-6d %-4d %-24s %-24s\n", bin.Phase, bin.Bin,
			fmtRatios(bin.Requested), fmtRatios(bin.Observed))
	}
	fmt.Fprintf(&b, "  max deviation: %.4f\n", r.MaxDeviation)
	return b.String()
}

func fmtRatios(rs []float64) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("%.3f", r)
	}
	return strings.Join(parts, "/")
}

// RunGrouping executes E5 on the live engine: a spout streams tuples
// through a dynamic grouping while the requested ratios step through the
// configured phases; per-bin observed distributions are computed from task
// counters.
func RunGrouping(cfg GroupingConfig) (*GroupingResult, error) {
	cfg = cfg.withDefaults()
	for i, p := range cfg.Phases {
		if len(p) != cfg.Tasks {
			return nil, fmt.Errorf("experiments: phase %d has %d ratios for %d tasks", i, len(p), cfg.Tasks)
		}
	}

	// The spout emits against an atomic budget: each observation bin
	// raises the budget by exactly binSize tuples and drains, so bin
	// boundaries are tuple-exact regardless of engine speed.
	var budget, emitted atomic.Int64
	var col dsps.SpoutCollector
	b := dsps.NewTopologyBuilder("e5-dynamic-grouping")
	b.SetSpout("src", func() dsps.Spout {
		return &dsps.SpoutFunc{
			OpenFn: func(_ dsps.TopologyContext, c dsps.SpoutCollector) { col = c },
			NextFn: func() bool {
				n := emitted.Load()
				if n >= budget.Load() {
					return false
				}
				// Typed lane emit: no Values slice, no msgID boxing. The +1
				// keeps the first tuple anchored (msgID 0 means unanchored).
				col.EmitInt64(n, uint64(n)+1)
				emitted.Store(n + 1)
				return true
			},
		}
	}, 1, "n")
	dg := b.SetBolt("sink", func() dsps.Bolt { return &dsps.BoltFunc{} }, cfg.Tasks).
		DynamicGrouping("src")
	topo, err := b.Build()
	if err != nil {
		return nil, err
	}
	ccfg := dsps.ClusterConfig{Nodes: 2, Delayer: dsps.NopDelayer{}, Seed: 1}
	cfg.Engine.apply(&ccfg)
	cluster := dsps.NewCluster(ccfg)
	if err := cluster.Submit(topo, dsps.SubmitConfig{}); err != nil {
		return nil, err
	}
	defer cluster.Shutdown()

	result := &GroupingResult{}
	prevCounts := taskCounts(cluster, "sink", cfg.Tasks)
	binSize := cfg.TuplesPerPhase / cfg.Bins
	for phaseIdx, ratios := range cfg.Phases {
		if err := dg.SetRatios(ratios); err != nil {
			return nil, err
		}
		requested := dg.Ratios()
		for bin := 0; bin < cfg.Bins; bin++ {
			budget.Add(int64(binSize))
			deadline := time.Now().Add(10 * time.Second)
			for emitted.Load() < budget.Load() && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if !cluster.Drain(5 * time.Second) {
				return nil, fmt.Errorf("experiments: e5 failed to drain at phase %d bin %d", phaseIdx, bin)
			}
			counts := taskCounts(cluster, "sink", cfg.Tasks)
			observed := make([]float64, cfg.Tasks)
			var binTotal float64
			for i := range counts {
				observed[i] = float64(counts[i] - prevCounts[i])
				binTotal += observed[i]
			}
			prevCounts = counts
			if binTotal > 0 {
				for i := range observed {
					observed[i] /= binTotal
				}
			}
			gb := GroupingBin{Phase: phaseIdx, Bin: bin, Requested: requested, Observed: observed}
			for i := range observed {
				if d := abs(observed[i] - requested[i]); d > result.MaxDeviation {
					result.MaxDeviation = d
				}
			}
			result.Bins = append(result.Bins, gb)
		}
	}
	return result, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// taskCounts reads the executed counter of each task of a component,
// ordered by task index.
func taskCounts(c *dsps.Cluster, component string, n int) []int64 {
	snap := c.Snapshot()
	out := make([]int64, n)
	for _, ts := range snap.ComponentTasks(component) {
		if ts.TaskIndex < n {
			out[ts.TaskIndex] = ts.Executed
		}
	}
	return out
}
