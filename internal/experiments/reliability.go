package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"predstream/internal/apps/urlcount"
	"predstream/internal/core"
	"predstream/internal/dsps"
)

// ReliabilityConfig parameterizes E6/E7: throughput and latency of the
// framework vs the static baseline under misbehaving workers.
type ReliabilityConfig struct {
	// Misbehaving lists the fault counts to test; default {0, 1, 2}.
	Misbehaving []int
	// Slowdown is the injected slowdown factor; default 8.
	Slowdown float64
	// Stall injects a full hang instead of a slowdown (the crash flavour
	// of misbehaviour); the controller then relies on its stall-detection
	// channel rather than processing-time prediction.
	Stall bool
	// Warmup runs before measurement; default 1s.
	Warmup time.Duration
	// Measure is the measurement interval; default 2s.
	Measure time.Duration
	// ControlPeriod is the controller step period; default 200ms.
	ControlPeriod time.Duration
	// Workers is the worker-process count; default 4.
	Workers int
	// Seed drives the workload.
	Seed int64
	// Engine tunes the stream engine's data plane (zero = engine
	// defaults).
	Engine EngineKnobs
}

func (c ReliabilityConfig) withDefaults() ReliabilityConfig {
	if len(c.Misbehaving) == 0 {
		c.Misbehaving = []int{0, 1, 2}
	}
	if c.Slowdown <= 1 {
		c.Slowdown = 8
	}
	if c.Warmup <= 0 {
		c.Warmup = 2 * time.Second
	}
	if c.Measure <= 0 {
		c.Measure = 3 * time.Second
	}
	if c.ControlPeriod <= 0 {
		c.ControlPeriod = 200 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ReliabilityCell is one (system, fault count) measurement.
type ReliabilityCell struct {
	System      string // "framework" or "static"
	Misbehaving int
	// ThroughputTPS is acked roots per second over the measurement
	// interval.
	ThroughputTPS float64
	// AvgLatencyMs is the mean complete latency of roots acked during the
	// interval.
	AvgLatencyMs float64
	// P99LatencyMs is the 99th-percentile complete latency during the
	// interval (from histogram deltas).
	P99LatencyMs float64
	// FailedTPS is failed roots per second (timeouts/drops).
	FailedTPS float64
}

// ReliabilityResult is the E6 (throughput) and E7 (latency) matrix.
type ReliabilityResult struct {
	Cells []ReliabilityCell
}

// Cell returns the measurement for one (system, misbehaving) pair.
func (r *ReliabilityResult) Cell(system string, misbehaving int) (ReliabilityCell, bool) {
	for _, c := range r.Cells {
		if c.System == system && c.Misbehaving == misbehaving {
			return c, true
		}
	}
	return ReliabilityCell{}, false
}

// Degradation returns throughput relative to the same system's
// fault-free run (1 = no degradation).
func (r *ReliabilityResult) Degradation(system string, misbehaving int) float64 {
	base, ok1 := r.Cell(system, 0)
	cell, ok2 := r.Cell(system, misbehaving)
	if !ok1 || !ok2 || base.ThroughputTPS == 0 {
		return 0
	}
	return cell.ThroughputTPS / base.ThroughputTPS
}

// Render prints the E6/E7 tables.
func (r *ReliabilityResult) Render() string {
	var b strings.Builder
	b.WriteString("Reliability under misbehaving workers — Windowed URL Count\n")
	fmt.Fprintf(&b, "  %-10s %-12s %14s %13s %11s %10s %10s\n",
		"system", "misbehaving", "throughput/s", "latency(ms)", "p99(ms)", "failed/s", "vs healthy")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-10s %-12d %14.0f %13.2f %11.1f %10.1f %9.0f%%\n",
			c.System, c.Misbehaving, c.ThroughputTPS, c.AvgLatencyMs, c.P99LatencyMs, c.FailedTPS,
			100*r.Degradation(c.System, c.Misbehaving))
	}
	return b.String()
}

// RunReliability executes E6/E7: for each fault count it runs the
// framework (dynamic grouping + predictive controller, bypass policy) and
// the static shuffle baseline on the URL-count topology, injecting
// Slowdown× faults on parse-stage workers after warmup, then measures
// steady-state throughput and complete latency.
func RunReliability(cfg ReliabilityConfig) (*ReliabilityResult, error) {
	cfg = cfg.withDefaults()
	result := &ReliabilityResult{}
	for _, faults := range cfg.Misbehaving {
		for _, system := range []string{"framework", "static"} {
			cell, err := runReliabilityCell(cfg, system, faults)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s with %d faults: %w", system, faults, err)
			}
			result.Cells = append(result.Cells, cell)
		}
	}
	return result, nil
}

// PolicyAblationResult is E11: throughput under one misbehaving worker for
// each planner policy, the design-choice ablation DESIGN.md calls out.
type PolicyAblationResult struct {
	// Healthy is the fault-free reference throughput (bypass policy).
	Healthy float64
	// Cells maps policy name → throughput with one misbehaving worker.
	Cells []PolicyCell
}

// PolicyCell is one policy's measurement.
type PolicyCell struct {
	Policy        string
	ThroughputTPS float64
	Retained      float64 // fraction of Healthy
}

// Render prints the E11 table.
func (r *PolicyAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Planner policy ablation — 1 misbehaving worker (healthy reference %.0f tuples/s)\n", r.Healthy)
	fmt.Fprintf(&b, "  %-10s %14s %10s\n", "policy", "throughput/s", "retained")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-10s %14.0f %9.0f%%\n", c.Policy, c.ThroughputTPS, 100*c.Retained)
	}
	return b.String()
}

// RunPolicyAblation executes E11: with one 8× misbehaving worker, compare
// the controller's three planner policies (hard bypass, inverse-weighted,
// uniform). Uniform ≈ the dynamic-grouping equivalent of the static
// baseline, isolating how much of the reliability win comes from the
// planner rather than the grouping mechanism.
func RunPolicyAblation(cfg ReliabilityConfig) (*PolicyAblationResult, error) {
	cfg = cfg.withDefaults()
	healthy, err := runPolicyCell(cfg, core.PolicyBypass, 0)
	if err != nil {
		return nil, err
	}
	out := &PolicyAblationResult{Healthy: healthy}
	for _, p := range []core.PlanPolicy{core.PolicyBypass, core.PolicyWeighted, core.PolicyUniform} {
		tps, err := runPolicyCell(cfg, p, 1)
		if err != nil {
			return nil, fmt.Errorf("experiments: policy %s: %w", p, err)
		}
		cell := PolicyCell{Policy: p.String(), ThroughputTPS: tps}
		if healthy > 0 {
			cell.Retained = tps / healthy
		}
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}

func runPolicyCell(cfg ReliabilityConfig, policy core.PlanPolicy, faults int) (float64, error) {
	cell, err := runCell(cfg, true, &policy, faults)
	return cell.ThroughputTPS, err
}

func runReliabilityCell(cfg ReliabilityConfig, system string, faults int) (ReliabilityCell, error) {
	policy := core.PolicyBypass
	var p *core.PlanPolicy
	if system == "framework" {
		p = &policy
	}
	cell, err := runCell(cfg, system == "framework", p, faults)
	cell.System = system
	cell.Misbehaving = faults
	return cell, err
}

// runCell runs one URL-count measurement: dynamic selects the grouping,
// policy (nil = no controller) the control behaviour, faults the number of
// slowed parse workers.
func runCell(cfg ReliabilityConfig, dynamic bool, policy *core.PlanPolicy, faults int) (ReliabilityCell, error) {
	var cell ReliabilityCell
	appCfg := urlcount.Config{
		Dynamic: dynamic,
		// Parse dominates the pipeline so bypassing the slow parse task
		// restores throughput; count is free of simulated cost because
		// fields grouping cannot bypass (see DESIGN.md). 5ms clears the
		// ~2ms sleep granularity floor so the slowdown signal dominates
		// timer noise.
		ParseCost: 5 * time.Millisecond,
		CountCost: -1,
		Window:    2 * time.Second,
		Slide:     500 * time.Millisecond,
		Seed:      cfg.Seed,
	}
	topo, _, dg, err := urlcount.Build(appCfg)
	if err != nil {
		return cell, err
	}
	ccfg := dsps.ClusterConfig{
		Nodes:        2,
		CoresPerNode: 4,
		Seed:         cfg.Seed,
		AckTimeout:   10 * time.Second,
		// Shallow queues and a tight spout-pending cap make the slow
		// worker's backpressure reach the spout within the warmup, so the
		// measurement window sees the degraded steady state rather than
		// the queue-filling transient.
		QueueSize:       64,
		MaxSpoutPending: 256,
	}
	cfg.Engine.apply(&ccfg)
	cluster := dsps.NewCluster(ccfg)
	if err := cluster.Submit(topo, dsps.SubmitConfig{Workers: cfg.Workers}); err != nil {
		return cell, err
	}
	defer cluster.Shutdown()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if policy != nil {
		ctrl, err := core.NewController(cluster,
			[]core.ControlTarget{{Component: "parse", Grouping: dg}},
			core.Config{Policy: *policy})
		if err != nil {
			return cell, err
		}
		go func() { _ = ctrl.Run(ctx, cfg.ControlPeriod) }()
	}

	time.Sleep(cfg.Warmup / 2)
	// Fault the workers hosting parse tasks (skipping the spout's worker
	// keeps the source alive, as the paper's misbehaving workers are
	// processing workers).
	victims, err := parseWorkers(cluster, faults)
	if err != nil {
		return cell, err
	}
	for _, w := range victims {
		fault := dsps.Fault{Slowdown: cfg.Slowdown}
		if cfg.Stall {
			fault = dsps.Fault{Stall: true}
		}
		if err := cluster.InjectFault(w, fault); err != nil {
			return cell, err
		}
	}
	time.Sleep(cfg.Warmup / 2)

	before := cluster.Snapshot()
	time.Sleep(cfg.Measure)
	after := cluster.Snapshot()

	dt := after.At.Sub(before.At).Seconds()
	acked := after.TotalAcked() - before.TotalAcked()
	failed := after.TotalFailed() - before.TotalFailed()
	cell.ThroughputTPS = float64(acked) / dt
	cell.FailedTPS = float64(failed) / dt
	if acked > 0 {
		var latDelta time.Duration
		histDelta := make([]int64, 0)
		for _, ts := range after.Tasks {
			prev, _ := before.TaskByID(ts.TaskID)
			latDelta += ts.CompleteLatency - prev.CompleteLatency
			if len(ts.CompleteHist) > 0 {
				diff := make([]int64, len(ts.CompleteHist))
				for i := range diff {
					diff[i] = ts.CompleteHist[i]
					if i < len(prev.CompleteHist) {
						diff[i] -= prev.CompleteHist[i]
					}
				}
				histDelta = dsps.MergeHistograms(histDelta, diff)
			}
		}
		cell.AvgLatencyMs = latDelta.Seconds() * 1000 / float64(acked)
		cell.P99LatencyMs = dsps.HistogramQuantile(histDelta, 0.99).Seconds() * 1000
	}
	return cell, nil
}

// parseWorkers returns up to n distinct workers hosting parse tasks,
// preferring workers that do not also host the spout.
func parseWorkers(c *dsps.Cluster, n int) ([]string, error) {
	if n == 0 {
		return nil, nil
	}
	snap := c.Snapshot()
	spoutWorkers := map[string]bool{}
	for _, ts := range snap.ComponentTasks("urls") {
		spoutWorkers[ts.WorkerID] = true
	}
	seen := map[string]bool{}
	var candidates []string
	for _, ts := range snap.ComponentTasks("parse") {
		if seen[ts.WorkerID] || spoutWorkers[ts.WorkerID] {
			continue
		}
		seen[ts.WorkerID] = true
		candidates = append(candidates, ts.WorkerID)
	}
	if len(candidates) < n {
		return nil, fmt.Errorf("experiments: only %d non-spout parse workers for %d faults", len(candidates), n)
	}
	return candidates[:n], nil
}

// ReactionConfig parameterizes E10, the control-loop reaction trace.
type ReactionConfig struct {
	// Steps is the number of control periods to record; default 20.
	Steps int
	// FaultAtStep injects the fault after this step; default Steps/2.
	FaultAtStep int
	// ClearAtStep clears the fault at this step (0 = never), exercising
	// the probe-based re-admission path; requires ProbeRatio > 0 to have
	// an effect.
	ClearAtStep int
	// ProbeRatio is passed to the controller (share of the stream kept
	// flowing to bypassed workers for recovery detection); default 0.
	ProbeRatio float64
	// Slowdown is the injected factor; default 10.
	Slowdown float64
	// ControlPeriod is the step period; default 200ms.
	ControlPeriod time.Duration
	// Seed drives the workload.
	Seed int64
}

func (c ReactionConfig) withDefaults() ReactionConfig {
	if c.Steps <= 0 {
		c.Steps = 20
	}
	if c.FaultAtStep <= 0 {
		c.FaultAtStep = c.Steps / 2
	}
	if c.Slowdown <= 1 {
		c.Slowdown = 10
	}
	if c.ControlPeriod <= 0 {
		c.ControlPeriod = 200 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ReactionPoint is one control period of E10.
type ReactionPoint struct {
	Step        int
	FaultActive bool
	// VictimRatio is the split share the (eventual) victim worker's parse
	// task holds.
	VictimRatio float64
	// VictimFlagged reports whether the detector flagged the victim.
	VictimFlagged bool
	// ThroughputTPS is the acked rate during the period.
	ThroughputTPS float64
}

// ReactionResult is the E10 trace.
type ReactionResult struct {
	Victim string
	Points []ReactionPoint
	// ReactionSteps is how many control periods after fault onset the
	// victim's ratio reached the bypass level (-1 if never).
	ReactionSteps int
	// ReadmitSteps is how many control periods after the fault cleared
	// the victim regained a full share (-1 if never / not exercised).
	ReadmitSteps int
}

// Render prints the E10 trace.
func (r *ReactionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Control-loop reaction — fault on %s\n", r.Victim)
	fmt.Fprintf(&b, "  %-5s %-6s %-9s %-8s %12s\n", "step", "fault", "flagged", "ratio", "acked/s")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-5d %-6v %-9v %-8.3f %12.0f\n",
			p.Step, p.FaultActive, p.VictimFlagged, p.VictimRatio, p.ThroughputTPS)
	}
	fmt.Fprintf(&b, "  reaction time: %d control period(s)\n", r.ReactionSteps)
	if r.ReadmitSteps >= 0 {
		fmt.Fprintf(&b, "  re-admission time: %d control period(s) after recovery\n", r.ReadmitSteps)
	}
	return b.String()
}

// RunReaction executes E10: the framework runs on URL count; a fault
// lands mid-run; the per-step split ratios and throughput around the onset
// are recorded.
func RunReaction(cfg ReactionConfig) (*ReactionResult, error) {
	cfg = cfg.withDefaults()
	topo, _, dg, err := urlcount.Build(urlcount.Config{
		Dynamic:   true,
		ParseCost: 5 * time.Millisecond,
		CountCost: -1,
		Window:    2 * time.Second,
		Slide:     500 * time.Millisecond,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	cluster := dsps.NewCluster(dsps.ClusterConfig{
		Nodes: 2, CoresPerNode: 4, Seed: cfg.Seed, AckTimeout: 10 * time.Second,
	})
	if err := cluster.Submit(topo, dsps.SubmitConfig{Workers: 4}); err != nil {
		return nil, err
	}
	defer cluster.Shutdown()
	ctrl, err := core.NewController(cluster,
		[]core.ControlTarget{{Component: "parse", Grouping: dg}},
		core.Config{Policy: core.PolicyBypass, ProbeRatio: cfg.ProbeRatio})
	if err != nil {
		return nil, err
	}

	victims, err := parseWorkers(cluster, 1)
	if err != nil {
		return nil, err
	}
	victim := victims[0]
	victimIdx := -1
	for _, ts := range cluster.Snapshot().ComponentTasks("parse") {
		if ts.WorkerID == victim {
			victimIdx = ts.TaskIndex
		}
	}
	if victimIdx < 0 {
		return nil, fmt.Errorf("experiments: victim hosts no parse task")
	}

	result := &ReactionResult{Victim: victim, ReactionSteps: -1, ReadmitSteps: -1}
	prevAcked := cluster.Snapshot().TotalAcked()
	faultActive := false
	for step := 0; step < cfg.Steps; step++ {
		if step == cfg.FaultAtStep {
			if err := cluster.InjectFault(victim, dsps.Fault{Slowdown: cfg.Slowdown}); err != nil {
				return nil, err
			}
			faultActive = true
		}
		if cfg.ClearAtStep > 0 && step == cfg.ClearAtStep {
			cluster.ClearFault(victim)
			faultActive = false
		}
		time.Sleep(cfg.ControlPeriod)
		report, err := ctrl.Step()
		if err != nil {
			return nil, err
		}
		snap := cluster.Snapshot()
		acked := snap.TotalAcked()
		point := ReactionPoint{
			Step:          step,
			FaultActive:   faultActive,
			VictimFlagged: report.Misbehaving[victim],
			ThroughputTPS: float64(acked-prevAcked) / cfg.ControlPeriod.Seconds(),
		}
		prevAcked = acked
		if ratios, ok := report.Applied["parse"]; ok && victimIdx < len(ratios) {
			point.VictimRatio = ratios[victimIdx]
		} else if len(result.Points) > 0 {
			point.VictimRatio = result.Points[len(result.Points)-1].VictimRatio
		}
		bypassed := point.VictimRatio <= cfg.ProbeRatio+1e-9
		if faultActive && result.ReactionSteps < 0 && bypassed {
			result.ReactionSteps = step - cfg.FaultAtStep
		}
		if cfg.ClearAtStep > 0 && step >= cfg.ClearAtStep &&
			result.ReadmitSteps < 0 && !point.VictimFlagged && !bypassed {
			result.ReadmitSteps = step - cfg.ClearAtStep
		}
		result.Points = append(result.Points, point)
	}
	return result, nil
}
