package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"predstream/internal/drnn"
	"predstream/internal/stats"
	"predstream/internal/telemetry"
	"predstream/internal/timeseries"
)

// ServingConfig parameterizes E14: the quantized-serving comparison
// (float64 batched GEMM vs int8 fixed-point) behind cmd/predictd.
type ServingConfig struct {
	App    AppProfile
	Steps  int   // trace length in windows; default 500
	Window int   // model input window; default 10
	Epochs int   // DRNN training epochs; default 40
	Seed   int64 // default 1
	// Workers is the DRNN training worker count (0 = all CPUs; results are
	// worker-count invariant).
	Workers int
	// Batches lists the micro-batch sizes timed per path; default {1, 8, 32}.
	Batches []int
	// Reps is the timing repetitions per (path, batch) cell, best-of;
	// default 9.
	Reps int
	// Tolerance is the documented bound on max |float64 − int8| prediction
	// gap, in target metric units; default 0.01 (the golden bound pinned by
	// internal/drnn's quantization tests).
	Tolerance float64
}

func (c ServingConfig) withDefaults() ServingConfig {
	if c.App == "" {
		c.App = AppURLCount
	}
	if c.Steps <= 0 {
		c.Steps = 500
	}
	if c.Window <= 0 {
		c.Window = 10
	}
	if c.Epochs <= 0 {
		c.Epochs = 40
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Batches) == 0 {
		c.Batches = []int{1, 8, 32}
	}
	if c.Reps <= 0 {
		c.Reps = 9
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.01
	}
	return c
}

// ServingCell is one timed (path, batch size) cell of E14.
type ServingCell struct {
	Path        string // "float64" or "int8"
	Batch       int
	NsPerWindow float64 // best-of-Reps wall time per window
}

// ServingResult is E14: accuracy delta and forward-path cost of int8
// serving against the exact float64 path, on held-out seed-corpus windows.
type ServingResult struct {
	Windows      int
	Tolerance    float64
	MaxAbsDelta  float64 // max |float64 − int8| prediction gap
	MeanAbsDelta float64
	FloatReport  stats.Report // float64 path vs actuals
	QuantReport  stats.Report // int8 path vs actuals
	FloatBytes   int          // float64 parameter footprint
	QuantBytes   int          // packed int8 parameter footprint
	Cells        []ServingCell
}

// WithinTolerance reports whether the measured prediction gap stays inside
// the documented bound.
func (r *ServingResult) WithinTolerance() bool { return r.MaxAbsDelta <= r.Tolerance }

// Render prints the E14 table.
func (r *ServingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Quantized serving — float64 vs int8 forward path, %d held-out windows\n", r.Windows)
	fmt.Fprintf(&b, "  %s\n", r.FloatReport)
	fmt.Fprintf(&b, "  %s\n", r.QuantReport)
	verdict := "within"
	if !r.WithinTolerance() {
		verdict = "EXCEEDS"
	}
	fmt.Fprintf(&b, "  prediction gap: max |Δ| %.6f, mean |Δ| %.6f (%s tolerance %g)\n",
		r.MaxAbsDelta, r.MeanAbsDelta, verdict, r.Tolerance)
	fmt.Fprintf(&b, "  weight footprint: float64 %d B, int8 %d B (%.1fx smaller)\n",
		r.FloatBytes, r.QuantBytes, float64(r.FloatBytes)/float64(r.QuantBytes))
	fmt.Fprintf(&b, "  forward cost (ns/window, best of reps):\n")
	fmt.Fprintf(&b, "  %-10s", "path\\batch")
	batches := r.batches()
	for _, bs := range batches {
		fmt.Fprintf(&b, " %10d", bs)
	}
	b.WriteString("\n")
	for _, path := range []string{"float64", "int8"} {
		fmt.Fprintf(&b, "  %-10s", path)
		for _, bs := range batches {
			fmt.Fprintf(&b, " %10.0f", r.cell(path, bs))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func (r *ServingResult) batches() []int {
	var out []int
	seen := map[int]bool{}
	for _, c := range r.Cells {
		if !seen[c.Batch] {
			seen[c.Batch] = true
			out = append(out, c.Batch)
		}
	}
	return out
}

func (r *ServingResult) cell(path string, batch int) float64 {
	for _, c := range r.Cells {
		if c.Path == path && c.Batch == batch {
			return c.NsPerWindow
		}
	}
	return math.NaN()
}

// RunServing executes E14. It fits the E1 model, builds both serving
// handles via drnn.Inference, checks the int8 prediction gap against the
// documented tolerance on every held-out window, and times each forward
// path across micro-batch sizes.
func RunServing(cfg ServingConfig) (*ServingResult, error) {
	cfg = cfg.withDefaults()
	traces, err := traceFor(cfg.App, cfg.Steps, cfg.Seed)
	if err != nil {
		return nil, err
	}
	series := telemetry.ToSeries(traces["worker-0"], telemetry.TargetProcTime,
		telemetry.FeatureConfig{Interference: true})
	trainLen := series.Len() * 7 / 10
	p := drnn.New(drnn.Config{
		Window: cfg.Window, Hidden: []int{32, 32}, DenseHidden: []int{16},
		Epochs: cfg.Epochs, Seed: cfg.Seed, Workers: cfg.Workers,
	})
	if err := p.Fit(series.Slice(0, trainLen)); err != nil {
		return nil, err
	}
	held := &timeseries.Series{Points: series.Points[trainLen:]}
	windows, targets, err := timeseries.Window(held, cfg.Window, 1)
	if err != nil {
		return nil, err
	}
	float, err := p.Inference(false)
	if err != nil {
		return nil, err
	}
	quant, err := p.Inference(true)
	if err != nil {
		return nil, err
	}

	fOut := make([]float64, len(windows))
	qOut := make([]float64, len(windows))
	if err := float.PredictBatch(windows, fOut); err != nil {
		return nil, err
	}
	if err := quant.PredictBatch(windows, qOut); err != nil {
		return nil, err
	}
	out := &ServingResult{
		Windows:     len(windows),
		Tolerance:   cfg.Tolerance,
		FloatReport: stats.Evaluate("DRNN float64", targets, fOut),
		QuantReport: stats.Evaluate("DRNN int8", targets, qOut),
		FloatBytes:  float.WeightBytes(),
		QuantBytes:  quant.WeightBytes(),
	}
	for i := range fOut {
		d := math.Abs(fOut[i] - qOut[i])
		if d > out.MaxAbsDelta {
			out.MaxAbsDelta = d
		}
		out.MeanAbsDelta += d
	}
	out.MeanAbsDelta /= float64(len(fOut))

	paths := []struct {
		name string
		inf  *drnn.Inference
	}{{"float64", float}, {"int8", quant}}
	scratch := make([]float64, len(windows))
	for _, pt := range paths {
		for _, bs := range cfg.Batches {
			best := math.Inf(1)
			for rep := 0; rep < cfg.Reps; rep++ {
				start := time.Now()
				for lo := 0; lo < len(windows); lo += bs {
					hi := lo + bs
					if hi > len(windows) {
						hi = len(windows)
					}
					if err := pt.inf.PredictBatch(windows[lo:hi], scratch[lo:hi]); err != nil {
						return nil, err
					}
				}
				if ns := float64(time.Since(start)) / float64(len(windows)); ns < best {
					best = ns
				}
			}
			out.Cells = append(out.Cells, ServingCell{Path: pt.name, Batch: bs, NsPerWindow: best})
		}
	}
	return out, nil
}
