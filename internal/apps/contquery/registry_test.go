package contquery

import (
	"testing"
	"time"

	"predstream/internal/dsps"
	"predstream/internal/workload"
)

func q(id string, op AggOp) Query {
	return Query{ID: id, Op: op, Window: 2 * time.Second, Slide: time.Second}
}

func TestRegistryBasics(t *testing.T) {
	r, err := NewRegistry(q("a", Count), q("b", Sum))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	v0 := r.Version()
	if err := r.Add(q("c", Avg)); err != nil {
		t.Fatal(err)
	}
	if r.Version() == v0 {
		t.Fatal("version did not change on Add")
	}
	list := r.List()
	if len(list) != 3 || list[0].ID != "a" || list[2].ID != "c" {
		t.Fatalf("List = %v", list)
	}
	if !r.Remove("b") {
		t.Fatal("Remove existing returned false")
	}
	if r.Remove("b") {
		t.Fatal("Remove missing returned true")
	}
	if r.Len() != 2 {
		t.Fatalf("Len after remove = %d", r.Len())
	}
	if err := r.Add(Query{ID: "", Op: Count, Window: time.Second, Slide: time.Second}); err == nil {
		t.Fatal("invalid query accepted")
	}
	if _, err := NewRegistry(Query{}); err == nil {
		t.Fatal("NewRegistry with invalid query accepted")
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

func TestQueryBoltPicksUpRegistryChanges(t *testing.T) {
	reg, err := NewRegistry(q("count", Count))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Registry: reg}.withDefaults()
	var rows []dsps.Values
	collector := &fakeCollector{onEmit: func(v dsps.Values) { rows = append(rows, v) }}
	now := time.Unix(0, 0)
	b := &QueryBolt{cfg: cfg, now: func() time.Time { return now }}
	b.Prepare(dsps.TopologyContext{}, collector)

	rec := func(cat string, val float64) *dsps.Tuple {
		return dsps.NewTestTuple([]string{"category", "user", "value", "ts"}, cat, 1, val, int64(0))
	}
	b.Execute(rec("sports", 10))
	// Add a second query at runtime; it starts aggregating from now on.
	if err := reg.Add(q("sum", Sum)); err != nil {
		t.Fatal(err)
	}
	b.Execute(rec("sports", 20))
	now = now.Add(1100 * time.Millisecond)
	b.Execute(dsps.NewTickTuple())
	got := map[string]float64{}
	for _, v := range rows {
		got[v[0].(string)+"/"+v[1].(string)] = v[2].(float64)
	}
	if got["count/sports"] != 2 {
		t.Fatalf("count = %v", got)
	}
	// The sum query only saw the second record.
	if got["sum/sports"] != 20 {
		t.Fatalf("sum = %v", got)
	}

	// Removing the count query stops its emissions but keeps sum's state.
	reg.Remove("count")
	rows = nil
	b.Execute(rec("sports", 5))
	now = now.Add(1100 * time.Millisecond)
	b.Execute(dsps.NewTickTuple())
	got = map[string]float64{}
	for _, v := range rows {
		got[v[0].(string)+"/"+v[1].(string)] = v[2].(float64)
	}
	if _, ok := got["count/sports"]; ok {
		t.Fatalf("removed query still emitting: %v", got)
	}
	// Window 2s/slide 1s = 2 slots: 20 from the earlier slot + 5 new.
	if got["sum/sports"] != 25 {
		t.Fatalf("sum after removal = %v", got)
	}
}

func TestQueryBoltRedefinitionResetsState(t *testing.T) {
	reg, err := NewRegistry(q("x", Sum))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Registry: reg}.withDefaults()
	var rows []dsps.Values
	collector := &fakeCollector{onEmit: func(v dsps.Values) { rows = append(rows, v) }}
	now := time.Unix(0, 0)
	b := &QueryBolt{cfg: cfg, now: func() time.Time { return now }}
	b.Prepare(dsps.TopologyContext{}, collector)
	rec := func(val float64) *dsps.Tuple {
		return dsps.NewTestTuple([]string{"category", "user", "value", "ts"}, "c", 1, val, int64(0))
	}
	b.Execute(rec(10))
	// Redefine x with a different operator: accumulated sums must reset.
	if err := reg.Add(q("x", Max)); err != nil {
		t.Fatal(err)
	}
	b.Execute(rec(3))
	now = now.Add(1100 * time.Millisecond)
	b.Execute(dsps.NewTickTuple())
	if len(rows) != 1 || rows[0][2].(float64) != 3 {
		t.Fatalf("redefined query rows = %v", rows)
	}
}

func TestEndToEndRuntimeQueryAddition(t *testing.T) {
	reg, err := NewRegistry(Query{ID: "base", Op: Count, Window: 400 * time.Millisecond, Slide: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	topo, sink, _, err := Build(Config{
		Registry:   reg,
		Shape:      workload.ConstantRate{TPS: 3000},
		QueryCost:  -1,
		QueryTasks: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := dsps.NewCluster(dsps.ClusterConfig{Nodes: 2, Seed: 8})
	if err := c.Submit(topo, dsps.SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	waitRows := func(queryID string) bool {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			for _, r := range sink.Rows() {
				if r.Query == queryID {
					return true
				}
			}
			time.Sleep(25 * time.Millisecond)
		}
		return false
	}
	if !waitRows("base") {
		t.Fatal("base query produced no rows")
	}
	if err := reg.Add(Query{ID: "late", MinValue: 50, Op: Avg, Window: 400 * time.Millisecond, Slide: 100 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if !waitRows("late") {
		t.Fatal("runtime-added query produced no rows")
	}
}

func TestBuildWithEmptyRegistry(t *testing.T) {
	reg := &Registry{queries: map[string]Query{}}
	if _, _, _, err := Build(Config{Registry: reg}); err == nil {
		t.Fatal("empty registry accepted")
	}
}
