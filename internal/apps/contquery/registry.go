package contquery

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is a thread-safe set of standing queries shared by every query
// task. Queries can be added and removed at runtime; tasks pick up changes
// on their next tuple or tick, keeping window state for queries whose
// definition is unchanged.
type Registry struct {
	mu      sync.RWMutex
	queries map[string]Query
	version uint64
}

// NewRegistry builds a registry from the initial queries.
func NewRegistry(qs ...Query) (*Registry, error) {
	r := &Registry{queries: make(map[string]Query, len(qs))}
	for _, q := range qs {
		if err := r.Add(q); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Add registers or replaces a standing query.
func (r *Registry) Add(q Query) error {
	if err := q.validate(); err != nil {
		return err
	}
	r.mu.Lock()
	r.queries[q.ID] = q
	r.version++
	r.mu.Unlock()
	return nil
}

// Remove deletes a standing query by id, reporting whether it existed.
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.queries[id]; !ok {
		return false
	}
	delete(r.queries, id)
	r.version++
	return true
}

// List returns the current queries sorted by ID.
func (r *Registry) List() []Query {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Query, 0, len(r.queries))
	for _, q := range r.queries {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of standing queries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.queries)
}

// Version returns a counter that changes on every mutation; tasks use it
// to detect registry updates cheaply.
func (r *Registry) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// String summarizes the registry.
func (r *Registry) String() string {
	return fmt.Sprintf("Registry(%d queries, v%d)", r.Len(), r.Version())
}
