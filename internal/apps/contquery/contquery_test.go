package contquery

import (
	"math"
	"testing"
	"time"

	"predstream/internal/dsps"
	"predstream/internal/workload"
)

func TestAggOpStrings(t *testing.T) {
	if Count.String() != "count" || Sum.String() != "sum" || Avg.String() != "avg" || Max.String() != "max" {
		t.Fatal("AggOp strings wrong")
	}
	if AggOp(99).String() == "" {
		t.Fatal("unknown op string empty")
	}
}

func TestQueryValidation(t *testing.T) {
	good := Query{ID: "q", Op: Count, Window: 2 * time.Second, Slide: time.Second}
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Query{
		{ID: "", Op: Count, Window: time.Second, Slide: time.Second},
		{ID: "q", Window: 0, Slide: time.Second},
		{ID: "q", Window: time.Second, Slide: 0},
		{ID: "q", Window: time.Second, Slide: 2 * time.Second},
	} {
		if err := bad.validate(); err == nil {
			t.Fatalf("query %+v accepted", bad)
		}
	}
}

func TestQueryMatches(t *testing.T) {
	q := Query{Category: "sports", MinValue: 10}
	if !q.matches("sports", 10) {
		t.Fatal("boundary value should match")
	}
	if q.matches("sports", 9.9) {
		t.Fatal("below-threshold matched")
	}
	if q.matches("news", 50) {
		t.Fatal("other category matched")
	}
	all := Query{MinValue: 0}
	if !all.matches("anything", 0) {
		t.Fatal("catch-all failed")
	}
}

func TestWindowAggOperators(t *testing.T) {
	mk := func(op AggOp) *windowAgg {
		return newWindowAgg(Query{ID: "q", Op: op, Window: 2 * time.Second, Slide: time.Second})
	}
	// count
	w := mk(Count)
	w.add("k", 5)
	w.add("k", 7)
	if got := w.advance()["k"]; got != 2 {
		t.Fatalf("count = %v", got)
	}
	// sum
	w = mk(Sum)
	w.add("k", 5)
	w.add("k", 7)
	if got := w.advance()["k"]; got != 12 {
		t.Fatalf("sum = %v", got)
	}
	// avg
	w = mk(Avg)
	w.add("k", 5)
	w.add("k", 7)
	if got := w.advance()["k"]; got != 6 {
		t.Fatalf("avg = %v", got)
	}
	// max (including negative values)
	w = mk(Max)
	w.add("k", -5)
	w.add("k", -7)
	if got := w.advance()["k"]; got != -5 {
		t.Fatalf("max = %v", got)
	}
}

func TestWindowAggSlidingExpiry(t *testing.T) {
	w := newWindowAgg(Query{ID: "q", Op: Sum, Window: 2 * time.Second, Slide: time.Second})
	w.add("k", 10)
	first := w.advance()
	if first["k"] != 10 {
		t.Fatalf("first window = %v", first)
	}
	w.add("k", 1)
	second := w.advance()
	if second["k"] != 11 {
		t.Fatalf("second window = %v", second)
	}
	third := w.advance() // the 10 from slot 0 has expired
	if third["k"] != 1 {
		t.Fatalf("third window = %v", third)
	}
}

func TestQueryBoltEvaluatesRegistry(t *testing.T) {
	cfg := Config{
		Queries: []Query{
			{ID: "cnt", Op: Count, Window: 2 * time.Second, Slide: time.Second},
			{ID: "hi-avg", MinValue: 50, Op: Avg, Window: 2 * time.Second, Slide: time.Second},
		},
	}.withDefaults()
	var rows []dsps.Values
	collector := &fakeCollector{onEmit: func(v dsps.Values) { rows = append(rows, v) }}
	now := time.Unix(0, 0)
	b := &QueryBolt{cfg: cfg, now: func() time.Time { return now }}
	b.Prepare(dsps.TopologyContext{}, collector)

	rec := func(cat string, val float64) *dsps.Tuple {
		return dsps.NewTestTuple([]string{"category", "user", "value", "ts"}, cat, 1, val, int64(0))
	}
	b.Execute(rec("sports", 80))
	b.Execute(rec("sports", 20))
	b.Execute(rec("news", 60))
	b.Execute(rec("tech", 10))
	if len(rows) != 0 {
		t.Fatal("emitted before slide")
	}
	// A tick before the slide interval elapses must not emit.
	b.Execute(dsps.NewTickTuple())
	if len(rows) != 0 {
		t.Fatal("early tick emitted")
	}
	now = now.Add(1100 * time.Millisecond)
	b.Execute(dsps.NewTickTuple())
	got := map[string]map[string]float64{}
	for _, v := range rows {
		q, k, val := v[0].(string), v[1].(string), v[2].(float64)
		if got[q] == nil {
			got[q] = map[string]float64{}
		}
		got[q][k] = val
	}
	if got["cnt"]["sports"] != 2 || got["cnt"]["news"] != 1 {
		t.Fatalf("cnt rows = %v", got["cnt"])
	}
	// high-value avg groups by actual category (catch-all query): sports
	// 80, news 60.
	if math.Abs(got["hi-avg"]["sports"]-80) > 1e-9 || math.Abs(got["hi-avg"]["news"]-60) > 1e-9 {
		t.Fatalf("hi-avg rows = %v", got["hi-avg"])
	}
}

func TestQueryBoltFailsMalformedTuple(t *testing.T) {
	cfg := Config{}.withDefaults()
	failed := false
	collector := &fakeCollector{onFail: func() { failed = true }}
	b := &QueryBolt{cfg: cfg}
	b.Prepare(dsps.TopologyContext{}, collector)
	b.Execute(dsps.NewTestTuple([]string{"bogus"}, 1))
	if !failed {
		t.Fatal("malformed record not failed")
	}
}

func TestSinkCollectsAndSummarizes(t *testing.T) {
	s := &Sink{}
	s.Prepare(dsps.TopologyContext{}, nil)
	row := func(q, k string, v float64) *dsps.Tuple {
		return dsps.NewTestTuple([]string{"query", "key", "value"}, q, k, v)
	}
	s.Execute(row("q1", "sports", 5))
	s.Execute(row("q1", "sports", 9))
	s.Execute(row("q2", "news", 3))
	if len(s.Rows()) != 3 {
		t.Fatalf("rows = %d", len(s.Rows()))
	}
	latest := s.Latest()
	if latest["q1"]["sports"] != 9 || latest["q2"]["news"] != 3 {
		t.Fatalf("latest = %v", latest)
	}
}

func TestBuildValidatesQueries(t *testing.T) {
	_, _, _, err := Build(Config{Queries: []Query{{ID: "", Window: time.Second, Slide: time.Second}}})
	if err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestBuildShape(t *testing.T) {
	topo, sink, dg, err := Build(Config{Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	if sink == nil || dg == nil {
		t.Fatal("missing sink or grouping")
	}
	if got := len(topo.Components()); got != 3 {
		t.Fatalf("components = %d", got)
	}
}

func TestEndToEndOnEngine(t *testing.T) {
	topo, sink, _, err := Build(Config{
		Shape: workload.ConstantRate{TPS: 3000},
		Queries: []Query{
			{ID: "cnt", Op: Count, Window: 400 * time.Millisecond, Slide: 100 * time.Millisecond},
		},
		QueryCost:  10 * time.Microsecond,
		QueryTasks: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := dsps.NewCluster(dsps.ClusterConfig{Nodes: 2, Seed: 5})
	if err := c.Submit(topo, dsps.SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.Rows()) == 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	rows := sink.Rows()
	if len(rows) == 0 {
		t.Fatal("no query results")
	}
	for _, r := range rows {
		if r.Query != "cnt" || r.Value <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
}

type fakeCollector struct {
	onEmit func(dsps.Values)
	onFail func()
}

func (f *fakeCollector) Emit(v dsps.Values) {
	if f.onEmit != nil {
		f.onEmit(v)
	}
}

func (f *fakeCollector) Fail() {
	if f.onFail != nil {
		f.onFail()
	}
}

func (f *fakeCollector) EmitInt64(v int64) {
	if f.onEmit != nil {
		f.onEmit(dsps.Values{v})
	}
}

func (f *fakeCollector) EmitFloat64(v float64) {
	if f.onEmit != nil {
		f.onEmit(dsps.Values{v})
	}
}
