// Package contquery implements Continuous Queries, the second of the
// paper's two evaluation applications: a spout emits structured ad-event
// records, a query stage evaluates a registry of standing queries (filter
// + windowed aggregate, grouped by category) against every record, and a
// sink collects result rows. The spout→query edge can use the dynamic
// grouping so the controller can steer it — query evaluation is stateless
// per record apart from window state that is partitioned by query, so any
// task may process any record for the aggregate shapes used here
// (count/sum/avg are mergeable across tasks at the sink).
package contquery

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"predstream/internal/dsps"
	"predstream/internal/workload"
)

// AggOp is a windowed aggregate operator.
type AggOp int

const (
	// Count counts matching records.
	Count AggOp = iota
	// Sum totals the Value field of matching records.
	Sum
	// Avg averages the Value field of matching records.
	Avg
	// Max tracks the maximum Value of matching records.
	Max
)

// String implements fmt.Stringer.
func (op AggOp) String() string {
	switch op {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("AggOp(%d)", int(op))
	}
}

// Query is one standing continuous query: records passing the filter are
// aggregated over a sliding window, grouped by category.
type Query struct {
	// ID names the query in result rows.
	ID string
	// Category filters records to one category; empty matches all.
	Category string
	// MinValue filters records to Value >= MinValue.
	MinValue float64
	// Op is the windowed aggregate.
	Op AggOp
	// Window is the sliding window length; Slide the emission period.
	Window, Slide time.Duration
}

func (q Query) validate() error {
	if q.ID == "" {
		return fmt.Errorf("contquery: query with empty ID")
	}
	if q.Window <= 0 || q.Slide <= 0 || q.Slide > q.Window {
		return fmt.Errorf("contquery: query %s has window %v / slide %v", q.ID, q.Window, q.Slide)
	}
	return nil
}

// matches reports whether a record passes the query's filter.
func (q Query) matches(category string, value float64) bool {
	if q.Category != "" && category != q.Category {
		return false
	}
	return value >= q.MinValue
}

// slotAgg is one window slot's partial aggregate for one group key.
type slotAgg struct {
	count int
	sum   float64
	max   float64
}

// windowAgg maintains one query's sliding aggregate, per group key.
type windowAgg struct {
	q     Query
	slots []map[string]slotAgg
	cur   int
}

func newWindowAgg(q Query) *windowAgg {
	n := int(q.Window / q.Slide)
	if n < 1 {
		n = 1
	}
	w := &windowAgg{q: q, slots: make([]map[string]slotAgg, n)}
	for i := range w.slots {
		w.slots[i] = map[string]slotAgg{}
	}
	return w
}

func (w *windowAgg) add(key string, value float64) {
	s := w.slots[w.cur][key]
	s.count++
	s.sum += value
	if s.count == 1 || value > s.max {
		s.max = value
	}
	w.slots[w.cur][key] = s
}

// advance returns the aggregate per key over the full window (all slots
// including the current one), then rotates out the oldest slot.
func (w *windowAgg) advance() map[string]float64 {
	merged := map[string]slotAgg{}
	for _, slot := range w.slots {
		for k, s := range slot {
			m := merged[k]
			if m.count == 0 || s.max > m.max {
				m.max = s.max
			}
			m.count += s.count
			m.sum += s.sum
			merged[k] = m
		}
	}
	out := make(map[string]float64, len(merged))
	for k, s := range merged {
		switch w.q.Op {
		case Count:
			out[k] = float64(s.count)
		case Sum:
			out[k] = s.sum
		case Avg:
			if s.count > 0 {
				out[k] = s.sum / float64(s.count)
			}
		case Max:
			out[k] = s.max
		}
	}
	w.cur = (w.cur + 1) % len(w.slots)
	w.slots[w.cur] = map[string]slotAgg{}
	return out
}

// Spout emits ad-event records as tuples
// ("category", "user", "value", "ts").
type Spout struct {
	dsps.BaseSpout
	cfg Config

	collector dsps.SpoutCollector
	gen       *workload.RecordGenerator
	pacer     *workload.Pacer
	seq       int64
}

// Open implements dsps.Spout.
func (s *Spout) Open(ctx dsps.TopologyContext, c dsps.SpoutCollector) {
	s.collector = c
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(ctx.TaskID)))
	gen, err := workload.NewRecordGenerator(rng, s.cfg.Categories, s.cfg.Users)
	if err != nil {
		panic(fmt.Sprintf("contquery: %v", err))
	}
	s.gen = gen
	if s.cfg.Shape != nil {
		s.pacer = workload.NewPacer(s.cfg.Shape)
	}
}

// NextTuple implements dsps.Spout.
func (s *Spout) NextTuple() bool {
	if s.pacer != nil && !s.pacer.Allow() {
		return false
	}
	r := s.gen.Next()
	s.seq++
	s.collector.Emit(dsps.Values{r.Category, r.UserID, r.Value, r.At.UnixNano()}, s.seq)
	return true
}

// queryState is one task's window state for one standing query.
type queryState struct {
	q         Query
	agg       *windowAgg
	lastSlide time.Time
}

// QueryBolt evaluates the standing-query registry against every record
// and slides each query's window on system ticks (the topology configures
// a tick at the smallest slide), emitting ("query", "key", "value") rows.
// The registry is shared and mutable: queries added at runtime start
// evaluating on the task's next tuple/tick, removed queries stop, and
// window state survives for queries whose definition is unchanged.
type QueryBolt struct {
	dsps.BaseBolt
	cfg Config

	collector dsps.OutputCollector
	registry  *Registry
	states    map[string]*queryState
	order     []string // state iteration order (sorted query IDs)
	seenVer   uint64
	now       func() time.Time
}

// Prepare implements dsps.Bolt.
func (b *QueryBolt) Prepare(_ dsps.TopologyContext, c dsps.OutputCollector) {
	b.collector = c
	if b.now == nil {
		b.now = time.Now
	}
	b.registry = b.cfg.Registry
	if b.registry == nil {
		// Static configuration: wrap the fixed query list.
		reg, err := NewRegistry(b.cfg.Queries...)
		if err != nil {
			panic(fmt.Sprintf("contquery: %v", err))
		}
		b.registry = reg
	}
	b.states = map[string]*queryState{}
	b.order = nil
	b.seenVer = b.registry.Version() - 1 // force the first sync
	b.sync()
}

// sync reconciles local window state with the registry, keeping state for
// unchanged queries, resetting redefined ones, and dropping removed ones.
func (b *QueryBolt) sync() {
	ver := b.registry.Version()
	if ver == b.seenVer {
		return
	}
	b.seenVer = ver
	current := b.registry.List()
	next := make(map[string]*queryState, len(current))
	order := make([]string, 0, len(current))
	start := b.now()
	for _, q := range current {
		if st, ok := b.states[q.ID]; ok && st.q == q {
			next[q.ID] = st
		} else {
			next[q.ID] = &queryState{q: q, agg: newWindowAgg(q), lastSlide: start}
		}
		order = append(order, q.ID)
	}
	b.states = next
	b.order = order
}

// Execute implements dsps.Bolt.
func (b *QueryBolt) Execute(t *dsps.Tuple) {
	b.sync()
	if t.IsTick() {
		now := b.now()
		for _, id := range b.order {
			st := b.states[id]
			if now.Sub(st.lastSlide) >= st.q.Slide {
				st.lastSlide = now
				for key, v := range st.agg.advance() {
					b.collector.Emit(dsps.Values{st.q.ID, key, v})
				}
			}
		}
		return
	}
	category, err := t.String("category")
	if err != nil {
		b.collector.Fail()
		return
	}
	value, err := t.Float("value")
	if err != nil {
		b.collector.Fail()
		return
	}
	for _, id := range b.order {
		st := b.states[id]
		if st.q.matches(category, value) {
			key := category
			if st.q.Category != "" {
				key = st.q.Category
			}
			st.agg.add(key, value)
		}
	}
}

// ResultRow is one continuous-query output.
type ResultRow struct {
	Query string
	Key   string
	Value float64
	At    time.Time
}

// Sink collects result rows.
type Sink struct {
	dsps.BaseBolt
	mu   sync.Mutex
	rows []ResultRow
}

// Prepare implements dsps.Bolt.
func (s *Sink) Prepare(dsps.TopologyContext, dsps.OutputCollector) {}

// Execute implements dsps.Bolt.
func (s *Sink) Execute(t *dsps.Tuple) {
	q, err1 := t.String("query")
	k, err2 := t.String("key")
	v, err3 := t.Float("value")
	if err1 != nil || err2 != nil || err3 != nil {
		return
	}
	s.mu.Lock()
	s.rows = append(s.rows, ResultRow{Query: q, Key: k, Value: v, At: time.Now()})
	s.mu.Unlock()
}

// Rows returns a copy of all collected result rows.
func (s *Sink) Rows() []ResultRow {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ResultRow, len(s.rows))
	copy(out, s.rows)
	return out
}

// Latest returns the most recent value per (query, key).
func (s *Sink) Latest() map[string]map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]map[string]float64{}
	for _, r := range s.rows {
		if out[r.Query] == nil {
			out[r.Query] = map[string]float64{}
		}
		out[r.Query][r.Key] = r.Value
	}
	return out
}

// Config assembles the topology.
type Config struct {
	// Categories and Users define the record universe; defaults are five
	// ad categories and 10000 users.
	Categories []string
	Users      int
	// Queries is the initial standing-query set; default: per-category
	// click count and overall high-value average.
	Queries []Query
	// Registry optionally supplies a shared mutable registry: queries
	// added or removed through it take effect at runtime across every
	// query task. When set, Queries is ignored (seed the registry
	// instead). The tick interval is derived from the *initial* registry
	// contents.
	Registry *Registry
	// Shape paces the spout; nil emits at maximum speed.
	Shape workload.RateShape
	// QueryTasks sets the query stage parallelism; default 4.
	QueryTasks int
	// QueryCost is the simulated per-record evaluation cost; default
	// 300µs (the query stage is the heavy stage in this application).
	// Negative means no simulated cost.
	QueryCost time.Duration
	// Dynamic selects the controllable dynamic grouping on spout→query.
	Dynamic bool
	// Seed drives the record generator.
	Seed int64
}

func (c Config) withDefaults() Config {
	if len(c.Categories) == 0 {
		c.Categories = []string{"sports", "news", "tech", "travel", "music"}
	}
	if c.Users <= 0 {
		c.Users = 10000
	}
	if len(c.Queries) == 0 {
		c.Queries = []Query{
			{ID: "clicks-by-category", Op: Count, Window: 4 * time.Second, Slide: time.Second},
			{ID: "high-value-avg", MinValue: 50, Op: Avg, Window: 4 * time.Second, Slide: time.Second},
		}
	}
	if c.QueryTasks <= 0 {
		c.QueryTasks = 4
	}
	if c.QueryCost == 0 {
		c.QueryCost = 300 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Build assembles the Continuous Queries topology, returning the topology,
// the sink (for reading results), and the dynamic grouping handle when
// cfg.Dynamic (nil otherwise).
func Build(cfg Config) (*dsps.Topology, *Sink, *dsps.DynamicGrouping, error) {
	cfg = cfg.withDefaults()
	initial := cfg.Queries
	if cfg.Registry != nil {
		initial = cfg.Registry.List()
		if len(initial) == 0 {
			return nil, nil, nil, fmt.Errorf("contquery: registry has no queries")
		}
	}
	for _, q := range initial {
		if err := q.validate(); err != nil {
			return nil, nil, nil, err
		}
	}
	sink := &Sink{}
	b := dsps.NewTopologyBuilder("continuous-queries")
	b.SetSpout("records", func() dsps.Spout { return &Spout{cfg: cfg} }, 1,
		"category", "user", "value", "ts")
	minSlide := initial[0].Slide
	for _, q := range initial[1:] {
		if q.Slide < minSlide {
			minSlide = q.Slide
		}
	}
	query := b.SetBolt("query", func() dsps.Bolt { return &QueryBolt{cfg: cfg} }, cfg.QueryTasks,
		"query", "key", "value").
		WithExecCost(cfg.QueryCost).
		WithTickInterval(minSlide)
	var dg *dsps.DynamicGrouping
	if cfg.Dynamic {
		dg = query.DynamicGrouping("records")
	} else {
		query.ShuffleGrouping("records")
	}
	b.SetBolt("sink", func() dsps.Bolt { return sink }, 1).
		GlobalGrouping("query")
	topo, err := b.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	return topo, sink, dg, nil
}
