// Package urlcount implements Windowed URL Count, the first of the
// paper's two evaluation applications: a spout emits Zipf-distributed URL
// hits, a parse stage extracts hostnames, a sliding-window count stage
// maintains per-host counts over a time window, and a report sink gathers
// the top hosts. The spout→parse edge can use the controllable dynamic
// grouping so the predictive control framework can steer it.
package urlcount

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"predstream/internal/dsps"
	"predstream/internal/workload"
)

// SlidingCounter counts string keys over a sliding window of fixed slots.
// Each Advance rotates out the oldest slot; totals always cover the last
// NSlots advances. It is the windowing core of the count bolt, separated
// for direct unit testing.
type SlidingCounter struct {
	slots   []map[string]int
	current int
}

// NewSlidingCounter builds a counter with n slots; n must be positive.
func NewSlidingCounter(n int) *SlidingCounter {
	if n <= 0 {
		panic(fmt.Sprintf("urlcount: invalid slot count %d", n))
	}
	s := &SlidingCounter{slots: make([]map[string]int, n)}
	for i := range s.slots {
		s.slots[i] = map[string]int{}
	}
	return s
}

// Add counts one occurrence of key in the current slot.
func (s *SlidingCounter) Add(key string) { s.slots[s.current][key]++ }

// Advance rotates to the next slot, clearing what it previously held.
func (s *SlidingCounter) Advance() {
	s.current = (s.current + 1) % len(s.slots)
	s.slots[s.current] = map[string]int{}
}

// Totals returns the per-key counts over the whole window.
func (s *SlidingCounter) Totals() map[string]int {
	out := map[string]int{}
	for _, slot := range s.slots {
		for k, v := range slot {
			out[k] += v
		}
	}
	return out
}

// Spout emits URL hit tuples ("url") paced by a rate shape. Each task
// draws from its own seeded generator.
type Spout struct {
	dsps.BaseSpout
	cfg Config

	collector dsps.SpoutCollector
	gen       *workload.URLGenerator
	pacer     *workload.Pacer
	seq       int64
}

// Open implements dsps.Spout.
func (s *Spout) Open(ctx dsps.TopologyContext, c dsps.SpoutCollector) {
	s.collector = c
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(ctx.TaskID)))
	gen, err := workload.NewURLGenerator(rng, s.cfg.URLs, s.cfg.ZipfS)
	if err != nil {
		panic(fmt.Sprintf("urlcount: %v", err))
	}
	s.gen = gen
	if s.cfg.Shape != nil {
		s.pacer = workload.NewPacer(s.cfg.Shape)
	}
}

// NextTuple implements dsps.Spout.
func (s *Spout) NextTuple() bool {
	if s.pacer != nil && !s.pacer.Allow() {
		return false
	}
	s.seq++
	s.collector.Emit(dsps.Values{s.gen.Next()}, s.seq)
	return true
}

// ParseBolt extracts the hostname from each URL and emits ("host").
type ParseBolt struct {
	dsps.BaseBolt
	collector dsps.OutputCollector
}

// Prepare implements dsps.Bolt.
func (b *ParseBolt) Prepare(_ dsps.TopologyContext, c dsps.OutputCollector) { b.collector = c }

// Execute implements dsps.Bolt.
func (b *ParseBolt) Execute(t *dsps.Tuple) {
	url, err := t.String("url")
	if err != nil {
		b.collector.Fail()
		return
	}
	b.collector.Emit(dsps.Values{HostOf(url)})
}

// HostOf extracts the hostname from a URL without net/url's overhead (the
// generator's URLs are well-formed).
func HostOf(url string) string {
	rest := url
	for i := 0; i+2 < len(url); i++ {
		if url[i] == ':' && url[i+1] == '/' && url[i+2] == '/' {
			rest = url[i+3:]
			break
		}
	}
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' {
			return rest[:i]
		}
	}
	return rest
}

// CountBolt maintains sliding-window counts per host and emits
// ("host", count) totals on every system tick (the topology configures a
// tick each Slide). Sliding on ticks rather than on data arrival means
// windows advance — and stale hosts expire — even when the stream stalls.
type CountBolt struct {
	dsps.BaseBolt
	cfg Config

	collector dsps.OutputCollector
	counter   *SlidingCounter
}

// Prepare implements dsps.Bolt.
func (b *CountBolt) Prepare(_ dsps.TopologyContext, c dsps.OutputCollector) {
	b.collector = c
	slots := int(b.cfg.Window / b.cfg.Slide)
	if slots < 1 {
		slots = 1
	}
	b.counter = NewSlidingCounter(slots)
}

// Execute implements dsps.Bolt.
func (b *CountBolt) Execute(t *dsps.Tuple) {
	if t.IsTick() {
		// Emit the full window (including the slot about to rotate out),
		// then slide.
		for h, c := range b.counter.Totals() {
			b.collector.Emit(dsps.Values{h, c})
		}
		b.counter.Advance()
		return
	}
	host, err := t.String("host")
	if err != nil {
		b.collector.Fail()
		return
	}
	b.counter.Add(host)
}

// Report aggregates the latest windowed counts across count tasks and
// serves the current top hosts. It is the topology's sink.
type Report struct {
	dsps.BaseBolt
	mu     sync.Mutex
	latest map[string]int
}

// Prepare implements dsps.Bolt.
func (r *Report) Prepare(dsps.TopologyContext, dsps.OutputCollector) {
	r.mu.Lock()
	r.latest = map[string]int{}
	r.mu.Unlock()
}

// Execute implements dsps.Bolt.
func (r *Report) Execute(t *dsps.Tuple) {
	host, err := t.String("host")
	if err != nil {
		return
	}
	count, err := t.Int("count")
	if err != nil {
		return
	}
	r.mu.Lock()
	r.latest[host] = count
	r.mu.Unlock()
}

// HostCount is one row of the report.
type HostCount struct {
	Host  string
	Count int
}

// Top returns the n hosts with the highest current window counts.
func (r *Report) Top(n int) []HostCount {
	r.mu.Lock()
	rows := make([]HostCount, 0, len(r.latest))
	for h, c := range r.latest {
		rows = append(rows, HostCount{Host: h, Count: c})
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Host < rows[j].Host
	})
	if n < len(rows) {
		rows = rows[:n]
	}
	return rows
}

// Config assembles the topology.
type Config struct {
	// URLs is the URL universe size; default 1000.
	URLs int
	// ZipfS is the Zipf exponent; default 1.1.
	ZipfS float64
	// Shape paces the spout; nil emits at maximum speed.
	Shape workload.RateShape
	// Window and Slide define the sliding count window; defaults 10s / 2s.
	Window, Slide time.Duration
	// ParseTasks and CountTasks set stage parallelism; defaults 4 / 4.
	ParseTasks, CountTasks int
	// ParseCost and CountCost are the simulated per-tuple service costs;
	// defaults 200µs / 100µs. Negative values mean no simulated cost.
	ParseCost, CountCost time.Duration
	// Dynamic selects the controllable dynamic grouping on spout→parse
	// (the edge the paper's controller steers); false uses shuffle.
	Dynamic bool
	// Seed drives the URL generator.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.URLs <= 0 {
		c.URLs = 1000
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Slide <= 0 {
		c.Slide = 2 * time.Second
	}
	if c.ParseTasks <= 0 {
		c.ParseTasks = 4
	}
	if c.CountTasks <= 0 {
		c.CountTasks = 4
	}
	if c.ParseCost == 0 {
		c.ParseCost = 200 * time.Microsecond
	}
	if c.CountCost == 0 {
		c.CountCost = 100 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Build assembles the Windowed URL Count topology. It returns the
// topology, the report sink (for reading results), and — when cfg.Dynamic
// — the dynamic grouping handle for the controller (nil otherwise).
func Build(cfg Config) (*dsps.Topology, *Report, *dsps.DynamicGrouping, error) {
	cfg = cfg.withDefaults()
	report := &Report{}
	b := dsps.NewTopologyBuilder("windowed-url-count")
	b.SetSpout("urls", func() dsps.Spout { return &Spout{cfg: cfg} }, 1, "url")
	parse := b.SetBolt("parse", func() dsps.Bolt { return &ParseBolt{} }, cfg.ParseTasks, "host").
		WithExecCost(cfg.ParseCost)
	var dg *dsps.DynamicGrouping
	if cfg.Dynamic {
		dg = parse.DynamicGrouping("urls")
	} else {
		parse.ShuffleGrouping("urls")
	}
	b.SetBolt("count", func() dsps.Bolt { return &CountBolt{cfg: cfg} }, cfg.CountTasks, "host", "count").
		FieldsGrouping("parse", "host").
		WithExecCost(cfg.CountCost).
		WithTickInterval(cfg.Slide)
	b.SetBolt("report", func() dsps.Bolt { return report }, 1).
		GlobalGrouping("count")
	topo, err := b.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	return topo, report, dg, nil
}
