package urlcount

import (
	"testing"
	"time"

	"predstream/internal/dsps"
	"predstream/internal/workload"
)

func TestSlidingCounterBasics(t *testing.T) {
	c := NewSlidingCounter(3)
	c.Add("a")
	c.Add("a")
	c.Add("b")
	totals := c.Totals()
	if totals["a"] != 2 || totals["b"] != 1 {
		t.Fatalf("totals = %v", totals)
	}
}

func TestSlidingCounterExpiry(t *testing.T) {
	c := NewSlidingCounter(2)
	c.Add("a") // slot 0
	c.Advance()
	c.Add("a") // slot 1
	if got := c.Totals()["a"]; got != 2 {
		t.Fatalf("mid-window total = %d", got)
	}
	c.Advance() // slot 0 cleared: first Add expires
	if got := c.Totals()["a"]; got != 1 {
		t.Fatalf("after expiry total = %d", got)
	}
	c.Advance()
	if got := c.Totals()["a"]; got != 0 {
		t.Fatalf("fully expired total = %d", got)
	}
}

func TestSlidingCounterPanicsOnBadSlots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 slots")
		}
	}()
	NewSlidingCounter(0)
}

func TestHostOf(t *testing.T) {
	cases := map[string]string{
		"http://site-0001.example.com/page": "site-0001.example.com",
		"https://a.b/path/deep":             "a.b",
		"no-scheme.example.com/x":           "no-scheme.example.com",
		"http://bare-host.example.com":      "bare-host.example.com",
		"":                                  "",
	}
	for url, want := range cases {
		if got := HostOf(url); got != want {
			t.Fatalf("HostOf(%q) = %q want %q", url, got, want)
		}
	}
}

func TestCountBoltSlidesOnTicks(t *testing.T) {
	cfg := Config{Window: 4 * time.Second, Slide: time.Second}.withDefaults()
	var emitted []dsps.Values
	collector := &fakeCollector{onEmit: func(v dsps.Values) { emitted = append(emitted, v) }}
	b := &CountBolt{cfg: cfg}
	b.Prepare(dsps.TopologyContext{}, collector)
	hostTuple := func(h string) *dsps.Tuple {
		return makeTuple([]string{"host"}, h)
	}
	b.Execute(hostTuple("x.com"))
	b.Execute(hostTuple("x.com"))
	if len(emitted) != 0 {
		t.Fatal("emitted before any tick")
	}
	b.Execute(dsps.NewTickTuple())
	if len(emitted) == 0 {
		t.Fatal("no emission on tick")
	}
	found := false
	for _, v := range emitted {
		if v[0] == "x.com" && v[1] == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("x.com count missing from %v", emitted)
	}
	// Window = 4 slots: after 4 more ticks with no data the counts expire
	// and ticks emit nothing.
	emitted = nil
	for i := 0; i < 4; i++ {
		b.Execute(dsps.NewTickTuple())
	}
	emitted = nil
	b.Execute(dsps.NewTickTuple())
	if len(emitted) != 0 {
		t.Fatalf("expired window still emitted %v", emitted)
	}
}

func TestParseBoltEmitsHostAndFailsBadTuple(t *testing.T) {
	var emitted []dsps.Values
	failed := false
	collector := &fakeCollector{
		onEmit: func(v dsps.Values) { emitted = append(emitted, v) },
		onFail: func() { failed = true },
	}
	b := &ParseBolt{}
	b.Prepare(dsps.TopologyContext{}, collector)
	b.Execute(makeTuple([]string{"url"}, "http://h.example.com/p"))
	if len(emitted) != 1 || emitted[0][0] != "h.example.com" {
		t.Fatalf("emitted = %v", emitted)
	}
	b.Execute(makeTuple([]string{"other"}, "zzz"))
	if !failed {
		t.Fatal("bad tuple not failed")
	}
}

func TestReportTop(t *testing.T) {
	r := &Report{}
	r.Prepare(dsps.TopologyContext{}, nil)
	feed := func(h string, c int) {
		r.Execute(makeTuple([]string{"host", "count"}, h, c))
	}
	feed("a.com", 5)
	feed("b.com", 9)
	feed("c.com", 9)
	feed("a.com", 7) // update
	top := r.Top(2)
	if len(top) != 2 || top[0].Host != "b.com" || top[1].Host != "c.com" {
		t.Fatalf("top = %v", top)
	}
	if len(r.Top(10)) != 3 {
		t.Fatal("Top(10) should return all")
	}
}

func TestBuildTopologyShape(t *testing.T) {
	topo, report, dg, err := Build(Config{Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	if report == nil || dg == nil {
		t.Fatal("missing report or grouping handle")
	}
	comps := topo.Components()
	if len(comps) != 4 {
		t.Fatalf("components = %v", comps)
	}
	// Static variant has no grouping handle.
	_, _, dg2, err := Build(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if dg2 != nil {
		t.Fatal("static build returned a dynamic grouping")
	}
}

func TestEndToEndOnEngine(t *testing.T) {
	topo, report, _, err := Build(Config{
		URLs:       50,
		Shape:      workload.ConstantRate{TPS: 3000},
		Window:     400 * time.Millisecond,
		Slide:      100 * time.Millisecond,
		ParseCost:  10 * time.Microsecond,
		CountCost:  5 * time.Microsecond,
		ParseTasks: 2,
		CountTasks: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := dsps.NewCluster(dsps.ClusterConfig{Nodes: 2, Seed: 3})
	if err := c.Submit(topo, dsps.SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	deadline := time.Now().Add(5 * time.Second)
	for len(report.Top(1)) == 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	top := report.Top(5)
	if len(top) == 0 {
		t.Fatal("no counts reported")
	}
	// Zipf skew: the top host strictly dominates the 5th.
	if len(top) >= 5 && top[0].Count < top[4].Count {
		t.Fatalf("top ordering broken: %v", top)
	}
	snap := c.Snapshot()
	if snap.TotalAcked() == 0 {
		t.Fatal("nothing acked")
	}
}

// fakeCollector implements dsps.OutputCollector for unit tests.
type fakeCollector struct {
	onEmit func(dsps.Values)
	onFail func()
}

func (f *fakeCollector) Emit(v dsps.Values) {
	if f.onEmit != nil {
		f.onEmit(v)
	}
}

func (f *fakeCollector) Fail() {
	if f.onFail != nil {
		f.onFail()
	}
}

// makeTuple builds a tuple the way the engine would, via an engine
// round-trip: construct with exported fields only.
func makeTuple(fields []string, values ...any) *dsps.Tuple {
	return dsps.NewTestTuple(fields, values...)
}

func (f *fakeCollector) EmitInt64(v int64) {
	if f.onEmit != nil {
		f.onEmit(dsps.Values{v})
	}
}

func (f *fakeCollector) EmitFloat64(v float64) {
	if f.onEmit != nil {
		f.onEmit(dsps.Values{v})
	}
}
