package core

import (
	"testing"
	"time"
)

// tick advances the planner one window and returns the delta.
func tick(p *ScalePlanner, at time.Time, par int, occ, basis float64) int {
	d, _ := p.Decide(at, ScaleSignals{Parallelism: par, Occupancy: occ, Basis: basis})
	return d
}

func TestScalePlannerHysteresisUp(t *testing.T) {
	p := NewScalePlanner(ScaleConfig{UpWindows: 3, Cooldown: time.Second})
	t0 := time.Unix(0, 0)
	// Two hot windows: below the streak, no action.
	if d := tick(p, t0, 2, 0.9, 1); d != 0 {
		t.Fatalf("delta after 1 hot window = %d, want 0", d)
	}
	if d := tick(p, t0.Add(time.Second), 2, 0.9, 1); d != 0 {
		t.Fatalf("delta after 2 hot windows = %d, want 0", d)
	}
	// A calm window resets the streak.
	if d := tick(p, t0.Add(2*time.Second), 2, 0.2, 1); d != 0 {
		t.Fatal("calm window acted")
	}
	for i := 0; i < 2; i++ {
		if d := tick(p, t0.Add(time.Duration(3+i)*time.Second), 2, 0.9, 1); d != 0 {
			t.Fatalf("delta on restarted streak window %d = %d, want 0", i+1, d)
		}
	}
	if d := tick(p, t0.Add(5*time.Second), 2, 0.9, 1); d != 1 {
		t.Fatalf("delta after full streak = %d, want +1", d)
	}
}

func TestScalePlannerCooldownBlocksBackToBack(t *testing.T) {
	p := NewScalePlanner(ScaleConfig{UpWindows: 1, Cooldown: 10 * time.Second})
	t0 := time.Unix(100, 0)
	if d := tick(p, t0, 2, 0.9, 1); d != 1 {
		t.Fatalf("first action delta = %d, want +1", d)
	}
	// Still hot, but inside the cooldown.
	if d := tick(p, t0.Add(time.Second), 3, 0.9, 1); d != 0 {
		t.Fatalf("delta inside cooldown = %d, want 0", d)
	}
	if d := tick(p, t0.Add(11*time.Second), 3, 0.9, 1); d != 1 {
		t.Fatalf("delta after cooldown = %d, want +1", d)
	}
}

func TestScalePlannerClampsAtBounds(t *testing.T) {
	p := NewScalePlanner(ScaleConfig{UpWindows: 1, DownWindows: 1, Cooldown: time.Millisecond, MaxParallelism: 3, MinParallelism: 2})
	t0 := time.Unix(0, 0)
	if d := tick(p, t0, 3, 0.9, 1); d != 0 {
		t.Fatalf("scaled past max: %d", d)
	}
	if d := tick(p, t0.Add(time.Second), 2, 0.0, 1); d != 0 {
		t.Fatalf("scaled below min: %d", d)
	}
	if d := tick(p, t0.Add(2*time.Second), 3, 0.0, 1); d != -1 {
		t.Fatalf("idle at par 3 gave %d, want -1", d)
	}
}

func TestScalePlannerScalesDownAfterIdleStreak(t *testing.T) {
	p := NewScalePlanner(ScaleConfig{DownWindows: 4, Cooldown: time.Millisecond})
	t0 := time.Unix(0, 0)
	for i := 0; i < 3; i++ {
		if d := tick(p, t0.Add(time.Duration(i)*time.Second), 4, 0.01, 1); d != 0 {
			t.Fatalf("acted before idle streak complete (window %d)", i+1)
		}
	}
	if d := tick(p, t0.Add(3*time.Second), 4, 0.01, 1); d != -1 {
		t.Fatalf("delta after idle streak = %d, want -1", d)
	}
}

func TestScalePlannerForecastChannel(t *testing.T) {
	// Occupancy stays moderate (above UpOccupancy/2, below UpOccupancy),
	// but the basis forecast rises far above the calm baseline: the
	// forecast channel alone must trigger the scale-up — the proactive
	// path the DRNN forecasts exist for.
	p := NewScalePlanner(ScaleConfig{UpOccupancy: 0.8, UpWindows: 2, Cooldown: time.Millisecond})
	t0 := time.Unix(0, 0)
	// Calm windows establish the baseline basis (~1.0).
	for i := 0; i < 5; i++ {
		if d := tick(p, t0.Add(time.Duration(i)*time.Second), 2, 0.1, 1.0); d != 0 {
			t.Fatal("calm window acted")
		}
	}
	// Forecast spikes to 3× baseline with occupancy at 0.5 (< UpOccupancy).
	if d := tick(p, t0.Add(5*time.Second), 2, 0.5, 3.0); d != 0 {
		t.Fatalf("forecast window 1 acted early: %d", d)
	}
	d, reason := p.Decide(t0.Add(6*time.Second), ScaleSignals{Parallelism: 2, Occupancy: 0.5, Basis: 3.0})
	if d != 1 {
		t.Fatalf("forecast channel delta = %d, want +1 (reason %q)", d, reason)
	}
	if reason == "" {
		t.Fatal("no reason recorded for forecast-driven action")
	}
}

// TestControllerElasticStepScalesUp closes the loop end to end: a live
// cluster with a saturated work stage, a controller with Scale configured,
// and enough ticks that the occupancy streak fires and an executor is
// actually spawned through the plan/actuate path.
func TestControllerElasticStepScalesUp(t *testing.T) {
	cl, targets, shutdown := newControlledTopology(t, 0)
	defer shutdown()
	c, err := NewController(cl, targets, Config{
		Policy: PolicyUniform,
		Scale: &ScaleConfig{
			MaxParallelism: 5,
			UpOccupancy:    0.2,
			UpWindows:      2,
			Cooldown:       50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	scaled := false
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		rep, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.ScaleErrors) > 0 {
			t.Fatalf("scale errors: %v", rep.ScaleErrors)
		}
		for _, a := range rep.Plan.Actions {
			if a.Scale > 0 {
				scaled = true
			}
		}
		if scaled {
			break
		}
	}
	if !scaled {
		t.Fatal("controller never planned a scale-up despite saturation")
	}
	if got := cl.ComponentParallelism("controlled", "work"); got < 4 {
		t.Fatalf("parallelism after elastic step = %d, want ≥ 4", got)
	}
	snap := cl.Snapshot()
	if len(snap.Scale) != 1 || snap.Scale[0].Ups == 0 {
		t.Fatalf("cluster scale stats = %+v, want Ups > 0", snap.Scale)
	}
}
