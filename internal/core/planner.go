package core

import "fmt"

// PlanPolicy selects how predictions become split ratios.
type PlanPolicy int

const (
	// PolicyBypass zeroes the share of misbehaving workers and splits the
	// rest inversely to predicted processing time — the paper's
	// redirect-around-misbehaving-workers behaviour.
	PolicyBypass PlanPolicy = iota
	// PolicyWeighted splits inversely to predicted processing time
	// without hard bypassing.
	PolicyWeighted
	// PolicyUniform ignores predictions (the static baseline).
	PolicyUniform
)

// String implements fmt.Stringer.
func (p PlanPolicy) String() string {
	switch p {
	case PolicyBypass:
		return "bypass"
	case PolicyWeighted:
		return "weighted"
	case PolicyUniform:
		return "uniform"
	default:
		return fmt.Sprintf("PlanPolicy(%d)", int(p))
	}
}

// PlanRatios computes the split ratio for each downstream task given the
// worker hosting each task, the predicted per-worker processing times, and
// the misbehaving set. The result is normalized to sum to 1 and is safe to
// pass to DynamicGrouping.SetRatios.
//
// probe, in [0, 0.2], reserves that fraction of the stream for each
// bypassed task so the controller keeps observing it and can re-admit the
// worker when it recovers; 0 bypasses hard.
//
// Degenerate cases fall back conservatively: unknown workers get the mean
// prediction; if every task would be bypassed the split reverts to
// weighted; if no predictions exist it reverts to uniform.
func PlanRatios(policy PlanPolicy, taskWorkers []string, predicted map[string]float64, misbehaving map[string]bool, probe float64) ([]float64, error) {
	n := len(taskWorkers)
	if n == 0 {
		return nil, fmt.Errorf("core: no downstream tasks to plan for")
	}
	if probe < 0 || probe > 0.2 {
		return nil, fmt.Errorf("core: probe ratio %v out of [0, 0.2]", probe)
	}
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 1 / float64(n)
	}
	if policy == PolicyUniform || len(predicted) == 0 {
		return uniform, nil
	}

	var meanPred float64
	for _, v := range predicted {
		meanPred += v
	}
	meanPred /= float64(len(predicted))
	if meanPred <= 0 {
		return uniform, nil
	}

	weightOf := func(worker string, bypass bool) float64 {
		p, ok := predicted[worker]
		if !ok || p <= 0 {
			p = meanPred
		}
		if bypass && misbehaving[worker] {
			return 0
		}
		return 1 / p
	}

	compute := func(bypass bool) ([]float64, float64) {
		out := make([]float64, n)
		var sum float64
		for i, w := range taskWorkers {
			out[i] = weightOf(w, bypass)
			sum += out[i]
		}
		return out, sum
	}

	bypassing := policy == PolicyBypass
	ratios, sum := compute(bypassing)
	if sum <= 0 {
		// Every task bypassed: degrade to weighted so the stream keeps
		// flowing.
		ratios, sum = compute(false)
		bypassing = false
	}
	if sum <= 0 {
		return uniform, nil
	}
	for i := range ratios {
		ratios[i] /= sum
	}
	if bypassing && probe > 0 {
		// Reserve a probe share for each bypassed task, scaling the
		// healthy shares down proportionally.
		bypassed := 0
		for i, w := range taskWorkers {
			if ratios[i] == 0 && misbehaving[w] {
				bypassed++
			}
		}
		reserve := probe * float64(bypassed)
		if bypassed > 0 && reserve < 1 {
			for i, w := range taskWorkers {
				if ratios[i] == 0 && misbehaving[w] {
					ratios[i] = probe
				} else {
					ratios[i] *= 1 - reserve
				}
			}
		}
	}
	return ratios, nil
}
