package core

import (
	"context"
	"testing"
	"time"

	"predstream/internal/dsps"
	"predstream/internal/telemetry"
	"predstream/internal/timeseries"
)

// newControlledTopology builds a 1-spout → 3-task bolt topology with
// dynamic grouping, one worker per bolt task (worker-1..worker-3; the
// spout rides on worker-0), and a per-tuple cost so faults show up in the
// statistics. limit 0 means unbounded emission.
func newControlledTopology(t *testing.T, limit int) (*dsps.Cluster, []ControlTarget, func()) {
	t.Helper()
	if limit <= 0 {
		limit = 1 << 30
	}
	b := dsps.NewTopologyBuilder("controlled")
	emitted := 0
	var col dsps.SpoutCollector
	b.SetSpout("src", func() dsps.Spout {
		return &dsps.SpoutFunc{
			OpenFn: func(_ dsps.TopologyContext, c dsps.SpoutCollector) { col = c },
			NextFn: func() bool {
				if emitted >= limit {
					return false
				}
				col.Emit(dsps.Values{emitted}, emitted)
				emitted++
				return true
			},
		}
	}, 1, "n")
	// 5ms clears this machine's ~2ms sleep-granularity floor so injected
	// slowdowns dominate timer noise in the measured statistics.
	bd := b.SetBolt("work", func() dsps.Bolt { return &dsps.BoltFunc{} }, 3).
		WithExecCost(5 * time.Millisecond)
	dg := bd.DynamicGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := dsps.NewCluster(dsps.ClusterConfig{
		Nodes:        2,
		CoresPerNode: 2,
		Delayer:      dsps.RealDelayer{},
		Seed:         11,
		AckTimeout:   10 * time.Second,
	})
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	return c, []ControlTarget{{Component: "work", Grouping: dg}}, c.Shutdown
}

func TestControllerStepBeforeAnyHistory(t *testing.T) {
	cl, targets, shutdown := newControlledTopology(t, 100)
	defer shutdown()
	c, err := NewController(cl, targets, Config{})
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Predicted) != 0 {
		t.Fatal("first step should only establish a baseline")
	}
	if len(c.History()) != 1 {
		t.Fatal("history not recorded")
	}
}

func TestControllerReactiveStepsApplyRatios(t *testing.T) {
	cl, targets, shutdown := newControlledTopology(t, 0)
	defer shutdown()
	c, err := NewController(cl, targets, Config{Policy: PolicyWeighted})
	if err != nil {
		t.Fatal(err)
	}
	var got StepReport
	for i := 0; i < 6; i++ {
		time.Sleep(30 * time.Millisecond)
		r, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		got = r
	}
	ratios, ok := got.Applied["work"]
	if !ok {
		t.Fatalf("no ratios applied: %+v", got)
	}
	if len(ratios) != 3 {
		t.Fatalf("ratios = %v", ratios)
	}
	var sum float64
	for _, r := range ratios {
		sum += r
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("ratios sum = %v", sum)
	}
	if got.UsedModel {
		t.Fatal("reactive controller claimed to use a model")
	}
	// The grouping handle actually carries the new ratios.
	if targets[0].Grouping.(*dsps.DynamicGrouping).Updates() == 0 {
		t.Fatal("grouping never updated")
	}
}

func TestControllerClosedLoopBypassesSlowWorker(t *testing.T) {
	// End-to-end E10 mechanics: run, observe, inject an 12× slowdown on
	// one bolt worker, and verify the controller steers its share near
	// zero while healthy workers keep the stream.
	cl, targets, shutdown := newControlledTopology(t, 0)
	defer shutdown()
	c, err := NewController(cl, targets, Config{Policy: PolicyBypass})
	if err != nil {
		t.Fatal(err)
	}
	warm := func(steps int) {
		for i := 0; i < steps; i++ {
			time.Sleep(80 * time.Millisecond)
			if _, err := c.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm(5)
	// Bolt tasks sit on workers 1..3 (spout took worker-0). Slow one.
	victim := "worker-2"
	if err := cl.InjectFault(victim, dsps.Fault{Slowdown: 12}); err != nil {
		t.Fatal(err)
	}
	// Give the slowdown time to show in the next windows, then control.
	warm(8)
	hist := c.History()
	last := hist[len(hist)-1]
	ratios := last.Applied["work"]
	if len(ratios) != 3 {
		t.Fatalf("ratios = %v", ratios)
	}
	// Identify which task index is on the victim.
	snap := cl.Snapshot()
	victimIdx := -1
	for _, ts := range snap.ComponentTasks("work") {
		if ts.WorkerID == victim {
			victimIdx = ts.TaskIndex
		}
	}
	if victimIdx < 0 {
		t.Fatal("victim hosts no work task")
	}
	if !last.Misbehaving[victim] {
		t.Fatalf("victim not detected: predicted=%v", last.Predicted)
	}
	if ratios[victimIdx] != 0 {
		t.Fatalf("victim ratio = %v, want 0 (bypass)", ratios[victimIdx])
	}
}

func TestControllerProbeReadmitsRecoveredWorker(t *testing.T) {
	// With a probe ratio, a bypassed worker keeps receiving a trickle of
	// tuples, so when its fault clears the controller observes recovery
	// and restores its share — the re-admission path hard bypass lacks.
	cl, targets, shutdown := newControlledTopology(t, 0)
	defer shutdown()
	c, err := NewController(cl, targets, Config{Policy: PolicyBypass, ProbeRatio: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	warm := func(steps int) StepReport {
		var last StepReport
		for i := 0; i < steps; i++ {
			time.Sleep(80 * time.Millisecond)
			r, err := c.Step()
			if err != nil {
				t.Fatal(err)
			}
			last = r
		}
		return last
	}
	warm(5)
	victim := "worker-2"
	victimIdx := -1
	for _, ts := range cl.Snapshot().ComponentTasks("work") {
		if ts.WorkerID == victim {
			victimIdx = ts.TaskIndex
		}
	}
	if victimIdx < 0 {
		t.Fatal("victim hosts no work task")
	}
	if err := cl.InjectFault(victim, dsps.Fault{Slowdown: 12}); err != nil {
		t.Fatal(err)
	}
	during := warm(8)
	if !during.Misbehaving[victim] {
		t.Fatalf("victim not detected: %v", during.Predicted)
	}
	if got := during.Applied["work"][victimIdx]; got != 0.05 {
		t.Fatalf("probe share = %v want 0.05", got)
	}
	cl.ClearFault(victim)
	after := warm(10)
	if after.Misbehaving[victim] {
		t.Fatalf("victim still flagged after recovery: %v", after.Predicted)
	}
	if got := after.Applied["work"][victimIdx]; got < 0.2 {
		t.Fatalf("recovered share = %v, want restored toward fair 1/3", got)
	}
}

func TestControllerFitAndPredictLoop(t *testing.T) {
	cl, targets, shutdown := newControlledTopology(t, 0)
	defer shutdown()
	c, err := NewController(cl, targets, Config{
		Policy:       PolicyWeighted,
		MinHistory:   5,
		NewPredictor: func() timeseries.Predictor { return &timeseries.NaivePredictor{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		time.Sleep(30 * time.Millisecond)
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FitPredictors(); err != nil {
		t.Fatal(err)
	}
	if !c.Fitted() {
		t.Fatal("not fitted")
	}
	time.Sleep(30 * time.Millisecond)
	r, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !r.UsedModel {
		t.Fatal("fitted controller did not use its model")
	}
}

func TestControllerQueueChannelCatchesStalledWorker(t *testing.T) {
	// A fully stalled worker never executes, so every time-based signal
	// carries forward its last healthy value; only its backlog grows. The
	// queue channel must flag and bypass it.
	cl, targets, shutdown := newControlledTopology(t, 0)
	defer shutdown()
	c, err := NewController(cl, targets, Config{Policy: PolicyBypass, StallQueueMin: 8})
	if err != nil {
		t.Fatal(err)
	}
	warm := func(steps int) StepReport {
		var last StepReport
		for i := 0; i < steps; i++ {
			time.Sleep(80 * time.Millisecond)
			r, err := c.Step()
			if err != nil {
				t.Fatal(err)
			}
			last = r
		}
		return last
	}
	warm(4)
	victim := "worker-2"
	if err := cl.InjectFault(victim, dsps.Fault{Stall: true}); err != nil {
		t.Fatal(err)
	}
	last := warm(8)
	if !last.Misbehaving[victim] {
		t.Fatalf("stalled worker not flagged: basis=%v", last.Basis)
	}
	snap := cl.Snapshot()
	victimIdx := -1
	for _, ts := range snap.ComponentTasks("work") {
		if ts.WorkerID == victim {
			victimIdx = ts.TaskIndex
		}
	}
	if got := last.Applied["work"][victimIdx]; got != 0 {
		t.Fatalf("stalled worker kept ratio %v", got)
	}
}

func TestControllerThroughputMetricDetectsSlowWorker(t *testing.T) {
	// With TargetThroughput, a slow worker shows a LOW value; the
	// controller must still flag and bypass it via the inverted basis.
	cl, targets, shutdown := newControlledTopology(t, 0)
	defer shutdown()
	c, err := NewController(cl, targets, Config{
		Policy: PolicyBypass,
		Metric: telemetry.TargetThroughput,
	})
	if err != nil {
		t.Fatal(err)
	}
	warm := func(steps int) StepReport {
		var last StepReport
		for i := 0; i < steps; i++ {
			time.Sleep(80 * time.Millisecond)
			r, err := c.Step()
			if err != nil {
				t.Fatal(err)
			}
			last = r
		}
		return last
	}
	warm(5)
	victim := "worker-2"
	if err := cl.InjectFault(victim, dsps.Fault{Slowdown: 12}); err != nil {
		t.Fatal(err)
	}
	last := warm(8)
	if !last.Misbehaving[victim] {
		t.Fatalf("throughput-metric controller missed the slow worker: basis=%v observed=%v",
			last.Basis, last.Observed)
	}
	// Throughput observations are rates (higher = healthy); basis must be
	// inverted (victim has the largest basis).
	for id, b := range last.Basis {
		if id != victim && b >= last.Basis[victim] {
			t.Fatalf("basis inversion wrong: %s=%v vs victim %v", id, b, last.Basis[victim])
		}
	}
}

func TestControllerRunLoopAndCancel(t *testing.T) {
	cl, targets, shutdown := newControlledTopology(t, 0)
	defer shutdown()
	c, err := NewController(cl, targets, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background(), 0); err == nil {
		t.Fatal("zero period should error")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if err := c.Run(ctx, 25*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(c.History()) < 3 {
		t.Fatalf("run loop recorded %d steps", len(c.History()))
	}
}
