package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"predstream/internal/dsps"
	"predstream/internal/stats"
	"predstream/internal/telemetry"
	"predstream/internal/timeseries"
)

// DetectBasis selects which per-worker value drives detection and
// planning.
type DetectBasis int

const (
	// BasisMax uses max(predicted, observed): proactive on model
	// forecasts, but still reactive when an observation falls outside the
	// model's envelope (a trained regressor cannot extrapolate to a
	// fault regime it never saw — its scaled inputs saturate — so acting
	// on predictions alone would be blind to sudden faults). Default.
	BasisMax DetectBasis = iota
	// BasisPredicted uses the model forecast only.
	BasisPredicted
	// BasisObserved uses the last observation only (purely reactive).
	BasisObserved
)

// String implements fmt.Stringer.
func (b DetectBasis) String() string {
	switch b {
	case BasisMax:
		return "max"
	case BasisPredicted:
		return "predicted"
	case BasisObserved:
		return "observed"
	default:
		return fmt.Sprintf("DetectBasis(%d)", int(b))
	}
}

// Engine is the slice of the stream engine's surface the controller
// drives: observe (Snapshot), size planners (QueueSize), and actuate
// parallelism (ScaleUp/ScaleDown). *dsps.Cluster satisfies it directly —
// the local transport — and internal/cluster's RemoteEngine satisfies it
// across the coordinator/worker wire protocol, so the same control loop
// runs in-process and distributed.
type Engine interface {
	// Snapshot captures the engine's current metrics.
	Snapshot() *dsps.Snapshot
	// QueueSize is the per-executor input-queue bound (occupancy basis
	// for the scale planner).
	QueueSize() int
	// ScaleUp adds n executors to a component.
	ScaleUp(topology, component string, n int) error
	// ScaleDown drains and removes n executors of a component.
	ScaleDown(topology, component string, n int, drainTimeout time.Duration) error
}

// RatioActuator applies a dynamic-grouping ratio vector to one controlled
// edge. *dsps.DynamicGrouping satisfies it directly; internal/cluster's
// RemoteGrouping satisfies it by shipping the vector to a worker process.
type RatioActuator interface {
	// SetRatios installs the per-task split ratios (must sum to 1).
	SetRatios(ratios []float64) error
}

// ControlTarget names one dynamic-grouping edge under control: tuples
// flowing into Component are re-split via Grouping.
type ControlTarget struct {
	// Component is the downstream component whose input split is
	// controlled.
	Component string
	// Grouping is the actuator for the edge's split — the handle returned
	// by BoltDeclarer.DynamicGrouping locally, or a RemoteGrouping when
	// the edge lives in a worker process.
	Grouping RatioActuator
	// Topology names the topology hosting Component for parallelism
	// actuation; when empty it is inferred from the snapshot (sufficient
	// unless two running topologies share the component name).
	Topology string
}

// Config parameterizes the controller. Zero fields take the noted
// defaults.
type Config struct {
	// Metric is what the predictors forecast; default TargetProcTime.
	Metric telemetry.TargetMetric
	// Features selects predictor inputs; default includes interference.
	Features *telemetry.FeatureConfig
	// NewPredictor builds one predictor per worker. Required for
	// prediction; when nil the controller runs reactively on the last
	// observation.
	NewPredictor func() timeseries.Predictor
	// MinHistory is the number of windows required before predictors are
	// fitted; default 30.
	MinHistory int
	// Detector flags misbehaving workers; default RelativeDetector{2}.
	Detector Detector
	// Policy converts predictions into ratios; default PolicyBypass.
	Policy PlanPolicy
	// ProbeRatio reserves this share of the stream for each bypassed
	// task so the controller keeps observing it and can re-admit a
	// recovered worker; 0 (default) bypasses hard.
	ProbeRatio float64
	// Basis selects what drives detection and planning; default BasisMax.
	Basis DetectBasis
	// StallQueueMin and StallRateFrac gate the stall-detection channel: a
	// worker is also flagged misbehaving when it has a backlog above
	// StallQueueMin yet an execute rate below StallRateFrac × the median
	// rate. This catches *stalled* workers, which execute nothing and
	// therefore look healthy to every time-based signal (there are no
	// observations to carry), and stays meaningful even when backpressure
	// saturates every queue. Defaults 16 and 0.1; StallQueueMin < 0
	// disables the channel.
	StallQueueMin float64
	StallRateFrac float64
	// HistoryLimit bounds retained windows per worker; default 10000.
	HistoryLimit int
	// Components restricts which components' tasks contribute to worker
	// statistics; default: the controlled components (the stages being
	// steered), so unrelated co-hosted tasks don't dilute the prediction
	// signal. Pass ["*"] to sample every component.
	Components []string
	// Events, when set, receives one structured event per applied control
	// plan and per detected misbehaving worker (obs.Logger satisfies the
	// interface); nil disables event emission.
	Events dsps.EventSink
	// Scale, when non-nil, widens planning from ratio-only to
	// ratio+parallelism: each control tick also consults a per-component
	// ScalePlanner and actuates its deltas through Cluster.ScaleUp /
	// ScaleDown. A ratio vector applied in the same tick as a scale
	// action is sized for the pre-scale parallelism; DynamicGrouping
	// falls back to a uniform split until the next tick re-plans at the
	// new width.
	Scale *ScaleConfig
}

func (c Config) withDefaults() Config {
	if c.Features == nil {
		c.Features = &telemetry.FeatureConfig{Interference: true}
	}
	if c.MinHistory <= 0 {
		c.MinHistory = 30
	}
	if c.Detector == nil {
		c.Detector = &RelativeDetector{Factor: 2}
	}
	if c.HistoryLimit <= 0 {
		c.HistoryLimit = 10000
	}
	if c.StallQueueMin == 0 {
		c.StallQueueMin = 16
	}
	if c.StallRateFrac <= 0 {
		c.StallRateFrac = 0.1
	}
	return c
}

// StepReport records what one control step observed and decided, the raw
// material of experiment E10's reaction traces.
type StepReport struct {
	At time.Time
	// Predicted holds the per-worker forecast of the control metric (or
	// the last observation before predictors are fitted).
	Predicted map[string]float64
	// Observed holds the per-worker last-window observation.
	Observed map[string]float64
	// Misbehaving is the detector's verdict per worker.
	Misbehaving map[string]bool
	// Basis holds the per-worker value detection and planning actually
	// used (see Config.Basis).
	Basis map[string]float64
	// Applied maps target component → the ratios actually set.
	Applied map[string][]float64
	// Plan is the widened action set of this step: the applied ratio
	// vectors plus any parallelism deltas the scale planner decided.
	Plan Plan
	// ScaleErrors records actuation failures of scale actions (the step
	// itself still succeeds: a lost race against a concurrent scale event
	// must not kill the control loop).
	ScaleErrors []string
	// UsedModel reports whether fitted predictors (vs. reactive
	// fallback) produced Predicted.
	UsedModel bool
}

// Controller is the paper's control loop bound to one engine (a local
// cluster or a remote worker engine reached over the wire).
type Controller struct {
	cfg     Config
	cluster Engine
	targets []ControlTarget

	mu         sync.Mutex
	sampler    *telemetry.Sampler
	predictors map[string]timeseries.Predictor
	fitted     bool
	history    []StepReport
	scalers    map[string]*ScalePlanner // per component, when cfg.Scale is set
}

// NewController builds a controller for the given engine and control
// targets.
func NewController(cluster Engine, targets []ControlTarget, cfg Config) (*Controller, error) {
	if cluster == nil {
		return nil, fmt.Errorf("core: nil cluster")
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("core: no control targets")
	}
	for i, t := range targets {
		if t.Component == "" || t.Grouping == nil {
			return nil, fmt.Errorf("core: target %d incomplete", i)
		}
	}
	cfg = cfg.withDefaults()
	if cfg.Scale != nil {
		sc := cfg.Scale.withDefaults()
		cfg.Scale = &sc
	}
	components := cfg.Components
	if len(components) == 0 {
		for _, t := range targets {
			components = append(components, t.Component)
		}
	} else if len(components) == 1 && components[0] == "*" {
		components = nil
	}
	ctl := &Controller{
		cfg:        cfg,
		cluster:    cluster,
		targets:    targets,
		sampler:    telemetry.NewSamplerFiltered(cfg.HistoryLimit, components...),
		predictors: make(map[string]timeseries.Predictor),
	}
	if cfg.Scale != nil {
		ctl.scalers = make(map[string]*ScalePlanner, len(targets))
		for _, t := range targets {
			ctl.scalers[t.Component] = NewScalePlanner(*cfg.Scale)
		}
	}
	return ctl, nil
}

// Fitted reports whether per-worker predictors have been trained.
func (c *Controller) Fitted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fitted
}

// History returns a copy of all step reports so far.
func (c *Controller) History() []StepReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]StepReport, len(c.history))
	copy(out, c.history)
	return out
}

// Sampler exposes the controller's window history (read-only use).
func (c *Controller) Sampler() *telemetry.Sampler { return c.sampler }

// FitPredictors trains one predictor per worker on the collected history.
// It requires cfg.NewPredictor and at least MinHistory windows per worker.
func (c *Controller) FitPredictors() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.NewPredictor == nil {
		return fmt.Errorf("core: no predictor factory configured")
	}
	workers := c.sampler.Workers()
	if len(workers) == 0 {
		return fmt.Errorf("core: no windows collected yet")
	}
	for _, id := range workers {
		wins := c.sampler.Series(id)
		if len(wins) < c.cfg.MinHistory {
			return fmt.Errorf("core: worker %s has %d windows, need %d", id, len(wins), c.cfg.MinHistory)
		}
		series := telemetry.ToSeries(wins, c.cfg.Metric, *c.cfg.Features)
		p := c.cfg.NewPredictor()
		if err := p.Fit(series); err != nil {
			return fmt.Errorf("core: fit %s for %s: %w", p.Name(), id, err)
		}
		c.predictors[id] = p
	}
	c.fitted = true
	return nil
}

// Step runs one control iteration: sample → predict → detect → plan →
// actuate, returning the report. Before predictors are fitted it falls
// back to reacting to the last observation.
func (c *Controller) Step() (StepReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := c.cluster.Snapshot()
	c.sampler.Sample(snap)

	report := StepReport{
		At:          snap.At,
		Predicted:   map[string]float64{},
		Observed:    map[string]float64{},
		Basis:       map[string]float64{},
		Misbehaving: map[string]bool{},
		Applied:     map[string][]float64{},
	}
	workers := c.sampler.Workers()
	if len(workers) == 0 {
		// First sample only establishes the baseline.
		c.history = append(c.history, report)
		return report, nil
	}
	for _, id := range workers {
		wins := c.sampler.Series(id)
		last := wins[len(wins)-1]
		obs := telemetry.Target(last, c.cfg.Metric)
		report.Observed[id] = obs
		pred := obs
		if c.fitted {
			p := c.predictors[id]
			series := telemetry.ToSeries(wins, c.cfg.Metric, *c.cfg.Features)
			if series.Len() >= p.MinContext() {
				if v, err := p.Predict(series, 1); err == nil {
					pred = v
					report.UsedModel = true
				}
			}
		}
		report.Predicted[id] = pred
		// The detector and planner treat the basis as time-like (higher =
		// worse). Throughput is inverted into its time-like reciprocal so
		// a slow worker (low throughput) reads as a high basis value.
		toBasis := func(v float64) float64 {
			if c.cfg.Metric == telemetry.TargetThroughput {
				const floor = 1e-9
				if v < floor {
					v = floor
				}
				return 1 / v
			}
			return v
		}
		basis := toBasis(pred)
		switch c.cfg.Basis {
		case BasisObserved:
			basis = toBasis(obs)
		case BasisMax:
			if b := toBasis(obs); b > basis {
				basis = b
			}
		}
		report.Basis[id] = basis
	}
	report.Misbehaving = c.cfg.Detector.Detect(report.Basis)
	// Stall channel: a stalled worker executes nothing, so no time-based
	// signal exists for it — a backlog with no throughput is the
	// evidence.
	if c.cfg.StallQueueMin > 0 {
		type qr struct{ queue, rate float64 }
		obs := map[string]qr{}
		var rates []float64
		for _, id := range workers {
			wins := c.sampler.Series(id)
			last := wins[len(wins)-1]
			obs[id] = qr{queue: last.QueueLen, rate: last.ExecRate}
			rates = append(rates, last.ExecRate)
		}
		medRate := stats.Median(rates)
		for id, o := range obs {
			if o.queue > c.cfg.StallQueueMin && o.rate <= c.cfg.StallRateFrac*medRate {
				report.Misbehaving[id] = true
			}
		}
	}

	for _, target := range c.targets {
		taskWorkers := taskWorkersOf(snap, target.Component)
		if len(taskWorkers) == 0 {
			continue
		}
		ratios, err := PlanRatios(c.cfg.Policy, taskWorkers, report.Basis, report.Misbehaving, c.cfg.ProbeRatio)
		if err != nil {
			return report, err
		}
		action := Action{Component: target.Component, Ratios: ratios}
		if sp := c.scalers[target.Component]; sp != nil {
			sig := c.scaleSignals(snap, target.Component, taskWorkers, report.Basis)
			action.Scale, action.Reason = sp.Decide(snap.At, sig)
		}
		report.Plan.Actions = append(report.Plan.Actions, action)

		if err := target.Grouping.SetRatios(ratios); err != nil {
			return report, fmt.Errorf("core: apply ratios to %s: %w", target.Component, err)
		}
		report.Applied[target.Component] = ratios
		if c.cfg.Events != nil {
			c.cfg.Events.Event(dsps.EventInfo, "control plan applied",
				"component", target.Component,
				"ratios", formatRatios(ratios),
				"misbehaving", misbehavingList(report.Misbehaving))
		}
		if action.Scale != 0 {
			if err := c.actuateScale(snap, target, action); err != nil {
				// A failed scale action (e.g. a lost race against a chaos
				// script's concurrent scale event) is recorded, not fatal.
				report.ScaleErrors = append(report.ScaleErrors, err.Error())
				if c.cfg.Events != nil {
					c.cfg.Events.Event(dsps.EventWarn, "scale action failed",
						"component", target.Component, "error", err.Error())
				}
			} else if c.cfg.Events != nil {
				c.cfg.Events.Event(dsps.EventInfo, "scale action applied",
					"component", target.Component,
					"delta", strconv.Itoa(action.Scale),
					"reason", action.Reason)
			}
		}
	}
	c.history = append(c.history, report)
	return report, nil
}

// scaleSignals folds a snapshot into the scale planner's per-window input
// for one component: live parallelism, mean queue occupancy, and the mean
// basis over the workers hosting the component.
func (c *Controller) scaleSignals(snap *dsps.Snapshot, component string, taskWorkers []string, basis map[string]float64) ScaleSignals {
	tasks := snap.ComponentTasks(component)
	sig := ScaleSignals{Parallelism: len(tasks)}
	if qs := c.cluster.QueueSize(); qs > 0 && len(tasks) > 0 {
		var occ float64
		for _, ts := range tasks {
			occ += float64(ts.QueueLen) / float64(qs)
		}
		sig.Occupancy = occ / float64(len(tasks))
	}
	var sum float64
	n := 0
	for _, w := range taskWorkers {
		if b, ok := basis[w]; ok {
			sum += b
			n++
		}
	}
	if n > 0 {
		sig.Basis = sum / float64(n)
	}
	return sig
}

// actuateScale applies one parallelism delta through the cluster.
func (c *Controller) actuateScale(snap *dsps.Snapshot, target ControlTarget, action Action) error {
	topology := target.Topology
	if topology == "" {
		tasks := snap.ComponentTasks(target.Component)
		if len(tasks) == 0 {
			return fmt.Errorf("core: no tasks to infer topology of %s", target.Component)
		}
		topology = tasks[0].Topology
	}
	if action.Scale > 0 {
		return c.cluster.ScaleUp(topology, target.Component, action.Scale)
	}
	return c.cluster.ScaleDown(topology, target.Component, -action.Scale, c.cfg.Scale.DrainTimeout)
}

// formatRatios renders a ratio vector compactly for event attributes.
func formatRatios(ratios []float64) string {
	var b strings.Builder
	for i, r := range ratios {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(r, 'f', 3, 64))
	}
	return b.String()
}

// misbehavingList renders the flagged workers sorted, or "none".
func misbehavingList(verdicts map[string]bool) string {
	var flagged []string
	for id, bad := range verdicts {
		if bad {
			flagged = append(flagged, id)
		}
	}
	if len(flagged) == 0 {
		return "none"
	}
	sort.Strings(flagged)
	return strings.Join(flagged, ",")
}

// Run executes Step on the given period until ctx is cancelled, returning
// the first error encountered (context cancellation is not an error).
func (c *Controller) Run(ctx context.Context, period time.Duration) error {
	if period <= 0 {
		return fmt.Errorf("core: non-positive control period %v", period)
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
			if _, err := c.Step(); err != nil {
				return err
			}
		}
	}
}

// taskWorkersOf returns the worker hosting each task of component, ordered
// by task index — the order DynamicGrouping targets use.
func taskWorkersOf(snap *dsps.Snapshot, component string) []string {
	tasks := snap.ComponentTasks(component)
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].TaskIndex < tasks[j].TaskIndex })
	out := make([]string, len(tasks))
	for i, t := range tasks {
		out[i] = t.WorkerID
	}
	return out
}
