package core

import (
	"fmt"
	"time"
)

// This file widens the planner from ratio-only output to ratio +
// parallelism actions. PlanRatios stays the split-vector primitive; the
// ScalePlanner adds a horizontal dimension driven by the same per-worker
// basis (the DRNN forecast folded with observations) plus queue occupancy,
// with hysteresis and cooldown so transient spikes don't thrash executors.

// Action is one component-level decision of a control step: a new input
// split, a parallelism delta, or both.
type Action struct {
	// Component is the controlled downstream stage.
	Component string
	// Ratios is the split vector applied to the component's dynamic
	// grouping; nil leaves the split untouched.
	Ratios []float64
	// Scale is the parallelism delta: executors to add (> 0) or drain
	// (< 0); 0 holds.
	Scale int
	// Reason is the planner's rationale for the scale decision.
	Reason string
}

// Plan is the full action set of one control step.
type Plan struct {
	Actions []Action
}

// ScaleConfig parameterizes the elastic scale planner. Zero fields take
// the noted defaults.
type ScaleConfig struct {
	// MinParallelism and MaxParallelism clamp the live executor count;
	// defaults 1 and 8.
	MinParallelism int
	MaxParallelism int
	// UpOccupancy is the mean queue-occupancy fraction (0..1) above which
	// a window counts toward scaling up; default 0.5.
	UpOccupancy float64
	// DownOccupancy is the occupancy below which a window counts toward
	// scaling down; default 0.05.
	DownOccupancy float64
	// UpBasisFactor corroborates occupancy with the forecast channel: a
	// window also counts toward scaling up when the mean basis (predicted
	// processing time) exceeds this multiple of the planner's calm
	// baseline while occupancy is at least UpOccupancy/2. Default 1.5;
	// negative disables the channel.
	UpBasisFactor float64
	// UpWindows and DownWindows are the hysteresis streaks: consecutive
	// overloaded (resp. idle) windows required before acting. Defaults 2
	// and 6.
	UpWindows   int
	DownWindows int
	// Cooldown is the minimum time between scale actions on one
	// component; default 2s.
	Cooldown time.Duration
	// StepUp and StepDown bound how many executors one action adds or
	// drains; defaults 1 and 1.
	StepUp   int
	StepDown int
	// DrainTimeout bounds each scale-down's cooperative drain; default 2s.
	DrainTimeout time.Duration
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.MinParallelism <= 0 {
		c.MinParallelism = 1
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = 8
	}
	if c.UpOccupancy <= 0 {
		c.UpOccupancy = 0.5
	}
	if c.DownOccupancy <= 0 {
		c.DownOccupancy = 0.05
	}
	if c.UpBasisFactor == 0 {
		c.UpBasisFactor = 1.5
	}
	if c.UpWindows <= 0 {
		c.UpWindows = 2
	}
	if c.DownWindows <= 0 {
		c.DownWindows = 6
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.StepUp <= 0 {
		c.StepUp = 1
	}
	if c.StepDown <= 0 {
		c.StepDown = 1
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 2 * time.Second
	}
	return c
}

// ScaleSignals is one window's input to the scale planner.
type ScaleSignals struct {
	// Parallelism is the component's live executor count.
	Parallelism int
	// Occupancy is the mean input-queue occupancy fraction (0..1) across
	// the component's live executors.
	Occupancy float64
	// Basis is the mean per-worker basis (time-like: higher = slower)
	// over the workers hosting the component, i.e. the DRNN forecast
	// folded with observations exactly as the bypass planner sees it.
	Basis float64
}

// ScalePlanner turns per-window signals into parallelism deltas with
// hysteresis (consecutive-window streaks) and a cooldown. It is
// deterministic: state advances only through Decide, and time is passed
// in, so tests and replays drive it entirely.
type ScalePlanner struct {
	cfg        ScaleConfig
	upStreak   int
	downStreak int
	lastAction time.Time
	baseline   float64 // EMA of the basis during calm windows
}

// NewScalePlanner builds a planner with defaulted config.
func NewScalePlanner(cfg ScaleConfig) *ScalePlanner {
	return &ScalePlanner{cfg: cfg.withDefaults()}
}

// Config returns the planner's effective (defaulted) configuration.
func (p *ScalePlanner) Config() ScaleConfig { return p.cfg }

// Decide consumes one window of signals and returns the parallelism delta
// to apply now (0 = hold) plus the rationale.
func (p *ScalePlanner) Decide(now time.Time, sig ScaleSignals) (delta int, reason string) {
	cfg := p.cfg
	// Track the calm-regime basis so a rising forecast is measured against
	// "what slow looks like when we're healthy", self-calibrating to the
	// workload's service cost.
	if sig.Basis > 0 && sig.Occupancy < cfg.UpOccupancy/2 {
		if p.baseline == 0 {
			p.baseline = sig.Basis
		} else {
			p.baseline = 0.9*p.baseline + 0.1*sig.Basis
		}
	}
	overloaded := sig.Occupancy >= cfg.UpOccupancy
	forecastHot := cfg.UpBasisFactor > 0 && p.baseline > 0 &&
		sig.Basis >= cfg.UpBasisFactor*p.baseline &&
		sig.Occupancy >= cfg.UpOccupancy/2
	idle := sig.Occupancy <= cfg.DownOccupancy && !forecastHot

	switch {
	case overloaded || forecastHot:
		p.upStreak++
		p.downStreak = 0
	case idle:
		p.downStreak++
		p.upStreak = 0
	default:
		p.upStreak = 0
		p.downStreak = 0
	}

	cooled := p.lastAction.IsZero() || now.Sub(p.lastAction) >= cfg.Cooldown
	if p.upStreak >= cfg.UpWindows && cooled && sig.Parallelism < cfg.MaxParallelism {
		delta = cfg.StepUp
		if sig.Parallelism+delta > cfg.MaxParallelism {
			delta = cfg.MaxParallelism - sig.Parallelism
		}
		p.lastAction = now
		p.upStreak = 0
		why := "occupancy"
		if !overloaded {
			why = "forecast"
		}
		return delta, fmt.Sprintf("%s over threshold for %d windows (occ %.2f, basis %.3g vs baseline %.3g)",
			why, cfg.UpWindows, sig.Occupancy, sig.Basis, p.baseline)
	}
	if p.downStreak >= cfg.DownWindows && cooled && sig.Parallelism > cfg.MinParallelism {
		delta = -cfg.StepDown
		if sig.Parallelism+delta < cfg.MinParallelism {
			delta = cfg.MinParallelism - sig.Parallelism
		}
		p.lastAction = now
		p.downStreak = 0
		return delta, fmt.Sprintf("idle for %d windows (occ %.2f)", cfg.DownWindows, sig.Occupancy)
	}
	return 0, ""
}
