// Package core implements the paper's predictive control framework: a
// monitor that samples multilevel runtime statistics from the dsps engine,
// per-worker performance predictors (DRNN or any timeseries.Predictor), a
// misbehaving-worker detector over the predictions, a planner that turns
// predictions into split ratios, and an actuator that applies them to
// dynamic groupings — closing the loop the paper closes over Storm.
package core

import (
	"fmt"

	"predstream/internal/stats"
)

// Detector flags misbehaving workers from predicted performance.
type Detector interface {
	// Detect returns the set of misbehaving worker ids given the
	// predicted per-worker metric (higher = worse for processing time).
	Detect(predicted map[string]float64) map[string]bool
}

// RelativeDetector flags a worker when its predicted processing time
// exceeds Factor × the median across workers — the scale-free rule that
// works across applications without per-topology thresholds.
type RelativeDetector struct {
	// Factor is the multiple of the median that counts as misbehaving;
	// values ≤ 1 are rejected at construction.
	Factor float64
}

// NewRelativeDetector validates and builds a RelativeDetector.
func NewRelativeDetector(factor float64) (*RelativeDetector, error) {
	if factor <= 1 {
		return nil, fmt.Errorf("core: detector factor %v must be > 1", factor)
	}
	return &RelativeDetector{Factor: factor}, nil
}

// Detect implements Detector.
func (d *RelativeDetector) Detect(predicted map[string]float64) map[string]bool {
	out := make(map[string]bool, len(predicted))
	if len(predicted) == 0 {
		return out
	}
	vals := make([]float64, 0, len(predicted))
	for _, v := range predicted {
		vals = append(vals, v)
	}
	med := stats.Median(vals)
	for id, v := range predicted {
		out[id] = med > 0 && v > d.Factor*med
	}
	return out
}

// AbsoluteDetector flags a worker when its predicted metric exceeds a
// fixed threshold, for deployments with a known SLO.
type AbsoluteDetector struct {
	Threshold float64
}

// Detect implements Detector.
func (d *AbsoluteDetector) Detect(predicted map[string]float64) map[string]bool {
	out := make(map[string]bool, len(predicted))
	for id, v := range predicted {
		out[id] = v > d.Threshold
	}
	return out
}

// HysteresisDetector wraps another detector and requires FlagAfter
// consecutive positive verdicts before marking a worker misbehaving, and
// ClearAfter consecutive negative verdicts before clearing it. It
// suppresses flapping when a worker's prediction hovers near the
// threshold (the probe-based re-admission path depends on this to avoid
// oscillating traffic).
type HysteresisDetector struct {
	Inner      Detector
	FlagAfter  int // consecutive positives to flag; default 2
	ClearAfter int // consecutive negatives to clear; default 3

	state map[string]*hysteresisState
}

type hysteresisState struct {
	flagged bool
	streak  int // consecutive verdicts agreeing with the pending change
}

// NewHysteresisDetector wraps inner with the given streak requirements
// (non-positive values take the defaults).
func NewHysteresisDetector(inner Detector, flagAfter, clearAfter int) (*HysteresisDetector, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: nil inner detector")
	}
	if flagAfter <= 0 {
		flagAfter = 2
	}
	if clearAfter <= 0 {
		clearAfter = 3
	}
	return &HysteresisDetector{
		Inner:      inner,
		FlagAfter:  flagAfter,
		ClearAfter: clearAfter,
		state:      make(map[string]*hysteresisState),
	}, nil
}

// Detect implements Detector. It is stateful across calls and not safe
// for concurrent use (the controller calls it from one goroutine).
func (d *HysteresisDetector) Detect(predicted map[string]float64) map[string]bool {
	raw := d.Inner.Detect(predicted)
	out := make(map[string]bool, len(raw))
	for id, verdict := range raw {
		st := d.state[id]
		if st == nil {
			st = &hysteresisState{}
			d.state[id] = st
		}
		if verdict != st.flagged {
			st.streak++
			need := d.FlagAfter
			if st.flagged {
				need = d.ClearAfter
			}
			if st.streak >= need {
				st.flagged = verdict
				st.streak = 0
			}
		} else {
			st.streak = 0
		}
		out[id] = st.flagged
	}
	return out
}
