package core_test

import (
	"fmt"

	"predstream/internal/core"
)

// ExamplePlanRatios shows how predicted per-worker processing times become
// split ratios: the misbehaving worker is bypassed and the healthy workers
// split the stream inversely to their predicted times.
func ExamplePlanRatios() {
	taskWorkers := []string{"worker-1", "worker-2", "worker-3"}
	predictedMs := map[string]float64{
		"worker-1": 2.0,
		"worker-2": 4.0,
		"worker-3": 40.0, // slow
	}
	misbehaving := map[string]bool{"worker-3": true}

	ratios, err := core.PlanRatios(core.PolicyBypass, taskWorkers, predictedMs, misbehaving, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	for i, w := range taskWorkers {
		fmt.Printf("%s: %.3f\n", w, ratios[i])
	}
	// Output:
	// worker-1: 0.667
	// worker-2: 0.333
	// worker-3: 0.000
}

// ExampleRelativeDetector shows the scale-free misbehaving-worker rule.
func ExampleRelativeDetector() {
	d, _ := core.NewRelativeDetector(2)
	flags := d.Detect(map[string]float64{
		"worker-1": 1.9,
		"worker-2": 2.1,
		"worker-3": 16.0,
	})
	fmt.Println(flags["worker-1"], flags["worker-2"], flags["worker-3"])
	// Output: false false true
}
