package core

import (
	"math"
	"testing"

	"predstream/internal/timeseries"
)

func TestRelativeDetector(t *testing.T) {
	d, err := NewRelativeDetector(2)
	if err != nil {
		t.Fatal(err)
	}
	got := d.Detect(map[string]float64{
		"w0": 1.0, "w1": 1.1, "w2": 0.9, "w3": 8.0,
	})
	if !got["w3"] {
		t.Fatal("slow worker not flagged")
	}
	if got["w0"] || got["w1"] || got["w2"] {
		t.Fatalf("healthy workers flagged: %v", got)
	}
	if len(d.Detect(nil)) != 0 {
		t.Fatal("empty detect should be empty")
	}
}

func TestRelativeDetectorFactorValidation(t *testing.T) {
	if _, err := NewRelativeDetector(1); err == nil {
		t.Fatal("factor 1 should error")
	}
	if _, err := NewRelativeDetector(0.5); err == nil {
		t.Fatal("factor < 1 should error")
	}
}

func TestRelativeDetectorZeroMedian(t *testing.T) {
	d, _ := NewRelativeDetector(2)
	got := d.Detect(map[string]float64{"w0": 0, "w1": 0})
	if got["w0"] || got["w1"] {
		t.Fatal("zero-median input should flag nobody")
	}
}

func TestAbsoluteDetector(t *testing.T) {
	d := &AbsoluteDetector{Threshold: 5}
	got := d.Detect(map[string]float64{"a": 4, "b": 6})
	if got["a"] || !got["b"] {
		t.Fatalf("absolute detect = %v", got)
	}
}

func TestHysteresisDetectorDebounces(t *testing.T) {
	inner := &AbsoluteDetector{Threshold: 5}
	d, err := NewHysteresisDetector(inner, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string]float64{"w": 10}
	good := map[string]float64{"w": 1}
	// One positive verdict is not enough.
	if d.Detect(bad)["w"] {
		t.Fatal("flagged after 1 verdict, FlagAfter=2")
	}
	if !d.Detect(bad)["w"] {
		t.Fatal("not flagged after 2 consecutive verdicts")
	}
	// Two negatives are not enough to clear.
	if !d.Detect(good)["w"] || !d.Detect(good)["w"] {
		t.Fatal("cleared before ClearAfter=3")
	}
	if d.Detect(good)["w"] {
		t.Fatal("not cleared after 3 consecutive negatives")
	}
	// An interrupted streak resets.
	d.Detect(bad)
	d.Detect(good) // breaks the flagging streak
	if d.Detect(bad)["w"] {
		t.Fatal("interrupted streak still flagged")
	}
}

func TestHysteresisDetectorValidation(t *testing.T) {
	if _, err := NewHysteresisDetector(nil, 1, 1); err == nil {
		t.Fatal("nil inner accepted")
	}
	d, err := NewHysteresisDetector(&AbsoluteDetector{Threshold: 1}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.FlagAfter != 2 || d.ClearAfter != 3 {
		t.Fatalf("defaults = %d/%d", d.FlagAfter, d.ClearAfter)
	}
}

func TestPlanRatiosProbeReservesShare(t *testing.T) {
	ratios, err := PlanRatios(PolicyBypass, []string{"w0", "w1", "w2"},
		map[string]float64{"w0": 1, "w1": 1, "w2": 10},
		map[string]bool{"w2": true}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratios[2]-0.05) > 1e-12 {
		t.Fatalf("probe share = %v want 0.05", ratios[2])
	}
	var sum float64
	for _, r := range ratios {
		sum += r
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("ratios sum to %v", sum)
	}
	if math.Abs(ratios[0]-ratios[1]) > 1e-12 {
		t.Fatalf("healthy shares unequal: %v", ratios)
	}
	// Out-of-range probe is rejected.
	if _, err := PlanRatios(PolicyBypass, []string{"a"}, map[string]float64{"a": 1}, nil, 0.5); err == nil {
		t.Fatal("probe 0.5 accepted")
	}
	if _, err := PlanRatios(PolicyBypass, []string{"a"}, map[string]float64{"a": 1}, nil, -0.1); err == nil {
		t.Fatal("negative probe accepted")
	}
}

func TestPlanRatiosUniformPolicy(t *testing.T) {
	ratios, err := PlanRatios(PolicyUniform, []string{"w0", "w1"}, map[string]float64{"w0": 1, "w1": 9}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ratios[0] != 0.5 || ratios[1] != 0.5 {
		t.Fatalf("uniform = %v", ratios)
	}
}

func TestPlanRatiosWeightedInverse(t *testing.T) {
	// w1 predicted 3× slower → gets 1/4 of the stream.
	ratios, err := PlanRatios(PolicyWeighted, []string{"w0", "w1"},
		map[string]float64{"w0": 1, "w1": 3}, map[string]bool{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratios[0]-0.75) > 1e-12 || math.Abs(ratios[1]-0.25) > 1e-12 {
		t.Fatalf("weighted = %v", ratios)
	}
}

func TestPlanRatiosBypassZeroesMisbehaving(t *testing.T) {
	ratios, err := PlanRatios(PolicyBypass, []string{"w0", "w1", "w2"},
		map[string]float64{"w0": 1, "w1": 1, "w2": 10},
		map[string]bool{"w2": true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ratios[2] != 0 {
		t.Fatalf("misbehaving worker kept share: %v", ratios)
	}
	if math.Abs(ratios[0]-0.5) > 1e-12 || math.Abs(ratios[1]-0.5) > 1e-12 {
		t.Fatalf("healthy split = %v", ratios)
	}
}

func TestPlanRatiosAllMisbehavingFallsBack(t *testing.T) {
	// If every worker is flagged, bypass must not zero the whole stream.
	ratios, err := PlanRatios(PolicyBypass, []string{"w0", "w1"},
		map[string]float64{"w0": 5, "w1": 10},
		map[string]bool{"w0": true, "w1": true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range ratios {
		sum += r
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("ratios sum to %v", sum)
	}
	if ratios[0] <= ratios[1] {
		t.Fatalf("faster worker should keep the larger share: %v", ratios)
	}
}

func TestPlanRatiosUnknownWorkerGetsMeanPrediction(t *testing.T) {
	ratios, err := PlanRatios(PolicyWeighted, []string{"w0", "ghost"},
		map[string]float64{"w0": 2}, map[string]bool{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// ghost gets the mean (2) → equal split.
	if math.Abs(ratios[0]-0.5) > 1e-12 {
		t.Fatalf("ratios = %v", ratios)
	}
}

func TestPlanRatiosDegenerateInputs(t *testing.T) {
	if _, err := PlanRatios(PolicyBypass, nil, nil, nil, 0); err == nil {
		t.Fatal("no tasks should error")
	}
	// No predictions → uniform.
	ratios, err := PlanRatios(PolicyBypass, []string{"a", "b"}, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ratios[0] != 0.5 {
		t.Fatalf("no-prediction fallback = %v", ratios)
	}
	// Zero/negative predictions → uniform.
	ratios, err = PlanRatios(PolicyWeighted, []string{"a", "b"},
		map[string]float64{"a": 0, "b": -1}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ratios[0] != 0.5 {
		t.Fatalf("non-positive prediction fallback = %v", ratios)
	}
}

func TestPlanPolicyStrings(t *testing.T) {
	if PolicyBypass.String() != "bypass" || PolicyWeighted.String() != "weighted" ||
		PolicyUniform.String() != "uniform" {
		t.Fatal("policy strings wrong")
	}
	if PlanPolicy(9).String() == "" {
		t.Fatal("unknown policy string empty")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Features == nil || !cfg.Features.Interference {
		t.Fatal("default features should include interference")
	}
	if cfg.MinHistory != 30 || cfg.HistoryLimit != 10000 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.Detector == nil {
		t.Fatal("no default detector")
	}
}

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(nil, nil, Config{}); err == nil {
		t.Fatal("nil cluster should error")
	}
}

func TestFitPredictorsRequiresFactoryAndHistory(t *testing.T) {
	cl, targets, shutdown := newControlledTopology(t, 0)
	defer shutdown()
	c, err := NewController(cl, targets, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FitPredictors(); err == nil {
		t.Fatal("fit without factory should error")
	}
	c2, err := NewController(cl, targets, Config{
		NewPredictor: func() timeseries.Predictor { return &timeseries.NaivePredictor{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.FitPredictors(); err == nil {
		t.Fatal("fit without history should error")
	}
}
