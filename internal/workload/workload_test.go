package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestURLGeneratorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewURLGenerator(rng, 0, 1.1); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := NewURLGenerator(rng, 10, 1.0); err == nil {
		t.Fatal("s=1 should error")
	}
}

func TestURLGeneratorZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := NewURLGenerator(rng, 100, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumURLs() != 100 {
		t.Fatalf("NumURLs = %d", g.NumURLs())
	}
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	// Zipf means the top URL dominates: its share must far exceed
	// uniform (1%).
	var freqs []int
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	if top := float64(freqs[0]) / n; top < 0.05 {
		t.Fatalf("top URL share %v too uniform for zipf", top)
	}
	if len(counts) < 10 {
		t.Fatalf("only %d distinct URLs drawn", len(counts))
	}
}

func TestRecordGeneratorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := NewRecordGenerator(rng, nil, 10); err == nil {
		t.Fatal("no categories should error")
	}
	if _, err := NewRecordGenerator(rng, []string{"a"}, 0); err == nil {
		t.Fatal("zero users should error")
	}
}

func TestRecordGeneratorFields(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := NewRecordGenerator(rng, []string{"sports", "news", "tech"}, 50)
	if err != nil {
		t.Fatal(err)
	}
	cats := map[string]bool{}
	for i := 0; i < 1000; i++ {
		r := g.Next()
		if r.UserID < 0 || r.UserID >= 50 {
			t.Fatalf("UserID %d out of range", r.UserID)
		}
		if r.Value < 0 || r.Value >= 100 {
			t.Fatalf("Value %v out of range", r.Value)
		}
		cats[r.Category] = true
	}
	if !cats["sports"] {
		t.Fatal("most popular category never drawn")
	}
}

func TestRecordGeneratorSingleCategory(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := NewRecordGenerator(rng, []string{"only"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Next().Category != "only" {
		t.Fatal("single category wrong")
	}
}

func TestConstantRate(t *testing.T) {
	c := ConstantRate{TPS: 50}
	if c.Rate(0) != 50 || c.Rate(time.Hour) != 50 {
		t.Fatal("constant rate varies")
	}
	if (ConstantRate{TPS: -1}).Rate(0) != 0 {
		t.Fatal("negative rate not clamped")
	}
	if c.Name() != "constant" {
		t.Fatal("name wrong")
	}
}

func TestSinusoidRate(t *testing.T) {
	s := SinusoidRate{Base: 100, Amplitude: 50, Period: 4 * time.Second}
	if got := s.Rate(0); math.Abs(got-100) > 1e-9 {
		t.Fatalf("rate(0) = %v", got)
	}
	if got := s.Rate(time.Second); math.Abs(got-150) > 1e-9 {
		t.Fatalf("rate(quarter period) = %v", got)
	}
	if got := s.Rate(3 * time.Second); math.Abs(got-50) > 1e-9 {
		t.Fatalf("rate(3/4 period) = %v", got)
	}
	// Amplitude larger than base clamps at zero.
	deep := SinusoidRate{Base: 10, Amplitude: 100, Period: 4 * time.Second}
	if got := deep.Rate(3 * time.Second); got != 0 {
		t.Fatalf("clamped rate = %v", got)
	}
	if got := (SinusoidRate{Base: 7}).Rate(time.Second); got != 7 {
		t.Fatalf("zero-period sinusoid = %v", got)
	}
}

func TestBurstRate(t *testing.T) {
	b := BurstRate{Base: 10, BurstX: 5, Period: time.Second, Duration: 200 * time.Millisecond}
	if got := b.Rate(100 * time.Millisecond); got != 50 {
		t.Fatalf("in-burst rate = %v", got)
	}
	if got := b.Rate(500 * time.Millisecond); got != 10 {
		t.Fatalf("off-burst rate = %v", got)
	}
	if got := b.Rate(1100 * time.Millisecond); got != 50 {
		t.Fatalf("second burst rate = %v", got)
	}
	if got := (BurstRate{Base: 10}).Rate(0); got != 10 {
		t.Fatalf("degenerate burst = %v", got)
	}
}

func TestRampRate(t *testing.T) {
	r := RampRate{Start: 0, End: 100, Duration: 10 * time.Second}
	if got := r.Rate(0); got != 0 {
		t.Fatalf("ramp(0) = %v", got)
	}
	if got := r.Rate(5 * time.Second); math.Abs(got-50) > 1e-9 {
		t.Fatalf("ramp(mid) = %v", got)
	}
	if got := r.Rate(20 * time.Second); got != 100 {
		t.Fatalf("ramp(after) = %v", got)
	}
	if got := (RampRate{End: 5}).Rate(0); got != 5 {
		t.Fatalf("zero-duration ramp = %v", got)
	}
}

func TestReplayRate(t *testing.T) {
	r := ReplayRate{Series: []float64{100, 200, -5}, Step: time.Second}
	if got := r.Rate(0); got != 100 {
		t.Fatalf("rate(0) = %v", got)
	}
	if got := r.Rate(1500 * time.Millisecond); got != 200 {
		t.Fatalf("rate(1.5s) = %v", got)
	}
	if got := r.Rate(2500 * time.Millisecond); got != 0 {
		t.Fatalf("negative sample not clamped: %v", got)
	}
	// Past the end holds the last (clamped) value.
	if got := r.Rate(time.Hour); got != 0 {
		t.Fatalf("rate(past end) = %v", got)
	}
	hold := ReplayRate{Series: []float64{10, 50}, Step: time.Second}
	if got := hold.Rate(time.Hour); got != 50 {
		t.Fatalf("hold = %v", got)
	}
	if got := (ReplayRate{}).Rate(0); got != 0 {
		t.Fatalf("empty replay = %v", got)
	}
	// Zero step defaults to 1s.
	d := ReplayRate{Series: []float64{1, 2}}
	if got := d.Rate(1500 * time.Millisecond); got != 2 {
		t.Fatalf("default step = %v", got)
	}
	if r.Name() != "replay" {
		t.Fatal("name wrong")
	}
}

func TestPacerTracksConstantRate(t *testing.T) {
	p := NewPacer(ConstantRate{TPS: 100})
	// Drive virtual time: 1s in 1ms steps, polling aggressively.
	base := p.start
	var fake time.Duration
	p.now = func() time.Time { return base.Add(fake) }
	allowed := 0
	for fake = 0; fake <= time.Second; fake += time.Millisecond {
		for p.Allow() {
			allowed++
		}
	}
	if allowed < 95 || allowed > 105 {
		t.Fatalf("pacer allowed %d emissions in 1s at 100 TPS", allowed)
	}
}

func TestPacerFollowsRamp(t *testing.T) {
	p := NewPacer(RampRate{Start: 0, End: 100, Duration: 2 * time.Second})
	base := p.start
	var fake time.Duration
	p.now = func() time.Time { return base.Add(fake) }
	firstHalf, secondHalf := 0, 0
	for fake = 0; fake <= 2*time.Second; fake += time.Millisecond {
		for p.Allow() {
			if fake <= time.Second {
				firstHalf++
			} else {
				secondHalf++
			}
		}
	}
	// Ramp 0→100 over 2s: first second integrates to 25, second to 75.
	if firstHalf < 20 || firstHalf > 30 {
		t.Fatalf("first half emitted %d, want ≈25", firstHalf)
	}
	if secondHalf < 68 || secondHalf > 82 {
		t.Fatalf("second half emitted %d, want ≈75", secondHalf)
	}
}
