// Package workload generates the synthetic input streams the evaluation
// applications consume: Zipf-distributed URL streams for Windowed URL
// Count, structured ad-event records for Continuous Queries, and the
// time-varying rate shapes (constant, sinusoidal, bursty, ramp) that make
// performance series worth predicting.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// URLGenerator produces URLs with Zipf-distributed popularity, the
// standard model for web-access workloads.
type URLGenerator struct {
	zipf *rand.Zipf
	n    int
}

// NewURLGenerator returns a generator over n distinct URLs with Zipf
// exponent s (> 1; typical web traces use 1.01–1.3).
func NewURLGenerator(rng *rand.Rand, n int, s float64) (*URLGenerator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need at least one URL, got %d", n)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf exponent %v must be > 1", s)
	}
	return &URLGenerator{zipf: rand.NewZipf(rng, s, 1, uint64(n-1)), n: n}, nil
}

// Next returns the next URL.
func (g *URLGenerator) Next() string {
	return fmt.Sprintf("http://site-%04d.example.com/page", g.zipf.Uint64())
}

// NumURLs returns the size of the URL universe.
func (g *URLGenerator) NumURLs() int { return g.n }

// Record is one event for the Continuous Queries application: an ad-click
// style record with a category, a user, and a numeric value, mirroring the
// "continuous queries over a stream of structured records" workload class
// the paper evaluates.
type Record struct {
	Category string
	UserID   int
	Value    float64
	At       time.Time
}

// RecordGenerator produces Records with a skewed category distribution.
type RecordGenerator struct {
	rng        *rand.Rand
	categories []string
	zipf       *rand.Zipf
	users      int
	now        func() time.Time
}

// NewRecordGenerator returns a generator over the given categories and
// user universe.
func NewRecordGenerator(rng *rand.Rand, categories []string, users int) (*RecordGenerator, error) {
	if len(categories) == 0 {
		return nil, fmt.Errorf("workload: no categories")
	}
	if users <= 0 {
		return nil, fmt.Errorf("workload: need at least one user, got %d", users)
	}
	var zipf *rand.Zipf
	if len(categories) > 1 {
		zipf = rand.NewZipf(rng, 1.2, 1, uint64(len(categories)-1))
	}
	return &RecordGenerator{
		rng:        rng,
		categories: categories,
		zipf:       zipf,
		users:      users,
		now:        time.Now,
	}, nil
}

// Next returns the next record.
func (g *RecordGenerator) Next() Record {
	idx := 0
	if g.zipf != nil {
		idx = int(g.zipf.Uint64())
	}
	return Record{
		Category: g.categories[idx],
		UserID:   g.rng.Intn(g.users),
		Value:    g.rng.Float64() * 100,
		At:       g.now(),
	}
}

// RateShape maps elapsed time to a target emission rate in tuples/second.
// Shapes modulate load so the runtime statistics form non-trivial time
// series for the predictors.
type RateShape interface {
	// Rate returns the target rate at the given elapsed time; always
	// non-negative.
	Rate(elapsed time.Duration) float64
	// Name identifies the shape.
	Name() string
}

// ConstantRate emits at a fixed rate.
type ConstantRate struct{ TPS float64 }

// Name implements RateShape.
func (c ConstantRate) Name() string { return "constant" }

// Rate implements RateShape.
func (c ConstantRate) Rate(time.Duration) float64 {
	if c.TPS < 0 {
		return 0
	}
	return c.TPS
}

// SinusoidRate oscillates around Base with the given Amplitude and Period,
// the diurnal-load stand-in.
type SinusoidRate struct {
	Base      float64
	Amplitude float64
	Period    time.Duration
}

// Name implements RateShape.
func (s SinusoidRate) Name() string { return "sinusoid" }

// Rate implements RateShape.
func (s SinusoidRate) Rate(elapsed time.Duration) float64 {
	if s.Period <= 0 {
		return math.Max(0, s.Base)
	}
	phase := 2 * math.Pi * elapsed.Seconds() / s.Period.Seconds()
	return math.Max(0, s.Base+s.Amplitude*math.Sin(phase))
}

// BurstRate is a base rate with periodic multiplicative bursts.
type BurstRate struct {
	Base     float64
	BurstX   float64       // rate multiplier during a burst
	Period   time.Duration // burst spacing
	Duration time.Duration // burst length
}

// Name implements RateShape.
func (b BurstRate) Name() string { return "burst" }

// Rate implements RateShape.
func (b BurstRate) Rate(elapsed time.Duration) float64 {
	base := math.Max(0, b.Base)
	if b.Period <= 0 || b.Duration <= 0 {
		return base
	}
	into := elapsed % b.Period
	if into < b.Duration {
		return base * math.Max(1, b.BurstX)
	}
	return base
}

// RampRate grows linearly from Start to End over Duration, then holds.
type RampRate struct {
	Start, End float64
	Duration   time.Duration
}

// Name implements RateShape.
func (r RampRate) Name() string { return "ramp" }

// Rate implements RateShape.
func (r RampRate) Rate(elapsed time.Duration) float64 {
	if r.Duration <= 0 || elapsed >= r.Duration {
		return math.Max(0, r.End)
	}
	frac := elapsed.Seconds() / r.Duration.Seconds()
	return math.Max(0, r.Start+(r.End-r.Start)*frac)
}

// ReplayRate replays a recorded rate series: Series[i] is the target rate
// during [i·Step, (i+1)·Step). Past the end it holds the last value (or 0
// for an empty series). Use it to drive spouts with rates captured from a
// production trace or generated offline.
type ReplayRate struct {
	Series []float64
	Step   time.Duration
}

// Name implements RateShape.
func (r ReplayRate) Name() string { return "replay" }

// Rate implements RateShape.
func (r ReplayRate) Rate(elapsed time.Duration) float64 {
	if len(r.Series) == 0 {
		return 0
	}
	step := r.Step
	if step <= 0 {
		step = time.Second
	}
	idx := int(elapsed / step)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.Series) {
		idx = len(r.Series) - 1
	}
	return math.Max(0, r.Series[idx])
}

// Pacer converts a RateShape into a token bucket: the spout asks Allow()
// before each emission and skips the call when the budget for the elapsed
// time is spent. The rate integral accumulates incrementally (midpoint
// rule between successive calls), so each Allow is O(1) and accurate as
// long as the spout polls more often than the shape changes.
type Pacer struct {
	shape   RateShape
	start   time.Time
	now     func() time.Time
	last    time.Duration
	budget  float64
	emitted float64
}

// NewPacer starts a pacer at the current time.
func NewPacer(shape RateShape) *Pacer {
	p := &Pacer{shape: shape, now: time.Now}
	p.start = p.now()
	return p
}

// Allow reports whether one more emission fits the cumulative rate budget.
func (p *Pacer) Allow() bool {
	elapsed := p.now().Sub(p.start)
	if elapsed > p.last {
		mid := p.last + (elapsed-p.last)/2
		p.budget += p.shape.Rate(mid) * (elapsed - p.last).Seconds()
		p.last = elapsed
	}
	if p.emitted < p.budget {
		p.emitted++
		return true
	}
	return false
}
