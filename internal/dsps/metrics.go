package dsps

import (
	"sync/atomic"
	"time"
)

// taskCounters holds the per-task atomic counters the executor updates on
// its hot path. Snapshots read them without stopping the world.
type taskCounters struct {
	executed   atomic.Int64 // tuples fully executed (bolts) or emitted batches (spouts)
	emitted    atomic.Int64 // tuples emitted downstream
	acked      atomic.Int64 // spout roots completed (spout tasks only)
	failed     atomic.Int64 // spout roots failed (spout tasks only)
	execNanos  atomic.Int64 // total execute latency incl. simulated cost
	queueNanos atomic.Int64 // total time tuples spent queued before execute
	completeNs atomic.Int64 // total complete latency of acked roots (spouts)
	dropped    atomic.Int64 // tuples dropped by fault injection
	batches    atomic.Int64 // data-plane batches sent downstream
	bpWaits    atomic.Int64 // batches that blocked at least once on backpressure
	ringParks  atomic.Int64 // times the ring-plane executor parked on its waiter

	execHist     latencyHist // per-tuple execute latency distribution
	completeHist latencyHist // complete latency distribution (spouts)
}

// TaskStats is a point-in-time snapshot of one task's counters.
type TaskStats struct {
	TaskID int
	// Topology names the owning topology (cluster-level snapshots span
	// every running topology).
	Topology  string
	Component string
	TaskIndex int
	WorkerID  string
	NodeID    string
	// IsSpout reports whether the task runs a spout (vs. a bolt).
	IsSpout bool
	// Retired reports a task drained and removed by a live scale-down; its
	// counters are frozen at their final values so snapshot totals stay
	// monotone across executor churn.
	Retired bool

	Executed int64
	Emitted  int64
	Acked    int64
	Failed   int64
	Dropped  int64
	// ExecLatency is the cumulative execute latency.
	ExecLatency time.Duration
	// QueueLatency is the cumulative time tuples waited in the input
	// queue.
	QueueLatency time.Duration
	// CompleteLatency is the cumulative spout complete latency.
	CompleteLatency time.Duration
	// QueueLen is the instantaneous input queue length.
	QueueLen int
	// Batches counts data-plane envelope batches this task sent downstream.
	Batches int64
	// BackpressureWaits counts batches that blocked at least once on a full
	// downstream queue before being delivered.
	BackpressureWaits int64
	// RingDepth is the instantaneous number of batches buffered across the
	// task's input rings (ring plane only; 0 on the channel plane).
	RingDepth int
	// RingParks counts how many times the ring-plane executor exhausted its
	// spin budget and parked on its waiter.
	RingParks int64
	// ExecHist and CompleteHist are the latency distributions in the
	// engine's log-bucket layout (see HistogramQuantile / MergeHistograms).
	ExecHist     []int64
	CompleteHist []int64
}

// ExecQuantile estimates the q-quantile of per-tuple execute latency.
func (s TaskStats) ExecQuantile(q float64) time.Duration {
	return HistogramQuantile(s.ExecHist, q)
}

// CompleteQuantile estimates the q-quantile of complete latency (spout
// tasks only).
func (s TaskStats) CompleteQuantile(q float64) time.Duration {
	return HistogramQuantile(s.CompleteHist, q)
}

// AvgExecLatency returns the mean execute latency, or 0 with no samples.
func (s TaskStats) AvgExecLatency() time.Duration {
	if s.Executed == 0 {
		return 0
	}
	return s.ExecLatency / time.Duration(s.Executed)
}

// AvgCompleteLatency returns the mean complete latency of acked roots.
func (s TaskStats) AvgCompleteLatency() time.Duration {
	if s.Acked == 0 {
		return 0
	}
	return s.CompleteLatency / time.Duration(s.Acked)
}

// WorkerStats aggregates the tasks of one worker process.
type WorkerStats struct {
	WorkerID string
	NodeID   string
	Tasks    []TaskStats

	Executed    int64
	Emitted     int64
	ExecLatency time.Duration
	QueueLen    int
	// Slowdown is the currently injected fault slowdown (1 = healthy).
	Slowdown float64
	// Misbehaving reports whether any fault is currently injected.
	Misbehaving bool
}

// AvgExecLatency returns the worker's mean execute latency.
func (s WorkerStats) AvgExecLatency() time.Duration {
	if s.Executed == 0 {
		return 0
	}
	return s.ExecLatency / time.Duration(s.Executed)
}

// NodeStats aggregates one simulated machine.
type NodeStats struct {
	NodeID  string
	Cores   int
	Workers []string

	Executed int64
	// Busy is the instantaneous number of executors mid-execute.
	Busy int
}

// ComponentStats aggregates every task of one component — live and
// retired — keyed by component name. Because scale events change which
// task indices exist, per-component aggregates are the series that stay
// comparable across an elastic run; per-task series come and go with the
// executors backing them.
type ComponentStats struct {
	// Topology names the owning topology.
	Topology string
	// Component is the aggregation key.
	Component string
	// IsSpout reports whether the component is a spout.
	IsSpout bool
	// Parallelism is the live executor count (retired tasks excluded).
	Parallelism int
	// Retired counts executors drained away by scale-downs.
	Retired int

	Executed int64
	Emitted  int64
	Acked    int64
	Failed   int64
	Dropped  int64
	// ExecLatency is the cumulative execute latency over all executors.
	ExecLatency time.Duration
	// QueueLatency is the cumulative input-queue wait over all executors.
	QueueLatency time.Duration
	// CompleteLatency is the cumulative complete latency (spouts).
	CompleteLatency time.Duration
	// QueueLen sums the instantaneous queue lengths of live executors.
	QueueLen int
	// Batches and BackpressureWaits sum the data-plane counters.
	Batches           int64
	BackpressureWaits int64
	// RingDepth sums the live executors' buffered ring batches; RingParks
	// sums their waiter parks (ring plane only).
	RingDepth int
	RingParks int64
	// ExecHist and CompleteHist are the merged latency distributions.
	ExecHist     []int64
	CompleteHist []int64
}

// ExecQuantile estimates the q-quantile of per-tuple execute latency
// across the component's executors.
func (s ComponentStats) ExecQuantile(q float64) time.Duration {
	return HistogramQuantile(s.ExecHist, q)
}

// CompleteQuantile estimates the q-quantile of complete latency (spout
// components only).
func (s ComponentStats) CompleteQuantile(q float64) time.Duration {
	return HistogramQuantile(s.CompleteHist, q)
}

// AvgExecLatency returns the component's mean execute latency.
func (s ComponentStats) AvgExecLatency() time.Duration {
	if s.Executed == 0 {
		return 0
	}
	return s.ExecLatency / time.Duration(s.Executed)
}

// BuildComponentStats folds per-task stats into per-component aggregates,
// exactly as Cluster.Snapshot does for its own tasks. It exists for
// consumers that reassemble snapshots from shipped task stats — the
// cluster wire protocol sends tasks and rebuilds the component aggregates
// on the receiving side instead of paying for them twice on the wire.
func BuildComponentStats(tasks []TaskStats) []ComponentStats {
	return buildComponentStats(tasks)
}

// buildComponentStats folds per-task stats into per-component aggregates,
// in first-appearance order (deterministic: tasks are snapshotted in
// declaration-then-spawn order per topology).
func buildComponentStats(tasks []TaskStats) []ComponentStats {
	idx := map[string]int{}
	var out []ComponentStats
	for _, ts := range tasks {
		key := ts.Topology + "\x00" + ts.Component
		i, ok := idx[key]
		if !ok {
			i = len(out)
			idx[key] = i
			out = append(out, ComponentStats{
				Topology:  ts.Topology,
				Component: ts.Component,
				IsSpout:   ts.IsSpout,
			})
		}
		cs := &out[i]
		if ts.Retired {
			cs.Retired++
		} else {
			cs.Parallelism++
			cs.QueueLen += ts.QueueLen
			cs.RingDepth += ts.RingDepth
		}
		cs.RingParks += ts.RingParks
		cs.Executed += ts.Executed
		cs.Emitted += ts.Emitted
		cs.Acked += ts.Acked
		cs.Failed += ts.Failed
		cs.Dropped += ts.Dropped
		cs.ExecLatency += ts.ExecLatency
		cs.QueueLatency += ts.QueueLatency
		cs.CompleteLatency += ts.CompleteLatency
		cs.Batches += ts.Batches
		cs.BackpressureWaits += ts.BackpressureWaits
		cs.ExecHist = MergeHistograms(cs.ExecHist, ts.ExecHist)
		cs.CompleteHist = MergeHistograms(cs.CompleteHist, ts.CompleteHist)
	}
	return out
}

// ScaleStats summarizes one topology's elastic-runtime activity.
type ScaleStats struct {
	// Topology names the owning topology.
	Topology string
	// Ups and Downs count executors added and retired by scale events.
	Ups   int64
	Downs int64
	// RouteEpoch is the current fan-out splice generation.
	RouteEpoch uint64
	// Retired is the number of retired tasks still carried in snapshots.
	Retired int
}

// AckerStats is a point-in-time view of one topology's sharded acker.
type AckerStats struct {
	// Topology names the owning topology.
	Topology string
	// InFlight is the number of tracked, incomplete spout roots.
	InFlight int
	// ShardPending holds the pending-root count of each lock shard, in
	// shard order; skew across shards indicates rootID hashing imbalance.
	ShardPending []int
}

// Snapshot is a full-cluster metrics snapshot.
type Snapshot struct {
	At      time.Time
	Tasks   []TaskStats
	Workers []WorkerStats
	Nodes   []NodeStats
	// Components aggregates Tasks per component name — the series that
	// stay comparable across scale events (see ComponentStats).
	Components []ComponentStats
	// Acker holds one entry per running topology, in submit order.
	Acker []AckerStats
	// Scale holds one elastic-runtime summary per topology, submit order.
	Scale []ScaleStats
}

// TaskByID returns the stats of one task, or a zero value and false.
func (s *Snapshot) TaskByID(id int) (TaskStats, bool) {
	for _, t := range s.Tasks {
		if t.TaskID == id {
			return t, true
		}
	}
	return TaskStats{}, false
}

// ComponentTasks returns the stats of every live task of a component,
// ordered by task index. Retired tasks are excluded: callers map these
// positionally onto grouping fan-out tables and ratio vectors, which only
// cover live executors.
func (s *Snapshot) ComponentTasks(component string) []TaskStats {
	var out []TaskStats
	for _, t := range s.Tasks {
		if t.Component == component && !t.Retired {
			out = append(out, t)
		}
	}
	return out
}

// ComponentByName returns the aggregate stats of one component, or a zero
// value and false.
func (s *Snapshot) ComponentByName(topology, component string) (ComponentStats, bool) {
	for _, cs := range s.Components {
		if cs.Topology == topology && cs.Component == component {
			return cs, true
		}
	}
	return ComponentStats{}, false
}

// WorkerByID returns the stats of one worker, or a zero value and false.
func (s *Snapshot) WorkerByID(id string) (WorkerStats, bool) {
	for _, w := range s.Workers {
		if w.WorkerID == id {
			return w, true
		}
	}
	return WorkerStats{}, false
}

// TotalExecuted sums executed tuples over all bolt tasks.
func (s *Snapshot) TotalExecuted() int64 {
	var total int64
	for _, t := range s.Tasks {
		total += t.Executed
	}
	return total
}

// TotalAcked sums completed roots over all spout tasks.
func (s *Snapshot) TotalAcked() int64 {
	var total int64
	for _, t := range s.Tasks {
		total += t.Acked
	}
	return total
}

// TotalFailed sums failed roots over all spout tasks.
func (s *Snapshot) TotalFailed() int64 {
	var total int64
	for _, t := range s.Tasks {
		total += t.Failed
	}
	return total
}

// CompleteQuantile estimates the q-quantile of complete latency across
// every spout task in the snapshot.
func (s *Snapshot) CompleteQuantile(q float64) time.Duration {
	var hists [][]int64
	for _, t := range s.Tasks {
		if len(t.CompleteHist) > 0 {
			hists = append(hists, t.CompleteHist)
		}
	}
	return HistogramQuantile(MergeHistograms(hists...), q)
}
