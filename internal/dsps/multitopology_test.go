package dsps

import (
	"testing"
	"time"
)

func simpleTopo(t *testing.T, name string, n int, spout *countingSpout, cost time.Duration) *Topology {
	t.Helper()
	b := NewTopologyBuilder(name)
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 2).
		ShuffleGrouping("src").
		WithExecCost(cost)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestTwoTopologiesRunIndependently(t *testing.T) {
	spA := &countingSpout{limit: 300}
	spB := &countingSpout{limit: 500}
	c := testCluster()
	if err := c.Submit(simpleTopo(t, "alpha", 300, spA, 0), SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(simpleTopo(t, "beta", 500, spB, 0), SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if got := c.Topologies(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Topologies = %v", got)
	}
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	if spA.acked.Load() != 300 || spB.acked.Load() != 500 {
		t.Fatalf("acks = %d/%d", spA.acked.Load(), spB.acked.Load())
	}
	snap := c.Snapshot()
	// Worker ids are cluster-global: alpha has worker-0/1, beta 2/3.
	if got := c.TopologyWorkerIDs("alpha"); len(got) != 2 || got[0] != "worker-0" {
		t.Fatalf("alpha workers = %v", got)
	}
	if got := c.TopologyWorkerIDs("beta"); len(got) != 2 || got[0] != "worker-2" {
		t.Fatalf("beta workers = %v", got)
	}
	if got := c.TopologyWorkerIDs("ghost"); got != nil {
		t.Fatalf("ghost workers = %v", got)
	}
	// Snapshot tasks carry the topology name, ids unique.
	seen := map[int]bool{}
	perTopo := map[string]int64{}
	for _, ts := range snap.Tasks {
		if seen[ts.TaskID] {
			t.Fatalf("duplicate task id %d", ts.TaskID)
		}
		seen[ts.TaskID] = true
		if ts.Component == "sink" {
			perTopo[ts.Topology] += ts.Executed
		}
	}
	if perTopo["alpha"] != 300 || perTopo["beta"] != 500 {
		t.Fatalf("per-topology executed = %v", perTopo)
	}
}

func TestDuplicateTopologyNameRejected(t *testing.T) {
	c := testCluster()
	defer c.Shutdown()
	if err := c.Submit(simpleTopo(t, "dup", 1, &countingSpout{limit: 1}, 0), SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(simpleTopo(t, "dup", 1, &countingSpout{limit: 1}, 0), SubmitConfig{}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestShutdownTopologyLeavesOthersRunning(t *testing.T) {
	spA := &countingSpout{limit: 1 << 30}
	spB := &countingSpout{limit: 1 << 30}
	c := testCluster()
	if err := c.Submit(simpleTopo(t, "stays", 0, spA, 0), SubmitConfig{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(simpleTopo(t, "goes", 0, spB, 0), SubmitConfig{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	time.Sleep(20 * time.Millisecond)
	if err := c.ShutdownTopology("goes"); err != nil {
		t.Fatal(err)
	}
	if err := c.ShutdownTopology("goes"); err == nil {
		t.Fatal("double shutdown accepted")
	}
	if got := c.Topologies(); len(got) != 1 || got[0] != "stays" {
		t.Fatalf("Topologies = %v", got)
	}
	// The survivor keeps making progress.
	before := spA.acked.Load()
	deadline := time.Now().Add(2 * time.Second)
	for spA.acked.Load() == before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if spA.acked.Load() == before {
		t.Fatal("surviving topology stalled")
	}
	// And the stopped one's workers are no longer valid fault targets.
	if err := c.InjectFault("worker-1", Fault{Slowdown: 2}); err == nil {
		t.Fatal("fault on stopped topology's worker accepted")
	}
}

func TestCrossTopologyInterferenceVisible(t *testing.T) {
	// Two topologies share one single-core node; when the second starts
	// hammering the node, the first topology's executors see inflated
	// service costs — the co-located-worker interference the paper's
	// model is built to capture, across topology boundaries.
	spA := &countingSpout{limit: 1 << 30}
	c := NewCluster(ClusterConfig{
		Nodes:        1,
		CoresPerNode: 1,
		Delayer:      RealDelayer{},
		Seed:         7,
		AckTimeout:   30 * time.Second,
		QueueSize:    32, MaxSpoutPending: 64,
	})
	if err := c.Submit(simpleTopo(t, "fg", 0, spA, 3*time.Millisecond), SubmitConfig{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	time.Sleep(300 * time.Millisecond)
	alone := c.Snapshot()

	spB := &countingSpout{limit: 1 << 30}
	if err := c.Submit(simpleTopo(t, "bg", 0, spB, 3*time.Millisecond), SubmitConfig{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	crowded := c.Snapshot()

	avgLatency := func(s *Snapshot, topo string) time.Duration {
		var lat time.Duration
		var n int64
		for _, ts := range s.Tasks {
			if ts.Topology == topo && ts.Component == "sink" {
				lat += ts.ExecLatency
				n += ts.Executed
			}
		}
		if n == 0 {
			return 0
		}
		return lat / time.Duration(n)
	}
	before := avgLatency(alone, "fg")
	// Interval average after the second topology arrived.
	var latDelta time.Duration
	var execDelta int64
	for _, ts := range crowded.Tasks {
		if ts.Topology != "fg" || ts.Component != "sink" {
			continue
		}
		prev, _ := alone.TaskByID(ts.TaskID)
		latDelta += ts.ExecLatency - prev.ExecLatency
		execDelta += ts.Executed - prev.Executed
	}
	if execDelta == 0 {
		t.Fatal("foreground made no progress while crowded")
	}
	after := latDelta / time.Duration(execDelta)
	if after <= before {
		t.Fatalf("cross-topology interference invisible: alone %v vs crowded %v", before, after)
	}
}
