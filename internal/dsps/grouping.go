package dsps

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Grouping decides which downstream task(s) of a subscription receive a
// tuple. Select is called from the emitting executor's goroutine;
// implementations must be safe for concurrent use because several upstream
// tasks share one grouping instance per subscription edge.
type Grouping interface {
	// Select returns indices in [0, numTasks) of the receiving tasks.
	Select(t *Tuple, numTasks int) []int
	// Name identifies the grouping for diagnostics.
	Name() string
}

// singleSelector is the allocation-free routing fast path: groupings that
// always pick exactly one target implement it, and the executor's router
// uses it instead of Select to avoid the per-emit []int.
type singleSelector interface {
	selectOne(t *Tuple, numTasks int) int
}

// ShuffleGrouping distributes tuples round-robin across downstream tasks,
// which is what Storm's shuffle grouping converges to and keeps unit tests
// deterministic.
type ShuffleGrouping struct {
	next atomic.Uint64
}

// Name implements Grouping.
func (g *ShuffleGrouping) Name() string { return "shuffle" }

// Select implements Grouping. It is the interface-compatibility slow
// path: the engine's router uses the allocation-free selectOne fast path
// for this grouping, so Select only runs for third-party callers.
func (g *ShuffleGrouping) Select(t *Tuple, numTasks int) []int {
	return []int{g.selectOne(t, numTasks)}
}

// selectOne is on the per-tuple data plane.
//
//dsps:hotpath
func (g *ShuffleGrouping) selectOne(_ *Tuple, numTasks int) int {
	return int((g.next.Add(1) - 1) % uint64(numTasks))
}

// FieldsGrouping routes tuples with equal values in the selected fields to
// the same downstream task (hash partitioning), as stateful bolts such as
// counters require.
type FieldsGrouping struct {
	Fields []string
}

// Name implements Grouping.
func (g *FieldsGrouping) Name() string { return "fields" }

// Select implements Grouping. Interface-compatibility slow path; the
// router uses selectOne (see ShuffleGrouping.Select).
func (g *FieldsGrouping) Select(t *Tuple, numTasks int) []int {
	return []int{g.selectOne(t, numTasks)}
}

// selectOne is on the per-tuple data plane.
//
//dsps:hotpath
func (g *FieldsGrouping) selectOne(t *Tuple, numTasks int) int {
	return int(g.key(t) % uint64(numTasks))
}

// FNV-1a, inlined so hashing common value types needs no hash.Hash64
// allocation or fmt round-trip on the emit path.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v))
		v >>= 8
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// key hashes the grouping fields of a tuple. Values are folded by dynamic
// type (strings and numbers directly, anything else through fmt); each
// field is terminated by a zero byte so adjacent fields cannot collide by
// concatenation.
//
//dsps:hotpath
func (g *FieldsGrouping) key(t *Tuple) uint64 {
	h := fnvOffset64
	for _, f := range g.Fields {
		// Lane tuples carry one unboxed payload under the first declared
		// field; hash it directly so grouping lane emits stays alloc-free.
		if t.Values == nil && t.lane != laneNone && len(t.fields) > 0 && t.fields[0] == f {
			switch t.lane {
			case laneI64:
				h = fnvUint64(h, uint64(t.i64))
			case laneF64:
				h = fnvUint64(h, math.Float64bits(t.f64))
			}
			h = fnvByte(h, 0)
			continue
		}
		v, err := t.GetValue(f)
		if err != nil {
			// A missing grouping field is a topology bug; skip it
			// deterministically rather than crash the executor.
			continue
		}
		switch x := v.(type) {
		case string:
			h = fnvString(h, x)
		case int:
			h = fnvUint64(h, uint64(int64(x)))
		case int64:
			h = fnvUint64(h, uint64(x))
		case uint64:
			h = fnvUint64(h, x)
		case float64:
			h = fnvUint64(h, math.Float64bits(x))
		case bool:
			if x {
				h = fnvByte(h, 1)
			} else {
				h = fnvByte(h, 0)
			}
		default:
			h = fnvString(h, fmt.Sprintf("%v", x))
		}
		h = fnvByte(h, 0)
	}
	return h
}

// GlobalGrouping routes every tuple to the lowest-indexed task.
type GlobalGrouping struct{}

// Name implements Grouping.
func (GlobalGrouping) Name() string { return "global" }

// Select implements Grouping. Interface-compatibility slow path; the
// router uses selectOne (see ShuffleGrouping.Select).
func (GlobalGrouping) Select(*Tuple, int) []int { return []int{0} }

// selectOne is on the per-tuple data plane.
//
//dsps:hotpath
func (GlobalGrouping) selectOne(*Tuple, int) int { return 0 }

// AllGrouping replicates every tuple to every downstream task.
type AllGrouping struct{}

// Name implements Grouping.
func (AllGrouping) Name() string { return "all" }

// Select implements Grouping.
//
//dsps:hotpath
//dsps:allocs fan-out grouping returns one fresh index slice per emit; inherently O(numTasks)
func (AllGrouping) Select(_ *Tuple, numTasks int) []int {
	out := make([]int, numTasks)
	for i := range out {
		out[i] = i
	}
	return out
}

// DynamicGrouping is the paper's contribution: it distributes tuples
// across downstream tasks according to an arbitrary split ratio that can
// be changed on the fly, so the controller can steer traffic away from
// misbehaving workers without restarting the topology.
//
// Tuples are assigned by smooth weighted round-robin rather than random
// sampling, so the observed distribution tracks the requested ratio
// exactly over any window of ~numTasks tuples — the property experiment E5
// validates.
type DynamicGrouping struct {
	mu       sync.Mutex
	ratios   []float64 // normalized; nil until first SetRatios or Select
	current  []float64 // smooth-WRR running credit
	updates  int
	onChange func(ratios []float64)
}

// Name implements Grouping.
func (g *DynamicGrouping) Name() string { return "dynamic" }

// SetRatios atomically replaces the split ratios. The slice must have one
// non-negative entry per downstream task with a positive sum; it is
// normalized internally. Task i receives fraction ratios[i]/sum of the
// stream; a zero entry bypasses that task entirely.
func (g *DynamicGrouping) SetRatios(ratios []float64) error {
	if len(ratios) == 0 {
		return fmt.Errorf("dsps: empty ratio vector")
	}
	var sum float64
	for i, r := range ratios {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("dsps: ratio[%d]=%v is invalid", i, r)
		}
		sum += r
	}
	if sum <= 0 || math.IsInf(sum, 0) {
		// An overflowed (+Inf) sum would normalize every entry to 0 and
		// silently route the whole stream to task 0.
		return fmt.Errorf("dsps: ratios sum to %v, need finite > 0", sum)
	}
	norm := make([]float64, len(ratios))
	for i, r := range ratios {
		norm[i] = r / sum
	}
	g.mu.Lock()
	g.ratios = norm
	g.current = make([]float64, len(norm))
	g.updates++
	fn := g.onChange
	g.mu.Unlock()
	if fn != nil {
		cp := make([]float64, len(norm))
		copy(cp, norm)
		fn(cp)
	}
	return nil
}

// SetOnChange registers a callback invoked after every successful
// SetRatios with a copy of the new normalized ratios. The callback runs
// on the SetRatios caller's goroutine with the grouping's lock released,
// so it may itself inspect the grouping but must not call SetRatios
// re-entrantly without accepting recursion. Pass nil to unregister.
// Observability layers use it to log ratio changes without polling.
func (g *DynamicGrouping) SetOnChange(fn func(ratios []float64)) {
	g.mu.Lock()
	g.onChange = fn
	g.mu.Unlock()
}

// Ratios returns the current normalized split ratios (nil if unset).
func (g *DynamicGrouping) Ratios() []float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ratios == nil {
		return nil
	}
	out := make([]float64, len(g.ratios))
	copy(out, g.ratios)
	return out
}

// Updates returns how many times SetRatios has been applied.
func (g *DynamicGrouping) Updates() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.updates
}

// Select implements Grouping via smooth weighted round-robin: each task
// accumulates credit equal to its ratio per tuple; the task with the most
// credit wins and pays back 1.
//
// Interface-compatibility slow path; the router uses selectOne (see
// ShuffleGrouping.Select).
func (g *DynamicGrouping) Select(t *Tuple, numTasks int) []int {
	return []int{g.selectOne(t, numTasks)}
}

// selectOne is on the per-tuple data plane.
//
//dsps:hotpath
func (g *DynamicGrouping) selectOne(_ *Tuple, numTasks int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.ratios) != numTasks {
		// Unset or re-parallelized: fall back to a uniform split.
		uniform := make([]float64, numTasks) //dspslint:ignore allocfree re-parallelization fallback; runs once per scale event, not per tuple
		for i := range uniform {
			uniform[i] = 1 / float64(numTasks)
		}
		g.ratios = uniform
		g.current = make([]float64, numTasks) //dspslint:ignore allocfree re-parallelization fallback; runs once per scale event, not per tuple
	}
	best := -1
	for i := range g.current {
		g.current[i] += g.ratios[i]
		if g.ratios[i] <= 0 {
			continue
		}
		if best < 0 || g.current[i] > g.current[best] {
			best = i
		}
	}
	if best < 0 {
		best = 0
	}
	g.current[best]--
	return best
}
