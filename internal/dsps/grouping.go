package dsps

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
)

// Grouping decides which downstream task(s) of a subscription receive a
// tuple. Select is called from the emitting executor's goroutine;
// implementations must be safe for concurrent use because several upstream
// tasks share one grouping instance per subscription edge.
type Grouping interface {
	// Select returns indices in [0, numTasks) of the receiving tasks.
	Select(t *Tuple, numTasks int) []int
	// Name identifies the grouping for diagnostics.
	Name() string
}

// ShuffleGrouping distributes tuples round-robin across downstream tasks,
// which is what Storm's shuffle grouping converges to and keeps unit tests
// deterministic.
type ShuffleGrouping struct {
	mu   sync.Mutex
	next int
}

// Name implements Grouping.
func (g *ShuffleGrouping) Name() string { return "shuffle" }

// Select implements Grouping.
func (g *ShuffleGrouping) Select(_ *Tuple, numTasks int) []int {
	g.mu.Lock()
	idx := g.next % numTasks
	g.next++
	g.mu.Unlock()
	return []int{idx}
}

// FieldsGrouping routes tuples with equal values in the selected fields to
// the same downstream task (hash partitioning), as stateful bolts such as
// counters require.
type FieldsGrouping struct {
	Fields []string
}

// Name implements Grouping.
func (g *FieldsGrouping) Name() string { return "fields" }

// Select implements Grouping.
func (g *FieldsGrouping) Select(t *Tuple, numTasks int) []int {
	h := fnv.New64a()
	for _, f := range g.Fields {
		v, err := t.GetValue(f)
		if err != nil {
			// A missing grouping field is a topology bug; route to task 0
			// deterministically rather than crash the executor.
			continue
		}
		fmt.Fprintf(h, "%v\x00", v)
	}
	return []int{int(h.Sum64() % uint64(numTasks))}
}

// GlobalGrouping routes every tuple to the lowest-indexed task.
type GlobalGrouping struct{}

// Name implements Grouping.
func (GlobalGrouping) Name() string { return "global" }

// Select implements Grouping.
func (GlobalGrouping) Select(*Tuple, int) []int { return []int{0} }

// AllGrouping replicates every tuple to every downstream task.
type AllGrouping struct{}

// Name implements Grouping.
func (AllGrouping) Name() string { return "all" }

// Select implements Grouping.
func (AllGrouping) Select(_ *Tuple, numTasks int) []int {
	out := make([]int, numTasks)
	for i := range out {
		out[i] = i
	}
	return out
}

// DynamicGrouping is the paper's contribution: it distributes tuples
// across downstream tasks according to an arbitrary split ratio that can
// be changed on the fly, so the controller can steer traffic away from
// misbehaving workers without restarting the topology.
//
// Tuples are assigned by smooth weighted round-robin rather than random
// sampling, so the observed distribution tracks the requested ratio
// exactly over any window of ~numTasks tuples — the property experiment E5
// validates.
type DynamicGrouping struct {
	mu      sync.Mutex
	ratios  []float64 // normalized; nil until first SetRatios or Select
	current []float64 // smooth-WRR running credit
	updates int
}

// Name implements Grouping.
func (g *DynamicGrouping) Name() string { return "dynamic" }

// SetRatios atomically replaces the split ratios. The slice must have one
// non-negative entry per downstream task with a positive sum; it is
// normalized internally. Task i receives fraction ratios[i]/sum of the
// stream; a zero entry bypasses that task entirely.
func (g *DynamicGrouping) SetRatios(ratios []float64) error {
	if len(ratios) == 0 {
		return fmt.Errorf("dsps: empty ratio vector")
	}
	var sum float64
	for i, r := range ratios {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("dsps: ratio[%d]=%v is invalid", i, r)
		}
		sum += r
	}
	if sum <= 0 || math.IsInf(sum, 0) {
		// An overflowed (+Inf) sum would normalize every entry to 0 and
		// silently route the whole stream to task 0.
		return fmt.Errorf("dsps: ratios sum to %v, need finite > 0", sum)
	}
	norm := make([]float64, len(ratios))
	for i, r := range ratios {
		norm[i] = r / sum
	}
	g.mu.Lock()
	g.ratios = norm
	g.current = make([]float64, len(norm))
	g.updates++
	g.mu.Unlock()
	return nil
}

// Ratios returns the current normalized split ratios (nil if unset).
func (g *DynamicGrouping) Ratios() []float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ratios == nil {
		return nil
	}
	out := make([]float64, len(g.ratios))
	copy(out, g.ratios)
	return out
}

// Updates returns how many times SetRatios has been applied.
func (g *DynamicGrouping) Updates() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.updates
}

// Select implements Grouping via smooth weighted round-robin: each task
// accumulates credit equal to its ratio per tuple; the task with the most
// credit wins and pays back 1.
func (g *DynamicGrouping) Select(_ *Tuple, numTasks int) []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.ratios) != numTasks {
		// Unset or re-parallelized: fall back to a uniform split.
		uniform := make([]float64, numTasks)
		for i := range uniform {
			uniform[i] = 1 / float64(numTasks)
		}
		g.ratios = uniform
		g.current = make([]float64, numTasks)
	}
	best := -1
	for i := range g.current {
		g.current[i] += g.ratios[i]
		if g.ratios[i] <= 0 {
			continue
		}
		if best < 0 || g.current[i] > g.current[best] {
			best = i
		}
	}
	if best < 0 {
		best = 0
	}
	g.current[best]--
	return []int{best}
}
