package dsps

import (
	"runtime"
	"sync"
	"sync/atomic"

	"predstream/internal/ring"
)

// Single-writer acker shard ownership (ring plane): instead of every
// executor locking a pending-table stripe per anchored tuple, each
// stripe gets an owner goroutine and executors hand it ackOps through
// per-(producer, shard) SPSC rings. Ops are staged in producer-local
// slices and pushed a slice at a time, so the ring's seq-cst publish cost
// and the owner wakeup amortize over ackStageMax ops; the owner applies a
// whole slice under one (uncontended) lock acquisition, so the
// common-path lock traffic collapses to ~1/slice. The stripe mutex
// survives only for cold-path readers (timeout sweep, inFlight, metrics).
//
// Ops from different producers reach the owner in arbitrary relative
// order, but XOR commutes — acker.applyLocked parks early arrivals in
// placeholder entries until the root's register lands, so reordering
// never changes the completion value.

// ackRingCap is the capacity (in op slices) of each producer→owner ring.
// Producers that outrun a backlogged owner yield until a slot frees.
const ackRingCap = 256

// ackStageMax is how many ops a producer stages per shard before pushing
// the slice to the shard owner — the batch size of the ack plane.
const ackStageMax = 64

type ackOpKind uint8

const (
	// ackOpRegister starts tracking a root: val is the XOR of the spout's
	// initial output edge ids.
	ackOpRegister ackOpKind = iota
	// ackOpXor folds a bolt transition into the root: val is the consumed
	// edge id XORed with every produced edge id.
	ackOpXor
	// ackOpFail fails the root immediately.
	ackOpFail
)

// ackOp is one staged mutation of the XOR ack tree.
type ackOp struct {
	kind     ackOpKind
	rootID   uint64
	val      uint64
	msgU64   uint64
	msgID    any
	spoutTID int
	startNs  int64
}

// ackOwners is the ring-plane acker front end: one owner per shard.
type ackOwners struct {
	owners []ackOwner
	// opsPending counts ops staged (producer-local or in owner rings) or
	// applied but not yet delivered to their spout; quiescence requires
	// zero, which closes the window where a completion is in flight
	// between an executor and its shard owner.
	opsPending atomic.Int64
	// pool recycles op slices between producers (fill) and owners (drain);
	// sync.Pool keeps the exchange per-P and allocation-free in steady
	// state.
	pool sync.Pool
}

// ackOwner is one shard's inbox: a copy-on-write list of producer rings
// plus the waiter its owner goroutine parks on.
type ackOwner struct {
	mu    sync.Mutex // guards rings list mutation (attach, prune)
	rings atomic.Pointer[[]*ring.SPSC[*[]ackOp]]
	wait  *ring.Waiter
}

func newAckOwners(shards int) *ackOwners {
	ao := &ackOwners{owners: make([]ackOwner, shards)}
	ao.pool.New = func() any {
		s := make([]ackOp, 0, ackStageMax)
		return &s
	}
	for i := range ao.owners {
		empty := make([]*ring.SPSC[*[]ackOp], 0)
		ao.owners[i].rings.Store(&empty)
		ao.owners[i].wait = ring.NewWaiter()
	}
	return ao
}

// attach registers a new producer ring with shard s's owner. It runs
// once per (task, shard) pairing — the first flush to a shard — never
// per op, so its allocations are off the steady-state path.
//
//dsps:coldpath
func (ao *ackOwners) attach(s int) *ring.SPSC[*[]ackOp] {
	r, _ := ring.New[*[]ackOp](ackRingCap)
	o := &ao.owners[s]
	o.mu.Lock()
	old := *o.rings.Load()
	list := make([]*ring.SPSC[*[]ackOp], len(old)+1)
	copy(list, old)
	list[len(old)] = r
	o.rings.Store(&list)
	o.mu.Unlock()
	return r
}

// empty re-checks every inbox ring against a fresh list snapshot; must
// run after Waiter.Prepare (see inRingsEmpty for the ordering argument).
func (o *ackOwner) empty() bool {
	for _, r := range *o.rings.Load() {
		if !r.Empty() {
			return false
		}
	}
	return true
}

// prune drops closed, fully drained producer rings (their task was
// scaled down). Owner goroutine only, cold path.
func (o *ackOwner) prune() {
	stale := 0
	for _, r := range *o.rings.Load() {
		if r.Closed() && r.Empty() {
			stale++
		}
	}
	if stale == 0 {
		return
	}
	o.mu.Lock()
	cur := *o.rings.Load()
	list := make([]*ring.SPSC[*[]ackOp], 0, len(cur))
	for _, r := range cur {
		if !(r.Closed() && r.Empty()) {
			list = append(list, r)
		}
	}
	o.rings.Store(&list)
	o.mu.Unlock()
}

// stageAckOp appends one op to the task's stage slice for the owning
// shard, pushing the slice to the shard owner when it fills. Executor
// goroutine only (tk.ackStage/ackRings are executor-local state); partial
// slices are pushed by flushAckStage, which flushOut invokes on every
// flush point (batch deadline, idle, backpressure block, drain).
//
//dsps:hotpath
func (rt *runningTopology) stageAckOp(tk *task, op ackOp) {
	ao := rt.ackOwners
	s := rt.acker.shardIndex(op.rootID)
	if tk.ackStage == nil {
		tk.ackStage = make([]*[]ackOp, len(rt.acker.shards)) //dspslint:ignore allocfree one-time lazy init per task, not per op
	}
	st := tk.ackStage[s]
	if st == nil {
		st = ao.pool.Get().(*[]ackOp)
		tk.ackStage[s] = st
	}
	*st = append(*st, op) //dspslint:ignore allocfree pooled slice retains ackStageMax capacity across reuse; append only grows on first fill
	ao.opsPending.Add(1)
	if len(*st) >= ackStageMax {
		rt.flushAckShard(tk, s)
	}
}

// flushAckShard pushes the task's staged op slice for shard s to that
// shard's owner. The producer yields (never raw-spins: single-P runtimes
// starve otherwise) while the owner's ring is full, bailing on shutdown
// so a canceled topology cannot wedge a producer.
//
//dsps:ringproducer
func (rt *runningTopology) flushAckShard(tk *task, s int) {
	st := tk.ackStage[s]
	if st == nil || len(*st) == 0 {
		return
	}
	tk.ackStage[s] = nil
	if tk.ackRings == nil {
		tk.ackRings = make([]*ring.SPSC[*[]ackOp], len(rt.acker.shards)) //dspslint:ignore allocfree one-time lazy init per task, not per op
	}
	r := tk.ackRings[s]
	if r == nil {
		r = rt.ackOwners.attach(s)
		tk.ackRings[s] = r
	}
	ao := rt.ackOwners
	for !r.Push(st) {
		if rt.ctx.Err() != nil {
			ao.opsPending.Add(int64(-len(*st)))
			*st = (*st)[:0]
			ao.pool.Put(st)
			return
		}
		runtime.Gosched()
		ao.owners[s].wait.Wake()
	}
	ao.owners[s].wait.Wake()
}

// flushAckStage pushes every non-empty staged op slice. Called from
// flushOut so every existing flush point (deadline, idle, backpressure
// block, stop-drain) also drains the ack plane — quiescence depends on
// it: opsPending counts staged ops from the moment they are staged.
func (rt *runningTopology) flushAckStage(tk *task) {
	if tk.ackStage == nil {
		return
	}
	for s := range tk.ackStage {
		if st := tk.ackStage[s]; st != nil && len(*st) > 0 {
			rt.flushAckShard(tk, s)
		}
	}
}

// dropAckStage discards the task's staged, unpushed ops — retirement path
// for executors that exited without a final flush. Their roots complete
// through the ack-timeout sweep, like force-drained tuples.
func (rt *runningTopology) dropAckStage(tk *task) {
	if tk.ackStage == nil {
		return
	}
	ao := rt.ackOwners
	for s, st := range tk.ackStage {
		if st == nil {
			continue
		}
		if n := len(*st); n > 0 {
			ao.opsPending.Add(int64(-n))
		}
		*st = (*st)[:0]
		ao.pool.Put(st)
		tk.ackStage[s] = nil
	}
}

// ackRegister starts tracking a root on whichever acker plane is active.
//
//dsps:hotpath
func (rt *runningTopology) ackRegister(tk *task, rootID, xor uint64, msgID any, msgU64 uint64) {
	if rt.ackOwners != nil {
		rt.stageAckOp(tk, ackOp{
			kind:     ackOpRegister,
			rootID:   rootID,
			val:      xor,
			msgU64:   msgU64,
			msgID:    msgID,
			spoutTID: tk.id,
			startNs:  rt.clock.nowNs(),
		})
		return
	}
	rt.acker.register(rootID, xor, msgID, msgU64, tk.id)
}

// ackTransition folds a bolt transition into the root's XOR value. On
// the channel plane a completion comes back synchronously and is staged
// on the collector; on the ring plane the shard owner detects completion
// and delivers it directly.
//
//dsps:hotpath
func (rt *runningTopology) ackTransition(tk *task, collector *boltCollector, rootID, consumedEdge uint64, produced []uint64) {
	if rt.ackOwners != nil {
		v := consumedEdge
		for _, p := range produced {
			v ^= p
		}
		// startNs only ages a placeholder created by op reordering; the
		// coarse clock is plenty for the sweep's orphan cutoff.
		rt.stageAckOp(tk, ackOp{kind: ackOpXor, rootID: rootID, val: v, startNs: rt.clock.nowNs()})
		return
	}
	if r, ok := rt.acker.transition(rootID, consumedEdge, produced); ok {
		collector.addAck(r)
	}
}

// ackFail fails a root immediately on whichever acker plane is active.
//
//dsps:hotpath
func (rt *runningTopology) ackFail(tk *task, collector *boltCollector, rootID uint64) {
	if rt.ackOwners != nil {
		rt.stageAckOp(tk, ackOp{kind: ackOpFail, rootID: rootID, startNs: rt.clock.nowNs()})
		return
	}
	if r, ok := rt.acker.fail(rootID); ok {
		collector.addAck(r)
	}
}

// runAckOwner is shard s's owner goroutine: it drains every producer
// ring, applies each popped op slice under a single shard-lock
// acquisition, recycles the slice, and delivers the resulting
// completions to their spouts.
//
//dsps:ringconsumer
func (rt *runningTopology) runAckOwner(s int) {
	defer rt.wg.Done()
	ao := rt.ackOwners
	o := &ao.owners[s]
	shard := &rt.acker.shards[s]
	buf := make([]*[]ackOp, 16)
	var staged []ackBatch
	for {
		drained := 0
		rings := *o.rings.Load()
		for _, r := range rings {
			for {
				n := r.PopBatch(buf)
				if n == 0 {
					break
				}
				for i := 0; i < n; i++ {
					ops := *buf[i]
					shard.mu.Lock()
					for j := range ops {
						if res, ok := rt.acker.applyLocked(shard, ops[j]); ok {
							staged = rt.stageAckResult(staged, res)
						}
					}
					shard.mu.Unlock()
					drained += len(ops)
					*buf[i] = ops[:0]
					ao.pool.Put(buf[i])
					buf[i] = nil
				}
				if n < len(buf) {
					break
				}
			}
		}
		if drained > 0 {
			// Deliver before decrementing opsPending: quiescent() must not
			// observe zero while a completion is still owner-local.
			for i := range staged {
				if len(staged[i].results) > 0 {
					rt.sendAcks(staged[i].spout, staged[i].results)
					staged[i].results = nil
				}
			}
			staged = staged[:0]
			ao.opsPending.Add(int64(-drained))
			continue
		}
		// Idle: prune retired producers, then park until the next flush.
		o.prune()
		o.wait.Prepare()
		if !o.empty() {
			o.wait.Cancel()
			continue
		}
		select {
		case <-rt.ctx.Done():
			o.wait.Cancel()
			return
		case <-o.wait.C():
		}
	}
}

// stageAckResult groups a completion into the per-spout staging batches.
func (rt *runningTopology) stageAckResult(staged []ackBatch, r ackResult) []ackBatch {
	for i := range staged {
		if staged[i].spout.id == r.spoutTID {
			staged[i].results = append(staged[i].results, r)
			return staged
		}
	}
	sp := rt.taskOf(r.spoutTID)
	if sp == nil {
		// Spout retired; its roots fail through the sweep of whatever is
		// left, and this completion has nowhere to go.
		return staged
	}
	rs := append(rt.fl.getAcks(rt.effBatch), r)
	return append(staged, ackBatch{spout: sp, results: rs})
}
