package dsps

import (
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of the latency histograms: bucket 0
// covers [0, 64ns) and bucket i ≥ 1 covers [64ns·2^(i−1), 64ns·2^i),
// spanning up to ~8.6 s with the last bucket absorbing overflow —
// log-spaced so percentile error is bounded at a factor of 2 across six
// decades with 28 counters per histogram.
const histBuckets = 28

// histBase is the lower bound of bucket 0.
const histBase = 64 * time.Nanosecond

// latencyHist is a lock-free fixed-bucket latency histogram.
type latencyHist struct {
	buckets [histBuckets]atomic.Int64
}

// observe records one latency sample.
//
//dsps:hotpath
func (h *latencyHist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := 0
	for v := d / histBase; v > 0 && idx < histBuckets-1; v >>= 1 {
		idx++
	}
	h.buckets[idx].Add(1)
}

// snapshot copies the current counts.
func (h *latencyHist) snapshot() []int64 {
	out := make([]int64, histBuckets)
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// HistogramQuantile estimates the q-quantile (0 < q ≤ 1) from histogram
// counts produced by the engine's latency histograms, interpolating
// linearly within the winning bucket. It returns 0 for empty histograms
// and is exported so callers can merge task histograms before computing
// cluster-level percentiles.
func HistogramQuantile(counts []int64, q float64) time.Duration {
	if q <= 0 || q > 1 {
		return 0
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	// Guard against float rounding pushing the rank past the population:
	// q = 1 must select the last occupied bucket, not the overflow bound.
	if rank > total {
		rank = total
	}
	var seen int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo, hi := bucketBounds(i)
			frac := float64(rank-seen) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		seen += c
	}
	_, hi := bucketBounds(len(counts) - 1)
	return hi
}

// HistogramBucketBounds returns the finite upper bounds of the engine's
// latency-histogram buckets: entry i is the exclusive upper bound of
// bucket i for i in [0, histBuckets-2]. The final bucket absorbs overflow
// and has no finite bound (+Inf in Prometheus terms), so the returned
// slice has one fewer entry than the histograms have buckets.
func HistogramBucketBounds() []time.Duration {
	out := make([]time.Duration, histBuckets-1)
	for i := range out {
		_, hi := bucketBounds(i)
		out[i] = hi
	}
	return out
}

// bucketBounds returns the [lo, hi) range of bucket i, matching observe's
// indexing.
func bucketBounds(i int) (lo, hi time.Duration) {
	if i == 0 {
		return 0, histBase
	}
	lo = histBase << uint(i-1)
	return lo, lo * 2
}

// MergeHistograms sums histogram count slices element-wise; inputs must
// share the engine's bucket layout.
func MergeHistograms(hs ...[]int64) []int64 {
	out := make([]int64, histBuckets)
	for _, h := range hs {
		for i := 0; i < len(h) && i < histBuckets; i++ {
			out[i] += h[i]
		}
	}
	return out
}
