package dsps

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"predstream/internal/ring"
)

// edge is one subscription: tuples from source fan out via grouping to the
// ordered target tasks. The target list is a copy-on-write snapshot so a
// scale event can splice in (or out) executors while producers keep
// routing: readers load the pointer once and see a consistent, index-
// sorted list; splicers publish a fresh list under the topology's splice
// lock and bump the route epoch (see runningTopology.splice).
type edge struct {
	grouping   Grouping
	single     singleSelector // non-nil fast path when grouping picks one target
	source     string         // producing component
	targetComp string         // consuming component
	targets    atomic.Pointer[[]*task]
}

// outBuf accumulates tuples bound for one (edge, target) pair until a
// size- or deadline-triggered flush hands the whole batch to the target's
// input queue (channel or ring). Owned by the emitting executor
// goroutine.
type outBuf struct {
	target *task
	edge   *edge
	envs   envBatch
}

// task is one executor: a single goroutine running one spout or bolt
// instance.
type task struct {
	id           int
	component    string
	index        int
	numTasks     int
	worker       *workerProc
	execCost     time.Duration
	tickInterval time.Duration

	spout Spout
	bolt  Bolt

	inCh  chan envBatch    // bolts only; nil on the ring plane
	ackCh chan []ackResult // spouts only
	space chan struct{}    // bolts only: capacity-freed wakeup signal
	stop  chan struct{}    // closed by ScaleDown to drain this executor
	done  chan struct{}    // closed when the executor goroutine exits
	rng   *rand.Rand       // fault-probability draws; executor-goroutine-local

	// Ring-plane input (RingSize > 0; bolts only). inRings is the
	// copy-on-write list of per-producer SPSC rings this executor drains;
	// ringMu orders list splices (producers attach, the consumer prunes).
	// ringWait parks the executor when every ring is empty; producers Wake
	// it after a push.
	ringMu   sync.Mutex
	inRings  atomic.Pointer[[]*ring.SPSC[envBatch]]
	ringWait *ring.Waiter

	// dead marks a retired task. Set under the topology splice lock, read
	// by producers under its read lock, so a parked send observing
	// dead=false is ordered before the retirer's queue reclamation.
	dead atomic.Bool
	// inbound counts batches currently inside sendBatch targeting this
	// task (delivered, parked, or re-routing). ScaleDown's flush phase
	// waits for it to reach zero before stopping the executor.
	inbound atomic.Int64
	// routeGen is the route epoch this task's cached emit state (outs,
	// edgeBase, edgeTargets) was built against. Written by the executor
	// goroutine, read by splicers awaiting convergence.
	routeGen atomic.Uint64

	// queued counts tuples reserved against this task's QueueSize bound:
	// producers CAS-reserve before sending a batch (reserve) and the
	// consumer releases at receive, so it is exact — never negative,
	// never above QueueSize — even though batches vary in size.
	queued atomic.Int64
	// outPending counts envelopes sitting in this task's out-buffers,
	// emitted but not yet flushed downstream; quiescence requires zero.
	outPending atomic.Int64

	counters taskCounters
	pending  int // spout: un-acked roots; executor-goroutine-local

	// Emit-path state, owned by the executor goroutine.
	edgeState   uint64 // splitmix64 state for edge-id draws
	arena       tupleArena
	outEdges    []*edge
	outFields   []string
	edgeBase    []int     // outs offset of each outEdges entry
	edgeTargets [][]*task // cached target snapshot of each outEdges entry
	outs        []outBuf  // flat per-(edge,target) buffers, edge-major
	selScratch  []int     // routing selections (outs indices), reused
	idScratch   []uint64  // spout edge-id staging, reused
	firstBufNs  int64     // coarse stamp of oldest unflushed tuple, 0 if none

	// Ring-plane producer state, owned by the executor goroutine: the
	// SPSC rings this task pushes through, one per downstream target and
	// one per acker shard it has staged ops for.
	outRings map[*task]*ring.SPSC[envBatch]
	ackRings []*ring.SPSC[*[]ackOp]
	// ackStage holds the per-shard op slices being filled before their
	// next push (see stageAckOp/flushAckStage).
	ackStage []*[]ackOp
	// ackerU64 is the spout's AckerU64 implementation, or nil; cached so
	// the typed-lane completion path is one nil check, not a per-ack
	// type assertion.
	ackerU64 AckerU64
}

// runningTopology is the live runtime of a submitted topology.
type runningTopology struct {
	cluster *Cluster
	topo    *Topology
	cfg     ClusterConfig

	workers []*workerProc
	// tasksMu guards tasks, retired, nextIndex and placed against live
	// scale events; taskByID is copy-on-write so hot-path ack lookups
	// stay lock-free.
	tasksMu  sync.RWMutex
	tasks    []*task
	retired  []TaskStats // frozen stats of drained (scaled-down) tasks
	taskByID atomic.Pointer[map[int]*task]
	edges    map[string][]*edge // source component -> downstream edges
	allEdges []*edge            // every edge, declaration order
	acker    *acker

	// Elastic-runtime state. spliceMu orders fan-out table splices against
	// producer sends: a send holds the read lock only across its
	// (non-blocking) reserve+hand-off, a splice holds the write lock while
	// publishing new target lists. routeEpoch/spliceWake let executors
	// rebuild their cached routes lazily; scaleMu serializes scale
	// operations on this topology.
	spliceMu   sync.RWMutex
	routeEpoch atomic.Uint64
	spliceWake atomic.Pointer[chan struct{}]
	scaleMu    sync.Mutex
	nextIndex  map[string]int // per-component next task index (monotone)
	placed     int            // round-robin placement cursor for spawns
	scaleUps   atomic.Int64
	scaleDowns atomic.Int64

	clock    coarseClock
	fl       *freeLists
	trace    *Trace // sampled-tuple trace ring; nil = tracing disabled
	effBatch int    // tuples per batch, min(BatchSize, QueueSize)
	flushNs  int64  // FlushInterval in nanoseconds

	// Ring-plane configuration (data plane v2). ringMode is RingSize > 0;
	// ringCap is the per-producer ring capacity in batch slots, clamped to
	// at least QueueSize so a reserved push can never find the ring full
	// (outstanding batches ≤ reserved tuples ≤ QueueSize). ackOwners is
	// non-nil exactly in ring mode.
	ringMode  bool
	ringCap   int
	waitStrat ring.WaitStrategy
	ackOwners *ackOwners

	ctx          context.Context
	cancel       context.CancelFunc
	wg           sync.WaitGroup
	spoutsPaused atomic.Bool
}

// buildRuntime schedules the topology: workers round-robin over nodes,
// executors round-robin over workers (spouts first, declaration order),
// mirroring Storm's even scheduler.
func (c *Cluster) buildRuntime(t *Topology, sc SubmitConfig) (*runningTopology, error) {
	rt := &runningTopology{
		cluster:   c,
		topo:      t,
		cfg:       c.cfg,
		edges:     make(map[string][]*edge),
		nextIndex: make(map[string]int),
		fl:        newFreeLists(),
		trace:     c.trace,
	}
	rt.taskByID.Store(&map[int]*task{})
	wake := make(chan struct{})
	rt.spliceWake.Store(&wake)
	rt.effBatch = c.cfg.BatchSize
	if rt.effBatch > c.cfg.QueueSize {
		rt.effBatch = c.cfg.QueueSize
	}
	if rt.effBatch < 1 {
		rt.effBatch = 1
	}
	rt.flushNs = int64(c.cfg.FlushInterval)
	rt.ringMode = c.cfg.RingSize > 0
	if rt.ringMode {
		rt.ringCap = c.cfg.RingSize
		if rt.ringCap < c.cfg.QueueSize {
			rt.ringCap = c.cfg.QueueSize
		}
	}
	ws, err := ring.ParseWaitStrategy(c.cfg.WaitStrategy)
	if err != nil {
		return nil, fmt.Errorf("dsps: %w", err)
	}
	rt.waitStrat = ws
	rt.clock.ns.Store(time.Now().UnixNano())
	rt.ctx, rt.cancel = context.WithCancel(context.Background())
	// Worker and task ids are cluster-global so concurrently running
	// topologies never collide in the fault registry or snapshots.
	for i := 0; i < sc.Workers; i++ {
		n := c.nodes[c.nextWorker%len(c.nodes)]
		w := &workerProc{id: fmt.Sprintf("worker-%d", c.nextWorker), node: n}
		c.nextWorker++
		rt.workers = append(rt.workers, w)
	}
	totalTasks := 0
	for _, sd := range t.spouts {
		totalTasks += sd.parallelism
	}
	for _, bd := range t.bolts {
		totalTasks += bd.parallelism
	}
	placed := 0
	blockSize := (totalTasks + len(rt.workers) - 1) / len(rt.workers)
	place := func() *workerProc {
		var idx int
		if sc.Strategy == PlaceBlocked {
			idx = placed / blockSize
		} else {
			idx = placed % len(rt.workers)
		}
		placed++
		return rt.workers[idx%len(rt.workers)]
	}
	// Seed per-task randomness off the cluster-global task counter so
	// concurrently running topologies draw distinct edge-id streams.
	taskSeed := c.cfg.Seed + int64(c.nextTask)
	for _, sd := range t.spouts {
		for i := 0; i < sd.parallelism; i++ {
			taskSeed++
			tk := &task{
				id:        c.nextTask,
				component: sd.name,
				index:     i,
				numTasks:  sd.parallelism,
				worker:    place(),
				execCost:  sd.execCost,
				spout:     sd.factory(),
				ackCh:     make(chan []ackResult, c.cfg.MaxSpoutPending),
				stop:      make(chan struct{}),
				done:      make(chan struct{}),
				rng:       rand.New(rand.NewSource(taskSeed)),
				edgeState: uint64(taskSeed),
			}
			if tk.spout == nil {
				rt.cancel()
				return nil, fmt.Errorf("dsps: spout factory for %q returned nil", sd.name)
			}
			tk.ackerU64, _ = tk.spout.(AckerU64)
			rt.tasks = append(rt.tasks, tk)
			c.nextTask++
		}
	}
	for _, bd := range t.bolts {
		for i := 0; i < bd.parallelism; i++ {
			taskSeed++
			tk := &task{
				id:           c.nextTask,
				component:    bd.name,
				index:        i,
				numTasks:     bd.parallelism,
				worker:       place(),
				execCost:     bd.execCost,
				tickInterval: bd.tickInterval,
				bolt:         bd.factory(),
				space:        make(chan struct{}, 1),
				stop:         make(chan struct{}),
				done:         make(chan struct{}),
				rng:          rand.New(rand.NewSource(taskSeed)),
				edgeState:    uint64(taskSeed),
			}
			if tk.bolt == nil {
				rt.cancel()
				return nil, fmt.Errorf("dsps: bolt factory for %q returned nil", bd.name)
			}
			rt.initBoltInput(tk)
			rt.tasks = append(rt.tasks, tk)
			c.nextTask++
		}
	}
	byID := make(map[int]*task, len(rt.tasks))
	byComponent := map[string][]*task{}
	for _, tk := range rt.tasks {
		byID[tk.id] = tk
		byComponent[tk.component] = append(byComponent[tk.component], tk)
		rt.nextIndex[tk.component] = tk.index + 1
	}
	rt.taskByID.Store(&byID)
	rt.placed = placed
	// Wire subscriptions.
	for _, bd := range t.bolts {
		for _, sub := range bd.subs {
			targets := byComponent[bd.name]
			e := &edge{
				grouping:   sub.grouping,
				source:     sub.source,
				targetComp: bd.name,
			}
			e.targets.Store(&targets)
			if s, ok := sub.grouping.(singleSelector); ok {
				e.single = s
			}
			rt.edges[sub.source] = append(rt.edges[sub.source], e)
			rt.allEdges = append(rt.allEdges, e)
		}
	}
	// Precompute each task's emit-path state: its outgoing edges, output
	// schema, and one out-buffer per (edge, target).
	for _, tk := range rt.tasks {
		tk.outEdges = rt.edges[tk.component]
		tk.outFields = rt.fieldsOf(tk.component)
		rt.rebuildOuts(tk, 0)
	}
	rt.acker = newAcker(c.cfg.AckTimeout, c.cfg.AckerShards, rt.clock.nowNs)
	if rt.ringMode {
		rt.ackOwners = newAckOwners(len(rt.acker.shards))
	}
	return rt, nil
}

// initBoltInput wires a bolt task's input queue for the active data
// plane: a QueueSize-slot channel on the channel plane, an (initially
// empty) list of per-producer SPSC rings plus a park/wake waiter on the
// ring plane. Either way the queue bound is enforced in tuples by
// reserve(), and sizing at QueueSize slots means a reserved batch (≥1
// tuple each) always finds a free slot, so the hand-off after a
// successful reservation never blocks.
func (rt *runningTopology) initBoltInput(tk *task) {
	if !rt.ringMode {
		tk.inCh = make(chan envBatch, rt.cfg.QueueSize)
		return
	}
	empty := make([]*ring.SPSC[envBatch], 0)
	tk.inRings.Store(&empty)
	tk.ringWait = ring.NewWaiter()
}

// fieldsOf returns the declared output schema of a component.
func (rt *runningTopology) fieldsOf(component string) []string {
	for _, s := range rt.topo.spouts {
		if s.name == component {
			return s.fields
		}
	}
	for _, b := range rt.topo.bolts {
		if b.name == component {
			return b.fields
		}
	}
	return nil
}

// taskOf resolves a task id through the copy-on-write index.
//
//dsps:hotpath
func (rt *runningTopology) taskOf(id int) *task {
	return (*rt.taskByID.Load())[id]
}

// rebuildOuts flushes any buffered envelopes to their previous targets and
// rebuilds tk's cached emit state (edgeBase, edgeTargets, outs) against
// each out-edge's current fan-out table, recording the route epoch it was
// built for. Called only from tk's executor goroutine (and from
// buildRuntime/spawnTask before the goroutine starts). Runs once per
// splice epoch change, never per tuple, so its slice growth is off the
// steady-state path.
//
//dsps:coldpath
func (rt *runningTopology) rebuildOuts(tk *task, epoch uint64) {
	rt.flushOut(tk)
	tk.edgeBase = tk.edgeBase[:0]
	tk.edgeTargets = tk.edgeTargets[:0]
	tk.outs = tk.outs[:0]
	for _, e := range tk.outEdges {
		targets := *e.targets.Load()
		tk.edgeBase = append(tk.edgeBase, len(tk.outs))
		tk.edgeTargets = append(tk.edgeTargets, targets)
		for _, tgt := range targets {
			tk.outs = append(tk.outs, outBuf{target: tgt, edge: e})
		}
	}
	tk.routeGen.Store(epoch)
}

// maybeRebuild refreshes tk's cached routes when a splice has advanced the
// route epoch. On the hot path this is two atomic loads.
//
//dsps:hotpath
func (rt *runningTopology) maybeRebuild(tk *task) {
	if epoch := rt.routeEpoch.Load(); epoch != tk.routeGen.Load() {
		rt.rebuildOuts(tk, epoch)
	}
}

// splice runs fn (which must publish new edge target lists) under the
// write side of the splice lock, advances the route epoch, and wakes every
// executor so idle tasks rebuild their cached routes promptly. Returns the
// new epoch.
func (rt *runningTopology) splice(fn func()) uint64 {
	rt.spliceMu.Lock()
	fn()
	epoch := rt.routeEpoch.Add(1)
	fresh := make(chan struct{})
	old := rt.spliceWake.Swap(&fresh)
	rt.spliceMu.Unlock()
	close(*old)
	return epoch
}

// sendAcks delivers a batch of completions to a spout task, bailing out on
// shutdown. The ack channel holds MaxSpoutPending batches and at most
// MaxSpoutPending roots are incomplete at once, so in practice this never
// blocks.
func (rt *runningTopology) sendAcks(sp *task, results []ackResult) {
	select {
	case sp.ackCh <- results:
	case <-rt.ctx.Done():
	}
}

func (rt *runningTopology) start() {
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		rt.clock.run(rt.ctx)
	}()
	if rt.ackOwners != nil {
		for s := range rt.ackOwners.owners {
			rt.wg.Add(1)
			go rt.runAckOwner(s)
		}
	}
	for _, tk := range rt.tasks {
		rt.wg.Add(1)
		if tk.spout != nil {
			go rt.runSpout(tk)
		} else {
			go rt.runBolt(tk)
		}
	}
	// Ack-timeout sweeper: expired roots are grouped per spout and
	// delivered in batches (cold path, so the per-sweep map is fine).
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		period := rt.cfg.AckTimeout / 2
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-rt.ctx.Done():
				return
			case <-ticker.C:
				expired := rt.acker.sweep()
				if len(expired) == 0 {
					continue
				}
				bySpout := map[*task][]ackResult{}
				for _, r := range expired {
					if sp := rt.taskOf(r.spoutTID); sp != nil {
						bySpout[sp] = append(bySpout[sp], r)
					}
				}
				for sp, rs := range bySpout {
					rt.sendAcks(sp, rs)
				}
			}
		}
	}()
}

func (rt *runningTopology) stop() {
	rt.spoutsPaused.Store(true)
	rt.cancel()
	// Cancelling first makes any in-flight scale operation bail out of its
	// drain waits quickly; holding scaleMu through cleanup keeps a retire
	// from racing the Cleanup loop below.
	rt.scaleMu.Lock()
	defer rt.scaleMu.Unlock()
	rt.wg.Wait()
	rt.tasksMu.RLock()
	tasks := append([]*task(nil), rt.tasks...)
	rt.tasksMu.RUnlock()
	for _, tk := range tasks {
		if tk.spout != nil {
			tk.spout.Close()
		} else {
			tk.bolt.Cleanup()
		}
	}
}

// progress returns a monotone counter of total work done, used by Drain to
// detect stability. Retired tasks contribute their frozen counters so the
// total never regresses across a scale-down.
func (rt *runningTopology) progress() int64 {
	rt.tasksMu.RLock()
	defer rt.tasksMu.RUnlock()
	var total int64
	for _, tk := range rt.tasks {
		total += tk.counters.executed.Load() +
			tk.counters.emitted.Load() +
			tk.counters.acked.Load() +
			tk.counters.failed.Load() +
			tk.counters.dropped.Load()
	}
	for _, ts := range rt.retired {
		total += ts.Executed + ts.Emitted + ts.Acked + ts.Failed + ts.Dropped
	}
	return total
}

// quiescent reports whether no tuples are queued, buffered in producers,
// or tracked in flight.
func (rt *runningTopology) quiescent() bool {
	if rt.acker.inFlight() > 0 {
		return false
	}
	// Ring plane: ops staged in owner rings are not yet visible in the
	// shard maps; completions already applied may still be en route to
	// their spout (the ackCh length check below catches those).
	if rt.ackOwners != nil && rt.ackOwners.opsPending.Load() != 0 {
		return false
	}
	rt.tasksMu.RLock()
	defer rt.tasksMu.RUnlock()
	for _, tk := range rt.tasks {
		if tk.queued.Load() != 0 || tk.outPending.Load() != 0 {
			return false
		}
		if tk.ackCh != nil && len(tk.ackCh) > 0 {
			return false
		}
	}
	return true
}

// nextEdgeID draws a non-zero edge id from the task's splitmix64 stream —
// a few arithmetic ops instead of a math/rand call, seeded per task so
// runs are reproducible. Edge ids of zero would be invisible to the XOR
// tree.
//
//dsps:hotpath
func (tk *task) nextEdgeID() uint64 {
	for {
		tk.edgeState += 0x9e3779b97f4a7c15
		z := tk.edgeState
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

// --- Routing ---

// routeInto computes the deliveries of a tuple emitted by tk into
// tk.selScratch as outs indices, returning the selection count. Single-
// target groupings go through the selectOne fast path; only AllGrouping
// (and third-party groupings) pay the Select allocation.
//
//dsps:hotpath
func (rt *runningTopology) routeInto(tk *task, tpl *Tuple) int {
	sel := tk.selScratch[:0]
	for ei, e := range tk.outEdges {
		// Route against the cached target snapshot, not the live table:
		// the cache is consistent with the outs/edgeBase layout even while
		// a splice is publishing new targets (maybeRebuild catches up at
		// the next loop top).
		nt := len(tk.edgeTargets[ei])
		if nt == 0 {
			continue
		}
		base := tk.edgeBase[ei]
		if e.single != nil {
			if idx := e.single.selectOne(tpl, nt); idx >= 0 && idx < nt {
				sel = append(sel, base+idx) //dspslint:ignore allocfree selScratch retains capacity across emits; grows only until the fan-out stabilizes
			}
			continue
		}
		for _, idx := range e.grouping.Select(tpl, nt) {
			if idx >= 0 && idx < nt {
				sel = append(sel, base+idx) //dspslint:ignore allocfree selScratch retains capacity across emits; grows only until the fan-out stabilizes
			}
		}
	}
	tk.selScratch = sel
	return len(sel)
}

// enqueue appends one tuple to the out-buffer at bufIdx, flushing the
// buffer when it reaches the batch size.
//
//dsps:hotpath
func (rt *runningTopology) enqueue(tk *task, bufIdx int, tpl *Tuple, nowNs int64) {
	ob := &tk.outs[bufIdx]
	if ob.envs.tuples == nil {
		ob.envs = rt.fl.getEnvs(rt.effBatch)
	}
	if tk.firstBufNs == 0 {
		tk.firstBufNs = nowNs
	}
	ob.envs.add(tpl, nowNs)
	tk.outPending.Add(1)
	if ob.envs.size() >= rt.effBatch {
		envs := ob.envs
		ob.envs = envBatch{}
		rt.sendBatch(tk, ob.edge, ob.target, envs)
	}
}

// flushOut sends every non-empty out-buffer of tk downstream, and — on
// the ring plane — pushes the task's staged ack ops to their shard
// owners. The ack flush must precede the early return: a pure sink
// stages transitions without ever buffering output, and quiescence
// depends on every flush point draining the ack stage too (a sink
// holding back its last partial op slice would wedge Drain).
//
//dsps:hotpath
func (rt *runningTopology) flushOut(tk *task) {
	if rt.ackOwners != nil {
		rt.flushAckStage(tk)
	}
	if tk.outPending.Load() == 0 {
		tk.firstBufNs = 0
		return
	}
	for i := range tk.outs {
		ob := &tk.outs[i]
		if ob.envs.size() == 0 {
			continue
		}
		envs := ob.envs
		ob.envs = envBatch{}
		rt.sendBatch(tk, ob.edge, ob.target, envs)
	}
	tk.firstBufNs = 0
}

// rerouteRetry is how long a blocked send waits before re-consulting a
// dynamic grouping. Short enough that a controller bypass takes effect
// within a control period; long enough to stay off the hot path.
const rerouteRetry = 50 * time.Millisecond

// blockedRecheck is how often a producer blocked on a full non-dynamic
// queue re-checks capacity. The space channel is the primary wakeup; the
// tick only guards against a lost-wakeup race among multiple producers.
const blockedRecheck = 10 * time.Millisecond

// reserve claims n tuple slots against the task's queue bound, failing
// when the queue is full. The bound is counted in tuples — not batch
// slots — so a stream of tiny partial batches cannot collapse the
// effective queue capacity below QueueSize.
//
//dsps:hotpath
func (tk *task) reserve(n, bound int64) bool {
	for {
		q := tk.queued.Load()
		if q+n > bound {
			return false
		}
		if tk.queued.CompareAndSwap(q, q+n) {
			return true
		}
	}
}

// release frees n reserved tuple slots (at batch receive) and wakes one
// blocked producer, if any.
//
//dsps:hotpath
func (tk *task) release(n int64) {
	tk.queued.Add(-n)
	select {
	case tk.space <- struct{}{}:
	default:
	}
}

// sendBatch enqueues a batch, blocking for backpressure but bailing out on
// shutdown. Backpressure is tuple-denominated: the producer reserves
// len(envs) slots against the target's QueueSize before the hand-off, and
// the channel itself (sized at QueueSize slots) never blocks a reserved
// send. When the batch rides a *dynamic* edge and the target's queue
// stays full, the grouping is re-consulted periodically: if the controller
// has since steered traffic away from a misbehaving target, the waiting
// batch is re-directed instead of wedging its producer — the paper's
// "re-direct data tuples to bypass misbehaving workers" applied to
// in-flight emissions. Non-dynamic edges never re-route (fields grouping
// correctness depends on stable key→task assignment).
//
// The reserve+hand-off rides the topology splice read lock: it never
// blocks while held (a reserved send always finds a channel slot), and it
// orders the send against ScaleDown's retire sequence — once the retirer
// has set target.dead under the write lock, no further batch can land in
// the dead queue, so reclaiming it is race-free. A batch parked against a
// since-retired target re-homes to a live sibling through the edge's
// current fan-out table.
//
//dsps:hotpath
//dsps:ringproducer
func (rt *runningTopology) sendBatch(src *task, e *edge, target *task, envs envBatch) {
	n := int64(envs.size())
	bound := int64(rt.cfg.QueueSize)
	dg, dynamic := e.grouping.(*DynamicGrouping)
	retry := blockedRecheck
	if dynamic {
		retry = rerouteRetry
	}
	waited := false
	target.inbound.Add(1)
	for {
		rt.spliceMu.RLock()
		if target.dead.Load() {
			rt.spliceMu.RUnlock()
			// Drop the producer's cached ring to the retired target so the
			// map does not accumulate entries across scale churn.
			delete(src.outRings, target)
			tl := *e.targets.Load()
			if len(tl) == 0 {
				// No live target remains (topology tearing down): drop the
				// batch; anchored roots fail via the ack-timeout sweep.
				target.inbound.Add(-1)
				src.outPending.Add(-n)
				rt.fl.putEnvs(envs)
				return
			}
			idx := 0
			if e.single != nil {
				if i := e.single.selectOne(envs.tuples[0], len(tl)); i >= 0 && i < len(tl) {
					idx = i
				}
			}
			target.inbound.Add(-1)
			target = tl[idx]
			target.inbound.Add(1)
			continue
		}
		if target.reserve(n, bound) {
			if rt.ringMode {
				r := src.outRings[target]
				if r == nil {
					r = rt.attachInRingLocked(target)
					if src.outRings == nil {
						src.outRings = make(map[*task]*ring.SPSC[envBatch]) //dspslint:ignore allocfree one-time lazy init per source task on first ring attach
					}
					src.outRings[target] = r
				}
				// Reserved tuples ≤ QueueSize and every in-flight batch
				// holds ≥ 1 of them, so a ring with ≥ QueueSize batch slots
				// always has room for a reserved push; the failure arm is
				// defensive (it would indicate a reservation accounting bug)
				// and backs out rather than losing the batch.
				if !r.Push(envs) {
					target.release(n)
					rt.spliceMu.RUnlock()
					runtime.Gosched()
					continue
				}
				rt.spliceMu.RUnlock()
				target.ringWait.Wake()
			} else {
				//dspslint:ignore lockedsend reserved send never blocks; the splice read lock orders it against fan-out splices
				target.inCh <- envs
				rt.spliceMu.RUnlock()
			}
			target.inbound.Add(-1)
			src.outPending.Add(-n)
			src.counters.batches.Add(1)
			return
		}
		rt.spliceMu.RUnlock()
		if !waited {
			waited = true
			src.counters.bpWaits.Add(1)
		}
		select {
		case <-target.space:
		case <-rt.ctx.Done():
			target.inbound.Add(-1)
			src.outPending.Add(-n)
			return
		case <-src.stop:
			// The producer itself is being drained: abandon the blocked
			// send so its executor can settle (the batch's roots fail via
			// ack timeout, exactly like a Storm rebalance).
			target.inbound.Add(-1)
			src.outPending.Add(-n)
			rt.fl.putEnvs(envs)
			return
		case <-time.After(retry):
			if dynamic {
				tl := *e.targets.Load()
				if idx := dg.selectOne(envs.tuples[0], len(tl)); idx >= 0 && idx < len(tl) {
					target.inbound.Add(-1)
					target = tl[idx]
					target.inbound.Add(1)
				}
			}
		}
	}
}

// --- Spout executor ---

type spoutCollector struct {
	rt *runningTopology
	tk *task
}

// Emit implements SpoutCollector. Called only from the spout's executor
// goroutine.
//
//dsps:hotpath
func (sc *spoutCollector) Emit(values Values, msgID any) {
	tpl := sc.tk.arena.get()
	tpl.Values = values
	sc.emit(tpl, msgID, 0, msgID != nil)
}

// EmitInt64 implements SpoutCollector: the payload rides the tuple's
// int64 lane and the anchor its uint64 lane, so nothing boxes.
//
//dsps:hotpath
func (sc *spoutCollector) EmitInt64(v int64, msgID uint64) {
	tpl := sc.tk.arena.get()
	tpl.lane = laneI64
	tpl.i64 = v
	sc.emit(tpl, nil, msgID, msgID != 0)
}

// EmitFloat64 implements SpoutCollector.
//
//dsps:hotpath
func (sc *spoutCollector) EmitFloat64(v float64, msgID uint64) {
	tpl := sc.tk.arena.get()
	tpl.lane = laneF64
	tpl.f64 = v
	sc.emit(tpl, nil, msgID, msgID != 0)
}

// emit is the shared spout emit core: route, anchor, trace, enqueue.
// Exactly one of msgID/msgU64 carries the anchor when anchored is true.
//
//dsps:hotpath
func (sc *spoutCollector) emit(tpl *Tuple, msgID any, msgU64 uint64, anchored bool) {
	rt, tk := sc.rt, sc.tk
	tpl.SourceComponent = tk.component
	tpl.SourceTask = tk.id
	tpl.fields = tk.outFields
	nsel := rt.routeInto(tk, tpl)
	now := rt.clock.nowNs()
	if anchored {
		if nsel == 0 {
			// Nothing downstream: complete immediately.
			tk.counters.acked.Add(1)
			if msgID != nil {
				tk.spout.Ack(msgID)
			} else if tk.ackerU64 != nil {
				tk.ackerU64.AckU64(msgU64)
			} else {
				tk.spout.Ack(msgU64) //dspslint:ignore allocfree untyped-spout fallback boxes the id; spouts implementing AckerU64 take the box-free lane
			}
			tk.counters.emitted.Add(1)
			return
		}
		// Draw every edge id and register the root *before* the first
		// tuple can leave (a size-triggered flush inside enqueue may
		// hand tuples to a downstream executor immediately).
		rootID := tk.nextEdgeID()
		ids := tk.idScratch[:0]
		var xor uint64
		for i := 0; i < nsel; i++ {
			id := tk.nextEdgeID()
			ids = append(ids, id) //dspslint:ignore allocfree idScratch retains capacity across emits; grows only until the fan-out stabilizes
			xor ^= id
		}
		tk.idScratch = ids
		rt.ackRegister(tk, rootID, xor, msgID, msgU64)
		tk.pending++
		// Record the emit span before the first enqueue so a sampled
		// root's emit always sequences ahead of its descendants' exec
		// spans (enqueue may flush downstream immediately).
		if rt.trace != nil && rt.trace.sampled(rootID) {
			rt.trace.record(TraceSpan{
				RootID:    rootID,
				Kind:      SpanEmit,
				Topology:  rt.topo.Name,
				Component: tk.component,
				TaskID:    tk.id,
				TaskIndex: tk.index,
				WorkerID:  tk.worker.id,
				StartNs:   now,
				EndNs:     now,
				Fanout:    nsel,
			})
		}
		for i := 0; i < nsel; i++ {
			t := tpl
			if i > 0 {
				// Each anchored delivery carries its own edge id, so
				// fan-out needs distinct tuple headers.
				t = tk.arena.get()
				*t = *tpl
			}
			t.rootID = rootID
			t.edgeID = ids[i]
			rt.enqueue(tk, tk.selScratch[i], t, now)
		}
	} else {
		// Unanchored deliveries share one immutable tuple header.
		for i := 0; i < nsel; i++ {
			rt.enqueue(tk, tk.selScratch[i], tpl, now)
		}
	}
	tk.counters.emitted.Add(1)
	tk.counters.executed.Add(1)
}

// handleAckBatch applies a batch of completions to the spout and recycles
// the slice.
//
//dsps:hotpath
func (rt *runningTopology) handleAckBatch(tk *task, rb []ackResult) {
	for _, r := range rb {
		tk.pending--
		if r.ok {
			tk.counters.acked.Add(1)
			tk.counters.completeNs.Add(int64(r.latency))
			tk.counters.completeHist.observe(r.latency)
			switch {
			case !r.hasU64:
				tk.spout.Ack(r.msgID)
			case tk.ackerU64 != nil:
				tk.ackerU64.AckU64(r.msgU64)
			default:
				tk.spout.Ack(r.msgU64) //dspslint:ignore allocfree untyped-spout fallback boxes the id; spouts implementing AckerU64 take the box-free lane
			}
		} else {
			tk.counters.failed.Add(1)
			switch {
			case !r.hasU64:
				tk.spout.Fail(r.msgID)
			case tk.ackerU64 != nil:
				tk.ackerU64.FailU64(r.msgU64)
			default:
				tk.spout.Fail(r.msgU64) //dspslint:ignore allocfree untyped-spout fallback boxes the id; spouts implementing AckerU64 take the box-free lane
			}
		}
	}
	rt.fl.putAcks(rb)
}

func (rt *runningTopology) runSpout(tk *task) {
	defer rt.wg.Done()
	defer close(tk.done)
	collector := &spoutCollector{rt: rt, tk: tk}
	tk.spout.Open(rt.taskContext(tk), collector)
	idleBackoff := 100 * time.Microsecond
	for {
		select {
		case <-rt.ctx.Done():
			return
		default:
		}
		rt.maybeRebuild(tk)
		// Drain completed roots first.
		drained := 0
		for drained < 64 {
			select {
			case rb := <-tk.ackCh:
				rt.handleAckBatch(tk, rb)
				drained++
				continue
			default:
			}
			break
		}
		if rt.spoutsPaused.Load() || tk.pending >= rt.cfg.MaxSpoutPending {
			// About to block: anything buffered must go out first or the
			// acks that would unblock us may never be produced.
			rt.flushOut(tk)
			select {
			case <-rt.ctx.Done():
				return
			case rb := <-tk.ackCh:
				rt.handleAckBatch(tk, rb)
			case <-time.After(time.Millisecond):
			}
			continue
		}
		if tk.spout.NextTuple() {
			// Simulated emission-path cost (deserialization, I/O): the
			// same interference and fault model as bolt execution.
			if cost := tk.execCost; cost > 0 {
				n := tk.worker.node
				busy := n.busy.Add(1)
				over := float64(busy) - float64(n.cores)
				if over > 0 {
					cost = time.Duration(float64(cost) * (1 + rt.cfg.InterferenceAlpha*over/float64(n.cores)))
				}
				if f, ok := rt.cluster.faults.get(tk.worker.id); ok && f.Slowdown > 1 {
					cost = time.Duration(float64(cost) * f.Slowdown)
				}
				rt.cfg.Delayer.Delay(cost)
				n.busy.Add(-1)
				tk.counters.execNanos.Add(int64(cost))
			}
			// Deadline flush: a partial batch never waits longer than
			// FlushInterval past its oldest envelope.
			if tk.firstBufNs != 0 && rt.clock.nowNs()-tk.firstBufNs >= rt.flushNs {
				rt.flushOut(tk)
			}
		} else {
			rt.flushOut(tk)
			select {
			case <-rt.ctx.Done():
				return
			case <-time.After(idleBackoff):
			}
		}
	}
}

// --- Bolt executor ---

// ackBatch stages completions bound for one spout between flushes.
type ackBatch struct {
	spout   *task
	results []ackResult
}

type boltCollector struct {
	rt *runningTopology
	tk *task

	current  *Tuple
	produced []uint64
	failed   bool
	acks     []ackBatch
}

// Emit implements OutputCollector. Called only from the bolt's executor
// goroutine during Execute.
//
//dsps:hotpath
func (bc *boltCollector) Emit(values Values) {
	tpl := bc.tk.arena.get()
	tpl.Values = values
	bc.emit(tpl)
}

// EmitInt64 implements OutputCollector: the payload rides the tuple's
// int64 lane, so the emit never boxes.
//
//dsps:hotpath
func (bc *boltCollector) EmitInt64(v int64) {
	tpl := bc.tk.arena.get()
	tpl.lane = laneI64
	tpl.i64 = v
	bc.emit(tpl)
}

// EmitFloat64 implements OutputCollector.
//
//dsps:hotpath
func (bc *boltCollector) EmitFloat64(v float64) {
	tpl := bc.tk.arena.get()
	tpl.lane = laneF64
	tpl.f64 = v
	bc.emit(tpl)
}

// emit is the shared bolt emit core: route, anchor to the current input,
// enqueue.
//
//dsps:hotpath
func (bc *boltCollector) emit(tpl *Tuple) {
	rt, tk := bc.rt, bc.tk
	tpl.SourceComponent = tk.component
	tpl.SourceTask = tk.id
	tpl.fields = tk.outFields
	nsel := rt.routeInto(tk, tpl)
	now := rt.clock.nowNs()
	anchored := bc.current != nil && bc.current.rootID != 0
	if anchored {
		rootID := bc.current.rootID
		for i := 0; i < nsel; i++ {
			t := tpl
			if i > 0 {
				t = tk.arena.get()
				*t = *tpl
			}
			id := tk.nextEdgeID()
			t.rootID = rootID
			t.edgeID = id
			bc.produced = append(bc.produced, id) //dspslint:ignore allocfree produced is reset per input tuple and retains capacity; grows only until the fan-out stabilizes
			rt.enqueue(tk, tk.selScratch[i], t, now)
		}
	} else {
		for i := 0; i < nsel; i++ {
			rt.enqueue(tk, tk.selScratch[i], tpl, now)
		}
	}
	tk.counters.emitted.Add(1)
}

// Fail implements OutputCollector.
func (bc *boltCollector) Fail() { bc.failed = true }

// addAck stages a completion for its spout, flushing that spout's batch
// when full.
//
//dsps:hotpath
func (bc *boltCollector) addAck(r ackResult) {
	var ab *ackBatch
	for i := range bc.acks {
		if bc.acks[i].spout.id == r.spoutTID {
			ab = &bc.acks[i]
			break
		}
	}
	if ab == nil {
		sp := bc.rt.taskOf(r.spoutTID)
		if sp == nil {
			return
		}
		bc.acks = append(bc.acks, ackBatch{spout: sp}) //dspslint:ignore allocfree one entry per distinct upstream spout, not per tuple
		ab = &bc.acks[len(bc.acks)-1]
	}
	if ab.results == nil {
		ab.results = bc.rt.fl.getAcks(bc.rt.effBatch)
	}
	ab.results = append(ab.results, r) //dspslint:ignore allocfree free-listed slice sized to effBatch; flushed before it can grow
	if len(ab.results) >= bc.rt.effBatch {
		bc.rt.sendAcks(ab.spout, ab.results)
		ab.results = nil
	}
}

// flushAcks delivers every staged completion batch.
//
//dsps:hotpath
func (bc *boltCollector) flushAcks() {
	for i := range bc.acks {
		ab := &bc.acks[i]
		if len(ab.results) > 0 {
			bc.rt.sendAcks(ab.spout, ab.results)
			ab.results = nil
		}
	}
}

// processTuple runs the full per-tuple bolt path: tick bypass, fault
// draws, the interference cost model, Execute, metrics, and ack-tree
// bookkeeping. Returns false when the topology shut down mid-stall.
//
//dsps:hotpath
func (rt *runningTopology) processTuple(tk *task, collector *boltCollector, tpl *Tuple, enqueuedNs int64) bool {
	n := tk.worker.node
	if tpl.IsTick() {
		// Ticks bypass the fault/cost/ack machinery: they exist only to
		// advance bolt-internal time.
		collector.current = tpl
		collector.produced = collector.produced[:0]
		collector.failed = false
		tk.bolt.Execute(tpl)
		collector.current = nil
		return true
	}
	startNs := rt.clock.nowNs()
	tk.counters.queueNanos.Add(startNs - enqueuedNs)

	fault, faulty := rt.cluster.faults.get(tk.worker.id)
	// A stalled worker hangs mid-processing until the fault clears or the
	// topology shuts down; its queues back up and its roots time out, like
	// a hung JVM.
	for faulty && fault.Stall {
		select {
		case <-rt.ctx.Done():
			return false
		case <-tk.stop:
			// A forced scale-down retires even a stalled executor; the
			// batch's unprocessed roots fail via ack timeout.
			return false
		case <-time.After(10 * time.Millisecond):
		}
		fault, faulty = rt.cluster.faults.get(tk.worker.id)
	}
	if faulty && fault.DropProb > 0 && tk.rng.Float64() < fault.DropProb {
		tk.counters.dropped.Add(1)
		return true // root will fail by ack timeout
	}
	if faulty && fault.FailProb > 0 && tk.rng.Float64() < fault.FailProb {
		tk.counters.dropped.Add(1)
		if tpl.rootID != 0 {
			rt.ackFail(tk, collector, tpl.rootID)
		}
		return true
	}

	// Interference model: service cost grows when the node is
	// oversubscribed, and when the worker is slowed by a fault.
	busy := n.busy.Add(1)
	cost := tk.execCost
	if cost > 0 {
		over := float64(busy) - float64(n.cores)
		if over > 0 {
			cost = time.Duration(float64(cost) * (1 + rt.cfg.InterferenceAlpha*over/float64(n.cores)))
		}
		if faulty && fault.Slowdown > 1 {
			cost = time.Duration(float64(cost) * fault.Slowdown)
		}
		rt.cfg.Delayer.Delay(cost)
	}

	collector.current = tpl
	collector.produced = collector.produced[:0]
	collector.failed = false
	tk.bolt.Execute(tpl)
	n.busy.Add(-1)
	n.executed.Add(1)

	tk.counters.executed.Add(1)
	// Execute latency includes the simulated cost even under NopDelayer so
	// metric series carry the interference signal.
	elapsed := time.Duration(rt.clock.nowNs() - startNs)
	if elapsed < cost {
		elapsed = cost
	}
	tk.counters.execNanos.Add(int64(elapsed))
	tk.counters.execHist.observe(elapsed)

	if rt.trace != nil && tpl.rootID != 0 && rt.trace.sampled(tpl.rootID) {
		rt.trace.record(TraceSpan{
			RootID:          tpl.rootID,
			Kind:            SpanExec,
			Topology:        rt.topo.Name,
			Component:       tk.component,
			TaskID:          tk.id,
			TaskIndex:       tk.index,
			WorkerID:        tk.worker.id,
			SourceComponent: tpl.SourceComponent,
			StartNs:         startNs,
			EndNs:           startNs + int64(elapsed),
			QueueNs:         startNs - enqueuedNs,
		})
	}

	if tpl.rootID != 0 {
		if collector.failed {
			rt.ackFail(tk, collector, tpl.rootID)
		} else {
			rt.ackTransition(tk, collector, tpl.rootID, tpl.edgeID, collector.produced)
		}
	}
	collector.current = nil
	return true
}

func (rt *runningTopology) runBolt(tk *task) {
	defer rt.wg.Done()
	defer close(tk.done)
	collector := &boltCollector{rt: rt, tk: tk}
	tk.bolt.Prepare(rt.taskContext(tk), collector)
	if tk.tickInterval > 0 {
		rt.wg.Add(1)
		go rt.runTicker(tk)
	}
	if rt.ringMode {
		rt.runBoltRing(tk, collector)
		return
	}
	for {
		rt.maybeRebuild(tk)
		wake := rt.spliceWake.Load()
		select {
		case <-rt.ctx.Done():
			return
		case <-tk.stop:
			// Drain request from ScaleDown: everything emitted or staged
			// goes out before the executor settles.
			rt.flushOut(tk)
			collector.flushAcks()
			return
		case <-*wake:
			// A splice advanced the route epoch; loop so even an idle bolt
			// re-acks it promptly (ScaleDown waits on that convergence).
		case batch := <-tk.inCh:
			if !rt.processBatch(tk, collector, batch) {
				return
			}
			// Bolts emit only while processing input, so flushing here
			// (rather than on a deadline) bounds output latency by the
			// input batch and leaves nothing buffered while idle.
			rt.flushOut(tk)
			collector.flushAcks()
		}
	}
}

// processBatch releases the batch's queue reservation, runs every tuple
// through the bolt, and recycles the batch slices. Returns false when the
// topology shut down mid-batch.
//
//dsps:hotpath
func (rt *runningTopology) processBatch(tk *task, collector *boltCollector, batch envBatch) bool {
	tk.release(int64(batch.size()))
	for i, tpl := range batch.tuples {
		if !rt.processTuple(tk, collector, tpl, batch.ns[i]) {
			return false
		}
	}
	rt.fl.putEnvs(batch)
	return true
}

// runTicker feeds tick tuples to a bolt task at its declared interval.
// Sends are non-blocking: a saturated queue drops the tick rather than
// adding backpressure (Storm's semantics — ticks are best-effort).
//
//dsps:ringproducer
func (rt *runningTopology) runTicker(tk *task) {
	defer rt.wg.Done()
	ticker := time.NewTicker(tk.tickInterval)
	defer ticker.Stop()
	// On the ring plane the ticker goroutine is a producer in its own
	// right, so it owns a private ring to its bolt — it must never share
	// the executor goroutine's outRings cache.
	var tickRing *ring.SPSC[envBatch]
	for {
		select {
		case <-rt.ctx.Done():
			return
		case <-tk.stop:
			return
		case <-ticker.C:
			// The self-send rides the splice read lock like any producer:
			// once ScaleDown marks the task dead under the write lock, no
			// tick can slip into the queue it is about to reclaim.
			rt.spliceMu.RLock()
			if tk.dead.Load() {
				rt.spliceMu.RUnlock()
				return
			}
			if !tk.reserve(1, int64(rt.cfg.QueueSize)) {
				rt.spliceMu.RUnlock()
				continue // full queue drops the tick
			}
			b := rt.fl.getEnvs(1)
			b.add(&Tuple{SourceComponent: TickComponent}, rt.clock.nowNs())
			if rt.ringMode {
				if tickRing == nil {
					tickRing = rt.attachInRingLocked(tk)
				}
				if !tickRing.Push(b) {
					// Defensive: back the reservation out (see sendBatch).
					tk.release(1)
					rt.spliceMu.RUnlock()
					continue
				}
				rt.spliceMu.RUnlock()
				tk.ringWait.Wake()
			} else {
				//dspslint:ignore lockedsend reserved tick send never blocks; the splice read lock orders it against retirement
				tk.inCh <- b
				rt.spliceMu.RUnlock()
			}
		}
	}
}

func (rt *runningTopology) taskContext(tk *task) TopologyContext {
	return TopologyContext{
		Component: tk.component,
		TaskIndex: tk.index,
		TaskID:    tk.id,
		NumTasks:  tk.numTasks,
		WorkerID:  tk.worker.id,
		NodeID:    tk.worker.node.id,
	}
}
