package dsps

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// envelope wraps a tuple in transit with its enqueue timestamp.
type envelope struct {
	tuple      *Tuple
	enqueuedAt time.Time
}

// edge is one subscription: tuples from source fan out via grouping to the
// ordered target tasks.
type edge struct {
	grouping Grouping
	targets  []*task
}

// task is one executor: a single goroutine running one spout or bolt
// instance.
type task struct {
	id           int
	component    string
	index        int
	numTasks     int
	worker       *workerProc
	execCost     time.Duration
	tickInterval time.Duration

	spout Spout
	bolt  Bolt

	inCh  chan envelope  // bolts only
	ackCh chan ackResult // spouts only
	rng   *rand.Rand     // owned by the executor goroutine

	counters taskCounters
	pending  int // spout: un-acked roots; executor-goroutine-local
}

// runningTopology is the live runtime of a submitted topology.
type runningTopology struct {
	cluster *Cluster
	topo    *Topology
	cfg     ClusterConfig

	workers []*workerProc
	tasks   []*task
	edges   map[string][]*edge // source component -> downstream edges
	acker   *acker

	ctx          context.Context
	cancel       context.CancelFunc
	wg           sync.WaitGroup
	spoutsPaused atomic.Bool
	rngMu        sync.Mutex
	rng          *rand.Rand
}

// buildRuntime schedules the topology: workers round-robin over nodes,
// executors round-robin over workers (spouts first, declaration order),
// mirroring Storm's even scheduler.
func (c *Cluster) buildRuntime(t *Topology, sc SubmitConfig) (*runningTopology, error) {
	rt := &runningTopology{
		cluster: c,
		topo:    t,
		cfg:     c.cfg,
		edges:   make(map[string][]*edge),
		rng:     rand.New(rand.NewSource(c.cfg.Seed)),
	}
	rt.ctx, rt.cancel = context.WithCancel(context.Background())
	// Worker and task ids are cluster-global so concurrently running
	// topologies never collide in the fault registry or snapshots.
	for i := 0; i < sc.Workers; i++ {
		n := c.nodes[c.nextWorker%len(c.nodes)]
		w := &workerProc{id: fmt.Sprintf("worker-%d", c.nextWorker), node: n}
		c.nextWorker++
		rt.workers = append(rt.workers, w)
	}
	totalTasks := 0
	for _, sd := range t.spouts {
		totalTasks += sd.parallelism
	}
	for _, bd := range t.bolts {
		totalTasks += bd.parallelism
	}
	placed := 0
	blockSize := (totalTasks + len(rt.workers) - 1) / len(rt.workers)
	place := func() *workerProc {
		var idx int
		if sc.Strategy == PlaceBlocked {
			idx = placed / blockSize
		} else {
			idx = placed % len(rt.workers)
		}
		placed++
		return rt.workers[idx%len(rt.workers)]
	}
	// Seed per-task rngs off the cluster-global task counter so
	// concurrently running topologies draw distinct edge-id streams.
	taskSeed := c.cfg.Seed + int64(c.nextTask)
	for _, sd := range t.spouts {
		for i := 0; i < sd.parallelism; i++ {
			taskSeed++
			tk := &task{
				id:        c.nextTask,
				component: sd.name,
				index:     i,
				numTasks:  sd.parallelism,
				worker:    place(),
				execCost:  sd.execCost,
				spout:     sd.factory(),
				ackCh:     make(chan ackResult, c.cfg.MaxSpoutPending),
				rng:       rand.New(rand.NewSource(taskSeed)),
			}
			if tk.spout == nil {
				rt.cancel()
				return nil, fmt.Errorf("dsps: spout factory for %q returned nil", sd.name)
			}
			rt.tasks = append(rt.tasks, tk)
			c.nextTask++
		}
	}
	for _, bd := range t.bolts {
		for i := 0; i < bd.parallelism; i++ {
			taskSeed++
			tk := &task{
				id:           c.nextTask,
				component:    bd.name,
				index:        i,
				numTasks:     bd.parallelism,
				worker:       place(),
				execCost:     bd.execCost,
				tickInterval: bd.tickInterval,
				bolt:         bd.factory(),
				inCh:         make(chan envelope, c.cfg.QueueSize),
				rng:          rand.New(rand.NewSource(taskSeed)),
			}
			if tk.bolt == nil {
				rt.cancel()
				return nil, fmt.Errorf("dsps: bolt factory for %q returned nil", bd.name)
			}
			rt.tasks = append(rt.tasks, tk)
			c.nextTask++
		}
	}
	// Wire subscriptions.
	byComponent := map[string][]*task{}
	for _, tk := range rt.tasks {
		byComponent[tk.component] = append(byComponent[tk.component], tk)
	}
	for _, bd := range t.bolts {
		for _, sub := range bd.subs {
			rt.edges[sub.source] = append(rt.edges[sub.source], &edge{
				grouping: sub.grouping,
				targets:  byComponent[bd.name],
			})
		}
	}
	rt.acker = newAcker(c.cfg.AckTimeout, rt.deliverAck)
	return rt, nil
}

// fieldsOf returns the declared output schema of a component.
func (rt *runningTopology) fieldsOf(component string) []string {
	for _, s := range rt.topo.spouts {
		if s.name == component {
			return s.fields
		}
	}
	for _, b := range rt.topo.bolts {
		if b.name == component {
			return b.fields
		}
	}
	return nil
}

func (rt *runningTopology) deliverAck(r ackResult) {
	for _, tk := range rt.tasks {
		if tk.id == r.spoutTID {
			select {
			case tk.ackCh <- r:
			case <-rt.ctx.Done():
			}
			return
		}
	}
}

func (rt *runningTopology) start() {
	for _, tk := range rt.tasks {
		rt.wg.Add(1)
		if tk.spout != nil {
			go rt.runSpout(tk)
		} else {
			go rt.runBolt(tk)
		}
	}
	// Ack-timeout sweeper.
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		period := rt.cfg.AckTimeout / 2
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-rt.ctx.Done():
				return
			case <-ticker.C:
				rt.acker.sweep()
			}
		}
	}()
}

func (rt *runningTopology) stop() {
	rt.spoutsPaused.Store(true)
	rt.cancel()
	rt.wg.Wait()
	for _, tk := range rt.tasks {
		if tk.spout != nil {
			tk.spout.Close()
		} else {
			tk.bolt.Cleanup()
		}
	}
}

// progress returns a monotone counter of total work done, used by Drain to
// detect stability.
func (rt *runningTopology) progress() int64 {
	var total int64
	for _, tk := range rt.tasks {
		total += tk.counters.executed.Load() +
			tk.counters.emitted.Load() +
			tk.counters.acked.Load() +
			tk.counters.failed.Load() +
			tk.counters.dropped.Load()
	}
	return total
}

// quiescent reports whether no tuples are queued or tracked in flight.
func (rt *runningTopology) quiescent() bool {
	if rt.acker.inFlight() > 0 {
		return false
	}
	for _, tk := range rt.tasks {
		if tk.inCh != nil && len(tk.inCh) > 0 {
			return false
		}
		if tk.ackCh != nil && len(tk.ackCh) > 0 {
			return false
		}
	}
	return true
}

// nextEdgeID draws a non-zero random edge id. Edge ids of zero would be
// invisible to the XOR tree.
func (tk *task) nextEdgeID() uint64 {
	for {
		if v := tk.rng.Uint64(); v != 0 {
			return v
		}
	}
}

// --- Spout executor ---

type spoutCollector struct {
	rt *runningTopology
	tk *task
}

// Emit implements SpoutCollector. Called only from the spout's executor
// goroutine.
func (sc *spoutCollector) Emit(values Values, msgID any) {
	rt, tk := sc.rt, sc.tk
	tpl := &Tuple{
		Values:          values,
		SourceComponent: tk.component,
		SourceTask:      tk.id,
		fields:          rt.fieldsOf(tk.component),
	}
	deliveries := rt.route(tk, tpl)
	if msgID != nil {
		rootID := tk.nextEdgeID()
		var xor uint64
		edgeIDs := make([]uint64, len(deliveries))
		for i := range deliveries {
			id := tk.nextEdgeID()
			edgeIDs[i] = id
			xor ^= id
		}
		if len(deliveries) == 0 {
			// Nothing downstream: complete immediately.
			tk.counters.acked.Add(1)
			tk.spout.Ack(msgID)
			tk.counters.emitted.Add(1)
			return
		}
		rt.acker.register(rootID, xor, msgID, tk.id)
		tk.pending++
		for i, d := range deliveries {
			cp := *tpl
			cp.rootID = rootID
			cp.edgeID = edgeIDs[i]
			rt.send(d, &cp)
		}
	} else {
		for _, d := range deliveries {
			cp := *tpl
			rt.send(d, &cp)
		}
	}
	tk.counters.emitted.Add(1)
	tk.counters.executed.Add(1)
}

func (rt *runningTopology) runSpout(tk *task) {
	defer rt.wg.Done()
	collector := &spoutCollector{rt: rt, tk: tk}
	tk.spout.Open(rt.taskContext(tk), collector)
	idleBackoff := 100 * time.Microsecond
	for {
		select {
		case <-rt.ctx.Done():
			return
		default:
		}
		// Drain completed roots first.
		drained := 0
		for drained < 1024 {
			select {
			case r := <-tk.ackCh:
				tk.pending--
				if r.ok {
					tk.counters.acked.Add(1)
					tk.counters.completeNs.Add(int64(r.latency))
					tk.counters.completeHist.observe(r.latency)
					tk.spout.Ack(r.msgID)
				} else {
					tk.counters.failed.Add(1)
					tk.spout.Fail(r.msgID)
				}
				drained++
				continue
			default:
			}
			break
		}
		if rt.spoutsPaused.Load() || tk.pending >= rt.cfg.MaxSpoutPending {
			select {
			case <-rt.ctx.Done():
				return
			case r := <-tk.ackCh:
				tk.pending--
				if r.ok {
					tk.counters.acked.Add(1)
					tk.counters.completeNs.Add(int64(r.latency))
					tk.counters.completeHist.observe(r.latency)
					tk.spout.Ack(r.msgID)
				} else {
					tk.counters.failed.Add(1)
					tk.spout.Fail(r.msgID)
				}
			case <-time.After(time.Millisecond):
			}
			continue
		}
		if tk.spout.NextTuple() {
			// Simulated emission-path cost (deserialization, I/O): the
			// same interference and fault model as bolt execution.
			if cost := tk.execCost; cost > 0 {
				n := tk.worker.node
				busy := n.busy.Add(1)
				over := float64(busy) - float64(n.cores)
				if over > 0 {
					cost = time.Duration(float64(cost) * (1 + rt.cfg.InterferenceAlpha*over/float64(n.cores)))
				}
				if f, ok := rt.cluster.faults.get(tk.worker.id); ok && f.Slowdown > 1 {
					cost = time.Duration(float64(cost) * f.Slowdown)
				}
				rt.cfg.Delayer.Delay(cost)
				n.busy.Add(-1)
				tk.counters.execNanos.Add(int64(cost))
			}
		} else {
			select {
			case <-rt.ctx.Done():
				return
			case <-time.After(idleBackoff):
			}
		}
	}
}

// --- Bolt executor ---

type boltCollector struct {
	rt *runningTopology
	tk *task

	current  *Tuple
	produced []uint64
	failed   bool
}

// Emit implements OutputCollector. Called only from the bolt's executor
// goroutine during Execute.
func (bc *boltCollector) Emit(values Values) {
	rt, tk := bc.rt, bc.tk
	tpl := &Tuple{
		Values:          values,
		SourceComponent: tk.component,
		SourceTask:      tk.id,
		fields:          rt.fieldsOf(tk.component),
	}
	deliveries := rt.route(tk, tpl)
	anchored := bc.current != nil && bc.current.rootID != 0
	for _, d := range deliveries {
		cp := *tpl
		if anchored {
			cp.rootID = bc.current.rootID
			id := tk.nextEdgeID()
			cp.edgeID = id
			bc.produced = append(bc.produced, id)
		}
		rt.send(d, &cp)
	}
	tk.counters.emitted.Add(int64(1))
}

// Fail implements OutputCollector.
func (bc *boltCollector) Fail() { bc.failed = true }

func (rt *runningTopology) runBolt(tk *task) {
	defer rt.wg.Done()
	collector := &boltCollector{rt: rt, tk: tk}
	tk.bolt.Prepare(rt.taskContext(tk), collector)
	if tk.tickInterval > 0 {
		rt.wg.Add(1)
		go rt.runTicker(tk)
	}
	n := tk.worker.node
	for {
		select {
		case <-rt.ctx.Done():
			return
		case env := <-tk.inCh:
			if env.tuple.IsTick() {
				// Ticks bypass the fault/cost/ack machinery: they exist
				// only to advance bolt-internal time.
				collector.current = env.tuple
				collector.produced = collector.produced[:0]
				collector.failed = false
				tk.bolt.Execute(env.tuple)
				collector.current = nil
				continue
			}
			start := time.Now()
			tk.counters.queueNanos.Add(int64(start.Sub(env.enqueuedAt)))

			fault, faulty := rt.cluster.faults.get(tk.worker.id)
			// A stalled worker hangs mid-processing until the fault
			// clears or the topology shuts down; its queues back up and
			// its roots time out, like a hung JVM.
			for faulty && fault.Stall {
				select {
				case <-rt.ctx.Done():
					return
				case <-time.After(10 * time.Millisecond):
				}
				fault, faulty = rt.cluster.faults.get(tk.worker.id)
			}
			if faulty && fault.DropProb > 0 && tk.rng.Float64() < fault.DropProb {
				tk.counters.dropped.Add(1)
				continue // root will fail by ack timeout
			}
			if faulty && fault.FailProb > 0 && tk.rng.Float64() < fault.FailProb {
				tk.counters.dropped.Add(1)
				if env.tuple.rootID != 0 {
					rt.acker.fail(env.tuple.rootID)
				}
				continue
			}

			// Interference model: service cost grows when the node is
			// oversubscribed, and when the worker is slowed by a fault.
			busy := n.busy.Add(1)
			cost := tk.execCost
			if cost > 0 {
				over := float64(busy) - float64(n.cores)
				if over > 0 {
					cost = time.Duration(float64(cost) * (1 + rt.cfg.InterferenceAlpha*over/float64(n.cores)))
				}
				if faulty && fault.Slowdown > 1 {
					cost = time.Duration(float64(cost) * fault.Slowdown)
				}
				rt.cfg.Delayer.Delay(cost)
			}

			collector.current = env.tuple
			collector.produced = collector.produced[:0]
			collector.failed = false
			tk.bolt.Execute(env.tuple)
			n.busy.Add(-1)
			n.executed.Add(1)

			tk.counters.executed.Add(1)
			// Execute latency includes the simulated cost even under
			// NopDelayer so metric series carry the interference signal.
			elapsed := time.Since(start)
			if elapsed < cost {
				elapsed = cost
			}
			tk.counters.execNanos.Add(int64(elapsed))
			tk.counters.execHist.observe(elapsed)

			if env.tuple.rootID != 0 {
				if collector.failed {
					rt.acker.fail(env.tuple.rootID)
				} else {
					rt.acker.transition(env.tuple.rootID, env.tuple.edgeID, collector.produced)
				}
			}
			collector.current = nil
		}
	}
}

// runTicker feeds tick tuples to a bolt task at its declared interval.
// Sends are non-blocking: a saturated queue drops the tick rather than
// adding backpressure (Storm's semantics — ticks are best-effort).
func (rt *runningTopology) runTicker(tk *task) {
	defer rt.wg.Done()
	ticker := time.NewTicker(tk.tickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.ctx.Done():
			return
		case <-ticker.C:
			select {
			case tk.inCh <- envelope{tuple: &Tuple{SourceComponent: TickComponent}, enqueuedAt: time.Now()}:
			default:
			}
		}
	}
}

// --- Routing ---

// delivery is one planned tuple hand-off: the selected target task plus
// the edge it was selected on (needed to re-route on a blocked dynamic
// edge).
type delivery struct {
	target *task
	edge   *edge
}

// route computes the deliveries of a tuple emitted by tk.
func (rt *runningTopology) route(tk *task, tpl *Tuple) []delivery {
	var out []delivery
	for _, e := range rt.edges[tk.component] {
		for _, idx := range e.grouping.Select(tpl, len(e.targets)) {
			if idx >= 0 && idx < len(e.targets) {
				out = append(out, delivery{target: e.targets[idx], edge: e})
			}
		}
	}
	return out
}

// rerouteRetry is how long a blocked send waits before re-consulting a
// dynamic grouping. Short enough that a controller bypass takes effect
// within a control period; long enough to stay off the hot path.
const rerouteRetry = 50 * time.Millisecond

// send enqueues a tuple, blocking for backpressure but bailing out on
// shutdown. When the delivery rides a *dynamic* edge and the target's
// queue stays full, the grouping is re-consulted periodically: if the
// controller has since steered traffic away from a misbehaving target,
// the waiting tuple is re-directed instead of wedging its producer — the
// paper's "re-direct data tuples to bypass misbehaving workers" applied
// to in-flight emissions. Non-dynamic edges never re-route (fields
// grouping correctness depends on stable key→task assignment).
func (rt *runningTopology) send(d delivery, tpl *Tuple) {
	env := envelope{tuple: tpl, enqueuedAt: time.Now()}
	dg, dynamic := d.edge.grouping.(*DynamicGrouping)
	if !dynamic {
		select {
		case d.target.inCh <- env:
		case <-rt.ctx.Done():
		}
		return
	}
	for {
		select {
		case d.target.inCh <- env:
			return
		case <-rt.ctx.Done():
			return
		case <-time.After(rerouteRetry):
			idxs := dg.Select(tpl, len(d.edge.targets))
			if len(idxs) == 1 && idxs[0] >= 0 && idxs[0] < len(d.edge.targets) {
				d.target = d.edge.targets[idxs[0]]
			}
		}
	}
}

func (rt *runningTopology) taskContext(tk *task) TopologyContext {
	return TopologyContext{
		Component: tk.component,
		TaskIndex: tk.index,
		TaskID:    tk.id,
		NumTasks:  tk.numTasks,
		WorkerID:  tk.worker.id,
		NodeID:    tk.worker.node.id,
	}
}
