// Package dsps is a Storm-like distributed stream data processing engine:
// spouts and bolts composed into topologies, executors scheduled onto
// workers and simulated cluster nodes, XOR-tree acking for at-least-once
// delivery, bounded queues with backpressure, pluggable stream groupings
// (including the paper's dynamic grouping), a co-location interference cost
// model, and runtime fault injection for misbehaving-worker experiments.
//
// It substitutes for Apache Storm in this reproduction: the predictive
// control framework in internal/core interacts with it exactly the way the
// paper's framework interacts with Storm — by reading multilevel runtime
// statistics and by updating dynamic-grouping split ratios.
//
// The engine is seed-deterministic: all randomness flows from explicitly
// seeded per-component sources (see DESIGN.md "Engine determinism"), and
// dspslint mechanically enforces the package's randomness, map-order, and
// hot-path clock discipline.
//
//dsps:deterministic
package dsps

import "fmt"

// Values is a tuple payload, one entry per declared output field.
type Values []any

// laneKind tags which typed payload lane a tuple uses instead of the
// boxed Values slice. Lane tuples are emitted through the typed collector
// methods (EmitInt64, EmitFloat64); the generic accessors fall back to
// boxing only when asked for an `any` view, so a lane tuple's hot path
// never allocates.
type laneKind uint8

const (
	laneNone laneKind = iota
	laneI64
	laneF64
)

// Tuple is a unit of data flowing through a topology.
//
// Engine-emitted tuples are allocated from a per-task arena (see
// tupleArena) and are never reused after release, so a bolt may retain a
// *Tuple beyond Execute (windowed bolts do) without it being mutated
// under its feet. Tuples are therefore plain data: nothing in the engine
// writes to one after it has been handed downstream.
type Tuple struct {
	// Values holds the payload, aligned with the emitting component's
	// declared fields.
	Values Values
	// SourceComponent names the component that emitted this tuple.
	SourceComponent string
	// SourceTask is the global task ID that emitted this tuple.
	SourceTask int

	// rootID is the acker tracking key of the spout tuple this descends
	// from; zero means unanchored (no reliability tracking).
	rootID uint64
	// edgeID is this tuple's random id in the XOR ack tree.
	edgeID uint64
	// fields is the emitting component's schema, for field lookups.
	fields []string

	// lane/i64/f64 are the struct-of-arrays typed payload lanes: a tuple
	// emitted via EmitInt64/EmitFloat64 carries its single-field payload
	// here with Values nil, so the emit path never boxes the value into an
	// interface. The generic accessors transparently view lane payloads.
	lane laneKind
	i64  int64
	f64  float64
}

// TickComponent is the SourceComponent of system tick tuples (see
// BoltDeclarer.WithTickInterval).
const TickComponent = "__tick"

// IsTick reports whether t is a system tick tuple.
func (t *Tuple) IsTick() bool { return t.SourceComponent == TickComponent }

// NewTickTuple builds a tick tuple, for unit-testing windowed bolts.
func NewTickTuple() *Tuple { return &Tuple{SourceComponent: TickComponent} }

// NewTestTuple builds a tuple with the given schema and values outside the
// engine, for unit-testing bolts in isolation. Tuples built this way carry
// no reliability anchoring.
func NewTestTuple(fields []string, values ...any) *Tuple {
	return &Tuple{Values: values, fields: fields, SourceComponent: "test"}
}

// Int64 returns the tuple's int64 lane payload. The second result is
// false when the tuple was not emitted through EmitInt64. This is the
// allocation-free read path matching the typed emit path.
func (t *Tuple) Int64() (int64, bool) {
	if t.lane == laneI64 {
		return t.i64, true
	}
	return 0, false
}

// Float64 returns the tuple's float64 lane payload; false when the tuple
// was not emitted through EmitFloat64.
func (t *Tuple) Float64() (float64, bool) {
	if t.lane == laneF64 {
		return t.f64, true
	}
	return 0, false
}

// laneValue boxes a lane payload for the generic accessors. Compat path
// only — lane-aware readers use Int64/Float64.
func (t *Tuple) laneValue() any {
	switch t.lane {
	case laneI64:
		return t.i64
	case laneF64:
		return t.f64
	}
	return nil
}

// GetValue returns the value of the named field. Lane tuples (emitted via
// EmitInt64/EmitFloat64) expose their payload under the component's first
// declared field; reading one through this generic view boxes the value.
func (t *Tuple) GetValue(field string) (any, error) {
	for i, f := range t.fields {
		if f == field {
			if t.Values == nil && t.lane != laneNone && i == 0 {
				return t.laneValue(), nil
			}
			if i < len(t.Values) {
				return t.Values[i], nil
			}
			break
		}
	}
	//dspslint:ignore allocfree field-miss error path; steady-state lookups return above without reaching it
	return nil, fmt.Errorf("dsps: tuple from %q has no field %q", t.SourceComponent, field)
}

// String returns the string value of the named field, erroring if the
// field is absent or not a string.
func (t *Tuple) String(field string) (string, error) {
	v, err := t.GetValue(field)
	if err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("dsps: field %q is %T, not string", field, v)
	}
	return s, nil
}

// Int returns the int value of the named field. Lane tuples emitted via
// EmitInt64 are read without boxing.
func (t *Tuple) Int(field string) (int, error) {
	if t.lane == laneI64 && t.Values == nil && len(t.fields) > 0 && t.fields[0] == field {
		return int(t.i64), nil
	}
	v, err := t.GetValue(field)
	if err != nil {
		return 0, err
	}
	n, ok := v.(int)
	if !ok {
		if n64, ok64 := v.(int64); ok64 {
			return int(n64), nil
		}
		return 0, fmt.Errorf("dsps: field %q is %T, not int", field, v)
	}
	return n, nil
}

// Float returns the float64 value of the named field. Lane tuples emitted
// via EmitFloat64 are read without boxing.
func (t *Tuple) Float(field string) (float64, error) {
	if t.lane == laneF64 && t.Values == nil && len(t.fields) > 0 && t.fields[0] == field {
		return t.f64, nil
	}
	v, err := t.GetValue(field)
	if err != nil {
		return 0, err
	}
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("dsps: field %q is %T, not float64", field, v)
	}
	return f, nil
}

// Fields returns the field names of the tuple's schema.
func (t *Tuple) Fields() []string {
	out := make([]string, len(t.fields))
	copy(out, t.fields)
	return out
}
