// Package dsps is a Storm-like distributed stream data processing engine:
// spouts and bolts composed into topologies, executors scheduled onto
// workers and simulated cluster nodes, XOR-tree acking for at-least-once
// delivery, bounded queues with backpressure, pluggable stream groupings
// (including the paper's dynamic grouping), a co-location interference cost
// model, and runtime fault injection for misbehaving-worker experiments.
//
// It substitutes for Apache Storm in this reproduction: the predictive
// control framework in internal/core interacts with it exactly the way the
// paper's framework interacts with Storm — by reading multilevel runtime
// statistics and by updating dynamic-grouping split ratios.
//
// The engine is seed-deterministic: all randomness flows from explicitly
// seeded per-component sources (see DESIGN.md "Engine determinism"), and
// dspslint mechanically enforces the package's randomness, map-order, and
// hot-path clock discipline.
//
//dsps:deterministic
package dsps

import "fmt"

// Values is a tuple payload, one entry per declared output field.
type Values []any

// Tuple is a unit of data flowing through a topology.
//
// Engine-emitted tuples are allocated from a per-task arena (see
// tupleArena) and are never reused after release, so a bolt may retain a
// *Tuple beyond Execute (windowed bolts do) without it being mutated
// under its feet. Tuples are therefore plain data: nothing in the engine
// writes to one after it has been handed downstream.
type Tuple struct {
	// Values holds the payload, aligned with the emitting component's
	// declared fields.
	Values Values
	// SourceComponent names the component that emitted this tuple.
	SourceComponent string
	// SourceTask is the global task ID that emitted this tuple.
	SourceTask int

	// rootID is the acker tracking key of the spout tuple this descends
	// from; zero means unanchored (no reliability tracking).
	rootID uint64
	// edgeID is this tuple's random id in the XOR ack tree.
	edgeID uint64
	// fields is the emitting component's schema, for field lookups.
	fields []string
}

// TickComponent is the SourceComponent of system tick tuples (see
// BoltDeclarer.WithTickInterval).
const TickComponent = "__tick"

// IsTick reports whether t is a system tick tuple.
func (t *Tuple) IsTick() bool { return t.SourceComponent == TickComponent }

// NewTickTuple builds a tick tuple, for unit-testing windowed bolts.
func NewTickTuple() *Tuple { return &Tuple{SourceComponent: TickComponent} }

// NewTestTuple builds a tuple with the given schema and values outside the
// engine, for unit-testing bolts in isolation. Tuples built this way carry
// no reliability anchoring.
func NewTestTuple(fields []string, values ...any) *Tuple {
	return &Tuple{Values: values, fields: fields, SourceComponent: "test"}
}

// GetValue returns the value of the named field.
func (t *Tuple) GetValue(field string) (any, error) {
	for i, f := range t.fields {
		if f == field {
			return t.Values[i], nil
		}
	}
	return nil, fmt.Errorf("dsps: tuple from %q has no field %q", t.SourceComponent, field)
}

// String returns the string value of the named field, erroring if the
// field is absent or not a string.
func (t *Tuple) String(field string) (string, error) {
	v, err := t.GetValue(field)
	if err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("dsps: field %q is %T, not string", field, v)
	}
	return s, nil
}

// Int returns the int value of the named field.
func (t *Tuple) Int(field string) (int, error) {
	v, err := t.GetValue(field)
	if err != nil {
		return 0, err
	}
	n, ok := v.(int)
	if !ok {
		return 0, fmt.Errorf("dsps: field %q is %T, not int", field, v)
	}
	return n, nil
}

// Float returns the float64 value of the named field.
func (t *Tuple) Float(field string) (float64, error) {
	v, err := t.GetValue(field)
	if err != nil {
		return 0, err
	}
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("dsps: field %q is %T, not float64", field, v)
	}
	return f, nil
}

// Fields returns the field names of the tuple's schema.
func (t *Tuple) Fields() []string {
	out := make([]string, len(t.fields))
	copy(out, t.fields)
	return out
}
