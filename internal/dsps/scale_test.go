package dsps

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedSpout emits anchored integers up to a raisable limit, so tests can
// stage load around scale events.
type gatedSpout struct {
	BaseSpout
	limit atomic.Int64

	collector SpoutCollector
	next      int64
	acked     atomic.Int64
	failed    atomic.Int64
}

func (s *gatedSpout) Open(_ TopologyContext, c SpoutCollector) { s.collector = c }

func (s *gatedSpout) NextTuple() bool {
	if s.next >= s.limit.Load() {
		return false
	}
	s.collector.Emit(Values{int(s.next)}, s.next)
	s.next++
	return true
}

func (s *gatedSpout) Ack(any)  { s.acked.Add(1) }
func (s *gatedSpout) Fail(any) { s.failed.Add(1) }

// scaleTopology is src(1) -> work(par) -> sink(1): work is the scalable
// stage, sink tallies which work task relayed each tuple.
func scaleTopology(spout *gatedSpout, tally *taskTally, par int) (*Topology, error) {
	b := NewTopologyBuilder("elastic")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("work", func() Bolt { return &relayBolt{} }, par, "n").
		ShuffleGrouping("src")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{tally: tally} }, 1).
		ShuffleGrouping("work")
	return b.Build()
}

// spoutConservation asserts emitted == acked+failed for every spout task
// of a drained snapshot.
func spoutConservation(t *testing.T, snap *Snapshot) {
	t.Helper()
	for _, ts := range snap.Tasks {
		if !ts.IsSpout {
			continue
		}
		if ts.Emitted != ts.Acked+ts.Failed {
			t.Fatalf("spout task %d: emitted %d != acked %d + failed %d",
				ts.TaskID, ts.Emitted, ts.Acked, ts.Failed)
		}
	}
}

func TestScaleUpReceivesTraffic(t *testing.T) {
	spout := &gatedSpout{}
	spout.limit.Store(300)
	b := NewTopologyBuilder("elastic-up")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("work", func() Bolt { return &relayBolt{} }, 2, "n").
		ShuffleGrouping("src")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).
		ShuffleGrouping("work")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain before scale up")
	}
	if err := c.ScaleUp("elastic-up", "work", 2); err != nil {
		t.Fatal(err)
	}
	if got := c.ComponentParallelism("elastic-up", "work"); got != 4 {
		t.Fatalf("parallelism after scale up = %d, want 4", got)
	}
	spout.limit.Store(900)
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain after scale up")
	}
	snap := c.Snapshot()
	spoutConservation(t, snap)
	work := snap.ComponentTasks("work")
	if len(work) != 4 {
		t.Fatalf("snapshot shows %d live work tasks, want 4", len(work))
	}
	for _, ts := range work[2:] {
		if ts.Executed == 0 {
			t.Fatalf("spawned task %d (index %d) executed nothing", ts.TaskID, ts.TaskIndex)
		}
	}
	cs, ok := snap.ComponentByName("elastic-up", "work")
	if !ok || cs.Parallelism != 4 {
		t.Fatalf("component aggregate missing or wrong parallelism: %+v", cs)
	}
	if cs.Executed != 900 {
		t.Fatalf("component executed %d tuples, want 900", cs.Executed)
	}
}

func TestScaleDownUnderLoadConservesTuples(t *testing.T) {
	spout := &gatedSpout{}
	spout.limit.Store(1 << 40) // effectively unbounded
	tally := newTaskTally()
	topo, err := scaleTopology(spout, tally, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(func(cfg *ClusterConfig) {
		cfg.QueueSize = 64
		cfg.MaxSpoutPending = 256
	})
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	time.Sleep(100 * time.Millisecond) // in-flight acks everywhere
	if err := c.ScaleDown("elastic", "work", 2, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.ComponentParallelism("elastic", "work"); got != 1 {
		t.Fatalf("parallelism after scale down = %d, want 1", got)
	}
	time.Sleep(50 * time.Millisecond) // keep load on the survivor
	c.PauseSpouts()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain after scale down")
	}
	snap := c.Snapshot()
	spoutConservation(t, snap)
	retired := 0
	for _, ts := range snap.Tasks {
		if ts.Retired {
			retired++
			if ts.QueueLen != 0 {
				t.Fatalf("retired task %d still shows queue length %d", ts.TaskID, ts.QueueLen)
			}
		}
	}
	if retired != 2 {
		t.Fatalf("snapshot carries %d retired tasks, want 2", retired)
	}
	cs, ok := snap.ComponentByName("elastic", "work")
	if !ok {
		t.Fatal("missing component aggregate for work")
	}
	if cs.Parallelism != 1 || cs.Retired != 2 {
		t.Fatalf("component aggregate parallelism=%d retired=%d, want 1/2", cs.Parallelism, cs.Retired)
	}
	// The retired executors' work must still be counted in the aggregate.
	var taskSum int64
	for _, ts := range snap.Tasks {
		if ts.Component == "work" {
			taskSum += ts.Executed
		}
	}
	if cs.Executed != taskSum {
		t.Fatalf("component aggregate executed %d != per-task sum %d", cs.Executed, taskSum)
	}
	if len(snap.Scale) != 1 || snap.Scale[0].Downs != 2 {
		t.Fatalf("scale stats = %+v, want one entry with Downs=2", snap.Scale)
	}
}

func TestScaleDownForcedWhileStalled(t *testing.T) {
	spout := &gatedSpout{}
	spout.limit.Store(1 << 40)
	tally := newTaskTally()
	topo, err := scaleTopology(spout, tally, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(func(cfg *ClusterConfig) {
		cfg.QueueSize = 32
		cfg.MaxSpoutPending = 128
		cfg.AckTimeout = 300 * time.Millisecond
	})
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	time.Sleep(50 * time.Millisecond)
	// Stall every worker: the victims cannot drain cooperatively, so the
	// scale-down must force-stop them without violating conservation.
	for _, w := range c.WorkerIDs() {
		if err := c.InjectFault(w, Fault{Stall: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.ScaleDown("elastic", "work", 1, 150*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, w := range c.WorkerIDs() {
		c.ClearFault(w)
	}
	c.PauseSpouts()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain after forced scale down")
	}
	snap := c.Snapshot()
	spoutConservation(t, snap)
	if got := c.ComponentParallelism("elastic", "work"); got != 1 {
		t.Fatalf("parallelism after forced scale down = %d, want 1", got)
	}
}

func TestScaleGuards(t *testing.T) {
	spout := &gatedSpout{}
	tally := newTaskTally()
	topo, err := scaleTopology(spout, tally, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.ScaleUp("nope", "work", 1); err == nil {
		t.Fatal("scale up of unknown topology succeeded")
	}
	if err := c.ScaleUp("elastic", "src", 1); err == nil {
		t.Fatal("scale up of a spout succeeded")
	}
	if err := c.ScaleUp("elastic", "work", 0); err == nil {
		t.Fatal("scale up by 0 succeeded")
	}
	if err := c.ScaleDown("elastic", "work", 2, time.Second); !errors.Is(err, ErrScaleFloor) {
		t.Fatalf("scale down to 0 returned %v, want ErrScaleFloor", err)
	}
	if err := c.ScaleDown("elastic", "missing", 1, time.Second); err == nil {
		t.Fatal("scale down of unknown component succeeded")
	}
}

// TestScaleChurnConserves hammers the splice path: repeated up/down cycles
// while anchored load flows, then a final conservation audit.
func TestScaleChurnConserves(t *testing.T) {
	spout := &gatedSpout{}
	spout.limit.Store(1 << 40)
	tally := newTaskTally()
	topo, err := scaleTopology(spout, tally, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(func(cfg *ClusterConfig) {
		cfg.QueueSize = 64
		cfg.MaxSpoutPending = 256
	})
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := c.ScaleUp("elastic", "work", 2); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(10 * time.Millisecond)
			if err := c.ScaleDown("elastic", "work", 2, time.Second); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	wg.Wait()
	c.PauseSpouts()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain after scale churn")
	}
	snap := c.Snapshot()
	spoutConservation(t, snap)
	if got := c.ComponentParallelism("elastic", "work"); got != 2 {
		t.Fatalf("parallelism after churn = %d, want 2", got)
	}
	if len(snap.Scale) != 1 || snap.Scale[0].Ups != 12 || snap.Scale[0].Downs != 12 {
		t.Fatalf("scale stats after churn = %+v, want Ups=12 Downs=12", snap.Scale)
	}
}
