package dsps

// Structured control-plane events. The engine reports notable control
// actions (topology submit/shutdown/rebalance, fault injection, dynamic
// ratio changes) to an EventSink supplied via ClusterConfig.Events. The
// interface lives here — not in internal/obs — so the engine never
// imports its observers; obs.Logger satisfies it structurally.
//
// Events are emitted only from control-plane paths, never from per-tuple
// hot paths, and always outside the cluster's locks, so a slow sink can
// delay control actions but can never deadlock or stall the data plane.

// Event severity levels, ordered: a sink may drop records below its
// configured threshold.
const (
	// EventDebug marks high-volume diagnostic records.
	EventDebug = 0
	// EventInfo marks routine control actions (submit, ratio change).
	EventInfo = 1
	// EventWarn marks degraded-but-handled conditions (fault injected).
	EventWarn = 2
	// EventError marks failed control actions.
	EventError = 3
)

// EventSink receives structured control-plane events. Attributes arrive
// as an ordered, flat key/value string list (kv[0] is a key, kv[1] its
// value, and so on) so emission order is deterministic and sinks need no
// map handling. Implementations must be safe for concurrent use.
type EventSink interface {
	Event(level int, msg string, kv ...string)
}
