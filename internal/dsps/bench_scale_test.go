// Scale-event latency benchmarks: how long a live parallelism change takes
// on a topology under continuous load. ns/op is the latency of the whole
// actuation (spawn + splice for up; splice-out + drain + settle + retire
// for down), not a per-tuple cost. Numbers are recorded in
// BENCH_engine.json (regenerate with `make bench-elastic`).
package dsps_test

import (
	"sync/atomic"
	"testing"
	"time"

	"predstream/internal/dsps"
)

// benchStreamSpout emits unanchored tuples until told to stop, keeping the
// relay stage busy so scale events always race live traffic.
type benchStreamSpout struct {
	dsps.BaseSpout
	stop      *atomic.Bool
	collector dsps.SpoutCollector
}

func (s *benchStreamSpout) Open(_ dsps.TopologyContext, c dsps.SpoutCollector) { s.collector = c }

func (s *benchStreamSpout) NextTuple() bool {
	if s.stop.Load() {
		return false
	}
	s.collector.Emit(benchValues, nil)
	return true
}

// startScaleBenchTopology brings up src(1) -> relay(2, shuffle) -> sink(1)
// with the spout free-running, and returns the cluster plus the stop flag.
func startScaleBenchTopology(b *testing.B) (*dsps.Cluster, *atomic.Bool) {
	b.Helper()
	var stop atomic.Bool
	var seen atomic.Int64
	tb := dsps.NewTopologyBuilder("bench-scale")
	tb.SetSpout("src", func() dsps.Spout { return &benchStreamSpout{stop: &stop} }, 1, "v")
	tb.SetBolt("relay", func() dsps.Bolt { return &benchRelay{} }, 2, "v").ShuffleGrouping("src")
	tb.SetBolt("sink", func() dsps.Bolt { return &benchSink{seen: &seen} }, 1).ShuffleGrouping("relay")
	topo, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	c := benchCluster(b)
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 4}); err != nil {
		b.Fatal(err)
	}
	// Let the stream reach steady state before the first scale event.
	waitFor(b, &seen, 1024)
	return c, &stop
}

// BenchmarkScaleCycleLive measures a full elastic actuation round trip
// under load: ScaleUp(+1) immediately followed by ScaleDown(-1) with a
// cooperative drain. ns/op is the plan-to-fully-drained latency of one
// up+down pair; parallelism stays bounded across iterations.
func BenchmarkScaleCycleLive(b *testing.B) {
	c, stop := startScaleBenchTopology(b)
	defer c.Shutdown()
	defer stop.Store(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.ScaleUp("bench-scale", "relay", 1); err != nil {
			b.Fatal(err)
		}
		if err := c.ScaleDown("bench-scale", "relay", 1, 2*time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(b.Elapsed().Seconds()*1000/float64(2*b.N), "ms/event")
}

// BenchmarkScaleUpLive isolates the expansion half: executor spawn plus
// splicing into the live fan-out tables. The paired ScaleDown runs with
// the timer stopped so ns/op is the pure scale-up latency.
func BenchmarkScaleUpLive(b *testing.B) {
	c, stop := startScaleBenchTopology(b)
	defer c.Shutdown()
	defer stop.Store(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.ScaleUp("bench-scale", "relay", 1); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := c.ScaleDown("bench-scale", "relay", 1, 2*time.Second); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
