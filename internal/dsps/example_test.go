package dsps_test

import (
	"fmt"
	"time"

	"predstream/internal/dsps"
)

// Example builds the canonical word-count topology, runs it to completion
// on the simulated cluster, and reads the engine counters.
func Example() {
	words := []string{"tuple", "stream", "tuple"}
	next := 0
	var collector dsps.SpoutCollector

	builder := dsps.NewTopologyBuilder("wordcount")
	builder.SetSpout("words", func() dsps.Spout {
		return &dsps.SpoutFunc{
			OpenFn: func(_ dsps.TopologyContext, c dsps.SpoutCollector) { collector = c },
			NextFn: func() bool {
				if next >= len(words) {
					return false
				}
				collector.Emit(dsps.Values{words[next]}, next)
				next++
				return true
			},
		}
	}, 1, "word")
	counts := map[string]int{}
	builder.SetBolt("count", func() dsps.Bolt {
		return &dsps.BoltFunc{
			ExecuteFn: func(t *dsps.Tuple, _ dsps.OutputCollector) {
				w, err := t.String("word")
				if err == nil {
					counts[w]++
				}
			},
		}
	}, 1).FieldsGrouping("words", "word")
	topo, err := builder.Build()
	if err != nil {
		fmt.Println(err)
		return
	}

	cluster := dsps.NewCluster(dsps.ClusterConfig{Nodes: 1, Delayer: dsps.NopDelayer{}})
	if err := cluster.Submit(topo, dsps.SubmitConfig{}); err != nil {
		fmt.Println(err)
		return
	}
	defer cluster.Shutdown()
	cluster.Drain(5 * time.Second)

	snap := cluster.Snapshot()
	fmt.Printf("acked=%d tuple=%d stream=%d\n", snap.TotalAcked(), counts["tuple"], counts["stream"])
	// Output: acked=3 tuple=2 stream=1
}

// ExampleDynamicGrouping shows the paper's controllable grouping: a split
// ratio that can be changed on the fly.
func ExampleDynamicGrouping() {
	g := &dsps.DynamicGrouping{}
	if err := g.SetRatios([]float64{3, 1}); err != nil {
		fmt.Println(err)
		return
	}
	counts := [2]int{}
	for i := 0; i < 8; i++ {
		counts[g.Select(nil, 2)[0]]++
	}
	fmt.Printf("before update: %d/%d\n", counts[0], counts[1])

	// Redirect everything away from task 0 — e.g. its worker misbehaves.
	if err := g.SetRatios([]float64{0, 1}); err != nil {
		fmt.Println(err)
		return
	}
	counts = [2]int{}
	for i := 0; i < 8; i++ {
		counts[g.Select(nil, 2)[0]]++
	}
	fmt.Printf("after update:  %d/%d\n", counts[0], counts[1])
	// Output:
	// before update: 6/2
	// after update:  0/8
}

// ExampleDynamicGrouping_SetOnChange observes ratio changes as they are
// applied — the hook the observability event log uses to record every
// plan the controller installs.
func ExampleDynamicGrouping_SetOnChange() {
	g := &dsps.DynamicGrouping{}
	g.SetOnChange(func(ratios []float64) {
		fmt.Printf("ratios now %v\n", ratios)
	})
	if err := g.SetRatios([]float64{0.75, 0.25}); err != nil {
		fmt.Println(err)
		return
	}
	if err := g.SetRatios([]float64{0, 1}); err != nil {
		fmt.Println(err)
		return
	}
	// Output:
	// ratios now [0.75 0.25]
	// ratios now [0 1]
}
