package dsps

import (
	"sync/atomic"
	"testing"
	"time"
)

// tickCounterBolt counts data tuples and ticks separately.
type tickCounterBolt struct {
	BaseBolt
	data  atomic.Int64
	ticks atomic.Int64
}

func (b *tickCounterBolt) Prepare(TopologyContext, OutputCollector) {}

func (b *tickCounterBolt) Execute(t *Tuple) {
	if t.IsTick() {
		b.ticks.Add(1)
		return
	}
	b.data.Add(1)
}

func TestTickTuplesDelivered(t *testing.T) {
	bolt := &tickCounterBolt{}
	b := NewTopologyBuilder("ticks")
	b.SetSpout("src", func() Spout { return &countingSpout{limit: 10} }, 1, "n")
	b.SetBolt("sink", func() Bolt { return bolt }, 1).
		ShuffleGrouping("src").
		WithTickInterval(20 * time.Millisecond)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	deadline := time.Now().Add(3 * time.Second)
	for bolt.ticks.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := bolt.ticks.Load(); got < 3 {
		t.Fatalf("received %d ticks in 3s at 20ms interval", got)
	}
	if got := bolt.data.Load(); got != 10 {
		t.Fatalf("data tuples = %d, want 10", got)
	}
	// Ticks must not pollute the executed/acked statistics.
	snap := c.Snapshot()
	if got := snap.ComponentTasks("sink")[0].Executed; got != 10 {
		t.Fatalf("executed counter = %d, want 10 (ticks excluded)", got)
	}
	if got := snap.TotalAcked(); got != 10 {
		t.Fatalf("acked = %d, want 10", got)
	}
}

func TestTickMarkersAndHelpers(t *testing.T) {
	tick := NewTickTuple()
	if !tick.IsTick() {
		t.Fatal("NewTickTuple not a tick")
	}
	if NewTestTuple([]string{"a"}, 1).IsTick() {
		t.Fatal("regular tuple reported as tick")
	}
	if tick.SourceComponent != TickComponent {
		t.Fatal("tick component name wrong")
	}
}

func TestNegativeTickIntervalClampsToDisabled(t *testing.T) {
	bolt := &tickCounterBolt{}
	b := NewTopologyBuilder("noticks")
	b.SetSpout("src", func() Spout { return &countingSpout{limit: 5} }, 1, "n")
	b.SetBolt("sink", func() Bolt { return bolt }, 1).
		ShuffleGrouping("src").
		WithTickInterval(-time.Second)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	time.Sleep(30 * time.Millisecond)
	if got := bolt.ticks.Load(); got != 0 {
		t.Fatalf("disabled ticker delivered %d ticks", got)
	}
}
