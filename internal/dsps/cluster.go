package dsps

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ClusterConfig sizes the simulated cluster. Zero fields take the noted
// defaults.
type ClusterConfig struct {
	// Nodes is the number of simulated machines; default 3.
	Nodes int
	// CoresPerNode sets each machine's capacity for the interference
	// model; default 4.
	CoresPerNode int
	// QueueSize bounds each executor's input queue; default 1024.
	QueueSize int
	// AckTimeout fails spout roots not completed in time; default 5s.
	AckTimeout time.Duration
	// MaxSpoutPending caps un-acked roots per spout task (like Storm's
	// topology.max.spout.pending); default 4096.
	MaxSpoutPending int
	// Seed drives all engine randomness; default 1.
	Seed int64
	// Delayer models service time; default RealDelayer.
	Delayer Delayer
	// InterferenceAlpha scales how strongly node oversubscription inflates
	// service cost: factor = 1 + alpha·max(0, busy-cores)/cores.
	// Default 1.
	InterferenceAlpha float64
	// AckerShards is the number of lock stripes in the acker's pending
	// table, rounded up to a power of two; default 8.
	AckerShards int
	// BatchSize caps how many envelopes ride one data-plane batch; the
	// effective size is clamped to QueueSize. Default 32.
	BatchSize int
	// FlushInterval bounds how long a partially filled spout output batch
	// may wait before being flushed downstream; default 1ms. Keep it well
	// under Drain's 20ms settle window so quiescence detection stays
	// sound.
	FlushInterval time.Duration
	// RingSize enables the lock-free data plane (data plane v2): when
	// > 0, every producer→bolt hand-off uses a bounded SPSC ring of this
	// many batch slots instead of a shared input channel, and acker
	// shards switch to single-writer owner goroutines. The effective
	// capacity is clamped to at least QueueSize so a reserved push can
	// never fail. 0 (the default) keeps the channel plane.
	RingSize int
	// WaitStrategy picks how ring-plane consumers wait on empty rings:
	// "hybrid" (default: brief yield-spin, then park), "spin" (always
	// yield-spin; lowest latency, burns an idle core), or "park" (sleep
	// immediately; lowest idle cost). Ignored on the channel plane.
	WaitStrategy string
	// TraceSampleRate enables sampled per-tuple path tracing: the fraction
	// of anchored roots (by deterministic splitmix64 hash of the rootID)
	// whose spout→bolt span chains are recorded. 0 (the default) disables
	// tracing entirely — the hot path then pays only a nil check.
	TraceSampleRate float64
	// TraceBufferSize is the trace ring capacity in spans; default 4096
	// when tracing is enabled.
	TraceBufferSize int
	// Events receives structured control-plane events (submits,
	// rebalances, fault injections); nil disables event emission.
	Events EventSink
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 4
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 5 * time.Second
	}
	if c.MaxSpoutPending <= 0 {
		c.MaxSpoutPending = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Delayer == nil {
		c.Delayer = RealDelayer{}
	}
	if c.InterferenceAlpha == 0 {
		c.InterferenceAlpha = 1
	}
	if c.AckerShards <= 0 {
		c.AckerShards = 8
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = time.Millisecond
	}
	return c
}

// node is one simulated machine.
type node struct {
	id       string
	cores    int
	busy     atomic.Int64 // executors currently mid-execute
	executed atomic.Int64
}

// workerProc is one simulated worker process (a group of executors
// co-located on a node, like a Storm worker JVM).
type workerProc struct {
	id   string
	node *node
}

// PlacementStrategy selects how the scheduler assigns executors to
// workers.
type PlacementStrategy string

const (
	// PlaceRoundRobin interleaves tasks across workers (Storm's even
	// scheduler): each worker hosts a slice of every stage. Default.
	PlaceRoundRobin PlacementStrategy = "roundrobin"
	// PlaceBlocked assigns contiguous task blocks per worker: stages end
	// up concentrated on fewer workers, maximizing co-location — the
	// placement that stresses the interference model hardest.
	PlaceBlocked PlacementStrategy = "blocked"
)

// SubmitConfig controls topology placement.
type SubmitConfig struct {
	// Workers is the number of worker processes; default = cluster nodes.
	Workers int
	// Strategy selects the scheduler; default PlaceRoundRobin.
	Strategy PlacementStrategy
}

// Cluster hosts running topologies on a set of simulated nodes, playing
// the role Storm's Nimbus + supervisors play for the control framework.
// Multiple topologies share the nodes, so their workers interfere with
// each other through node capacity — the co-location scenario the paper's
// DRNN models.
type Cluster struct {
	cfg    ClusterConfig
	nodes  []*node
	faults *faultRegistry
	trace  *Trace
	events EventSink

	mu         sync.Mutex
	tops       []*runningTopology
	nextWorker int
	nextTask   int
}

// NewCluster builds a cluster with the given configuration.
func NewCluster(cfg ClusterConfig) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg, faults: newFaultRegistry(), events: cfg.Events}
	if cfg.TraceSampleRate > 0 {
		c.trace = newTrace(cfg.TraceSampleRate, cfg.TraceBufferSize)
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, &node{
			id:    fmt.Sprintf("node-%d", i),
			cores: cfg.CoresPerNode,
		})
	}
	return c
}

// Trace returns the cluster's sampled-tuple trace ring, or nil when
// ClusterConfig.TraceSampleRate is zero.
func (c *Cluster) Trace() *Trace { return c.trace }

// emit forwards one structured event to the configured sink, if any.
// Never called with cluster locks held.
func (c *Cluster) emit(level int, msg string, kv ...string) {
	if c.events != nil {
		c.events.Event(level, msg, kv...)
	}
}

// Config returns the effective (defaulted) cluster configuration.
func (c *Cluster) Config() ClusterConfig { return c.cfg }

// QueueSize returns the effective per-executor input-queue bound. It
// exists so control planes that only see the engine through an interface
// (local or remote transport) can read the one configuration value the
// planners need without shipping the whole ClusterConfig across a wire.
func (c *Cluster) QueueSize() int { return c.cfg.QueueSize }

// NodeIDs returns the simulated machine ids.
func (c *Cluster) NodeIDs() []string {
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.id
	}
	return out
}

// Submit schedules and starts a topology alongside any already running.
// Topology names must be unique among running topologies.
func (c *Cluster) Submit(t *Topology, sc SubmitConfig) error {
	workers, err := c.submitLocked(t, sc)
	if err != nil {
		return err
	}
	c.emit(EventInfo, "topology submitted",
		"topology", t.Name, "workers", strconv.Itoa(workers))
	return nil
}

// submitLocked does the schedule-and-start under the cluster lock and
// returns the effective worker count, so Submit can emit its event with
// the lock released.
func (c *Cluster) submitLocked(t *Topology, sc SubmitConfig) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rt := range c.tops {
		if rt.topo.Name == t.Name {
			return 0, fmt.Errorf("dsps: topology %q already running", t.Name)
		}
	}
	if sc.Workers <= 0 {
		sc.Workers = len(c.nodes)
	}
	switch sc.Strategy {
	case "", PlaceRoundRobin, PlaceBlocked:
	default:
		return 0, fmt.Errorf("dsps: unknown placement strategy %q", sc.Strategy)
	}
	rt, err := c.buildRuntime(t, sc)
	if err != nil {
		return 0, err
	}
	c.tops = append(c.tops, rt)
	rt.start()
	return sc.Workers, nil
}

// Topologies returns the names of running topologies in submit order.
func (c *Cluster) Topologies() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.tops))
	for i, rt := range c.tops {
		out[i] = rt.topo.Name
	}
	return out
}

// snapshotTops returns the current topology list.
func (c *Cluster) snapshotTops() []*runningTopology {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*runningTopology, len(c.tops))
	copy(out, c.tops)
	return out
}

// WorkerIDs returns the worker process ids of every running topology in
// scheduling order.
func (c *Cluster) WorkerIDs() []string {
	var out []string
	for _, rt := range c.snapshotTops() {
		for _, w := range rt.workers {
			out = append(out, w.id)
		}
	}
	return out
}

// TopologyWorkerIDs returns one topology's worker ids, or nil if it is
// not running.
func (c *Cluster) TopologyWorkerIDs(name string) []string {
	for _, rt := range c.snapshotTops() {
		if rt.topo.Name != name {
			continue
		}
		out := make([]string, len(rt.workers))
		for i, w := range rt.workers {
			out[i] = w.id
		}
		return out
	}
	return nil
}

// InjectFault applies a fault to a worker at runtime.
func (c *Cluster) InjectFault(workerID string, f Fault) error {
	if !c.workerExists(workerID) {
		return fmt.Errorf("dsps: unknown worker %q", workerID)
	}
	if err := c.faults.set(workerID, f); err != nil {
		return err
	}
	c.emit(EventWarn, "fault injected",
		"worker", workerID,
		"slowdown", strconv.FormatFloat(f.Slowdown, 'g', -1, 64),
		"drop_prob", strconv.FormatFloat(f.DropProb, 'g', -1, 64),
		"fail_prob", strconv.FormatFloat(f.FailProb, 'g', -1, 64),
		"stall", strconv.FormatBool(f.Stall))
	return nil
}

// ClearFault removes any fault on a worker.
func (c *Cluster) ClearFault(workerID string) {
	c.faults.clear(workerID)
	c.emit(EventInfo, "fault cleared", "worker", workerID)
}

func (c *Cluster) workerExists(workerID string) bool {
	for _, rt := range c.snapshotTops() {
		for _, w := range rt.workers {
			if w.id == workerID {
				return true
			}
		}
	}
	return false
}

// PauseSpouts stops every topology's spouts from emitting new tuples
// (in-flight tuples continue draining).
func (c *Cluster) PauseSpouts() {
	for _, rt := range c.snapshotTops() {
		rt.spoutsPaused.Store(true)
	}
}

// ResumeSpouts re-enables spout emission everywhere.
func (c *Cluster) ResumeSpouts() {
	for _, rt := range c.snapshotTops() {
		rt.spoutsPaused.Store(false)
	}
}

// Drain waits until every topology is stably quiescent — every queue
// empty, no root in flight, and no counter progress for a settle window —
// or the timeout elapses, and reports whether it drained. Spouts are not
// paused: finite spouts drain naturally once exhausted; callers with
// unbounded or rate-limited spouts should PauseSpouts first, otherwise
// Drain can only time out (or return between widely spaced emissions).
// After a successful drain of a finite workload, counters satisfy exact
// conservation invariants.
func (c *Cluster) Drain(timeout time.Duration) bool {
	tops := c.snapshotTops()
	if len(tops) == 0 {
		return true
	}
	quiescent := func() bool {
		for _, rt := range tops {
			if !rt.quiescent() {
				return false
			}
		}
		return true
	}
	progress := func() int64 {
		var total int64
		for _, rt := range tops {
			total += rt.progress()
		}
		return total
	}
	const settle = 20 * time.Millisecond
	deadline := time.Now().Add(timeout)
	lastProgress := int64(-1)
	var stableSince time.Time
	for time.Now().Before(deadline) {
		if quiescent() {
			p := progress()
			now := time.Now()
			if p != lastProgress {
				lastProgress = p
				stableSince = now
			} else if now.Sub(stableSince) >= settle {
				return true
			}
		} else {
			lastProgress = -1
		}
		time.Sleep(time.Millisecond)
	}
	return quiescent()
}

// ShutdownTopology stops one topology by name, waiting for its executors
// to exit.
func (c *Cluster) ShutdownTopology(name string) error {
	c.mu.Lock()
	var victim *runningTopology
	for i, rt := range c.tops {
		if rt.topo.Name == name {
			victim = rt
			c.tops = append(c.tops[:i], c.tops[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	if victim == nil {
		return fmt.Errorf("dsps: topology %q not running", name)
	}
	victim.stop()
	c.emit(EventInfo, "topology shutdown", "topology", name)
	return nil
}

// Rebalance stops one topology and resubmits it with a new placement
// (worker count and/or strategy), mirroring Storm's rebalance command.
// In-flight tuples are given drainTimeout to complete (spouts are paused
// for the drain; un-drained tuples are lost exactly as in Storm's
// stop-the-world rebalance). Groupings — including dynamic-grouping
// handles held by a controller — belong to the Topology and survive the
// resubmission.
func (c *Cluster) Rebalance(name string, sc SubmitConfig, drainTimeout time.Duration) error {
	c.mu.Lock()
	var victim *runningTopology
	for _, rt := range c.tops {
		if rt.topo.Name == name {
			victim = rt
			break
		}
	}
	c.mu.Unlock()
	if victim == nil {
		return fmt.Errorf("dsps: topology %q not running", name)
	}
	victim.spoutsPaused.Store(true)
	if drainTimeout > 0 {
		deadline := time.Now().Add(drainTimeout)
		for time.Now().Before(deadline) && !victim.quiescent() {
			time.Sleep(time.Millisecond)
		}
	}
	if err := c.ShutdownTopology(name); err != nil {
		return err
	}
	if err := c.Submit(victim.topo, sc); err != nil {
		return err
	}
	c.emit(EventInfo, "topology rebalanced",
		"topology", name, "strategy", string(sc.Strategy))
	return nil
}

// Shutdown stops every running topology, waiting for executors to exit.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	tops := c.tops
	c.tops = nil
	c.mu.Unlock()
	for _, rt := range tops {
		rt.stop()
	}
}

// Snapshot captures the current metrics of every running topology. It is
// safe to call concurrently with execution.
func (c *Cluster) Snapshot() *Snapshot {
	tops := c.snapshotTops()
	snap := &Snapshot{At: time.Now()}
	perWorker := map[string]*WorkerStats{}
	var workerOrder []string
	for _, rt := range tops {
		for _, w := range rt.workers {
			ws := &WorkerStats{WorkerID: w.id, NodeID: w.node.id, Slowdown: 1}
			if f, ok := c.faults.get(w.id); ok {
				ws.Slowdown = f.Slowdown
				ws.Misbehaving = true
			}
			perWorker[w.id] = ws
			workerOrder = append(workerOrder, w.id)
		}
		rt.tasksMu.RLock()
		stats := make([]TaskStats, 0, len(rt.tasks)+len(rt.retired))
		for _, t := range rt.tasks {
			stats = append(stats, rt.taskStats(t))
		}
		// Retired (scaled-down) tasks keep their frozen counters in the
		// snapshot so per-task series stay monotone and component/worker
		// aggregates remain comparable across scale events.
		stats = append(stats, rt.retired...)
		rt.tasksMu.RUnlock()
		for _, ts := range stats {
			snap.Tasks = append(snap.Tasks, ts)
			ws := perWorker[ts.WorkerID]
			ws.Tasks = append(ws.Tasks, ts)
			ws.Executed += ts.Executed
			ws.Emitted += ts.Emitted
			ws.ExecLatency += ts.ExecLatency
			ws.QueueLen += ts.QueueLen
		}
		snap.Scale = append(snap.Scale, ScaleStats{
			Topology:   rt.topo.Name,
			Ups:        rt.scaleUps.Load(),
			Downs:      rt.scaleDowns.Load(),
			RouteEpoch: rt.routeEpoch.Load(),
			Retired:    countRetired(stats),
		})
		pending := rt.acker.shardPending()
		inflight := 0
		for _, p := range pending {
			inflight += p
		}
		snap.Acker = append(snap.Acker, AckerStats{
			Topology:     rt.topo.Name,
			InFlight:     inflight,
			ShardPending: pending,
		})
	}
	for _, id := range workerOrder {
		snap.Workers = append(snap.Workers, *perWorker[id])
	}
	for _, n := range c.nodes {
		ns := NodeStats{
			NodeID:   n.id,
			Cores:    n.cores,
			Executed: n.executed.Load(),
			Busy:     int(n.busy.Load()),
		}
		for _, id := range workerOrder {
			if perWorker[id].NodeID == n.id {
				ns.Workers = append(ns.Workers, id)
			}
		}
		snap.Nodes = append(snap.Nodes, ns)
	}
	snap.Components = buildComponentStats(snap.Tasks)
	return snap
}

// taskStats captures one task's counters. Callers hold rt.tasksMu (any
// side) or otherwise own the task (retireTask, after the executor exited).
func (rt *runningTopology) taskStats(t *task) TaskStats {
	ts := TaskStats{
		TaskID:          t.id,
		Topology:        rt.topo.Name,
		Component:       t.component,
		TaskIndex:       t.index,
		WorkerID:        t.worker.id,
		NodeID:          t.worker.node.id,
		IsSpout:         t.spout != nil,
		Executed:        t.counters.executed.Load(),
		Emitted:         t.counters.emitted.Load(),
		Acked:           t.counters.acked.Load(),
		Failed:          t.counters.failed.Load(),
		Dropped:         t.counters.dropped.Load(),
		ExecLatency:     time.Duration(t.counters.execNanos.Load()),
		QueueLatency:    time.Duration(t.counters.queueNanos.Load()),
		CompleteLatency: time.Duration(t.counters.completeNs.Load()),
		ExecHist:        t.counters.execHist.snapshot(),
		CompleteHist:    t.counters.completeHist.snapshot(),

		Batches:           t.counters.batches.Load(),
		BackpressureWaits: t.counters.bpWaits.Load(),
	}
	if t.bolt != nil {
		// queued is reservation-accurate: 0 ≤ queued ≤ QueueSize, on
		// either data plane.
		ts.QueueLen = int(t.queued.Load())
		ts.RingDepth = t.ringDepth()
		ts.RingParks = t.counters.ringParks.Load()
	}
	return ts
}

func countRetired(stats []TaskStats) int {
	n := 0
	for _, ts := range stats {
		if ts.Retired {
			n++
		}
	}
	return n
}

// InFlight returns the number of tracked, incomplete spout roots across
// every topology.
func (c *Cluster) InFlight() int {
	total := 0
	for _, rt := range c.snapshotTops() {
		total += rt.acker.inFlight()
	}
	return total
}
