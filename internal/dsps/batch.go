package dsps

// Data-plane batching support: tuple arenas and batch-slice free lists.
// Together they make the steady-state emit/execute path allocation-free —
// tuples come out of chunked arenas (amortized one allocation per
// arenaChunk tuples) and the []envelope / []ackResult batches that ride
// the executor channels are recycled through free lists.

// arenaChunk is how many Tuples a tupleArena allocates at once.
const arenaChunk = 256

// tupleArena hands out Tuples from a chunk, never reusing one: bolts may
// legally retain *Tuple past Execute (anchoring, windowing), so individual
// tuples cannot be recycled. Chunking still amortizes the allocation to
// 1/arenaChunk per tuple, and a retained tuple merely keeps its chunk
// alive until the GC collects it. Owned by a single executor goroutine.
type tupleArena struct {
	chunk []Tuple
	next  int
}

// get returns a zeroed *Tuple; the caller initializes every field it
// needs.
//
//dsps:hotpath
//dsps:allocs arena refill: one chunk allocation amortized over arenaChunk tuples
func (a *tupleArena) get() *Tuple {
	if a.next == len(a.chunk) {
		a.chunk = make([]Tuple, arenaChunk)
		a.next = 0
	}
	t := &a.chunk[a.next]
	a.next++
	return t
}

// envBatch is a struct-of-arrays batch of tuples in transit: a dense
// array of tuple pointers and a parallel array of their (coarse-clock)
// enqueue timestamps. The SoA split keeps the hand-off payload two flat
// arrays — the consumer walks tuples and timestamps as independent
// streams, and a batch header is just two slice headers, small enough to
// ride an SPSC ring slot by value.
type envBatch struct {
	tuples []*Tuple
	ns     []int64
}

// add appends one tuple to the batch.
//
//dsps:hotpath
//dsps:allocs batch growth: free-listed slices retain capacity, append grows only on first fill
func (b *envBatch) add(t *Tuple, enqueuedNs int64) {
	b.tuples = append(b.tuples, t)
	b.ns = append(b.ns, enqueuedNs)
}

// size returns the number of tuples in the batch.
//
//dsps:hotpath
func (b envBatch) size() int { return len(b.tuples) }

// freeListCap bounds how many idle batch slices each free list retains;
// overflow is dropped to the GC.
const freeListCap = 256

// freeLists recycles the batch slices flowing through the data plane
// (channels or rings). Gets and puts are non-blocking channel operations,
// so they are safe from any goroutine and never alloc on the Put side
// (unlike sync.Pool, whose interface conversion boxes the payload).
type freeLists struct {
	envs chan envBatch
	acks chan []ackResult
}

func newFreeLists() *freeLists {
	return &freeLists{
		envs: make(chan envBatch, freeListCap),
		acks: make(chan []ackResult, freeListCap),
	}
}

// getEnvs returns an empty batch with at least its previous capacity,
// falling back to a fresh allocation of capHint.
//
//dsps:hotpath
//dsps:allocs free-list miss fallback: fresh batch slices only when the list runs dry
func (f *freeLists) getEnvs(capHint int) envBatch {
	select {
	case b := <-f.envs:
		return envBatch{tuples: b.tuples[:0], ns: b.ns[:0]}
	default:
		return envBatch{
			tuples: make([]*Tuple, 0, capHint),
			ns:     make([]int64, 0, capHint),
		}
	}
}

// putEnvs recycles a batch, clearing tuple pointers so a parked slice
// does not pin arena chunks.
//
//dsps:hotpath
func (f *freeLists) putEnvs(b envBatch) {
	if cap(b.tuples) == 0 {
		return
	}
	for i := range b.tuples {
		b.tuples[i] = nil
	}
	select {
	case f.envs <- b:
	default:
	}
}

// getAcks is on the per-tuple data plane.
//
//dsps:hotpath
//dsps:allocs free-list miss fallback: fresh ack slices only when the list runs dry
func (f *freeLists) getAcks(capHint int) []ackResult {
	select {
	case b := <-f.acks:
		return b[:0]
	default:
		return make([]ackResult, 0, capHint)
	}
}

// putAcks is on the per-tuple data plane.
//
//dsps:hotpath
func (f *freeLists) putAcks(b []ackResult) {
	if cap(b) == 0 {
		return
	}
	for i := range b {
		b[i] = ackResult{}
	}
	select {
	case f.acks <- b:
	default:
	}
}
