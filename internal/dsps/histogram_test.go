package dsps

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHistObserveBuckets(t *testing.T) {
	var h latencyHist
	h.observe(0)                    // bucket 0
	h.observe(63 * time.Nanosecond) // bucket 0
	h.observe(64 * time.Nanosecond) // bucket 1
	h.observe(time.Millisecond)
	h.observe(time.Hour) // clamps to last bucket
	counts := h.snapshot()
	if counts[0] != 2 {
		t.Fatalf("bucket 0 = %d", counts[0])
	}
	if counts[1] != 1 {
		t.Fatalf("bucket 1 = %d", counts[1])
	}
	if counts[histBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d", counts[histBuckets-1])
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 5 {
		t.Fatalf("total = %d", total)
	}
	h.observe(-time.Second) // negative clamps to 0
	if h.snapshot()[0] != 3 {
		t.Fatal("negative sample not clamped into bucket 0")
	}
}

func TestHistogramQuantileBasics(t *testing.T) {
	if got := HistogramQuantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	if got := HistogramQuantile([]int64{1}, 0); got != 0 {
		t.Fatalf("q=0 = %v", got)
	}
	if got := HistogramQuantile([]int64{1}, 1.5); got != 0 {
		t.Fatalf("q>1 = %v", got)
	}
	var h latencyHist
	for i := 0; i < 1000; i++ {
		h.observe(time.Millisecond)
	}
	p50 := HistogramQuantile(h.snapshot(), 0.5)
	// 1ms falls in a bucket spanning [~0.52ms, ~1.05ms); the estimate must
	// land within that factor-of-2 band.
	if p50 < 500*time.Microsecond || p50 > 1100*time.Microsecond {
		t.Fatalf("p50 of 1ms point mass = %v", p50)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h latencyHist
	for i := 0; i < 900; i++ {
		h.observe(time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		h.observe(100 * time.Millisecond)
	}
	counts := h.snapshot()
	p50 := HistogramQuantile(counts, 0.5)
	p95 := HistogramQuantile(counts, 0.95)
	p999 := HistogramQuantile(counts, 0.999)
	if !(p50 < p95 && p95 <= p999) {
		t.Fatalf("quantiles not monotone: %v %v %v", p50, p95, p999)
	}
	// The tail must reflect the slow mode.
	if p999 < 50*time.Millisecond {
		t.Fatalf("p99.9 = %v, want the 100ms mode", p999)
	}
	if p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want the 1ms mode", p50)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var single latencyHist
	single.observe(time.Millisecond)
	var multi latencyHist
	for i := 0; i < 10; i++ {
		multi.observe(time.Millisecond)
	}
	multi.observe(100 * time.Millisecond)
	// 1ms lands in [524288ns, 1048576ns); 100ms in [~67.1ms, ~134.2ms).
	cases := []struct {
		name   string
		counts []int64
		q      float64
		lo, hi time.Duration
	}{
		{"single sample q=1", single.snapshot(), 1, 500 * time.Microsecond, 1100 * time.Microsecond},
		{"single sample q near 0", single.snapshot(), 0.001, 500 * time.Microsecond, 1100 * time.Microsecond},
		{"single sample q=0.5", single.snapshot(), 0.5, 500 * time.Microsecond, 1100 * time.Microsecond},
		{"q=1 selects last occupied bucket", multi.snapshot(), 1, 50 * time.Millisecond, 200 * time.Millisecond},
		// rank(0.999 × 11) = 10: the last sample below the tail mode, so
		// only q = 1 exactly reaches the 100ms outlier.
		{"q just below 1 stays in dominant bucket", multi.snapshot(), 0.999, 500 * time.Microsecond, 1100 * time.Microsecond},
	}
	for _, tc := range cases {
		got := HistogramQuantile(tc.counts, tc.q)
		if got < tc.lo || got > tc.hi {
			t.Errorf("%s: quantile = %v, want in [%v, %v]", tc.name, got, tc.lo, tc.hi)
		}
	}
	// q=1 must never fall through to the overflow bucket's upper bound
	// when the population sits in lower buckets (rank clamp).
	_, overflowHi := bucketBounds(histBuckets - 1)
	if got := HistogramQuantile(single.snapshot(), 1); got >= overflowHi {
		t.Fatalf("q=1 of single sample hit overflow bound %v", got)
	}
}

func TestPropertyQuantileWithinBucketBounds(t *testing.T) {
	// For any single-value histogram, every quantile lands within a
	// factor of 2 of the observed value (bucket resolution).
	f := func(usRaw uint32, qRaw uint8) bool {
		us := int(usRaw%100000) + 1
		d := time.Duration(us) * time.Microsecond
		q := (float64(qRaw%100) + 1) / 100 // (0, 1] inclusive of q = 1
		var h latencyHist
		for i := 0; i < 10; i++ {
			h.observe(d)
		}
		got := HistogramQuantile(h.snapshot(), q)
		return got <= 2*d && got*2 >= d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeHistograms(t *testing.T) {
	var a, b latencyHist
	a.observe(time.Millisecond)
	b.observe(time.Millisecond)
	b.observe(time.Second)
	merged := MergeHistograms(a.snapshot(), b.snapshot())
	var total int64
	for _, c := range merged {
		total += c
	}
	if total != 3 {
		t.Fatalf("merged total = %d", total)
	}
	if len(MergeHistograms()) != histBuckets {
		t.Fatal("empty merge shape wrong")
	}
}

func TestSnapshotCarriesHistograms(t *testing.T) {
	spout := &countingSpout{limit: 100}
	b := NewTopologyBuilder("hist")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	snap := c.Snapshot()
	sink := snap.ComponentTasks("sink")[0]
	var execSamples int64
	for _, v := range sink.ExecHist {
		execSamples += v
	}
	if execSamples != 100 {
		t.Fatalf("exec histogram has %d samples, want 100", execSamples)
	}
	if sink.ExecQuantile(0.5) < 0 {
		t.Fatal("negative quantile")
	}
	src := snap.ComponentTasks("src")[0]
	var completeSamples int64
	for _, v := range src.CompleteHist {
		completeSamples += v
	}
	if completeSamples != 100 {
		t.Fatalf("complete histogram has %d samples, want 100", completeSamples)
	}
	if q := snap.CompleteQuantile(0.99); q <= 0 {
		t.Fatalf("cluster complete p99 = %v", q)
	}
}
