package dsps

import (
	"testing"
	"time"
)

// testAcker builds an acker on the real clock with a handful of shards so
// tests exercise the striped table.
func testAcker(timeout time.Duration) *acker {
	return newAcker(timeout, 4, nil)
}

func TestAckerLinearChainCompletes(t *testing.T) {
	a := testAcker(time.Minute)
	// Spout emits edge e1; bolt A consumes e1 and produces e2; bolt B
	// consumes e2 and produces nothing.
	const root, e1, e2 = 100, 11, 22
	a.register(root, e1, "m1", 0, 0)
	if _, done := a.transition(root, e1, []uint64{e2}); done {
		t.Fatal("completed before leaf acked")
	}
	r, done := a.transition(root, e2, nil)
	if !done || !r.ok || r.msgID != "m1" {
		t.Fatalf("result = %+v, done = %v", r, done)
	}
	if a.inFlight() != 0 {
		t.Fatal("entry not removed after completion")
	}
}

func TestAckerOutOfOrderTransitions(t *testing.T) {
	// The XOR tree is order-independent: the downstream ack may arrive
	// before the upstream transition that created its edge.
	a := testAcker(time.Minute)
	const root, e1, e2 = 200, 31, 32
	a.register(root, e1, "m", 0, 0)
	if _, done := a.transition(root, e2, nil); done { // leaf acks first
		t.Fatal("completed on leaf alone")
	}
	r, done := a.transition(root, e1, []uint64{e2}) // then the producer
	if !done || !r.ok {
		t.Fatalf("result = %+v, done = %v", r, done)
	}
}

func TestAckerFanOutTree(t *testing.T) {
	a := testAcker(time.Minute)
	// Spout emits two copies (e1, e2); each bolt copy emits two more.
	const root = 300
	edges := []uint64{1, 2, 3, 4, 5, 6}
	a.register(root, edges[0]^edges[1], "m", 0, 0)
	if _, done := a.transition(root, edges[0], []uint64{edges[2], edges[3]}); done {
		t.Fatal("completed early")
	}
	if _, done := a.transition(root, edges[1], []uint64{edges[4], edges[5]}); done {
		t.Fatal("completed early")
	}
	for i, leaf := range edges[2:] {
		r, done := a.transition(root, leaf, nil)
		if last := i == len(edges[2:])-1; done != last {
			t.Fatalf("leaf %d: done = %v", i, done)
		} else if last && (!r.ok || r.msgID != "m") {
			t.Fatalf("result = %+v", r)
		}
	}
}

func TestAckerExplicitFail(t *testing.T) {
	a := testAcker(time.Minute)
	a.register(1, 5, "m", 0, 3)
	r, done := a.fail(1)
	if !done || r.ok || r.spoutTID != 3 {
		t.Fatalf("result = %+v, done = %v", r, done)
	}
	// Late transitions for a failed root are ignored.
	if _, done := a.transition(1, 5, nil); done {
		t.Fatal("failed root completed again")
	}
	if _, done := a.fail(1); done {
		t.Fatal("failed root failed twice")
	}
}

func TestAckerTimeoutSweep(t *testing.T) {
	a := testAcker(10 * time.Millisecond)
	a.register(1, 5, "old", 0, 0)
	time.Sleep(20 * time.Millisecond)
	a.register(2, 6, "fresh", 0, 0)
	expired := a.sweep()
	if len(expired) != 1 {
		t.Fatalf("sweep failed %d roots, want 1", len(expired))
	}
	if expired[0].ok || expired[0].msgID != "old" {
		t.Fatalf("expired = %+v", expired[0])
	}
	if a.inFlight() != 1 {
		t.Fatalf("inFlight = %d, want the fresh root", a.inFlight())
	}
}

func TestAckerSweepDisabledWithoutTimeout(t *testing.T) {
	a := testAcker(0)
	a.register(1, 5, "m", 0, 0)
	if expired := a.sweep(); len(expired) != 0 {
		t.Fatalf("sweep with no timeout failed %d", len(expired))
	}
}

func TestAckerUnknownRootIgnored(t *testing.T) {
	a := testAcker(time.Minute)
	if _, done := a.transition(999, 1, nil); done {
		t.Fatal("unknown root completed")
	}
	if _, done := a.fail(999); done {
		t.Fatal("unknown root failed")
	}
}

func TestAckerLatencyMeasured(t *testing.T) {
	a := testAcker(time.Minute)
	stepNs := int64(0)
	a.nowNs = func() int64 {
		stepNs += int64(10 * time.Millisecond)
		return stepNs
	}
	a.register(1, 5, "m", 0, 0)        // now = +10ms
	r, done := a.transition(1, 5, nil) // now = +20ms
	if !done || r.latency != 10*time.Millisecond {
		t.Fatalf("latency = %v, done = %v", r.latency, done)
	}
}

func TestAckerShardsRoundUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		a := newAcker(time.Minute, tc.in, nil)
		if len(a.shards) != tc.want {
			t.Errorf("shards(%d) = %d, want %d", tc.in, len(a.shards), tc.want)
		}
	}
}

func TestAckerRootsSpreadAcrossShards(t *testing.T) {
	a := newAcker(time.Minute, 4, nil)
	for root := uint64(1); root <= 64; root++ {
		a.register(root, root*7, root, 0, 0)
	}
	if a.inFlight() != 64 {
		t.Fatalf("inFlight = %d, want 64", a.inFlight())
	}
	occupied := 0
	for i := range a.shards {
		if len(a.shards[i].pending) > 0 {
			occupied++
		}
	}
	if occupied != len(a.shards) {
		t.Fatalf("sequential roots occupy %d/%d shards", occupied, len(a.shards))
	}
	for root := uint64(1); root <= 64; root++ {
		if _, done := a.transition(root, root*7, nil); !done {
			t.Fatalf("root %d did not complete", root)
		}
	}
	if a.inFlight() != 0 {
		t.Fatalf("inFlight = %d after completing all", a.inFlight())
	}
}
