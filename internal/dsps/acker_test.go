package dsps

import (
	"sync"
	"testing"
	"time"
)

// collectAcks builds an acker whose results land in a slice.
func collectAcks(timeout time.Duration) (*acker, *[]ackResult, *sync.Mutex) {
	var mu sync.Mutex
	var got []ackResult
	a := newAcker(timeout, func(r ackResult) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	return a, &got, &mu
}

func TestAckerLinearChainCompletes(t *testing.T) {
	a, got, mu := collectAcks(time.Minute)
	// Spout emits edge e1; bolt A consumes e1 and produces e2; bolt B
	// consumes e2 and produces nothing.
	const root, e1, e2 = 100, 11, 22
	a.register(root, e1, "m1", 0)
	a.transition(root, e1, []uint64{e2})
	mu.Lock()
	n := len(*got)
	mu.Unlock()
	if n != 0 {
		t.Fatal("completed before leaf acked")
	}
	a.transition(root, e2, nil)
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 1 || !(*got)[0].ok || (*got)[0].msgID != "m1" {
		t.Fatalf("results = %+v", *got)
	}
	if a.inFlight() != 0 {
		t.Fatal("entry not removed after completion")
	}
}

func TestAckerOutOfOrderTransitions(t *testing.T) {
	// The XOR tree is order-independent: the downstream ack may arrive
	// before the upstream transition that created its edge.
	a, got, mu := collectAcks(time.Minute)
	const root, e1, e2 = 200, 31, 32
	a.register(root, e1, "m", 0)
	a.transition(root, e2, nil)          // leaf acks first
	a.transition(root, e1, []uint64{e2}) // then the producer
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 1 || !(*got)[0].ok {
		t.Fatalf("results = %+v", *got)
	}
}

func TestAckerFanOutTree(t *testing.T) {
	a, got, mu := collectAcks(time.Minute)
	// Spout emits two copies (e1, e2); each bolt copy emits two more.
	const root = 300
	edges := []uint64{1, 2, 3, 4, 5, 6}
	a.register(root, edges[0]^edges[1], "m", 0)
	a.transition(root, edges[0], []uint64{edges[2], edges[3]})
	a.transition(root, edges[1], []uint64{edges[4], edges[5]})
	for _, leaf := range edges[2:] {
		mu.Lock()
		if len(*got) != 0 {
			mu.Unlock()
			t.Fatal("completed early")
		}
		mu.Unlock()
		a.transition(root, leaf, nil)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 1 || !(*got)[0].ok {
		t.Fatalf("results = %+v", *got)
	}
}

func TestAckerExplicitFail(t *testing.T) {
	a, got, mu := collectAcks(time.Minute)
	a.register(1, 5, "m", 3)
	a.fail(1)
	mu.Lock()
	if len(*got) != 1 || (*got)[0].ok || (*got)[0].spoutTID != 3 {
		mu.Unlock()
		t.Fatalf("results = %+v", *got)
	}
	mu.Unlock()
	// Late transitions for a failed root are ignored.
	a.transition(1, 5, nil)
	a.fail(1)
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 1 {
		t.Fatal("failed root delivered twice")
	}
}

func TestAckerTimeoutSweep(t *testing.T) {
	a, got, mu := collectAcks(10 * time.Millisecond)
	a.register(1, 5, "old", 0)
	time.Sleep(20 * time.Millisecond)
	a.register(2, 6, "fresh", 0)
	n := a.sweep()
	if n != 1 {
		t.Fatalf("sweep failed %d roots, want 1", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 1 || (*got)[0].ok || (*got)[0].msgID != "old" {
		t.Fatalf("results = %+v", *got)
	}
	if a.inFlight() != 1 {
		t.Fatalf("inFlight = %d, want the fresh root", a.inFlight())
	}
}

func TestAckerSweepDisabledWithoutTimeout(t *testing.T) {
	a, _, _ := collectAcks(0)
	a.register(1, 5, "m", 0)
	if n := a.sweep(); n != 0 {
		t.Fatalf("sweep with no timeout failed %d", n)
	}
}

func TestAckerUnknownRootIgnored(t *testing.T) {
	a, got, mu := collectAcks(time.Minute)
	a.transition(999, 1, nil)
	a.fail(999)
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 0 {
		t.Fatalf("unknown root produced results: %+v", *got)
	}
}

func TestAckerLatencyMeasured(t *testing.T) {
	a, got, mu := collectAcks(time.Minute)
	base := time.Now()
	step := 0
	a.now = func() time.Time {
		step++
		return base.Add(time.Duration(step) * 10 * time.Millisecond)
	}
	a.register(1, 5, "m", 0) // now = +10ms
	a.transition(1, 5, nil)  // now = +20ms
	mu.Lock()
	defer mu.Unlock()
	if (*got)[0].latency != 10*time.Millisecond {
		t.Fatalf("latency = %v", (*got)[0].latency)
	}
}
