// Chaos soak: replays a seeded random fault timeline against a live
// three-stage topology while the chaos package's invariant checker watches
// tuple conservation, acker quiescence, monotone counters, and queue
// bounds. Lives in dsps_test because the chaos package imports dsps.
package dsps_test

import (
	"os"
	"strconv"
	"testing"
	"time"

	"predstream/internal/chaos"
	"predstream/internal/dsps"
)

// soakEngineTopology is src(2) -> mid(2) -> sink(3) with anchored
// emissions and fresh component instances per factory call, so rebalances
// can rebuild it.
func soakEngineTopology(t *testing.T) *dsps.Topology {
	t.Helper()
	b := dsps.NewTopologyBuilder("engine-soak")
	b.SetSpout("src", func() dsps.Spout {
		var col dsps.SpoutCollector
		n := 0
		return &dsps.SpoutFunc{
			OpenFn: func(_ dsps.TopologyContext, c dsps.SpoutCollector) { col = c },
			NextFn: func() bool {
				col.Emit(dsps.Values{n}, n)
				n++
				return true
			},
		}
	}, 2, "n")
	b.SetBolt("mid", func() dsps.Bolt {
		return &dsps.BoltFunc{ExecuteFn: func(tp *dsps.Tuple, c dsps.OutputCollector) {
			c.Emit(dsps.Values{tp.Values[0]})
		}}
	}, 2, "n").ShuffleGrouping("src")
	b.SetBolt("sink", func() dsps.Bolt { return &dsps.BoltFunc{} }, 3).
		FieldsGrouping("mid", "n")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestChaosSoakEngine runs ~1.2s of generated chaos (faults, rebalances, a
// mid-run checkpoint, a pause/resume pair) by default; CHAOS_SOAK_SECONDS
// stretches the horizon for `make soak`. Any violation reproduces from the
// printed seed.
func TestChaosSoakEngine(t *testing.T) {
	runChaosSoak(t, dsps.ClusterConfig{
		Nodes:           2,
		QueueSize:       64,
		MaxSpoutPending: 128,
		AckTimeout:      300 * time.Millisecond,
		Delayer:         dsps.NopDelayer{},
		Seed:            7,
	})
}

// TestChaosSoakEngineBatched re-runs the soak with explicit data-plane
// knobs (small batches, sub-millisecond flush, a non-default shard count)
// so the invariant checker audits the batching path itself, not just the
// engine defaults.
func TestChaosSoakEngineBatched(t *testing.T) {
	runChaosSoak(t, dsps.ClusterConfig{
		Nodes:           2,
		QueueSize:       64,
		MaxSpoutPending: 128,
		AckTimeout:      300 * time.Millisecond,
		Delayer:         dsps.NopDelayer{},
		Seed:            11,
		AckerShards:     2,
		BatchSize:       16,
		FlushInterval:   200 * time.Microsecond,
	})
}

// TestChaosSoakEngineRings re-runs the soak on the SPSC ring data plane
// (data plane v2: per-producer rings, single-writer acker owners, SoA
// batches) so the invariant checker audits ring attach/retire under
// faults, rebalances and pause/resume — not just the channel plane.
func TestChaosSoakEngineRings(t *testing.T) {
	runChaosSoak(t, dsps.ClusterConfig{
		Nodes:           2,
		QueueSize:       64,
		MaxSpoutPending: 128,
		AckTimeout:      300 * time.Millisecond,
		Delayer:         dsps.NopDelayer{},
		Seed:            13,
		AckerShards:     2,
		BatchSize:       16,
		FlushInterval:   200 * time.Microsecond,
		RingSize:        16,
		WaitStrategy:    "hybrid",
	})
}

func runChaosSoak(t *testing.T, cfg dsps.ClusterConfig) {
	horizon := 1200 * time.Millisecond
	events := 16
	if s := os.Getenv("CHAOS_SOAK_SECONDS"); s != "" {
		if sec, err := strconv.Atoi(s); err == nil && sec > 0 {
			horizon = time.Duration(sec) * time.Second
			events = 8 * sec
		}
	}
	topo := soakEngineTopology(t)
	c := dsps.NewCluster(cfg)
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	script := chaos.Generate(cfg.Seed, chaos.GenConfig{
		Events:  events,
		Horizon: horizon,
		Workers: 4,
		Stall:   true, Rebalance: true, Checkpoint: true, Pause: true,
	})
	rep, err := chaos.Run(c, script, chaos.Options{SpoutComponents: topo.Spouts()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("chaos soak violated engine invariants:\n%s", rep)
	}
	if !rep.Drained {
		t.Fatalf("cluster failed to quiesce after chaos:\n%s", rep)
	}
	t.Logf("clean: %s", rep)
}
