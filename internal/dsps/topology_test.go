package dsps

import (
	"strings"
	"testing"
)

func dummySpout() Spout { return &SpoutFunc{} }
func dummyBolt() Bolt   { return &BoltFunc{} }

func TestBuildValidTopology(t *testing.T) {
	b := NewTopologyBuilder("demo")
	b.SetSpout("src", dummySpout, 2, "word")
	b.SetBolt("mid", dummyBolt, 3, "word").ShuffleGrouping("src")
	b.SetBolt("sink", dummyBolt, 1).FieldsGrouping("mid", "word")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.Components(); len(got) != 3 || got[0] != "src" {
		t.Fatalf("Components = %v", got)
	}
	if topo.Parallelism("mid") != 3 || topo.Parallelism("nope") != 0 {
		t.Fatal("Parallelism lookup wrong")
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *TopologyBuilder
		want  string
	}{
		{"no spouts", func() *TopologyBuilder {
			b := NewTopologyBuilder("x")
			b.SetBolt("b", dummyBolt, 1).ShuffleGrouping("ghost")
			return b
		}, "no spouts"},
		{"empty spout name", func() *TopologyBuilder {
			b := NewTopologyBuilder("x")
			b.SetSpout("", dummySpout, 1)
			return b
		}, "empty spout name"},
		{"nil spout factory", func() *TopologyBuilder {
			b := NewTopologyBuilder("x")
			b.SetSpout("s", nil, 1)
			return b
		}, "nil factory"},
		{"bad parallelism", func() *TopologyBuilder {
			b := NewTopologyBuilder("x")
			b.SetSpout("s", dummySpout, 0)
			return b
		}, "parallelism"},
		{"duplicate name", func() *TopologyBuilder {
			b := NewTopologyBuilder("x")
			b.SetSpout("s", dummySpout, 1)
			b.SetBolt("s", dummyBolt, 1).ShuffleGrouping("s")
			return b
		}, "duplicate"},
		{"unknown source", func() *TopologyBuilder {
			b := NewTopologyBuilder("x")
			b.SetSpout("s", dummySpout, 1)
			b.SetBolt("b", dummyBolt, 1).ShuffleGrouping("ghost")
			return b
		}, "unknown component"},
		{"no subscription", func() *TopologyBuilder {
			b := NewTopologyBuilder("x")
			b.SetSpout("s", dummySpout, 1)
			b.SetBolt("b", dummyBolt, 1)
			return b
		}, "subscribes to nothing"},
		{"self subscription", func() *TopologyBuilder {
			b := NewTopologyBuilder("x")
			b.SetSpout("s", dummySpout, 1)
			b.SetBolt("b", dummyBolt, 1).ShuffleGrouping("b")
			return b
		}, "itself"},
		{"fields grouping without fields", func() *TopologyBuilder {
			b := NewTopologyBuilder("x")
			b.SetSpout("s", dummySpout, 1)
			b.SetBolt("b", dummyBolt, 1).FieldsGrouping("s")
			return b
		}, "no fields"},
		{"nil custom grouping", func() *TopologyBuilder {
			b := NewTopologyBuilder("x")
			b.SetSpout("s", dummySpout, 1)
			b.SetBolt("b", dummyBolt, 1).CustomGrouping("s", nil)
			return b
		}, "custom grouping is nil"},
		{"cycle", func() *TopologyBuilder {
			b := NewTopologyBuilder("x")
			b.SetSpout("s", dummySpout, 1)
			b.SetBolt("b1", dummyBolt, 1, "f").ShuffleGrouping("s").ShuffleGrouping("b2")
			b.SetBolt("b2", dummyBolt, 1, "f").ShuffleGrouping("b1")
			return b
		}, "cycle"},
	}
	for _, tc := range cases {
		_, err := tc.build().Build()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestDynamicGroupingDeclarerReturnsHandle(t *testing.T) {
	b := NewTopologyBuilder("x")
	b.SetSpout("s", dummySpout, 1, "v")
	g := b.SetBolt("b", dummyBolt, 2).DynamicGrouping("s")
	if g == nil {
		t.Fatal("nil grouping handle")
	}
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRatios([]float64{1, 3}); err != nil {
		t.Fatal(err)
	}
}
