package dsps

import (
	"runtime"

	"predstream/internal/ring"
)

// Ring data plane (data plane v2): when ClusterConfig.RingSize > 0 every
// producer→bolt hand-off is a dedicated bounded SPSC ring instead of the
// bolt's shared input channel. Producers attach a private ring to the
// target on first send and keep pushing into it for the target's
// lifetime; the bolt executor round-robins across its ring list and
// parks on a waiter when every ring runs dry. Backpressure is unchanged:
// the tuple-denominated reserve()/release() CAS bound is enforced before
// any push, and a ring holds at least QueueSize batch slots, so a
// reserved push never finds it full.
//
// SPSC ownership discipline (enforced by dspslint's ringmisuse
// analyzer): the push side of a data ring is owned by the producer's
// executor goroutine (or the ticker goroutine for its private tick
// ring), the pop side by the target's executor goroutine. Retirement
// transfers both sides to the retiring goroutine only after the previous
// owners have provably exited (ScaleDown's awaitProducers/awaitDone
// barriers).

// ringSpinBudget is how many yields the hybrid wait strategy burns
// before parking. Each failed probe calls runtime.Gosched — a raw spin
// would starve the producers on a single-P runtime and stall everyone
// for whole preemption intervals.
const ringSpinBudget = 64

// attachInRingLocked creates a producer ring and splices it into
// target's consumer list. The caller holds the topology splice read lock
// and has observed target alive, so the list cannot be concurrently
// reclaimed; ringMu orders concurrent attaches (and consumer prunes)
// against each other.
//
//dsps:coldpath
func (rt *runningTopology) attachInRingLocked(target *task) *ring.SPSC[envBatch] {
	r, _ := ring.New[envBatch](rt.ringCap)
	target.ringMu.Lock()
	old := *target.inRings.Load()
	list := make([]*ring.SPSC[envBatch], len(old)+1)
	copy(list, old)
	list[len(old)] = r
	target.inRings.Store(&list)
	target.ringMu.Unlock()
	return r
}

// drainInRings pops at most one batch from every input ring (round-robin
// fairness across producers) and processes it. Returns the number of
// tuples handled and false when the topology shut down mid-batch.
//
//dsps:hotpath
//dsps:ringconsumer
func (rt *runningTopology) drainInRings(tk *task, collector *boltCollector) (int, bool) {
	rings := *tk.inRings.Load()
	total := 0
	for _, r := range rings {
		b, ok := r.Pop()
		if !ok {
			continue
		}
		total += b.size()
		if !rt.processBatch(tk, collector, b) {
			return total, false
		}
	}
	return total, true
}

// inRingsEmpty re-checks emptiness against a *fresh* list snapshot. It
// must be called after Waiter.Prepare: the producer's attach/push are
// sequenced before its Wake, so either this check observes the new
// element or the Wake observes the parked flag — a lost wakeup is
// impossible.
//
//dsps:ringconsumer
func (rt *runningTopology) inRingsEmpty(tk *task) bool {
	for _, r := range *tk.inRings.Load() {
		if !r.Empty() {
			return false
		}
	}
	return true
}

// pruneInRings drops closed, fully drained producer rings (their
// producer was scaled down) from tk's consumer list. Cold path, called
// only when the executor is about to park.
//
//dsps:ringconsumer
func (rt *runningTopology) pruneInRings(tk *task) {
	rings := *tk.inRings.Load()
	stale := 0
	for _, r := range rings {
		if r.Closed() && r.Empty() {
			stale++
		}
	}
	if stale == 0 {
		return
	}
	tk.ringMu.Lock()
	cur := *tk.inRings.Load()
	list := make([]*ring.SPSC[envBatch], 0, len(cur))
	for _, r := range cur {
		if !(r.Closed() && r.Empty()) {
			list = append(list, r)
		}
	}
	tk.inRings.Store(&list)
	tk.ringMu.Unlock()
}

// ringDepth sums the buffered batches across tk's input rings — the
// ring-plane analogue of len(inCh), exported as predstream_ring_depth.
func (tk *task) ringDepth() int {
	p := tk.inRings.Load()
	if p == nil {
		return 0
	}
	total := 0
	for _, r := range *p {
		total += r.Len()
	}
	return total
}

// runBoltRing is the ring-plane bolt executor loop: drain every producer
// ring, flush, and when idle wait according to the configured strategy —
// spin (always yield-spin), park (sleep on the waiter immediately), or
// hybrid (a short yield-spin burst, then park).
func (rt *runningTopology) runBoltRing(tk *task, collector *boltCollector) {
	spins := 0
	for {
		rt.maybeRebuild(tk)
		select {
		case <-rt.ctx.Done():
			return
		case <-tk.stop:
			// Drain request from ScaleDown: everything emitted or staged
			// goes out before the executor settles; unprocessed input stays
			// in the rings for retireTask to reclaim.
			rt.flushOut(tk)
			collector.flushAcks()
			return
		default:
		}
		processed, ok := rt.drainInRings(tk, collector)
		if !ok {
			return
		}
		if processed > 0 {
			// Bolts emit only while processing input, so flushing here
			// (rather than on a deadline) bounds output latency by the
			// input batch and leaves nothing buffered while idle.
			rt.flushOut(tk)
			collector.flushAcks()
			spins = 0
			continue
		}
		if rt.waitStrat == ring.WaitSpin ||
			(rt.waitStrat == ring.WaitHybrid && spins < ringSpinBudget) {
			spins++
			runtime.Gosched()
			continue
		}
		// Park. Prepare publishes the parked flag before the emptiness
		// re-check, closing the race against a concurrent push+Wake.
		rt.pruneInRings(tk)
		tk.ringWait.Prepare()
		if !rt.inRingsEmpty(tk) {
			tk.ringWait.Cancel()
			spins = 0
			continue
		}
		tk.counters.ringParks.Add(1)
		wake := rt.spliceWake.Load()
		select {
		case <-rt.ctx.Done():
			tk.ringWait.Cancel()
			return
		case <-tk.stop:
			tk.ringWait.Cancel()
			rt.flushOut(tk)
			collector.flushAcks()
			return
		case <-*wake:
			// A splice advanced the route epoch; loop so even an idle bolt
			// re-acks it promptly (ScaleDown waits on that convergence).
			tk.ringWait.Cancel()
		case <-tk.ringWait.C():
		}
		spins = 0
	}
}
