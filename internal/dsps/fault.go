package dsps

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Fault describes injected worker misbehaviour, the mechanism the
// reliability experiments (E6/E7/E10) use exactly as the paper injects
// misbehaving workers into its Storm cluster.
type Fault struct {
	// Slowdown multiplies the worker's simulated per-tuple service cost;
	// 0 or 1 means no slowdown. The paper's misbehaving workers are slow
	// workers, so this is the primary knob.
	Slowdown float64
	// DropProb is the probability a tuple handled by the worker is
	// silently dropped (its root eventually fails by timeout).
	DropProb float64
	// FailProb is the probability the worker immediately fails the tuple
	// (its root fails without waiting for the timeout).
	FailProb float64
	// Stall hangs the worker's executors completely: tuples stop being
	// processed (queues back up, roots time out) until the fault is
	// cleared — the crash/hang flavour of misbehaviour.
	Stall bool
}

// valid reports whether the fault's fields are in range. Probabilities are
// checked for NaN/Inf explicitly: NaN compares false against any bound, so
// a plain range check would silently accept it.
func (f Fault) valid() error {
	if math.IsNaN(f.Slowdown) || math.IsInf(f.Slowdown, 0) ||
		f.Slowdown < 0 || (f.Slowdown > 0 && f.Slowdown < 1) {
		return fmt.Errorf("dsps: fault slowdown %v must be 0 (none) or >= 1", f.Slowdown)
	}
	if math.IsNaN(f.DropProb) || math.IsInf(f.DropProb, 0) || f.DropProb < 0 || f.DropProb > 1 {
		return fmt.Errorf("dsps: fault drop probability %v out of [0,1]", f.DropProb)
	}
	if math.IsNaN(f.FailProb) || math.IsInf(f.FailProb, 0) || f.FailProb < 0 || f.FailProb > 1 {
		return fmt.Errorf("dsps: fault fail probability %v out of [0,1]", f.FailProb)
	}
	return nil
}

// faultRegistry holds active faults keyed by worker id.
type faultRegistry struct {
	mu     sync.RWMutex
	faults map[string]Fault
	// active mirrors len(faults) so the per-tuple get() can skip the read
	// lock entirely while no fault is injected — the overwhelmingly common
	// case outside chaos runs.
	active atomic.Int64
}

func newFaultRegistry() *faultRegistry {
	return &faultRegistry{faults: make(map[string]Fault)}
}

func (r *faultRegistry) set(workerID string, f Fault) error {
	if err := f.valid(); err != nil {
		return err
	}
	r.mu.Lock()
	if _, ok := r.faults[workerID]; !ok {
		r.active.Add(1)
	}
	r.faults[workerID] = f
	r.mu.Unlock()
	return nil
}

func (r *faultRegistry) clear(workerID string) {
	r.mu.Lock()
	if _, ok := r.faults[workerID]; ok {
		r.active.Add(-1)
	}
	delete(r.faults, workerID)
	r.mu.Unlock()
}

//dsps:hotpath
func (r *faultRegistry) get(workerID string) (Fault, bool) {
	if r.active.Load() == 0 {
		return Fault{}, false
	}
	r.mu.RLock()
	f, ok := r.faults[workerID]
	r.mu.RUnlock()
	return f, ok
}
