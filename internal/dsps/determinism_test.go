package dsps

import (
	"fmt"
	"testing"
	"time"
)

// runSeeded runs a small two-stage topology (shuffle fan-out into a
// fields-grouped counter) to completion and returns the per-task counter
// fingerprint.
func runSeeded(t *testing.T, seed int64) map[string]string {
	t.Helper()
	spout := &wordSpout{words: []string{"a", "b", "c", "d", "e"}, limit: 500}
	b := NewTopologyBuilder("det")
	b.SetSpout("src", func() Spout { return spout }, 1, "word")
	b.SetBolt("pass", func() Bolt { return &relayBolt{} }, 2, "word").ShuffleGrouping("src")
	b.SetBolt("count", func() Bolt { return &wordCounter{} }, 3).FieldsGrouping("pass", "word")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(func(cfg *ClusterConfig) { cfg.Seed = seed })
	if err := c.Submit(topo, SubmitConfig{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(10 * time.Second) {
		t.Fatal("did not drain")
	}
	snap := c.Snapshot()
	out := map[string]string{}
	for _, comp := range []string{"src", "pass", "count"} {
		for _, ts := range snap.ComponentTasks(comp) {
			key := fmt.Sprintf("%s/%d", comp, ts.TaskIndex)
			out[key] = fmt.Sprintf("exec=%d emit=%d acked=%d failed=%d",
				ts.Executed, ts.Emitted, ts.Acked, ts.Failed)
		}
	}
	return out
}

// TestSeedDeterminism pins the engine's reproducibility contract: the same
// topology under the same cluster seed lands every tuple on the same task
// — round-robin shuffle order, fields hashing, and the splitmix64 edge-id
// streams all derive from the seed, not from scheduling.
func TestSeedDeterminism(t *testing.T) {
	first := runSeeded(t, 42)
	second := runSeeded(t, 42)
	if len(first) != len(second) {
		t.Fatalf("task sets differ: %d vs %d", len(first), len(second))
	}
	for k, v := range first {
		if second[k] != v {
			t.Errorf("task %s diverged: %q vs %q", k, v, second[k])
		}
	}
	// Sanity: the run did real work.
	if first["src/0"] != "exec=500 emit=500 acked=500 failed=0" {
		t.Fatalf("unexpected spout tally: %q", first["src/0"])
	}
}

// TestEdgeIDStreamDeterministic pins the splitmix64 draw: identical task
// seeds yield identical non-zero edge-id streams, distinct seeds diverge.
func TestEdgeIDStreamDeterministic(t *testing.T) {
	a := &task{edgeState: 7}
	b := &task{edgeState: 7}
	c := &task{edgeState: 8}
	var diverged bool
	for i := 0; i < 1000; i++ {
		av, bv, cv := a.nextEdgeID(), b.nextEdgeID(), c.nextEdgeID()
		if av == 0 || bv == 0 || cv == 0 {
			t.Fatal("zero edge id drawn")
		}
		if av != bv {
			t.Fatalf("same-seed streams diverged at draw %d: %x vs %x", i, av, bv)
		}
		if av != cv {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("distinct seeds produced identical streams")
	}
}
