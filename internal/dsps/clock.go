package dsps

import (
	"context"
	"sync/atomic"
	"time"
)

// coarseTick is the refresh period of the coarse clock. Hot-path
// timestamps (enqueue stamps, histogram observes, acker start/complete
// times) are accurate to within one tick; anything needing sub-tick
// precision (the acker timeout sweep cutoff) keeps using time.Now.
const coarseTick = 500 * time.Microsecond

// coarseClock publishes a nanosecond wall timestamp through an atomic,
// refreshed by a ticker goroutine, so per-tuple code can stamp events
// without the cost of a time.Now call per envelope. Readers see a
// monotonically non-decreasing value (a single writer stores successive
// time.Now readings), which keeps derived latencies non-negative.
type coarseClock struct {
	ns atomic.Int64
}

// nowNs returns the last published timestamp.
//
//dsps:hotpath
func (c *coarseClock) nowNs() int64 { return c.ns.Load() }

// run refreshes the clock until ctx is cancelled. The caller must have
// seeded the clock with an initial time.Now reading before any reader
// starts.
func (c *coarseClock) run(ctx context.Context) {
	t := time.NewTicker(coarseTick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.ns.Store(time.Now().UnixNano())
		}
	}
}
