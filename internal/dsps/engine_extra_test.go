package dsps

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// ackerRandomTreeProperty drives the acker with a randomly shaped tuple
// tree and checks the invariant: a root completes exactly when every edge
// has been both produced and consumed, regardless of the transition order.
// Shared by the quick.Check regression test and FuzzAckerTrees.
func ackerRandomTreeProperty(seed int64, fanRaw, depthRaw uint8) bool {
	fan := int(fanRaw%3) + 1   // children per node: 1..3
	depth := int(depthRaw % 4) // tree depth: 0..3
	rng := rand.New(rand.NewSource(seed))
	a := newAcker(time.Minute, 4, nil)

	// Build the tree: each node is an edge id; children produced when
	// the parent is consumed.
	type node struct {
		id       uint64
		children []*node
	}
	var build func(level int) *node
	build = func(level int) *node {
		n := &node{id: rng.Uint64() | 1}
		if level < depth {
			for c := 0; c < fan; c++ {
				n.children = append(n.children, build(level+1))
			}
		}
		return n
	}
	root := build(0)
	const rootID = 42
	a.register(rootID, root.id, "msg", 0, 0)

	// Collect (consumed, produced) transitions and apply them in a
	// random order — XOR acking must be order-independent.
	type transition struct {
		consumed uint64
		produced []uint64
	}
	var trans []transition
	var walk func(n *node)
	walk = func(n *node) {
		var produced []uint64
		for _, c := range n.children {
			produced = append(produced, c.id)
			walk(c)
		}
		trans = append(trans, transition{consumed: n.id, produced: produced})
	}
	walk(root)
	rng.Shuffle(len(trans), func(i, j int) { trans[i], trans[j] = trans[j], trans[i] })

	completions := 0
	var last ackResult
	for i, tr := range trans {
		r, done := a.transition(rootID, tr.consumed, tr.produced)
		if done {
			if i != len(trans)-1 {
				// Completed before all transitions were applied: only a
				// bug (or an astronomically improbable XOR collision).
				return false
			}
			completions++
			last = r
		}
	}
	return completions == 1 && last.ok && a.inFlight() == 0
}

// TestPropertyAckerRandomTrees is the quick.Check regression form of the
// property; FuzzAckerTrees explores the same space under go test -fuzz.
func TestPropertyAckerRandomTrees(t *testing.T) {
	if err := quick.Check(ackerRandomTreeProperty, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// blockingBolt holds each tuple until released, to build up queue depth.
type blockingBolt struct {
	BaseBolt
	gate chan struct{}
}

func (b *blockingBolt) Prepare(TopologyContext, OutputCollector) {}
func (b *blockingBolt) Execute(*Tuple)                           { <-b.gate }

func TestBackpressureBoundsInFlight(t *testing.T) {
	// With a blocked consumer, emission must stall at queue size + max
	// spout pending rather than grow without bound.
	gate := make(chan struct{})
	bolt := &blockingBolt{gate: gate}
	spout := &countingSpout{limit: 1 << 30}
	b := NewTopologyBuilder("bp")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("sink", func() Bolt { return bolt }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster(func(cfg *ClusterConfig) {
		cfg.QueueSize = 16
		cfg.MaxSpoutPending = 32
		cfg.AckTimeout = time.Minute
	})
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(gate) // unblock the bolt so shutdown can proceed
		c.Shutdown()
	}()
	time.Sleep(100 * time.Millisecond)
	snap := c.Snapshot()
	emitted := snap.ComponentTasks("src")[0].Emitted
	// Bound: pending cap (32). The spout stops emitting at the cap.
	if emitted > 32 {
		t.Fatalf("emitted %d with MaxSpoutPending=32", emitted)
	}
	if emitted < 16 {
		t.Fatalf("emitted only %d; backpressure kicked in too early", emitted)
	}
	if got := c.InFlight(); got > 32 {
		t.Fatalf("in flight %d exceeds pending cap", got)
	}
}

func TestShutdownWhileBlocked(t *testing.T) {
	// Shutdown must terminate promptly even when executors are blocked on
	// full downstream queues.
	gate := make(chan struct{}) // never closed: bolt stays blocked
	bolt := &blockingBolt{gate: gate}
	b := NewTopologyBuilder("stuck")
	b.SetSpout("src", func() Spout { return &countingSpout{limit: 1 << 30} }, 1, "n")
	b.SetBolt("sink", func() Bolt { return bolt }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster(func(cfg *ClusterConfig) {
		cfg.QueueSize = 4
		cfg.MaxSpoutPending = 8
	})
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		// The blocked Execute itself never returns; Shutdown waits for
		// executor goroutines, so release the gate when the context is
		// down to simulate a bolt honoring cancellation.
		time.Sleep(20 * time.Millisecond)
		close(gate)
	}()
	go func() {
		c.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung")
	}
}

func TestMultipleSpoutsInterleave(t *testing.T) {
	sp1 := &countingSpout{limit: 100}
	sp2 := &countingSpout{limit: 200}
	b := NewTopologyBuilder("multi")
	b.SetSpout("a", func() Spout { return sp1 }, 1, "n")
	b.SetSpout("b", func() Spout { return sp2 }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 2).
		ShuffleGrouping("a").
		ShuffleGrouping("b")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	snap := c.Snapshot()
	var sinkTotal int64
	for _, ts := range snap.ComponentTasks("sink") {
		sinkTotal += ts.Executed
	}
	if sinkTotal != 300 {
		t.Fatalf("sink executed %d, want 300", sinkTotal)
	}
	if sp1.acked.Load() != 100 || sp2.acked.Load() != 200 {
		t.Fatalf("acks = %d/%d", sp1.acked.Load(), sp2.acked.Load())
	}
}

func TestSpoutExecCostThrottlesEmission(t *testing.T) {
	// A spout with a 5ms emission cost cannot emit faster than ~200/s.
	spout := &countingSpout{limit: 1 << 30}
	b := NewTopologyBuilder("spoutcost")
	b.SetSpout("src", func() Spout { return spout }, 1, "n").
		WithExecCost(5 * time.Millisecond)
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster(func(cfg *ClusterConfig) { cfg.Delayer = RealDelayer{} })
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	time.Sleep(500 * time.Millisecond)
	emitted := c.Snapshot().ComponentTasks("src")[0].Emitted
	// 500ms at ≥5ms per emission → at most ~100 (+slack for granularity).
	if emitted > 120 {
		t.Fatalf("costed spout emitted %d in 500ms", emitted)
	}
	if emitted < 10 {
		t.Fatalf("costed spout barely emitted: %d", emitted)
	}
}

func TestDoubleSubscriptionDuplicatesDelivery(t *testing.T) {
	// Subscribing to the same source twice is two independent edges: each
	// tuple is delivered once per edge (Storm semantics).
	const n = 100
	spout := &countingSpout{limit: n}
	b := NewTopologyBuilder("double")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 2).
		ShuffleGrouping("src").
		ShuffleGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	snap := c.Snapshot()
	var total int64
	for _, ts := range snap.ComponentTasks("sink") {
		total += ts.Executed
	}
	if total != 2*n {
		t.Fatalf("double subscription delivered %d, want %d", total, 2*n)
	}
	// Reliability still completes each root exactly once.
	if got := spout.acked.Load(); got != n {
		t.Fatalf("acked %d roots, want %d", got, n)
	}
}

func TestBlockedPlacementConcentratesStages(t *testing.T) {
	b := NewTopologyBuilder("blocked")
	b.SetSpout("src", func() Spout { return &countingSpout{limit: 1} }, 2, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 6).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{Workers: 4, Strategy: PlaceBlocked}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	snap := c.Snapshot()
	// 8 tasks over 4 workers in blocks of 2: tasks 0-1 on worker-0,
	// 2-3 on worker-1, etc.
	for _, ts := range snap.Tasks {
		wantWorker := ts.TaskID / 2
		if ts.WorkerID != c.WorkerIDs()[wantWorker] {
			t.Fatalf("task %d on %s, want worker index %d", ts.TaskID, ts.WorkerID, wantWorker)
		}
	}
	// Both spout tasks co-locate on worker-0 under blocked placement.
	spoutWorkers := map[string]bool{}
	for _, ts := range snap.ComponentTasks("src") {
		spoutWorkers[ts.WorkerID] = true
	}
	if len(spoutWorkers) != 1 {
		t.Fatalf("blocked placement spread spouts over %d workers", len(spoutWorkers))
	}
}

func TestUnknownPlacementStrategyRejected(t *testing.T) {
	b := NewTopologyBuilder("badplace")
	b.SetSpout("src", func() Spout { return &countingSpout{limit: 1} }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{Strategy: "spiral"}); err == nil {
		c.Shutdown()
		t.Fatal("unknown strategy accepted")
	}
}

func TestSpoutParallelismSplitsSources(t *testing.T) {
	// Each spout task is an independent instance emitting its own stream.
	var mu sync.Mutex
	instances := 0
	b := NewTopologyBuilder("pspout")
	b.SetSpout("src", func() Spout {
		mu.Lock()
		instances++
		mu.Unlock()
		return &countingSpout{limit: 50}
	}, 3, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	mu.Lock()
	got := instances
	mu.Unlock()
	if got != 3 {
		t.Fatalf("factory called %d times, want 3", got)
	}
	if acked := c.Snapshot().TotalAcked(); acked != 150 {
		t.Fatalf("acked %d, want 150", acked)
	}
}
