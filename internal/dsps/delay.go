package dsps

import "time"

// Delayer models the passage of per-tuple service time. The real engine
// sleeps; unit tests plug NopDelayer so routing and acking invariants run
// at full speed while the simulated cost still lands in the metrics.
type Delayer interface {
	Delay(d time.Duration)
}

// RealDelayer passes service time with time.Sleep.
type RealDelayer struct{}

// Delay implements Delayer.
func (RealDelayer) Delay(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// NopDelayer records no wall-clock time.
type NopDelayer struct{}

// Delay implements Delayer.
func (NopDelayer) Delay(time.Duration) {}
