package dsps

import (
	"sort"
	"sync"
	"time"
)

// ackResult is delivered (in batches) to the spout executor that emitted
// the root tuple.
type ackResult struct {
	msgID    any
	ok       bool // true = fully processed, false = failed/timed out
	latency  time.Duration
	spoutTID int
}

// acker implements Storm's XOR-tree acking: every emitted tuple edge has a
// random 64-bit id; the tracked value of a root is the XOR of all edge ids
// seen so far (each id appears once when created and once when acked, so
// the value returns to zero exactly when the whole tree completed).
//
// The pending table is sharded by rootID across power-of-two lock stripes
// so concurrent executors do not serialize on a single mutex: register,
// transition, and fail touch exactly one shard; sweep and inFlight iterate
// all of them. Completion results are *returned* to the caller rather than
// pushed through a callback, so executors can batch deliveries back to the
// owning spout.
type acker struct {
	shards []ackerShard
	mask   uint64

	timeout time.Duration
	// nowNs stamps register/complete times; the engine wires it to the
	// topology's coarse clock so the hot path never calls time.Now.
	nowNs func() int64
	// sweepNow is the precise clock the timeout sweep compares against
	// (coarse-stamped starts age at most one coarse tick early).
	sweepNow func() time.Time
}

// ackerShard is one lock stripe of the pending table, padded to a cache
// line so neighboring shards do not false-share.
type ackerShard struct {
	mu      sync.Mutex
	pending map[uint64]*ackEntry
	_       [64 - 16]byte
}

type ackEntry struct {
	msgID    any
	val      uint64
	startNs  int64
	spoutTID int
}

// newAcker builds an acker with the given number of lock shards (rounded
// up to a power of two, minimum 1). A nil nowNs falls back to the real
// clock.
func newAcker(timeout time.Duration, shards int, nowNs func() int64) *acker {
	n := 1
	for n < shards {
		n <<= 1
	}
	if nowNs == nil {
		nowNs = func() int64 { return time.Now().UnixNano() }
	}
	a := &acker{
		shards:   make([]ackerShard, n),
		mask:     uint64(n - 1),
		timeout:  timeout,
		nowNs:    nowNs,
		sweepNow: time.Now,
	}
	for i := range a.shards {
		a.shards[i].pending = make(map[uint64]*ackEntry)
	}
	return a
}

// shard is on the per-tuple data plane.
//
//dsps:hotpath
func (a *acker) shard(rootID uint64) *ackerShard {
	return &a.shards[rootID&a.mask]
}

// result builds the completion for e, clamping latency to a nanosecond so
// sub-coarse-tick completions still register as measured.
//
//dsps:hotpath
func (a *acker) result(e *ackEntry, ok bool) ackResult {
	lat := time.Duration(a.nowNs() - e.startNs)
	if lat < 1 {
		lat = 1
	}
	return ackResult{msgID: e.msgID, ok: ok, latency: lat, spoutTID: e.spoutTID}
}

// register starts tracking a new root tuple: rootID keys the tree, edgeID
// is the XOR of the spout's initial output edges.
//
//dsps:hotpath
func (a *acker) register(rootID, edgeID uint64, msgID any, spoutTID int) {
	s := a.shard(rootID)
	s.mu.Lock()
	s.pending[rootID] = &ackEntry{
		msgID:    msgID,
		val:      edgeID,
		startNs:  a.nowNs(),
		spoutTID: spoutTID,
	}
	s.mu.Unlock()
}

// transition records a bolt finishing one input edge and creating the
// given output edges: the tracked value XORs the consumed edge and every
// produced edge. A zero result completes the root; the completion is
// returned for the caller to deliver.
//
//dsps:hotpath
func (a *acker) transition(rootID, consumedEdge uint64, producedEdges []uint64) (ackResult, bool) {
	s := a.shard(rootID)
	s.mu.Lock()
	e, ok := s.pending[rootID]
	if !ok {
		s.mu.Unlock()
		return ackResult{}, false
	}
	e.val ^= consumedEdge
	for _, p := range producedEdges {
		e.val ^= p
	}
	if e.val != 0 {
		s.mu.Unlock()
		return ackResult{}, false
	}
	delete(s.pending, rootID)
	s.mu.Unlock()
	return a.result(e, true), true
}

// fail fails a root immediately (a bolt called Fail on a descendant),
// returning the completion for the caller to deliver.
//
//dsps:hotpath
func (a *acker) fail(rootID uint64) (ackResult, bool) {
	s := a.shard(rootID)
	s.mu.Lock()
	e, ok := s.pending[rootID]
	if !ok {
		s.mu.Unlock()
		return ackResult{}, false
	}
	delete(s.pending, rootID)
	s.mu.Unlock()
	return a.result(e, false), true
}

// sweep fails every root older than the timeout and returns the expired
// completions, oldest first. The topology's sweeper goroutine calls it
// periodically and routes the results back to their spouts.
//
// The pending tables are maps, so the collection order is randomized per
// run; expirations are therefore sorted by (start time, rootID) before
// being returned, making the Fail delivery order a function of the expired
// set alone — chaos replays see the same ack-fail sequence for the same
// seed.
func (a *acker) sweep() []ackResult {
	if a.timeout <= 0 {
		return nil
	}
	cutoffNs := a.sweepNow().Add(-a.timeout).UnixNano()
	type expiredRoot struct {
		id uint64
		e  *ackEntry
	}
	var expired []expiredRoot
	for i := range a.shards {
		s := &a.shards[i]
		s.mu.Lock()
		for id, e := range s.pending {
			if e.startNs < cutoffNs {
				delete(s.pending, id)
				expired = append(expired, expiredRoot{id: id, e: e})
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(expired, func(i, j int) bool {
		if expired[i].e.startNs != expired[j].e.startNs {
			return expired[i].e.startNs < expired[j].e.startNs
		}
		return expired[i].id < expired[j].id
	})
	out := make([]ackResult, len(expired))
	for i, x := range expired {
		out[i] = a.result(x.e, false)
	}
	return out
}

// shardPending returns the pending-root count of each lock shard, in
// shard order — the per-stripe breakdown behind inFlight.
func (a *acker) shardPending() []int {
	out := make([]int, len(a.shards))
	for i := range a.shards {
		s := &a.shards[i]
		s.mu.Lock()
		out[i] = len(s.pending)
		s.mu.Unlock()
	}
	return out
}

// inFlight returns the number of incomplete tracked roots.
func (a *acker) inFlight() int {
	total := 0
	for i := range a.shards {
		s := &a.shards[i]
		s.mu.Lock()
		total += len(s.pending)
		s.mu.Unlock()
	}
	return total
}
