package dsps

import (
	"sync"
	"time"
)

// ackResult is delivered to the spout executor that emitted the root
// tuple.
type ackResult struct {
	msgID    any
	ok       bool // true = fully processed, false = failed/timed out
	latency  time.Duration
	spoutTID int
}

// acker implements Storm's XOR-tree acking: every emitted tuple edge has a
// random 64-bit id; the tracked value of a root is the XOR of all edge ids
// seen so far (each id appears once when created and once when acked, so
// the value returns to zero exactly when the whole tree completed).
type acker struct {
	mu      sync.Mutex
	pending map[uint64]*ackEntry
	timeout time.Duration
	now     func() time.Time

	deliver func(ackResult) // routes results back to the owning spout executor
}

type ackEntry struct {
	msgID    any
	val      uint64
	start    time.Time
	spoutTID int
	done     bool
}

func newAcker(timeout time.Duration, deliver func(ackResult)) *acker {
	return &acker{
		pending: make(map[uint64]*ackEntry),
		timeout: timeout,
		now:     time.Now,
		deliver: deliver,
	}
}

// register starts tracking a new root tuple: rootID keys the tree, edgeID
// is the spout→first-bolt edge.
func (a *acker) register(rootID, edgeID uint64, msgID any, spoutTID int) {
	a.mu.Lock()
	a.pending[rootID] = &ackEntry{
		msgID:    msgID,
		val:      edgeID,
		start:    a.now(),
		spoutTID: spoutTID,
	}
	a.mu.Unlock()
}

// transition records a bolt finishing one input edge and creating the
// given output edges: the tracked value XORs the consumed edge and every
// produced edge. A zero result completes the root.
func (a *acker) transition(rootID, consumedEdge uint64, producedEdges []uint64) {
	a.mu.Lock()
	e, ok := a.pending[rootID]
	if !ok || e.done {
		a.mu.Unlock()
		return
	}
	e.val ^= consumedEdge
	for _, p := range producedEdges {
		e.val ^= p
	}
	if e.val == 0 {
		e.done = true
		delete(a.pending, rootID)
		res := ackResult{msgID: e.msgID, ok: true, latency: a.now().Sub(e.start), spoutTID: e.spoutTID}
		a.mu.Unlock()
		a.deliver(res)
		return
	}
	a.mu.Unlock()
}

// fail fails a root immediately (a bolt called Fail on a descendant).
func (a *acker) fail(rootID uint64) {
	a.mu.Lock()
	e, ok := a.pending[rootID]
	if !ok || e.done {
		a.mu.Unlock()
		return
	}
	e.done = true
	delete(a.pending, rootID)
	res := ackResult{msgID: e.msgID, ok: false, latency: a.now().Sub(e.start), spoutTID: e.spoutTID}
	a.mu.Unlock()
	a.deliver(res)
}

// sweep fails every root older than the timeout and returns how many it
// failed. The cluster calls it periodically.
func (a *acker) sweep() int {
	if a.timeout <= 0 {
		return 0
	}
	cutoff := a.now().Add(-a.timeout)
	var expired []ackResult
	a.mu.Lock()
	for id, e := range a.pending {
		if e.start.Before(cutoff) {
			e.done = true
			delete(a.pending, id)
			expired = append(expired, ackResult{
				msgID: e.msgID, ok: false,
				latency:  a.now().Sub(e.start),
				spoutTID: e.spoutTID,
			})
		}
	}
	a.mu.Unlock()
	for _, r := range expired {
		a.deliver(r)
	}
	return len(expired)
}

// inFlight returns the number of incomplete tracked roots.
func (a *acker) inFlight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}
