package dsps

import (
	"sort"
	"sync"
	"time"
)

// ackResult is delivered (in batches) to the spout executor that emitted
// the root tuple. Roots anchored through the typed emit path carry their
// message id in msgU64 (hasU64 set) so the delivery back to an AckerU64
// spout never boxes.
type ackResult struct {
	msgID    any
	msgU64   uint64
	hasU64   bool
	ok       bool // true = fully processed, false = failed/timed out
	latency  time.Duration
	spoutTID int
}

// acker implements Storm's XOR-tree acking: every emitted tuple edge has a
// random 64-bit id; the tracked value of a root is the XOR of all edge ids
// seen so far (each id appears once when created and once when acked, so
// the value returns to zero exactly when the whole tree completed).
//
// The pending table is sharded by rootID across power-of-two stripes.
// On the channel plane executors mutate shards directly, so the stripe
// mutex is the contention point. On the ring plane every shard is owned
// by a single writer goroutine (see ackOwners) that applies batched ops
// under one uncontended lock acquisition per batch — the mutex survives
// only so cold-path readers (sweep, inFlight, metrics) stay trivially
// safe. Completion results are *returned* to the caller rather than
// pushed through a callback, so callers can batch deliveries back to the
// owning spout.
type acker struct {
	shards []ackerShard
	mask   uint64

	timeout time.Duration
	// nowNs stamps register/complete times; the engine wires it to the
	// topology's coarse clock so the hot path never calls time.Now.
	nowNs func() int64
	// sweepNow is the precise clock the timeout sweep compares against
	// (coarse-stamped starts age at most one coarse tick early).
	sweepNow func() time.Time
}

// ackerShard is one stripe of the pending table, padded to a cache line
// so neighboring shards do not false-share. The map holds entries by
// value: registering a root is a map store, not a heap allocation.
type ackerShard struct {
	mu      sync.Mutex
	pending map[uint64]ackEntry
	_       [64 - 16]byte
}

type ackEntry struct {
	msgID    any
	msgU64   uint64
	val      uint64
	startNs  int64
	spoutTID int
	// hasInit records that the root's register was applied. On the channel
	// plane registration is synchronous, so it is always true; on the ring
	// plane a transition can be drained from its producer's ring before the
	// register is drained from the spout's, in which case the entry is a
	// placeholder accumulating XOR state until the register lands.
	hasInit bool
	// failed marks a placeholder whose fail arrived before its register.
	failed bool
}

// newAcker builds an acker with the given number of lock shards (rounded
// up to a power of two, minimum 1). A nil nowNs falls back to the real
// clock.
func newAcker(timeout time.Duration, shards int, nowNs func() int64) *acker {
	n := 1
	for n < shards {
		n <<= 1
	}
	if nowNs == nil {
		nowNs = func() int64 { return time.Now().UnixNano() }
	}
	a := &acker{
		shards:   make([]ackerShard, n),
		mask:     uint64(n - 1),
		timeout:  timeout,
		nowNs:    nowNs,
		sweepNow: time.Now,
	}
	for i := range a.shards {
		a.shards[i].pending = make(map[uint64]ackEntry)
	}
	return a
}

// shard is on the per-tuple data plane.
//
//dsps:hotpath
func (a *acker) shard(rootID uint64) *ackerShard {
	return &a.shards[rootID&a.mask]
}

// shardIndex returns the owning stripe index of a root id.
//
//dsps:hotpath
func (a *acker) shardIndex(rootID uint64) int { return int(rootID & a.mask) }

// result builds the completion for e, clamping latency to a nanosecond so
// sub-coarse-tick completions still register as measured.
//
//dsps:hotpath
func (a *acker) result(e ackEntry, ok bool) ackResult {
	lat := time.Duration(a.nowNs() - e.startNs)
	if lat < 1 {
		lat = 1
	}
	return ackResult{
		msgID:    e.msgID,
		msgU64:   e.msgU64,
		hasU64:   e.msgID == nil,
		ok:       ok,
		latency:  lat,
		spoutTID: e.spoutTID,
	}
}

// register starts tracking a new root tuple: rootID keys the tree, edgeID
// is the XOR of the spout's initial output edges. Exactly one of msgID
// (boxed anchoring) and msgU64 (typed-lane anchoring) identifies the root
// back to its spout. Channel-plane path; ring-plane registration goes
// through applyLocked.
//
//dsps:hotpath
func (a *acker) register(rootID, edgeID uint64, msgID any, msgU64 uint64, spoutTID int) {
	s := a.shard(rootID)
	s.mu.Lock()
	s.pending[rootID] = ackEntry{
		msgID:    msgID,
		msgU64:   msgU64,
		val:      edgeID,
		startNs:  a.nowNs(),
		spoutTID: spoutTID,
		hasInit:  true,
	}
	s.mu.Unlock()
}

// transition records a bolt finishing one input edge and creating the
// given output edges: the tracked value XORs the consumed edge and every
// produced edge. A zero result completes the root; the completion is
// returned for the caller to deliver. Channel-plane path.
//
//dsps:hotpath
func (a *acker) transition(rootID, consumedEdge uint64, producedEdges []uint64) (ackResult, bool) {
	s := a.shard(rootID)
	s.mu.Lock()
	e, ok := s.pending[rootID]
	if !ok {
		s.mu.Unlock()
		return ackResult{}, false
	}
	e.val ^= consumedEdge
	for _, p := range producedEdges {
		e.val ^= p
	}
	if e.val != 0 {
		s.pending[rootID] = e
		s.mu.Unlock()
		return ackResult{}, false
	}
	delete(s.pending, rootID)
	s.mu.Unlock()
	return a.result(e, true), true
}

// fail fails a root immediately (a bolt called Fail on a descendant),
// returning the completion for the caller to deliver. Channel-plane path.
//
//dsps:hotpath
func (a *acker) fail(rootID uint64) (ackResult, bool) {
	s := a.shard(rootID)
	s.mu.Lock()
	e, ok := s.pending[rootID]
	if !ok {
		s.mu.Unlock()
		return ackResult{}, false
	}
	delete(s.pending, rootID)
	s.mu.Unlock()
	return a.result(e, false), true
}

// applyLocked applies one ring-plane ack op to shard s, which the caller
// (the shard's owner goroutine) has locked — owners lock once per drained
// batch, so the per-op cost is a plain map operation. Unlike the
// channel-plane entry points it tolerates op reordering across producer
// rings: an op for an unknown root creates a placeholder that the
// eventual register resolves. XOR commutes, so the order ops land in is
// irrelevant to the completion value.
//
//dsps:hotpath
func (a *acker) applyLocked(s *ackerShard, op ackOp) (ackResult, bool) {
	e, ok := s.pending[op.rootID]
	switch op.kind {
	case ackOpRegister:
		if !ok {
			s.pending[op.rootID] = ackEntry{
				msgID:    op.msgID,
				msgU64:   op.msgU64,
				val:      op.val,
				startNs:  op.startNs,
				spoutTID: op.spoutTID,
				hasInit:  true,
			}
			return ackResult{}, false
		}
		// Placeholder from ops that overtook the register.
		e.msgID = op.msgID
		e.msgU64 = op.msgU64
		e.startNs = op.startNs
		e.spoutTID = op.spoutTID
		e.hasInit = true
		e.val ^= op.val
		if e.failed {
			delete(s.pending, op.rootID)
			return a.result(e, false), true
		}
		if e.val == 0 {
			delete(s.pending, op.rootID)
			return a.result(e, true), true
		}
		s.pending[op.rootID] = e
		return ackResult{}, false
	case ackOpXor:
		if !ok {
			s.pending[op.rootID] = ackEntry{val: op.val, startNs: op.startNs}
			return ackResult{}, false
		}
		e.val ^= op.val
		if e.hasInit && e.val == 0 {
			delete(s.pending, op.rootID)
			return a.result(e, true), true
		}
		s.pending[op.rootID] = e
		return ackResult{}, false
	default: // ackOpFail
		if !ok {
			s.pending[op.rootID] = ackEntry{failed: true, startNs: op.startNs}
			return ackResult{}, false
		}
		if !e.hasInit {
			e.failed = true
			s.pending[op.rootID] = e
			return ackResult{}, false
		}
		delete(s.pending, op.rootID)
		return a.result(e, false), true
	}
}

// sweep fails every root older than the timeout and returns the expired
// completions, oldest first. The topology's sweeper goroutine calls it
// periodically and routes the results back to their spouts. Young
// placeholders (ring-plane entries whose register has not yet drained) are
// left alone — their register is already staged and resolves within one
// owner drain pass. Placeholders older than the timeout are orphans (a
// straggler op that landed after the sweep already failed its root) and
// are deleted silently: they carry no spout identity, and their root's
// one-and-only completion was the timeout fail that preceded them.
//
// The pending tables are maps, so the collection order is randomized per
// run; expirations are therefore sorted by (start time, rootID) before
// being returned, making the Fail delivery order a function of the expired
// set alone — chaos replays see the same ack-fail sequence for the same
// seed.
func (a *acker) sweep() []ackResult {
	if a.timeout <= 0 {
		return nil
	}
	cutoffNs := a.sweepNow().Add(-a.timeout).UnixNano()
	type expiredRoot struct {
		id uint64
		e  ackEntry
	}
	var expired []expiredRoot
	for i := range a.shards {
		s := &a.shards[i]
		s.mu.Lock()
		for id, e := range s.pending {
			if e.startNs >= cutoffNs {
				continue
			}
			delete(s.pending, id)
			if e.hasInit {
				expired = append(expired, expiredRoot{id: id, e: e})
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(expired, func(i, j int) bool {
		if expired[i].e.startNs != expired[j].e.startNs {
			return expired[i].e.startNs < expired[j].e.startNs
		}
		return expired[i].id < expired[j].id
	})
	out := make([]ackResult, len(expired))
	for i, x := range expired {
		out[i] = a.result(x.e, false)
	}
	return out
}

// shardPending returns the pending-root count of each lock shard, in
// shard order — the per-stripe breakdown behind inFlight.
func (a *acker) shardPending() []int {
	out := make([]int, len(a.shards))
	for i := range a.shards {
		s := &a.shards[i]
		s.mu.Lock()
		out[i] = len(s.pending)
		s.mu.Unlock()
	}
	return out
}

// inFlight returns the number of incomplete tracked roots.
func (a *acker) inFlight() int {
	total := 0
	for i := range a.shards {
		s := &a.shards[i]
		s.mu.Lock()
		total += len(s.pending)
		s.mu.Unlock()
	}
	return total
}
