package dsps

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"
)

// Live executor scaling. Parallelism is an actuatable runtime property:
// ScaleUp spawns extra bolt executors and splices them into every fan-out
// table feeding the component; ScaleDown drains the highest-index
// executors through a staged protocol (splice out → producer convergence →
// flush in-flight → settle acks → stop → retire) that preserves tuple
// conservation and the chaos invariants throughout. See DESIGN.md
// "Elastic runtime" for the state machine and lock ordering.

// defaultDrainTimeout bounds ScaleDown's cooperative drain when the caller
// passes no budget. Generous enough for a full queue at realistic service
// costs; a stalled executor past it is force-stopped (its in-flight roots
// fail via ack timeout, like a Storm rebalance).
const defaultDrainTimeout = 5 * time.Second

// ErrScaleFloor is returned when a ScaleDown would leave a component with
// no executors.
var ErrScaleFloor = fmt.Errorf("dsps: scale down below parallelism 1")

// ScaleUp adds n executors to a bolt component of a running topology and
// splices them into every subscription feeding it. New tasks get fresh
// cluster-global ids and monotonically increasing task indices (indices of
// retired tasks are never reused), so fan-out tables stay index-sorted and
// dynamic-grouping ratio vectors keep their positional meaning. Spouts
// cannot be scaled (their parallelism anchors conservation accounting).
func (c *Cluster) ScaleUp(topology, component string, n int) error {
	rt := c.findTopology(topology)
	if rt == nil {
		return fmt.Errorf("dsps: topology %q not running", topology)
	}
	if err := rt.scaleUp(component, n); err != nil {
		return err
	}
	c.emit(EventInfo, "component scaled up",
		"topology", topology, "component", component,
		"delta", strconv.Itoa(n),
		"parallelism", strconv.Itoa(rt.liveParallelism(component)))
	return nil
}

// ScaleDown drains and retires n executors of a bolt component (highest
// task index first), keeping at least one. drainTimeout bounds the
// cooperative drain; zero or negative selects a 5s default. On timeout the
// victim is force-stopped: tuples still queued there are discarded and
// their roots fail through the ack-timeout sweep, so conservation holds at
// the next quiescent checkpoint. Retired executors keep their final
// counters in snapshots (TaskStats.Retired) so totals stay monotone.
func (c *Cluster) ScaleDown(topology, component string, n int, drainTimeout time.Duration) error {
	rt := c.findTopology(topology)
	if rt == nil {
		return fmt.Errorf("dsps: topology %q not running", topology)
	}
	forced, err := rt.scaleDown(component, n, drainTimeout)
	if err != nil {
		return err
	}
	level := EventInfo
	msg := "component scaled down"
	if forced > 0 {
		level = EventWarn
		msg = "component scaled down (forced)"
	}
	c.emit(level, msg,
		"topology", topology, "component", component,
		"delta", strconv.Itoa(n),
		"forced", strconv.Itoa(forced),
		"parallelism", strconv.Itoa(rt.liveParallelism(component)))
	return nil
}

// ComponentParallelism returns the live executor count of a component, or
// 0 if the topology or component is not running.
func (c *Cluster) ComponentParallelism(topology, component string) int {
	rt := c.findTopology(topology)
	if rt == nil {
		return 0
	}
	return rt.liveParallelism(component)
}

// findTopology resolves a running topology by name.
func (c *Cluster) findTopology(name string) *runningTopology {
	for _, rt := range c.snapshotTops() {
		if rt.topo.Name == name {
			return rt
		}
	}
	return nil
}

// boltDeclOf returns the declaration of a bolt component, or nil.
func (t *Topology) boltDeclOf(name string) *boltDecl {
	for _, bd := range t.bolts {
		if bd.name == name {
			return bd
		}
	}
	return nil
}

// liveParallelism counts the live (non-retired) tasks of a component.
func (rt *runningTopology) liveParallelism(component string) int {
	rt.tasksMu.RLock()
	defer rt.tasksMu.RUnlock()
	n := 0
	for _, tk := range rt.tasks {
		if tk.component == component {
			n++
		}
	}
	return n
}

// liveTasksOf returns the live tasks of a component in task-index order
// (rt.tasks preserves it: initial tasks are built in index order and
// spawns append with strictly larger indices).
func (rt *runningTopology) liveTasksOf(component string) []*task {
	rt.tasksMu.RLock()
	defer rt.tasksMu.RUnlock()
	var out []*task
	for _, tk := range rt.tasks {
		if tk.component == component {
			out = append(out, tk)
		}
	}
	return out
}

// inEdgesOf returns every edge whose fan-out table feeds component, in
// declaration order.
func (rt *runningTopology) inEdgesOf(component string) []*edge {
	var out []*edge
	for _, e := range rt.allEdges {
		if e.targetComp == component {
			out = append(out, e)
		}
	}
	return out
}

func (rt *runningTopology) scaleUp(component string, n int) error {
	if n <= 0 {
		return fmt.Errorf("dsps: scale up by %d", n)
	}
	bd := rt.topo.boltDeclOf(component)
	if bd == nil {
		return fmt.Errorf("dsps: component %q is not a scalable bolt", component)
	}
	rt.scaleMu.Lock()
	defer rt.scaleMu.Unlock()
	if rt.ctx.Err() != nil {
		return fmt.Errorf("dsps: topology %q stopped", rt.topo.Name)
	}
	spawned := make([]*task, 0, n)
	for i := 0; i < n; i++ {
		tk, err := rt.spawnTask(bd)
		if err != nil {
			return err
		}
		spawned = append(spawned, tk)
	}
	// Splice the new executors into every subscription feeding the
	// component. Appending keeps the table index-sorted; producers pick up
	// the wider fan-out at their next route rebuild.
	rt.splice(func() {
		for _, e := range rt.inEdgesOf(component) {
			cur := *e.targets.Load()
			next := make([]*task, 0, len(cur)+len(spawned))
			next = append(next, cur...)
			next = append(next, spawned...)
			e.targets.Store(&next)
		}
	})
	rt.scaleUps.Add(int64(n))
	return nil
}

// spawnTask builds, registers and starts one new executor for a bolt
// declaration. Called with scaleMu held.
func (rt *runningTopology) spawnTask(bd *boltDecl) (*task, error) {
	c := rt.cluster
	c.mu.Lock()
	id := c.nextTask
	c.nextTask++
	c.mu.Unlock()
	// Same per-task seed derivation as buildRuntime, so spawned executors
	// draw reproducible, non-colliding edge-id streams.
	taskSeed := rt.cfg.Seed + int64(id) + 1
	tk := &task{
		id:           id,
		component:    bd.name,
		numTasks:     rt.liveParallelism(bd.name) + 1,
		execCost:     bd.execCost,
		tickInterval: bd.tickInterval,
		bolt:         bd.factory(),
		space:        make(chan struct{}, 1),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		rng:          rand.New(rand.NewSource(taskSeed)),
		edgeState:    uint64(taskSeed),
	}
	if tk.bolt == nil {
		return nil, fmt.Errorf("dsps: bolt factory for %q returned nil", bd.name)
	}
	rt.initBoltInput(tk)
	tk.outEdges = rt.edges[bd.name]
	tk.outFields = rt.fieldsOf(bd.name)
	rt.tasksMu.Lock()
	tk.index = rt.nextIndex[bd.name]
	rt.nextIndex[bd.name] = tk.index + 1
	tk.worker = rt.workers[rt.placed%len(rt.workers)]
	rt.placed++
	rt.tasks = append(rt.tasks, tk)
	old := *rt.taskByID.Load()
	next := make(map[int]*task, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[tk.id] = tk
	rt.taskByID.Store(&next)
	rt.tasksMu.Unlock()
	// Build the initial route cache before the goroutine starts; the
	// splice that follows bumps the epoch and triggers a lazy rebuild.
	rt.rebuildOuts(tk, rt.routeEpoch.Load())
	rt.wg.Add(1)
	go rt.runBolt(tk)
	return tk, nil
}

// scaleDown runs the drain protocol and reports how many victims needed a
// forced stop.
func (rt *runningTopology) scaleDown(component string, n int, drainTimeout time.Duration) (forced int, err error) {
	if n <= 0 {
		return 0, fmt.Errorf("dsps: scale down by %d", n)
	}
	if rt.topo.boltDeclOf(component) == nil {
		return 0, fmt.Errorf("dsps: component %q is not a scalable bolt", component)
	}
	if drainTimeout <= 0 {
		drainTimeout = defaultDrainTimeout
	}
	rt.scaleMu.Lock()
	defer rt.scaleMu.Unlock()
	if rt.ctx.Err() != nil {
		return 0, fmt.Errorf("dsps: topology %q stopped", rt.topo.Name)
	}
	live := rt.liveTasksOf(component)
	if len(live)-n < 1 {
		return 0, fmt.Errorf("%w: component %q has %d executors, asked to remove %d",
			ErrScaleFloor, component, len(live), n)
	}
	victims := live[len(live)-n:]
	isVictim := make(map[int]bool, len(victims))
	for _, v := range victims {
		isVictim[v.id] = true
	}
	deadline := time.Now().Add(drainTimeout)

	// SPLICED: publish victim-free fan-out tables and bump the epoch.
	epoch := rt.splice(func() {
		for _, e := range rt.inEdgesOf(component) {
			cur := *e.targets.Load()
			next := make([]*task, 0, len(cur)-len(victims))
			for _, t := range cur {
				if !isVictim[t.id] {
					next = append(next, t)
				}
			}
			e.targets.Store(&next)
		}
	})

	// FLUSHING: wait for every producer of the component to rebuild its
	// routes (after which nothing new can be emitted toward a victim),
	// then for each victim's in-flight work to settle. A timeout at
	// either step falls through to a forced stop.
	clean := rt.awaitProducers(component, isVictim, epoch, deadline)
	for _, v := range victims {
		settled := clean && rt.awaitIdle(v, deadline)

		// SETTLED → STOPPED: the executor flushes staged output and acks
		// on its way out, then closes done.
		close(v.stop)
		if !rt.awaitDone(v, deadline.Add(2*time.Second)) {
			// Cooperative stop failed (should not happen: every blocking
			// point in the run loop observes stop). Leave the task
			// detached rather than reclaim state it still owns.
			return forced, fmt.Errorf("dsps: task %d of %q did not stop while scaling down",
				v.id, component)
		}

		// RETIRED: mark the task dead under the splice lock — after this
		// no parked send or tick can reach its queue — then reclaim it.
		rt.spliceMu.Lock()
		v.dead.Store(true)
		rt.spliceMu.Unlock()
		if lost := rt.retireTask(v); lost > 0 || !settled {
			forced++
		}
	}
	rt.scaleDowns.Add(int64(n))
	return forced, nil
}

// awaitProducers waits until every live executor that feeds component has
// rebuilt its routes against epoch (or later). Victims are excluded: their
// own routing no longer matters and a stalled victim must not wedge the
// drain.
func (rt *runningTopology) awaitProducers(component string, isVictim map[int]bool, epoch uint64, deadline time.Time) bool {
	sources := make(map[string]bool)
	for _, e := range rt.inEdgesOf(component) {
		sources[e.source] = true
	}
	for {
		converged := true
		rt.tasksMu.RLock()
		for _, tk := range rt.tasks {
			if isVictim[tk.id] || !sources[tk.component] {
				continue
			}
			if tk.routeGen.Load() < epoch {
				converged = false
				break
			}
		}
		rt.tasksMu.RUnlock()
		if converged {
			return true
		}
		if rt.ctx.Err() != nil || !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// awaitIdle waits until no batch is queued at, parked toward, or buffered
// inside v.
func (rt *runningTopology) awaitIdle(v *task, deadline time.Time) bool {
	for {
		if v.inbound.Load() == 0 && v.queued.Load() == 0 && v.outPending.Load() == 0 {
			return true
		}
		if rt.ctx.Err() != nil || !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// awaitDone waits for the executor goroutine to exit.
func (rt *runningTopology) awaitDone(v *task, deadline time.Time) bool {
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case <-v.done:
		return true
	case <-timer.C:
		return false
	}
}

// retireTask reclaims a stopped, dead executor: drops whatever is still
// queued (forced path only — zero after a clean drain), purges un-flushed
// out-buffers, runs Cleanup, and moves the task's final counters to the
// retired list so snapshot totals stay monotone. Returns the number of
// discarded queued tuples.
//
// Carries both ring annotations: the executor has exited and dead was set
// under the splice write lock, so ownership of both ring sides has
// transferred to this goroutine (see the comment inside).
//
//dsps:ringproducer
//dsps:ringconsumer
func (rt *runningTopology) retireTask(v *task) int {
	lost := 0
	if rt.ringMode {
		// The executor goroutine has exited (awaitDone) and dead was set
		// under the splice write lock, so no producer can push again:
		// ownership of both ring sides has transferred to this goroutine.
		if p := v.inRings.Load(); p != nil {
			for _, r := range *p {
				r.Close()
				for {
					b, ok := r.Pop()
					if !ok {
						break
					}
					lost += b.size()
					rt.fl.putEnvs(b)
				}
			}
		}
		// Close this task's producer-side rings so downstream consumers
		// and acker shard owners prune them once drained.
		for _, r := range v.outRings {
			r.Close()
		}
		v.outRings = nil
		// Staged-but-unpushed ack ops are dropped (their roots fail via the
		// ack-timeout sweep, like force-drained tuples), then the rings
		// close so the shard owners prune them once drained.
		rt.dropAckStage(v)
		for _, r := range v.ackRings {
			if r != nil {
				r.Close()
			}
		}
	} else {
		for {
			select {
			case b := <-v.inCh:
				lost += b.size()
				rt.fl.putEnvs(b)
				continue
			default:
			}
			break
		}
	}
	if lost > 0 {
		v.queued.Add(int64(-lost))
		v.counters.dropped.Add(int64(lost))
	}
	for i := range v.outs {
		ob := &v.outs[i]
		if ob.envs.size() > 0 {
			v.outPending.Add(int64(-ob.envs.size()))
			rt.fl.putEnvs(ob.envs)
			ob.envs = envBatch{}
		}
	}
	v.bolt.Cleanup()
	rt.tasksMu.Lock()
	for i, tk := range rt.tasks {
		if tk == v {
			rt.tasks = append(rt.tasks[:i], rt.tasks[i+1:]...)
			break
		}
	}
	old := *rt.taskByID.Load()
	next := make(map[int]*task, len(old))
	for k, t := range old {
		if k != v.id {
			next[k] = t
		}
	}
	rt.taskByID.Store(&next)
	ts := rt.taskStats(v)
	ts.Retired = true
	ts.QueueLen = 0
	rt.retired = append(rt.retired, ts)
	rt.tasksMu.Unlock()
	return lost
}
