package dsps

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingSpout emits the integers [0, limit) as tuples with msgIDs and
// records acks/fails.
type countingSpout struct {
	BaseSpout
	limit int

	collector SpoutCollector
	next      int
	acked     atomic.Int64
	failed    atomic.Int64
}

func (s *countingSpout) Open(_ TopologyContext, c SpoutCollector) { s.collector = c }

func (s *countingSpout) NextTuple() bool {
	if s.next >= s.limit {
		return false
	}
	s.collector.Emit(Values{s.next}, s.next)
	s.next++
	return true
}

func (s *countingSpout) Ack(any)  { s.acked.Add(1) }
func (s *countingSpout) Fail(any) { s.failed.Add(1) }

// taskTally is a shared, locked per-task counter for asserting how the
// engine spread tuples.
type taskTally struct {
	mu     sync.Mutex
	byTask map[int]int
}

func newTaskTally() *taskTally { return &taskTally{byTask: map[int]int{}} }

func (tt *taskTally) add(taskID int) {
	tt.mu.Lock()
	tt.byTask[taskID]++
	tt.mu.Unlock()
}

func (tt *taskTally) counts() map[int]int {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	out := make(map[int]int, len(tt.byTask))
	for k, v := range tt.byTask {
		out[k] = v
	}
	return out
}

// sinkBolt counts received tuples, optionally reporting into a shared
// tally.
type sinkBolt struct {
	BaseBolt
	mu    sync.Mutex
	count int
	tally *taskTally
	ctx   TopologyContext
}

func (b *sinkBolt) Prepare(ctx TopologyContext, _ OutputCollector) { b.ctx = ctx }

func (b *sinkBolt) Execute(*Tuple) {
	b.mu.Lock()
	b.count++
	b.mu.Unlock()
	if b.tally != nil {
		b.tally.add(b.ctx.TaskID)
	}
}

// testCluster builds a fast cluster for integration tests.
func testCluster(opts ...func(*ClusterConfig)) *Cluster {
	cfg := ClusterConfig{
		Nodes:        2,
		CoresPerNode: 4,
		QueueSize:    256,
		AckTimeout:   2 * time.Second,
		Delayer:      NopDelayer{},
		Seed:         42,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return NewCluster(cfg)
}

func TestEndToEndCountsConserved(t *testing.T) {
	const n = 500
	spout := &countingSpout{limit: n}
	var sinks []*sinkBolt
	var mu sync.Mutex

	b := NewTopologyBuilder("conserve")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("sink", func() Bolt {
		s := &sinkBolt{}
		mu.Lock()
		sinks = append(sinks, s)
		mu.Unlock()
		return s
	}, 3).ShuffleGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	total := 0
	mu.Lock()
	for _, s := range sinks {
		total += s.count
	}
	mu.Unlock()
	if total != n {
		t.Fatalf("sinks saw %d tuples, want %d", total, n)
	}
	snap := c.Snapshot()
	if got := snap.TotalAcked(); got != n {
		t.Fatalf("acked %d roots, want %d", got, n)
	}
	if got := snap.TotalFailed(); got != 0 {
		t.Fatalf("failed %d roots, want 0", got)
	}
	if got := spout.acked.Load(); got != n {
		t.Fatalf("spout saw %d acks, want %d", got, n)
	}
}

func TestShuffleSpreadsAcrossTasks(t *testing.T) {
	const n = 300
	tally := newTaskTally()
	b := NewTopologyBuilder("spread")
	b.SetSpout("src", func() Spout { return &countingSpout{limit: n} }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{tally: tally} }, 3).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	byTask := tally.counts()
	if len(byTask) != 3 {
		t.Fatalf("tuples reached %d tasks, want 3", len(byTask))
	}
	for id, got := range byTask {
		if got != n/3 {
			t.Fatalf("task %d got %d, want %d", id, got, n/3)
		}
	}
}

// wordSpout emits words in a fixed cycle.
type wordSpout struct {
	BaseSpout
	words []string
	limit int

	collector SpoutCollector
	next      int
}

func (s *wordSpout) Open(_ TopologyContext, c SpoutCollector) { s.collector = c }
func (s *wordSpout) NextTuple() bool {
	if s.next >= s.limit {
		return false
	}
	s.collector.Emit(Values{s.words[s.next%len(s.words)]}, s.next)
	s.next++
	return true
}

// wordCounter counts words per instance.
type wordCounter struct {
	BaseBolt
	mu     sync.Mutex
	counts map[string]int
}

func (b *wordCounter) Prepare(TopologyContext, OutputCollector) {
	b.counts = map[string]int{}
}
func (b *wordCounter) Execute(t *Tuple) {
	w, err := t.String("word")
	if err != nil {
		return
	}
	b.mu.Lock()
	b.counts[w]++
	b.mu.Unlock()
}

func TestFieldsGroupingKeyAffinityThroughEngine(t *testing.T) {
	words := []string{"ant", "bee", "cat", "dog", "elk", "fox"}
	var counters []*wordCounter
	var mu sync.Mutex
	b := NewTopologyBuilder("wordcount")
	b.SetSpout("src", func() Spout { return &wordSpout{words: words, limit: 600} }, 1, "word")
	b.SetBolt("count", func() Bolt {
		wc := &wordCounter{}
		mu.Lock()
		counters = append(counters, wc)
		mu.Unlock()
		return wc
	}, 3).FieldsGrouping("src", "word")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	// Every word must be counted by exactly one instance, with the full
	// count (600/6 = 100 each).
	seen := map[string]int{}
	mu.Lock()
	defer mu.Unlock()
	for _, wc := range counters {
		wc.mu.Lock()
		for w, n := range wc.counts {
			if _, dup := seen[w]; dup {
				t.Fatalf("word %q counted by two instances", w)
			}
			seen[w] = n
		}
		wc.mu.Unlock()
	}
	for _, w := range words {
		if seen[w] != 100 {
			t.Fatalf("word %q count = %d, want 100", w, seen[w])
		}
	}
}

// relayBolt forwards every input downstream.
type relayBolt struct {
	BaseBolt
	collector OutputCollector
}

func (b *relayBolt) Prepare(_ TopologyContext, c OutputCollector) { b.collector = c }
func (b *relayBolt) Execute(t *Tuple)                             { b.collector.Emit(Values{t.Values[0]}) }

func TestMultiStageAckingCompletes(t *testing.T) {
	const n = 200
	spout := &countingSpout{limit: n}
	b := NewTopologyBuilder("chain")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("relay1", func() Bolt { return &relayBolt{} }, 2, "n").ShuffleGrouping("src")
	b.SetBolt("relay2", func() Bolt { return &relayBolt{} }, 2, "n").ShuffleGrouping("relay1")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("relay2")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	if got := spout.acked.Load(); got != n {
		t.Fatalf("acked %d, want %d", got, n)
	}
	if got := c.InFlight(); got != 0 {
		t.Fatalf("in flight = %d", got)
	}
	// Snapshot sanity: relay stages executed n each, sink n.
	snap := c.Snapshot()
	for _, comp := range []string{"relay1", "relay2", "sink"} {
		var total int64
		for _, ts := range snap.ComponentTasks(comp) {
			total += ts.Executed
		}
		if total != n {
			t.Fatalf("%s executed %d, want %d", comp, total, n)
		}
	}
}

// failNthBolt fails every k-th tuple.
type failNthBolt struct {
	BaseBolt
	k         int
	collector OutputCollector
	seen      atomic.Int64
}

func (b *failNthBolt) Prepare(_ TopologyContext, c OutputCollector) { b.collector = c }
func (b *failNthBolt) Execute(*Tuple) {
	if n := b.seen.Add(1); int(n)%b.k == 0 {
		b.collector.Fail()
	}
}

func TestExplicitFailReachesSpout(t *testing.T) {
	const n = 100
	spout := &countingSpout{limit: n}
	b := NewTopologyBuilder("failing")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("judge", func() Bolt { return &failNthBolt{k: 4} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	if got := spout.failed.Load(); got != n/4 {
		t.Fatalf("spout failures = %d, want %d", got, n/4)
	}
	if got := spout.acked.Load(); got != n-n/4 {
		t.Fatalf("spout acks = %d, want %d", got, n-n/4)
	}
}

func TestDroppedTuplesFailByTimeout(t *testing.T) {
	const n = 50
	spout := &countingSpout{limit: n}
	b := NewTopologyBuilder("drops")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster(func(cfg *ClusterConfig) { cfg.AckTimeout = 50 * time.Millisecond })
	if err := c.Submit(topo, SubmitConfig{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	worker := c.WorkerIDs()[0]
	if err := c.InjectFault(worker, Fault{Slowdown: 1, DropProb: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for spout.failed.Load() < n && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := spout.failed.Load(); got != n {
		t.Fatalf("timed-out failures = %d, want %d", got, n)
	}
	snap := c.Snapshot()
	var dropped int64
	for _, ts := range snap.ComponentTasks("sink") {
		dropped += ts.Dropped
	}
	if dropped != n {
		t.Fatalf("dropped counter = %d, want %d", dropped, n)
	}
}

func TestFailProbFaultFailsImmediately(t *testing.T) {
	const n = 40
	spout := &countingSpout{limit: n}
	b := NewTopologyBuilder("failfast")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.InjectFault(c.WorkerIDs()[0], Fault{Slowdown: 1, FailProb: 1}); err != nil {
		t.Fatal(err)
	}
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	if got := spout.failed.Load(); got != n {
		t.Fatalf("failed = %d, want %d", got, n)
	}
}

func TestInjectFaultValidation(t *testing.T) {
	b := NewTopologyBuilder("v")
	b.SetSpout("src", func() Spout { return &countingSpout{limit: 1} }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.InjectFault("worker-0", Fault{Slowdown: 2}); err == nil {
		t.Fatal("fault before submit should error")
	}
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.InjectFault("nope", Fault{Slowdown: 2}); err == nil {
		t.Fatal("unknown worker should error")
	}
	w := c.WorkerIDs()[0]
	for _, bad := range []Fault{
		{Slowdown: 0.5},
		{Slowdown: 1, DropProb: -0.1},
		{Slowdown: 1, DropProb: 1.5},
		{Slowdown: 1, FailProb: 2},
	} {
		if err := c.InjectFault(w, bad); err == nil {
			t.Fatalf("fault %+v accepted", bad)
		}
	}
	if err := c.InjectFault(w, Fault{Slowdown: 4}); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	ws, ok := snap.WorkerByID(w)
	if !ok || !ws.Misbehaving || ws.Slowdown != 4 {
		t.Fatalf("worker stats = %+v", ws)
	}
	c.ClearFault(w)
	ws, _ = c.Snapshot().WorkerByID(w)
	if ws.Misbehaving {
		t.Fatal("fault not cleared")
	}
}

func TestSubmitTwiceFails(t *testing.T) {
	mk := func() *Topology {
		b := NewTopologyBuilder("t")
		b.SetSpout("src", func() Spout { return &countingSpout{limit: 1} }, 1, "n")
		b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
		topo, _ := b.Build()
		return topo
	}
	c := testCluster()
	if err := c.Submit(mk(), SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(mk(), SubmitConfig{}); err == nil {
		t.Fatal("second submit should fail")
	}
	c.Shutdown()
	// After shutdown a new topology can run.
	if err := c.Submit(mk(), SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	c.Shutdown()
}

func TestSchedulerPlacement(t *testing.T) {
	b := NewTopologyBuilder("place")
	b.SetSpout("src", func() Spout { return &countingSpout{limit: 1} }, 2, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 4).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster() // 2 nodes
	if err := c.Submit(topo, SubmitConfig{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if got := len(c.WorkerIDs()); got != 3 {
		t.Fatalf("%d workers, want 3", got)
	}
	snap := c.Snapshot()
	// 6 tasks over 3 workers round-robin → 2 each.
	perWorker := map[string]int{}
	for _, ts := range snap.Tasks {
		perWorker[ts.WorkerID]++
	}
	for w, n := range perWorker {
		if n != 2 {
			t.Fatalf("worker %s has %d tasks, want 2", w, n)
		}
	}
	// Workers round-robin over the 2 nodes → nodes have 2 and 1 workers.
	counts := map[string]int{}
	for _, ns := range snap.Nodes {
		counts[ns.NodeID] = len(ns.Workers)
	}
	if counts["node-0"] != 2 || counts["node-1"] != 1 {
		t.Fatalf("node worker counts = %v", counts)
	}
}

func TestDynamicGroupingEndToEnd(t *testing.T) {
	const n = 1000
	b := NewTopologyBuilder("dyn")
	b.SetSpout("src", func() Spout { return &countingSpout{limit: n} }, 1, "n")
	dg := b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 2).DynamicGrouping("src")
	if err := dg.SetRatios([]float64{0.8, 0.2}); err != nil {
		t.Fatal(err)
	}
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	snap := c.Snapshot()
	tasks := snap.ComponentTasks("sink")
	if len(tasks) != 2 {
		t.Fatalf("%d sink tasks", len(tasks))
	}
	if tasks[0].Executed != 800 || tasks[1].Executed != 200 {
		t.Fatalf("split = %d/%d, want 800/200", tasks[0].Executed, tasks[1].Executed)
	}
}

func TestAllGroupingReplicates(t *testing.T) {
	const n = 100
	b := NewTopologyBuilder("all")
	b.SetSpout("src", func() Spout { return &countingSpout{limit: n} }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 3).AllGrouping("src")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	snap := c.Snapshot()
	for _, ts := range snap.ComponentTasks("sink") {
		if ts.Executed != n {
			t.Fatalf("task %d executed %d, want %d (replication)", ts.TaskID, ts.Executed, n)
		}
	}
	if got := snap.TotalAcked(); got != n {
		t.Fatalf("acked %d roots, want %d", got, n)
	}
}

func TestInterferenceInflatesExecLatency(t *testing.T) {
	// One node, one core, several parallel tasks with a real simulated
	// cost: the executors overlap in time, the node is oversubscribed, and
	// the recorded exec latency must exceed the base cost.
	const n = 400
	base := 200 * time.Microsecond
	b := NewTopologyBuilder("interf")
	b.SetSpout("src", func() Spout { return &countingSpout{limit: n} }, 1, "n")
	b.SetBolt("work", func() Bolt { return &sinkBolt{} }, 4).
		ShuffleGrouping("src").
		WithExecCost(base)
	topo, _ := b.Build()
	c := testCluster(func(cfg *ClusterConfig) {
		cfg.Nodes = 1
		cfg.CoresPerNode = 1
		cfg.Delayer = RealDelayer{}
	})
	if err := c.Submit(topo, SubmitConfig{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(10 * time.Second) {
		t.Fatal("did not drain")
	}
	snap := c.Snapshot()
	var totalExec, totalLat int64
	for _, ts := range snap.ComponentTasks("work") {
		totalExec += ts.Executed
		totalLat += int64(ts.ExecLatency)
	}
	if totalExec != n {
		t.Fatalf("executed %d, want %d", totalExec, n)
	}
	avg := time.Duration(totalLat / totalExec)
	if avg <= base {
		t.Fatalf("avg exec latency %v not inflated above base %v", avg, base)
	}
}

func TestSnapshotHelpers(t *testing.T) {
	b := NewTopologyBuilder("snap")
	b.SetSpout("src", func() Spout { return &countingSpout{limit: 10} }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	snap := c.Snapshot()
	if _, ok := snap.TaskByID(0); !ok {
		t.Fatal("task 0 missing")
	}
	if _, ok := snap.TaskByID(999); ok {
		t.Fatal("phantom task found")
	}
	if _, ok := snap.WorkerByID("ghost"); ok {
		t.Fatal("phantom worker found")
	}
	ts, _ := snap.TaskByID(1)
	if ts.AvgExecLatency() < 0 {
		t.Fatal("negative latency")
	}
	spoutStats := snap.ComponentTasks("src")[0]
	if spoutStats.Acked != 10 {
		t.Fatalf("spout acked = %d", spoutStats.Acked)
	}
	if spoutStats.AvgCompleteLatency() <= 0 {
		t.Fatal("complete latency not measured")
	}
	// Shutdown then snapshot: empty but non-nil.
	c.Shutdown()
	empty := c.Snapshot()
	if len(empty.Tasks) != 0 {
		t.Fatal("snapshot after shutdown should be empty")
	}
}

func TestPauseResumeSpouts(t *testing.T) {
	spout := &countingSpout{limit: 1 << 30}
	b := NewTopologyBuilder("pause")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	time.Sleep(20 * time.Millisecond)
	c.PauseSpouts()
	c.Drain(2 * time.Second)
	before := c.Snapshot().TotalAcked()
	time.Sleep(30 * time.Millisecond)
	after := c.Snapshot().TotalAcked()
	if after != before {
		t.Fatalf("acks advanced while paused: %d -> %d", before, after)
	}
	c.ResumeSpouts()
	deadline := time.Now().Add(2 * time.Second)
	for c.Snapshot().TotalAcked() == after && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.Snapshot().TotalAcked() == after {
		t.Fatal("no progress after resume")
	}
}

func TestUnanchoredEmissionSkipsAcker(t *testing.T) {
	// msgID nil → no reliability tracking, tuples still delivered.
	var spoutC SpoutCollector
	emitted := 0
	sp := &SpoutFunc{
		OpenFn: func(_ TopologyContext, c SpoutCollector) { spoutC = c },
		NextFn: func() bool {
			if emitted >= 50 {
				return false
			}
			spoutC.Emit(Values{emitted}, nil)
			emitted++
			return true
		},
	}
	b := NewTopologyBuilder("unanchored")
	b.SetSpout("src", func() Spout { return sp }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	snap := c.Snapshot()
	if got := snap.ComponentTasks("sink")[0].Executed; got != 50 {
		t.Fatalf("sink executed %d, want 50", got)
	}
	if got := snap.TotalAcked(); got != 0 {
		t.Fatalf("unanchored run acked %d", got)
	}
}

func TestSpoutWithNoSubscribersAcksImmediately(t *testing.T) {
	spout := &countingSpout{limit: 20}
	b := NewTopologyBuilder("lonely")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	// A bolt on an unrelated spout keeps the topology valid.
	b.SetSpout("other", func() Spout { return &countingSpout{limit: 0} }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("other")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	if got := spout.acked.Load(); got != 20 {
		t.Fatalf("subscriber-less spout acked %d, want 20", got)
	}
}
