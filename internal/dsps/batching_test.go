package dsps

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestBatchingBackpressureBoundsSpout pins the tuple-denominated queue
// bound under micro-batching: when the downstream queue is full (stalled
// consumer), the spout's emission stream must wedge — tiny partial batches
// must not collapse the queue's effective capacity, and batch buffering
// must not let the producer run ahead of the bound.
func TestBatchingBackpressureBoundsSpout(t *testing.T) {
	var emitted atomic.Int64
	var col SpoutCollector
	spout := &SpoutFunc{
		OpenFn: func(_ TopologyContext, c SpoutCollector) { col = c },
		NextFn: func() bool {
			// Unanchored: MaxSpoutPending does not bound this stream, so the
			// only thing that can stop it is queue backpressure.
			col.Emit(Values{int(emitted.Add(1))}, nil)
			return true
		},
	}
	b := NewTopologyBuilder("batchbp")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	const queueSize, batchSize = 16, 8
	c := testCluster(func(cfg *ClusterConfig) {
		cfg.QueueSize = queueSize
		cfg.BatchSize = batchSize
		cfg.FlushInterval = time.Millisecond
	})
	if err := c.Submit(topo, SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	// Stall the sink's worker and let the pipeline wedge.
	if err := c.InjectFault("worker-1", Fault{Stall: true}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	before := emitted.Load()
	time.Sleep(150 * time.Millisecond)
	after := emitted.Load()
	// While stalled, the spout may at most top up the queue (queueSize
	// tuples) plus one in-flight batch buffer; sustained emission means
	// backpressure leaked.
	if after-before > queueSize+batchSize {
		t.Fatalf("spout kept emitting against a full queue: %d -> %d", before, after)
	}
	// Clearing the stall releases the backpressure and the stream resumes.
	c.ClearFault("worker-1")
	deadline := time.Now().Add(3 * time.Second)
	for emitted.Load() < after+10*queueSize && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := emitted.Load(); got < after+10*queueSize {
		t.Fatalf("spout did not resume after stall cleared: emitted %d", got)
	}
}
