package dsps

// TopologyContext tells a component instance where it runs.
type TopologyContext struct {
	// Component is the component name from the topology builder.
	Component string
	// TaskIndex is this instance's index within the component, in
	// [0, NumTasks).
	TaskIndex int
	// TaskID is the globally unique task id within the topology.
	TaskID int
	// NumTasks is the component's parallelism.
	NumTasks int
	// WorkerID identifies the worker process this task is assigned to.
	WorkerID string
	// NodeID identifies the machine hosting the worker.
	NodeID string
}

// SpoutCollector is how a spout emits tuples into the topology.
type SpoutCollector interface {
	// Emit sends a tuple. A non-nil msgID enables reliability tracking:
	// the spout's Ack or Fail will eventually be called with it.
	Emit(values Values, msgID any)
	// EmitInt64 sends a single-field int64 tuple through the typed payload
	// lane: neither the value nor the message id is boxed into an
	// interface, so a steady-state emit allocates nothing. A nonzero msgID
	// anchors the tuple; completions are delivered through AckerU64 when
	// the spout implements it, and boxed into Ack/Fail otherwise.
	EmitInt64(v int64, msgID uint64)
	// EmitFloat64 is EmitInt64 for a float64 payload.
	EmitFloat64(v float64, msgID uint64)
}

// AckerU64 is an optional Spout extension: spouts that anchor tuples with
// EmitInt64/EmitFloat64 receive their completions through it without the
// uint64 message id being boxed into an interface. Spouts that do not
// implement it get the id through Ack/Fail as an `any`-boxed uint64.
type AckerU64 interface {
	// AckU64 signals that the tuple tree rooted at msgID fully processed.
	AckU64(msgID uint64)
	// FailU64 signals that the tuple tree rooted at msgID failed or timed
	// out.
	FailU64(msgID uint64)
}

// Spout is a stream source, mirroring Storm's spout contract.
type Spout interface {
	// Open is called once per task before any NextTuple.
	Open(ctx TopologyContext, collector SpoutCollector)
	// NextTuple emits zero or more tuples via the collector and reports
	// whether it did any work; the executor backs off briefly on false.
	NextTuple() bool
	// Ack signals that the tuple tree rooted at msgID fully processed.
	Ack(msgID any)
	// Fail signals that the tuple tree rooted at msgID failed or timed
	// out.
	Fail(msgID any)
	// Close is called once on shutdown.
	Close()
}

// OutputCollector is how a bolt emits tuples. Emitted tuples are
// automatically anchored to the input tuple being executed, and the input
// is automatically acked when Execute returns (Storm "basic bolt"
// semantics) unless Fail was called.
type OutputCollector interface {
	// Emit sends a tuple downstream, anchored to the current input.
	Emit(values Values)
	// EmitInt64 sends a single-field int64 tuple through the typed payload
	// lane (no interface boxing), anchored to the current input.
	EmitInt64(v int64)
	// EmitFloat64 is EmitInt64 for a float64 payload.
	EmitFloat64(v float64)
	// Fail marks the current input tuple as failed; its root spout tuple
	// will be failed immediately.
	Fail()
}

// Bolt is a stream transformer/sink, mirroring Storm's basic-bolt
// contract.
type Bolt interface {
	// Prepare is called once per task before any Execute.
	Prepare(ctx TopologyContext, collector OutputCollector)
	// Execute processes one input tuple, emitting via the collector given
	// to Prepare.
	Execute(t *Tuple)
	// Cleanup is called once on shutdown.
	Cleanup()
}

// BaseSpout provides no-op Ack/Fail/Close so simple spouts only implement
// Open and NextTuple.
type BaseSpout struct{}

// Ack implements Spout.
func (BaseSpout) Ack(any) {}

// Fail implements Spout.
func (BaseSpout) Fail(any) {}

// Close implements Spout.
func (BaseSpout) Close() {}

// BaseBolt provides a no-op Cleanup.
type BaseBolt struct{}

// Cleanup implements Bolt.
func (BaseBolt) Cleanup() {}

// SpoutFunc adapts an emit-loop function into a Spout for tests and small
// examples.
type SpoutFunc struct {
	BaseSpout
	OpenFn func(ctx TopologyContext, c SpoutCollector)
	NextFn func() bool

	collector SpoutCollector
}

// Open implements Spout.
func (s *SpoutFunc) Open(ctx TopologyContext, c SpoutCollector) {
	s.collector = c
	if s.OpenFn != nil {
		s.OpenFn(ctx, c)
	}
}

// NextTuple implements Spout.
func (s *SpoutFunc) NextTuple() bool {
	if s.NextFn == nil {
		return false
	}
	return s.NextFn()
}

// BoltFunc adapts a function into a Bolt.
type BoltFunc struct {
	BaseBolt
	PrepareFn func(ctx TopologyContext, c OutputCollector)
	ExecuteFn func(t *Tuple, c OutputCollector)

	collector OutputCollector
}

// Prepare implements Bolt.
func (b *BoltFunc) Prepare(ctx TopologyContext, c OutputCollector) {
	b.collector = c
	if b.PrepareFn != nil {
		b.PrepareFn(ctx, c)
	}
}

// Execute implements Bolt.
func (b *BoltFunc) Execute(t *Tuple) {
	if b.ExecuteFn != nil {
		b.ExecuteFn(t, b.collector)
	}
}
