package dsps

import (
	"testing"
	"time"
)

func TestRebalanceChangesWorkerCount(t *testing.T) {
	spout := &countingSpout{limit: 1 << 30}
	b := NewTopologyBuilder("reb")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 4).ShuffleGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if got := len(c.TopologyWorkerIDs("reb")); got != 2 {
		t.Fatalf("initial workers = %d", got)
	}
	time.Sleep(20 * time.Millisecond)
	if err := c.Rebalance("reb", SubmitConfig{Workers: 4, Strategy: PlaceBlocked}, time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(c.TopologyWorkerIDs("reb")); got != 4 {
		t.Fatalf("post-rebalance workers = %d", got)
	}
	// The topology keeps processing after rebalance.
	before := spout.acked.Load()
	deadline := time.Now().Add(2 * time.Second)
	for spout.acked.Load() == before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if spout.acked.Load() == before {
		t.Fatal("no progress after rebalance")
	}
	if err := c.Rebalance("ghost", SubmitConfig{}, 0); err == nil {
		t.Fatal("rebalancing unknown topology accepted")
	}
}

func TestRebalancePreservesDynamicGroupingHandle(t *testing.T) {
	spout := &countingSpout{limit: 1 << 30}
	b := NewTopologyBuilder("rebdyn")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	dg := b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 2).DynamicGrouping("src")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := dg.SetRatios([]float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := c.Rebalance("rebdyn", SubmitConfig{Workers: 3}, time.Second); err != nil {
		t.Fatal(err)
	}
	// The same handle still steers the resubmitted topology.
	if err := dg.SetRatios([]float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	snap := c.Snapshot()
	tasks := snap.ComponentTasks("sink")
	if len(tasks) != 2 {
		t.Fatalf("sink tasks = %d", len(tasks))
	}
	// After the post-rebalance ratio flip, only task index 1 receives new
	// tuples.
	if tasks[1].Executed == 0 {
		t.Fatal("steered task received nothing after rebalance")
	}
}

func TestStallFaultStopsProcessingUntilCleared(t *testing.T) {
	spout := &countingSpout{limit: 1 << 30}
	b := NewTopologyBuilder("stall")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster(func(cfg *ClusterConfig) {
		cfg.QueueSize = 16
		cfg.MaxSpoutPending = 32
		cfg.AckTimeout = time.Minute
	})
	if err := c.Submit(topo, SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	time.Sleep(30 * time.Millisecond)
	// The sink bolt lives on worker-1 (spout on worker-0).
	if err := c.InjectFault("worker-1", Fault{Stall: true}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	stalled := c.Snapshot().ComponentTasks("sink")[0].Executed
	time.Sleep(80 * time.Millisecond)
	after := c.Snapshot().ComponentTasks("sink")[0].Executed
	// At most one in-flight tuple completes after the stall lands.
	if after > stalled+1 {
		t.Fatalf("stalled worker still processing: %d -> %d", stalled, after)
	}
	c.ClearFault("worker-1")
	deadline := time.Now().Add(2 * time.Second)
	for c.Snapshot().ComponentTasks("sink")[0].Executed <= after && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Snapshot().ComponentTasks("sink")[0].Executed; got <= after {
		t.Fatalf("no recovery after clearing stall: %d", got)
	}
}

func TestStallFaultAllowsShutdown(t *testing.T) {
	spout := &countingSpout{limit: 1 << 30}
	b := NewTopologyBuilder("stallstop")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster(func(cfg *ClusterConfig) { cfg.QueueSize = 8; cfg.MaxSpoutPending = 16 })
	if err := c.Submit(topo, SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectFault("worker-1", Fault{Stall: true}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		c.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown hung on stalled worker")
	}
}

func TestBlockedSendReroutesOnDynamicEdge(t *testing.T) {
	// A producer blocked on a stalled task's full queue must re-direct the
	// waiting tuple once the dynamic ratios steer away from that task —
	// instead of wedging forever.
	spout := &countingSpout{limit: 1 << 30}
	b := NewTopologyBuilder("reroute")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	dg := b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 2).DynamicGrouping("src")
	topo, _ := b.Build()
	c := testCluster(func(cfg *ClusterConfig) {
		cfg.QueueSize = 8
		cfg.MaxSpoutPending = 64
		cfg.AckTimeout = time.Minute
		// This test pins per-tuple wedge/re-route rates; with larger
		// batches a blocked send legitimately leaks one whole batch per
		// reroute interval, which would swamp the wedge assertion below.
		cfg.BatchSize = 1
	})
	if err := c.Submit(topo, SubmitConfig{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	// Stall the worker hosting sink task 0 (task id 1 → worker-1).
	if err := c.InjectFault("worker-1", Fault{Stall: true}); err != nil {
		t.Fatal(err)
	}
	// Wait for the spout to wedge on the stalled task's full queue.
	time.Sleep(150 * time.Millisecond)
	wedged := c.Snapshot().TotalAcked()
	time.Sleep(150 * time.Millisecond)
	if got := c.Snapshot().TotalAcked(); got > wedged+16 {
		t.Fatalf("expected the spout to wedge before bypass; acked %d -> %d", wedged, got)
	}
	// Steer everything to task 1: the blocked emission must re-route.
	if err := dg.SetRatios([]float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if c.Snapshot().TotalAcked() > wedged+100 {
			return // recovered
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("producer stayed wedged after bypass: acked %d", c.Snapshot().TotalAcked())
}

func TestBlockedSendNeverReroutesFieldsGrouping(t *testing.T) {
	// Fields-grouping correctness depends on stable key→task assignment:
	// a blocked send on a fields edge must NOT re-route, even under
	// stall.
	spout := &wordSpout{words: []string{"a", "b", "c", "d"}, limit: 1 << 30}
	b := NewTopologyBuilder("noreroute")
	b.SetSpout("src", func() Spout { return spout }, 1, "word")
	b.SetBolt("count", func() Bolt { return &wordCounter{} }, 2).
		FieldsGrouping("src", "word")
	topo, _ := b.Build()
	c := testCluster(func(cfg *ClusterConfig) {
		cfg.QueueSize = 8
		cfg.MaxSpoutPending = 32
		cfg.AckTimeout = time.Minute
	})
	if err := c.Submit(topo, SubmitConfig{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.InjectFault("worker-1", Fault{Stall: true}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	// The stalled count task executed at most one tuple mid-flight, and —
	// crucially — the healthy task received no keys that hash to the
	// stalled one (no re-route happened): every executed tuple on task 1
	// belongs there by hash. We verify indirectly: total executed stays
	// bounded by what task 1's own keys allow before the spout wedges.
	snap := c.Snapshot()
	tasks := snap.ComponentTasks("count")
	stalledExec := tasks[0].Executed
	if stalledExec > 1 {
		t.Fatalf("stalled task executed %d tuples", stalledExec)
	}
	// The system wedges rather than re-routing: acked must be far below
	// unbounded progress.
	if acked := snap.TotalAcked(); acked > 64 {
		t.Fatalf("fields-grouped pipeline kept flowing (%d acked) — did it re-route?", acked)
	}
}

func TestFaultSlowdownZeroMeansNone(t *testing.T) {
	b := NewTopologyBuilder("fz")
	b.SetSpout("src", func() Spout { return &countingSpout{limit: 1} }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster()
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.InjectFault("worker-0", Fault{DropProb: 0.5}); err != nil {
		t.Fatalf("Slowdown=0 fault rejected: %v", err)
	}
	if err := c.InjectFault("worker-0", Fault{Slowdown: 0.5}); err == nil {
		t.Fatal("fractional slowdown accepted")
	}
}
