package dsps

import (
	"math"
	"testing"
)

func TestFaultValidation(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name string
		f    Fault
		ok   bool
	}{
		{"zero value", Fault{}, true},
		{"no slowdown", Fault{Slowdown: 0}, true},
		{"unit slowdown", Fault{Slowdown: 1}, true},
		{"big slowdown", Fault{Slowdown: 8}, true},
		{"stall only", Fault{Stall: true}, true},
		{"full drop", Fault{DropProb: 1}, true},
		{"full fail", Fault{FailProb: 1}, true},
		{"combined", Fault{Slowdown: 2, DropProb: 0.5, FailProb: 0.5, Stall: true}, true},

		// Slowdown in (0,1) would speed the worker up; reject it.
		{"fractional slowdown", Fault{Slowdown: 0.5}, false},
		{"negative slowdown", Fault{Slowdown: -1}, false},
		{"NaN slowdown", Fault{Slowdown: nan}, false},
		{"Inf slowdown", Fault{Slowdown: inf}, false},

		// NaN compares false against both bounds of [0,1], so these probe
		// the explicit IsNaN/IsInf checks.
		{"NaN drop", Fault{DropProb: nan}, false},
		{"Inf drop", Fault{DropProb: inf}, false},
		{"negative drop", Fault{DropProb: -0.1}, false},
		{"excess drop", Fault{DropProb: 1.1}, false},
		{"NaN fail", Fault{FailProb: nan}, false},
		{"Inf fail", Fault{FailProb: inf}, false},
		{"negative Inf fail", Fault{FailProb: math.Inf(-1)}, false},
		{"excess fail", Fault{FailProb: 2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f.valid()
			if tc.ok && err != nil {
				t.Fatalf("valid() rejected %+v: %v", tc.f, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("valid() accepted %+v", tc.f)
			}
		})
	}
}

func TestInjectFaultUnknownWorker(t *testing.T) {
	c := testCluster()
	defer c.Shutdown()
	// No topology submitted: every worker id is unknown.
	if err := c.InjectFault("worker-0", Fault{Slowdown: 2}); err == nil {
		t.Fatal("InjectFault on empty cluster accepted")
	}

	b := NewTopologyBuilder("faults")
	b.SetSpout("src", func() Spout { return &countingSpout{limit: 1} }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	if err := c.Submit(topo, SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectFault("no-such-worker", Fault{Slowdown: 2}); err == nil {
		t.Fatal("InjectFault on unknown worker accepted")
	}
	ids := c.WorkerIDs()
	if len(ids) != 2 {
		t.Fatalf("WorkerIDs = %v", ids)
	}
	if err := c.InjectFault(ids[0], Fault{Slowdown: 2}); err != nil {
		t.Fatalf("InjectFault on live worker failed: %v", err)
	}
	// A live worker with an invalid fault must still be rejected.
	if err := c.InjectFault(ids[0], Fault{DropProb: math.NaN()}); err == nil {
		t.Fatal("InjectFault accepted NaN drop probability")
	}
	// Clearing unknown ids is a silent no-op, like clearing a clean worker.
	c.ClearFault("no-such-worker")
	c.ClearFault(ids[0])
}
