package dsps

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// laneSpout emits anchored int64 payloads through the typed lane
// (EmitInt64, no Values slice) and counts completions through the
// unboxed AckerU64 path.
type laneSpout struct {
	BaseSpout
	limit int

	collector SpoutCollector
	next      int
	ackedU64  atomic.Int64
	failedU64 atomic.Int64
}

func (s *laneSpout) Open(_ TopologyContext, c SpoutCollector) { s.collector = c }

func (s *laneSpout) NextTuple() bool {
	if s.next >= s.limit {
		return false
	}
	s.collector.EmitInt64(int64(s.next), uint64(s.next)+1)
	s.next++
	return true
}

func (s *laneSpout) AckU64(uint64)  { s.ackedU64.Add(1) }
func (s *laneSpout) FailU64(uint64) { s.failedU64.Add(1) }

// ringCfg flips a test cluster onto the SPSC ring data plane.
func ringCfg(size int, strategy string) func(*ClusterConfig) {
	return func(cfg *ClusterConfig) {
		cfg.RingSize = size
		cfg.WaitStrategy = strategy
	}
}

// runSeededPlane is runSeeded with arbitrary extra cluster knobs, so the
// determinism fingerprint can be compared across data planes.
func runSeededPlane(t *testing.T, seed int64, opts ...func(*ClusterConfig)) map[string]string {
	t.Helper()
	spout := &wordSpout{words: []string{"a", "b", "c", "d", "e"}, limit: 500}
	b := NewTopologyBuilder("det")
	b.SetSpout("src", func() Spout { return spout }, 1, "word")
	b.SetBolt("pass", func() Bolt { return &relayBolt{} }, 2, "word").ShuffleGrouping("src")
	b.SetBolt("count", func() Bolt { return &wordCounter{} }, 3).FieldsGrouping("pass", "word")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	all := append([]func(*ClusterConfig){func(cfg *ClusterConfig) { cfg.Seed = seed }}, opts...)
	c := testCluster(all...)
	if err := c.Submit(topo, SubmitConfig{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(10 * time.Second) {
		t.Fatal("did not drain")
	}
	snap := c.Snapshot()
	out := map[string]string{}
	for _, comp := range []string{"src", "pass", "count"} {
		for _, ts := range snap.ComponentTasks(comp) {
			key := fmt.Sprintf("%s/%d", comp, ts.TaskIndex)
			out[key] = fmt.Sprintf("exec=%d emit=%d acked=%d failed=%d",
				ts.Executed, ts.Emitted, ts.Acked, ts.Failed)
		}
	}
	return out
}

// TestRingPlaneDeterminismMatchesChannelPlane pins the reproducibility
// contract across data planes: with the same seed, the ring plane must
// land every tuple on the same task as the channel plane (routing derives
// from the seed, never from which plane carried the batch), and two
// rings-on runs must be byte-identical to each other.
func TestRingPlaneDeterminismMatchesChannelPlane(t *testing.T) {
	channel := runSeededPlane(t, 42)
	ringsA := runSeededPlane(t, 42, ringCfg(8, "hybrid"))
	ringsB := runSeededPlane(t, 42, ringCfg(8, "hybrid"))
	if len(channel) != len(ringsA) {
		t.Fatalf("task sets differ: channel %d vs rings %d", len(channel), len(ringsA))
	}
	for k, v := range channel {
		if ringsA[k] != v {
			t.Errorf("task %s diverged across planes: channel %q vs rings %q", k, v, ringsA[k])
		}
		if ringsB[k] != ringsA[k] {
			t.Errorf("task %s diverged across rings-on runs: %q vs %q", k, ringsA[k], ringsB[k])
		}
	}
	if channel["src/0"] != "exec=500 emit=500 acked=500 failed=0" {
		t.Fatalf("unexpected spout tally: %q", channel["src/0"])
	}
}

// TestRingPlaneMultiStageAcking runs the three-stage anchored chain on the
// ring plane and checks every root completes through the single-writer
// acker owners.
func TestRingPlaneMultiStageAcking(t *testing.T) {
	const n = 400
	spout := &countingSpout{limit: n}
	b := NewTopologyBuilder("chain")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("relay1", func() Bolt { return &relayBolt{} }, 2, "n").ShuffleGrouping("src")
	b.SetBolt("relay2", func() Bolt { return &relayBolt{} }, 2, "n").ShuffleGrouping("relay1")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("relay2")
	topo, _ := b.Build()
	c := testCluster(ringCfg(16, "hybrid"))
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(10 * time.Second) {
		t.Fatal("did not drain")
	}
	if got := spout.acked.Load(); got != n {
		t.Fatalf("acked %d, want %d", got, n)
	}
	if got := c.InFlight(); got != 0 {
		t.Fatalf("in flight = %d", got)
	}
	snap := c.Snapshot()
	for _, comp := range []string{"relay1", "relay2", "sink"} {
		total := int64(0)
		for _, ts := range snap.ComponentTasks(comp) {
			total += ts.Executed
		}
		if total != n {
			t.Fatalf("%s executed %d, want %d", comp, total, n)
		}
	}
}

// TestRingPlaneWaitStrategies runs the anchored chain to completion under
// every wait strategy; spin and park stress opposite ends of the
// idle-handling state machine.
func TestRingPlaneWaitStrategies(t *testing.T) {
	for _, ws := range []string{"hybrid", "spin", "park"} {
		t.Run(ws, func(t *testing.T) {
			const n = 200
			spout := &countingSpout{limit: n}
			b := NewTopologyBuilder("chain-" + ws)
			b.SetSpout("src", func() Spout { return spout }, 1, "n")
			b.SetBolt("relay", func() Bolt { return &relayBolt{} }, 2, "n").ShuffleGrouping("src")
			b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("relay")
			topo, _ := b.Build()
			c := testCluster(ringCfg(8, ws))
			if err := c.Submit(topo, SubmitConfig{}); err != nil {
				t.Fatal(err)
			}
			defer c.Shutdown()
			if !c.Drain(10 * time.Second) {
				t.Fatal("did not drain")
			}
			if got := spout.acked.Load(); got != n {
				t.Fatalf("acked %d, want %d", got, n)
			}
		})
	}
}

// TestRingPlaneInvalidWaitStrategyRejected pins the config error path.
func TestRingPlaneInvalidWaitStrategyRejected(t *testing.T) {
	spout := &countingSpout{limit: 1}
	b := NewTopologyBuilder("bad-ws")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster(ringCfg(8, "bogus"))
	defer c.Shutdown()
	if err := c.Submit(topo, SubmitConfig{}); err == nil {
		t.Fatal("submit accepted an invalid wait strategy")
	}
}

// TestRingPlaneSmallRingBackpressure clamps the queue (and therefore the
// rings) very small against a fast spout: the tuple-denominated
// reservation bound must keep every push infallible and still complete
// every root.
func TestRingPlaneSmallRingBackpressure(t *testing.T) {
	const n = 3000
	spout := &countingSpout{limit: n}
	b := NewTopologyBuilder("bp")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("relay", func() Bolt { return &relayBolt{} }, 1, "n").ShuffleGrouping("src")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("relay")
	topo, _ := b.Build()
	c := testCluster(func(cfg *ClusterConfig) {
		cfg.QueueSize = 8
		cfg.MaxSpoutPending = 32
		cfg.RingSize = 1 // clamped up to QueueSize batch slots
		cfg.WaitStrategy = "hybrid"
	})
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(20 * time.Second) {
		t.Fatal("did not drain under tight backpressure")
	}
	if got := spout.acked.Load(); got != n {
		t.Fatalf("acked %d, want %d", got, n)
	}
	if got := c.InFlight(); got != 0 {
		t.Fatalf("in flight = %d", got)
	}
}

// TestRingPlaneScaleChurnConserves repeats the elastic churn cycle on the
// ring plane: live attach of new consumer rings on scale-up, retirement
// drain of orphaned rings on scale-down, with spout conservation audited
// at the end.
func TestRingPlaneScaleChurnConserves(t *testing.T) {
	spout := &gatedSpout{}
	spout.limit.Store(1 << 40)
	tally := newTaskTally()
	topo, err := scaleTopology(spout, tally, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(func(cfg *ClusterConfig) {
		cfg.QueueSize = 64
		cfg.MaxSpoutPending = 256
		cfg.RingSize = 16
	})
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := c.ScaleUp("elastic", "work", 2); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(10 * time.Millisecond)
			if err := c.ScaleDown("elastic", "work", 2, time.Second); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	wg.Wait()
	c.PauseSpouts()
	if !c.Drain(10 * time.Second) {
		t.Fatal("did not drain after ring-plane scale churn")
	}
	snap := c.Snapshot()
	spoutConservation(t, snap)
	if got := c.ComponentParallelism("elastic", "work"); got != 2 {
		t.Fatalf("parallelism after churn = %d, want 2", got)
	}
	if len(snap.Scale) != 1 || snap.Scale[0].Ups != 12 || snap.Scale[0].Downs != 12 {
		t.Fatalf("scale stats after churn = %+v, want Ups=12 Downs=12", snap.Scale)
	}
}

// TestRingPlaneTypedLanesEndToEnd drives lane-emitted tuples (no Values
// slice) through a fields grouping into a counting sink on the ring
// plane, checking payloads survive the SoA batches and hash like their
// boxed equivalents would.
func TestRingPlaneTypedLanesEndToEnd(t *testing.T) {
	const n = 300
	spout := &laneSpout{limit: n}
	var mu sync.Mutex
	sums := map[int]int64{}
	b := NewTopologyBuilder("lanes")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("sink", func() Bolt {
		return &BoltFunc{ExecuteFn: func(tp *Tuple, _ OutputCollector) {
			v, ok := tp.Int64()
			if !ok {
				t.Error("lane payload missing")
				return
			}
			mu.Lock()
			sums[int(v)%3]++
			mu.Unlock()
		}}
	}, 3).FieldsGrouping("src", "n")
	topo, _ := b.Build()
	c := testCluster(ringCfg(8, "hybrid"))
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(10 * time.Second) {
		t.Fatal("did not drain")
	}
	if got := spout.ackedU64.Load(); got != n {
		t.Fatalf("AckU64 completions %d, want %d", got, n)
	}
	mu.Lock()
	defer mu.Unlock()
	total := int64(0)
	for _, s := range sums {
		total += s
	}
	if total != n {
		t.Fatalf("sink saw %d lane tuples, want %d", total, n)
	}
}
