package dsps

import (
	"math"
	"testing"
	"testing/quick"
)

func mkTuple(fields []string, values ...any) *Tuple {
	return &Tuple{Values: values, fields: fields}
}

func TestShuffleGroupingRoundRobin(t *testing.T) {
	g := &ShuffleGrouping{}
	counts := make([]int, 3)
	for i := 0; i < 300; i++ {
		idx := g.Select(nil, 3)
		if len(idx) != 1 {
			t.Fatalf("shuffle returned %d targets", len(idx))
		}
		counts[idx[0]]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Fatalf("task %d got %d tuples, want 100", i, c)
		}
	}
}

func TestFieldsGroupingConsistentAndSpread(t *testing.T) {
	g := &FieldsGrouping{Fields: []string{"key"}}
	fields := []string{"key", "val"}
	a1 := g.Select(mkTuple(fields, "alpha", 1), 4)
	a2 := g.Select(mkTuple(fields, "alpha", 99), 4)
	if a1[0] != a2[0] {
		t.Fatal("same key routed to different tasks")
	}
	// Different keys should spread over tasks (statistically).
	seen := map[int]bool{}
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	for _, k := range keys {
		seen[g.Select(mkTuple(fields, k, 0), 4)[0]] = true
	}
	if len(seen) < 2 {
		t.Fatalf("10 keys landed on %d task(s)", len(seen))
	}
}

func TestFieldsGroupingMissingFieldIsDeterministic(t *testing.T) {
	g := &FieldsGrouping{Fields: []string{"nope"}}
	a := g.Select(mkTuple([]string{"key"}, "x"), 4)
	b := g.Select(mkTuple([]string{"key"}, "y"), 4)
	if a[0] != b[0] {
		t.Fatal("missing field should route deterministically")
	}
}

func TestGlobalAndAllGrouping(t *testing.T) {
	if got := (GlobalGrouping{}).Select(nil, 5); len(got) != 1 || got[0] != 0 {
		t.Fatalf("global = %v", got)
	}
	got := (AllGrouping{}).Select(nil, 3)
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("all = %v", got)
	}
}

func TestDynamicGroupingTracksRatioExactly(t *testing.T) {
	g := &DynamicGrouping{}
	if err := g.SetRatios([]float64{0.7, 0.3}); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 2)
	for i := 0; i < 1000; i++ {
		counts[g.Select(nil, 2)[0]]++
	}
	if counts[0] != 700 || counts[1] != 300 {
		t.Fatalf("70/30 split gave %v", counts)
	}
}

func TestDynamicGroupingZeroRatioBypasses(t *testing.T) {
	g := &DynamicGrouping{}
	if err := g.SetRatios([]float64{1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for i := 0; i < 100; i++ {
		counts[g.Select(nil, 3)[0]]++
	}
	if counts[1] != 0 {
		t.Fatalf("bypassed task received %d tuples", counts[1])
	}
	if counts[0] != 50 || counts[2] != 50 {
		t.Fatalf("remaining split = %v", counts)
	}
}

func TestDynamicGroupingOnTheFlyUpdate(t *testing.T) {
	g := &DynamicGrouping{}
	if err := g.SetRatios([]float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		g.Select(nil, 2)
	}
	if err := g.SetRatios([]float64{0.9, 0.1}); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 2)
	for i := 0; i < 1000; i++ {
		counts[g.Select(nil, 2)[0]]++
	}
	if counts[0] != 900 || counts[1] != 100 {
		t.Fatalf("post-update split = %v", counts)
	}
	if g.Updates() != 2 {
		t.Fatalf("Updates = %d", g.Updates())
	}
}

func TestDynamicGroupingDefaultsToUniform(t *testing.T) {
	g := &DynamicGrouping{}
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		counts[g.Select(nil, 4)[0]]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Fatalf("uniform default: task %d got %d", i, c)
		}
	}
}

func TestDynamicGroupingRatioValidation(t *testing.T) {
	g := &DynamicGrouping{}
	for _, bad := range [][]float64{
		nil,
		{},
		{-1, 2},
		{0, 0},
		{math.NaN(), 1},
		{math.Inf(1), 1},
	} {
		if err := g.SetRatios(bad); err == nil {
			t.Fatalf("SetRatios(%v) accepted", bad)
		}
	}
}

func TestDynamicGroupingRatiosNormalized(t *testing.T) {
	g := &DynamicGrouping{}
	if err := g.SetRatios([]float64{2, 6}); err != nil {
		t.Fatal(err)
	}
	r := g.Ratios()
	if math.Abs(r[0]-0.25) > 1e-12 || math.Abs(r[1]-0.75) > 1e-12 {
		t.Fatalf("normalized = %v", r)
	}
	if (&DynamicGrouping{}).Ratios() != nil {
		t.Fatal("unset ratios should be nil")
	}
}

func TestPropertyDynamicGroupingLongRunShare(t *testing.T) {
	// For any valid ratio vector, the observed share over n·1000 tuples is
	// within 1/1000 of the requested share.
	f := func(seedA, seedB, seedC uint8) bool {
		ratios := []float64{float64(seedA%9) + 1, float64(seedB%9) + 1, float64(seedC%9) + 1}
		g := &DynamicGrouping{}
		if err := g.SetRatios(ratios); err != nil {
			return false
		}
		const rounds = 3000
		counts := make([]float64, 3)
		for i := 0; i < rounds; i++ {
			counts[g.Select(nil, 3)[0]]++
		}
		var sum float64
		for _, r := range ratios {
			sum += r
		}
		for i := range ratios {
			want := ratios[i] / sum
			got := counts[i] / rounds
			if math.Abs(got-want) > 0.002 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTupleFieldAccessors(t *testing.T) {
	tpl := mkTuple([]string{"s", "n", "f"}, "hello", 7, 2.5)
	if v, err := tpl.String("s"); err != nil || v != "hello" {
		t.Fatalf("String = %v, %v", v, err)
	}
	if v, err := tpl.Int("n"); err != nil || v != 7 {
		t.Fatalf("Int = %v, %v", v, err)
	}
	if v, err := tpl.Float("f"); err != nil || v != 2.5 {
		t.Fatalf("Float = %v, %v", v, err)
	}
	if _, err := tpl.GetValue("missing"); err == nil {
		t.Fatal("missing field should error")
	}
	if _, err := tpl.String("n"); err == nil {
		t.Fatal("type mismatch should error")
	}
	if _, err := tpl.Int("s"); err == nil {
		t.Fatal("type mismatch should error")
	}
	if _, err := tpl.Float("s"); err == nil {
		t.Fatal("type mismatch should error")
	}
	fields := tpl.Fields()
	fields[0] = "mutated"
	if tpl.fields[0] != "s" {
		t.Fatal("Fields aliases internal schema")
	}
}
