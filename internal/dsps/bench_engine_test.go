// Engine data-plane benchmarks: tuples/s and allocs/op through live
// topologies on the simulated cluster. These are the numbers recorded in
// BENCH_engine.json (regenerate with `make bench-engine`); `make
// bench-smoke` compiles and runs each for a single iteration in CI.
//
// The benchmarks use only the public API so the same file measures any
// engine revision: a spout emits b.N tuples with a constant payload and a
// static msgID (no per-tuple boxing on the app side), and the timer stops
// when the last tuple is acked (anchored) or counted by the sink
// (unanchored) — no Drain settle window inside the timed region.
package dsps_test

import (
	"sync/atomic"
	"testing"
	"time"

	"predstream/internal/dsps"
)

// benchMsgID is a preallocated msgID so anchored emission measures engine
// allocations, not interface boxing in the benchmark spout.
var benchMsgID any = "bench"

// benchValues is a constant payload; the engine copies tuple headers, not
// payloads, so sharing it across emissions is safe and allocation-free.
var benchValues = dsps.Values{int(7)}

// benchSpout emits exactly limit tuples and counts completions.
type benchSpout struct {
	dsps.BaseSpout
	limit    int
	anchored bool

	collector dsps.SpoutCollector
	next      int
	done      *atomic.Int64 // acked + failed roots
}

func (s *benchSpout) Open(_ dsps.TopologyContext, c dsps.SpoutCollector) { s.collector = c }

func (s *benchSpout) NextTuple() bool {
	if s.next >= s.limit {
		return false
	}
	if s.anchored {
		s.collector.Emit(benchValues, benchMsgID)
	} else {
		s.collector.Emit(benchValues, nil)
	}
	s.next++
	return true
}

func (s *benchSpout) Ack(any)  { s.done.Add(1) }
func (s *benchSpout) Fail(any) { s.done.Add(1) }

// benchLaneSpout is benchSpout on the typed emit path: int64 lane
// payloads, uint64 msgIDs, completions through AckerU64 — nothing boxed
// end to end.
type benchLaneSpout struct {
	dsps.BaseSpout
	limit int

	collector dsps.SpoutCollector
	next      int
	done      *atomic.Int64
}

func (s *benchLaneSpout) Open(_ dsps.TopologyContext, c dsps.SpoutCollector) { s.collector = c }

func (s *benchLaneSpout) NextTuple() bool {
	if s.next >= s.limit {
		return false
	}
	s.collector.EmitInt64(7, uint64(s.next)+1)
	s.next++
	return true
}

func (s *benchLaneSpout) AckU64(uint64)  { s.done.Add(1) }
func (s *benchLaneSpout) FailU64(uint64) { s.done.Add(1) }

// benchRelay forwards every tuple downstream.
type benchRelay struct {
	dsps.BaseBolt
	collector dsps.OutputCollector
}

func (b *benchRelay) Prepare(_ dsps.TopologyContext, c dsps.OutputCollector) { b.collector = c }
func (b *benchRelay) Execute(*dsps.Tuple)                                    { b.collector.Emit(benchValues) }

// benchLaneRelay forwards the unboxed lane payload downstream.
type benchLaneRelay struct {
	dsps.BaseBolt
	collector dsps.OutputCollector
}

func (b *benchLaneRelay) Prepare(_ dsps.TopologyContext, c dsps.OutputCollector) { b.collector = c }
func (b *benchLaneRelay) Execute(t *dsps.Tuple) {
	v, _ := t.Int64()
	b.collector.EmitInt64(v)
}

// benchSink counts arrivals into a shared atomic.
type benchSink struct {
	dsps.BaseBolt
	seen *atomic.Int64
}

func (b *benchSink) Prepare(dsps.TopologyContext, dsps.OutputCollector) {}
func (b *benchSink) Execute(*dsps.Tuple)                                { b.seen.Add(1) }

func benchCluster(b *testing.B, opts ...func(*dsps.ClusterConfig)) *dsps.Cluster {
	b.Helper()
	cfg := dsps.ClusterConfig{
		Nodes:           2,
		CoresPerNode:    4,
		QueueSize:       1024,
		MaxSpoutPending: 4096,
		AckTimeout:      time.Minute,
		Delayer:         dsps.NopDelayer{},
		Seed:            1,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return dsps.NewCluster(cfg)
}

// benchRings flips a benchmark cluster onto the SPSC ring data plane —
// the configuration the headline rows measure (see DESIGN.md "Data plane
// v2"); the *Chan* control rows keep the channel plane for comparison.
func benchRings(cfg *dsps.ClusterConfig) {
	cfg.RingSize = 1024
	cfg.WaitStrategy = "hybrid"
}

// waitFor sleep-polls until the counter reaches want. Polling must not
// busy-spin: the benchmark goroutine shares the scheduler with the
// executors it is timing, and a hot loop on a small GOMAXPROCS steals a
// double-digit share of the run it measures. 50µs polls bound the
// detection delay well below benchmark noise.
func waitFor(b *testing.B, ctr *atomic.Int64, want int64) {
	b.Helper()
	deadline := time.Now().Add(5 * time.Minute)
	for ctr.Load() < want {
		if time.Now().After(deadline) {
			b.Fatalf("stalled: %d/%d after 5m", ctr.Load(), want)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// runEngineBench submits the topology, times b.N tuples through it, and
// reports tuples/s.
func runEngineBench(b *testing.B, c *dsps.Cluster, topo *dsps.Topology, workers int, ctr *atomic.Int64, want int64) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: workers}); err != nil {
		b.Fatal(err)
	}
	waitFor(b, ctr, want)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
	c.Shutdown()
}

// benchLinearAcked is the headline row: spout(1) -> relay(2) -> sink(2),
// every root anchored and acked through the XOR tree.
func benchLinearAcked(b *testing.B, workers int, opts ...func(*dsps.ClusterConfig)) {
	var done atomic.Int64
	var seen atomic.Int64
	spout := &benchSpout{limit: b.N, anchored: true, done: &done}
	tb := dsps.NewTopologyBuilder("bench-linear")
	tb.SetSpout("src", func() dsps.Spout { return spout }, 1, "v")
	tb.SetBolt("relay", func() dsps.Bolt { return &benchRelay{} }, 2, "v").ShuffleGrouping("src")
	tb.SetBolt("sink", func() dsps.Bolt { return &benchSink{seen: &seen} }, 2).ShuffleGrouping("relay")
	topo, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	runEngineBench(b, benchCluster(b, opts...), topo, workers, &done, int64(b.N))
}

// The headline rows measure data plane v2 (SPSC rings + single-writer
// acker owners); the Chan rows are the channel-plane control.
func BenchmarkEngineLinearAckedW1(b *testing.B) { benchLinearAcked(b, 1, benchRings) }
func BenchmarkEngineLinearAckedW2(b *testing.B) { benchLinearAcked(b, 2, benchRings) }
func BenchmarkEngineLinearAckedW4(b *testing.B) { benchLinearAcked(b, 4, benchRings) }

func BenchmarkEngineLinearAckedChanW1(b *testing.B) { benchLinearAcked(b, 1) }
func BenchmarkEngineLinearAckedChanW4(b *testing.B) { benchLinearAcked(b, 4) }

// BenchmarkEngineLinearAckedLanesW1 is the fully unboxed headline: typed
// int64 lanes end to end (EmitInt64/Int64/AckerU64) on the ring plane —
// no Values slice, no msgID boxing, no interface dispatch on completions.
func BenchmarkEngineLinearAckedLanesW1(b *testing.B) {
	var done atomic.Int64
	var seen atomic.Int64
	spout := &benchLaneSpout{limit: b.N, done: &done}
	tb := dsps.NewTopologyBuilder("bench-linear-lanes")
	tb.SetSpout("src", func() dsps.Spout { return spout }, 1, "v")
	tb.SetBolt("relay", func() dsps.Bolt { return &benchLaneRelay{} }, 2, "v").ShuffleGrouping("src")
	tb.SetBolt("sink", func() dsps.Bolt { return &benchSink{seen: &seen} }, 2).ShuffleGrouping("relay")
	topo, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	runEngineBench(b, benchCluster(b, benchRings), topo, 1, &done, int64(b.N))
}

// BenchmarkEngineLinearAckedObservedW4 is the headline row with the
// observability layer on: tuple tracing sampled at 1% (the documented
// operator default) on a cluster that also carries an event sink. The
// delta against BenchmarkEngineLinearAckedW4 is the observability
// overhead, budgeted at ≤2%.
func BenchmarkEngineLinearAckedObservedW4(b *testing.B) {
	var done atomic.Int64
	var seen atomic.Int64
	spout := &benchSpout{limit: b.N, anchored: true, done: &done}
	tb := dsps.NewTopologyBuilder("bench-linear-obs")
	tb.SetSpout("src", func() dsps.Spout { return spout }, 1, "v")
	tb.SetBolt("relay", func() dsps.Bolt { return &benchRelay{} }, 2, "v").ShuffleGrouping("src")
	tb.SetBolt("sink", func() dsps.Bolt { return &benchSink{seen: &seen} }, 2).ShuffleGrouping("relay")
	topo, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	c := dsps.NewCluster(dsps.ClusterConfig{
		Nodes:           2,
		CoresPerNode:    4,
		QueueSize:       1024,
		MaxSpoutPending: 4096,
		AckTimeout:      time.Minute,
		Delayer:         dsps.NopDelayer{},
		Seed:            1,
		TraceSampleRate: 0.01,
		Events:          nopEvents{},
	})
	runEngineBench(b, c, topo, 4, &done, int64(b.N))
}

// nopEvents is a do-nothing EventSink so the benchmark exercises the
// emit paths without measuring a sink implementation.
type nopEvents struct{}

func (nopEvents) Event(int, string, ...string) {}

// BenchmarkEngineLinearUnanchored is the same shape with reliability
// tracking off: the acked-vs-unanchored delta is the acker's cost.
func BenchmarkEngineLinearUnanchored(b *testing.B) {
	var seen atomic.Int64
	spout := &benchSpout{limit: b.N, anchored: false, done: new(atomic.Int64)}
	tb := dsps.NewTopologyBuilder("bench-linear-un")
	tb.SetSpout("src", func() dsps.Spout { return spout }, 1, "v")
	tb.SetBolt("relay", func() dsps.Bolt { return &benchRelay{} }, 2, "v").ShuffleGrouping("src")
	tb.SetBolt("sink", func() dsps.Bolt { return &benchSink{seen: &seen} }, 2).ShuffleGrouping("relay")
	topo, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	runEngineBench(b, benchCluster(b), topo, 2, &seen, int64(b.N))
}

// BenchmarkEngineFanOutShuffle spreads the stream over a wide shuffle
// stage: spout(1) -> work(4, shuffle) -> sink(1).
func BenchmarkEngineFanOutShuffle(b *testing.B) {
	var done atomic.Int64
	var seen atomic.Int64
	spout := &benchSpout{limit: b.N, anchored: true, done: &done}
	tb := dsps.NewTopologyBuilder("bench-fanout")
	tb.SetSpout("src", func() dsps.Spout { return spout }, 1, "v")
	tb.SetBolt("work", func() dsps.Bolt { return &benchRelay{} }, 4, "v").ShuffleGrouping("src")
	tb.SetBolt("sink", func() dsps.Bolt { return &benchSink{seen: &seen} }, 1).ShuffleGrouping("work")
	topo, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	runEngineBench(b, benchCluster(b), topo, 2, &done, int64(b.N))
}

// BenchmarkEngineDynamicGrouping routes through the paper's
// dynamic-grouping edge with a skewed live split.
func BenchmarkEngineDynamicGrouping(b *testing.B) {
	var done atomic.Int64
	var seen atomic.Int64
	spout := &benchSpout{limit: b.N, anchored: true, done: &done}
	tb := dsps.NewTopologyBuilder("bench-dynamic")
	tb.SetSpout("src", func() dsps.Spout { return spout }, 1, "v")
	dg := tb.SetBolt("work", func() dsps.Bolt { return &benchRelay{} }, 4, "v").DynamicGrouping("src")
	tb.SetBolt("sink", func() dsps.Bolt { return &benchSink{seen: &seen} }, 1).ShuffleGrouping("work")
	if err := dg.SetRatios([]float64{0.4, 0.3, 0.2, 0.1}); err != nil {
		b.Fatal(err)
	}
	topo, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	runEngineBench(b, benchCluster(b), topo, 2, &done, int64(b.N))
}

// BenchmarkEngineEmitSteadyState is the allocation row: the shortest
// possible unanchored pipeline (spout -> sink), so allocs/op approximates
// the per-tuple emit+execute cost with no acker involvement.
func BenchmarkEngineEmitSteadyState(b *testing.B) {
	var seen atomic.Int64
	spout := &benchSpout{limit: b.N, anchored: false, done: new(atomic.Int64)}
	tb := dsps.NewTopologyBuilder("bench-emit")
	tb.SetSpout("src", func() dsps.Spout { return spout }, 1, "v")
	tb.SetBolt("sink", func() dsps.Bolt { return &benchSink{seen: &seen} }, 1).ShuffleGrouping("src")
	topo, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	runEngineBench(b, benchCluster(b), topo, 1, &seen, int64(b.N))
}
