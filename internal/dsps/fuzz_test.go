package dsps

import (
	"encoding/binary"
	"math"
	"testing"
	"time"
)

// FuzzGroupingRatios feeds DynamicGrouping.SetRatios arbitrary float64
// vectors (including NaN/Inf/negative/denormal payloads) and checks that
// validation agrees with an independent predicate, that accepted vectors
// normalize to a distribution, and that selection honors the plan: indices
// in range, zero-ratio tasks bypassed, observed counts tracking the
// requested share within smooth-WRR tolerance.
func FuzzGroupingRatios(f *testing.F) {
	le := binary.LittleEndian
	enc := func(fs ...float64) []byte {
		var out []byte
		for _, v := range fs {
			out = le.AppendUint64(out, math.Float64bits(v))
		}
		return out
	}
	f.Add(enc(0.7, 0.3))
	f.Add(enc(1, 0, 1))
	f.Add(enc(math.NaN(), 1))
	f.Add(enc(math.Inf(1), 1))
	f.Add(enc(-1, 2))
	f.Add(enc(math.MaxFloat64, math.MaxFloat64))
	f.Add(enc(1e-300, 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n == 0 {
			return
		}
		if n > 8 {
			n = 8
		}
		ratios := make([]float64, n)
		for i := range ratios {
			ratios[i] = math.Float64frombits(le.Uint64(data[8*i:]))
		}

		g := &DynamicGrouping{}
		err := g.SetRatios(ratios)

		valid := true
		var sum float64
		for _, r := range ratios {
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				valid = false
				break
			}
			sum += r
		}
		if valid && (sum <= 0 || math.IsInf(sum, 0)) {
			valid = false
		}
		if valid != (err == nil) {
			t.Fatalf("validation disagreement: ratios=%v err=%v, independent predicate says valid=%v", ratios, err, valid)
		}
		if err != nil {
			if g.Ratios() != nil {
				t.Fatalf("rejected SetRatios(%v) still mutated the grouping: %v", ratios, g.Ratios())
			}
			return
		}

		norm := g.Ratios()
		if len(norm) != n {
			t.Fatalf("Ratios() length %d, want %d", len(norm), n)
		}
		var nsum float64
		for i, r := range norm {
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				t.Fatalf("normalized ratio[%d]=%v invalid (input %v)", i, r, ratios)
			}
			nsum += r
		}
		if math.Abs(nsum-1) > 1e-9 {
			t.Fatalf("normalized ratios %v sum to %v, want 1 (input %v)", norm, nsum, ratios)
		}

		const rounds = 2000
		counts := make([]int, n)
		for i := 0; i < rounds; i++ {
			idx := g.Select(nil, n)
			if len(idx) != 1 || idx[0] < 0 || idx[0] >= n {
				t.Fatalf("Select returned %v for %d tasks", idx, n)
			}
			counts[idx[0]]++
		}
		for i, r := range norm {
			if r == 0 && counts[i] != 0 {
				t.Fatalf("zero-ratio task %d received %d tuples (ratios %v)", i, counts[i], ratios)
			}
			// Smooth WRR keeps every task within a small constant of its
			// exact share at all times.
			if diff := math.Abs(float64(counts[i]) - r*rounds); diff > float64(2*n) {
				t.Fatalf("task %d got %d of %d tuples, want share %.4f ±%d (ratios %v)",
					i, counts[i], rounds, r, 2*n, ratios)
			}
		}
	})
}

// FuzzHistogramQuantile is the fuzz form of
// TestPropertyQuantileWithinBucketBounds: any quantile of a single-value
// histogram must land within the bucket's factor-of-2 resolution.
func FuzzHistogramQuantile(f *testing.F) {
	f.Add(uint32(1000), uint8(50))
	f.Add(uint32(1), uint8(0))
	f.Add(uint32(99999), uint8(255))
	f.Add(uint32(1000), uint8(99)) // q = 1.0: rank must clamp to the population
	f.Fuzz(func(t *testing.T, usRaw uint32, qRaw uint8) {
		us := int(usRaw%100000) + 1
		d := time.Duration(us) * time.Microsecond
		q := (float64(qRaw%100) + 1) / 100 // (0, 1] inclusive of q = 1
		var h latencyHist
		for i := 0; i < 10; i++ {
			h.observe(d)
		}
		counts := h.snapshot()
		got := HistogramQuantile(counts, q)
		if got > 2*d || got*2 < d {
			t.Fatalf("q=%.2f of %v point mass = %v, outside factor-2 band", q, d, got)
		}
		// Monotonicity in q: the fuzzed quantile sits between the extremes.
		lo, hi := HistogramQuantile(counts, 0.01), HistogramQuantile(counts, 1)
		if got < lo || got > hi {
			t.Fatalf("q=%.2f gave %v outside [q=0.01 %v, q=1 %v]", q, got, lo, hi)
		}
	})
}

// FuzzAckerTrees is the fuzz form of TestPropertyAckerRandomTrees: XOR
// acking over a random tuple tree completes the root exactly when every
// edge has been produced and consumed, under any transition order.
func FuzzAckerTrees(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(2))
	f.Add(int64(42), uint8(0), uint8(0))
	f.Add(int64(-7), uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, fanRaw, depthRaw uint8) {
		if !ackerRandomTreeProperty(seed, fanRaw, depthRaw) {
			t.Fatalf("acker tree invariant failed for seed=%d fan=%d depth=%d", seed, fanRaw, depthRaw)
		}
	})
}
