package dsps

import (
	"fmt"
	"time"
)

// spoutDecl and boltDecl record what the builder was told.
type spoutDecl struct {
	name        string
	factory     func() Spout
	parallelism int
	fields      []string
	execCost    time.Duration
}

type subscription struct {
	source   string
	grouping Grouping
}

type boltDecl struct {
	name         string
	factory      func() Bolt
	parallelism  int
	fields       []string
	execCost     time.Duration
	tickInterval time.Duration
	subs         []subscription
}

// Topology is an immutable validated dataflow graph ready for submission.
type Topology struct {
	Name   string
	spouts []*spoutDecl
	bolts  []*boltDecl
}

// TopologyBuilder assembles a Topology, mirroring Storm's builder API.
// Components are registered with factories so every task gets its own
// component instance (tasks run concurrently and must not share state).
type TopologyBuilder struct {
	name   string
	spouts []*spoutDecl
	bolts  []*boltDecl
	err    error
}

// NewTopologyBuilder starts a topology with the given name.
func NewTopologyBuilder(name string) *TopologyBuilder {
	return &TopologyBuilder{name: name}
}

func (b *TopologyBuilder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

func (b *TopologyBuilder) nameTaken(name string) bool {
	for _, s := range b.spouts {
		if s.name == name {
			return true
		}
	}
	for _, bd := range b.bolts {
		if bd.name == name {
			return true
		}
	}
	return false
}

// SpoutDeclarer configures a registered spout.
type SpoutDeclarer struct {
	b    *TopologyBuilder
	decl *spoutDecl
}

// SetSpout registers a spout with the given parallelism. factory is called
// once per task. outputFields declares the tuple schema the spout emits.
func (b *TopologyBuilder) SetSpout(name string, factory func() Spout, parallelism int, outputFields ...string) *SpoutDeclarer {
	decl := &spoutDecl{name: name, factory: factory, parallelism: parallelism, fields: outputFields}
	switch {
	case name == "":
		b.fail("dsps: empty spout name")
	case factory == nil:
		b.fail("dsps: spout %q has nil factory", name)
	case parallelism <= 0:
		b.fail("dsps: spout %q has parallelism %d", name, parallelism)
	case b.nameTaken(name):
		b.fail("dsps: duplicate component name %q", name)
	default:
		b.spouts = append(b.spouts, decl)
	}
	return &SpoutDeclarer{b: b, decl: decl}
}

// WithExecCost sets the simulated per-tuple service cost of the spout's
// emission path (used by the interference model). Negative values clamp
// to zero (no simulated cost).
func (d *SpoutDeclarer) WithExecCost(cost time.Duration) *SpoutDeclarer {
	if cost < 0 {
		cost = 0
	}
	d.decl.execCost = cost
	return d
}

// BoltDeclarer configures a registered bolt and its subscriptions.
type BoltDeclarer struct {
	b    *TopologyBuilder
	decl *boltDecl
}

// SetBolt registers a bolt with the given parallelism. factory is called
// once per task. outputFields declares the schema of tuples the bolt
// emits (may be empty for sinks).
func (b *TopologyBuilder) SetBolt(name string, factory func() Bolt, parallelism int, outputFields ...string) *BoltDeclarer {
	decl := &boltDecl{name: name, factory: factory, parallelism: parallelism, fields: outputFields}
	switch {
	case name == "":
		b.fail("dsps: empty bolt name")
	case factory == nil:
		b.fail("dsps: bolt %q has nil factory", name)
	case parallelism <= 0:
		b.fail("dsps: bolt %q has parallelism %d", name, parallelism)
	case b.nameTaken(name):
		b.fail("dsps: duplicate component name %q", name)
	default:
		b.bolts = append(b.bolts, decl)
	}
	return &BoltDeclarer{b: b, decl: decl}
}

// WithExecCost sets the simulated per-tuple service cost of the bolt.
// Negative values clamp to zero (no simulated cost).
func (d *BoltDeclarer) WithExecCost(cost time.Duration) *BoltDeclarer {
	if cost < 0 {
		cost = 0
	}
	d.decl.execCost = cost
	return d
}

// WithTickInterval delivers a system tick tuple (IsTick reports true) to
// every task of this bolt at the given interval, mirroring Storm's
// topology.tick.tuple.freq: windowed bolts slide on ticks so windows
// advance even when the data stream stalls. Ticks carry no simulated
// service cost and are not reliability-tracked.
func (d *BoltDeclarer) WithTickInterval(interval time.Duration) *BoltDeclarer {
	if interval < 0 {
		interval = 0
	}
	d.decl.tickInterval = interval
	return d
}

func (d *BoltDeclarer) subscribe(source string, g Grouping) *BoltDeclarer {
	d.decl.subs = append(d.decl.subs, subscription{source: source, grouping: g})
	return d
}

// ShuffleGrouping subscribes the bolt to source with round-robin
// distribution.
func (d *BoltDeclarer) ShuffleGrouping(source string) *BoltDeclarer {
	return d.subscribe(source, &ShuffleGrouping{})
}

// FieldsGrouping subscribes the bolt to source with hash partitioning on
// the named fields.
func (d *BoltDeclarer) FieldsGrouping(source string, fields ...string) *BoltDeclarer {
	if len(fields) == 0 {
		d.b.fail("dsps: bolt %q fields grouping with no fields", d.decl.name)
	}
	return d.subscribe(source, &FieldsGrouping{Fields: fields})
}

// GlobalGrouping subscribes the bolt to source with all tuples going to
// its first task.
func (d *BoltDeclarer) GlobalGrouping(source string) *BoltDeclarer {
	return d.subscribe(source, GlobalGrouping{})
}

// AllGrouping subscribes the bolt to source with full replication.
func (d *BoltDeclarer) AllGrouping(source string) *BoltDeclarer {
	return d.subscribe(source, AllGrouping{})
}

// DynamicGrouping subscribes the bolt to source with the paper's
// split-ratio grouping and returns the grouping handle the controller uses
// to update ratios at runtime.
func (d *BoltDeclarer) DynamicGrouping(source string) *DynamicGrouping {
	g := &DynamicGrouping{}
	d.subscribe(source, g)
	return g
}

// CustomGrouping subscribes the bolt to source with a caller-provided
// grouping.
func (d *BoltDeclarer) CustomGrouping(source string, g Grouping) *BoltDeclarer {
	if g == nil {
		d.b.fail("dsps: bolt %q custom grouping is nil", d.decl.name)
		return d
	}
	return d.subscribe(source, g)
}

// Build validates the graph and returns the immutable topology.
func (b *TopologyBuilder) Build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.spouts) == 0 {
		return nil, fmt.Errorf("dsps: topology %q has no spouts", b.name)
	}
	names := map[string]bool{}
	for _, s := range b.spouts {
		names[s.name] = true
	}
	for _, bd := range b.bolts {
		names[bd.name] = true
	}
	for _, bd := range b.bolts {
		if len(bd.subs) == 0 {
			return nil, fmt.Errorf("dsps: bolt %q subscribes to nothing", bd.name)
		}
		for _, sub := range bd.subs {
			if !names[sub.source] {
				return nil, fmt.Errorf("dsps: bolt %q subscribes to unknown component %q", bd.name, sub.source)
			}
			if sub.source == bd.name {
				return nil, fmt.Errorf("dsps: bolt %q subscribes to itself", bd.name)
			}
		}
	}
	if err := checkAcyclic(b.bolts); err != nil {
		return nil, err
	}
	return &Topology{Name: b.name, spouts: b.spouts, bolts: b.bolts}, nil
}

// checkAcyclic rejects cycles among bolts (spouts cannot subscribe, so any
// cycle is bolt-only).
func checkAcyclic(bolts []*boltDecl) error {
	adj := map[string][]string{}
	for _, bd := range bolts {
		for _, sub := range bd.subs {
			adj[sub.source] = append(adj[sub.source], bd.name)
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) error
	visit = func(n string) error {
		color[n] = gray
		for _, next := range adj[n] {
			switch color[next] {
			case gray:
				return fmt.Errorf("dsps: topology contains a cycle through %q", next)
			case white:
				if err := visit(next); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for _, bd := range bolts {
		if color[bd.name] == white {
			if err := visit(bd.name); err != nil {
				return err
			}
		}
	}
	return nil
}

// Components returns the names of all components in declaration order,
// spouts first.
func (t *Topology) Components() []string {
	out := make([]string, 0, len(t.spouts)+len(t.bolts))
	for _, s := range t.spouts {
		out = append(out, s.name)
	}
	for _, b := range t.bolts {
		out = append(out, b.name)
	}
	return out
}

// Spouts returns the names of the spout components in declaration order.
// Spout tasks are the ones whose counters satisfy the tuple-conservation
// invariant emitted = acked + failed at quiescence, which is what the
// chaos harness checks.
func (t *Topology) Spouts() []string {
	out := make([]string, 0, len(t.spouts))
	for _, s := range t.spouts {
		out = append(out, s.name)
	}
	return out
}

// Parallelism returns the declared parallelism of a component, or 0 if
// unknown.
func (t *Topology) Parallelism(component string) int {
	for _, s := range t.spouts {
		if s.name == component {
			return s.parallelism
		}
	}
	for _, b := range t.bolts {
		if b.name == component {
			return b.parallelism
		}
	}
	return 0
}
