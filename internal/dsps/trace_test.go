package dsps

import (
	"sync"
	"testing"
	"time"
)

func TestTraceSamplingDeterministicAndRateBounded(t *testing.T) {
	tr := newTrace(0.25, 16)
	hits := 0
	const n = 100000
	for i := uint64(0); i < n; i++ {
		first := tr.sampled(i)
		if first != tr.sampled(i) {
			t.Fatalf("sampling of root %d not stable", i)
		}
		if first {
			hits++
		}
	}
	// splitmix64 is a good mixer; the hit rate over 100k roots must sit
	// close to the configured rate.
	got := float64(hits) / n
	if got < 0.24 || got > 0.26 {
		t.Fatalf("sample rate = %.4f, want ~0.25", got)
	}

	if all := newTrace(1, 16); !all.sampled(0) || !all.sampled(^uint64(0)) {
		t.Fatal("rate 1 must sample every root")
	}
	if none := newTrace(0, 16); none.sampled(1) || none.sampled(12345) {
		t.Fatal("rate 0 must sample nothing")
	}
	// Out-of-range rates clamp rather than misbehave.
	if tr := newTrace(7, 16); tr.SampleRate() != 1 {
		t.Fatalf("rate 7 clamped to %v, want 1", tr.SampleRate())
	}
	if tr := newTrace(-1, 16); tr.SampleRate() != 0 {
		t.Fatalf("rate -1 clamped to %v, want 0", tr.SampleRate())
	}
}

func TestTraceRingWraparound(t *testing.T) {
	tr := newTrace(1, 4)
	if tr.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", tr.Cap())
	}
	for i := 0; i < 10; i++ {
		tr.record(TraceSpan{RootID: uint64(i)})
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("len = %d, want 4", got)
	}
	if got := tr.Recorded(); got != 10 {
		t.Fatalf("recorded = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	// Oldest-first: the survivors are roots 6..9 with seqs 6..9.
	for i, s := range spans {
		want := uint64(6 + i)
		if s.RootID != want || s.Seq != want {
			t.Fatalf("span %d = root %d seq %d, want %d", i, s.RootID, s.Seq, want)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Recorded() != 0 || tr.Dropped() != 0 {
		t.Fatal("reset did not clear the ring")
	}
	tr.record(TraceSpan{RootID: 99})
	if got := tr.Spans(); len(got) != 1 || got[0].Seq != 0 {
		t.Fatalf("post-reset spans = %+v", got)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	c := testCluster()
	defer c.Shutdown()
	if c.Trace() != nil {
		t.Fatal("trace ring exists without TraceSampleRate")
	}
}

func TestClusterTraceEndToEnd(t *testing.T) {
	const n = 200
	spout := &countingSpout{limit: n}
	b := NewTopologyBuilder("traced")
	b.SetSpout("src", func() Spout { return spout }, 1, "n")
	b.SetBolt("relay", func() Bolt { return &relayBolt{} }, 2, "n").ShuffleGrouping("src")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("relay")
	topo, _ := b.Build()
	c := testCluster(func(cfg *ClusterConfig) {
		cfg.TraceSampleRate = 1
		cfg.TraceBufferSize = 4 * n
	})
	if err := c.Submit(topo, SubmitConfig{}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	tr := c.Trace()
	if tr == nil {
		t.Fatal("no trace ring")
	}
	spans := tr.Spans()
	emits, execs := 0, 0
	roots := map[uint64]bool{}
	for _, s := range spans {
		if s.Topology != "traced" {
			t.Fatalf("span topology = %q", s.Topology)
		}
		switch s.Kind {
		case SpanEmit:
			emits++
			if s.Component != "src" || s.Fanout != 1 || s.SourceComponent != "" {
				t.Fatalf("bad emit span: %+v", s)
			}
			if roots[s.RootID] {
				t.Fatalf("root %d emitted twice", s.RootID)
			}
			roots[s.RootID] = true
		case SpanExec:
			execs++
			if s.Component != "relay" && s.Component != "sink" {
				t.Fatalf("exec span from %q", s.Component)
			}
			if s.QueueNs < 0 || s.EndNs < s.StartNs {
				t.Fatalf("bad exec timings: %+v", s)
			}
		}
	}
	// Rate 1 with a big enough ring: every root has one emit span and
	// one exec span per stage (relay, sink).
	if emits != n {
		t.Fatalf("emit spans = %d, want %d", emits, n)
	}
	if execs != 2*n {
		t.Fatalf("exec spans = %d, want %d", execs, 2*n)
	}
	for _, s := range spans {
		if s.Kind == SpanExec && !roots[s.RootID] {
			t.Fatalf("exec span of unsampled root %d", s.RootID)
		}
	}
	// Snapshot surfaces the data-plane batch and backpressure counters.
	snap := c.Snapshot()
	var batches int64
	for _, ts := range snap.Tasks {
		if ts.Batches < 0 || ts.BackpressureWaits < 0 {
			t.Fatalf("negative batch counters: %+v", ts)
		}
		batches += ts.Batches
	}
	if batches == 0 {
		t.Fatal("no batches counted")
	}
	spoutStats := snap.ComponentTasks("src")[0]
	if !spoutStats.IsSpout {
		t.Fatal("spout task not flagged IsSpout")
	}
	if snap.ComponentTasks("sink")[0].IsSpout {
		t.Fatal("bolt task flagged IsSpout")
	}
	if len(snap.Acker) != 1 || snap.Acker[0].Topology != "traced" {
		t.Fatalf("acker stats = %+v", snap.Acker)
	}
	pending := 0
	for _, p := range snap.Acker[0].ShardPending {
		pending += p
	}
	if pending != snap.Acker[0].InFlight || pending != 0 {
		t.Fatalf("drained acker has %d pending (in flight %d)", pending, snap.Acker[0].InFlight)
	}
}

// memEvents is a minimal EventSink capturing messages for assertions.
type memEvents struct {
	mu   sync.Mutex
	msgs []string
	kvs  [][]string
}

func (m *memEvents) Event(level int, msg string, kv ...string) {
	m.mu.Lock()
	m.msgs = append(m.msgs, msg)
	m.kvs = append(m.kvs, kv)
	m.mu.Unlock()
}

func (m *memEvents) has(msg string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, got := range m.msgs {
		if got == msg {
			return true
		}
	}
	return false
}

func TestClusterEmitsControlPlaneEvents(t *testing.T) {
	sink := &memEvents{}
	b := NewTopologyBuilder("evt")
	b.SetSpout("src", func() Spout { return &countingSpout{limit: 50} }, 1, "n")
	b.SetBolt("sink", func() Bolt { return &sinkBolt{} }, 1).ShuffleGrouping("src")
	topo, _ := b.Build()
	c := testCluster(func(cfg *ClusterConfig) { cfg.Events = sink })
	if err := c.Submit(topo, SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if !c.Drain(5 * time.Second) {
		t.Fatal("did not drain")
	}
	w := c.WorkerIDs()[0]
	if err := c.InjectFault(w, Fault{Slowdown: 4}); err != nil {
		t.Fatal(err)
	}
	c.ClearFault(w)
	if err := c.Rebalance("evt", SubmitConfig{Workers: 1}, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.ShutdownTopology("evt"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"topology submitted",
		"fault injected",
		"fault cleared",
		"topology rebalanced",
		"topology shutdown",
	} {
		if !sink.has(want) {
			t.Errorf("event %q not emitted (got %v)", want, sink.msgs)
		}
	}
}

func TestDynamicGroupingOnChange(t *testing.T) {
	g := &DynamicGrouping{}
	var mu sync.Mutex
	var got [][]float64
	g.SetOnChange(func(r []float64) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	if err := g.SetRatios([]float64{0.7, 0.3}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(got) != 1 || got[0][0] != 0.7 || got[0][1] != 0.3 {
		mu.Unlock()
		t.Fatalf("callback got %v", got)
	}
	mu.Unlock()
	// The callback receives a copy: mutating it must not corrupt the
	// grouping's live ratios.
	got[0][0] = 99
	if r := g.Ratios(); r[0] != 0.7 {
		t.Fatalf("live ratios corrupted: %v", r)
	}
	g.SetOnChange(nil)
	if err := g.SetRatios([]float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("unregistered callback still fired: %d calls", len(got))
	}
}
