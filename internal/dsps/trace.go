package dsps

import "sync"

// Sampled per-tuple path tracing. A Trace is a fixed-size ring buffer of
// TraceSpans recorded by the executors for a deterministic sample of the
// anchored root tuples flowing through the engine. The sampling decision
// is a pure function of the rootID (splitmix64 against a rate-derived
// threshold), so identically seeded runs sample the same roots, and the
// hot-path cost when tracing is disabled is a single nil check.
//
// Timestamps come from the topology's coarse clock (≤ one coarseTick of
// error) so recording a span never reads the wall clock on the data
// plane; only the ring append takes a lock, and only for sampled spans.

// SpanKind distinguishes the two span shapes a root's path is made of.
type SpanKind uint8

const (
	// SpanEmit is recorded once per sampled root, by the spout executor
	// that emitted it. Start and End coincide (emission is instantaneous
	// on the coarse clock); Fanout carries the number of deliveries.
	SpanEmit SpanKind = iota
	// SpanExec is recorded by a bolt executor for every execution of a
	// tuple descending from a sampled root: QueueNs is the time the tuple
	// waited in the input queue, [StartNs, EndNs] brackets Execute.
	SpanExec
)

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	switch k {
	case SpanEmit:
		return "emit"
	case SpanExec:
		return "exec"
	default:
		return "unknown"
	}
}

// TraceSpan is one hop of a sampled root tuple's path through the
// topology: the spout emission that created the root, or one bolt
// execution of a descendant tuple.
type TraceSpan struct {
	// Seq is the global record sequence number, assigned at append; it
	// orders spans by arrival at the ring and survives wraparound.
	Seq uint64 `json:"seq"`
	// RootID is the acker tracking key of the sampled root; every span of
	// one root's tree shares it.
	RootID uint64 `json:"root_id"`
	// Kind is SpanEmit or SpanExec.
	Kind SpanKind `json:"kind"`
	// Topology names the owning topology.
	Topology string `json:"topology"`
	// Component is the executing component.
	Component string `json:"component"`
	// TaskID is the global id of the executing task.
	TaskID int `json:"task_id"`
	// TaskIndex is the task's index within its component.
	TaskIndex int `json:"task_index"`
	// WorkerID is the worker process hosting the task.
	WorkerID string `json:"worker_id"`
	// SourceComponent names the component that emitted the executed tuple
	// (empty for SpanEmit).
	SourceComponent string `json:"source_component,omitempty"`
	// StartNs and EndNs bracket the span on the engine's coarse clock
	// (Unix nanoseconds, ≤ one coarse tick of error).
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`
	// QueueNs is the time the executed tuple waited in the input queue
	// before Execute (SpanExec only).
	QueueNs int64 `json:"queue_ns,omitempty"`
	// Fanout is the number of downstream deliveries (SpanEmit only).
	Fanout int `json:"fanout,omitempty"`
}

// Trace is the engine's sampled-tuple trace ring. Obtain one from
// Cluster.Trace after configuring ClusterConfig.TraceSampleRate; export
// the contents with internal/obs (JSON and Chrome trace_event formats).
type Trace struct {
	rate      float64
	threshold uint64 // sampled iff splitmix64(rootID) < threshold

	mu      sync.Mutex
	ring    []TraceSpan
	next    int  // write index
	wrapped bool // ring has overwritten at least one span
	seq     uint64
	dropped uint64
}

// defaultTraceBuffer is the ring capacity used when TraceSampleRate is
// set without an explicit TraceBufferSize.
const defaultTraceBuffer = 4096

// newTrace builds a ring for the given sample rate (clamped to [0,1])
// and capacity.
func newTrace(rate float64, size int) *Trace {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	if size <= 0 {
		size = defaultTraceBuffer
	}
	t := &Trace{rate: rate, ring: make([]TraceSpan, 0, size)}
	switch {
	case rate >= 1:
		t.threshold = ^uint64(0)
	default:
		t.threshold = uint64(rate * float64(1<<63) * 2)
	}
	return t
}

// splitmix64 is the finalizer the sampling decision hashes rootIDs
// through: one extra mixing round decorrelates the decision from the
// splitmix64 stream the rootIDs themselves are drawn from.
//
//dsps:hotpath
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// sampled reports whether the root is in the deterministic sample: a
// pure function of rootID, identical across runs and across the tasks
// that touch the root's tree.
//
//dsps:hotpath
func (t *Trace) sampled(rootID uint64) bool {
	if t.threshold == ^uint64(0) {
		return true
	}
	return splitmix64(rootID) < t.threshold
}

// record appends one span, overwriting the oldest when full. Called only
// for sampled spans, so the lock is off the common path.
//
//dsps:hotpath
func (t *Trace) record(s TraceSpan) {
	t.mu.Lock()
	s.Seq = t.seq
	t.seq++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s) //dspslint:ignore allocfree bounded ring fill below preallocated cap; wraps in place afterwards
	} else {
		t.ring[t.next] = s
		t.wrapped = true
		t.dropped++
	}
	t.next++
	if t.next == cap(t.ring) {
		t.next = 0
	}
	t.mu.Unlock()
}

// SampleRate returns the configured sampling rate in [0, 1].
func (t *Trace) SampleRate() float64 { return t.rate }

// Cap returns the ring capacity in spans.
func (t *Trace) Cap() int { return cap(t.ring) }

// Len returns the number of spans currently held.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Dropped returns how many spans have been overwritten by wraparound
// since the last Reset.
func (t *Trace) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Recorded returns how many spans have been appended (including any
// later overwritten) since the last Reset.
func (t *Trace) Recorded() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Spans returns a copy of the buffered spans, oldest first.
func (t *Trace) Spans() []TraceSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSpan, 0, len(t.ring))
	if t.wrapped {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Reset drops all buffered spans and zeroes the sequence and drop
// counters; the sampling rate is unchanged.
func (t *Trace) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = t.ring[:0]
	t.next = 0
	t.wrapped = false
	t.seq = 0
	t.dropped = 0
}
