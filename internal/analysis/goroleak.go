package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoroLeak checks goroutine lifecycle discipline in the runtime packages
// (internal/dsps, internal/serve, internal/obs — plus any package opting
// in with //dsps:owned-goroutines): every `go` statement in non-test
// code must have a statically visible stop or wait path, because the
// elastic runtime's whole contract is that Stop() joins everything it
// started. A goroutine qualifies when its body (or any function it
// statically reaches on its own goroutine) contains one of:
//
//   - a channel operation: send, receive, close, range over a channel,
//     or a select — the goroutine participates in a shutdown protocol
//     (done-channel close, context cancellation via <-ctx.Done(), or a
//     work channel whose close drains it out)
//   - sync.WaitGroup.Done — the spawner can Wait for it
//
// Bodies the module cannot see — `go externalFn(…)` into the stdlib, or
// a spawn through a func value — are reported as unverifiable rather
// than silently trusted; justify those sites with //dspslint:ignore.
// The check is shape-level, not a liveness proof: it catches the
// fire-and-forget goroutine with no join protocol at all, which is the
// leak class that actually bites long-running stream workers.
var GoroLeak = &Analyzer{
	Name:      "goroleak",
	Doc:       "go statement without a reachable stop/wait path (channel op, select, or WaitGroup.Done) in goroutine-owning packages",
	RunModule: runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	mod := pass.Mod
	for _, pkg := range mod.Packages {
		if !pkg.OwnedGoroutines {
			continue
		}
		for _, f := range pkg.Files {
			file := pass.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(file, "_test.go") {
				continue // tests join through the testing harness and t.Cleanup
			}
			info := pkg.Info
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, info, g)
				return true
			})
		}
	}
}

// checkGoStmt classifies one `go` statement's target and reports when no
// stop/wait path is visible.
func checkGoStmt(pass *Pass, info *types.Info, g *ast.GoStmt) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if !bodyHasStopPath(pass, info, lit.Body, map[*FuncNode]bool{}) {
			pass.Reportf(g.Pos(),
				"goroutine has no visible stop or wait path (no channel op, select, or WaitGroup.Done anywhere it reaches); the runtime cannot join it on shutdown")
		}
		return
	}
	fn, _ := resolveCallee(info, g.Call)
	if fn == nil {
		pass.Reportf(g.Pos(),
			"goroutine spawned through a func value; its stop/wait path cannot be verified statically — name the function or justify with //dspslint:ignore")
		return
	}
	node := pass.Mod.Graph.Nodes[funcObjKey(fn)]
	if node == nil || node.External() {
		pass.Reportf(g.Pos(),
			"goroutine runs %s, whose body is outside the loaded module; its stop/wait path cannot be verified statically — justify with //dspslint:ignore",
			externalLabel(fn))
		return
	}
	if !nodeHasStopPath(pass, node, map[*FuncNode]bool{}) {
		pass.Reportf(g.Pos(),
			"goroutine runs %s, which has no visible stop or wait path (no channel op, select, or WaitGroup.Done anywhere it reaches); the runtime cannot join it on shutdown",
			node.Label)
	}
}

// nodeHasStopPath reports whether fn's body, or any loaded function it
// statically calls on the same goroutine, contains a stop/wait signal.
func nodeHasStopPath(pass *Pass, node *FuncNode, visited map[*FuncNode]bool) bool {
	if visited[node] {
		return false
	}
	visited[node] = true
	if node.Decl == nil || node.Decl.Body == nil || node.Pkg == nil {
		return false
	}
	return bodyHasStopPath(pass, node.Pkg.Info, node.Decl.Body, visited)
}

// bodyHasStopPath scans one body for a stop/wait signal, descending into
// statically resolved callees. Nested `go` literals are skipped — a
// signal in a grandchild goroutine does not join the child.
func bodyHasStopPath(pass *Pass, info *types.Info, body ast.Node, visited map[*FuncNode]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // a further goroutine's signals are its own
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if isStopCall(info, n) {
				found = true
				return false
			}
			if fn, _ := resolveCallee(info, n); fn != nil {
				if callee := pass.Mod.Graph.Nodes[funcObjKey(fn)]; callee != nil &&
					nodeHasStopPath(pass, callee, visited) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isStopCall matches the non-channel signals: close(ch) (the goroutine
// signals its own completion) and sync.WaitGroup.Done.
func isStopCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "close" {
			return true
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Done" {
			if fn, ok := info.Uses[fun.Sel].(*types.Func); ok &&
				strings.HasPrefix(fn.FullName(), "(*sync.WaitGroup).") {
				return true
			}
		}
	}
	return false
}
